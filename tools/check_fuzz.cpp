// Deterministic fuzz driver for the check subsystem.
//
// Derives every case from --seed and the case index (no wall clock, no
// global RNG), so a run is exactly reproducible. On the first failure it
// shrinks the case by re-running the same case seed at increasing shrink
// levels (smaller graphs, shorter op sequences, shorter fleet runs) and
// prints the smallest still-failing instance with a replay command:
//
//   check_fuzz [--seed N] [--cases N]
//              [--kind decision|cache|queue|fleet|cluster|predict]
//   check_fuzz --kind queue --replay 0x1234abcd [--level 2]
//
// Exit code 0 = every case passed, 1 = a divergence / invariant violation
// was found (replay line on stdout), 2 = bad usage.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/differential.h"
#include "check/generators.h"
#include "common/check.h"

namespace {

using lp::check::CaseKind;

constexpr int kMaxLevel = 3;

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t cases = 1000;
  bool has_kind = false;
  CaseKind kind = CaseKind::kDecision;
  bool replay = false;
  std::uint64_t replay_seed = 0;
  int level = 0;
};

bool parse_kind(const char* name, CaseKind* out) {
  for (CaseKind kind :
       {CaseKind::kDecision, CaseKind::kCache, CaseKind::kQueue,
        CaseKind::kFleet, CaseKind::kCluster, CaseKind::kPredict}) {
    if (std::strcmp(name, lp::check::case_kind_name(kind)) == 0) {
      *out = kind;
      return true;
    }
  }
  return false;
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: check_fuzz [--seed N] [--cases N] "
      "[--kind decision|cache|queue|fleet|cluster|predict]\n"
      "       check_fuzz --kind K --replay CASE_SEED [--level L]\n");
  std::exit(2);
}

bool parse_args(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--seed") {
      opts->seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--cases") {
      opts->cases = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--kind") {
      if (!parse_kind(value(), &opts->kind)) usage();
      opts->has_kind = true;
    } else if (arg == "--replay") {
      opts->replay = true;
      opts->replay_seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--level") {
      opts->level = std::atoi(value());
    } else {
      usage();
    }
  }
  if (opts->replay && !opts->has_kind) usage();
  return true;
}

/// Runs one case, capturing the failure message. True = passed.
bool try_case(CaseKind kind, std::uint64_t case_seed, int level,
              std::string* error) {
  try {
    lp::check::run_case(kind, case_seed, level);
    return true;
  } catch (const lp::ContractError& e) {
    *error = e.what();
    return false;
  }
}

/// Re-runs the failing case seed at increasing shrink levels and returns
/// the highest (smallest-instance) level that still fails, with its error.
int shrink(CaseKind kind, std::uint64_t case_seed, std::string* error) {
  int best = 0;
  for (int level = 1; level <= kMaxLevel; ++level) {
    std::string shrunk_error;
    if (!try_case(kind, case_seed, level, &shrunk_error)) {
      best = level;
      *error = shrunk_error;
    }
  }
  return best;
}

void report(CaseKind kind, std::uint64_t index, std::uint64_t case_seed,
            int level, const std::string& error) {
  std::printf("FAIL: %s case %llu\n  %s\n",
              lp::check::case_kind_name(kind),
              static_cast<unsigned long long>(index), error.c_str());
  std::printf("replay: check_fuzz --kind %s --replay 0x%llx --level %d\n",
              lp::check::case_kind_name(kind),
              static_cast<unsigned long long>(case_seed), level);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  parse_args(argc, argv, &opts);

  if (opts.replay) {
    std::string error;
    if (try_case(opts.kind, opts.replay_seed, opts.level, &error)) {
      std::printf("PASS: %s case seed 0x%llx level %d\n",
                  lp::check::case_kind_name(opts.kind),
                  static_cast<unsigned long long>(opts.replay_seed),
                  opts.level);
      return 0;
    }
    report(opts.kind, 0, opts.replay_seed, opts.level, error);
    return 1;
  }

  // Round-robin with fleet and cluster under-weighted: a fleet or cluster
  // case simulates seconds of sim time and costs ~100x a decision case.
  const std::vector<CaseKind> cycle = {
      CaseKind::kDecision, CaseKind::kCache,   CaseKind::kQueue,
      CaseKind::kPredict,  CaseKind::kDecision, CaseKind::kCache,
      CaseKind::kQueue,    CaseKind::kDecision, CaseKind::kFleet,
      CaseKind::kDecision, CaseKind::kPredict,  CaseKind::kCache,
      CaseKind::kQueue,    CaseKind::kCluster};

  std::uint64_t per_kind[6] = {0, 0, 0, 0, 0, 0};
  for (std::uint64_t i = 0; i < opts.cases; ++i) {
    const CaseKind kind =
        opts.has_kind ? opts.kind : cycle[i % cycle.size()];
    const std::uint64_t cs = lp::check::case_seed(opts.seed, i);
    std::string error;
    if (!try_case(kind, cs, /*level=*/0, &error)) {
      // Shrink: the same case seed at a higher level is the same scenario
      // drawn smaller; report the smallest instance that still fails.
      std::string shrunk_error;
      const int level = shrink(kind, cs, &shrunk_error);
      report(kind, i, cs, level, level > 0 ? shrunk_error : error);
      return 1;
    }
    ++per_kind[static_cast<int>(kind)];
  }

  std::printf("OK: %llu cases (decision %llu, cache %llu, queue %llu, "
              "fleet %llu, cluster %llu, predict %llu), seed %llu\n",
              static_cast<unsigned long long>(opts.cases),
              static_cast<unsigned long long>(per_kind[0]),
              static_cast<unsigned long long>(per_kind[1]),
              static_cast<unsigned long long>(per_kind[2]),
              static_cast<unsigned long long>(per_kind[3]),
              static_cast<unsigned long long>(per_kind[4]),
              static_cast<unsigned long long>(per_kind[5]),
              static_cast<unsigned long long>(opts.seed));
  return 0;
}
