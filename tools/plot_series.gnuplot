# Plots the per-inference time series exported by the figure benches.
#
# Usage:
#   LP_CSV_DIR=out ./build/bench/fig9_load_timeseries
#   gnuplot -e "csv='out/fig9_squeezenet_loadpart_series.csv'; png='fig9.png'" \
#       tools/plot_series.gnuplot
set datafile separator ","
if (!exists("csv")) csv = "fig9_squeezenet_loadpart_series.csv"
if (!exists("png")) png = "series.png"
set terminal pngcairo size 1100,700
set output png
set key top left
set xlabel "time (s)"

set multiplot layout 3,1 title csv noenhanced
set ylabel "end-to-end latency (ms)"
plot csv using 1:3 skip 1 with points pt 7 ps 0.3 title "latency"
set ylabel "partition point p"
plot csv using 1:2 skip 1 with steps lw 2 title "p"
set ylabel "k / bandwidth (Mbps)"
plot csv using 1:8 skip 1 with lines lw 2 title "k", \
     csv using 1:9 skip 1 with lines lw 2 title "bandwidth (Mbps)"
unset multiplot
