#include "sim/simulator.h"

namespace lp::sim {

Simulator::~Simulator() {
  // Drop pending events without resuming, then destroy root frames; child
  // frames are destroyed recursively by their owners.
  while (!queue_.empty()) queue_.pop();
  for (auto h : roots_) h.destroy();
}

void Simulator::spawn(Task task) {
  LP_CHECK(task.valid());
  auto h = task.release();
  roots_.push_back(h);
  queue_.push({now_, seq_++, h, nullptr});
}

void Simulator::call_after(DurationNs delay, std::function<void()> fn) {
  LP_CHECK(delay >= 0);
  queue_.push({now_ + delay, seq_++, {}, std::move(fn)});
}

void Simulator::schedule_handle(TimeNs t, std::coroutine_handle<> h) {
  LP_CHECK(t >= now_);
  queue_.push({t, seq_++, h, nullptr});
}

void Simulator::step(Entry e) {
  now_ = e.time;
  ++executed_;
  if (e.handle) {
    if (!e.handle.done()) e.handle.resume();
  } else {
    e.fn();
  }
}

TimeNs Simulator::run() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    step(std::move(e));
  }
  return now_;
}

void Simulator::run_until(TimeNs t) {
  LP_CHECK(t >= now_);
  while (!queue_.empty() && queue_.top().time <= t) {
    Entry e = queue_.top();
    queue_.pop();
    step(std::move(e));
  }
  now_ = t;
}

void Event::trigger() {
  triggered_ = true;
  for (auto h : waiters_) sim_->schedule_handle(sim_->now(), h);
  waiters_.clear();
}

}  // namespace lp::sim
