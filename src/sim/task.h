// Coroutine task type for simulation processes.
//
// A sim::Task is a lazily-started coroutine. It is either
//   * spawned detached on a Simulator (root process), or
//   * awaited by a parent task (`co_await child()`), which starts it
//     immediately and resumes the parent when it finishes.
//
// Ownership: the Task object owns the coroutine frame. Detached root tasks
// are owned by the Simulator; child tasks are owned by the awaiting frame,
// so destroying a parent tears down its children.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "common/check.h"

namespace lp::sim {

class Simulator;

class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  // parent frame to resume on finish
    std::exception_ptr exception;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        if (auto cont = h.promise().continuation) return cont;
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a task starts it; the awaiter resumes when the task finishes.
  /// Exceptions escaping the child are rethrown in the parent.
  struct Awaiter {
    std::coroutine_handle<promise_type> child;
    bool await_ready() const { return !child || child.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      child.promise().continuation = parent;
      return child;  // symmetric transfer: start the child now
    }
    void await_resume() const {
      if (child && child.promise().exception)
        std::rethrow_exception(child.promise().exception);
    }
  };
  Awaiter operator co_await() const { return Awaiter{handle_}; }

 private:
  friend class Simulator;

  /// Releases ownership of the frame (used by Simulator::spawn).
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace lp::sim
