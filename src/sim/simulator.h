// Discrete-event simulator with a virtual nanosecond clock.
//
// All of LoADPart's runtime dynamics (GPU scheduling, network transfers,
// periodic profiler threads, the offloading client/server) run as coroutine
// processes over this engine. Everything is deterministic and single
// threaded; "threads" in the paper map to processes here.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/task.h"

namespace lp::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current simulated time.
  TimeNs now() const { return now_; }

  /// Registers a detached root process; it starts when the clock next runs.
  void spawn(Task task);

  /// Schedules a plain callback after `delay` (>= 0).
  void call_after(DurationNs delay, std::function<void()> fn);

  /// Awaitable that resumes the caller after `delay` (>= 0) of virtual time.
  [[nodiscard]] auto delay(DurationNs d) {
    LP_CHECK(d >= 0);
    struct Awaiter {
      Simulator* sim;
      DurationNs d;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule_handle(sim->now_ + d, h);
      }
      void await_resume() const {}
    };
    return Awaiter{this, d};
  }

  /// Runs until the event queue drains. Returns the final time.
  TimeNs run();

  /// Runs all events with timestamp <= t, then sets now() = t.
  void run_until(TimeNs t);

  /// Convenience: run_until(now() + d).
  void run_for(DurationNs d) { run_until(now_ + d); }

  /// Total events executed so far (for tests and sanity checks).
  std::uint64_t executed_events() const { return executed_; }

  /// True if no future work is scheduled.
  bool idle() const { return queue_.empty(); }

  // -- internal, used by awaitables in this module --
  void schedule_handle(TimeNs t, std::coroutine_handle<> h);

 private:
  struct Entry {
    TimeNs time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::coroutine_handle<> handle;
    std::function<void()> fn;  // used when handle is null
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void step(Entry e);

  TimeNs now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<std::coroutine_handle<Task::promise_type>> roots_;
};

/// One-shot broadcast event. Waiters resume (at the trigger time) once
/// trigger() is called; waits after triggering complete immediately.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(&sim) {}

  void trigger();
  void reset() { triggered_ = false; }
  bool triggered() const { return triggered_; }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const { return ev->triggered_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev->waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counted resource with FIFO waiters (e.g. "the device CPU", "one
/// in-flight inference"). acquire() suspends until a unit is free;
/// release() hands the unit to the oldest waiter, if any.
class Resource {
 public:
  Resource(Simulator& sim, std::size_t capacity)
      : sim_(&sim), available_(capacity), capacity_(capacity) {
    LP_CHECK(capacity > 0);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t available() const { return available_; }
  std::size_t waiters() const { return waiters_.size(); }

  [[nodiscard]] auto acquire() {
    struct Awaiter {
      Resource* res;
      bool await_ready() {
        if (res->available_ == 0) return false;
        --res->available_;
        return true;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res->waiters_.push_back(h);
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

  /// Returns a unit; the caller must hold one.
  void release() {
    if (!waiters_.empty()) {
      // The unit transfers directly to the oldest waiter.
      sim_->schedule_handle(sim_->now(), waiters_.front());
      waiters_.erase(waiters_.begin());
    } else {
      LP_CHECK_MSG(available_ < capacity_, "release without acquire");
      ++available_;
    }
  }

 private:
  Simulator* sim_;
  std::size_t available_;
  std::size_t capacity_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO message channel between processes.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(&sim) {}

  /// Sends a value; wakes the oldest waiting receiver, if any.
  void send(T value) {
    if (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.erase(waiters_.begin());
      w->value = std::move(value);
      w->has_value = true;
      sim_->schedule_handle(sim_->now(), w->handle);
    } else {
      queue_.push_back(std::move(value));
    }
  }

  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  struct Waiter {
    std::coroutine_handle<> handle;
    T value{};
    bool has_value = false;
  };

  /// Awaitable receive; resumes with the next value in FIFO order.
  [[nodiscard]] auto receive() {
    struct Awaiter {
      Channel* ch;
      Waiter self;
      bool await_ready() const { return !ch->queue_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        self.handle = h;
        ch->waiters_.push_back(&self);
      }
      T await_resume() {
        if (self.has_value) return std::move(self.value);
        LP_CHECK(!ch->queue_.empty());
        T v = std::move(ch->queue_.front());
        ch->queue_.erase(ch->queue_.begin());
        return v;
      }
    };
    return Awaiter{this, {}};
  }

 private:
  Simulator* sim_;
  std::vector<T> queue_;
  std::vector<Waiter*> waiters_;
};

}  // namespace lp::sim
