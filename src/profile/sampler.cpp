#include "profile/sampler.h"

#include <algorithm>
#include <array>
#include <iterator>

#include "common/check.h"
#include "graph/shape_infer.h"

namespace lp::profile {

using flops::ModelKind;
using flops::NodeConfig;
using graph::OpType;

graph::OpType op_for_kind(ModelKind kind) {
  switch (kind) {
    case ModelKind::kConv:
      return OpType::kConv;
    case ModelKind::kDWConv:
      return OpType::kDWConv;
    case ModelKind::kMatMul:
      return OpType::kMatMul;
    case ModelKind::kAvgPool:
      return OpType::kAvgPool;
    case ModelKind::kMaxPool:
      return OpType::kMaxPool;
    case ModelKind::kBiasAdd:
      return OpType::kBiasAdd;
    case ModelKind::kAdd:
      return OpType::kAdd;
    case ModelKind::kBatchNorm:
      return OpType::kBatchNorm;
    case ModelKind::kRelu:
      return OpType::kRelu;
    case ModelKind::kSigmoid:
      return OpType::kSigmoid;
    case ModelKind::kTanh:
      return OpType::kTanh;
    case ModelKind::kSoftmax:
      return OpType::kSoftmax;
    case ModelKind::kNone:
      break;
  }
  LP_CHECK_MSG(false, "no operator for kind");
  return OpType::kInput;
}

namespace {

std::int64_t pick(Rng& rng, std::initializer_list<std::int64_t> values) {
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(values.size()) - 1));
  return *(values.begin() + static_cast<std::ptrdiff_t>(idx));
}

/// Realistic "stage" of a CNN: spatial extent correlates inversely with
/// channel count, as in every zoo model. Sampling (H, C) jointly keeps the
/// profiled FLOPs range representative — uncorrelated uniform sampling
/// produces absurd configurations (512 channels at 299x299) whose squared
/// errors dominate the NNLS fit and skew the coefficients.
struct Stage {
  std::int64_t h;
  std::initializer_list<std::int64_t> channels;
};

const Stage kStages[] = {
    {299, {3}},          {227, {3}},           {224, {3}},
    {149, {32, 64}},     {147, {64, 96}},      {112, {32, 64, 96, 128}},
    {74, {128}},         {56, {64, 128, 192, 256}},
    {55, {64, 96}},      {37, {128, 256}},     {35, {192, 256, 288}},
    {28, {128, 192, 256, 384, 512}},           {27, {128, 256}},
    {19, {256, 728}},    {17, {768}},          {14, {256, 384, 512}},
    {13, {256, 384, 512}},                     {8, {1280, 2048}},
    {7, {512, 1024, 2048}},
};

NodeConfig sample_conv(Rng& rng, bool depthwise) {
  NodeConfig cfg;
  cfg.op = depthwise ? OpType::kDWConv : OpType::kConv;
  const auto& stage = kStages[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(std::size(kStages)) - 1))];
  std::int64_t cin = *(stage.channels.begin() +
                       static_cast<std::ptrdiff_t>(rng.uniform_int(
                           0, static_cast<std::int64_t>(
                                  stage.channels.size()) -
                                  1)));
  if (depthwise && cin < 16) cin = 32;  // no depthwise RGB stems exist
  std::int64_t h = stage.h;
  // Kernel size: mostly 1x1/3x3, large kernels only in high-res stems.
  std::int64_t k;
  if (depthwise) {
    k = pick(rng, {3, 3, 3, 5});
  } else if (h >= 112) {
    k = pick(rng, {3, 3, 5, 7, 11});
  } else {
    k = pick(rng, {1, 1, 3, 3, 3, 5});
  }
  const std::int64_t stride = pick(rng, {1, 1, 1, 2});
  std::int64_t pad = rng.bernoulli(0.7) ? k / 2 : 0;
  if (h + 2 * pad < k) h = k;  // keep the window inside the input
  cfg.kernel_h = cfg.kernel_w = k;
  cfg.pad_h = cfg.pad_w = pad;
  cfg.in = Shape{1, cin, h, h};
  // Output channels stay within a small factor of the input width.
  const std::int64_t cout = depthwise
                                ? cin
                                : std::clamp<std::int64_t>(
                                      cin * pick(rng, {1, 1, 2, 2, 4}) /
                                          pick(rng, {1, 1, 2}),
                                      16, 2048);
  graph::ConvAttrs attrs{cout, k, k, stride, stride, pad, pad};
  cfg.out = graph::conv_output_shape(cfg.in, attrs, depthwise);
  return cfg;
}

NodeConfig sample_matmul(Rng& rng) {
  NodeConfig cfg;
  cfg.op = OpType::kMatMul;
  const std::int64_t cin =
      pick(rng, {1024, 2048, 4096, 9216, 25088});
  const std::int64_t cout = pick(rng, {100, 1000, 2048, 4096});
  cfg.in = Shape{1, cin};
  cfg.out = Shape{1, cout};
  return cfg;
}

NodeConfig sample_pool(Rng& rng, bool is_max) {
  NodeConfig cfg;
  cfg.op = is_max ? OpType::kMaxPool : OpType::kAvgPool;
  const auto& stage = kStages[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(std::size(kStages)) - 1))];
  const std::int64_t c = std::max<std::int64_t>(
      16, *(stage.channels.begin() +
            static_cast<std::ptrdiff_t>(rng.uniform_int(
                0,
                static_cast<std::int64_t>(stage.channels.size()) - 1))));
  std::int64_t h = stage.h;
  // Global average pools (k == h) appear in every zoo head.
  const std::int64_t k =
      !is_max && h <= 14 && rng.bernoulli(0.3) ? h : pick(rng, {2, 3, 7});
  const std::int64_t stride = pick(rng, {1, 2});
  if (h < k) h = k;
  cfg.kernel_h = cfg.kernel_w = k;
  cfg.in = Shape{1, c, h, h};
  graph::PoolAttrs attrs{k, k, stride, stride, 0, 0, false};
  cfg.out = graph::pool_output_shape(cfg.in, attrs);
  return cfg;
}

NodeConfig sample_elementwise(Rng& rng, OpType op) {
  NodeConfig cfg;
  cfg.op = op;
  // Sizes follow the larger activation-map volumes the zoo produces; the
  // tiniest maps are launch-floor-bound on the GPU and would only teach the
  // regression about a constant it cannot represent.
  const std::int64_t c = pick(rng, {64, 128, 256, 512, 728});
  const std::int64_t h = pick(rng, {28, 56, 112, 149});
  cfg.in = Shape{1, c, h, h};
  cfg.out = cfg.in;
  return cfg;
}

}  // namespace

NodeConfig sample_config(ModelKind kind, Rng& rng) {
  switch (kind) {
    case ModelKind::kConv:
      return sample_conv(rng, false);
    case ModelKind::kDWConv:
      return sample_conv(rng, true);
    case ModelKind::kMatMul:
      return sample_matmul(rng);
    case ModelKind::kMaxPool:
      return sample_pool(rng, true);
    case ModelKind::kAvgPool:
      return sample_pool(rng, false);
    default:
      return sample_elementwise(rng, op_for_kind(kind));
  }
}

}  // namespace lp::profile
