// Offline profiler (Section III-B, step 1).
//
// Samples node configurations, "measures" each on the target hardware model
// with realistic measurement noise, and averages repetitions — producing
// the training/testing data for the LR predictors. Measurements happen at
// zero background load, as in the paper (load is folded in online via k).
#pragma once

#include <vector>

#include "common/rng.h"
#include "flops/features.h"
#include "hw/cpu_model.h"
#include "hw/gpu_model.h"

namespace lp::profile {

struct ProfileSample {
  flops::NodeConfig cfg;
  double seconds = 0.0;  ///< mean of repeated noisy measurements
};

struct ProfilerParams {
  int samples_per_kind = 400;
  int repetitions = 3;
  double noise_frac = 0.05;  ///< per-measurement multiplicative noise
  std::uint64_t seed = 1234;
};

class OfflineProfiler {
 public:
  OfflineProfiler(const hw::CpuModel& cpu, const hw::GpuModel& gpu,
                  ProfilerParams params = {});

  /// Profiles `params.samples_per_kind` configurations of one node kind on
  /// one device.
  std::vector<ProfileSample> profile(flops::ModelKind kind,
                                     flops::Device device);

 private:
  double measure_once(const flops::NodeConfig& cfg, flops::Device device,
                      Rng& rng) const;

  const hw::CpuModel* cpu_;
  const hw::GpuModel* gpu_;
  ProfilerParams params_;
  Rng rng_;
};

}  // namespace lp::profile
