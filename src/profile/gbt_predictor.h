// Gradient-boosted-tree predictor family (ablation).
//
// Related work predicts layer times with heavier learners (NN-Meter's
// random forests, Habitat's MLPs); the paper argues a user-end device
// needs the light-weight LR models instead. This alternative predictor
// trains a GBT per node kind on the *candidate* feature superset so the
// trade — better conv accuracy vs orders-of-magnitude slower evaluation —
// can be measured (bench/ablation_predictor_family).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "ml/gbt.h"
#include "profile/offline_profiler.h"
#include "profile/trainer.h"

namespace lp::profile {

class GbtPredictor {
 public:
  explicit GbtPredictor(flops::Device device) : device_(device) {}

  flops::Device device() const { return device_; }

  void set_model(flops::ModelKind kind, ml::Gbt model);
  const ml::Gbt* model(flops::ModelKind kind) const;

  /// Predicted seconds; 0 for kinds without models (like NodePredictor).
  double predict_seconds(const flops::NodeConfig& cfg) const;

 private:
  flops::Device device_;
  std::array<std::optional<ml::Gbt>,
             static_cast<std::size_t>(flops::kNumModelKinds)>
      models_;
};

/// Profiles every kind and fits a GBT on the candidate features, with the
/// same train/test split protocol as Trainer. Appends Table-III-style
/// reports when `reports` is non-null.
GbtPredictor train_gbt_all(OfflineProfiler& profiler, flops::Device device,
                           std::vector<TrainReport>* reports = nullptr,
                           const ml::GbtParams& params = {});

}  // namespace lp::profile
