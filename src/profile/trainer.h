// Training of the inference-time prediction models (Section III-B, step 3)
// and the resulting per-device predictor bundle (M_user / M_edge).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "flops/features.h"
#include "ml/linreg.h"
#include "profile/offline_profiler.h"

namespace lp::profile {

/// Held-out evaluation of one trained model — a row of Table III.
struct TrainReport {
  flops::ModelKind kind = flops::ModelKind::kNone;
  flops::Device device = flops::Device::kUser;
  double rmse_sec = 0.0;
  double mape = 0.0;  ///< fraction (0.05 = 5%)
  std::size_t train_n = 0;
  std::size_t test_n = 0;
};

/// The trained prediction models of one device: the paper's M_user or
/// M_edge. predict_seconds returns 0 for node kinds without models, which
/// Section IV assigns zero cost.
class NodePredictor {
 public:
  explicit NodePredictor(flops::Device device) : device_(device) {}

  flops::Device device() const { return device_; }

  void set_model(flops::ModelKind kind, ml::LinearModel model);
  const ml::LinearModel* model(flops::ModelKind kind) const;

  double predict_seconds(const flops::NodeConfig& cfg) const;

  /// True once every kind of Table III has a model.
  bool complete() const;

 private:
  flops::Device device_;
  std::array<std::optional<ml::LinearModel>,
             static_cast<std::size_t>(flops::kNumModelKinds)>
      models_;
};

class Trainer {
 public:
  explicit Trainer(double test_fraction = 0.3, std::uint64_t seed = 5);

  /// Fits one NNLS model on a train split and evaluates on the held-out
  /// test split.
  std::pair<ml::LinearModel, TrainReport> train(
      flops::ModelKind kind, flops::Device device,
      const std::vector<ProfileSample>& samples);

  /// Profiles and trains every model kind for `device`. Appends one
  /// TrainReport per kind to `reports` when non-null.
  NodePredictor train_all(OfflineProfiler& profiler, flops::Device device,
                          std::vector<TrainReport>* reports = nullptr);

 private:
  double test_fraction_;
  Rng rng_;
};

}  // namespace lp::profile
