#include "profile/offline_profiler.h"

#include <algorithm>

#include "profile/sampler.h"

namespace lp::profile {

OfflineProfiler::OfflineProfiler(const hw::CpuModel& cpu,
                                 const hw::GpuModel& gpu,
                                 ProfilerParams params)
    : cpu_(&cpu), gpu_(&gpu), params_(params), rng_(params.seed) {}

double OfflineProfiler::measure_once(const flops::NodeConfig& cfg,
                                     flops::Device device, Rng& rng) const {
  const DurationNs truth = device == flops::Device::kUser
                               ? cpu_->node_time(cfg)
                               : gpu_->kernel_time(cfg);
  const double scale = std::max(0.5, 1.0 + params_.noise_frac * rng.normal());
  return to_seconds(truth) * scale;
}

std::vector<ProfileSample> OfflineProfiler::profile(flops::ModelKind kind,
                                                    flops::Device device) {
  std::vector<ProfileSample> samples;
  samples.reserve(static_cast<std::size_t>(params_.samples_per_kind));
  for (int i = 0; i < params_.samples_per_kind; ++i) {
    ProfileSample s;
    s.cfg = sample_config(kind, rng_);
    double total = 0.0;
    for (int r = 0; r < params_.repetitions; ++r)
      total += measure_once(s.cfg, device, rng_);
    s.seconds = total / params_.repetitions;
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace lp::profile
