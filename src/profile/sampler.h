// Synthetic node-configuration sampler for the offline profiler.
//
// "We investigate some common DNNs to decide the value ranges of attributes
// of different computation nodes. Then, for each kind of computation node,
// we sample uniformly in its corresponding ranges" (Section III-B). Ranges
// below bracket what the zoo models actually contain.
#pragma once

#include "common/rng.h"
#include "flops/flops.h"

namespace lp::profile {

/// Draws one well-formed configuration of the given model kind.
flops::NodeConfig sample_config(flops::ModelKind kind, Rng& rng);

/// Representative operator for a model kind (inverse of model_kind()).
graph::OpType op_for_kind(flops::ModelKind kind);

}  // namespace lp::profile
