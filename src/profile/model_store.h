// Persistence of trained predictors.
//
// "The trained prediction models are stored on both the user-end device and
// the edge server" (Section III-A). A small line-oriented text format keeps
// the store diffable and dependency-free.
#pragma once

#include <string>

#include "profile/trainer.h"

namespace lp::profile {

/// Serializes a predictor bundle: one "<kind> <coef...>" line per model.
std::string serialize_predictor(const NodePredictor& predictor);

/// Parses serialize_predictor output; throws ContractError on malformed
/// input or unknown kinds.
NodePredictor deserialize_predictor(const std::string& text,
                                    flops::Device device);

/// File round-trip helpers.
void save_predictor(const NodePredictor& predictor, const std::string& path);
NodePredictor load_predictor(const std::string& path, flops::Device device);

}  // namespace lp::profile
