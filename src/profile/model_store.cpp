#include "profile/model_store.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace lp::profile {

using flops::ModelKind;

std::string serialize_predictor(const NodePredictor& predictor) {
  std::ostringstream out;
  out.precision(17);
  for (ModelKind kind : flops::all_model_kinds()) {
    const auto* model = predictor.model(kind);
    if (model == nullptr) continue;
    out << static_cast<int>(kind);
    for (double c : model->coefficients()) out << ' ' << c;
    out << '\n';
  }
  return out.str();
}

NodePredictor deserialize_predictor(const std::string& text,
                                    flops::Device device) {
  NodePredictor predictor(device);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    int kind_raw = -1;
    fields >> kind_raw;
    LP_CHECK_MSG(kind_raw >= 0 && kind_raw < flops::kNumModelKinds,
                 "bad model kind in store");
    std::vector<double> coef;
    double c = 0.0;
    while (fields >> c) coef.push_back(c);
    LP_CHECK_MSG(!coef.empty(), "model line without coefficients");
    predictor.set_model(static_cast<ModelKind>(kind_raw),
                        ml::LinearModel(std::move(coef)));
  }
  return predictor;
}

void save_predictor(const NodePredictor& predictor, const std::string& path) {
  std::ofstream out(path);
  LP_CHECK_MSG(out.good(), "cannot open " + path + " for writing");
  out << serialize_predictor(predictor);
}

NodePredictor load_predictor(const std::string& path, flops::Device device) {
  std::ifstream in(path);
  LP_CHECK_MSG(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize_predictor(buf.str(), device);
}

}  // namespace lp::profile
