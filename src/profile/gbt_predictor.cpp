#include "profile/gbt_predictor.h"

#include <cmath>
#include <numeric>

#include "common/check.h"
#include "ml/metrics.h"

namespace lp::profile {

using flops::Device;
using flops::ModelKind;

namespace {
std::size_t kind_index(ModelKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  LP_CHECK(idx < static_cast<std::size_t>(flops::kNumModelKinds));
  return idx;
}
}  // namespace

void GbtPredictor::set_model(ModelKind kind, ml::Gbt model) {
  models_[kind_index(kind)] = std::move(model);
}

const ml::Gbt* GbtPredictor::model(ModelKind kind) const {
  const auto& slot = models_[kind_index(kind)];
  return slot.has_value() ? &*slot : nullptr;
}

double GbtPredictor::predict_seconds(const flops::NodeConfig& cfg) const {
  const auto kind = flops::model_kind(cfg.op);
  if (kind == ModelKind::kNone) return 0.0;
  const auto* m = model(kind);
  if (m == nullptr) return 0.0;
  // Models are fit on log-time (latency targets span five orders of
  // magnitude; a squared-loss fit on raw seconds would only care about the
  // largest layers).
  return std::exp(m->predict(flops::candidate_features_of(cfg)));
}

GbtPredictor train_gbt_all(OfflineProfiler& profiler, Device device,
                           std::vector<TrainReport>* reports,
                           const ml::GbtParams& params) {
  GbtPredictor predictor(device);
  Rng rng(77);
  for (ModelKind kind : flops::all_model_kinds()) {
    const auto samples = profiler.profile(kind, device);
    LP_CHECK(samples.size() >= 10);

    std::vector<std::size_t> order(samples.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i-- > 1;)
      std::swap(order[i],
                order[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i)))]);
    const std::size_t test_n = samples.size() * 3 / 10;

    std::vector<std::vector<double>> train_x, test_x;
    std::vector<double> train_y, test_y;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto& s = samples[order[i]];
      auto feats = flops::candidate_features_of(s.cfg);
      if (i < test_n) {
        test_x.push_back(std::move(feats));
        test_y.push_back(s.seconds);
      } else {
        train_x.push_back(std::move(feats));
        train_y.push_back(std::log(s.seconds));
      }
    }
    auto model = ml::Gbt::fit(train_x, train_y, params);
    if (reports != nullptr) {
      std::vector<double> predicted;
      predicted.reserve(test_x.size());
      for (const auto& row : test_x)
        predicted.push_back(std::exp(model.predict(row)));
      TrainReport report;
      report.kind = kind;
      report.device = device;
      report.rmse_sec = ml::rmse(test_y, predicted);
      report.mape = ml::mape(test_y, predicted);
      report.train_n = train_y.size();
      report.test_n = test_y.size();
      reports->push_back(report);
    }
    predictor.set_model(kind, std::move(model));
  }
  return predictor;
}

}  // namespace lp::profile
