#include "profile/trainer.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "ml/metrics.h"

namespace lp::profile {

using flops::Device;
using flops::ModelKind;

namespace {
std::size_t kind_index(ModelKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  LP_CHECK(idx < static_cast<std::size_t>(flops::kNumModelKinds));
  return idx;
}
}  // namespace

void NodePredictor::set_model(ModelKind kind, ml::LinearModel model) {
  models_[kind_index(kind)] = std::move(model);
}

const ml::LinearModel* NodePredictor::model(ModelKind kind) const {
  const auto& slot = models_[kind_index(kind)];
  return slot.has_value() ? &*slot : nullptr;
}

double NodePredictor::predict_seconds(const flops::NodeConfig& cfg) const {
  const auto kind = flops::model_kind(cfg.op);
  if (kind == ModelKind::kNone) return 0.0;
  const auto* m = model(kind);
  if (m == nullptr) return 0.0;
  return m->predict(flops::features_of(cfg, device_));
}

bool NodePredictor::complete() const {
  for (const auto& slot : models_)
    if (!slot.has_value()) return false;
  return true;
}

Trainer::Trainer(double test_fraction, std::uint64_t seed)
    : test_fraction_(test_fraction), rng_(seed) {
  LP_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
}

std::pair<ml::LinearModel, TrainReport> Trainer::train(
    ModelKind kind, Device device,
    const std::vector<ProfileSample>& samples) {
  LP_CHECK(samples.size() >= 10);

  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i-- > 1;)
    std::swap(order[i], order[static_cast<std::size_t>(
                            rng_.uniform_int(0, static_cast<std::int64_t>(i)))]);

  const auto test_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(samples.size()) *
                                  test_fraction_));
  std::vector<std::vector<double>> train_x, test_x;
  std::vector<double> train_y, test_y;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& s = samples[order[i]];
    auto feats = flops::features_of(s.cfg, device);
    if (i < test_n) {
      test_x.push_back(std::move(feats));
      test_y.push_back(s.seconds);
    } else {
      train_x.push_back(std::move(feats));
      train_y.push_back(s.seconds);
    }
  }

  auto model = ml::LinearModel::fit(train_x, train_y);
  const auto predicted = model.predict_all(test_x);

  TrainReport report;
  report.kind = kind;
  report.device = device;
  report.rmse_sec = ml::rmse(test_y, predicted);
  report.mape = ml::mape(test_y, predicted);
  report.train_n = train_y.size();
  report.test_n = test_y.size();
  return {std::move(model), report};
}

NodePredictor Trainer::train_all(OfflineProfiler& profiler, Device device,
                                 std::vector<TrainReport>* reports) {
  NodePredictor predictor(device);
  for (ModelKind kind : flops::all_model_kinds()) {
    const auto samples = profiler.profile(kind, device);
    auto [model, report] = train(kind, device, samples);
    predictor.set_model(kind, std::move(model));
    if (reports != nullptr) reports->push_back(report);
  }
  LP_CHECK(predictor.complete());
  return predictor;
}

}  // namespace lp::profile
