#include "flops/flops.h"

#include "common/check.h"

namespace lp::flops {

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kConv:
      return "Conv";
    case ModelKind::kDWConv:
      return "DWConv";
    case ModelKind::kMatMul:
      return "Matmul";
    case ModelKind::kAvgPool:
      return "AvgPooling";
    case ModelKind::kMaxPool:
      return "MaxPooling";
    case ModelKind::kBiasAdd:
      return "BiasAdd";
    case ModelKind::kAdd:
      return "Elem-wise Add";
    case ModelKind::kBatchNorm:
      return "BatchNorm";
    case ModelKind::kRelu:
      return "ReLU";
    case ModelKind::kSigmoid:
      return "Sigmoid";
    case ModelKind::kTanh:
      return "Tanh";
    case ModelKind::kSoftmax:
      return "Softmax";
    case ModelKind::kNone:
      return "(none)";
  }
  return "?";
}

const std::vector<ModelKind>& all_model_kinds() {
  static const std::vector<ModelKind> kinds = {
      ModelKind::kConv,    ModelKind::kDWConv,    ModelKind::kMatMul,
      ModelKind::kAvgPool, ModelKind::kMaxPool,   ModelKind::kBiasAdd,
      ModelKind::kAdd,     ModelKind::kBatchNorm, ModelKind::kRelu,
      ModelKind::kSigmoid, ModelKind::kTanh,      ModelKind::kSoftmax};
  return kinds;
}

ModelKind model_kind(graph::OpType op) {
  using graph::OpType;
  switch (op) {
    case OpType::kConv:
      return ModelKind::kConv;
    case OpType::kDWConv:
      return ModelKind::kDWConv;
    case OpType::kMatMul:
      return ModelKind::kMatMul;
    case OpType::kAvgPool:
      return ModelKind::kAvgPool;
    case OpType::kMaxPool:
      return ModelKind::kMaxPool;
    case OpType::kBiasAdd:
      return ModelKind::kBiasAdd;
    case OpType::kAdd:
      return ModelKind::kAdd;
    case OpType::kBatchNorm:
      return ModelKind::kBatchNorm;
    case OpType::kRelu:
      return ModelKind::kRelu;
    case OpType::kSigmoid:
      return ModelKind::kSigmoid;
    case OpType::kTanh:
      return ModelKind::kTanh;
    case OpType::kSoftmax:
      return ModelKind::kSoftmax;
    case OpType::kInput:
    case OpType::kConcat:
    case OpType::kFlatten:
    case OpType::kMakeTuple:
    case OpType::kReturn:
      return ModelKind::kNone;
  }
  return ModelKind::kNone;
}

NodeConfig config_of(const graph::Graph& g, graph::NodeId id) {
  const auto& node = g.node(id);
  LP_CHECK(node.is_cnode());
  NodeConfig cfg;
  cfg.op = node.op;
  cfg.out = node.output.shape;
  // Primary input = first data input: a CNode, or a boundary Parameter
  // standing in for one in a partition segment (weights are skipped).
  for (graph::NodeId in : node.inputs) {
    const auto& src = g.node(in);
    if (src.is_cnode() || src.boundary) {
      cfg.in = src.output.shape;
      break;
    }
  }
  if (node.op == graph::OpType::kInput) cfg.in = cfg.out;
  if (const auto* conv = std::get_if<graph::ConvAttrs>(&node.attrs)) {
    cfg.kernel_h = conv->kernel_h;
    cfg.kernel_w = conv->kernel_w;
    cfg.pad_h = conv->pad_h;
    cfg.pad_w = conv->pad_w;
  } else if (const auto* pool = std::get_if<graph::PoolAttrs>(&node.attrs)) {
    cfg.kernel_h = pool->kernel_h;
    cfg.kernel_w = pool->kernel_w;
    cfg.pad_h = pool->pad_h;
    cfg.pad_w = pool->pad_w;
  }
  return cfg;
}

std::int64_t flops_of(const NodeConfig& cfg) {
  using graph::OpType;
  const ModelKind kind = model_kind(cfg.op);
  if (kind == ModelKind::kNone) return 0;
  switch (cfg.op) {
    case OpType::kConv:
      // N * C_in * H_out * W_out * K_H * K_W * C_out
      return cfg.out.n() * cfg.in.c() * cfg.out.h() * cfg.out.w() *
             cfg.kernel_h * cfg.kernel_w * cfg.out.c();
    case OpType::kDWConv:
      // N * C_in * H_out * W_out * K_H * K_W
      return cfg.out.n() * cfg.in.c() * cfg.out.h() * cfg.out.w() *
             cfg.kernel_h * cfg.kernel_w;
    case OpType::kMatMul:
      // N * C_in * C_out
      return cfg.in.dim(0) * cfg.in.dim(1) * cfg.out.dim(1);
    case OpType::kMaxPool:
    case OpType::kAvgPool:
      // N * C_out * H_out * W_out * K_H * K_W
      return cfg.out.n() * cfg.out.c() * cfg.out.h() * cfg.out.w() *
             cfg.kernel_h * cfg.kernel_w;
    default:
      // Element-wise family: the input tensor's total size.
      return cfg.in.elements();
  }
}

std::int64_t graph_flops(const graph::Graph& g) {
  std::int64_t total = 0;
  for (graph::NodeId id : g.backbone()) total += flops_of(config_of(g, id));
  return total;
}

}  // namespace lp::flops
