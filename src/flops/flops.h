// FLOPs accounting (Table I) and prediction-model taxonomy.
//
// Each CNode maps to one of the prediction-model kinds of Table III (or to
// kNone — nodes without developed models, which Section IV assigns zero
// cost). A NodeConfig captures everything the cost and prediction models
// need about one node, independent of the graph it came from, so the offline
// profiler can sample synthetic configurations uniformly.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "tensor/shape.h"

namespace lp::flops {

/// The prediction-model families of Table III.
enum class ModelKind {
  kConv,
  kDWConv,
  kMatMul,
  kAvgPool,
  kMaxPool,
  kBiasAdd,
  kAdd,
  kBatchNorm,
  kRelu,
  kSigmoid,
  kTanh,
  kSoftmax,
  kNone,  // Input / Concat / Flatten / MakeTuple / Return: f = g = 0
};

constexpr int kNumModelKinds = 12;  // excludes kNone

std::string model_kind_name(ModelKind kind);

/// All modeled kinds, in Table III order.
const std::vector<ModelKind>& all_model_kinds();

/// Maps an operator to its prediction-model family.
ModelKind model_kind(graph::OpType op);

/// A node's compute configuration, detached from any graph.
struct NodeConfig {
  graph::OpType op = graph::OpType::kInput;
  Shape in;   // primary (first tensor) input shape
  Shape out;  // output shape
  std::int64_t kernel_h = 0;  // conv/pool only
  std::int64_t kernel_w = 0;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
};

/// Extracts the configuration of a CNode in a graph.
NodeConfig config_of(const graph::Graph& g, graph::NodeId id);

/// Table I: FLOPs of a computation node. Nodes with ModelKind kNone
/// contribute 0.
std::int64_t flops_of(const NodeConfig& cfg);

/// Sum of flops_of over the backbone.
std::int64_t graph_flops(const graph::Graph& g);

}  // namespace lp::flops
