// Input features of the inference-time prediction models (Table II).
//
// Features differ between the edge server and the user-end device for
// depth-wise convolutions; all other kinds share one feature set. The
// offline profiler also exposes the wider *candidate* feature sets that the
// paper scored with XGBoost before selecting these.
#pragma once

#include <string>
#include <vector>

#include "flops/flops.h"

namespace lp::flops {

enum class Device { kUser, kEdge };

std::string device_name(Device device);

/// Selected features (Table II) for one node configuration.
std::vector<double> features_of(const NodeConfig& cfg, Device device);

/// Human-readable names matching features_of ordering.
std::vector<std::string> feature_names(ModelKind kind, Device device);

/// Candidate features considered during offline feature selection
/// (superset of Table II; scored by GBT importance in bench/table2).
std::vector<double> candidate_features_of(const NodeConfig& cfg);
std::vector<std::string> candidate_feature_names(ModelKind kind);

/// Size of a single conv filter: s_f = C_in * K_H * K_W.
std::int64_t filter_size(const NodeConfig& cfg);

/// Total size of the padded input feature map (DWConv feature).
std::int64_t padded_size(const NodeConfig& cfg);

}  // namespace lp::flops
