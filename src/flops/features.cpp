#include "flops/features.h"

#include "common/check.h"

namespace lp::flops {

std::string device_name(Device device) {
  return device == Device::kUser ? "user" : "edge";
}

std::int64_t filter_size(const NodeConfig& cfg) {
  return cfg.in.c() * cfg.kernel_h * cfg.kernel_w;
}

std::int64_t padded_size(const NodeConfig& cfg) {
  return cfg.in.n() * cfg.in.c() * (cfg.in.h() + 2 * cfg.pad_h) *
         (cfg.in.w() + 2 * cfg.pad_w);
}

std::vector<double> features_of(const NodeConfig& cfg, Device device) {
  const auto kind = model_kind(cfg.op);
  LP_CHECK_MSG(kind != ModelKind::kNone, "node kind has no prediction model");
  const auto f = static_cast<double>(flops_of(cfg));
  switch (kind) {
    case ModelKind::kConv: {
      const auto sf = static_cast<double>(filter_size(cfg));
      return {f, sf, static_cast<double>(cfg.in.h()) * sf,
              static_cast<double>(cfg.out.c()) * sf};
    }
    case ModelKind::kDWConv: {
      const auto sf = static_cast<double>(filter_size(cfg));
      if (device == Device::kEdge)
        return {f, sf, static_cast<double>(padded_size(cfg))};
      return {f, static_cast<double>(cfg.in.n() * cfg.out.c()) * sf};
    }
    case ModelKind::kMatMul: {
      const auto n = static_cast<double>(cfg.in.dim(0));
      const auto cin = static_cast<double>(cfg.in.dim(1));
      const auto cout = static_cast<double>(cfg.out.dim(1));
      return {f, n * cin, n * cout, cin * cout};
    }
    case ModelKind::kMaxPool:
    case ModelKind::kAvgPool: {
      return {f,
              static_cast<double>(cfg.in.n() * cfg.in.c() * cfg.in.h() *
                                  cfg.in.w()),
              static_cast<double>(cfg.out.n() * cfg.out.c() * cfg.out.h() *
                                  cfg.out.w()),
              static_cast<double>(cfg.out.h() * cfg.out.w())};
    }
    default:
      // BiasAdd / element-wise / BatchNorm / activations: FLOPs only.
      return {f};
  }
}

std::vector<std::string> feature_names(ModelKind kind, Device device) {
  switch (kind) {
    case ModelKind::kConv:
      return {"FLOPs", "s_f", "H_in*s_f", "C_out*s_f"};
    case ModelKind::kDWConv:
      if (device == Device::kEdge) return {"FLOPs", "s_f", "padded_size"};
      return {"FLOPs", "N*C_out*s_f"};
    case ModelKind::kMatMul:
      return {"FLOPs", "N*C_in", "N*C_out", "C_in*C_out"};
    case ModelKind::kMaxPool:
    case ModelKind::kAvgPool:
      return {"FLOPs", "N*C_in*H_in*W_in", "N*C_out*H_out*W_out",
              "H_out*W_out"};
    default:
      return {"FLOPs"};
  }
}

std::vector<double> candidate_features_of(const NodeConfig& cfg) {
  const auto kind = model_kind(cfg.op);
  LP_CHECK(kind != ModelKind::kNone);
  const auto f = static_cast<double>(flops_of(cfg));
  switch (kind) {
    case ModelKind::kConv:
    case ModelKind::kDWConv: {
      const auto sf = static_cast<double>(filter_size(cfg));
      return {f,
              sf,
              static_cast<double>(cfg.in.h()) * sf,
              static_cast<double>(cfg.out.c()) * sf,
              static_cast<double>(padded_size(cfg)),
              static_cast<double>(cfg.in.n() * cfg.out.c()) * sf,
              static_cast<double>(cfg.in.c()),
              static_cast<double>(cfg.out.c()),
              static_cast<double>(cfg.kernel_h * cfg.kernel_w),
              static_cast<double>(cfg.out.h() * cfg.out.w())};
    }
    case ModelKind::kMatMul: {
      const auto n = static_cast<double>(cfg.in.dim(0));
      const auto cin = static_cast<double>(cfg.in.dim(1));
      const auto cout = static_cast<double>(cfg.out.dim(1));
      return {f, n * cin, n * cout, cin * cout, n, cin, cout};
    }
    case ModelKind::kMaxPool:
    case ModelKind::kAvgPool: {
      return {f,
              static_cast<double>(cfg.in.n() * cfg.in.c() * cfg.in.h() *
                                  cfg.in.w()),
              static_cast<double>(cfg.out.n() * cfg.out.c() * cfg.out.h() *
                                  cfg.out.w()),
              static_cast<double>(cfg.out.h() * cfg.out.w()),
              static_cast<double>(cfg.kernel_h * cfg.kernel_w),
              static_cast<double>(cfg.in.c())};
    }
    default:
      return {f, static_cast<double>(cfg.in.elements())};
  }
}

std::vector<std::string> candidate_feature_names(ModelKind kind) {
  switch (kind) {
    case ModelKind::kConv:
    case ModelKind::kDWConv:
      return {"FLOPs",       "s_f",         "H_in*s_f", "C_out*s_f",
              "padded_size", "N*C_out*s_f", "C_in",     "C_out",
              "K_H*K_W",     "H_out*W_out"};
    case ModelKind::kMatMul:
      return {"FLOPs", "N*C_in", "N*C_out", "C_in*C_out", "N", "C_in",
              "C_out"};
    case ModelKind::kMaxPool:
    case ModelKind::kAvgPool:
      return {"FLOPs",       "N*C_in*H_in*W_in", "N*C_out*H_out*W_out",
              "H_out*W_out", "K_H*K_W",          "C_in"};
    default:
      return {"FLOPs", "input_elements"};
  }
}

}  // namespace lp::flops
