#include "ml/gbt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace lp::ml {

namespace {

struct SplitChoice {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

/// Best variance-reducing split over the candidate rows.
SplitChoice find_split(const std::vector<std::vector<double>>& x,
                       const std::vector<double>& grad,
                       const std::vector<std::size_t>& rows,
                       std::size_t min_leaf) {
  SplitChoice best;
  if (rows.size() < 2 * min_leaf) return best;
  const std::size_t num_features = x[rows.front()].size();

  double total_sum = 0.0;
  for (auto r : rows) total_sum += grad[r];
  const double total_sq =
      total_sum * total_sum / static_cast<double>(rows.size());

  std::vector<std::size_t> sorted = rows;
  for (std::size_t f = 0; f < num_features; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return x[a][f] < x[b][f];
    });
    double left_sum = 0.0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      left_sum += grad[sorted[i]];
      const std::size_t left_n = i + 1;
      const std::size_t right_n = sorted.size() - left_n;
      if (left_n < min_leaf || right_n < min_leaf) continue;
      if (x[sorted[i]][f] == x[sorted[i + 1]][f]) continue;
      const double right_sum = total_sum - left_sum;
      const double gain = left_sum * left_sum / static_cast<double>(left_n) +
                          right_sum * right_sum /
                              static_cast<double>(right_n) -
                          total_sq;
      if (gain > best.gain) {
        best.feature = static_cast<int>(f);
        best.threshold = 0.5 * (x[sorted[i]][f] + x[sorted[i + 1]][f]);
        best.gain = gain;
      }
    }
  }
  return best;
}

}  // namespace

int Gbt::build_node(Tree& tree, const std::vector<std::vector<double>>& x,
                    const std::vector<double>& grad,
                    std::vector<std::size_t> rows, int depth,
                    const GbtParams& params,
                    std::vector<double>& importance) {
  const int id = static_cast<int>(tree.size());
  tree.push_back({});
  double mean = 0.0;
  for (auto r : rows) mean += grad[r];
  mean /= static_cast<double>(rows.size());
  tree[static_cast<std::size_t>(id)].value = mean;

  if (depth >= params.max_depth) return id;
  const auto split =
      find_split(x, grad, rows, params.min_samples_leaf);
  if (split.feature < 0 || split.gain <= 1e-12) return id;

  importance[static_cast<std::size_t>(split.feature)] += split.gain;
  std::vector<std::size_t> left_rows, right_rows;
  for (auto r : rows) {
    (x[r][static_cast<std::size_t>(split.feature)] <= split.threshold
         ? left_rows
         : right_rows)
        .push_back(r);
  }
  const int left =
      build_node(tree, x, grad, std::move(left_rows), depth + 1, params,
                 importance);
  const int right =
      build_node(tree, x, grad, std::move(right_rows), depth + 1, params,
                 importance);
  auto& node = tree[static_cast<std::size_t>(id)];
  node.feature = split.feature;
  node.threshold = split.threshold;
  node.left = left;
  node.right = right;
  return id;
}

double Gbt::tree_predict(const Tree& tree,
                         const std::vector<double>& features) {
  int id = 0;
  while (tree[static_cast<std::size_t>(id)].feature >= 0) {
    const auto& node = tree[static_cast<std::size_t>(id)];
    id = features[static_cast<std::size_t>(node.feature)] <= node.threshold
             ? node.left
             : node.right;
  }
  return tree[static_cast<std::size_t>(id)].value;
}

Gbt Gbt::fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y, const GbtParams& params) {
  LP_CHECK(!x.empty() && x.size() == y.size());
  const std::size_t num_features = x.front().size();
  Gbt model;
  model.learning_rate_ = params.learning_rate;
  model.importance_.assign(num_features, 0.0);
  model.base_ =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(y.size());

  std::vector<double> residual(y.size());
  std::vector<double> current(y.size(), model.base_);
  Rng rng(params.seed);

  for (int t = 0; t < params.num_trees; ++t) {
    for (std::size_t i = 0; i < y.size(); ++i)
      residual[i] = y[i] - current[i];
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < y.size(); ++i)
      if (rng.uniform() < params.subsample) rows.push_back(i);
    if (rows.size() < 2 * params.min_samples_leaf) {
      rows.resize(y.size());
      std::iota(rows.begin(), rows.end(), 0);
    }
    Tree tree;
    build_node(tree, x, residual, std::move(rows), 0, params,
               model.importance_);
    for (std::size_t i = 0; i < y.size(); ++i)
      current[i] += params.learning_rate * tree_predict(tree, x[i]);
    model.trees_.push_back(std::move(tree));
  }

  const double total = std::accumulate(model.importance_.begin(),
                                       model.importance_.end(), 0.0);
  if (total > 0.0)
    for (auto& v : model.importance_) v /= total;
  return model;
}

double Gbt::predict(const std::vector<double>& features) const {
  double out = base_;
  for (const auto& tree : trees_)
    out += learning_rate_ * tree_predict(tree, features);
  return out;
}

std::vector<double> Gbt::predict_all(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace lp::ml
