// Gradient-boosted regression trees with gain-based feature importance.
//
// Stands in for XGBoost in the paper's offline feature-selection step
// (Section III-B): candidate features are scored by their accumulated split
// gain and the top-scoring ones become the LR model inputs of Table II.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace lp::ml {

struct GbtParams {
  int num_trees = 50;
  int max_depth = 4;
  double learning_rate = 0.1;
  std::size_t min_samples_leaf = 5;
  double subsample = 0.8;  ///< row subsampling fraction per tree
  std::uint64_t seed = 7;
};

class Gbt {
 public:
  /// Fits on rows of features x and targets y (equal, non-zero length).
  static Gbt fit(const std::vector<std::vector<double>>& x,
                 const std::vector<double>& y, const GbtParams& params = {});

  double predict(const std::vector<double>& features) const;
  std::vector<double> predict_all(
      const std::vector<std::vector<double>>& x) const;

  /// Total split gain accumulated per feature, normalized to sum to 1
  /// (all-zero when no splits were made).
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  struct TreeNode {
    int feature = -1;       // -1 for leaves
    double threshold = 0.0;
    double value = 0.0;     // leaf prediction
    int left = -1;
    int right = -1;
  };
  using Tree = std::vector<TreeNode>;

  static int build_node(Tree& tree, const std::vector<std::vector<double>>& x,
                        const std::vector<double>& grad,
                        std::vector<std::size_t> rows, int depth,
                        const GbtParams& params,
                        std::vector<double>& importance);
  static double tree_predict(const Tree& tree,
                             const std::vector<double>& features);

  double base_ = 0.0;
  double learning_rate_ = 0.1;
  std::vector<Tree> trees_;
  std::vector<double> importance_;
};

}  // namespace lp::ml
