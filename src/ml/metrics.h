// Regression metrics reported in Table III.
#pragma once

#include <vector>

namespace lp::ml {

/// Rooted mean squared error; inputs must be equally sized and non-empty.
double rmse(const std::vector<double>& truth,
            const std::vector<double>& predicted);

/// Mean absolute percentage error in [0, inf), as a fraction (0.05 = 5%).
/// Zero-valued truths are skipped (they would divide by zero).
double mape(const std::vector<double>& truth,
            const std::vector<double>& predicted);

}  // namespace lp::ml
