#include "ml/metrics.h"

#include <cmath>

#include "common/check.h"

namespace lp::ml {

double rmse(const std::vector<double>& truth,
            const std::vector<double>& predicted) {
  LP_CHECK(!truth.empty() && truth.size() == predicted.size());
  double ss = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(truth.size()));
}

double mape(const std::vector<double>& truth,
            const std::vector<double>& predicted) {
  LP_CHECK(!truth.empty() && truth.size() == predicted.size());
  double total = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 0.0) continue;
    total += std::abs((truth[i] - predicted[i]) / truth[i]);
    ++used;
  }
  LP_CHECK_MSG(used > 0, "all truths are zero");
  return total / static_cast<double>(used);
}

}  // namespace lp::ml
