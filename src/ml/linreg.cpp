#include "ml/linreg.h"

#include "common/check.h"
#include "ml/nnls.h"

namespace lp::ml {

LinearModel::LinearModel(std::vector<double> coefficients)
    : coef_(std::move(coefficients)) {
  for (double c : coef_) LP_CHECK_MSG(c >= 0.0, "coefficients must be >= 0");
}

LinearModel LinearModel::fit(const std::vector<std::vector<double>>& x,
                             const std::vector<double>& y) {
  LP_CHECK(!x.empty() && x.size() == y.size());
  const Matrix a = Matrix::from_rows(x);
  auto result = nnls(a, y);
  return LinearModel(std::move(result.x));
}

double LinearModel::predict(const std::vector<double>& features) const {
  LP_CHECK_MSG(features.size() == coef_.size(), "feature width mismatch");
  double out = 0.0;
  for (std::size_t i = 0; i < coef_.size(); ++i)
    out += coef_[i] * features[i];
  return out;
}

std::vector<double> LinearModel::predict_all(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace lp::ml
