#include "ml/nnls.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace lp::ml {

NnlsResult nnls(const Matrix& a_in, const std::vector<double>& b) {
  const std::size_t m = a_in.rows();
  const std::size_t n = a_in.cols();
  LP_CHECK(b.size() == m);

  // Normalize columns to unit 2-norm; coefficients are rescaled at the end.
  std::vector<double> col_scale(n, 1.0);
  Matrix a = a_in;
  for (std::size_t c = 0; c < n; ++c) {
    double norm = 0.0;
    for (std::size_t r = 0; r < m; ++r) norm += a.at(r, c) * a.at(r, c);
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      col_scale[c] = norm;
      for (std::size_t r = 0; r < m; ++r) a.at(r, c) /= norm;
    }
  }

  std::vector<bool> passive(n, false);
  std::vector<double> x(n, 0.0);

  auto residual_vec = [&](const std::vector<double>& xv) {
    std::vector<double> r = b;
    for (std::size_t row = 0; row < m; ++row)
      for (std::size_t c = 0; c < n; ++c) r[row] -= a.at(row, c) * xv[c];
    return r;
  };

  // Least squares restricted to the passive set; zeros elsewhere.
  auto solve_passive = [&]() {
    std::vector<std::size_t> idx;
    for (std::size_t c = 0; c < n; ++c)
      if (passive[c]) idx.push_back(c);
    std::vector<double> z(n, 0.0);
    if (idx.empty()) return z;
    Matrix sub(m, idx.size());
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t j = 0; j < idx.size(); ++j)
        sub.at(r, j) = a.at(r, idx[j]);
    const auto sol = least_squares(sub, b);
    for (std::size_t j = 0; j < idx.size(); ++j) z[idx[j]] = sol[j];
    return z;
  };

  constexpr double kTol = 1e-10;
  const int max_iter = static_cast<int>(3 * n) + 30;
  NnlsResult result;

  for (int iter = 0; iter < max_iter; ++iter) {
    result.iterations = iter;
    // Gradient w = A^T (b - A x); pick the most positive inactive component.
    const auto r = residual_vec(x);
    double best_w = kTol;
    std::size_t best_c = n;
    for (std::size_t c = 0; c < n; ++c) {
      if (passive[c]) continue;
      double w = 0.0;
      for (std::size_t row = 0; row < m; ++row) w += a.at(row, c) * r[row];
      if (w > best_w) {
        best_w = w;
        best_c = c;
      }
    }
    if (best_c == n) break;  // KKT satisfied
    passive[best_c] = true;

    // Inner loop: retreat until the passive solution is feasible.
    for (;;) {
      auto z = solve_passive();
      bool feasible = true;
      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < n; ++c) {
        if (!passive[c] || z[c] > kTol) continue;
        feasible = false;
        const double denom = x[c] - z[c];
        if (denom > 0.0) alpha = std::min(alpha, x[c] / denom);
      }
      if (feasible) {
        x = std::move(z);
        break;
      }
      LP_CHECK(std::isfinite(alpha));
      for (std::size_t c = 0; c < n; ++c)
        if (passive[c]) x[c] += alpha * (z[c] - x[c]);
      for (std::size_t c = 0; c < n; ++c)
        if (passive[c] && x[c] <= kTol) {
          x[c] = 0.0;
          passive[c] = false;
        }
    }
  }

  // Rescale to the original column magnitudes.
  for (std::size_t c = 0; c < n; ++c)
    x[c] = col_scale[c] > 0.0 ? x[c] / col_scale[c] : 0.0;

  // Residual against the original matrix.
  double ss = 0.0;
  for (std::size_t row = 0; row < m; ++row) {
    double pred = 0.0;
    for (std::size_t c = 0; c < n; ++c) pred += a_in.at(row, c) * x[c];
    const double d = b[row] - pred;
    ss += d * d;
  }
  result.residual = std::sqrt(ss);
  result.x = std::move(x);
  return result;
}

}  // namespace lp::ml
