#include "ml/matrix.h"

#include <cmath>

#include "common/check.h"

namespace lp::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  LP_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  LP_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  LP_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = at(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out.at(r, c) += v * other.at(k, c);
    }
  return out;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  LP_CHECK(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += at(r, c) * v[c];
  return out;
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  LP_CHECK(!rows.empty() && !rows.front().empty());
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    LP_CHECK_MSG(rows[r].size() == m.cols(), "ragged rows");
    for (std::size_t c = 0; c < m.cols(); ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

std::vector<double> cholesky_solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  LP_CHECK(a.cols() == n && b.size() == n);
  // Ridge scaled to the diagonal magnitude keeps near-singular systems
  // solvable without visibly biasing well-conditioned ones.
  double diag_max = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    diag_max = std::max(diag_max, std::abs(a.at(i, i)));
  const double ridge = diag_max * 1e-10 + 1e-12;
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) += ridge;

  // In-place Cholesky: a becomes L (lower triangular).
  for (std::size_t j = 0; j < n; ++j) {
    double d = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a.at(j, k) * a.at(j, k);
    LP_CHECK_MSG(d > 0.0, "matrix not positive definite");
    a.at(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = s / a.at(j, j);
    }
  }
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a.at(i, k) * b[k];
    b[i] = s / a.at(i, i);
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a.at(k, ii) * b[k];
    b[ii] = s / a.at(ii, ii);
  }
  return b;
}

std::vector<double> least_squares(const Matrix& a,
                                  const std::vector<double>& b) {
  LP_CHECK(a.rows() == b.size());
  const Matrix at = a.transpose();
  const Matrix ata = at.multiply(a);
  const std::vector<double> atb = at.multiply(b);
  return cholesky_solve(ata, atb);
}

}  // namespace lp::ml
