// Non-negative least squares (Lawson & Hanson 1974, Algorithm NNLS).
//
// The paper trains its LR predictors "by fitting the non-negative least
// squares to keep all its regression coefficients positive and not fitting
// the intercept", so a zero feature vector predicts zero time.
#pragma once

#include <vector>

#include "ml/matrix.h"

namespace lp::ml {

struct NnlsResult {
  std::vector<double> x;   ///< coefficients, all >= 0
  double residual = 0.0;   ///< ||A x - b||_2
  int iterations = 0;
};

/// Solves min ||A x - b||_2 subject to x >= 0.
///
/// Columns are internally normalized for conditioning; the returned
/// coefficients apply to the original (unnormalized) columns.
NnlsResult nnls(const Matrix& a, const std::vector<double>& b);

}  // namespace lp::ml
