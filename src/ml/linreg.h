// Linear regression with non-negative coefficients and no intercept — the
// inference-time prediction model family of Section III-B.
#pragma once

#include <string>
#include <vector>

#include "ml/matrix.h"

namespace lp::ml {

class LinearModel {
 public:
  LinearModel() = default;
  explicit LinearModel(std::vector<double> coefficients);

  /// Fits by NNLS. X rows are feature vectors, y the targets (same length).
  static LinearModel fit(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y);

  double predict(const std::vector<double>& features) const;
  std::vector<double> predict_all(
      const std::vector<std::vector<double>>& x) const;

  const std::vector<double>& coefficients() const { return coef_; }
  bool trained() const { return !coef_.empty(); }

 private:
  std::vector<double> coef_;
};

}  // namespace lp::ml
