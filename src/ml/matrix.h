// Small dense linear algebra for the offline trainer.
#pragma once

#include <cstddef>
#include <vector>

namespace lp::ml {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  Matrix transpose() const;
  Matrix multiply(const Matrix& other) const;
  std::vector<double> multiply(const std::vector<double>& v) const;

  /// Builds a matrix from rows (all rows must be equally long, non-empty).
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the symmetric positive (semi-)definite system A x = b via Cholesky
/// with a small diagonal ridge for robustness. A must be square and match b.
std::vector<double> cholesky_solve(Matrix a, std::vector<double> b);

/// Ordinary least squares min ||A x - b||_2 via normal equations.
std::vector<double> least_squares(const Matrix& a,
                                  const std::vector<double>& b);

}  // namespace lp::ml
