// End-to-end experiment harness: wires the simulated testbed (device CPU,
// GPU scheduler with background load, WiFi link) to an offloading policy and
// runs a request stream, producing the latency series the paper's figures
// plot.
#pragma once

#include <string>
#include <vector>

#include "core/offload_runtime.h"
#include "hw/load_generator.h"
#include "net/bandwidth_trace.h"

namespace lp::core {

/// A step of the background-load schedule (Figures 2 and 9).
struct LoadPhase {
  TimeNs at;
  hw::LoadLevel level;
};

struct ExperimentConfig {
  Policy policy = Policy::kLoadPart;
  net::BandwidthTrace upload = net::BandwidthTrace::constant(mbps(8));
  net::BandwidthTrace download = net::BandwidthTrace::constant(mbps(8));
  std::vector<LoadPhase> load_schedule = {{0, hw::LoadLevel::k0}};
  DurationNs duration = seconds(30);
  DurationNs request_gap = milliseconds(15);  // idle gap between requests
  DurationNs profiler_period = seconds(5);    // device runtime profiler
  DurationNs watcher_period = seconds(10);    // server GPU watcher
  DurationNs warmup = seconds(1);  // excluded from summary statistics
  RuntimeParams runtime;
  std::uint64_t seed = 1;
};

struct ExperimentResult {
  std::vector<InferenceRecord> records;  // all, including warmup
  DurationNs warmup = 0;

  /// Self-scored quality of the server's load predictor over the run: mean
  /// |error| and signed bias of its one-gap-ahead k forecasts, plus how
  /// many forecasts were scored. Zero when nothing was scored.
  double predict_mae = 0.0;
  double predict_bias = 0.0;
  std::uint64_t predict_scored = 0;

  /// Records after the warmup cutoff.
  std::vector<const InferenceRecord*> steady() const;
  double mean_latency_sec() const;
  double max_latency_sec() const;
  double percentile_latency_sec(double q) const;
  /// Most frequently chosen partition point in steady state.
  std::size_t modal_p() const;
};

/// Runs one experiment; deterministic given the config seed.
ExperimentResult run_experiment(const graph::Graph& model,
                                const PredictorBundle& predictors,
                                const ExperimentConfig& config);

}  // namespace lp::core
