#include "core/offload_runtime.h"

#include <algorithm>

#include "common/check.h"
#include "partition/partitioner.h"

namespace lp::core {

std::string policy_name(Policy policy) {
  switch (policy) {
    case Policy::kLoadPart:
      return "LoADPart";
    case Policy::kNeurosurgeon:
      return "Neurosurgeon";
    case Policy::kLocalOnly:
      return "Local";
    case Policy::kFullOffload:
      return "FullOffload";
    case Policy::kFixedPoint:
      return "FixedPoint";
  }
  return "?";
}

namespace {
/// Multiplicative jitter factor, clamped away from zero.
double jitter_scale(Rng& rng, double frac) {
  return std::max(0.2, 1.0 + frac * rng.normal());
}

/// Heap-allocated per-attempt reply block. The client and the server (and
/// the client's own deadline watcher) all hold it through shared_ptr /
/// SuffixRequest::keepalive, so whichever side finishes last still writes
/// into live memory — a client that gives up on an attempt can safely
/// abandon it.
struct PendingReply {
  explicit PendingReply(sim::Simulator& sim) : done(sim) {}
  sim::Event done;
  double exec = 0.0;
  double overhead = 0.0;
  double queue_wait = 0.0;
  SuffixStatus status = SuffixStatus::kServed;
};

/// Fires at `deadline`; if the reply is still pending, resolves it as a
/// client-side timeout. Whoever triggers `done` first wins — the loser
/// sees triggered() and backs off, so the waiter resumes exactly once.
sim::Task watch_deadline(sim::Simulator& sim,
                         std::shared_ptr<PendingReply> reply,
                         TimeNs deadline) {
  co_await sim.delay(std::max<DurationNs>(0, deadline - sim.now()));
  if (!reply->done.triggered()) {
    reply->status = SuffixStatus::kClientTimeout;
    reply->done.trigger();
  }
}
}  // namespace

// ---------------------------------------------------------------- server --

OffloadServer::OffloadServer(sim::Simulator& sim, hw::GpuScheduler& scheduler,
                             const hw::GpuModel& gpu,
                             const GraphCostProfile& profile,
                             RuntimeParams params, std::uint64_t seed)
    : sim_(&sim),
      scheduler_(&scheduler),
      gpu_(&gpu),
      profile_(&profile),
      params_(params),
      ctx_(scheduler.create_context("offload-service")),
      cache_(params.cache_capacity),
      k_(params.k_window),
      predictor_(predict::make_predictor(params.predictor)),
      requests_(sim),
      rng_(seed) {
  sim_->spawn(service());
}

SubmitStatus OffloadServer::submit(SuffixRequest request) {
  LP_CHECK(request.done != nullptr);
  LP_CHECK_MSG(request.p < profile_->n(),
               "nothing to execute on the server at p = n");
  request.enqueued = sim_->now();
  requests_.send(request);
  return SubmitStatus::kAccepted;
}

sim::Task OffloadServer::service() {
  // Fig. 3: the main service thread — receive a request, partition/execute,
  // signal the result ready for download.
  for (;;) {
    const SuffixRequest request = co_await requests_.receive();
    if (request.queue_wait_seconds != nullptr)
      *request.queue_wait_seconds = to_seconds(sim_->now() - request.enqueued);
    co_await execute_suffix(request.p, request.exec_seconds,
                            request.overhead_seconds);
    // The client's deadline watcher may have resolved the attempt already;
    // its trigger wins and the late result is dropped.
    if (!request.done->triggered()) {
      if (request.status != nullptr) *request.status = SuffixStatus::kServed;
      request.done->trigger();
    }
  }
}

sim::Task OffloadServer::execute_suffix(std::size_t p, double* exec_seconds,
                                        double* overhead_seconds) {
  const auto& g = profile_->graph();
  const std::size_t n = profile_->n();
  LP_CHECK_MSG(p < n, "nothing to execute on the server at p = n");

  // Partition cache: a miss pays graph partitioning + runtime preparation.
  double overhead = 0.0;
  if (cache_.find(p) == nullptr) {
    auto plan = partition::partition_at(g, p);
    const std::size_t nodes =
        plan.server_part ? plan.server_part->backbone().size() : 0;
    overhead = params_.server_partition_base_sec +
               params_.server_partition_per_node_sec *
                   static_cast<double>(nodes);
    co_await sim_->delay(seconds(overhead));
    cache_.insert(std::move(plan));
  }
  if (overhead_seconds != nullptr) *overhead_seconds = overhead;

  // Execute the suffix kernels on the (possibly contended) GPU.
  auto kernels = params_.fused_server_kernels
                     ? gpu_->fused_segment_kernels(g, p + 1, n)
                     : gpu_->segment_kernels(g, p + 1, n);
  const double jf = gpu_->params().jitter_frac;
  for (auto& k : kernels)
    k = std::max<DurationNs>(
        1, static_cast<DurationNs>(static_cast<double>(k) *
                                   jitter_scale(rng_, jf)));
  // Contention snapshot: other tenants' kernels already queued when this
  // partition is submitted. Uncontended measurements calibrate the idle
  // baseline of k.
  const bool contended = scheduler_->pending_kernels() > 4;
  const TimeNs begin = sim_->now();
  co_await scheduler_->run_job(ctx_, std::move(kernels));
  const double measured = to_seconds(sim_->now() - begin);
  if (exec_seconds != nullptr) *exec_seconds = measured;

  // Runtime profiler bookkeeping (Section III-C): ratio of measured over
  // model-predicted time for this partition.
  const double predicted = profile_->suffix_g(p);
  if (predicted > 0.0) {
    k_.record(measured, predicted, contended);
    // The predictor sees the published series: every k mutation feeds it,
    // so the last-value forecast is exactly the reactive value.
    predictor_->observe(sim_->now(), k_.k());
  }
}

LoadSignal OffloadServer::load_signal(std::uint64_t /*session*/,
                                      DurationNs horizon) const {
  LoadSignal sig;
  sig.k_now = k_.k();
  sig.k_forecast = sig.k_now;
  if (predictor_->samples() > 0) {
    // Constraint 1c applies to the forecast as much as to the measurement.
    sig.k_forecast = std::max(1.0, predictor_->forecast(horizon));
    sig.age_ns = sim_->now() - predictor_->last_observed();
    sig.confidence = predictor_->confidence();
  }
  return sig;
}

void OffloadServer::start_gpu_watcher(DurationNs period) {
  watcher_busy_mark_ = scheduler_->busy_ns();
  watcher_time_mark_ = sim_->now();
  sim_->spawn(gpu_watcher(period));
}

sim::Task OffloadServer::gpu_watcher(DurationNs period) {
  LP_CHECK(period > 0);
  for (;;) {
    co_await sim_->delay(period);
    const DurationNs busy = scheduler_->busy_ns();
    const double util = static_cast<double>(busy - watcher_busy_mark_) /
                        static_cast<double>(sim_->now() - watcher_time_mark_);
    watcher_busy_mark_ = busy;
    watcher_time_mark_ = sim_->now();
    if (util < params_.gpu_util_threshold) {
      k_.reset_idle();
      predictor_->observe(sim_->now(), k_.k());
    }
  }
}

// ---------------------------------------------------------------- client --

OffloadClient::OffloadClient(sim::Simulator& sim, const hw::CpuModel& cpu,
                             const GraphCostProfile& profile, net::Link& link,
                             SuffixService& server, Policy policy,
                             RuntimeParams params, std::uint64_t seed,
                             std::uint64_t session)
    : sim_(&sim),
      cpu_(&cpu),
      profile_(&profile),
      link_(&link),
      server_(&server),
      policy_(policy),
      params_(params),
      session_(session),
      estimator_(params.bandwidth_window),
      cache_(params.cache_capacity),
      infer_slot_(sim, 1),
      breaker_(params.fault.breaker_failures,
               seconds(params.fault.breaker_cooldown_sec)),
      rng_(seed) {}

void OffloadClient::set_telemetry(obs::Telemetry* telemetry,
                                  const std::string& track) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  auto& metrics = telemetry_->metrics();
  for (std::size_t i = 0; i < obs::kOutcomeCount; ++i)
    outcome_counters_[i] = &metrics.counter(
        std::string("core.outcome.") +
        obs::outcome_name(static_cast<obs::Outcome>(i)));
  failure_counters_[0] = nullptr;  // kNone is not a fault
  for (std::size_t i = 1; i < obs::kFailureKindCount; ++i)
    failure_counters_[i] = &metrics.counter(
        std::string("core.failure.") +
        obs::failure_name(static_cast<obs::FailureKind>(i)));
  retry_counter_ = &metrics.counter("core.retries");
  breaker_counter_ = &metrics.counter("core.breaker_local");
  latency_ms_ = &metrics.histogram("core.request_ms", 0.0, 1000.0, 200);
  queue_wait_ms_ = &metrics.histogram("core.queue_wait_ms", 0.0, 500.0, 100);
  if (auto* tr = telemetry_->trace()) track_ = tr->track(track);
}

void OffloadClient::record_request_metrics(const InferenceRecord& rec) {
  if (telemetry_ == nullptr) return;
  outcome_counters_[static_cast<std::size_t>(rec.outcome)]->add();
  retry_counter_->add(rec.retries);
  if (rec.breaker_forced_local) breaker_counter_->add();
  latency_ms_->record(rec.total_sec * 1e3);
  if (rec.outcome == InferenceOutcome::kAdmitted)
    queue_wait_ms_->record(rec.queue_wait_sec * 1e3);
}

double OffloadClient::partition_overhead_sec(std::size_t nodes,
                                             bool device) const {
  return device ? params_.device_partition_base_sec +
                      params_.device_partition_per_node_sec *
                          static_cast<double>(nodes)
                : params_.server_partition_base_sec +
                      params_.server_partition_per_node_sec *
                          static_cast<double>(nodes);
}

Decision OffloadClient::current_decision() const {
  const std::size_t n = profile_->n();
  switch (policy_) {
    case Policy::kLoadPart:
      return decide(*profile_, k_cached_, estimator_.estimate());
    case Policy::kNeurosurgeon:
      // Bandwidth-aware but load-oblivious: k stays frozen at the first
      // value fetched (the idle-server calibration), so the partition point
      // is the one LoADPart would choose at 0% load (Section V-C).
      return decide(*profile_, k_cached_, estimator_.estimate());
    case Policy::kLocalOnly:
      return Decision{n, profile_->predicted_latency(
                             n, 1.0, estimator_.estimate())};
    case Policy::kFullOffload:
      return Decision{0, profile_->predicted_latency(
                             0, 1.0, estimator_.estimate())};
    case Policy::kFixedPoint: {
      const std::size_t p = std::min(params_.fixed_p, n);
      return Decision{p, profile_->predicted_latency(
                             p, 1.0, estimator_.estimate())};
    }
  }
  return Decision{n, 0.0};
}

void OffloadClient::rebind(SuffixService& server, std::uint64_t session) {
  server_ = &server;
  session_ = session;
  // Cold-start weights are per-server: whatever was shipped stayed behind.
  if (!params_.weights_preloaded)
    params_on_server_.assign(params_on_server_.size(), false);
  if (telemetry_ != nullptr) {
    if (auto* tr = trace())
      tr->instant(track_, "rebind", sim_->now(),
                  obs::TraceArgs().arg("session", session));
  }
}

sim::Task OffloadClient::run_suffix_locally(std::size_t p,
                                            InferenceRecord* rec) {
  const auto& g = profile_->graph();
  const std::size_t n = profile_->n();
  const DurationNs base = cpu_->segment_time(g, p + 1, n);
  const DurationNs actual = std::max<DurationNs>(
      1, static_cast<DurationNs>(
             static_cast<double>(base) *
             jitter_scale(rng_, cpu_->params().jitter_frac)));
  const TimeNs begin = sim_->now();
  co_await sim_->delay(actual);
  rec->device_sec += to_seconds(actual);
  if (auto* tr = trace())
    tr->span(track_, "suffix-local", begin, sim_->now(),
             obs::TraceArgs().arg("p", p));
}

sim::Task OffloadClient::infer(InferenceRecord* out) {
  LP_CHECK(out != nullptr);
  co_await infer_slot_.acquire();  // one inference at a time on the device
  const auto& g = profile_->graph();
  const std::size_t n = profile_->n();

  InferenceRecord rec;
  rec.start = sim_->now();
  Decision decision = current_decision();
  // Cluster degradation: the router lost control-plane quorum and pinned
  // every client to device-local execution until it can see a majority
  // again (cheaper than thrashing reroutes against unknown servers).
  if (forced_local_ && decision.p < n) {
    decision =
        Decision{n, profile_->predicted_latency(n, 1.0, estimator_.estimate())};
  }
  // An open circuit breaker pins the policy to local-only until the
  // cooldown admits a half-open probe.
  if (decision.p < n && breaker_.enabled() &&
      !breaker_.allow(sim_->now())) {
    decision =
        Decision{n, profile_->predicted_latency(n, 1.0, estimator_.estimate())};
    rec.breaker_forced_local = true;
  }
  rec.p = decision.p;
  rec.predicted_sec = decision.predicted_latency;
  rec.k_used = policy_ == Policy::kLoadPart ||
                       policy_ == Policy::kNeurosurgeon
                   ? k_cached_
                   : 1.0;
  rec.bandwidth_est_bps = estimator_.estimate();
  const std::size_t p = decision.p;

  if (auto* tr = trace()) {
    tr->instant(track_, "partition-decision", rec.start,
                obs::TraceArgs()
                    .arg("p", p)
                    .arg("k", rec.k_used)
                    .arg("bw_mbps", rec.bandwidth_est_bps / 1e6)
                    .arg("predicted_ms", rec.predicted_sec * 1e3)
                    .arg("breaker_forced_local", rec.breaker_forced_local));
  }

  // Device-side partition cache.
  const partition::PartitionPlan* plan = cache_.find(p);
  if (plan == nullptr) {
    auto fresh = partition::partition_at(g, p);
    const std::size_t nodes =
        fresh.device_part ? fresh.device_part->backbone().size() : 0;
    const double overhead = partition_overhead_sec(nodes, /*device=*/true);
    rec.overhead_sec += overhead;
    const TimeNs prep_begin = sim_->now();
    co_await sim_->delay(seconds(overhead));
    if (auto* tr = trace())
      tr->span(track_, "partition-prepare", prep_begin, sim_->now(),
               obs::TraceArgs().arg("p", p).arg("nodes", nodes));
    cache_.insert(std::move(fresh));
    plan = cache_.find(p);
    LP_CHECK(plan != nullptr);
  }

  // Execute the device prefix {L1..Lp}.
  if (p > 0) {
    const DurationNs base = cpu_->segment_time(g, 0, p);
    const DurationNs actual = std::max<DurationNs>(
        1, static_cast<DurationNs>(
               static_cast<double>(base) *
               jitter_scale(rng_, cpu_->params().jitter_frac)));
    const TimeNs exec_begin = sim_->now();
    co_await sim_->delay(actual);
    if (auto* tr = trace())
      tr->span(track_, "prefix-exec", exec_begin, sim_->now(),
               obs::TraceArgs().arg("p", p));
    rec.device_sec = to_seconds(actual);
  }

  if (p < n) {
    // Cold start (IONN setting): ship any suffix Parameters the server
    // does not hold yet before the partition can execute there.
    if (!params_.weights_preloaded) {
      if (params_on_server_.empty())
        params_on_server_.assign(g.node_count(), false);
      std::int64_t missing = 0;
      for (std::size_t i = p + 1; i <= n; ++i) {
        for (graph::NodeId in : g.node(g.backbone()[i]).inputs) {
          const auto& src = g.node(in);
          if (!src.is_param() ||
              params_on_server_[static_cast<std::size_t>(in)])
            continue;
          missing += src.output.bytes();
          params_on_server_[static_cast<std::size_t>(in)] = true;
        }
      }
      if (missing > 0) {
        DurationNs weights_ns = 0;
        co_await link_->upload(missing, &weights_ns);
        rec.weight_upload_sec = to_seconds(weights_ns);
        rec.upload_bytes += missing;
        estimator_.add_transfer(missing, weights_ns);
      }
    }

    // Ship the boundary tensors (plus the partition-point header), submit
    // the suffix, wait for the result, download it. Each of those steps
    // can fault; the device still holds the boundary tensor at the cut, so
    // a failed attempt is retried (with backoff) or failed over to local
    // execution of {Lp+1..Ln} — never re-run from scratch.
    const std::int64_t payload =
        plan->boundary_bytes + params_.header_bytes;
    const auto& fp = params_.fault;
    bool resolved = false;
    for (int attempt = 0; !resolved;) {
      const TimeNs attempt_deadline =
          fp.rpc_timeout_sec > 0.0
              ? sim_->now() + seconds(fp.rpc_timeout_sec)
              : 0;
      FailureKind failure = FailureKind::kNone;

      DurationNs upload_ns = 0;
      net::TransferOutcome up;
      co_await link_->upload(payload, &upload_ns, attempt_deadline, &up);
      if (up.status == net::TransferStatus::kOk) {
        rec.upload_sec += to_seconds(upload_ns);
        rec.upload_bytes += payload;
        // Passive bandwidth measurement (Section IV): real uploads feed
        // the sliding window alongside the active probes.
        estimator_.add_transfer(payload, upload_ns);
      } else {
        failure = up.status == net::TransferStatus::kLost
                      ? FailureKind::kLinkDrop
                      : FailureKind::kTimeout;
      }

      if (failure == FailureKind::kNone) {
        auto reply = std::make_shared<PendingReply>(*sim_);
        SuffixRequest request;
        request.p = p;
        request.done = &reply->done;
        request.exec_seconds = &reply->exec;
        request.overhead_seconds = &reply->overhead;
        request.queue_wait_seconds = &reply->queue_wait;
        request.status = &reply->status;
        request.keepalive = reply;
        request.session = session_;
        if (params_.slo_sec > 0.0)
          request.deadline = rec.start + seconds(params_.slo_sec);
        request.predicted_sec = rec.k_used * profile_->suffix_g(p);
        request.bandwidth_bps = estimator_.estimate();
        const SubmitStatus submit = server_->submit(request);
        if (submit == SubmitStatus::kRejected) {
          // "Server busy": the frontend shed the request. Degrade by
          // finishing the suffix on the device (the uploaded tensors are
          // wasted work) and treat the shed as a load signal. A shed is a
          // *reachability success* for the breaker: the server answered.
          rec.outcome = InferenceOutcome::kDegradedLocal;
          rec.last_failure = FailureKind::kShed;
          if (telemetry_ != nullptr) {
            failure_counters_[static_cast<std::size_t>(FailureKind::kShed)]
                ->add();
            if (auto* tr = trace())
              tr->instant(track_, "shed", sim_->now(),
                          obs::TraceArgs().arg("p", p));
          }
          breaker_.record_success();
          if (policy_ == Policy::kLoadPart)
            k_cached_ = std::min(k_cached_ * params_.reject_k_backoff, 1e6);
          co_await run_suffix_locally(p, &rec);
          resolved = true;
          continue;
        }
        if (submit == SubmitStatus::kDown) {
          // Connection refused: the server is crashed.
          failure = FailureKind::kServerDown;
        } else {
          if (attempt_deadline > 0)
            sim_->spawn(watch_deadline(*sim_, reply, attempt_deadline));
          const TimeNs wait_begin = sim_->now();
          co_await reply->done.wait();
          if (auto* tr = trace()) {
            tr->span(track_, "suffix-wait", wait_begin, sim_->now(),
                     obs::TraceArgs()
                         .arg("p", p)
                         .arg("served",
                              reply->status == SuffixStatus::kServed)
                         .arg("queue_wait_ms", reply->queue_wait * 1e3)
                         .arg("exec_ms", reply->exec * 1e3));
          }
          if (reply->status == SuffixStatus::kServed) {
            DurationNs down_ns = 0;
            net::TransferOutcome down;
            co_await link_->download(g.output_desc().bytes(), &down_ns,
                                     attempt_deadline, &down);
            if (down.status == net::TransferStatus::kOk) {
              rec.server_sec = reply->exec;
              rec.overhead_sec += reply->overhead;
              rec.queue_wait_sec = reply->queue_wait;
              rec.outcome = InferenceOutcome::kAdmitted;
              rec.download_sec = to_seconds(down_ns);
              rec.download_bytes = g.output_desc().bytes();
              breaker_.record_success();
              resolved = true;
              continue;
            }
            failure = down.status == net::TransferStatus::kLost
                          ? FailureKind::kLinkDrop
                          : FailureKind::kTimeout;
          } else if (reply->status == SuffixStatus::kDeadlineShed) {
            // The dispatcher dropped the job because its deadline had
            // already passed in queue — retrying cannot beat a deadline
            // that is already gone, so this resolves exactly like an
            // admission shed: degrade to the device, count the shed as a
            // load signal (k backs off), and let the breaker see a
            // reachability success (the server answered).
            rec.outcome = InferenceOutcome::kDegradedLocal;
            rec.last_failure = FailureKind::kDeadlineShed;
            if (telemetry_ != nullptr) {
              failure_counters_[static_cast<std::size_t>(
                                    FailureKind::kDeadlineShed)]
                  ->add();
              if (auto* tr = trace())
                tr->instant(track_, "deadline-shed", sim_->now(),
                            obs::TraceArgs().arg("p", p));
            }
            breaker_.record_success();
            if (policy_ == Policy::kLoadPart)
              k_cached_ =
                  std::min(k_cached_ * params_.reject_k_backoff, 1e6);
            co_await run_suffix_locally(p, &rec);
            resolved = true;
            continue;
          } else {
            // kFenced means the serving placement was superseded while the
            // job waited — from the client's side that is the same "this
            // endpoint cannot answer" fault as a crash: retry (the rebind
            // hook has usually moved the endpoint already) or fall back.
            failure = reply->status == SuffixStatus::kClientTimeout
                          ? FailureKind::kTimeout
                          : FailureKind::kServerDown;
          }
        }
      }

      // A fault-type failure (timeout / link-drop / server-down).
      rec.last_failure = failure;
      ++rec.faults;
      if (telemetry_ != nullptr) {
        failure_counters_[static_cast<std::size_t>(failure)]->add();
        if (auto* tr = trace())
          tr->instant(track_, "fault", sim_->now(),
                      obs::TraceArgs()
                          .arg("kind", obs::failure_name(failure))
                          .arg("attempt", attempt));
      }
      breaker_.record_failure(sim_->now());
      if (attempt < fp.max_retries) {
        ++attempt;
        ++rec.retries;
        if (auto* tr = trace())
          tr->instant(track_, "retry", sim_->now(),
                      obs::TraceArgs().arg("attempt", attempt));
        co_await sim_->delay(fp.backoff.delay(attempt, rng_));
        continue;
      }
      // Retry budget exhausted: fail over to the device (the boundary
      // tensor is still here) or drop the request (fail-stop).
      if (fp.local_fallback) {
        rec.outcome = InferenceOutcome::kRecoveredLocal;
        if (auto* tr = trace())
          tr->instant(track_, "fallback-local", sim_->now(),
                      obs::TraceArgs().arg("p", p));
        co_await run_suffix_locally(p, &rec);
      } else {
        rec.outcome = InferenceOutcome::kFailed;
        if (auto* tr = trace()) tr->instant(track_, "dropped", sim_->now());
      }
      resolved = true;
    }
  }

  rec.total_sec = to_seconds(sim_->now() - rec.start);
  if (auto* tr = trace()) {
    tr->span(track_, "request", rec.start, sim_->now(),
             obs::TraceArgs()
                 .arg("p", rec.p)
                 .arg("outcome", obs::outcome_name(rec.outcome))
                 .arg("failure", obs::failure_name(rec.last_failure))
                 .arg("predicted_ms", rec.predicted_sec * 1e3)
                 .arg("total_ms", rec.total_sec * 1e3)
                 .arg("retries", rec.retries));
  }
  record_request_metrics(rec);
  *out = rec;
  infer_slot_.release();
}

void OffloadClient::start_runtime_profiler(DurationNs period) {
  sim_->spawn(runtime_profiler(period));
}

sim::Task OffloadClient::runtime_profiler(DurationNs period) {
  LP_CHECK(period > 0);
  const double timeout = params_.fault.rpc_timeout_sec;
  for (;;) {
    // Active bandwidth probe; size adapts to the current estimate.
    const std::int64_t probe = estimator_.next_probe_bytes();
    DurationNs measured = 0;
    net::TransferOutcome probe_out;
    co_await link_->upload(probe, &measured,
                           timeout > 0.0 ? sim_->now() + seconds(timeout) : 0,
                           &probe_out);
    if (probe_out.status == net::TransferStatus::kOk) {
      estimator_.add_transfer(probe, measured);
    } else if (probe_out.status == net::TransferStatus::kTimedOut &&
               probe_out.elapsed > 0) {
      // Censored observation: the probe did NOT finish within `elapsed`, so
      // bytes/elapsed upper-bounds the true bandwidth. Feeding it keeps the
      // estimator tracking during blackouts instead of going blind (a lost
      // probe teaches nothing — loss is bandwidth-independent).
      estimator_.add_sample(static_cast<double>(probe) * 8.0 /
                            to_seconds(probe_out.elapsed));
    }

    // Ask the server-side profiler for the latest load signal (small
    // control message, one round trip), with k forecast one profiler
    // period ahead — the value will steer decisions until the next fetch.
    // The Neurosurgeon baseline keeps only the first (idle-calibration)
    // value. A crashed server refuses the fetch; the cached k survives
    // until the next successful round trip.
    if (server_->alive()) {
      net::TransferOutcome ctl;
      co_await link_->upload(params_.header_bytes, nullptr,
                             timeout > 0.0 ? sim_->now() + seconds(timeout)
                                           : 0,
                             &ctl);
      if (ctl.status == net::TransferStatus::kOk && server_->alive()) {
        const LoadSignal signal = server_->load_signal(session_, period);
        co_await link_->download(params_.header_bytes, nullptr,
                                 timeout > 0.0
                                     ? sim_->now() + seconds(timeout)
                                     : 0,
                                 &ctl);
        if (ctl.status == net::TransferStatus::kOk &&
            (policy_ != Policy::kNeurosurgeon || !k_fetched_once_)) {
          last_signal_ = signal;
          k_cached_ = signal.k_forecast;
          k_fetched_once_ = true;
        }
      }
    }

    co_await sim_->delay(period);
  }
}

}  // namespace lp::core
