#include "core/system.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace lp::core {

std::vector<const InferenceRecord*> ExperimentResult::steady() const {
  std::vector<const InferenceRecord*> out;
  for (const auto& r : records)
    if (r.start >= warmup) out.push_back(&r);
  if (out.empty())  // very short runs: fall back to everything
    for (const auto& r : records) out.push_back(&r);
  return out;
}

double ExperimentResult::mean_latency_sec() const {
  const auto rs = steady();
  LP_CHECK(!rs.empty());
  double total = 0.0;
  for (const auto* r : rs) total += r->total_sec;
  return total / static_cast<double>(rs.size());
}

double ExperimentResult::max_latency_sec() const {
  const auto rs = steady();
  LP_CHECK(!rs.empty());
  double worst = 0.0;
  for (const auto* r : rs) worst = std::max(worst, r->total_sec);
  return worst;
}

double ExperimentResult::percentile_latency_sec(double q) const {
  const auto rs = steady();
  LP_CHECK(!rs.empty());
  std::vector<double> values;
  values.reserve(rs.size());
  for (const auto* r : rs) values.push_back(r->total_sec);
  return percentile(std::move(values), q);
}

std::size_t ExperimentResult::modal_p() const {
  std::map<std::size_t, int> counts;
  for (const auto* r : steady()) ++counts[r->p];
  LP_CHECK(!counts.empty());
  std::size_t best = 0;
  int best_count = -1;
  for (const auto& [p, count] : counts)
    if (count > best_count) {
      best = p;
      best_count = count;
    }
  return best;
}

namespace {

sim::Task load_schedule_driver(sim::Simulator& sim, hw::LoadGenerator& gen,
                               std::vector<LoadPhase> schedule) {
  for (const auto& phase : schedule) {
    if (phase.at > sim.now()) co_await sim.delay(phase.at - sim.now());
    gen.set_level(phase.level);
  }
}

sim::Task request_stream(sim::Simulator& sim, OffloadClient& client,
                         DurationNs gap, std::vector<InferenceRecord>& out) {
  for (;;) {
    InferenceRecord rec;
    co_await client.infer(&rec);
    out.push_back(rec);
    if (gap > 0) co_await sim.delay(gap);
  }
}

}  // namespace

ExperimentResult run_experiment(const graph::Graph& model,
                                const PredictorBundle& predictors,
                                const ExperimentConfig& config) {
  LP_CHECK(config.duration > 0);

  sim::Simulator sim;
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  hw::GpuScheduler scheduler(sim);
  hw::LoadGenerator load(sim, scheduler, gpu, config.seed ^ 0x10ad);
  load.start();
  sim.spawn(load_schedule_driver(sim, load, config.load_schedule));

  net::Link link(sim, config.upload, config.download, milliseconds(2),
                 config.seed ^ 0x71);

  const GraphCostProfile profile(model, predictors);
  OffloadServer server(sim, scheduler, gpu, profile, config.runtime,
                       config.seed ^ 0x5e);
  server.start_gpu_watcher(config.watcher_period);
  OffloadClient client(sim, cpu, profile, link, server, config.policy,
                       config.runtime, config.seed ^ 0xc1);
  client.start_runtime_profiler(config.profiler_period);

  ExperimentResult result;
  result.warmup = config.warmup;
  sim.spawn(request_stream(sim, client, config.request_gap, result.records));

  sim.run_until(config.duration);
  LP_CHECK_MSG(!result.records.empty(), "no inference completed");
  const predict::LoadPredictor& lp = server.predictor();
  result.predict_mae = lp.mae();
  result.predict_bias = lp.bias();
  result.predict_scored = lp.scored();
  return result;
}

}  // namespace lp::core
