// The partition decision algorithm (Algorithm 1).
//
// Linear search over the cut positions of the backbone topological order,
// using prefix sums of f and suffix sums of g to evaluate each candidate in
// O(1) — O(n) total, the paper's light-weight alternative to O(n^3)
// min-cut partitioning (DADS). Two entry points:
//   * partition_decision(): the pseudocode verbatim, operating on raw cost
//     arrays (used by tests to cross-check);
//   * decide(): the Section IV implementation over a GraphCostProfile,
//     multiplying the cached M_edge suffix sums by the latest k and
//     ignoring the download term.
#pragma once

#include <cstdint>
#include <span>

#include "core/predictor.h"

namespace lp::core {

struct Decision {
  std::size_t p = 0;               ///< optimal partition point
  double predicted_latency = 0.0;  ///< t_p in seconds

  bool is_local(std::size_t n) const { return p == n; }
  bool is_full_offload() const { return p == 0; }
};

/// Algorithm 1 verbatim. f and g are the per-position predicted times
/// (seconds) including the virtual L0 at index 0; g must already reflect k;
/// s are the transmission sizes in bytes (s[0]..s[n]); bandwidths in bits/s.
/// Pass download_bps <= 0 to drop the s_n/B_d term.
Decision partition_decision(std::span<const double> f,
                            std::span<const double> g,
                            std::span<const std::int64_t> s,
                            double upload_bps, double download_bps);

/// Incremental form over a prebuilt profile: t_p = prefix_f(p) + s_p/B_u +
/// k * suffix_g(p), local when p = n. Ties break toward larger p as in the
/// pseudocode (the `<=` in line 15).
Decision decide(const GraphCostProfile& profile, double k, double upload_bps);

/// O(n^2) brute force over Problem 1 (test oracle).
Decision decide_brute_force(const GraphCostProfile& profile, double k,
                            double upload_bps);

}  // namespace lp::core
