// DADS-style min-cut DNN partitioner (Hu et al., INFOCOM 2019) — the
// O(n^3) DAG baseline the paper contrasts Algorithm 1 against.
//
// Finds the *general* monotone device/server assignment (data never flows
// back from the server mid-graph) minimizing
//     sum_device f(L_i) + sum_server k*g(L_i) + sum_cut s(u)/B_u
// via an s-t min-cut (Dinic). Unlike Algorithm 1 it may cut inside
// multi-branch blocks; the paper's claim — validated in tests and
// bench/algo_scaling — is that on real DNNs it never gains anything, while
// costing orders of magnitude more decision time.
#pragma once

#include <vector>

#include "core/predictor.h"

namespace lp::core {

struct DadsResult {
  double latency_sec = 0.0;  ///< optimal objective value
  /// Placement per backbone position (true = server).
  std::vector<bool> on_server;
  std::size_t device_nodes = 0;
  std::size_t server_nodes = 0;
  std::size_t cut_tensors = 0;  ///< tensors crossing device->server
};

/// Solves the min-cut partition at influential factor k and upload
/// bandwidth B_u (bits/s). Ignores the download term like Section IV.
DadsResult dads_min_cut(const GraphCostProfile& profile, double k,
                        double upload_bps);

}  // namespace lp::core
