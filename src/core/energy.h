// Energy accounting over inference records and the energy-optimal cut
// (extension; Neurosurgeon's second objective, dropped by the paper).
#pragma once

#include "core/baselines.h"
#include "core/offload_runtime.h"
#include "hw/energy.h"

namespace lp::core {

/// Device-side energy of one completed inference.
double device_energy_joules(const InferenceRecord& record,
                            const hw::EnergyModel& energy);

/// Mean device energy per inference over an experiment's steady state.
double mean_energy_joules(const std::vector<InferenceRecord>& records,
                          const hw::EnergyModel& energy);

/// Oracle analysis: the cut minimizing device energy at the given
/// bandwidths with an idle server (mirrors latency_breakdown()).
struct EnergyRow {
  std::size_t p = 0;
  double joules = 0.0;
};
std::vector<EnergyRow> energy_breakdown(const graph::Graph& g,
                                        const hw::CpuModel& cpu,
                                        const hw::GpuModel& gpu,
                                        const hw::EnergyModel& energy,
                                        double upload_bps,
                                        double download_bps);

/// argmin over energy_breakdown.
std::size_t energy_optimal_p(const graph::Graph& g, const hw::CpuModel& cpu,
                             const hw::GpuModel& gpu,
                             const hw::EnergyModel& energy,
                             double upload_bps, double download_bps);

}  // namespace lp::core
