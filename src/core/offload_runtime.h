// Online offloading runtime: the device-side client and server-side service
// of Figure 3, as simulation processes.
//
// One inference request (client):
//   1. pick p with the policy's decision rule (LoADPart uses Algorithm 1
//      with the cached bandwidth estimate and influential factor k);
//   2. look p up in the device partition cache; a miss pays the partition +
//      runtime-preparation overhead (Section III-A);
//   3. execute {L1..Lp} on the device CPU model;
//   4. upload the boundary tensors (passively feeding the bandwidth
//      estimator), have the server run {Lp+1..Ln} on the GPU scheduler
//      (its cache works the same way), download the result.
// The server records measured/predicted ratios to maintain k; its GPU
// watcher resets k when utilization falls below the threshold.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/algorithm.h"
#include "core/load_factor.h"
#include "core/load_signal.h"
#include "core/predictor.h"
#include "fault/retry.h"
#include "hw/cpu_model.h"
#include "hw/gpu_model.h"
#include "hw/gpu_scheduler.h"
#include "net/estimator.h"
#include "net/link.h"
#include "obs/taxonomy.h"
#include "obs/telemetry.h"
#include "partition/cache.h"
#include "predict/load_predictor.h"

namespace lp::core {

enum class Policy {
  kLoadPart,
  kNeurosurgeon,
  kLocalOnly,
  kFullOffload,
  kFixedPoint,  // always cut at RuntimeParams::fixed_p (oracle sweeps)
};

std::string policy_name(Policy policy);

struct RuntimeParams {
  std::size_t cache_capacity = 16;

  // Cache-miss cost of partitioning the graph and preparing the framework
  // runtime, linear in graph size (Section III-A).
  double device_partition_base_sec = 0.040;
  double device_partition_per_node_sec = 1.2e-3;
  double server_partition_base_sec = 0.008;
  double server_partition_per_node_sec = 0.25e-3;

  std::size_t k_window = 16;
  std::size_t bandwidth_window = 8;

  /// Load predictor behind every LoadSignal this runtime publishes
  /// (src/predict/): the default "last-value" kind reproduces the reactive
  /// behavior bit-identically; swap `predictor.kind` for "ewma",
  /// "decay-diff", "holt" or "llsp" to forecast k and the queue backlog
  /// at the consumer's horizon instead.
  predict::PredictorParams predictor;

  /// Extension: execute server partitions with framework operator fusion
  /// (one kernel per fusion group; see graph/fusion.h).
  bool fused_server_kernels = false;

  /// Partition point used by Policy::kFixedPoint (clamped to [0, n]).
  std::size_t fixed_p = 0;

  /// Extension: when false, the server starts without the model's weights
  /// (the IONN problem, Section VI): before a node can first run remotely
  /// its Parameters must cross the uplink. The paper's setting is
  /// pre-deployed weights (true).
  bool weights_preloaded = true;
  double gpu_util_threshold = 0.90;  // watcher threshold (Section IV)
  std::int64_t header_bytes = 128;   // partition point + tensor metadata

  /// Per-request latency SLO (serving layer): each offload request carries
  /// the absolute deadline start + slo_sec for deadline-aware queueing and
  /// SLO accounting. 0 disables deadlines.
  double slo_sec = 0.0;

  /// Multiplicative bump applied to the cached k when the serving frontend
  /// sheds a request ("server busy"): the shed reply is itself a load
  /// signal, so the client backs off toward local execution until the next
  /// profiler fetch re-syncs with the server's published k. Applied to
  /// Policy::kLoadPart only (load-oblivious baselines stay oblivious).
  double reject_k_backoff = 1.5;

  /// Client-side failure recovery. Defaults preserve the no-failure
  /// universe: with rpc_timeout_sec = 0 no deadline is armed and the
  /// machinery only activates when a fault actually surfaces (a crashed
  /// server failing a request, or a refused submit).
  struct FaultToleranceParams {
    /// Per-attempt RPC deadline covering upload + service + download;
    /// 0 disables timeouts (a request then waits indefinitely).
    double rpc_timeout_sec = 0.0;
    /// Re-attempts after the first failure (the retry budget).
    int max_retries = 2;
    /// Delay between attempts (deterministically jittered exponential).
    fault::BackoffPolicy backoff;
    /// When the budget is spent: re-execute the suffix {Lp+1..Ln} on the
    /// device from the boundary tensor the device already holds (the
    /// request is recovered, not lost). false = fail-stop: the request is
    /// dropped with InferenceOutcome::kFailed.
    bool local_fallback = true;
    /// Consecutive fault-failures that open the per-client circuit breaker
    /// (the policy is pinned to local-only for the cooldown); 0 disables.
    int breaker_failures = 0;
    double breaker_cooldown_sec = 5.0;
  };
  FaultToleranceParams fault;
};

/// Request outcome / failure taxonomy: shared with every other layer via
/// obs/taxonomy.h (one vocabulary for records, tenant summaries, fault
/// benches and the metrics registry).
using InferenceOutcome = obs::Outcome;
using FailureKind = obs::FailureKind;
using obs::failure_name;
using obs::outcome_name;

/// Everything measured about one inference (a sample of Figs. 1/2/6-9).
struct InferenceRecord {
  TimeNs start = 0;
  std::size_t p = 0;
  double total_sec = 0.0;
  double device_sec = 0.0;
  double upload_sec = 0.0;
  double server_sec = 0.0;    // measured on the server, queueing included
  double download_sec = 0.0;
  double overhead_sec = 0.0;  // partition cache misses
  double weight_upload_sec = 0.0;  // cold-start parameter shipping
  std::int64_t upload_bytes = 0;
  std::int64_t download_bytes = 0;
  double k_used = 1.0;
  double bandwidth_est_bps = 0.0;
  double predicted_sec = 0.0;
  InferenceOutcome outcome = InferenceOutcome::kLocalDecision;
  double queue_wait_sec = 0.0;  ///< server-side time from arrival to dispatch

  // Failure taxonomy (fault-tolerance layer).
  FailureKind last_failure = FailureKind::kNone;
  int retries = 0;  ///< backoff-delayed re-attempts after failures
  int faults = 0;   ///< fault-type failures observed across all attempts
  bool breaker_forced_local = false;  ///< open breaker pinned p = n
};

/// An offloading request as it arrives at the server-side service
/// process: "run {Lp+1..Ln} on my uploaded tensors and tell me when the
/// result is ready". The transfer times of the request payload and the
/// result are charged by the client on its link; the service charges the
/// partition preparation and GPU execution.
/// "This request has no deadline." TimeNs max sorts after every real
/// deadline, so EDF and least-slack order deadline-free jobs last without a
/// special case — and, unlike the old 0-means-none encoding, it cannot
/// collide with a legitimate absolute deadline of 0 stamped at sim time 0.
inline constexpr TimeNs kNoDeadline = std::numeric_limits<TimeNs>::max();

/// How the server resolved one SuffixRequest (written through
/// SuffixRequest::status before `done` triggers). kClientTimeout is set by
/// the client's own deadline watcher, never by the server.
enum class SuffixStatus : std::uint8_t {
  kServed,
  kServerDown,     ///< the server crashed before the result was ready
  kClientTimeout,  ///< the client's RPC deadline expired while waiting
  kFenced,         ///< rejected by the session's fencing epoch (the job
                   ///< belongs to a superseded placement; retry elsewhere)
  kDeadlineShed,   ///< dropped by the dispatcher: the deadline had already
                   ///< passed in queue, so running it could only waste GPU
                   ///< time on a guaranteed miss (degrade locally instead)
};

struct SuffixRequest {
  std::size_t p = 0;
  sim::Event* done = nullptr;      ///< triggered when the result is ready
  double* exec_seconds = nullptr;  ///< out: measured (contended) GPU time
  double* overhead_seconds = nullptr;  ///< out: partition-cache miss cost
  double* queue_wait_seconds = nullptr;  ///< out: arrival-to-dispatch wait
  SuffixStatus* status = nullptr;  ///< out: how the request resolved
  /// Keeps the block behind the out-pointers (and `done`) alive until the
  /// server is finished with them, so a client that times out and moves on
  /// cannot dangle a late reply.
  std::shared_ptr<void> keepalive;

  // Serving-layer metadata (ignored by the plain OffloadServer).
  std::uint64_t session = 0;   ///< frontend session of the requesting client
  TimeNs deadline = kNoDeadline;  ///< absolute deadline (EDF / least-slack)
  double predicted_sec = 0.0;  ///< client's k-adjusted suffix prediction
  double bandwidth_bps = 0.0;  ///< client's current bandwidth estimate
  TimeNs enqueued = 0;         ///< filled by the service on arrival
};

/// Verdict of the server-side admission check, returned synchronously from
/// submit(). On kRejected ("server busy") nothing was enqueued and the
/// client must complete the inference on the device. kDown models a
/// connection refused by a crashed server: nothing was enqueued and the
/// client treats it as a fault (retry / failover), not as load shedding.
enum class SubmitStatus : std::uint8_t { kAccepted, kRejected, kDown };

/// The server-side interface the client offloads through: either the
/// paper's single-tenant OffloadServer (admits everything) or the
/// multi-tenant serve::EdgeServerFrontend (sessions, admission control,
/// deadline queueing, suffix batching).
class SuffixService {
 public:
  virtual ~SuffixService() = default;

  /// Admission decision is synchronous; on kAccepted the caller waits on
  /// request.done, on kRejected it degrades to local execution.
  virtual SubmitStatus submit(SuffixRequest request) = 0;

  /// One typed read of the load this service publishes for `session`,
  /// forecast `horizon` ahead (0 = right now) — the single load API every
  /// consumer goes through: the device profiler fetch, admission control,
  /// and the cluster router's placement/rebalancing.
  virtual LoadSignal load_signal(std::uint64_t session,
                                 DurationNs horizon) const = 0;

  /// DEPRECATED thin shim over load_signal(session, 0).k_now, kept so
  /// legacy call sites and tests read the reactive k through the same
  /// signal path. Scheduled for removal (DESIGN.md §16).
  double session_k(std::uint64_t session) const {
    return load_signal(session, 0).k_now;
  }

  /// False while the service is crashed: control-plane fetches (the
  /// profiler's k handshake) are skipped until it restarts.
  virtual bool alive() const { return true; }
};

class OffloadServer : public SuffixService {
 public:
  OffloadServer(sim::Simulator& sim, hw::GpuScheduler& scheduler,
                const hw::GpuModel& gpu, const GraphCostProfile& profile,
                RuntimeParams params, std::uint64_t seed);

  /// Enqueues a request for the service process (Fig. 3: the main thread
  /// providing the offloading service). Always admits; the caller waits on
  /// request.done. Requires request.p < n and a non-null done event.
  SubmitStatus submit(SuffixRequest request) override;

  /// k as the runtime profiler would report it right now.
  double current_k() const { return k_.k(); }

  /// The single-tenant server publishes one signal for every session:
  /// k_now is current_k(), k_forecast comes from the runtime predictor
  /// observing every k mutation (each recorded execution and each idle
  /// reset).
  LoadSignal load_signal(std::uint64_t session,
                         DurationNs horizon) const override;

  /// Spawns the GPU-utilization watcher (Section IV), checking every
  /// `period` and resetting k when utilization < threshold.
  void start_gpu_watcher(DurationNs period);

  const partition::PartitionCache& cache() const { return cache_; }
  LoadFactorTracker& load_tracker() { return k_; }
  const predict::LoadPredictor& predictor() const { return *predictor_; }

 private:
  sim::Task service();
  sim::Task execute_suffix(std::size_t p, double* exec_seconds,
                           double* overhead_seconds);
  sim::Task gpu_watcher(DurationNs period);

  sim::Simulator* sim_;
  hw::GpuScheduler* scheduler_;
  const hw::GpuModel* gpu_;
  const GraphCostProfile* profile_;
  RuntimeParams params_;
  hw::GpuScheduler::ContextId ctx_;
  partition::PartitionCache cache_;
  LoadFactorTracker k_;
  std::unique_ptr<predict::LoadPredictor> predictor_;
  sim::Channel<SuffixRequest> requests_;
  Rng rng_;
  DurationNs watcher_busy_mark_ = 0;
  TimeNs watcher_time_mark_ = 0;
};

class OffloadClient {
 public:
  /// `session` identifies this client to a multi-tenant SuffixService
  /// (serve::EdgeServerFrontend::open_session); the single-tenant
  /// OffloadServer ignores it.
  OffloadClient(sim::Simulator& sim, const hw::CpuModel& cpu,
                const GraphCostProfile& profile, net::Link& link,
                SuffixService& server, Policy policy, RuntimeParams params,
                std::uint64_t seed, std::uint64_t session = 0);

  /// Performs one end-to-end inference; fills *out.
  sim::Task infer(InferenceRecord* out);

  /// Spawns the device runtime profiler: every `period`, probe the upload
  /// bandwidth and fetch the latest k from the server.
  void start_runtime_profiler(DurationNs period);

  /// The decision the client would take right now (no side effects).
  Decision current_decision() const;

  /// Redirects every subsequent request to a different service endpoint
  /// and session (live session migration or crash reroute — the cluster
  /// router's control-plane hand-off). Attempts already in flight finish
  /// against the old endpoint. Device-side state (partition cache,
  /// bandwidth estimator, cached k) stays: it describes the device and the
  /// link, and the server-side session state travelled with the migration.
  /// With weights_preloaded = false the shipped-parameter ledger resets —
  /// the new server starts without this model's weights.
  void rebind(SuffixService& server, std::uint64_t session);

  /// Cluster-degradation override: while set, every decision is pinned to
  /// p = n (pure local execution) without touching the breaker or the
  /// cached k — the router raises it on quorum loss and clears it when the
  /// control plane can see a majority again.
  void force_local(bool on) { forced_local_ = on; }
  bool forced_local() const { return forced_local_; }

  std::uint64_t session() const { return session_; }
  const SuffixService* server() const { return server_; }

  /// Attaches telemetry (null detaches): infer() then records a root
  /// "request" span on `track` with nested partition-prepare / prefix-exec
  /// / suffix-wait / suffix-local children, decision/retry/fallback
  /// instants, and core.* counters + latency histograms. Call
  /// link.set_telemetry with the same track so transfer spans nest under
  /// the request. Purely observational.
  void set_telemetry(obs::Telemetry* telemetry, const std::string& track);

  double cached_k() const { return k_cached_; }
  /// The load signal the last successful profiler handshake fetched
  /// (default-constructed before the first fetch).
  const LoadSignal& last_signal() const { return last_signal_; }
  const net::BandwidthEstimator& estimator() const { return estimator_; }
  const partition::PartitionCache& cache() const { return cache_; }
  const fault::CircuitBreaker& breaker() const { return breaker_; }

 private:
  sim::Task runtime_profiler(DurationNs period);
  sim::Task run_suffix_locally(std::size_t p, InferenceRecord* rec);
  double partition_overhead_sec(std::size_t nodes, bool device) const;
  /// Trace recorder when telemetry is attached and tracing is on.
  obs::TraceRecorder* trace() const {
    return telemetry_ != nullptr ? telemetry_->trace() : nullptr;
  }
  void record_request_metrics(const InferenceRecord& rec);

  sim::Simulator* sim_;
  const hw::CpuModel* cpu_;
  const GraphCostProfile* profile_;
  net::Link* link_;
  SuffixService* server_;
  Policy policy_;
  RuntimeParams params_;
  std::uint64_t session_ = 0;
  net::BandwidthEstimator estimator_;
  partition::PartitionCache cache_;
  /// Serializes overlapping infer() calls: the device runs one inference
  /// at a time (callers may still issue them concurrently).
  sim::Resource infer_slot_;
  fault::CircuitBreaker breaker_;
  bool forced_local_ = false;
  double k_cached_ = 1.0;
  bool k_fetched_once_ = false;
  LoadSignal last_signal_;
  /// Parameter nodes already shipped to the server (weights_preloaded =
  /// false only).
  std::vector<bool> params_on_server_;
  Rng rng_;

  // Telemetry (optional; null = fully off). Metric handles are resolved
  // once in set_telemetry so the per-request path is O(1) pointer bumps.
  obs::Telemetry* telemetry_ = nullptr;
  obs::TrackId track_ = 0;
  obs::Counter* outcome_counters_[obs::kOutcomeCount] = {};
  obs::Counter* failure_counters_[obs::kFailureKindCount] = {};
  obs::Counter* retry_counter_ = nullptr;
  obs::Counter* breaker_counter_ = nullptr;
  obs::Histogram* latency_ms_ = nullptr;
  obs::Histogram* queue_wait_ms_ = nullptr;
};

}  // namespace lp::core
