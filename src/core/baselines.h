// Analytic helpers and static baselines.
//
// latency_breakdown() computes, for every partition point, the ground-truth
// (contention-free) device/network/server split — Figure 1's stacked bars.
// The policy baselines themselves (local inference, full offloading,
// Neurosurgeon) are Policy values executed by the runtime; helpers here give
// their closed-form idle-server latencies for cross-checks.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "hw/cpu_model.h"
#include "hw/gpu_model.h"

namespace lp::core {

struct BreakdownRow {
  std::size_t p = 0;
  double device_sec = 0.0;
  double upload_sec = 0.0;
  double server_sec = 0.0;
  double download_sec = 0.0;
  double total_sec = 0.0;
};

/// Ground-truth end-to-end latency of every partition point at the given
/// bandwidths with an idle server (no queueing, no jitter).
std::vector<BreakdownRow> latency_breakdown(const graph::Graph& g,
                                            const hw::CpuModel& cpu,
                                            const hw::GpuModel& gpu,
                                            double upload_bps,
                                            double download_bps);

/// Ground-truth local-inference latency.
double local_latency_sec(const graph::Graph& g, const hw::CpuModel& cpu);

/// Ground-truth full-offload latency at the given bandwidths, idle server.
double full_offload_latency_sec(const graph::Graph& g,
                                const hw::GpuModel& gpu, double upload_bps,
                                double download_bps);

}  // namespace lp::core
