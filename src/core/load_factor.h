// The influential factor k of the server computation load (Section III-C).
//
// The server-side runtime profiler records, for each completed DNN
// partition, the ratio of its measured execution time over the
// model-predicted time, keeps the records of the most recent monitoring
// period, and publishes their average (clamped to >= 1, constraint 1c).
// A separate GPU-utilization watcher resets k toward idle when utilization
// drops below a threshold while the device is inferring locally
// (Section IV).
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/units.h"

namespace lp::core {

class LoadFactorTracker {
 public:
  /// `window` = number of recent partition executions averaged.
  explicit LoadFactorTracker(std::size_t window = 16);

  /// Records one completed partition execution on the server.
  /// `contended` says whether other work was queued on the GPU when this
  /// partition ran (the server-side profiler can see the queue): only
  /// uncontended measurements teach the idle baseline.
  /// predicted_sec must be > 0 (a partition always has modeled nodes).
  /// A measured_sec <= 0 sample is dropped (it carries no load
  /// information; a zero ratio would drag k below the observed load);
  /// negative values additionally trip an LP_DCHECK in debug builds.
  void record(double measured_sec, double predicted_sec,
              bool contended = false);

  /// Current influential factor (>= 1). With no records, 1.
  double k() const;

  /// Idle reset used by the GPU watcher: forget the loaded history so the
  /// next published k reflects an unloaded server. The published k returns
  /// to the *idle baseline* — the average ratio of uncontended
  /// measurements — rather than exactly 1: by construction (Section III-C)
  /// k folds in any systematic bias of the prediction models, and that
  /// bias does not disappear with the load. With no idle measurement yet
  /// (cold start under load) the baseline is 1, which makes the device try
  /// offloading once and calibrate from that.
  void reset_idle();

  /// Mean ratio of recent uncontended executions (>= 1); 1 if none yet.
  double idle_baseline() const;

  /// Measurements recorded in the current monitoring period — i.e. since
  /// construction or the last reset_idle(), which restarts the period.
  std::uint64_t records() const { return records_; }

  /// Samples currently held in the loaded-ratio window (<= window_capacity).
  std::size_t window_size() const { return ratios_.size(); }
  std::size_t window_capacity() const { return ratios_.capacity(); }

  /// Full tracker state for session migration: both ratio windows plus the
  /// monitoring-period counter. export_state() on the source and
  /// import_state() on a tracker constructed with the same window size
  /// leave the two bit-identical (k(), idle_baseline(), records()).
  struct State {
    SlidingWindow::Snapshot ratios;
    SlidingWindow::Snapshot idle_ratios;
    std::uint64_t records = 0;
  };
  State export_state() const;
  void import_state(const State& state);

 private:
  SlidingWindow ratios_;
  SlidingWindow idle_ratios_;
  std::uint64_t records_ = 0;
};

}  // namespace lp::core
