#include "core/dads.h"

#include <limits>
#include <queue>

#include "common/check.h"

namespace lp::core {

namespace {

/// Dinic max-flow on a small dense-ish graph with double capacities.
class Dinic {
 public:
  explicit Dinic(int nodes) : adj_(static_cast<std::size_t>(nodes)) {}

  void add_edge(int from, int to, double cap) {
    adj_[static_cast<std::size_t>(from)].push_back(
        static_cast<int>(edges_.size()));
    edges_.push_back({to, cap});
    adj_[static_cast<std::size_t>(to)].push_back(
        static_cast<int>(edges_.size()));
    edges_.push_back({from, 0.0});
  }

  double max_flow(int s, int t) {
    double flow = 0.0;
    while (bfs(s, t)) {
      iter_.assign(adj_.size(), 0);
      for (;;) {
        const double pushed =
            dfs(s, t, std::numeric_limits<double>::infinity());
        if (pushed <= kEps) break;
        flow += pushed;
      }
    }
    return flow;
  }

  /// After max_flow: nodes reachable from s in the residual graph (the
  /// device side of the min cut).
  std::vector<bool> source_side(int s) const {
    std::vector<bool> seen(adj_.size(), false);
    std::queue<int> q;
    q.push(s);
    seen[static_cast<std::size_t>(s)] = true;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int eid : adj_[static_cast<std::size_t>(u)]) {
        const auto& e = edges_[static_cast<std::size_t>(eid)];
        if (e.cap > kEps && !seen[static_cast<std::size_t>(e.to)]) {
          seen[static_cast<std::size_t>(e.to)] = true;
          q.push(e.to);
        }
      }
    }
    return seen;
  }

 private:
  static constexpr double kEps = 1e-12;
  struct Edge {
    int to;
    double cap;
  };

  bool bfs(int s, int t) {
    level_.assign(adj_.size(), -1);
    std::queue<int> q;
    q.push(s);
    level_[static_cast<std::size_t>(s)] = 0;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int eid : adj_[static_cast<std::size_t>(u)]) {
        const auto& e = edges_[static_cast<std::size_t>(eid)];
        if (e.cap > kEps && level_[static_cast<std::size_t>(e.to)] < 0) {
          level_[static_cast<std::size_t>(e.to)] =
              level_[static_cast<std::size_t>(u)] + 1;
          q.push(e.to);
        }
      }
    }
    return level_[static_cast<std::size_t>(t)] >= 0;
  }

  double dfs(int u, int t, double limit) {
    if (u == t) return limit;
    for (auto& i = iter_[static_cast<std::size_t>(u)];
         i < static_cast<int>(adj_[static_cast<std::size_t>(u)].size());
         ++i) {
      const int eid =
          adj_[static_cast<std::size_t>(u)][static_cast<std::size_t>(i)];
      auto& e = edges_[static_cast<std::size_t>(eid)];
      if (e.cap <= kEps ||
          level_[static_cast<std::size_t>(e.to)] !=
              level_[static_cast<std::size_t>(u)] + 1)
        continue;
      const double pushed = dfs(e.to, t, std::min(limit, e.cap));
      if (pushed > kEps) {
        e.cap -= pushed;
        edges_[static_cast<std::size_t>(eid ^ 1)].cap += pushed;
        return pushed;
      }
    }
    return 0.0;
  }

  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adj_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace

DadsResult dads_min_cut(const GraphCostProfile& profile, double k,
                        double upload_bps) {
  LP_CHECK(k >= 1.0 && upload_bps > 0.0);
  const auto& g = profile.graph();
  const auto& order = g.backbone();
  const std::size_t n = profile.n();
  constexpr double kInf = 1e18;

  // Layout: [0, n] backbone units, then one gadget per tensor with
  // downstream consumers, then s and t.
  std::vector<std::int64_t> pos(g.node_count(), -1);
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<std::int64_t>(i);

  // Count gadgets (one per producing unit that has consumers).
  std::vector<int> gadget(order.size(), -1);
  int next = static_cast<int>(order.size());
  for (std::size_t i = 0; i <= n; ++i) {
    if (!g.consumers()[static_cast<std::size_t>(order[i])].empty())
      gadget[i] = next++;
  }
  const int s = next++;
  const int t = next++;
  Dinic flow(next);

  for (std::size_t i = 0; i <= n; ++i) {
    // Device cost when unit i stays on the device.
    if (profile.f(i) > 0.0)
      flow.add_edge(static_cast<int>(i), t, profile.f(i));
    // Server cost when unit i is offloaded. L0 is pinned to the device.
    const double server_cost = i == 0 ? kInf : k * profile.g_base(i);
    if (server_cost > 0.0) flow.add_edge(s, static_cast<int>(i), server_cost);

    const graph::NodeId id = order[i];
    if (gadget[i] >= 0) {
      const double tx =
          static_cast<double>(g.node(id).output.bytes()) * 8.0 / upload_bps;
      flow.add_edge(static_cast<int>(i), gadget[i], tx);
      for (graph::NodeId c : g.consumers()[static_cast<std::size_t>(id)]) {
        const auto ci = pos[static_cast<std::size_t>(c)];
        LP_CHECK(ci > 0);
        flow.add_edge(gadget[i], static_cast<int>(ci), kInf);
        // Monotonicity: data never flows server -> device mid-graph.
        flow.add_edge(static_cast<int>(ci), static_cast<int>(i), kInf);
      }
    }
  }

  DadsResult result;
  result.latency_sec = flow.max_flow(s, t);
  const auto device_side = flow.source_side(s);
  result.on_server.resize(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    const bool server = !device_side[i];
    result.on_server[i] = server;
    if (i == 0) continue;  // virtual L0
    if (server)
      ++result.server_nodes;
    else
      ++result.device_nodes;
  }
  for (std::size_t i = 0; i <= n; ++i) {
    if (result.on_server[i]) continue;
    const graph::NodeId id = order[i];
    for (graph::NodeId c : g.consumers()[static_cast<std::size_t>(id)]) {
      if (result.on_server[static_cast<std::size_t>(
              pos[static_cast<std::size_t>(c)])]) {
        ++result.cut_tensors;
        break;
      }
    }
  }
  return result;
}

}  // namespace lp::core
