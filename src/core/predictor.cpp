#include "core/predictor.h"

#include "common/check.h"
#include "flops/features.h"
#include "graph/fusion.h"
#include "hw/cpu_model.h"
#include "hw/gpu_model.h"
#include "profile/offline_profiler.h"

namespace lp::core {

PredictorBundle train_default_predictors(
    std::uint64_t seed, std::vector<profile::TrainReport>* reports) {
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  profile::ProfilerParams params;
  params.seed = seed;
  profile::OfflineProfiler profiler(cpu, gpu, params);
  profile::Trainer trainer(0.3, seed ^ 0x5u);
  auto user = trainer.train_all(profiler, flops::Device::kUser, reports);
  auto edge = trainer.train_all(profiler, flops::Device::kEdge, reports);
  return PredictorBundle{std::move(user), std::move(edge)};
}

GraphCostProfile::GraphCostProfile(const graph::Graph& g,
                                   const PredictorBundle& predictors)
    : graph_(&g) {
  const auto& order = g.backbone();
  const std::size_t n = g.n();
  f_.resize(n + 1);
  g_.resize(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    const auto cfg = flops::config_of(g, order[i]);
    f_[i] = predictors.user.predict_seconds(cfg);
    g_[i] = predictors.edge.predict_seconds(cfg);
  }
  // L0 is virtual: f(L0) = g(L0, k) = 0 by definition.
  f_[0] = g_[0] = 0.0;

  prefix_f_.assign(n + 2, 0.0);
  suffix_g_.assign(n + 2, 0.0);
  for (std::size_t i = 1; i <= n + 1; ++i) {
    prefix_f_[i] = prefix_f_[i - 1] + f_[i - 1];
    suffix_g_[n - i + 1] = suffix_g_[n - i + 2] + g_[n - i + 1];
  }
  s_ = graph::cut_sizes(g);
}

double GraphCostProfile::predicted_latency(std::size_t p, double k,
                                           double upload_bps,
                                           double download_bps) const {
  LP_CHECK(p <= n());
  LP_CHECK(k >= 1.0 && upload_bps > 0.0);
  if (p == n()) return prefix_f(p);
  double t = prefix_f(p) +
             static_cast<double>(s_[p]) * 8.0 / upload_bps +
             k * suffix_g(p);
  if (download_bps > 0.0)
    t += static_cast<double>(s_[n()]) * 8.0 / download_bps;
  return t;
}

double fused_edge_prediction(const graph::Graph& g,
                             const profile::NodePredictor& edge,
                             std::size_t begin, std::size_t end) {
  LP_CHECK(edge.device() == flops::Device::kEdge);
  double total = 0.0;
  for (const auto& group :
       graph::fuse_segment(g, std::max<std::size_t>(begin, 1), end)) {
    total += edge.predict_seconds(flops::config_of(g, group.anchor()));
  }
  return total;
}

}  // namespace lp::core
