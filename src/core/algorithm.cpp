#include "core/algorithm.h"

#include <limits>
#include <vector>

#include "common/check.h"

namespace lp::core {

Decision partition_decision(std::span<const double> f,
                            std::span<const double> g,
                            std::span<const std::int64_t> s,
                            double upload_bps, double download_bps) {
  LP_CHECK(f.size() == g.size() && f.size() == s.size());
  LP_CHECK(f.size() >= 1);
  LP_CHECK(upload_bps > 0.0);
  const std::size_t n = f.size() - 1;

  // prefix[i] = sum_{j<i} f(L_j); suffix[i] = sum_{j>=i} g(L_j, k).
  std::vector<double> prefix(n + 2, 0.0), suffix(n + 2, 0.0);
  for (std::size_t i = 1; i <= n + 1; ++i) {
    prefix[i] = prefix[i - 1] + f[i - 1];
    suffix[n - i + 1] = suffix[n - i + 2] + g[n - i + 1];
  }

  const double down_term =
      download_bps > 0.0
          ? static_cast<double>(s[n]) * 8.0 / download_bps
          : 0.0;

  double min_val = std::numeric_limits<double>::infinity();
  std::size_t p = 0;
  for (std::size_t i = 1; i <= n + 1; ++i) {
    double cur;
    if (i == n + 1) {
      cur = prefix[i];  // local inference
    } else {
      cur = prefix[i] + static_cast<double>(s[i - 1]) * 8.0 / upload_bps +
            suffix[i] + down_term;
    }
    if (cur <= min_val) {
      min_val = cur;
      p = i - 1;
    }
  }
  return Decision{p, min_val};
}

Decision decide(const GraphCostProfile& profile, double k,
                double upload_bps) {
  LP_CHECK(k >= 1.0);
  LP_CHECK(upload_bps > 0.0);
  const std::size_t n = profile.n();
  double min_val = std::numeric_limits<double>::infinity();
  std::size_t p = 0;
  for (std::size_t i = 1; i <= n + 1; ++i) {
    const std::size_t cand = i - 1;
    const double cur =
        cand == n
            ? profile.prefix_f(cand)
            : profile.prefix_f(cand) +
                  static_cast<double>(profile.s(cand)) * 8.0 / upload_bps +
                  k * profile.suffix_g(cand);
    if (cur <= min_val) {
      min_val = cur;
      p = cand;
    }
  }
  return Decision{p, min_val};
}

Decision decide_brute_force(const GraphCostProfile& profile, double k,
                            double upload_bps) {
  const std::size_t n = profile.n();
  Decision best{0, std::numeric_limits<double>::infinity()};
  for (std::size_t p = 0; p <= n; ++p) {
    double t = 0.0;
    for (std::size_t i = 0; i <= p; ++i) t += profile.f(i);
    if (p < n) {
      t += static_cast<double>(profile.s(p)) * 8.0 / upload_bps;
      for (std::size_t i = p + 1; i <= n; ++i) t += k * profile.g_base(i);
    }
    if (t <= best.predicted_latency) best = Decision{p, t};
  }
  return best;
}

}  // namespace lp::core
