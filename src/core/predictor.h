// Per-graph predicted costs consumed by the partition decision algorithm.
//
// f(L_i) = M_user(L_i) and g(L_i, k) = k * M_edge(L_i) (Section IV). The
// profile precomputes f, the base M_edge, their prefix/suffix sums, and the
// transmission sizes s_i once per (model, predictor) pair; Algorithm 1 then
// answers each query in O(n) with the most recent k and bandwidth.
#pragma once

#include <vector>

#include "graph/cut.h"
#include "graph/graph.h"
#include "profile/trainer.h"

namespace lp::core {

/// Bundle of the two trained predictor sets loaded on both sides.
struct PredictorBundle {
  profile::NodePredictor user;
  profile::NodePredictor edge;
};

/// Trains M_user and M_edge against the default simulated hardware
/// (deterministic given the seed). Reports, when requested, are the rows of
/// Table III.
PredictorBundle train_default_predictors(
    std::uint64_t seed = 1234,
    std::vector<profile::TrainReport>* reports = nullptr);

class GraphCostProfile {
 public:
  GraphCostProfile(const graph::Graph& g, const PredictorBundle& predictors);

  const graph::Graph& graph() const { return *graph_; }
  std::size_t n() const { return f_.size() - 1; }

  /// Predicted device time of node at backbone position i (f(L_i)).
  double f(std::size_t i) const { return f_[i]; }
  /// Predicted *unloaded* server time of node at position i (M_edge(L_i)).
  double g_base(std::size_t i) const { return g_[i]; }

  /// Sum of f over positions [0, p].
  double prefix_f(std::size_t p) const { return prefix_f_[p + 1]; }
  /// Sum of M_edge over positions [p+1, n] (multiply by k for g).
  double suffix_g(std::size_t p) const { return suffix_g_[p + 1]; }

  /// Transmission bytes s_p of the cut after position p.
  std::int64_t s(std::size_t p) const { return s_[p]; }

  /// Predicted end-to-end latency of cutting at p (Problem 1). Ignores the
  /// download term when download_bps <= 0, as the implementation does
  /// (Section IV).
  double predicted_latency(std::size_t p, double k, double upload_bps,
                           double download_bps = 0.0) const;

 private:
  const graph::Graph* graph_;
  std::vector<double> f_;
  std::vector<double> g_;
  std::vector<double> prefix_f_;  // prefix_f_[i] = sum f over first i nodes
  std::vector<double> suffix_g_;  // suffix_g_[i] = sum g over positions >= i
  std::vector<std::int64_t> s_;
};

/// Fusion-aware server-side prediction of a backbone segment (extension;
/// cf. NN-Meter in Section VI): each fusion group is predicted as its
/// anchor kernel alone, instead of summing every member layer-by-layer —
/// the summing error the paper warns about on fusing frameworks.
double fused_edge_prediction(const graph::Graph& g,
                             const profile::NodePredictor& edge,
                             std::size_t begin, std::size_t end);

}  // namespace lp::core
