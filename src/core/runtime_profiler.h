// Periodic measurement utilities shared by benches and tests.
#pragma once

#include <vector>

#include "common/units.h"
#include "hw/gpu_scheduler.h"
#include "sim/simulator.h"

namespace lp::core {

/// Samples GPU utilization over consecutive windows of `period` and stores
/// the series; used by the motivation experiments (Fig. 2) and to verify
/// that the load generator hits its utilization targets.
class UtilizationMonitor {
 public:
  UtilizationMonitor(sim::Simulator& sim, const hw::GpuScheduler& scheduler,
                     DurationNs period);

  /// Spawns the sampling process (call once).
  void start();

  const std::vector<double>& samples() const { return samples_; }

  /// Mean utilization over all completed windows (0 when none).
  double mean() const;

 private:
  sim::Task sampler();

  sim::Simulator* sim_;
  const hw::GpuScheduler* scheduler_;
  DurationNs period_;
  bool started_ = false;
  std::vector<double> samples_;
};

}  // namespace lp::core
