#include "core/load_factor.h"

#include <algorithm>

#include "common/check.h"

namespace lp::core {

LoadFactorTracker::LoadFactorTracker(std::size_t window)
    : ratios_(window), idle_ratios_(std::max<std::size_t>(4, window / 2)) {}

void LoadFactorTracker::record(double measured_sec, double predicted_sec,
                               bool contended) {
  LP_DCHECK(measured_sec >= 0.0);
  LP_CHECK_MSG(predicted_sec > 0.0, "predicted partition time must be > 0");
  // A non-positive measurement carries no load information (the mirror of
  // the 0 ns BandwidthEstimator::add_transfer case): a zero ratio would
  // drag the published mean below the load actually observed. Drop it.
  if (measured_sec <= 0.0) return;
  const double ratio = measured_sec / predicted_sec;
  ratios_.add(ratio);
  ++records_;
  if (!contended) idle_ratios_.add(ratio);
}

double LoadFactorTracker::k() const {
  if (ratios_.empty()) return 1.0;
  return std::max(1.0, ratios_.mean());
}

double LoadFactorTracker::idle_baseline() const {
  if (idle_ratios_.empty()) return 1.0;
  return std::max(1.0, idle_ratios_.mean());
}

LoadFactorTracker::State LoadFactorTracker::export_state() const {
  return State{ratios_.snapshot(), idle_ratios_.snapshot(), records_};
}

void LoadFactorTracker::import_state(const State& state) {
  ratios_.restore(state.ratios);
  idle_ratios_.restore(state.idle_ratios);
  records_ = state.records;
}

void LoadFactorTracker::reset_idle() {
  ratios_.clear();
  ratios_.add(idle_baseline());
  // The monitoring period restarts with the reset: a periodic reporter
  // reading records() right after must not see the pre-reset count (the
  // re-seeded baseline is a synthetic sample, not a measurement).
  records_ = 0;
}

}  // namespace lp::core
