#include "core/baselines.h"

#include "common/check.h"
#include "graph/cut.h"

namespace lp::core {

std::vector<BreakdownRow> latency_breakdown(const graph::Graph& g,
                                            const hw::CpuModel& cpu,
                                            const hw::GpuModel& gpu,
                                            double upload_bps,
                                            double download_bps) {
  LP_CHECK(upload_bps > 0.0 && download_bps > 0.0);
  const std::size_t n = g.n();
  const auto s = graph::cut_sizes(g);

  std::vector<BreakdownRow> rows;
  rows.reserve(n + 1);
  double device_acc = 0.0;  // running prefix of device time
  for (std::size_t p = 0; p <= n; ++p) {
    if (p > 0)
      device_acc +=
          to_seconds(cpu.node_time(flops::config_of(g, g.backbone()[p])));
    BreakdownRow row;
    row.p = p;
    row.device_sec = device_acc;
    if (p < n) {
      row.upload_sec =
          static_cast<double>(s[p]) * 8.0 / upload_bps;
      row.server_sec = to_seconds(gpu.segment_time(g, p + 1, n));
      row.download_sec =
          static_cast<double>(s[n]) * 8.0 / download_bps;
    }
    row.total_sec =
        row.device_sec + row.upload_sec + row.server_sec + row.download_sec;
    rows.push_back(row);
  }
  return rows;
}

double local_latency_sec(const graph::Graph& g, const hw::CpuModel& cpu) {
  return to_seconds(cpu.graph_time(g));
}

double full_offload_latency_sec(const graph::Graph& g,
                                const hw::GpuModel& gpu, double upload_bps,
                                double download_bps) {
  LP_CHECK(upload_bps > 0.0 && download_bps > 0.0);
  const double up =
      static_cast<double>(g.input_desc().bytes()) * 8.0 / upload_bps;
  const double down =
      static_cast<double>(g.output_desc().bytes()) * 8.0 / download_bps;
  return up + to_seconds(gpu.segment_time(g, 0, g.backbone().size() - 1)) +
         down;
}

}  // namespace lp::core
