// LoadSignal: the one typed view of a service's load.
//
// Every load consumer — the client's decide() path, the frontend's
// admission control, the cluster router's least-loaded placement and
// rebalancer — used to read its own ad-hoc scalar (session_k(), raw
// LoadSnapshot fields). They all read this struct now, produced by the
// predictor layer (src/predict/), so swapping the reactive value for a
// forecast needs no per-consumer surgery: the producer fills k_forecast
// and backlog_sec for the caller's horizon and the consumers are done.
#pragma once

#include "common/units.h"

namespace lp::core {

struct LoadSignal {
  /// The influential factor as published right now (>= 1, reactive).
  double k_now = 1.0;
  /// k forecast `horizon` ahead by the session's predictor (>= 1). Equals
  /// k_now under the default last-value predictor, or while the predictor
  /// has no observations yet.
  double k_forecast = 1.0;
  /// Predicted queue delay a new arrival would see at the horizon: the
  /// live backlog plus the forecast drift (zero drift under last-value).
  double backlog_sec = 0.0;
  /// Staleness of the newest observation behind the forecast; 0 when the
  /// predictor is empty.
  DurationNs age_ns = 0;
  /// Predictor trust in [0, 1] (0 = no observations yet).
  double confidence = 0.0;
};

}  // namespace lp::core
