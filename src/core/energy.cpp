#include "core/energy.h"

#include "common/check.h"
#include "graph/cut.h"

namespace lp::core {

double device_energy_joules(const InferenceRecord& record,
                            const hw::EnergyModel& energy) {
  return energy.compute_joules(record.device_sec + record.overhead_sec) +
         energy.tx_joules(record.upload_bytes, record.upload_sec) +
         energy.rx_joules(record.download_bytes, record.download_sec) +
         energy.wait_joules(record.server_sec);
}

double mean_energy_joules(const std::vector<InferenceRecord>& records,
                          const hw::EnergyModel& energy) {
  LP_CHECK(!records.empty());
  double total = 0.0;
  for (const auto& rec : records)
    total += device_energy_joules(rec, energy);
  return total / static_cast<double>(records.size());
}

std::vector<EnergyRow> energy_breakdown(const graph::Graph& g,
                                        const hw::CpuModel& cpu,
                                        const hw::GpuModel& gpu,
                                        const hw::EnergyModel& energy,
                                        double upload_bps,
                                        double download_bps) {
  const auto rows =
      latency_breakdown(g, cpu, gpu, upload_bps, download_bps);
  const auto s = graph::cut_sizes(g);
  std::vector<EnergyRow> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    EnergyRow e;
    e.p = row.p;
    e.joules = energy.compute_joules(row.device_sec) +
               energy.wait_joules(row.server_sec);
    if (row.p < g.n()) {
      e.joules += energy.tx_joules(s[row.p], row.upload_sec) +
                  energy.rx_joules(s[g.n()], row.download_sec);
    }
    out.push_back(e);
  }
  return out;
}

std::size_t energy_optimal_p(const graph::Graph& g, const hw::CpuModel& cpu,
                             const hw::GpuModel& gpu,
                             const hw::EnergyModel& energy,
                             double upload_bps, double download_bps) {
  const auto rows =
      energy_breakdown(g, cpu, gpu, energy, upload_bps, download_bps);
  std::size_t best = 0;
  for (std::size_t i = 1; i < rows.size(); ++i)
    if (rows[i].joules < rows[best].joules) best = i;
  return rows[best].p;
}

}  // namespace lp::core
