#include "core/runtime_profiler.h"

#include "common/check.h"

namespace lp::core {

UtilizationMonitor::UtilizationMonitor(sim::Simulator& sim,
                                       const hw::GpuScheduler& scheduler,
                                       DurationNs period)
    : sim_(&sim), scheduler_(&scheduler), period_(period) {
  LP_CHECK(period > 0);
}

void UtilizationMonitor::start() {
  LP_CHECK_MSG(!started_, "monitor already started");
  started_ = true;
  sim_->spawn(sampler());
}

sim::Task UtilizationMonitor::sampler() {
  DurationNs busy_mark = scheduler_->busy_ns();
  for (;;) {
    co_await sim_->delay(period_);
    const DurationNs busy = scheduler_->busy_ns();
    samples_.push_back(static_cast<double>(busy - busy_mark) /
                       static_cast<double>(period_));
    busy_mark = busy;
  }
}

double UtilizationMonitor::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

}  // namespace lp::core
