#include "predict/load_predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"

namespace lp::predict {

std::int64_t state_wire_bytes(const PredictorState& state) {
  constexpr std::int64_t kSampleBytes = 8;
  return kSampleBytes *
         static_cast<std::int64_t>(state.scalars.size() +
                                   state.window.size() +
                                   state.window_times_sec.size());
}

double LoadPredictor::observe(TimeNs now, double value) {
  LP_CHECK_MSG(std::isfinite(value), "observed load must be finite");
  double err = std::numeric_limits<double>::quiet_NaN();
  if (samples_ > 0) {
    LP_CHECK_MSG(now >= last_observed_,
                 "load observations must not move back in time");
    const DurationNs gap = now - last_observed_;
    err = forecast(gap) - value;
    abs_err_sum_ += std::abs(err);
    err_sum_ += err;
    ++scored_;
    // Smoothed observation gap: the step size trend extrapolation uses.
    gap_sec_ = samples_ == 1 ? to_seconds(gap)
                             : 0.5 * to_seconds(gap) + 0.5 * gap_sec_;
  }
  update(now, value);
  last_observed_ = now;
  last_value_ = value;
  ++samples_;
  return err;
}

double LoadPredictor::forecast(DurationNs horizon) const {
  if (samples_ == 0) return 0.0;
  const double f = project(to_seconds(std::max<DurationNs>(0, horizon)));
  // A mis-extrapolating model degrades to naive, never to NaN/inf: the
  // decision path divides and compares with this value.
  if (!std::isfinite(f)) return last_value_;
  return std::clamp(f, -params_.max_abs_forecast, params_.max_abs_forecast);
}

double LoadPredictor::mae() const {
  if (scored_ == 0) return 0.0;
  return abs_err_sum_ / static_cast<double>(scored_);
}

double LoadPredictor::bias() const {
  if (scored_ == 0) return 0.0;
  return err_sum_ / static_cast<double>(scored_);
}

double LoadPredictor::confidence() const {
  if (samples_ == 0) return 0.0;
  const double warm = std::min(1.0, static_cast<double>(samples_) / 8.0);
  return warm / (1.0 + mae());
}

double LoadPredictor::horizon_steps(double horizon_sec) const {
  if (gap_sec_ <= 0.0) return 0.0;
  return std::min(horizon_sec / gap_sec_, params_.max_trend_steps);
}

void LoadPredictor::reset() {
  last_observed_ = 0;
  last_value_ = 0.0;
  gap_sec_ = 0.0;
  samples_ = 0;
  abs_err_sum_ = 0.0;
  err_sum_ = 0.0;
  scored_ = 0;
  reset_model();
}

PredictorState LoadPredictor::export_state() const {
  PredictorState state;
  state.last_observed = last_observed_;
  state.last_value = last_value_;
  state.gap_sec = gap_sec_;
  state.samples = samples_;
  state.abs_err_sum = abs_err_sum_;
  state.err_sum = err_sum_;
  state.scored = scored_;
  pack(&state);
  return state;
}

void LoadPredictor::import_state(const PredictorState& state) {
  last_observed_ = state.last_observed;
  last_value_ = state.last_value;
  gap_sec_ = state.gap_sec;
  samples_ = state.samples;
  abs_err_sum_ = state.abs_err_sum;
  err_sum_ = state.err_sum;
  scored_ = state.scored;
  unpack(state);
}

namespace {

class LastValuePredictor final : public LoadPredictor {
 public:
  using LoadPredictor::LoadPredictor;
  const char* name() const override { return "last-value"; }

 private:
  void update(TimeNs /*now*/, double /*value*/) override {}
  double project(double /*horizon_sec*/) const override {
    return last_value();
  }
  void reset_model() override {}
  void pack(PredictorState* /*state*/) const override {}
  void unpack(const PredictorState& state) override {
    LP_CHECK_MSG(state.scalars.empty() && state.window.empty(),
                 "last-value import from a different predictor kind");
  }
};

class EwmaPredictor final : public LoadPredictor {
 public:
  using LoadPredictor::LoadPredictor;
  const char* name() const override { return "ewma"; }

 private:
  void update(TimeNs /*now*/, double value) override {
    const double a = params().ewma_alpha;
    level_ = samples() == 0 ? value : a * value + (1.0 - a) * level_;
  }
  double project(double /*horizon_sec*/) const override { return level_; }
  void reset_model() override { level_ = 0.0; }
  void pack(PredictorState* state) const override {
    state->scalars = {level_};
  }
  void unpack(const PredictorState& state) override {
    LP_CHECK_MSG(state.scalars.size() == 1,
                 "ewma import from a different predictor kind");
    level_ = state.scalars[0];
  }

  double level_ = 0.0;
};

/// Smoothed first difference, extrapolated per observation step off the
/// latest value: v + d * steps. The decay keeps a single spike from being
/// read as a lasting trend.
class DecayDiffPredictor final : public LoadPredictor {
 public:
  using LoadPredictor::LoadPredictor;
  const char* name() const override { return "decay-diff"; }

 private:
  void update(TimeNs /*now*/, double value) override {
    if (samples() == 0) return;
    const double d = params().decay;
    diff_ = d * diff_ + (1.0 - d) * (value - last_value());
  }
  double project(double horizon_sec) const override {
    return last_value() + diff_ * horizon_steps(horizon_sec);
  }
  void reset_model() override { diff_ = 0.0; }
  void pack(PredictorState* state) const override {
    state->scalars = {diff_};
  }
  void unpack(const PredictorState& state) override {
    LP_CHECK_MSG(state.scalars.size() == 1,
                 "decay-diff import from a different predictor kind");
    diff_ = state.scalars[0];
  }

  double diff_ = 0.0;
};

/// Holt double-exponential smoothing: a level and a per-step trend.
class HoltPredictor final : public LoadPredictor {
 public:
  using LoadPredictor::LoadPredictor;
  const char* name() const override { return "holt"; }

 private:
  void update(TimeNs /*now*/, double value) override {
    if (samples() == 0) {
      level_ = value;
      trend_ = 0.0;
      return;
    }
    const double a = params().holt_alpha;
    const double b = params().holt_beta;
    const double prev = level_;
    level_ = a * value + (1.0 - a) * (level_ + trend_);
    trend_ = b * (level_ - prev) + (1.0 - b) * trend_;
  }
  double project(double horizon_sec) const override {
    return level_ + trend_ * horizon_steps(horizon_sec);
  }
  void reset_model() override {
    level_ = 0.0;
    trend_ = 0.0;
  }
  void pack(PredictorState* state) const override {
    state->scalars = {level_, trend_};
  }
  void unpack(const PredictorState& state) override {
    LP_CHECK_MSG(state.scalars.size() == 2,
                 "holt import from a different predictor kind");
    level_ = state.scalars[0];
    trend_ = state.scalars[1];
  }

  double level_ = 0.0;
  double trend_ = 0.0;
};

/// Sliding-window linear least squares over (time, value): fit a line to
/// the last llsp_window observations and read it `horizon` past the newest
/// one (the atlas-rt llsp shape). Falls back to the last value while the
/// window holds fewer than two points or has no time spread.
class LlspPredictor final : public LoadPredictor {
 public:
  using LoadPredictor::LoadPredictor;
  const char* name() const override { return "llsp"; }

 private:
  void update(TimeNs now, double value) override {
    times_sec_.push_back(to_seconds(now));
    values_.push_back(value);
    if (times_sec_.size() > params().llsp_window) {
      times_sec_.erase(times_sec_.begin());
      values_.erase(values_.begin());
    }
  }
  double project(double horizon_sec) const override {
    const std::size_t n = times_sec_.size();
    if (n < 2) return last_value();
    // Center times at the newest sample: xs are small non-positive
    // numbers, so the normal equations stay well conditioned however far
    // the sim clock has run.
    const double t_last = times_sec_.back();
    double mean_x = 0.0, mean_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mean_x += times_sec_[i] - t_last;
      mean_y += values_[i];
    }
    mean_x /= static_cast<double>(n);
    mean_y /= static_cast<double>(n);
    double sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = times_sec_[i] - t_last - mean_x;
      sxx += dx * dx;
      sxy += dx * (values_[i] - mean_y);
    }
    if (sxx <= 0.0) return last_value();
    const double slope = sxy / sxx;
    return mean_y + slope * (horizon_sec - mean_x);
  }
  void reset_model() override {
    times_sec_.clear();
    values_.clear();
  }
  void pack(PredictorState* state) const override {
    state->window = values_;
    state->window_times_sec = times_sec_;
  }
  void unpack(const PredictorState& state) override {
    LP_CHECK_MSG(state.window.size() == state.window_times_sec.size(),
                 "llsp import from a different predictor kind");
    values_ = state.window;
    times_sec_ = state.window_times_sec;
  }

  std::vector<double> times_sec_;
  std::vector<double> values_;
};

using Registry = std::map<std::string, PredictorFactory>;

template <typename P>
PredictorFactory factory_of() {
  return [](const PredictorParams& params) {
    return std::unique_ptr<LoadPredictor>(new P(params));
  };
}

Registry& registry() {
  static Registry* r = [] {
    auto* m = new Registry;
    (*m)["last-value"] = factory_of<LastValuePredictor>();
    (*m)["ewma"] = factory_of<EwmaPredictor>();
    (*m)["decay-diff"] = factory_of<DecayDiffPredictor>();
    (*m)["holt"] = factory_of<HoltPredictor>();
    (*m)["llsp"] = factory_of<LlspPredictor>();
    return m;
  }();
  return *r;
}

}  // namespace

void register_predictor(const std::string& name, PredictorFactory factory) {
  LP_CHECK(!name.empty());
  LP_CHECK(factory != nullptr);
  registry()[name] = std::move(factory);
}

std::unique_ptr<LoadPredictor> make_predictor(const PredictorParams& params) {
  const auto it = registry().find(params.kind);
  LP_CHECK_MSG(it != registry().end(),
               "unknown predictor kind: " + params.kind);
  return it->second(params);
}

std::vector<std::string> registered_predictors() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

}  // namespace lp::predict
