// Pluggable load-prediction subsystem.
//
// A LoadPredictor consumes the time series of a published load quantity
// (the influential factor k of a session, or a frontend's predicted queue
// delay) one observation at a time and answers horizon-aware forecasts:
// "what will this series read `horizon` from now?". Consumers never touch
// a concrete forecaster — they hold the interface, built by name through
// the registry, so swapping reactive k for a forecast is a config change:
//
//   * last-value — forecast == the latest observation at any horizon. The
//     default: it reproduces today's reactive behavior bit-identically.
//   * ewma       — exponentially weighted level, flat extrapolation.
//   * decay-diff — smoothed first difference extrapolated per step (the
//     Ceph adsl predictor family's shape).
//   * holt       — double-exponential smoothing (level + trend).
//   * llsp      — sliding-window linear least squares over (time, value)
//     pairs, extrapolated along the fitted line (the atlas-rt shape).
//
// Every predictor scores itself: each observation is first compared against
// what the predictor forecast for this instant, accumulating MAE/bias the
// serving layer exports as predict.* gauges. State export/import is exact —
// export→import→export round-trips bit-identically, so forecasts survive
// live session migration unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

namespace lp::predict {

/// Construction-time knobs for every registered predictor; `kind` selects
/// the forecaster by registry name. One struct (not one per kind) so the
/// runtime config stays a plain value that rides RuntimeParams.
struct PredictorParams {
  std::string kind = "last-value";

  double ewma_alpha = 0.3;  ///< level smoothing (ewma)
  double decay = 0.6;       ///< first-difference smoothing (decay-diff)
  double holt_alpha = 0.4;  ///< level smoothing (holt)
  double holt_beta = 0.2;   ///< trend smoothing (holt)
  std::size_t llsp_window = 12;  ///< (time, value) pairs kept (llsp)

  /// Trend extrapolation is capped at this many observation gaps: a load
  /// series sampled every few hundred ms must not be extrapolated linearly
  /// across a multi-second horizon.
  double max_trend_steps = 8.0;

  /// Forecasts are clamped into [-max_abs_forecast, +max_abs_forecast];
  /// a non-finite projection degrades to the last observation. Keeps a
  /// mis-extrapolating model from poisoning the decision path.
  double max_abs_forecast = 1e6;
};

/// The exact serialized state of a predictor (live session migration).
/// The fixed fields are the base class's accounting; derived predictors
/// pack their smoothing state into `scalars` and, for windowed models,
/// `window` / `window_times_sec`. import_state into a predictor of the
/// same kind and params is bit-identical; a kind mismatch throws.
struct PredictorState {
  TimeNs last_observed = 0;
  double last_value = 0.0;
  double gap_sec = 0.0;  ///< smoothed observation gap (trend step size)
  std::uint64_t samples = 0;
  double abs_err_sum = 0.0;
  double err_sum = 0.0;
  std::uint64_t scored = 0;
  std::vector<double> scalars;
  std::vector<double> window;
  std::vector<double> window_times_sec;
};

/// Modeled wire size of a state for session migration: 8 bytes per packed
/// vector element. The fixed fields ride the export header the serving
/// layer already charges, so the default last-value predictor (all vectors
/// empty) adds zero bytes — migration timing stays bit-identical to runs
/// that predate the predictor.
std::int64_t state_wire_bytes(const PredictorState& state);

class LoadPredictor {
 public:
  explicit LoadPredictor(const PredictorParams& params) : params_(params) {}
  virtual ~LoadPredictor() = default;

  /// Registry name of this forecaster (matches PredictorParams::kind).
  virtual const char* name() const = 0;

  /// Feeds one observation of the series at sim time `now` (monotone).
  /// Scores the forecast this predictor had standing for this instant
  /// *before* absorbing the value, and returns that signed error
  /// (forecast - value); NaN on the first observation, when nothing was
  /// forecast. O(window) worst case, no allocation on the steady path.
  double observe(TimeNs now, double value);

  /// Forecast of the series `horizon` past the last observation (0 = the
  /// predictor's current level). Always finite; clamped per params.
  /// With no observations yet, 0 — callers fall back to their live value.
  double forecast(DurationNs horizon) const;

  std::uint64_t samples() const { return samples_; }
  TimeNs last_observed() const { return last_observed_; }
  double last_value() const { return last_value_; }

  /// Mean absolute / signed forecast error over the scored observations.
  double mae() const;
  double bias() const;
  std::uint64_t scored() const { return scored_; }

  /// [0, 1] trust in the forecast: ramps with sample count, discounted by
  /// the observed error. 0 with no samples.
  double confidence() const;

  /// Back to the just-constructed state (the serving layer resets
  /// predictors wherever it reconstructs the tracker they shadow: crash,
  /// fence, export-side wipe).
  void reset();

  /// Exact state round-trip for live migration: export→import→export is
  /// bit-identical. import_state requires a state packed by the same kind
  /// (vector layouts must match) and replaces everything.
  PredictorState export_state() const;
  void import_state(const PredictorState& state);

 protected:
  const PredictorParams& params() const { return params_; }

  /// Horizon expressed in (smoothed) observation gaps, capped at
  /// params().max_trend_steps; 0 before a second sample establishes a gap.
  double horizon_steps(double horizon_sec) const;

 private:
  /// Absorbs the observation into the derived model (called after the
  /// standing forecast was scored; base fields still hold the *previous*
  /// observation while this runs).
  virtual void update(TimeNs now, double value) = 0;
  /// The derived model's raw projection `horizon_sec` ahead; the base
  /// clamps it. Only called with samples() > 0.
  virtual double project(double horizon_sec) const = 0;
  virtual void reset_model() = 0;
  virtual void pack(PredictorState* state) const = 0;
  virtual void unpack(const PredictorState& state) = 0;

  PredictorParams params_;
  TimeNs last_observed_ = 0;
  double last_value_ = 0.0;
  double gap_sec_ = 0.0;
  std::uint64_t samples_ = 0;
  double abs_err_sum_ = 0.0;
  double err_sum_ = 0.0;
  std::uint64_t scored_ = 0;
};

using PredictorFactory =
    std::function<std::unique_ptr<LoadPredictor>(const PredictorParams&)>;

/// Registers (or replaces) a factory under `name`; make_predictor resolves
/// PredictorParams::kind against this registry. The five built-ins are
/// pre-registered.
void register_predictor(const std::string& name, PredictorFactory factory);

/// Builds the predictor params.kind names; throws on an unknown kind.
std::unique_ptr<LoadPredictor> make_predictor(const PredictorParams& params);

/// Registered kind names in deterministic (sorted) order.
std::vector<std::string> registered_predictors();

}  // namespace lp::predict
