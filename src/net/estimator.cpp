#include "net/estimator.h"

#include <algorithm>

#include "common/check.h"

namespace lp::net {

BandwidthEstimator::BandwidthEstimator(std::size_t window, BitsPerSec initial)
    : window_(window), initial_(initial) {
  LP_CHECK(initial > 0.0);
}

void BandwidthEstimator::add_transfer(std::int64_t bytes,
                                      DurationNs duration) {
  LP_CHECK(bytes > 0);
  LP_CHECK(duration >= 0);
  // The coarse simulated clock can round a tiny transfer (a minimal probe
  // over a fast link) down to 0 ns. Such a sample carries no bandwidth
  // information (it would divide to infinity), so it is dropped rather
  // than treated as a contract violation.
  if (duration == 0) return;
  add_sample(static_cast<double>(bytes) * 8.0 /
             to_seconds(duration));
}

void BandwidthEstimator::add_sample(BitsPerSec bandwidth) {
  LP_CHECK(bandwidth > 0.0);
  window_.add(bandwidth);
}

BitsPerSec BandwidthEstimator::estimate() const {
  return window_.empty() ? initial_ : window_.mean();
}

std::int64_t BandwidthEstimator::next_probe_bytes(DurationNs target) const {
  const double bytes = estimate() / 8.0 * to_seconds(target);
  return std::clamp<std::int64_t>(static_cast<std::int64_t>(bytes), 1024,
                                  256 * 1024);
}

}  // namespace lp::net
