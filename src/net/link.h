// Simulated device<->server network link.
//
// Transfer time = RTT/2 + bytes / bandwidth(t) with a small lognormal-ish
// jitter, where bandwidth follows a BandwidthTrace. This is the entire role
// the WiFi link plays in the paper: the partition algorithm only consumes
// s_p / B_u (and ignores the download term, Section IV).
#pragma once

#include "common/rng.h"
#include "common/units.h"
#include "net/bandwidth_trace.h"
#include "sim/simulator.h"

namespace lp::net {

class Link {
 public:
  Link(sim::Simulator& sim, BandwidthTrace up, BandwidthTrace down,
       DurationNs rtt = milliseconds(2), std::uint64_t seed = 11);

  /// Uploads `bytes`; completes after the (jittered) transfer time. If
  /// `measured` is non-null it receives the actual duration — this is how
  /// the runtime profiler passively observes bandwidth.
  sim::Task upload(std::int64_t bytes, DurationNs* measured = nullptr);
  sim::Task download(std::int64_t bytes, DurationNs* measured = nullptr);

  /// True bandwidths right now (tests / oracle baselines only; the system
  /// under test must use the estimator instead).
  BitsPerSec true_upload_bw() const;
  BitsPerSec true_download_bw() const;

  DurationNs rtt() const { return rtt_; }

 private:
  sim::Task transfer(std::int64_t bytes, const BandwidthTrace& trace,
                     DurationNs* measured);

  sim::Simulator* sim_;
  BandwidthTrace up_;
  BandwidthTrace down_;
  DurationNs rtt_;
  Rng rng_;
};

}  // namespace lp::net
