// Simulated device<->server network link.
//
// Transfer time = RTT/2 + bytes / bandwidth(t) with a small lognormal-ish
// jitter, where bandwidth follows a BandwidthTrace. This is the entire role
// the WiFi link plays in the paper: the partition algorithm only consumes
// s_p / B_u (and ignores the download term, Section IV).
//
// ## Failure contract
//
// Bandwidth is sampled when the transfer starts sending. A zero-bandwidth
// trace segment is a hard blackout: a transfer that starts inside one makes
// no progress and stalls until the trace next becomes positive, then sends
// at the recovered bandwidth (it is NOT scheduled at an absurdly-far
// completion time by dividing by ~zero). If the trace never recovers the
// transfer can never complete, so callers that may face a blackout MUST
// pass a deadline; a no-deadline transfer on a permanently dead link is a
// contract error.
//
// With a deadline (absolute sim time; 0 = none), a transfer that cannot
// complete by it gives up exactly at the deadline and reports
// TransferStatus::kTimedOut. An attached FaultPlan additionally injects
// per-transfer packet loss: a lost transfer spends a deterministic partial
// send time, then reports kLost (a link-layer reset, not a silent hang).
// `measured` is only written for successful transfers — it is the passive
// bandwidth observation channel and must not learn from aborted sends.
#pragma once

#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "fault/fault_plan.h"
#include "net/bandwidth_trace.h"
#include "obs/telemetry.h"
#include "sim/simulator.h"

namespace lp::net {

enum class TransferStatus : std::uint8_t {
  kOk,        ///< delivered
  kTimedOut,  ///< gave up at the deadline (blackout or too slow)
  kLost,      ///< dropped mid-flight by injected packet loss
};

struct TransferOutcome {
  TransferStatus status = TransferStatus::kOk;
  DurationNs elapsed = 0;  ///< wall time spent on the attempt
};

class Link {
 public:
  Link(sim::Simulator& sim, BandwidthTrace up, BandwidthTrace down,
       DurationNs rtt = milliseconds(2), std::uint64_t seed = 11);

  /// Uploads `bytes`; completes after the (jittered) transfer time. If
  /// `measured` is non-null it receives the actual duration on success —
  /// this is how the runtime profiler passively observes bandwidth.
  /// `deadline` (absolute; 0 = none) bounds the attempt; `outcome` (may be
  /// null) receives the typed result.
  sim::Task upload(std::int64_t bytes, DurationNs* measured = nullptr,
                   TimeNs deadline = 0, TransferOutcome* outcome = nullptr);
  sim::Task download(std::int64_t bytes, DurationNs* measured = nullptr,
                     TimeNs deadline = 0, TransferOutcome* outcome = nullptr);

  /// Wires packet-loss injection (FaultPlan::packet_loss windows). The plan
  /// must outlive the link; null detaches.
  void attach_faults(const fault::FaultPlan* plan) { faults_ = plan; }

  /// Attaches telemetry (null detaches): every transfer then records an
  /// "upload"/"download" span on `track` tagged with bytes, the sampled
  /// bandwidth and the outcome, and bumps net.* counters. Pass the owning
  /// client's track name so transfer spans nest under its request spans.
  /// Purely observational — attaching never changes link behavior.
  void set_telemetry(obs::Telemetry* telemetry, const std::string& track);

  /// True bandwidths right now (tests / oracle baselines only; the system
  /// under test must use the estimator instead).
  BitsPerSec true_upload_bw() const;
  BitsPerSec true_download_bw() const;

  DurationNs rtt() const { return rtt_; }

 private:
  sim::Task transfer(std::int64_t bytes, const BandwidthTrace& trace,
                     const char* dir, DurationNs* measured, TimeNs deadline,
                     TransferOutcome* outcome);
  void observe(const char* dir, std::int64_t bytes, TimeNs start,
               BitsPerSec bw, TransferStatus status);

  sim::Simulator* sim_;
  BandwidthTrace up_;
  BandwidthTrace down_;
  DurationNs rtt_;
  const fault::FaultPlan* faults_ = nullptr;
  Rng rng_;
  obs::Telemetry* telemetry_ = nullptr;
  obs::TrackId track_ = 0;
};

}  // namespace lp::net
