// Piecewise-constant bandwidth schedules driving the simulated WiFi link.
#pragma once

#include <vector>

#include "common/units.h"

namespace lp::fault {
class FaultPlan;
}  // namespace lp::fault

namespace lp::net {

/// Time-indexed bandwidth schedule; bandwidth_at(t) returns the value of the
/// last step at or before t (the first step's value before that).
///
/// A step may carry bandwidth 0: that is a hard blackout segment — the link
/// is down and transfers make no progress until the trace next becomes
/// positive (see net/link.h for the stall contract). Negative bandwidths
/// are rejected.
class BandwidthTrace {
 public:
  struct Step {
    TimeNs at;
    BitsPerSec bandwidth;
  };

  /// Steps must be non-empty, time-sorted, with non-negative bandwidths.
  explicit BandwidthTrace(std::vector<Step> steps);

  static BandwidthTrace constant(BitsPerSec bandwidth);

  /// The Figure 6 schedule: upload bandwidth 8 -> 4 -> 2 -> 1 Mbps, then up
  /// through 2, 4, 8, 16, 32, 64 Mbps, one phase every `phase` of sim time.
  static BandwidthTrace fig6_sweep(DurationNs phase);

  /// Two-state Gilbert-Elliott channel: alternating good/bad dwell times
  /// drawn exponentially with the given means. Models WiFi degradation
  /// bursts (bad_bw may be 0 for hard disconnect bursts). Deterministic
  /// given the seed.
  static BandwidthTrace gilbert_elliott(DurationNs total, BitsPerSec good_bw,
                                        BitsPerSec bad_bw,
                                        DurationNs mean_good_dwell,
                                        DurationNs mean_bad_dwell,
                                        std::uint64_t seed);

  BitsPerSec bandwidth_at(TimeNs t) const;

  /// Earliest time >= t at which the bandwidth is positive, or -1 if the
  /// trace is blacked out from t onward (the link never recovers).
  TimeNs next_positive_at(TimeNs t) const;

  const std::vector<Step>& steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
};

/// Splices a FaultPlan's link fault windows into a base trace: inside each
/// window the bandwidth is overridden (0 = blackout), and the base schedule
/// resumes at the window's end. Windows are applied in the order they were
/// added to the plan, so a later window wins where they overlap.
BandwidthTrace apply_link_faults(const BandwidthTrace& base,
                                 const fault::FaultPlan& plan);

}  // namespace lp::net
