// Piecewise-constant bandwidth schedules driving the simulated WiFi link.
#pragma once

#include <vector>

#include "common/units.h"

namespace lp::net {

/// Time-indexed bandwidth schedule; bandwidth_at(t) returns the value of the
/// last step at or before t (the first step's value before that).
class BandwidthTrace {
 public:
  struct Step {
    TimeNs at;
    BitsPerSec bandwidth;
  };

  /// Steps must be non-empty, time-sorted, with positive bandwidths.
  explicit BandwidthTrace(std::vector<Step> steps);

  static BandwidthTrace constant(BitsPerSec bandwidth);

  /// The Figure 6 schedule: upload bandwidth 8 -> 4 -> 2 -> 1 Mbps, then up
  /// through 2, 4, 8, 16, 32, 64 Mbps, one phase every `phase` of sim time.
  static BandwidthTrace fig6_sweep(DurationNs phase);

  /// Two-state Gilbert-Elliott channel: alternating good/bad dwell times
  /// drawn exponentially with the given means. Models WiFi degradation
  /// bursts (bad state = congested/interfered link, not a hard
  /// disconnect). Deterministic given the seed.
  static BandwidthTrace gilbert_elliott(DurationNs total, BitsPerSec good_bw,
                                        BitsPerSec bad_bw,
                                        DurationNs mean_good_dwell,
                                        DurationNs mean_bad_dwell,
                                        std::uint64_t seed);

  BitsPerSec bandwidth_at(TimeNs t) const;
  const std::vector<Step>& steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
};

}  // namespace lp::net
