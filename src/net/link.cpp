#include "net/link.h"

#include <algorithm>

#include "common/check.h"

namespace lp::net {

Link::Link(sim::Simulator& sim, BandwidthTrace up, BandwidthTrace down,
           DurationNs rtt, std::uint64_t seed)
    : sim_(&sim),
      up_(std::move(up)),
      down_(std::move(down)),
      rtt_(rtt),
      rng_(seed) {
  LP_CHECK(rtt >= 0);
}

BitsPerSec Link::true_upload_bw() const {
  return up_.bandwidth_at(sim_->now());
}
BitsPerSec Link::true_download_bw() const {
  return down_.bandwidth_at(sim_->now());
}

void Link::set_telemetry(obs::Telemetry* telemetry, const std::string& track) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  if (auto* tr = telemetry_->trace()) track_ = tr->track(track);
}

namespace {

const char* status_name(TransferStatus status) {
  switch (status) {
    case TransferStatus::kOk:
      return "ok";
    case TransferStatus::kTimedOut:
      return "timeout";
    case TransferStatus::kLost:
      return "lost";
  }
  return "?";
}

}  // namespace

void Link::observe(const char* dir, std::int64_t bytes, TimeNs start,
                   BitsPerSec bw, TransferStatus status) {
  if (telemetry_ == nullptr) return;
  auto& metrics = telemetry_->metrics();
  metrics.counter(std::string("net.transfer.") + status_name(status)).add();
  if (status == TransferStatus::kOk)
    metrics.counter(std::string("net.bytes.") + dir).add(bytes);
  if (auto* tr = telemetry_->trace()) {
    tr->span(track_, dir, start, sim_->now(),
             obs::TraceArgs()
                 .arg("bytes", bytes)
                 .arg("bw_mbps", bw / 1e6)
                 .arg("status", status_name(status)));
  }
}

sim::Task Link::transfer(std::int64_t bytes, const BandwidthTrace& trace,
                         const char* dir, DurationNs* measured,
                         TimeNs deadline, TransferOutcome* outcome) {
  LP_CHECK(bytes >= 0);
  const TimeNs start = sim_->now();
  // ~3% multiplicative jitter models MAC-layer variance; clamped so a
  // transfer can never be instant.
  const double scale = std::max(0.5, 1.0 + 0.03 * rng_.normal());

  // Blackout stall: a zero-bandwidth segment means the link is down; the
  // send begins when the trace next turns positive.
  const TimeNs begin = trace.next_positive_at(start);
  if (begin < 0) {
    // The trace never recovers; only a deadline bounds this attempt.
    LP_CHECK_MSG(deadline > 0,
                 "transfer on a permanently dead link needs a deadline");
    co_await sim_->delay(std::max<DurationNs>(0, deadline - start));
    observe(dir, bytes, start, 0.0, TransferStatus::kTimedOut);
    if (outcome != nullptr)
      *outcome = {TransferStatus::kTimedOut, sim_->now() - start};
    co_return;
  }

  const BitsPerSec bw = trace.bandwidth_at(begin);
  const DurationNs send =
      rtt_ / 2 + static_cast<DurationNs>(
                     static_cast<double>(transfer_time(bytes, bw)) * scale);

  // Injected packet loss: the attempt spends a deterministic partial send
  // time on the air, then dies with a link-layer reset.
  TimeNs finish = begin + send;
  TransferStatus status = TransferStatus::kOk;
  if (faults_ != nullptr) {
    const double p = faults_->loss_prob(begin);
    if (p > 0.0 && rng_.bernoulli(p)) {
      status = TransferStatus::kLost;
      finish = begin + rtt_ / 2 +
               static_cast<DurationNs>(rng_.uniform() *
                                       static_cast<double>(send - rtt_ / 2));
    }
  }

  if (deadline > 0 && finish > deadline) {
    co_await sim_->delay(std::max<DurationNs>(0, deadline - start));
    observe(dir, bytes, start, bw, TransferStatus::kTimedOut);
    if (outcome != nullptr)
      *outcome = {TransferStatus::kTimedOut, sim_->now() - start};
    co_return;
  }

  co_await sim_->delay(finish - start);
  observe(dir, bytes, start, bw, status);
  if (status == TransferStatus::kOk && measured != nullptr)
    *measured = finish - start;
  if (outcome != nullptr) *outcome = {status, finish - start};
}

sim::Task Link::upload(std::int64_t bytes, DurationNs* measured,
                       TimeNs deadline, TransferOutcome* outcome) {
  return transfer(bytes, up_, "upload", measured, deadline, outcome);
}

sim::Task Link::download(std::int64_t bytes, DurationNs* measured,
                         TimeNs deadline, TransferOutcome* outcome) {
  return transfer(bytes, down_, "download", measured, deadline, outcome);
}

}  // namespace lp::net
