#include "net/link.h"

#include <algorithm>

#include "common/check.h"

namespace lp::net {

Link::Link(sim::Simulator& sim, BandwidthTrace up, BandwidthTrace down,
           DurationNs rtt, std::uint64_t seed)
    : sim_(&sim),
      up_(std::move(up)),
      down_(std::move(down)),
      rtt_(rtt),
      rng_(seed) {
  LP_CHECK(rtt >= 0);
}

BitsPerSec Link::true_upload_bw() const {
  return up_.bandwidth_at(sim_->now());
}
BitsPerSec Link::true_download_bw() const {
  return down_.bandwidth_at(sim_->now());
}

sim::Task Link::transfer(std::int64_t bytes, const BandwidthTrace& trace,
                         DurationNs* measured) {
  LP_CHECK(bytes >= 0);
  const BitsPerSec bw = trace.bandwidth_at(sim_->now());
  // ~3% multiplicative jitter models MAC-layer variance; clamped so a
  // transfer can never be instant.
  const double scale = std::max(0.5, 1.0 + 0.03 * rng_.normal());
  const DurationNs t =
      rtt_ / 2 + static_cast<DurationNs>(
                     static_cast<double>(transfer_time(bytes, bw)) * scale);
  co_await sim_->delay(t);
  if (measured != nullptr) *measured = t;
}

sim::Task Link::upload(std::int64_t bytes, DurationNs* measured) {
  return transfer(bytes, up_, measured);
}

sim::Task Link::download(std::int64_t bytes, DurationNs* measured) {
  return transfer(bytes, down_, measured);
}

}  // namespace lp::net
