// Sliding-window upload-bandwidth estimator (Section IV).
//
// The device-side runtime profiler feeds it two kinds of samples: active
// probe transfers sent every period, and passive measurements of the real
// offloading uploads. Probe size adapts to the current estimate so a probe
// costs roughly a fixed (small) amount of air time.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/units.h"

namespace lp::net {

class BandwidthEstimator {
 public:
  /// `window` = number of records kept (user-configurable in the paper);
  /// `initial` seeds the estimate before any measurement exists.
  explicit BandwidthEstimator(std::size_t window = 8,
                              BitsPerSec initial = mbps(8));

  /// Records a measured transfer (bytes over duration). A zero duration —
  /// the sim clock rounding a tiny probe to 0 ns — is dropped (it has no
  /// bandwidth information); negative durations are contract violations.
  void add_transfer(std::int64_t bytes, DurationNs duration);

  /// Records an explicit bandwidth sample.
  void add_sample(BitsPerSec bandwidth);

  /// Current estimate: mean of the sliding window (or the initial seed).
  BitsPerSec estimate() const;

  /// Probe payload sized so that, at the current estimate, the probe takes
  /// about `target` on the wire (clamped to [1 KiB, 256 KiB]).
  std::int64_t next_probe_bytes(DurationNs target = milliseconds(25)) const;

  std::size_t samples() const { return window_.size(); }

  /// Window contents for session migration; the initial seed is a config
  /// constant and stays with the estimator. Round-tripping through
  /// export_state()/import_state() (same window size) is bit-identical.
  struct State {
    SlidingWindow::Snapshot window;
  };
  State export_state() const { return State{window_.snapshot()}; }
  void import_state(const State& state) { window_.restore(state.window); }

 private:
  SlidingWindow window_;
  BitsPerSec initial_;
};

}  // namespace lp::net
