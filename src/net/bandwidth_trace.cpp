#include "net/bandwidth_trace.h"

#include "common/check.h"
#include "common/rng.h"

namespace lp::net {

BandwidthTrace::BandwidthTrace(std::vector<Step> steps)
    : steps_(std::move(steps)) {
  LP_CHECK(!steps_.empty());
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    LP_CHECK(steps_[i].bandwidth > 0.0);
    if (i) LP_CHECK_MSG(steps_[i].at >= steps_[i - 1].at, "unsorted trace");
  }
}

BandwidthTrace BandwidthTrace::constant(BitsPerSec bandwidth) {
  return BandwidthTrace({{0, bandwidth}});
}

BandwidthTrace BandwidthTrace::fig6_sweep(DurationNs phase) {
  const double sequence[] = {8, 4, 2, 1, 2, 4, 8, 16, 32, 64};
  std::vector<Step> steps;
  TimeNs t = 0;
  for (double m : sequence) {
    steps.push_back({t, mbps(m)});
    t += phase;
  }
  return BandwidthTrace(std::move(steps));
}

BandwidthTrace BandwidthTrace::gilbert_elliott(DurationNs total,
                                               BitsPerSec good_bw,
                                               BitsPerSec bad_bw,
                                               DurationNs mean_good_dwell,
                                               DurationNs mean_bad_dwell,
                                               std::uint64_t seed) {
  LP_CHECK(total > 0 && good_bw > 0.0 && bad_bw > 0.0);
  LP_CHECK(mean_good_dwell > 0 && mean_bad_dwell > 0);
  Rng rng(seed);
  std::vector<Step> steps;
  TimeNs t = 0;
  bool good = true;
  while (t < total) {
    steps.push_back({t, good ? good_bw : bad_bw});
    const double mean =
        static_cast<double>(good ? mean_good_dwell : mean_bad_dwell);
    t += static_cast<DurationNs>(rng.exponential(mean));
    good = !good;
  }
  return BandwidthTrace(std::move(steps));
}

BitsPerSec BandwidthTrace::bandwidth_at(TimeNs t) const {
  BitsPerSec bw = steps_.front().bandwidth;
  for (const auto& s : steps_) {
    if (s.at > t) break;
    bw = s.bandwidth;
  }
  return bw;
}

}  // namespace lp::net
