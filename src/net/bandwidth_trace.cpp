#include "net/bandwidth_trace.h"

#include "common/check.h"
#include "common/rng.h"
#include "fault/fault_plan.h"

namespace lp::net {

BandwidthTrace::BandwidthTrace(std::vector<Step> steps)
    : steps_(std::move(steps)) {
  LP_CHECK(!steps_.empty());
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    LP_CHECK(steps_[i].bandwidth >= 0.0);
    if (i) LP_CHECK_MSG(steps_[i].at >= steps_[i - 1].at, "unsorted trace");
  }
}

BandwidthTrace BandwidthTrace::constant(BitsPerSec bandwidth) {
  return BandwidthTrace({{0, bandwidth}});
}

BandwidthTrace BandwidthTrace::fig6_sweep(DurationNs phase) {
  const double sequence[] = {8, 4, 2, 1, 2, 4, 8, 16, 32, 64};
  std::vector<Step> steps;
  TimeNs t = 0;
  for (double m : sequence) {
    steps.push_back({t, mbps(m)});
    t += phase;
  }
  return BandwidthTrace(std::move(steps));
}

BandwidthTrace BandwidthTrace::gilbert_elliott(DurationNs total,
                                               BitsPerSec good_bw,
                                               BitsPerSec bad_bw,
                                               DurationNs mean_good_dwell,
                                               DurationNs mean_bad_dwell,
                                               std::uint64_t seed) {
  LP_CHECK(total > 0 && good_bw > 0.0 && bad_bw >= 0.0);
  LP_CHECK(mean_good_dwell > 0 && mean_bad_dwell > 0);
  Rng rng(seed);
  std::vector<Step> steps;
  TimeNs t = 0;
  bool good = true;
  while (t < total) {
    steps.push_back({t, good ? good_bw : bad_bw});
    const double mean =
        static_cast<double>(good ? mean_good_dwell : mean_bad_dwell);
    t += static_cast<DurationNs>(rng.exponential(mean));
    good = !good;
  }
  return BandwidthTrace(std::move(steps));
}

BitsPerSec BandwidthTrace::bandwidth_at(TimeNs t) const {
  BitsPerSec bw = steps_.front().bandwidth;
  for (const auto& s : steps_) {
    if (s.at > t) break;
    bw = s.bandwidth;
  }
  return bw;
}

TimeNs BandwidthTrace::next_positive_at(TimeNs t) const {
  if (bandwidth_at(t) > 0.0) return t;
  for (const auto& s : steps_)
    if (s.at > t && s.bandwidth > 0.0) return s.at;
  return -1;
}

BandwidthTrace apply_link_faults(const BandwidthTrace& base,
                                 const fault::FaultPlan& plan) {
  BandwidthTrace trace = base;
  for (const fault::FaultPlan::LinkFault& f : plan.link_faults()) {
    const TimeNs begin = f.window.begin;
    const TimeNs end = f.window.end;
    const BitsPerSec resume = trace.bandwidth_at(end);
    std::vector<BandwidthTrace::Step> steps;
    for (const auto& s : trace.steps())
      if (s.at < begin) steps.push_back(s);
    steps.push_back({begin, f.bandwidth});
    steps.push_back({end, resume});
    for (const auto& s : trace.steps())
      if (s.at > end) steps.push_back(s);
    trace = BandwidthTrace(std::move(steps));
  }
  return trace;
}

}  // namespace lp::net
