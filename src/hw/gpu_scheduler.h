// Discrete-event GPU execution engine with time-sliced context scheduling.
//
// Semantics (Section III-C of the paper):
//   * each client (foreground offloading service, background tasks) owns a
//     context with an in-order kernel stream;
//   * kernels are non-preemptive: once started they run to completion;
//   * the scheduler round-robins across contexts with pending work, letting
//     a context run kernels until it has consumed its time slice (2 ms), so
//     preemption happens only *between* layers.
// Consequences the experiments rely on: a single short kernel completes
// within its slice regardless of load, while a multi-kernel partition is
// interleaved with background work and its end-to-end time inflates — the
// paper's influential factor k.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/units.h"
#include "hw/calibration.h"
#include "sim/simulator.h"

namespace lp::hw {

class GpuScheduler {
 public:
  using ContextId = int;

  GpuScheduler(sim::Simulator& sim, GpuSchedulerParams params = {});

  /// Creates a kernel-stream context (one per client process).
  ContextId create_context(std::string name);

  /// Runs an in-order job of kernels on a context; the returned task
  /// completes when the last kernel retires. Must be awaited (the job is
  /// enqueued when the task starts). Preconditions (valid context,
  /// non-empty job) are checked eagerly.
  sim::Task run_job(ContextId ctx, std::vector<DurationNs> kernels);

  /// Runs a coalesced batch: one in-order kernel stream executed once on
  /// behalf of `fanout` logical jobs (the serving layer's suffix batching).
  /// Accounting-wise the dispatch retires `fanout` jobs; run_job(ctx, k) is
  /// run_batch(ctx, k, 1).
  sim::Task run_batch(ContextId ctx, std::vector<DurationNs> kernels,
                      std::size_t fanout);

  /// Cumulative busy time (sum of executed kernel durations).
  DurationNs busy_ns() const { return busy_ns_; }

  /// Utilization over [since, now]; requires since < now.
  double utilization_since(TimeNs since, DurationNs busy_at_since) const;

  std::uint64_t completed_kernels() const { return completed_kernels_; }
  std::uint64_t completed_jobs() const { return completed_jobs_; }
  /// Jobs retired through batched dispatches with fanout > 1.
  std::uint64_t coalesced_jobs() const { return coalesced_jobs_; }

  /// Total kernels currently queued across all contexts.
  std::size_t pending_kernels() const;

 private:
  struct Job {
    std::vector<DurationNs> kernels;
    std::size_t next = 0;
    sim::Event* done = nullptr;
    std::size_t fanout = 1;
  };
  struct Context {
    std::string name;
    std::deque<Job> jobs;
  };

  sim::Task run_job_impl(ContextId ctx, std::vector<DurationNs> kernels,
                         std::size_t fanout);
  sim::Task engine();
  bool any_work() const;
  int next_context_with_work(int after) const;

  sim::Simulator* sim_;
  GpuSchedulerParams params_;
  std::vector<Context> contexts_;
  sim::Event work_arrived_;
  DurationNs busy_ns_ = 0;
  std::uint64_t completed_kernels_ = 0;
  std::uint64_t completed_jobs_ = 0;
  std::uint64_t coalesced_jobs_ = 0;
  int rr_cursor_ = -1;
};

}  // namespace lp::hw
