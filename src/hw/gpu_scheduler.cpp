#include "hw/gpu_scheduler.h"

#include "common/check.h"

namespace lp::hw {

GpuScheduler::GpuScheduler(sim::Simulator& sim, GpuSchedulerParams params)
    : sim_(&sim), params_(params), work_arrived_(sim) {
  sim_->spawn(engine());
}

GpuScheduler::ContextId GpuScheduler::create_context(std::string name) {
  contexts_.push_back(Context{std::move(name), {}});
  return static_cast<ContextId>(contexts_.size()) - 1;
}

bool GpuScheduler::any_work() const {
  for (const auto& ctx : contexts_)
    if (!ctx.jobs.empty()) return true;
  return false;
}

int GpuScheduler::next_context_with_work(int after) const {
  const int n = static_cast<int>(contexts_.size());
  for (int step = 1; step <= n; ++step) {
    const int c = (after + step) % n;
    if (!contexts_[static_cast<std::size_t>(c)].jobs.empty()) return c;
  }
  return -1;
}

std::size_t GpuScheduler::pending_kernels() const {
  std::size_t total = 0;
  for (const auto& ctx : contexts_)
    for (const auto& job : ctx.jobs) total += job.kernels.size() - job.next;
  return total;
}

sim::Task GpuScheduler::run_job(ContextId ctx,
                                std::vector<DurationNs> kernels) {
  return run_batch(ctx, std::move(kernels), 1);
}

sim::Task GpuScheduler::run_batch(ContextId ctx,
                                  std::vector<DurationNs> kernels,
                                  std::size_t fanout) {
  LP_CHECK(ctx >= 0 && static_cast<std::size_t>(ctx) < contexts_.size());
  LP_CHECK_MSG(!kernels.empty(), "job must contain at least one kernel");
  LP_CHECK_MSG(fanout >= 1, "a dispatch serves at least one job");
  return run_job_impl(ctx, std::move(kernels), fanout);
}

sim::Task GpuScheduler::run_job_impl(ContextId ctx,
                                     std::vector<DurationNs> kernels,
                                     std::size_t fanout) {
  sim::Event done(*sim_);
  contexts_[static_cast<std::size_t>(ctx)].jobs.push_back(
      Job{std::move(kernels), 0, &done, fanout});
  work_arrived_.trigger();
  co_await done.wait();
}

sim::Task GpuScheduler::engine() {
  for (;;) {
    while (!any_work()) {
      work_arrived_.reset();
      co_await work_arrived_.wait();
    }
    const int c = next_context_with_work(rr_cursor_);
    LP_CHECK(c >= 0);
    const bool switched = c != rr_cursor_;
    rr_cursor_ = c;
    if (switched && params_.context_switch_sec > 0.0)
      co_await sim_->delay(seconds(params_.context_switch_sec));

    auto& ctx = contexts_[static_cast<std::size_t>(c)];
    const DurationNs slice = seconds(params_.time_slice_sec);
    DurationNs used = 0;
    // Run kernels from this context until the slice is consumed or it runs
    // dry. Kernels are non-preemptive: the last one may overrun the slice.
    while (!ctx.jobs.empty() && used < slice) {
      Job& job = ctx.jobs.front();
      const DurationNs k = job.kernels[job.next];
      co_await sim_->delay(k);
      busy_ns_ += k;
      used += k;
      ++completed_kernels_;
      if (++job.next == job.kernels.size()) {
        job.done->trigger();
        completed_jobs_ += job.fanout;
        if (job.fanout > 1) coalesced_jobs_ += job.fanout;
        ctx.jobs.pop_front();
      }
    }
  }
}

double GpuScheduler::utilization_since(TimeNs since,
                                       DurationNs busy_at_since) const {
  const TimeNs now = sim_->now();
  LP_CHECK(now > since);
  return static_cast<double>(busy_ns_ - busy_at_since) /
         static_cast<double>(now - since);
}

}  // namespace lp::hw
