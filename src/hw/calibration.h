// Calibration constants for the simulated testbed of Table IV.
//
// The user-end device models a Raspberry Pi 4 Model B (4x Cortex-A72
// @1.5 GHz, LPDDR4) and the edge server a Tesla T4 behind a deep-learning
// framework runtime. Constants are *effective* rates chosen so that
// whole-model latencies land in the ranges the paper reports (DESIGN.md §6):
// VGG16 local ~5.2 s, Xception local ~1.8 s, server-side inference tens of
// milliseconds (negligible next to a 588 KB upload at 8 Mbps).
#pragma once

namespace lp::hw {

struct CpuModelParams {
  // Effective multiply-accumulate throughput by kind (MAC/s). The A72's
  // NEON peak is ~24 GMAC/s; real conv kernels on the Pi reach ~10-15%.
  double conv_mac_per_sec = 3.6e9;
  double dwconv_mac_per_sec = 0.6e9;  // depthwise has poor arithmetic density
  double matmul_mac_per_sec = 4.0e9;
  double pool_elems_per_sec = 1.2e9;  // window elements scanned per second

  // Effective memory bandwidth for streaming activations/weights.
  double mem_bytes_per_sec = 2.2e9;

  // Per-node framework dispatch overhead.
  double node_overhead_sec = 10e-6;

  // Relative execution-time jitter applied by the device executor.
  double jitter_frac = 0.02;
};

struct GpuModelParams {
  // Effective MAC throughput (T4 fp32 peak ~4 TMAC/s; inference kernels
  // reach about half).
  double mac_per_sec = 2.0e12;
  double mem_bytes_per_sec = 300e9;

  // Floor of a kernel's *device-side* duration (what a CUDA-event-style
  // profiler measures, and what the Table III predictors are trained on).
  double kernel_launch_sec = 2e-6;

  // Host-side framework dispatch per executed op (MindSpore-class
  // frameworks spend a few hundred microseconds per op). It serializes the
  // execution stream but is invisible to per-kernel profiling, so it is a
  // *systematic bias* of the prediction models — folded, by construction,
  // into the influential factor k (Section III-C). Small enough that a
  // single layer finishes far inside a scheduler time slice; large enough
  // that multi-layer partitions span several slices and feel contention,
  // and that deep-narrow nets (ResNet50/152) cost more server time than
  // shallow-wide ones (VGG16) of higher FLOPs.
  double framework_dispatch_sec = 0.6e-3;

  // Work (in output elements) needed to saturate the GPU; smaller kernels
  // run at proportionally lower utilization. This is the main nonlinearity
  // the LR predictors cannot express (Table III's conv MAPE).
  double saturation_elems = 2.0e5;

  double jitter_frac = 0.03;

  // Marginal compute cost of each extra sample in a coalesced suffix batch,
  // as a fraction of the single-sample kernel body. Batching amortizes the
  // per-op framework dispatch (paid once per batch) and improves occupancy,
  // so each added sample costs less than a full kernel.
  double batch_compute_frac = 0.8;
};

struct GpuSchedulerParams {
  // Preemption happens only at kernel boundaries, after a context has
  // consumed its slice ("e.g. 2 ms" in Section III-C).
  double time_slice_sec = 2e-3;
  // Cost of switching between contexts.
  double context_switch_sec = 20e-6;
};

/// Number of background processes generating server load (Section II).
constexpr int kBackgroundProcesses = 7;

}  // namespace lp::hw
