#include "hw/cpu_model.h"

#include <cmath>

#include "common/check.h"

namespace lp::hw {

namespace {
using flops::ModelKind;
using flops::NodeConfig;

/// Weight elements a node reads (conv filters, FC matrix, BN params...).
std::int64_t weight_elements(const NodeConfig& cfg) {
  using graph::OpType;
  switch (cfg.op) {
    case OpType::kConv:
      return cfg.out.c() * cfg.in.c() * cfg.kernel_h * cfg.kernel_w;
    case OpType::kDWConv:
      return cfg.in.c() * cfg.kernel_h * cfg.kernel_w;
    case OpType::kMatMul:
      return cfg.in.dim(1) * cfg.out.dim(1);
    case OpType::kBiasAdd:
      return cfg.out.rank() >= 2 ? cfg.out.dim(1) : 0;
    case OpType::kBatchNorm:
      return 4 * cfg.in.c();
    default:
      return 0;
  }
}
}  // namespace

std::int64_t node_memory_bytes(const flops::NodeConfig& cfg) {
  constexpr std::int64_t kElem = 4;  // float32
  return (cfg.in.elements() + cfg.out.elements() + weight_elements(cfg)) *
         kElem;
}

DurationNs CpuModel::node_time(const flops::NodeConfig& cfg) const {
  const auto kind = flops::model_kind(cfg.op);
  if (kind == ModelKind::kNone) {
    // Concat / Flatten still move memory through the framework.
    if (cfg.op == graph::OpType::kConcat ||
        cfg.op == graph::OpType::kFlatten) {
      const double mem_s =
          static_cast<double>(2 * cfg.out.elements() * 4) /
          params_.mem_bytes_per_sec;
      return seconds(mem_s + params_.node_overhead_sec);
    }
    return 0;
  }

  const auto f = static_cast<double>(flops::flops_of(cfg));
  double compute_s = 0.0;
  switch (kind) {
    case ModelKind::kConv: {
      // Few-input-channel convs (e.g. the RGB stem) vectorize poorly, and
      // very large kernels spill the register tile.
      double eff = 1.0 / (1.0 + 0.6 * std::exp(-static_cast<double>(
                                          cfg.in.c()) /
                                      8.0));
      eff /= 1.0 + 0.015 * static_cast<double>(
                               std::max<std::int64_t>(0, cfg.kernel_h - 3));
      compute_s = f / (params_.conv_mac_per_sec * eff);
      break;
    }
    case ModelKind::kDWConv:
      compute_s = f / params_.dwconv_mac_per_sec;
      break;
    case ModelKind::kMatMul:
      compute_s = f / params_.matmul_mac_per_sec;
      break;
    case ModelKind::kMaxPool:
    case ModelKind::kAvgPool:
      compute_s = f / params_.pool_elems_per_sec;
      break;
    default:
      // Element-wise family: one pass over the tensor; compute is free
      // relative to memory.
      compute_s = 0.0;
      break;
  }

  const double mem_s = static_cast<double>(node_memory_bytes(cfg)) /
                       params_.mem_bytes_per_sec;
  // Compute and memory partially overlap on the in-order A72; take the
  // dominant term plus a fraction of the other.
  const double body_s =
      std::max(compute_s, mem_s) + 0.3 * std::min(compute_s, mem_s);
  return seconds(body_s + params_.node_overhead_sec);
}

DurationNs CpuModel::segment_time(const graph::Graph& g, std::size_t begin,
                                  std::size_t end) const {
  LP_CHECK(begin <= end && end < g.backbone().size());
  DurationNs total = 0;
  for (std::size_t i = std::max<std::size_t>(begin, 1); i <= end; ++i)
    total += node_time(flops::config_of(g, g.backbone()[i]));
  return total;
}

DurationNs CpuModel::graph_time(const graph::Graph& g) const {
  return segment_time(g, 0, g.backbone().size() - 1);
}

}  // namespace lp::hw
