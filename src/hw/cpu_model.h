// Analytic cost model of the user-end device (Raspberry Pi 4 class CPU).
//
// Ground truth for the simulation: the offline profiler measures these times
// (plus noise) to train M_user, and the device executor consumes them when
// running partition prefixes. The model is FLOPs/efficiency + memory-traffic
// + dispatch overhead, with mild configuration-dependent nonlinearities so
// linear predictors show realistic errors.
#pragma once

#include "common/units.h"
#include "flops/flops.h"
#include "hw/calibration.h"

namespace lp::hw {

class CpuModel {
 public:
  explicit CpuModel(CpuModelParams params = {}) : params_(params) {}

  const CpuModelParams& params() const { return params_; }

  /// Deterministic execution time of one computation node.
  DurationNs node_time(const flops::NodeConfig& cfg) const;

  /// Sum of node_time over a backbone segment [begin, end] (positions in
  /// the backbone order, inclusive; position 0 is the virtual L0 = free).
  DurationNs segment_time(const graph::Graph& g, std::size_t begin,
                          std::size_t end) const;

  /// Whole-graph (local inference) time.
  DurationNs graph_time(const graph::Graph& g) const;

 private:
  CpuModelParams params_;
};

/// Bytes a node's execution streams through memory: input + output
/// activations + weights.
std::int64_t node_memory_bytes(const flops::NodeConfig& cfg);

}  // namespace lp::hw
