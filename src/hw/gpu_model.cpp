#include "hw/gpu_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "graph/fusion.h"
#include "hw/cpu_model.h"

namespace lp::hw {

DurationNs GpuModel::kernel_time(const flops::NodeConfig& cfg) const {
  const auto kind = flops::model_kind(cfg.op);
  using flops::ModelKind;

  double body_s = 0.0;
  if (kind != ModelKind::kNone || cfg.op == graph::OpType::kConcat ||
      cfg.op == graph::OpType::kFlatten) {
    const auto f = static_cast<double>(flops::flops_of(cfg));
    double compute_s = 0.0;
    switch (kind) {
      case ModelKind::kConv: {
        // Small kernels cannot fill the SMs: occupancy scales with the
        // output volume until saturation.
        const double occupancy = std::min(
            1.0, static_cast<double>(cfg.out.elements()) /
                     params_.saturation_elems);
        compute_s = f / (params_.mac_per_sec * std::max(occupancy, 0.02));
        break;
      }
      case ModelKind::kMatMul:
        // Inference GEMV parallelizes across weight rows; streaming the
        // weight matrix (the memory term below) is the real bottleneck.
        compute_s = f / params_.mac_per_sec;
        break;
      case ModelKind::kDWConv:
        // Depthwise is memory bound on GPUs; give it a tenth of peak.
        compute_s = f / (params_.mac_per_sec * 0.1);
        break;
      case ModelKind::kMaxPool:
      case ModelKind::kAvgPool:
        compute_s = f / (params_.mac_per_sec * 0.05);
        break;
      default:
        compute_s = 0.0;  // element-wise & data movement: memory bound
        break;
    }
    const double mem_s = static_cast<double>(node_memory_bytes(cfg)) /
                         params_.mem_bytes_per_sec;
    body_s = std::max(compute_s, mem_s);
  } else if (cfg.op == graph::OpType::kInput) {
    return 0;
  }

  return seconds(std::max(body_s, 0.0) + params_.kernel_launch_sec);
}

std::vector<DurationNs> GpuModel::segment_kernels(const graph::Graph& g,
                                                  std::size_t begin,
                                                  std::size_t end) const {
  LP_CHECK(begin <= end && end < g.backbone().size());
  std::vector<DurationNs> kernels;
  kernels.reserve(end - begin + 1);
  const DurationNs dispatch = seconds(params_.framework_dispatch_sec);
  for (std::size_t i = std::max<std::size_t>(begin, 1); i <= end; ++i) {
    const auto t = kernel_time(flops::config_of(g, g.backbone()[i]));
    if (t > 0) kernels.push_back(t + dispatch);
  }
  return kernels;
}

DurationNs GpuModel::segment_time(const graph::Graph& g, std::size_t begin,
                                  std::size_t end) const {
  DurationNs total = 0;
  for (auto t : segment_kernels(g, begin, end)) total += t;
  return total;
}

std::vector<DurationNs> GpuModel::batched_segment_kernels(
    const graph::Graph& g, std::size_t begin, std::size_t end,
    std::size_t batch) const {
  LP_CHECK(begin <= end && end < g.backbone().size());
  LP_CHECK(batch >= 1);
  std::vector<DurationNs> kernels;
  kernels.reserve(end - begin + 1);
  const DurationNs dispatch = seconds(params_.framework_dispatch_sec);
  const double scale =
      1.0 + static_cast<double>(batch - 1) * params_.batch_compute_frac;
  for (std::size_t i = std::max<std::size_t>(begin, 1); i <= end; ++i) {
    const auto t = kernel_time(flops::config_of(g, g.backbone()[i]));
    if (t <= 0) continue;
    kernels.push_back(
        static_cast<DurationNs>(static_cast<double>(t) * scale) + dispatch);
  }
  return kernels;
}

std::vector<DurationNs> GpuModel::fused_segment_kernels(
    const graph::Graph& g, std::size_t begin, std::size_t end) const {
  LP_CHECK(begin <= end && end < g.backbone().size());
  const auto groups =
      graph::fuse_segment(g, std::max<std::size_t>(begin, 1), end);
  const DurationNs dispatch = seconds(params_.framework_dispatch_sec);
  const DurationNs launch = seconds(params_.kernel_launch_sec);

  std::vector<DurationNs> kernels;
  kernels.reserve(groups.size());
  for (const auto& group : groups) {
    DurationNs t = 0;
    bool first = true;
    for (graph::NodeId id : group.nodes) {
      const auto body = kernel_time(flops::config_of(g, id));
      if (body <= 0) continue;
      if (first) {
        t += body;
        first = false;
      } else {
        // Epilogue work rides in the anchor kernel's registers; only a
        // small residual of its standalone cost remains.
        t += std::max<DurationNs>(0, (body - launch) * 15 / 100);
      }
    }
    if (t > 0) kernels.push_back(t + dispatch);
  }
  return kernels;
}

DurationNs GpuModel::fused_segment_time(const graph::Graph& g,
                                        std::size_t begin,
                                        std::size_t end) const {
  DurationNs total = 0;
  for (auto t : fused_segment_kernels(g, begin, end)) total += t;
  return total;
}

}  // namespace lp::hw
