// Analytic per-kernel cost model of the edge server's GPU (Tesla T4 class).
//
// Each CNode of a partition becomes one kernel. Kernel duration is
// max(launch floor, compute/occupancy + memory), matching the property the
// paper leans on: individual kernels are far shorter than a scheduler time
// slice, so single-layer times are load-independent while multi-layer
// partitions queue between kernels (Section III-C).
#pragma once

#include <vector>

#include "common/units.h"
#include "flops/flops.h"
#include "graph/graph.h"
#include "hw/calibration.h"

namespace lp::hw {

class GpuModel {
 public:
  explicit GpuModel(GpuModelParams params = {}) : params_(params) {}

  const GpuModelParams& params() const { return params_; }

  /// Deterministic device-side duration of the kernel implementing one
  /// node — what the offline profiler measures and the LR models predict.
  /// Excludes host-side framework dispatch.
  DurationNs kernel_time(const flops::NodeConfig& cfg) const;

  /// Durations the execution stream actually occupies per node in a
  /// backbone segment [begin, end] (inclusive positions; position 0 =
  /// virtual L0 contributes nothing): kernel_time plus the per-op
  /// framework dispatch.
  std::vector<DurationNs> segment_kernels(const graph::Graph& g,
                                          std::size_t begin,
                                          std::size_t end) const;

  /// Contention-free execution time of a segment (sum of segment_kernels).
  DurationNs segment_time(const graph::Graph& g, std::size_t begin,
                          std::size_t end) const;

  /// Like segment_kernels, but for a coalesced batch of `batch` identical
  /// suffix jobs executed as one dispatch per node: the framework dispatch
  /// is paid once per node and each extra sample adds batch_compute_frac of
  /// the single-sample kernel body (serving-layer suffix batching).
  std::vector<DurationNs> batched_segment_kernels(const graph::Graph& g,
                                                  std::size_t begin,
                                                  std::size_t end,
                                                  std::size_t batch) const;

  /// Like segment_kernels, but with framework operator fusion enabled
  /// (extension; see graph/fusion.h): each fusion group executes as a
  /// single kernel — the anchor's full cost, a small residual for the
  /// absorbed epilogue, and one dispatch for the whole group.
  std::vector<DurationNs> fused_segment_kernels(const graph::Graph& g,
                                                std::size_t begin,
                                                std::size_t end) const;

  /// Contention-free fused execution time of a segment.
  DurationNs fused_segment_time(const graph::Graph& g, std::size_t begin,
                                std::size_t end) const;

 private:
  GpuModelParams params_;
};

}  // namespace lp::hw
