#include "hw/load_generator.h"

#include <algorithm>

#include "common/check.h"
#include "models/zoo.h"

namespace lp::hw {

double target_utilization(LoadLevel level) {
  switch (level) {
    case LoadLevel::k0:
      return 0.0;
    case LoadLevel::k30:
      return 0.3;
    case LoadLevel::k50:
      return 0.5;
    case LoadLevel::k70:
      return 0.7;
    case LoadLevel::k90:
      return 0.9;
    case LoadLevel::k100l:
    case LoadLevel::k100h:
      return 1.0;
  }
  return 0.0;
}

std::string load_level_name(LoadLevel level) {
  switch (level) {
    case LoadLevel::k0:
      return "0%";
    case LoadLevel::k30:
      return "30%";
    case LoadLevel::k50:
      return "50%";
    case LoadLevel::k70:
      return "70%";
    case LoadLevel::k90:
      return "90%";
    case LoadLevel::k100l:
      return "100%(l)";
    case LoadLevel::k100h:
      return "100%(h)";
  }
  return "?";
}

const std::vector<LoadLevel>& all_load_levels() {
  static const std::vector<LoadLevel> levels = {
      LoadLevel::k0,  LoadLevel::k30,   LoadLevel::k50,  LoadLevel::k70,
      LoadLevel::k90, LoadLevel::k100l, LoadLevel::k100h};
  return levels;
}

LoadGenerator::LoadGenerator(sim::Simulator& sim, GpuScheduler& scheduler,
                             const GpuModel& gpu, std::uint64_t seed)
    : sim_(&sim),
      scheduler_(&scheduler),
      rng_(seed),
      jitter_frac_(gpu.params().jitter_frac) {
  const auto alex = models::alexnet();
  periodic_kernels_ = gpu.segment_kernels(alex, 0, alex.backbone().size() - 1);
  for (auto k : periodic_kernels_) periodic_job_time_ += k;
  const auto heavy = models::resnet152();
  heavy_kernels_ = gpu.segment_kernels(heavy, 0, heavy.backbone().size() - 1);
}

std::vector<DurationNs> LoadGenerator::jitter(
    const std::vector<DurationNs>& kernels, Rng& rng) const {
  std::vector<DurationNs> out;
  out.reserve(kernels.size());
  for (auto k : kernels) {
    const double scale =
        std::max(0.2, 1.0 + jitter_frac_ * rng.normal());
    out.push_back(std::max<DurationNs>(
        1, static_cast<DurationNs>(static_cast<double>(k) * scale)));
  }
  return out;
}

void LoadGenerator::start() {
  LP_CHECK_MSG(!started_, "load generator already started");
  started_ = true;
  for (int i = 0; i < kBackgroundProcesses; ++i) sim_->spawn(worker(i));
}

sim::Task LoadGenerator::worker(int index) {
  Rng rng = rng_.fork();
  const auto ctx =
      scheduler_->create_context("bg" + std::to_string(index));
  // Desynchronize workers so periodic levels don't arrive in bursts.
  co_await sim_->delay(static_cast<DurationNs>(
      rng.uniform() * static_cast<double>(periodic_job_time_) *
      kBackgroundProcesses));

  TimeNs next_start = sim_->now();
  for (;;) {
    const LoadLevel level = level_;
    switch (level) {
      case LoadLevel::k0:
        co_await sim_->delay(milliseconds(20));
        next_start = sim_->now();
        break;
      case LoadLevel::k100h:
        // ResNet152 back-to-back ("every 1 us"): effectively saturating.
        co_await scheduler_->run_job(ctx, jitter(heavy_kernels_, rng));
        co_await sim_->delay(microseconds(1));
        next_start = sim_->now();
        break;
      default: {
        const double util = target_utilization(level);
        const auto period = static_cast<DurationNs>(
            static_cast<double>(periodic_job_time_) * kBackgroundProcesses /
            util);
        co_await scheduler_->run_job(ctx, jitter(periodic_kernels_, rng));
        next_start += period;
        const TimeNs now = sim_->now();
        if (next_start > now)
          co_await sim_->delay(next_start - now);
        else
          next_start = now;  // saturated: fall back to back-to-back
        break;
      }
    }
  }
}

}  // namespace lp::hw
