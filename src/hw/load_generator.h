// Background computation-load generator (Section II).
//
// Seven processes share the GPU with the offloading service. For levels
// 30%..100%(l) each process periodically runs an AlexNet inference, with the
// period set so the aggregate offered load hits the target utilization.
// 100%(h) runs ResNet152 back-to-back in all processes: same measured
// utilization as 100%(l) but far deeper per-rotation queues, which is what
// separates the two cases in Figure 2.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "hw/gpu_model.h"
#include "hw/gpu_scheduler.h"
#include "sim/simulator.h"

namespace lp::hw {

enum class LoadLevel { k0, k30, k50, k70, k90, k100l, k100h };

/// Target GPU utilization of a level (1.0 for both 100% variants).
double target_utilization(LoadLevel level);
std::string load_level_name(LoadLevel level);

/// The levels of Figure 2, in order.
const std::vector<LoadLevel>& all_load_levels();

class LoadGenerator {
 public:
  /// Uses `gpu` to size the background inference jobs. Call start() to
  /// spawn the worker processes.
  LoadGenerator(sim::Simulator& sim, GpuScheduler& scheduler,
                const GpuModel& gpu, std::uint64_t seed = 42);

  /// Spawns kBackgroundProcesses workers (idempotent guard: once only).
  void start();

  /// Changes the level; workers pick it up at their next iteration.
  void set_level(LoadLevel level) { level_ = level; }
  LoadLevel level() const { return level_; }

  /// Contention-free GPU time of one background inference at the periodic
  /// levels (AlexNet job).
  DurationNs periodic_job_time() const { return periodic_job_time_; }

 private:
  sim::Task worker(int index);
  std::vector<DurationNs> jitter(const std::vector<DurationNs>& kernels,
                                 Rng& rng) const;

  sim::Simulator* sim_;
  GpuScheduler* scheduler_;
  LoadLevel level_ = LoadLevel::k0;
  bool started_ = false;
  Rng rng_;
  double jitter_frac_;
  std::vector<DurationNs> periodic_kernels_;  // AlexNet
  std::vector<DurationNs> heavy_kernels_;     // ResNet152
  DurationNs periodic_job_time_ = 0;
};

}  // namespace lp::hw
