// Device-side energy model (extension).
//
// Neurosurgeon — the system LoADPart builds on — optimizes energy as well
// as latency; the paper drops the energy objective. This model restores
// it for analysis: per-inference device energy = CPU-active compute energy
// + radio energy during transfers (per-byte plus radio-on power) + idle
// draw while waiting for the server. Constants bracket a Raspberry Pi 4
// with on-board WiFi.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace lp::hw {

struct EnergyParams {
  double compute_watts = 5.0;      // package power while inferring
  double idle_watts = 2.3;         // baseline while awaiting the server
  double radio_watts = 0.9;        // extra draw while the radio is busy
  double tx_joules_per_byte = 60e-9;
  double rx_joules_per_byte = 25e-9;
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) : params_(params) {}

  const EnergyParams& params() const { return params_; }

  /// Energy of `sec` of device compute.
  double compute_joules(double sec) const {
    return params_.compute_watts * sec;
  }

  /// Energy of waiting `sec` for the server (device idles).
  double wait_joules(double sec) const { return params_.idle_watts * sec; }

  /// Energy of an uplink transfer.
  double tx_joules(std::int64_t bytes, double sec) const {
    return params_.radio_watts * sec +
           params_.tx_joules_per_byte * static_cast<double>(bytes);
  }

  /// Energy of a downlink transfer.
  double rx_joules(std::int64_t bytes, double sec) const {
    return params_.radio_watts * sec +
           params_.rx_joules_per_byte * static_cast<double>(bytes);
  }

 private:
  EnergyParams params_;
};

}  // namespace lp::hw
