// AlexNet (Krizhevsky et al. 2012), 1x3x224x224 input as in the paper.
//
// Backbone order (L1..L27): each conv layer maps to Conv+BiasAdd+ReLU, each
// FC layer to MatMul+BiasAdd(+ReLU). This reproduces the partition indices
// the paper reports: p=4 (after MaxPool-1), p=8 (after MaxPool-2), p=19
// (after Flatten) and p=27 (local inference).
#include "models/zoo.h"

namespace lp::models {

graph::Graph alexnet(std::int64_t num_classes, std::int64_t batch) {
  graph::GraphBuilder b("alexnet");
  auto x = b.input({batch, 3, 224, 224});
  x = b.conv2d(x, 64, 11, 4, 2, true, "conv1");
  x = b.relu(x, "relu1");
  x = b.maxpool(x, 3, 2, 0, false, "maxpool1");  // p=4
  x = b.conv2d(x, 192, 5, 1, 2, true, "conv2");
  x = b.relu(x, "relu2");
  x = b.maxpool(x, 3, 2, 0, false, "maxpool2");  // p=8
  x = b.conv2d(x, 384, 3, 1, 1, true, "conv3");
  x = b.relu(x, "relu3");
  x = b.conv2d(x, 256, 3, 1, 1, true, "conv4");
  x = b.relu(x, "relu4");
  x = b.conv2d(x, 256, 3, 1, 1, true, "conv5");
  x = b.relu(x, "relu5");
  x = b.maxpool(x, 3, 2, 0, false, "maxpool3");
  x = b.flatten(x, "flatten");  // p=19
  x = b.fc(x, 4096, true, "fc1");
  x = b.relu(x, "relu6");
  x = b.fc(x, 4096, true, "fc2");
  x = b.relu(x, "relu7");
  x = b.fc(x, num_classes, true, "fc3");  // p=27 = n
  return b.build(x);
}

}  // namespace lp::models
