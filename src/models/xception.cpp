// Xception (Chollet 2017), 1x3x299x299 as in the paper.
//
// Separable convolutions map to DWConv + pointwise Conv computation nodes —
// the depth-wise node kind the paper models separately in Tables I/II.
#include "models/zoo.h"

namespace lp::models {

namespace {

using graph::GraphBuilder;
using graph::NodeId;

/// Separable conv: depthwise 3x3 (pad 1) + pointwise 1x1, both bias-free
/// (a BatchNorm always follows).
NodeId sep_conv(GraphBuilder& b, NodeId x, std::int64_t out_c,
                const std::string& name) {
  auto y = b.dwconv2d(x, 3, 1, 1, /*with_bias=*/false, name + ".dw");
  return b.conv2d(y, out_c, 1, 1, 0, /*with_bias=*/false, name + ".pw");
}

/// Entry/exit-flow block: [relu] sep(bn) relu sep(bn) maxpool, with a
/// strided 1x1 projection skip joined by Add.
NodeId entry_block(GraphBuilder& b, NodeId x, std::int64_t c1,
                   std::int64_t c2, bool leading_relu,
                   const std::string& name) {
  auto y = x;
  if (leading_relu) y = b.relu(y, name + ".relu1");
  y = sep_conv(b, y, c1, name + ".sep1");
  y = b.batchnorm(y, name + ".bn1");
  y = b.relu(y, name + ".relu2");
  y = sep_conv(b, y, c2, name + ".sep2");
  y = b.batchnorm(y, name + ".bn2");
  y = b.maxpool(y, 3, 2, 1, false, name + ".pool");
  auto skip = b.conv2d(x, c2, 1, 2, 0, /*with_bias=*/false, name + ".skip");
  skip = b.batchnorm(skip, name + ".skip.bn");
  return b.add(y, skip, name + ".add");
}

/// Middle-flow block: three (relu, sep728, bn) with identity residual.
NodeId middle_block(GraphBuilder& b, NodeId x, const std::string& name) {
  auto y = x;
  for (int i = 1; i <= 3; ++i) {
    const std::string stage = name + ".s" + std::to_string(i);
    y = b.relu(y, stage + ".relu");
    y = sep_conv(b, y, 728, stage + ".sep");
    y = b.batchnorm(y, stage + ".bn");
  }
  return b.add(y, x, name + ".add");
}

}  // namespace

graph::Graph xception(std::int64_t num_classes, std::int64_t batch) {
  GraphBuilder b("xception");
  auto x = b.input({batch, 3, 299, 299});

  // Entry flow stem.
  x = b.conv2d(x, 32, 3, 2, 0, /*with_bias=*/false, "stem.conv1");
  x = b.batchnorm(x, "stem.bn1");
  x = b.relu(x, "stem.relu1");
  x = b.conv2d(x, 64, 3, 1, 0, /*with_bias=*/false, "stem.conv2");
  x = b.batchnorm(x, "stem.bn2");
  x = b.relu(x, "stem.relu2");

  x = entry_block(b, x, 128, 128, /*leading_relu=*/false, "entry1");
  x = entry_block(b, x, 256, 256, /*leading_relu=*/true, "entry2");
  x = entry_block(b, x, 728, 728, /*leading_relu=*/true, "entry3");

  for (int i = 1; i <= 8; ++i)
    x = middle_block(b, x, "middle" + std::to_string(i));

  // Exit flow.
  x = entry_block(b, x, 728, 1024, /*leading_relu=*/true, "exit1");
  x = sep_conv(b, x, 1536, "exit.sep1");
  x = b.batchnorm(x, "exit.bn1");
  x = b.relu(x, "exit.relu1");
  x = sep_conv(b, x, 2048, "exit.sep2");
  x = b.batchnorm(x, "exit.bn2");
  x = b.relu(x, "exit.relu2");

  x = b.global_avgpool(x, "head.avgpool");
  x = b.flatten(x, "head.flatten");
  x = b.fc(x, num_classes, true, "head.fc");
  return b.build(x);
}

}  // namespace lp::models
