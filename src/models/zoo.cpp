#include "models/zoo.h"

#include "common/check.h"

namespace lp::models {

std::vector<std::string> zoo_names() {
  return {"alexnet",   "vgg16",     "resnet18", "resnet50",  "resnet101",
          "resnet152", "squeezenet", "xception", "inception_v3", "mobilenet_v2"};
}

std::vector<std::string> evaluation_names() {
  return {"alexnet", "squeezenet", "vgg16", "resnet18", "resnet50",
          "xception"};
}

graph::Graph make_model(const std::string& name) {
  if (name == "alexnet") return alexnet();
  if (name == "vgg16") return vgg16();
  if (name == "resnet18") return resnet18();
  if (name == "resnet50") return resnet50();
  if (name == "resnet101") return resnet101();
  if (name == "resnet152") return resnet152();
  if (name == "squeezenet") return squeezenet();
  if (name == "xception") return xception();
  if (name == "inception_v3") return inception_v3();
  if (name == "mobilenet_v2") return mobilenet_v2();
  LP_CHECK_MSG(false, "unknown model: " + name);
  return alexnet();  // unreachable
}

}  // namespace lp::models
