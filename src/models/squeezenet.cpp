// SqueezeNet 1.0 (Iandola et al. 2016), 1x3x227x227 as in the paper.
//
// Fire modules are the multi-branch blocks of Section III-D: a squeeze
// 1x1 conv feeding parallel expand1x1 / expand3x3 branches joined by a
// channel Concat.
#include "models/zoo.h"

namespace lp::models {

namespace {

graph::NodeId fire(graph::GraphBuilder& b, graph::NodeId x,
                   std::int64_t squeeze_c, std::int64_t expand1_c,
                   std::int64_t expand3_c, const std::string& name) {
  auto s = b.conv2d(x, squeeze_c, 1, 1, 0, true, name + ".squeeze");
  s = b.relu(s, name + ".squeeze.relu");
  auto e1 = b.conv2d(s, expand1_c, 1, 1, 0, true, name + ".expand1x1");
  e1 = b.relu(e1, name + ".expand1x1.relu");
  auto e3 = b.conv2d(s, expand3_c, 3, 1, 1, true, name + ".expand3x3");
  e3 = b.relu(e3, name + ".expand3x3.relu");
  return b.concat({e1, e3}, name + ".concat");
}

}  // namespace

graph::Graph squeezenet(std::int64_t num_classes, std::int64_t batch) {
  graph::GraphBuilder b("squeezenet");
  auto x = b.input({batch, 3, 227, 227});
  x = b.conv2d(x, 96, 7, 2, 0, true, "conv1");
  x = b.relu(x, "conv1.relu");
  x = b.maxpool(x, 3, 2, 0, true, "maxpool1");
  x = fire(b, x, 16, 64, 64, "fire2");
  x = fire(b, x, 16, 64, 64, "fire3");
  x = fire(b, x, 32, 128, 128, "fire4");
  x = b.maxpool(x, 3, 2, 0, true, "maxpool4");
  x = fire(b, x, 32, 128, 128, "fire5");
  x = fire(b, x, 48, 192, 192, "fire6");
  x = fire(b, x, 48, 192, 192, "fire7");
  x = fire(b, x, 64, 256, 256, "fire8");
  x = b.maxpool(x, 3, 2, 0, true, "maxpool8");
  x = fire(b, x, 64, 256, 256, "fire9");
  x = b.conv2d(x, num_classes, 1, 1, 0, true, "conv10");
  x = b.relu(x, "conv10.relu");
  x = b.global_avgpool(x, "avgpool");
  x = b.flatten(x, "flatten");
  x = b.softmax(x, "softmax");
  return b.build(x);
}

}  // namespace lp::models
