// VGG16 (Simonyan & Zisserman 2015), configuration D, 1x3x224x224.
#include "models/zoo.h"

namespace lp::models {

graph::Graph vgg16(std::int64_t num_classes, std::int64_t batch) {
  graph::GraphBuilder b("vgg16");
  auto x = b.input({batch, 3, 224, 224});

  int conv_idx = 1;
  auto conv_block = [&](graph::NodeId in, std::int64_t channels,
                        int convs) {
    auto y = in;
    for (int i = 0; i < convs; ++i) {
      const std::string name = "conv" + std::to_string(conv_idx++);
      y = b.conv2d(y, channels, 3, 1, 1, true, name);
      y = b.relu(y, name + ".relu");
    }
    return b.maxpool(y, 2, 2, 0, false,
                     "pool" + std::to_string(conv_idx - 1));
  };

  x = conv_block(x, 64, 2);
  x = conv_block(x, 128, 2);
  x = conv_block(x, 256, 3);
  x = conv_block(x, 512, 3);
  x = conv_block(x, 512, 3);

  x = b.flatten(x, "flatten");
  x = b.fc(x, 4096, true, "fc1");
  x = b.relu(x, "fc1.relu");
  x = b.fc(x, 4096, true, "fc2");
  x = b.relu(x, "fc2.relu");
  x = b.fc(x, num_classes, true, "fc3");
  return b.build(x);
}

}  // namespace lp::models
