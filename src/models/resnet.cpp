// ResNet family (He et al. 2016): ResNet-18 (BasicBlock) and
// ResNet-50/101/152 (Bottleneck), 1x3x224x224, bias-free convolutions with
// BatchNorm, residual Adds forming the multi-branch blocks whose interior
// cuts Section III-D shows are never optimal.
#include "models/zoo.h"

#include <array>

namespace lp::models {

namespace {

using graph::GraphBuilder;
using graph::NodeId;

NodeId conv_bn(GraphBuilder& b, NodeId x, std::int64_t out_c,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               const std::string& name) {
  auto y = b.conv2d(x, out_c, kernel, stride, pad, /*with_bias=*/false, name);
  return b.batchnorm(y, name + ".bn");
}

NodeId basic_block(GraphBuilder& b, NodeId x, std::int64_t channels,
                   std::int64_t stride, bool downsample,
                   const std::string& name) {
  auto y = conv_bn(b, x, channels, 3, stride, 1, name + ".conv1");
  y = b.relu(y, name + ".relu1");
  y = conv_bn(b, y, channels, 3, 1, 1, name + ".conv2");
  auto identity = x;
  if (downsample)
    identity = conv_bn(b, x, channels, 1, stride, 0, name + ".downsample");
  y = b.add(y, identity, name + ".add");
  return b.relu(y, name + ".relu2");
}

NodeId bottleneck(GraphBuilder& b, NodeId x, std::int64_t channels,
                  std::int64_t stride, bool downsample,
                  const std::string& name) {
  const std::int64_t expanded = channels * 4;
  auto y = conv_bn(b, x, channels, 1, 1, 0, name + ".conv1");
  y = b.relu(y, name + ".relu1");
  y = conv_bn(b, y, channels, 3, stride, 1, name + ".conv2");
  y = b.relu(y, name + ".relu2");
  y = conv_bn(b, y, expanded, 1, 1, 0, name + ".conv3");
  auto identity = x;
  if (downsample)
    identity = conv_bn(b, x, expanded, 1, stride, 0, name + ".downsample");
  y = b.add(y, identity, name + ".add");
  return b.relu(y, name + ".relu3");
}

graph::Graph resnet(const std::string& name, bool use_bottleneck,
                    std::array<int, 4> layers, std::int64_t num_classes,
                    std::int64_t batch) {
  GraphBuilder b(name);
  auto x = b.input({batch, 3, 224, 224});
  x = conv_bn(b, x, 64, 7, 2, 3, "stem.conv");
  x = b.relu(x, "stem.relu");
  x = b.maxpool(x, 3, 2, 1, false, "stem.pool");

  const std::array<std::int64_t, 4> widths{64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < layers[static_cast<std::size_t>(stage)];
         ++block) {
      const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      // The first block of every stage changes channel count (and, except in
      // stage 0 of bottleneck nets, the spatial extent), so it needs a
      // projection shortcut.
      const bool downsample = block == 0 && (use_bottleneck || stage > 0);
      const std::string bname =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(block);
      x = use_bottleneck
              ? bottleneck(b, x, widths[static_cast<std::size_t>(stage)],
                           stride, downsample, bname)
              : basic_block(b, x, widths[static_cast<std::size_t>(stage)],
                            stride, downsample, bname);
    }
  }

  x = b.global_avgpool(x, "head.avgpool");
  x = b.flatten(x, "head.flatten");
  x = b.fc(x, num_classes, true, "head.fc");
  return b.build(x);
}

}  // namespace

graph::Graph resnet18(std::int64_t num_classes, std::int64_t batch) {
  return resnet("resnet18", false, {2, 2, 2, 2}, num_classes, batch);
}
graph::Graph resnet50(std::int64_t num_classes, std::int64_t batch) {
  return resnet("resnet50", true, {3, 4, 6, 3}, num_classes, batch);
}
graph::Graph resnet101(std::int64_t num_classes, std::int64_t batch) {
  return resnet("resnet101", true, {3, 4, 23, 3}, num_classes, batch);
}
graph::Graph resnet152(std::int64_t num_classes, std::int64_t batch) {
  return resnet("resnet152", true, {3, 8, 36, 3}, num_classes, batch);
}

}  // namespace lp::models
