// MobileNetV2 (Sandler et al. 2018), 1x3x224x224.
//
// Zoo extension beyond the paper's six: inverted residual blocks (expand
// 1x1 conv -> depthwise 3x3 -> project 1x1, identity add when stride 1 and
// widths match) make it the most depthwise-heavy model here, stressing the
// DWConv predictors of Tables II/III. ReLU6 is modeled as ReLU (identical
// cost characteristics).
#include "models/zoo.h"

namespace lp::models {

namespace {

using graph::GraphBuilder;
using graph::NodeId;

NodeId conv_bn_relu(GraphBuilder& b, NodeId x, std::int64_t out_c,
                    std::int64_t kernel, std::int64_t stride,
                    std::int64_t pad, const std::string& name) {
  auto y = b.conv2d(x, out_c, kernel, stride, pad, /*with_bias=*/false,
                    name);
  y = b.batchnorm(y, name + ".bn");
  return b.relu(y, name + ".relu");
}

/// Inverted residual: expand (1x1) -> depthwise (3x3) -> project (1x1).
NodeId inverted_residual(GraphBuilder& b, NodeId x, std::int64_t out_c,
                         std::int64_t stride, std::int64_t expand_ratio,
                         const std::string& name) {
  const std::int64_t in_c = b.desc(x).shape.c();
  auto y = x;
  if (expand_ratio != 1)
    y = conv_bn_relu(b, y, in_c * expand_ratio, 1, 1, 0, name + ".expand");
  y = b.dwconv2d(y, 3, stride, 1, /*with_bias=*/false, name + ".dw");
  y = b.batchnorm(y, name + ".dw.bn");
  y = b.relu(y, name + ".dw.relu");
  // Projection is linear (no activation).
  y = b.conv2d(y, out_c, 1, 1, 0, /*with_bias=*/false, name + ".project");
  y = b.batchnorm(y, name + ".project.bn");
  if (stride == 1 && in_c == out_c) y = b.add(y, x, name + ".add");
  return y;
}

}  // namespace

graph::Graph mobilenet_v2(std::int64_t num_classes, std::int64_t batch) {
  GraphBuilder b("mobilenet_v2");
  auto x = b.input({batch, 3, 224, 224});
  x = conv_bn_relu(b, x, 32, 3, 2, 1, "stem");  // 112

  // (expand_ratio, out_channels, repeats, first_stride)
  struct StageSpec {
    std::int64_t t, c, n, s;
  };
  const StageSpec stages[] = {{1, 16, 1, 1},  {6, 24, 2, 2},
                              {6, 32, 3, 2},  {6, 64, 4, 2},
                              {6, 96, 3, 1},  {6, 160, 3, 2},
                              {6, 320, 1, 1}};
  int block = 0;
  for (const auto& stage : stages) {
    for (std::int64_t i = 0; i < stage.n; ++i) {
      x = inverted_residual(b, x, stage.c, i == 0 ? stage.s : 1, stage.t,
                            "block" + std::to_string(block++));
    }
  }

  x = conv_bn_relu(b, x, 1280, 1, 1, 0, "head.conv");
  x = b.global_avgpool(x, "head.avgpool");
  x = b.flatten(x, "head.flatten");
  x = b.fc(x, num_classes, true, "head.fc");
  return b.build(x);
}

}  // namespace lp::models
