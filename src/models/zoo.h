// Model zoo: the six DNNs LoADPart evaluates (AlexNet, VGG16, ResNet18,
// ResNet50, SqueezeNet, Xception) plus ResNet101/152 (Section II motivation
// and the 100%(h) background workload) and InceptionV3 (Section III-D block
// analysis). Architectures follow the standard torchvision definitions;
// BatchNorm-based nets use bias-free convolutions.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace lp::models {

graph::Graph alexnet(std::int64_t num_classes = 1000,
                     std::int64_t batch = 1);
graph::Graph vgg16(std::int64_t num_classes = 1000,
                   std::int64_t batch = 1);
graph::Graph resnet18(std::int64_t num_classes = 1000,
                      std::int64_t batch = 1);
graph::Graph resnet50(std::int64_t num_classes = 1000,
                      std::int64_t batch = 1);
graph::Graph resnet101(std::int64_t num_classes = 1000,
                       std::int64_t batch = 1);
graph::Graph resnet152(std::int64_t num_classes = 1000,
                       std::int64_t batch = 1);
graph::Graph squeezenet(std::int64_t num_classes = 1000,
                        std::int64_t batch = 1);
graph::Graph xception(std::int64_t num_classes = 1000,
                      std::int64_t batch = 1);
graph::Graph inception_v3(std::int64_t num_classes = 1000,
                          std::int64_t batch = 1);

/// Zoo extension (not in the paper's evaluation): the most depthwise-heavy
/// architecture here.
graph::Graph mobilenet_v2(std::int64_t num_classes = 1000,
                          std::int64_t batch = 1);

/// Names accepted by make_model, in the paper's evaluation order.
std::vector<std::string> zoo_names();

/// The six models of the paper's evaluation section (Figures 6 and 9).
std::vector<std::string> evaluation_names();

/// Builds a zoo model by name; throws ContractError for unknown names.
graph::Graph make_model(const std::string& name);

}  // namespace lp::models
