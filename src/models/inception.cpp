// Inception-v3 (Szegedy et al. 2016), 1x3x299x299.
//
// Used by the Section III-D analysis: every cut inside an Inception block
// severs multiple branch tensors, and even the last block's cheapest
// interior cut (~1.25 MB) exceeds the 1.02 MB input.
#include "models/zoo.h"

namespace lp::models {

namespace {

using graph::GraphBuilder;
using graph::NodeId;

/// BasicConv2d: bias-free conv + BatchNorm + ReLU.
NodeId cbr(GraphBuilder& b, NodeId x, std::int64_t out_c, std::int64_t kh,
           std::int64_t kw, std::int64_t stride, std::int64_t pad_h,
           std::int64_t pad_w, const std::string& name) {
  auto y = b.conv2d_rect(x, out_c, kh, kw, stride, pad_h, pad_w,
                         /*with_bias=*/false, name);
  y = b.batchnorm(y, name + ".bn");
  return b.relu(y, name + ".relu");
}

NodeId inception_a(GraphBuilder& b, NodeId x, std::int64_t pool_c,
                   const std::string& name) {
  auto b1 = cbr(b, x, 64, 1, 1, 1, 0, 0, name + ".b1x1");
  auto b5 = cbr(b, x, 48, 1, 1, 1, 0, 0, name + ".b5x5_1");
  b5 = cbr(b, b5, 64, 5, 5, 1, 2, 2, name + ".b5x5_2");
  auto b3 = cbr(b, x, 64, 1, 1, 1, 0, 0, name + ".b3x3_1");
  b3 = cbr(b, b3, 96, 3, 3, 1, 1, 1, name + ".b3x3_2");
  b3 = cbr(b, b3, 96, 3, 3, 1, 1, 1, name + ".b3x3_3");
  auto bp = b.avgpool(x, 3, 1, 1, name + ".pool");
  bp = cbr(b, bp, pool_c, 1, 1, 1, 0, 0, name + ".bpool");
  return b.concat({b1, b5, b3, bp}, name + ".concat");
}

NodeId reduction_a(GraphBuilder& b, NodeId x, const std::string& name) {
  auto b3 = cbr(b, x, 384, 3, 3, 2, 0, 0, name + ".b3x3");
  auto bd = cbr(b, x, 64, 1, 1, 1, 0, 0, name + ".bd_1");
  bd = cbr(b, bd, 96, 3, 3, 1, 1, 1, name + ".bd_2");
  bd = cbr(b, bd, 96, 3, 3, 2, 0, 0, name + ".bd_3");
  auto bp = b.maxpool(x, 3, 2, 0, false, name + ".pool");
  return b.concat({b3, bd, bp}, name + ".concat");
}

NodeId inception_c(GraphBuilder& b, NodeId x, std::int64_t c7,
                   const std::string& name) {
  auto b1 = cbr(b, x, 192, 1, 1, 1, 0, 0, name + ".b1x1");
  auto b7 = cbr(b, x, c7, 1, 1, 1, 0, 0, name + ".b7_1");
  b7 = cbr(b, b7, c7, 1, 7, 1, 0, 3, name + ".b7_2");
  b7 = cbr(b, b7, 192, 7, 1, 1, 3, 0, name + ".b7_3");
  auto bd = cbr(b, x, c7, 1, 1, 1, 0, 0, name + ".bd_1");
  bd = cbr(b, bd, c7, 7, 1, 1, 3, 0, name + ".bd_2");
  bd = cbr(b, bd, c7, 1, 7, 1, 0, 3, name + ".bd_3");
  bd = cbr(b, bd, c7, 7, 1, 1, 3, 0, name + ".bd_4");
  bd = cbr(b, bd, 192, 1, 7, 1, 0, 3, name + ".bd_5");
  auto bp = b.avgpool(x, 3, 1, 1, name + ".pool");
  bp = cbr(b, bp, 192, 1, 1, 1, 0, 0, name + ".bpool");
  return b.concat({b1, b7, bd, bp}, name + ".concat");
}

NodeId reduction_b(GraphBuilder& b, NodeId x, const std::string& name) {
  auto b3 = cbr(b, x, 192, 1, 1, 1, 0, 0, name + ".b3_1");
  b3 = cbr(b, b3, 320, 3, 3, 2, 0, 0, name + ".b3_2");
  auto b7 = cbr(b, x, 192, 1, 1, 1, 0, 0, name + ".b7_1");
  b7 = cbr(b, b7, 192, 1, 7, 1, 0, 3, name + ".b7_2");
  b7 = cbr(b, b7, 192, 7, 1, 1, 3, 0, name + ".b7_3");
  b7 = cbr(b, b7, 192, 3, 3, 2, 0, 0, name + ".b7_4");
  auto bp = b.maxpool(x, 3, 2, 0, false, name + ".pool");
  return b.concat({b3, b7, bp}, name + ".concat");
}

NodeId inception_e(GraphBuilder& b, NodeId x, const std::string& name) {
  auto b1 = cbr(b, x, 320, 1, 1, 1, 0, 0, name + ".b1x1");
  auto b3 = cbr(b, x, 384, 1, 1, 1, 0, 0, name + ".b3_1");
  auto b3a = cbr(b, b3, 384, 1, 3, 1, 0, 1, name + ".b3_2a");
  auto b3b = cbr(b, b3, 384, 3, 1, 1, 1, 0, name + ".b3_2b");
  auto b3c = b.concat({b3a, b3b}, name + ".b3.concat");
  auto bd = cbr(b, x, 448, 1, 1, 1, 0, 0, name + ".bd_1");
  bd = cbr(b, bd, 384, 3, 3, 1, 1, 1, name + ".bd_2");
  auto bda = cbr(b, bd, 384, 1, 3, 1, 0, 1, name + ".bd_3a");
  auto bdb = cbr(b, bd, 384, 3, 1, 1, 1, 0, name + ".bd_3b");
  auto bdc = b.concat({bda, bdb}, name + ".bd.concat");
  auto bp = b.avgpool(x, 3, 1, 1, name + ".pool");
  bp = cbr(b, bp, 192, 1, 1, 1, 0, 0, name + ".bpool");
  return b.concat({b1, b3c, bdc, bp}, name + ".concat");
}

}  // namespace

graph::Graph inception_v3(std::int64_t num_classes, std::int64_t batch) {
  GraphBuilder b("inception_v3");
  auto x = b.input({batch, 3, 299, 299});
  x = cbr(b, x, 32, 3, 3, 2, 0, 0, "stem.conv1");   // 149
  x = cbr(b, x, 32, 3, 3, 1, 0, 0, "stem.conv2");   // 147
  x = cbr(b, x, 64, 3, 3, 1, 1, 1, "stem.conv3");   // 147
  x = b.maxpool(x, 3, 2, 0, false, "stem.pool1");   // 73
  x = cbr(b, x, 80, 1, 1, 1, 0, 0, "stem.conv4");   // 73
  x = cbr(b, x, 192, 3, 3, 1, 0, 0, "stem.conv5");  // 71
  x = b.maxpool(x, 3, 2, 0, false, "stem.pool2");   // 35

  x = inception_a(b, x, 32, "mixed0");
  x = inception_a(b, x, 64, "mixed1");
  x = inception_a(b, x, 64, "mixed2");
  x = reduction_a(b, x, "mixed3");  // 17x17x768
  x = inception_c(b, x, 128, "mixed4");
  x = inception_c(b, x, 160, "mixed5");
  x = inception_c(b, x, 160, "mixed6");
  x = inception_c(b, x, 192, "mixed7");
  x = reduction_b(b, x, "mixed8");  // 8x8x1280
  x = inception_e(b, x, "mixed9");
  x = inception_e(b, x, "mixed10");

  x = b.global_avgpool(x, "head.avgpool");
  x = b.flatten(x, "head.flatten");
  x = b.fc(x, num_classes, true, "head.fc");
  return b.build(x);
}

}  // namespace lp::models
