#include "tensor/shape.h"

#include <sstream>

#include "common/check.h"

namespace lp {

std::int64_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return 4;
    case DType::kFloat16:
      return 2;
    case DType::kInt8:
      return 1;
  }
  LP_CHECK_MSG(false, "unknown dtype");
  return 0;
}

std::string dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return "float32";
    case DType::kFloat16:
      return "float16";
    case DType::kInt8:
      return "int8";
  }
  return "?";
}

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (auto d : dims_) LP_CHECK_MSG(d > 0, "axis sizes must be positive");
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (auto d : dims_) LP_CHECK_MSG(d > 0, "axis sizes must be positive");
}

std::int64_t Shape::dim(std::size_t i) const {
  LP_CHECK(i < dims_.size());
  return dims_[i];
}

std::int64_t Shape::elements() const {
  std::int64_t total = 1;
  for (auto d : dims_) total *= d;
  return total;
}

std::string Shape::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << 'x';
    out << dims_[i];
  }
  return out.str();
}

}  // namespace lp
