// Tensor shapes and dtypes.
//
// Shapes are NCHW for feature maps; arbitrary ranks are supported for
// flattened/FC tensors. Element counts and byte sizes drive both the FLOPs
// formulas (Table I) and the transmission sizes s_i used by Algorithm 1.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace lp {

enum class DType { kFloat32, kFloat16, kInt8 };

/// Bytes per element of a dtype.
std::int64_t dtype_size(DType dtype);
std::string dtype_name(DType dtype);

/// Dense tensor shape; axis sizes must be positive.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t i) const;
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Total element count (1 for rank-0).
  std::int64_t elements() const;

  /// NCHW accessors; require rank() == 4.
  std::int64_t n() const { return dim(0); }
  std::int64_t c() const { return dim(1); }
  std::int64_t h() const { return dim(2); }
  std::int64_t w() const { return dim(3); }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const;  ///< e.g. "1x3x224x224"

 private:
  std::vector<std::int64_t> dims_;
};

/// Shape plus dtype: everything needed to size a transmission.
struct TensorDesc {
  Shape shape;
  DType dtype = DType::kFloat32;

  std::int64_t bytes() const { return shape.elements() * dtype_size(dtype); }
  bool operator==(const TensorDesc& other) const {
    return shape == other.shape && dtype == other.dtype;
  }
};

}  // namespace lp
