// FleetDriver: spawns a heterogeneous fleet of offloading clients against
// one EdgeServerFrontend and collects per-request records.
//
// This replaces the ad-hoc "ClientRig" wiring the multi-client benches used
// to copy-paste: each tenant describes a model, a client count, a link, an
// arrival process and an SLO; run_fleet() builds the simulated testbed
// (shared GPU scheduler, one frontend, per-client links and sessions), runs
// it for the configured duration, and returns every InferenceRecord plus
// frontend-level counters. Deterministic given config.seed.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "models/zoo.h"
#include "net/bandwidth_trace.h"
#include "obs/taxonomy.h"
#include "obs/telemetry.h"
#include "serve/frontend.h"

namespace lp::serve {

/// One homogeneous group of clients (same model, link class and workload).
struct TenantSpec {
  std::string model = "alexnet";  ///< zoo name (models::make_model)
  int clients = 1;
  core::Policy policy = core::Policy::kLoadPart;
  net::BandwidthTrace upload = net::BandwidthTrace::constant(mbps(8));
  net::BandwidthTrace download = net::BandwidthTrace::constant(mbps(8));
  DurationNs rtt = milliseconds(2);
  /// Think time between a completed inference and the next request.
  DurationNs request_gap = milliseconds(5);
  /// Draw the think time exponentially with mean request_gap (Poisson-ish
  /// arrivals) instead of a fixed gap.
  bool poisson_arrivals = false;
  /// Markov-modulated bursts: with burst_gap > 0 each client flips between
  /// a calm state (mean gap = request_gap) and a burst state (mean gap =
  /// burst_gap, typically much smaller) after every request, entering with
  /// burst_enter_prob and leaving with burst_exit_prob. The default (0)
  /// draws no extra randomness, keeping legacy runs bit-identical.
  DurationNs burst_gap = 0;
  double burst_enter_prob = 0.05;
  double burst_exit_prob = 0.25;
  /// Per-request latency SLO: sets the EDF deadline and SLO accounting.
  /// 0 = no deadline.
  double slo_sec = 0.0;
};

struct FleetConfig {
  std::vector<TenantSpec> tenants;
  FrontendParams frontend;
  core::RuntimeParams runtime;
  /// Fault schedule for the whole testbed: link faults apply to every
  /// tenant link, server crashes and straggle windows to the frontend.
  /// Empty (default) = the legacy no-failure universe, bit-identical to
  /// runs that predate fault injection.
  fault::FaultPlan faults;
  DurationNs duration = seconds(90);
  DurationNs warmup = seconds(30);  ///< excluded from summaries
  DurationNs profiler_period = seconds(5);
  DurationNs watcher_period = seconds(10);
  std::uint64_t seed = 1;

  /// Telemetry sink wired through the whole testbed (frontend, links,
  /// clients); per-tenant summaries are published into its registry after
  /// the run. Null (default) = fully off: the run is bit-identical to one
  /// without telemetry. Must outlive run_fleet().
  obs::Telemetry* telemetry = nullptr;

  /// Invariant auditing hook (the check subsystem arms it): when set, the
  /// callback runs against the live frontend every audit_period of sim
  /// time (receiving the current sim clock, so the auditor can also assert
  /// clock monotonicity) and once more after the run. The callback must be
  /// purely observational; with it unset the run is bit-identical to
  /// before the hook existed.
  std::function<void(const EdgeServerFrontend&, TimeNs)> on_audit;
  DurationNs audit_period = seconds(1);
};

/// The record stream of one client, tagged with its tenant index.
struct ClientTrace {
  std::size_t tenant = 0;
  std::vector<core::InferenceRecord> records;
};

/// Steady-state summary of one tenant (or of the whole fleet): a typed
/// view over the shared outcome taxonomy (obs::OutcomeCounts) plus derived
/// latency/SLO statistics. The count accessors forward to the tally — the
/// summary no longer maintains a parallel set of hand-rolled counters.
struct TenantSummary {
  std::string name;
  obs::OutcomeCounts outcomes;

  std::size_t requests() const { return outcomes.requests(); }
  std::size_t admitted() const { return outcomes.admitted(); }
  std::size_t degraded() const { return outcomes.degraded(); }
  std::size_t local() const { return outcomes.local(); }
  std::size_t recovered() const { return outcomes.recovered(); }
  std::size_t failed() const { return outcomes.failed(); }
  std::size_t retries() const { return outcomes.retries(); }
  std::size_t faults() const { return outcomes.faults(); }
  std::size_t breaker_forced_local() const {
    return outcomes.breaker_forced_local();
  }
  std::size_t timeouts() const { return outcomes.timeouts(); }
  std::size_t link_drops() const { return outcomes.link_drops(); }
  std::size_t server_downs() const { return outcomes.server_downs(); }
  /// Requests the dispatcher will-miss shed (degraded locally, typed
  /// FailureKind::kDeadlineShed).
  std::size_t deadline_sheds() const { return outcomes.deadline_sheds(); }

  double mean_ms = 0.0;      ///< over every completed request
  double p90_ms = 0.0;
  double admitted_mean_ms = 0.0;  ///< over admitted requests only
  double admitted_p90_ms = 0.0;
  double mean_queue_wait_ms = 0.0;  ///< admitted requests
  double mean_k = 1.0;
  std::size_t modal_p = 0;
  double shed_rate = 0.0;      ///< degraded / requests
  double slo_miss_rate = 0.0;  ///< total_sec > slo_sec (0 when no SLO)
  /// SLO misses among recovered-locally requests only: the price of riding
  /// out an outage on the device instead of dropping the request.
  double recovered_slo_miss_rate = 0.0;
  double requests_per_sec = 0.0;

  std::vector<std::string> table_row(int latency_digits = 1) const;

  /// Mirrors the tally and latency statistics into a registry under
  /// "<prefix>." (outcome/failure counters via OutcomeCounts::publish,
  /// latency and rate gauges alongside).
  void publish(obs::MetricsRegistry& registry,
               const std::string& prefix) const;
};

/// Steady-state records across traces (tenant -1 = all); shared by
/// FleetResult and the cluster layer's ClusterResult.
std::vector<const core::InferenceRecord*> steady_records(
    const std::vector<ClientTrace>& clients, DurationNs warmup,
    int tenant = -1);

/// Summarizes client traces into a TenantSummary (tenant -1 = everything).
/// The workhorse behind FleetResult::summarize, exposed so multi-server
/// results can reuse the identical accounting.
TenantSummary summarize_traces(const std::vector<ClientTrace>& clients,
                               const std::vector<std::string>& tenant_names,
                               const std::vector<double>& tenant_slo_sec,
                               DurationNs warmup, DurationNs duration,
                               int tenant = -1);

struct FleetResult {
  std::vector<ClientTrace> clients;
  std::vector<std::string> tenant_names;
  std::vector<double> tenant_slo_sec;
  DurationNs warmup = 0;
  DurationNs duration = 0;

  /// Frontend load/conservation counters at the end of the run — one
  /// coherent snapshot instead of the ten scalars this used to copy.
  LoadSnapshot frontend;

  /// Steady-state records of one tenant, or of every tenant (-1).
  std::vector<const core::InferenceRecord*> steady(int tenant = -1) const;
  TenantSummary summarize(int tenant = -1) const;
  /// Completed requests per second of steady-state time.
  double requests_per_sec() const;
};

/// Runs the fleet; deterministic given config.seed.
FleetResult run_fleet(const FleetConfig& config,
                      const core::PredictorBundle& predictors);

}  // namespace lp::serve
