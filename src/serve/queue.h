// Bounded request queue of the serving frontend with pluggable ordering.
//
// Jobs are suffix-execution requests waiting for the GPU dispatcher. The
// queue is bounded (push fails when full — the caller sheds) and orders
// dispatch by one of four policies:
//   * kFifo       — arrival order (the paper's implicit single-queue
//                   service);
//   * kEdf        — earliest deadline first (core::kNoDeadline sorts last);
//   * kSpjf       — shortest predicted job first, using the k-adjusted
//                   PredictorBundle estimate carried by each request;
//   * kLeastSlack — least slack first (ATLAS-style): slack = deadline − now
//                   − predicted service. `now` is common to any two jobs
//                   compared at the same instant, so the order reduces to
//                   deadline − predicted with no clock needed; deadline-free
//                   jobs sort last.
// Ties always break by arrival sequence, keeping dispatch deterministic.
// Predictions are sanitized at the push boundary: a NaN would break the
// strict weak ordering of SPJF/least-slack and poison the backlog sum
// forever, so non-finite or negative predicted_sec is clamped to 0.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/offload_runtime.h"
#include "core/predictor.h"
#include "common/units.h"

namespace lp::sim {
class Event;
}  // namespace lp::sim

namespace lp::serve {

enum class QueuePolicy { kFifo, kEdf, kSpjf, kLeastSlack };

std::string queue_policy_name(QueuePolicy policy);

/// take_matching cutoff that classifies no job as expired: below every
/// representable deadline (and kNoDeadline jobs are exempt regardless).
inline constexpr TimeNs kNeverExpired = std::numeric_limits<TimeNs>::min();

/// A suffix job parked in the frontend queue.
struct QueuedJob {
  std::uint64_t seq = 0;      ///< arrival sequence (FIFO order, tie-break)
  std::uint64_t session = 0;  ///< owning session
  const core::GraphCostProfile* profile = nullptr;  ///< the model served
  std::size_t p = 0;                                ///< partition point
  TimeNs deadline = core::kNoDeadline;              ///< absolute deadline
  TimeNs enqueued = 0;
  double predicted_sec = 0.0;  ///< k-adjusted suffix prediction (SPJF key)
  double bandwidth_bps = 0.0;  ///< client-reported bandwidth estimate
  sim::Event* done = nullptr;
  double* exec_seconds = nullptr;
  double* overhead_seconds = nullptr;
  double* queue_wait_seconds = nullptr;
  core::SuffixStatus* status = nullptr;  ///< typed fate (served/server-down)
  /// Fencing epoch stamped at admission (the session's fence at that
  /// moment) and re-stamped on migration import. A job whose epoch is
  /// older than its session's current fence is a zombie — its completion
  /// is rejected instead of being served from a superseded placement.
  std::uint64_t epoch = 0;
  /// Keeps the client's reply block alive even if the client abandons the
  /// attempt (timeout): a crash or late completion then still writes into
  /// live memory.
  std::shared_ptr<void> keepalive;
  /// True for a job that arrived via session migration (push_migrated):
  /// it was admitted once on its origin server, so it bypasses the
  /// capacity bound here rather than re-contending for admission.
  bool migrated = false;
};

class RequestQueue {
 public:
  RequestQueue(QueuePolicy policy, std::size_t capacity);

  QueuePolicy policy() const { return policy_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  bool full() const { return jobs_.size() >= capacity_; }

  /// Enqueues the job; false (and the job is dropped) when full.
  bool push(QueuedJob job);

  /// Enqueues a job arriving via session migration, bypassing the capacity
  /// bound (it was already admitted on its origin server and must not be
  /// dropped). Marks the job migrated; the queue may transiently exceed
  /// capacity by the number of such jobs still queued.
  void push_migrated(QueuedJob job);

  /// Removes every queued job of `session` in arrival order (the migration
  /// export path). The backlog is recomputed from the survivors.
  std::vector<QueuedJob> take_session(std::uint64_t session);

  /// Queued jobs that entered through push_migrated (audits: the queue may
  /// exceed capacity by exactly this many).
  std::size_t migrated_in_queue() const;

  /// Removes and returns the next job under the queue policy. Requires
  /// !empty().
  QueuedJob pop_next();

  /// Removes up to `limit` jobs batch-compatible with (profile, p) —
  /// identical model and partition point — appending them to *out in
  /// queue-policy order (suffix batching): under EDF/least-slack the batch
  /// fills earliest-deadline/least-slack first, not arrival order, so a
  /// late-deadline co-partition job cannot ride ahead of an earlier one.
  /// Jobs whose deadline is at or before `expired_cutoff` are never batched
  /// (they belong to the will-miss shedder); the default cutoff matches
  /// nothing.
  void take_matching(const core::GraphCostProfile* profile, std::size_t p,
                     std::size_t limit, std::vector<QueuedJob>* out,
                     TimeNs expired_cutoff = kNeverExpired);

  /// Removes, in arrival order, every queued job whose deadline is at or
  /// before `now` — jobs that will provably miss even with instant,
  /// zero-length service. The dispatcher's will-miss shedder fails them
  /// with a typed SuffixStatus instead of burning a GPU slot.
  std::vector<QueuedJob> take_expired(TimeNs now);

  /// Removes and returns every queued job in arrival order (crash path:
  /// the caller fails them all). Leaves the queue empty.
  std::vector<QueuedJob> drain();

  /// Sum of the predicted execution times of everything queued — the
  /// admission controller's estimate of the backlog ahead of a new arrival.
  /// Exact: maintained as the left-to-right sum over the queued jobs (a
  /// removal recomputes rather than subtracting), so it always equals
  /// what summing jobs() directly yields — check::audit asserts this.
  double predicted_backlog_sec() const { return backlog_sec_; }

  /// Queued jobs in arrival order (audits and tests; do not mutate through
  /// the out-pointers).
  const std::vector<QueuedJob>& jobs() const { return jobs_; }

 private:
  bool before(const QueuedJob& a, const QueuedJob& b) const;
  double recompute_backlog() const;

  QueuePolicy policy_;
  std::size_t capacity_;
  std::vector<QueuedJob> jobs_;
  double backlog_sec_ = 0.0;
};

}  // namespace lp::serve
