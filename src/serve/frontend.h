// Multi-tenant edge serving frontend.
//
// One EdgeServerFrontend owns the GPU on behalf of many offloading clients
// (the serving-system view of the paper's edge server, which "grows busy as
// more devices offload to it"). It replaces the per-client OffloadServer
// duplication with:
//   * per-client sessions — each holds the client's influential factor k,
//     its last-reported bandwidth estimate, and its partition cache;
//   * a bounded request queue with pluggable ordering (FIFO / EDF / SPJF);
//   * admission control: when the predicted queue delay (backlog of
//     k-adjusted predictions plus the in-flight dispatch) exceeds a budget,
//     new requests are shed with a synchronous "server busy" reply, which
//     the client answers by degrading to local execution — and, for
//     LoADPart clients, by backing k off upward;
//   * suffix batching: compatible jobs — identical (model, partition point)
//     — are coalesced into one GPU dispatch, amortizing the per-op
//     framework dispatch cost across the batch.
//
// The influential factor of a session is measured against the *service*
// time (queue wait + preparation + execution): in the serving architecture
// the load signal a client feels is queueing at the frontend, not kernel
// interleaving, so k folds the queue in and the LoADPart feedback loop
// (k up -> partition retreats -> load drops) closes through the queue.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/load_signal.h"
#include "core/offload_runtime.h"
#include "fault/fault_plan.h"
#include "obs/telemetry.h"
#include "predict/load_predictor.h"
#include "serve/queue.h"

namespace lp::serve {

struct FrontendParams {
  QueuePolicy policy = QueuePolicy::kFifo;

  /// Bounded queue: arrivals beyond this are shed unconditionally.
  std::size_t queue_capacity = 64;

  /// Load shedding: reject when the predicted queue delay exceeds the
  /// budget (admission_control = false only sheds on a full queue).
  bool admission_control = false;
  double delay_budget_sec = 0.25;

  /// Suffix batching: coalesce up to max_batch compatible jobs per GPU
  /// dispatch; with batch_window > 0 the dispatcher waits that long after
  /// finding work so batch-mates can arrive. max_batch = 1 disables it.
  std::size_t max_batch = 1;
  DurationNs batch_window = 0;

  // Deadline-centric scheduling (ATLAS-style). Both default off so legacy
  // configurations stay bit-identical.

  /// Shed at submit when the request cannot make its own deadline: the
  /// predicted queue delay + predicted service + result download at the
  /// client's reported bandwidth already overruns request.deadline. Only
  /// requests that carry a deadline are tested; the static delay-budget
  /// check (admission_control) composes independently.
  bool deadline_admission = false;

  /// At dispatch, fail (SuffixStatus::kDeadlineShed) every queued job whose
  /// deadline has provably passed instead of burning a GPU slot on a
  /// guaranteed miss. The client degrades that request to local execution.
  bool shed_will_miss = false;
};

/// One coherent read of a frontend's load and conservation counters — the
/// payload of a cluster heartbeat and the single accessor the invariant
/// layer and the benches read instead of ad-hoc field-by-field getters.
struct LoadSnapshot {
  bool alive = true;
  std::size_t sessions = 0;
  std::size_t queue_depth = 0;
  std::size_t inflight_jobs = 0;
  double predicted_backlog_sec = 0.0;  ///< queued k-adjusted predictions
  double predicted_delay_sec = 0.0;    ///< backlog + in-flight dispatch
  double mean_k = 1.0;                 ///< mean published k across sessions
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t refused = 0;
  std::uint64_t served = 0;
  std::uint64_t failed_jobs = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t batched_dispatches = 0;
  std::uint64_t batched_jobs = 0;
  std::uint64_t crashes = 0;
  std::uint64_t migrated_in = 0;   ///< jobs imported via session migration
  std::uint64_t migrated_out = 0;  ///< jobs exported via session migration
  std::uint64_t fenced_jobs = 0;   ///< zombie jobs rejected by epoch fence
  /// Queued jobs failed by the will-miss shedder (subset of failed_jobs,
  /// disjoint from fenced_jobs).
  std::uint64_t deadline_shed = 0;
  /// Submissions shed because deadline admission predicted a miss (subset
  /// of shed).
  std::uint64_t deadline_shed_admission = 0;
  /// The frontend-level LoadSignal at the snapshot's horizon: placement and
  /// rebalancing read signal.backlog_sec / signal.k_forecast instead of the
  /// raw predicted_delay_sec / mean_k fields above.
  core::LoadSignal signal;
  double predict_mae = 0.0;         ///< mean |forecast error| of session k
  double predict_bias = 0.0;        ///< mean signed forecast error
  std::uint64_t predict_scored = 0; ///< forecast errors scored so far
};

/// The volatile per-session state a live migration carries to the new
/// server: the k window, the partition-cache contents, and the bandwidth
/// window. Export→import (same RuntimeParams) is bit-identical.
struct SessionState {
  core::LoadFactorTracker::State k;
  partition::PartitionCache::Contents cache;
  net::BandwidthEstimator::State bandwidth;
  predict::PredictorState predictor;
};

/// A non-blocking session export (the Ceph MDS exporter shape): the state
/// plus every queued job of the session, with a modeled wire size for the
/// cluster-interconnect transfer.
struct SessionExport {
  SessionState state;
  std::vector<QueuedJob> jobs;  ///< arrival order
  std::int64_t bytes = 0;       ///< modeled transfer payload
  /// Fencing epoch the router stamps on the transfer; the importer rejects
  /// the payload when its session fence has already moved past it (a late
  /// duplicate of an aborted or superseded migration).
  std::uint64_t epoch = 0;
};

class EdgeServerFrontend : public core::SuffixService {
 public:
  EdgeServerFrontend(sim::Simulator& sim, hw::GpuScheduler& scheduler,
                     const hw::GpuModel& gpu, FrontendParams params,
                     core::RuntimeParams runtime, std::uint64_t seed);

  /// Registers a client; the returned session id goes into the client's
  /// SuffixRequests (and the OffloadClient constructor). The profile must
  /// outlive the frontend.
  std::uint64_t open_session(const core::GraphCostProfile& profile);

  /// Admission decision, synchronously: refuse (kDown) while crashed; shed
  /// when the queue is full or the predicted queue delay exceeds the
  /// budget; otherwise enqueue.
  core::SubmitStatus submit(core::SuffixRequest request) override;

  /// Wires the fault plan: server_crash windows drive crash()/restart(),
  /// straggle windows inflate kernel times. The plan must outlive the
  /// frontend. (Link faults are the Link's business, not the frontend's.)
  void attach_fault_plan(const fault::FaultPlan* plan);

  /// Fail-stop crash: refuses new submissions, fails every queued and
  /// in-flight job with SuffixStatus::kServerDown (no request ever hangs),
  /// and wipes all volatile per-session state — partition caches, k
  /// windows, bandwidth windows. Sessions themselves survive (they are the
  /// registration, not the state); clients re-warm them through the
  /// ordinary profiler handshake after restart().
  void crash();

  /// Brings a crashed server back with cold caches and idle k.
  void restart();

  bool alive() const override { return !down_; }

  /// The session's load signal: published k now, the session predictor's
  /// k forecast at `horizon` (>= 1, constraint 1c), and the frontend's
  /// queue delay projected to the same horizon.
  core::LoadSignal load_signal(std::uint64_t session,
                               DurationNs horizon) const override;

  /// Frontend-level signal: mean k / k-forecast / confidence across
  /// sessions plus the projected queue delay — the heartbeat and placement
  /// read. With no sessions, the neutral signal (k = 1).
  core::LoadSignal load_signal(DurationNs horizon) const;

  /// Spawns the GPU-utilization watcher: when utilization over a period
  /// falls below the threshold, every session's k resets to its idle
  /// baseline (Section IV, per session).
  void start_gpu_watcher(DurationNs period);

  /// Predicted delay a new arrival would see: queued backlog plus the
  /// remaining in-flight dispatch.
  double predicted_queue_delay_sec() const;

  std::size_t sessions() const { return sessions_.size(); }
  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t shed() const { return shed_; }
  std::uint64_t served() const { return served_; }
  std::uint64_t dispatches() const { return dispatches_; }
  /// Dispatches that coalesced more than one job.
  std::uint64_t batched_dispatches() const { return batched_dispatches_; }
  /// Jobs served through coalesced dispatches.
  std::uint64_t batched_jobs() const { return batched_jobs_; }
  /// Fail-stop crashes taken so far.
  std::uint64_t crashes() const { return crashes_; }
  /// Queued or in-flight jobs failed with server-down by crashes.
  std::uint64_t failed_jobs() const { return failed_jobs_; }
  /// Submissions refused (kDown) while the server was crashed.
  std::uint64_t refused() const { return refused_; }
  /// Jobs that arrived through import_session (migrated in).
  std::uint64_t migrated_in() const { return migrated_in_; }
  /// Jobs handed over through export_session (migrated out).
  std::uint64_t migrated_out() const { return migrated_out_; }
  /// Zombie jobs killed by the epoch fence (subset of failed_jobs).
  std::uint64_t fenced_jobs() const { return fenced_jobs_; }
  /// Queued jobs failed by the will-miss shedder (subset of failed_jobs).
  std::uint64_t deadline_shed() const { return deadline_shed_; }
  /// Submissions shed by deadline admission (subset of shed()).
  std::uint64_t deadline_shed_admission() const {
    return deadline_shed_admission_;
  }
  /// Stale session imports rejected by the epoch fence.
  std::uint64_t rejected_imports() const { return rejected_imports_; }

  /// One coherent snapshot of load and conservation counters: the cluster
  /// heartbeat payload and the invariant layer's single read. `horizon`
  /// sets how far ahead the embedded LoadSignal forecasts (heartbeat
  /// consumers pass their refresh period; 0 keeps it reactive).
  LoadSnapshot load_snapshot(DurationNs horizon = 0) const;

  /// Per-session admission counters (router victim selection and tests).
  struct SessionStats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
  };
  SessionStats session_stats(std::uint64_t session) const;

  /// Live-migration export: snapshots the session's volatile state (k
  /// window, partition cache, bandwidth window), resets it locally, and
  /// removes every queued job of the session (counted migrated-out). The
  /// in-flight dispatch, if it contains the session, completes here — the
  /// export never blocks or drops work. The session registration itself
  /// survives (stragglers submitted before the client is redirected are
  /// still admitted here and served normally).
  SessionExport export_session(std::uint64_t session);

  /// Live-migration import into a previously opened local session: restores
  /// the state and re-enqueues the jobs past the capacity bound (they were
  /// admitted once already; counted migrated-in). Importing into a crashed
  /// server fails the jobs with kServerDown instead — migration never turns
  /// into a hang — and drops the state (a crash wipes it anyway).
  /// Returns false — touching NO counters or jobs — when the export's
  /// fencing epoch is older than the session's current fence: a zombie
  /// duplicate of a superseded transfer, which the caller still owns.
  bool import_session(std::uint64_t session, SessionExport ex);

  /// Raises the session's fencing epoch (idempotent, raising-only; a lower
  /// or equal epoch is a no-op). Every queued job of the session stamped
  /// with an older epoch fails typed kFenced — the client retries at the
  /// session's new home — and the in-flight dispatch's members are fenced
  /// at completion. Volatile session state resets: a zombie's windows
  /// describe a placement the session has left. Returns the number of
  /// queued jobs fenced.
  std::size_t fence_session(std::uint64_t session, std::uint64_t epoch);

  /// The session's current fencing epoch.
  std::uint64_t session_fence(std::uint64_t session) const;

  const partition::PartitionCache& session_cache(std::uint64_t session) const;
  const core::LoadFactorTracker& session_tracker(std::uint64_t session) const;
  const predict::LoadPredictor& session_predictor(std::uint64_t session) const;
  double session_bandwidth_bps(std::uint64_t session) const;

  /// The request queue itself — read-only, for the invariant layer
  /// (check::audit recomputes the backlog and conservation sums from it).
  const RequestQueue& queue() const { return queue_; }

  /// Jobs currently dispatched on the GPU (0 when the dispatcher is idle).
  std::size_t inflight_jobs() const {
    return inflight_ != nullptr ? inflight_->size() : 0;
  }

  /// Attaches telemetry (null detaches). The frontend then records, on its
  /// own "frontend" track: admission verdicts (instants), a queue-depth
  /// counter series, per-job "queue-wait" async intervals keyed by the job
  /// sequence number (closed at dispatch — or at crash() for casualties),
  /// "batch" spans tagged with occupancy, and crash/restart instants; plus
  /// serve.* registry counters mirroring the accessor set above and batch
  /// occupancy / queue-wait histograms. Purely observational. `track` names
  /// the trace track (a cluster gives each server its own, e.g. "server0";
  /// the default keeps single-server traces byte-identical to before).
  void set_telemetry(obs::Telemetry* telemetry,
                     const std::string& track = "frontend");

 private:
  struct Session {
    const core::GraphCostProfile* profile;
    core::LoadFactorTracker k;
    partition::PartitionCache cache;
    net::BandwidthEstimator bandwidth;
    /// Forecaster over the session's published k series: observed on every
    /// tracker mutation (so the last-value default forecasts exactly the
    /// reactive k), reset wherever the tracker is reconstructed.
    std::unique_ptr<predict::LoadPredictor> predictor;
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    /// Fencing epoch: raised by fence_session / accepted imports; jobs
    /// carry the fence at admission and die (kFenced) when it moves on.
    std::uint64_t fence = 0;
  };

  sim::Task service();
  sim::Task execute_batch(std::vector<QueuedJob> batch);
  sim::Task gpu_watcher(DurationNs period);
  sim::Task crash_driver();

  /// Will-miss shedding: fails every queued job whose deadline has already
  /// passed with SuffixStatus::kDeadlineShed (params_.shed_will_miss path,
  /// called by the dispatcher just before it forms a batch).
  void shed_expired_jobs();

  /// Folds a session-k forecast error into the frontend-wide predict.*
  /// aggregate (skips the unscored first sample).
  void note_forecast_error(double err);
  /// Adds the queue-delay forecast drift at `horizon` to sig->backlog_sec:
  /// live delay + (forecast - last observation), clamped >= 0. Anchoring on
  /// the live value keeps the last-value default drift-free (bit-identical
  /// to the reactive reading).
  void apply_delay_drift(DurationNs horizon, core::LoadSignal* sig) const;

  sim::Simulator* sim_;
  hw::GpuScheduler* scheduler_;
  const hw::GpuModel* gpu_;
  FrontendParams params_;
  core::RuntimeParams runtime_;
  hw::GpuScheduler::ContextId ctx_;
  std::deque<Session> sessions_;  // deque: stable across open_session
  RequestQueue queue_;
  sim::Event work_arrived_;
  Rng rng_;
  std::uint64_t next_seq_ = 0;
  double in_flight_sec_ = 0.0;
  std::uint64_t submitted_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t dispatches_ = 0;
  std::uint64_t batched_dispatches_ = 0;
  std::uint64_t batched_jobs_ = 0;
  DurationNs watcher_busy_mark_ = 0;
  TimeNs watcher_time_mark_ = 0;
  // Fault state. `epoch_` bumps on every crash; execute_batch re-checks it
  // after every suspension and abandons work from a dead epoch. `inflight_`
  // lets crash() fail the batch currently on the GPU.
  const fault::FaultPlan* faults_ = nullptr;
  bool down_ = false;
  std::uint64_t epoch_ = 0;
  std::vector<QueuedJob>* inflight_ = nullptr;
  std::uint64_t crashes_ = 0;
  std::uint64_t failed_jobs_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t migrated_in_ = 0;
  std::uint64_t migrated_out_ = 0;
  std::uint64_t fenced_jobs_ = 0;
  std::uint64_t rejected_imports_ = 0;
  std::uint64_t deadline_shed_ = 0;
  std::uint64_t deadline_shed_admission_ = 0;

  // Queue-delay forecaster (frontend-wide, not per session): observed only
  // where the delay actually mutates (admission, dispatch, batch drain) so
  // const readers never perturb it. Same pluggable kind as the session
  // predictors.
  std::unique_ptr<predict::LoadPredictor> delay_predictor_;
  // Frontend-wide forecast-quality aggregate over session-k observations.
  // Survives crashes (it scores the predictors, not the sessions).
  double predict_abs_err_ = 0.0;
  double predict_err_ = 0.0;
  std::uint64_t predict_scored_ = 0;

  // Telemetry (optional; null = fully off). Handles resolved once in
  // set_telemetry so the submit/dispatch paths stay O(1).
  obs::TraceRecorder* trace() const {
    return telemetry_ != nullptr ? telemetry_->trace() : nullptr;
  }
  void observe_queue_depth();
  obs::Telemetry* telemetry_ = nullptr;
  obs::TrackId track_ = 0;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* refused_counter_ = nullptr;
  obs::Counter* served_counter_ = nullptr;
  obs::Counter* failed_counter_ = nullptr;
  obs::Counter* crash_counter_ = nullptr;
  obs::Counter* migrated_in_counter_ = nullptr;
  obs::Counter* migrated_out_counter_ = nullptr;
  obs::Histogram* batch_occupancy_ = nullptr;
  obs::Histogram* queue_wait_ms_ = nullptr;
  obs::Gauge* predict_mae_gauge_ = nullptr;
  obs::Gauge* predict_bias_gauge_ = nullptr;
  obs::Counter* predict_scored_counter_ = nullptr;
};

}  // namespace lp::serve
