#include "serve/frontend.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "partition/partitioner.h"

namespace lp::serve {

namespace {
/// Multiplicative jitter factor, clamped away from zero (matches the
/// OffloadServer's executor jitter).
double jitter_scale(Rng& rng, double frac) {
  return std::max(0.2, 1.0 + frac * rng.normal());
}
}  // namespace

EdgeServerFrontend::EdgeServerFrontend(sim::Simulator& sim,
                                       hw::GpuScheduler& scheduler,
                                       const hw::GpuModel& gpu,
                                       FrontendParams params,
                                       core::RuntimeParams runtime,
                                       std::uint64_t seed)
    : sim_(&sim),
      scheduler_(&scheduler),
      gpu_(&gpu),
      params_(params),
      runtime_(runtime),
      ctx_(scheduler.create_context("serve-frontend")),
      queue_(params.policy, params.queue_capacity),
      work_arrived_(sim),
      rng_(seed) {
  LP_CHECK(params_.max_batch >= 1);
  delay_predictor_ = predict::make_predictor(runtime_.predictor);
  sim_->spawn(service());
}

std::uint64_t EdgeServerFrontend::open_session(
    const core::GraphCostProfile& profile) {
  sessions_.push_back(Session{&profile,
                              core::LoadFactorTracker(runtime_.k_window),
                              partition::PartitionCache(
                                  runtime_.cache_capacity),
                              net::BandwidthEstimator(
                                  runtime_.bandwidth_window),
                              predict::make_predictor(runtime_.predictor)});
  return sessions_.size() - 1;
}

core::LoadSignal EdgeServerFrontend::load_signal(std::uint64_t session,
                                                 DurationNs horizon) const {
  LP_CHECK(session < sessions_.size());
  const Session& s = sessions_[session];
  core::LoadSignal sig;
  sig.k_now = s.k.k();
  sig.k_forecast = sig.k_now;
  if (s.predictor->samples() > 0) {
    // Constraint 1c (k >= 1) applies to the forecast as much as to the
    // measurement.
    sig.k_forecast = std::max(1.0, s.predictor->forecast(horizon));
    sig.age_ns = sim_->now() - s.predictor->last_observed();
    sig.confidence = s.predictor->confidence();
  }
  apply_delay_drift(horizon, &sig);
  return sig;
}

core::LoadSignal EdgeServerFrontend::load_signal(DurationNs horizon) const {
  core::LoadSignal sig;
  if (!sessions_.empty()) {
    double k_now = 0.0;
    double k_forecast = 0.0;
    double confidence = 0.0;
    TimeNs newest = 0;
    bool observed = false;
    for (const Session& s : sessions_) {
      k_now += s.k.k();
      double forecast = s.k.k();
      if (s.predictor->samples() > 0) {
        forecast = std::max(1.0, s.predictor->forecast(horizon));
        confidence += s.predictor->confidence();
        newest = std::max(newest, s.predictor->last_observed());
        observed = true;
      }
      k_forecast += forecast;
    }
    const double n = static_cast<double>(sessions_.size());
    sig.k_now = k_now / n;
    sig.k_forecast = k_forecast / n;
    sig.confidence = confidence / n;
    if (observed) sig.age_ns = sim_->now() - newest;
  }
  apply_delay_drift(horizon, &sig);
  return sig;
}

void EdgeServerFrontend::apply_delay_drift(DurationNs horizon,
                                           core::LoadSignal* sig) const {
  sig->backlog_sec = predicted_queue_delay_sec();
  if (delay_predictor_->samples() == 0) return;
  // Anchored drift: the live delay plus the forecast's movement relative
  // to the last observation. The last-value default forecasts its last
  // observation, so its drift is exactly zero and the published backlog
  // stays the reactive reading.
  const double drift = delay_predictor_->forecast(horizon) -
                       delay_predictor_->last_value();
  sig->backlog_sec = std::max(0.0, sig->backlog_sec + drift);
}

void EdgeServerFrontend::note_forecast_error(double err) {
  if (!std::isfinite(err)) return;  // a predictor's first sample is unscored
  predict_abs_err_ += std::abs(err);
  predict_err_ += err;
  ++predict_scored_;
  if (telemetry_ != nullptr) {
    predict_scored_counter_->add();
    const double n = static_cast<double>(predict_scored_);
    predict_mae_gauge_->set(predict_abs_err_ / n);
    predict_bias_gauge_->set(predict_err_ / n);
  }
}

const partition::PartitionCache& EdgeServerFrontend::session_cache(
    std::uint64_t session) const {
  LP_CHECK(session < sessions_.size());
  return sessions_[session].cache;
}

const core::LoadFactorTracker& EdgeServerFrontend::session_tracker(
    std::uint64_t session) const {
  LP_CHECK(session < sessions_.size());
  return sessions_[session].k;
}

const predict::LoadPredictor& EdgeServerFrontend::session_predictor(
    std::uint64_t session) const {
  LP_CHECK(session < sessions_.size());
  return *sessions_[session].predictor;
}

double EdgeServerFrontend::session_bandwidth_bps(
    std::uint64_t session) const {
  LP_CHECK(session < sessions_.size());
  return sessions_[session].bandwidth.estimate();
}

double EdgeServerFrontend::predicted_queue_delay_sec() const {
  return queue_.predicted_backlog_sec() + in_flight_sec_;
}

LoadSnapshot EdgeServerFrontend::load_snapshot(DurationNs horizon) const {
  LoadSnapshot s;
  s.alive = !down_;
  s.sessions = sessions_.size();
  s.queue_depth = queue_.size();
  s.inflight_jobs = inflight_jobs();
  s.predicted_backlog_sec = queue_.predicted_backlog_sec();
  s.predicted_delay_sec = predicted_queue_delay_sec();
  s.signal = load_signal(horizon);
  // Same per-session sum as the signal's mean, so the two fields agree
  // bitwise (mean_k predates the LoadSignal API and is kept for readers
  // not yet ported).
  s.mean_k = s.signal.k_now;
  if (predict_scored_ > 0) {
    const double n = static_cast<double>(predict_scored_);
    s.predict_mae = predict_abs_err_ / n;
    s.predict_bias = predict_err_ / n;
  }
  s.predict_scored = predict_scored_;
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.shed = shed_;
  s.refused = refused_;
  s.served = served_;
  s.failed_jobs = failed_jobs_;
  s.dispatches = dispatches_;
  s.batched_dispatches = batched_dispatches_;
  s.batched_jobs = batched_jobs_;
  s.crashes = crashes_;
  s.migrated_in = migrated_in_;
  s.migrated_out = migrated_out_;
  s.fenced_jobs = fenced_jobs_;
  s.deadline_shed = deadline_shed_;
  s.deadline_shed_admission = deadline_shed_admission_;
  return s;
}

EdgeServerFrontend::SessionStats EdgeServerFrontend::session_stats(
    std::uint64_t session) const {
  LP_CHECK(session < sessions_.size());
  const Session& s = sessions_[session];
  return SessionStats{s.submitted, s.admitted, s.shed};
}

namespace {
// Modeled wire cost of a session export: a fixed header, the sliding
// windows, a serialized plan per cache entry, and a header per re-routed
// job (the boundary tensors themselves stay with the jobs' origin upload —
// only control state crosses the interconnect).
constexpr std::int64_t kExportHeaderBytes = 256;
constexpr std::int64_t kSampleBytes = 8;
constexpr std::int64_t kPlanBytes = 4096;
constexpr std::int64_t kJobHeaderBytes = 256;
}  // namespace

SessionExport EdgeServerFrontend::export_session(std::uint64_t session) {
  LP_CHECK(session < sessions_.size());
  Session& s = sessions_[session];
  SessionExport ex;
  ex.state.k = s.k.export_state();
  ex.state.cache = s.cache.export_contents();
  ex.state.bandwidth = s.bandwidth.export_state();
  ex.state.predictor = s.predictor->export_state();
  // The local copy resets to fresh: stragglers submitted before the client
  // learns its new endpoint are still served here, against cold state.
  s.k = core::LoadFactorTracker(runtime_.k_window);
  s.cache.clear();
  s.bandwidth = net::BandwidthEstimator(runtime_.bandwidth_window);
  s.predictor->reset();

  ex.jobs = queue_.take_session(session);
  migrated_out_ += ex.jobs.size();

  ex.bytes = kExportHeaderBytes +
             kSampleBytes * static_cast<std::int64_t>(
                                ex.state.k.ratios.values.size() +
                                ex.state.k.idle_ratios.values.size() +
                                ex.state.bandwidth.window.values.size()) +
             kPlanBytes *
                 static_cast<std::int64_t>(ex.state.cache.plans.size()) +
             kJobHeaderBytes * static_cast<std::int64_t>(ex.jobs.size()) +
             predict::state_wire_bytes(ex.state.predictor);

  if (telemetry_ != nullptr) {
    migrated_out_counter_->add(std::int64_t(ex.jobs.size()));
    if (auto* tr = trace()) {
      // The exported jobs' queue-wait intervals close here; the importer
      // opens fresh ones on its own track.
      for (const QueuedJob& job : ex.jobs)
        tr->async_end(track_, "queue-wait", job.seq, sim_->now());
      tr->instant(track_, "export-session", sim_->now(),
                  obs::TraceArgs()
                      .arg("session", session)
                      .arg("jobs", ex.jobs.size())
                      .arg("bytes", ex.bytes));
      observe_queue_depth();
    }
  }
  return ex;
}

bool EdgeServerFrontend::import_session(std::uint64_t session,
                                        SessionExport ex) {
  LP_CHECK(session < sessions_.size());
  if (ex.epoch < sessions_[session].fence) {
    // Zombie payload: a newer fence already superseded this transfer (the
    // migration was aborted or the session re-homed). The caller keeps
    // ownership of the jobs; nothing here is touched.
    ++rejected_imports_;
    if (auto* tr = trace())
      tr->instant(track_, "import-rejected", sim_->now(),
                  obs::TraceArgs()
                      .arg("session", session)
                      .arg("epoch", ex.epoch)
                      .arg("fence", sessions_[session].fence));
    return false;
  }
  if (!down_) {
    Session& s = sessions_[session];
    s.k.import_state(ex.state.k);
    s.cache.import_contents(std::move(ex.state.cache));
    s.bandwidth.import_state(ex.state.bandwidth);
    s.predictor->import_state(ex.state.predictor);
  }
  const std::size_t jobs = ex.jobs.size();
  for (QueuedJob& job : ex.jobs) {
    job.session = session;
    job.seq = next_seq_++;
    job.epoch = ex.epoch;
    ++migrated_in_;
    if (down_) {
      // Fail-stop target: the job must not hang in limbo. It counts as
      // migrated-in then failed, so conservation holds on both servers.
      ++failed_jobs_;
      if (job.status != nullptr)
        *job.status = core::SuffixStatus::kServerDown;
      if (!job.done->triggered()) job.done->trigger();
      continue;
    }
    // The original admission timestamp rides along: the measured queue
    // wait honestly spans the migration.
    queue_.push_migrated(job);
    if (telemetry_ != nullptr) {
      if (auto* tr = trace())
        tr->async_begin(track_, "queue-wait", job.seq, sim_->now(),
                        obs::TraceArgs()
                            .arg("session", job.session)
                            .arg("p", job.p)
                            .arg("migrated", true));
    }
  }
  if (telemetry_ != nullptr) {
    migrated_in_counter_->add(std::int64_t(jobs));
    if (auto* tr = trace()) {
      tr->instant(track_, "import-session", sim_->now(),
                  obs::TraceArgs().arg("session", session).arg("jobs", jobs));
      observe_queue_depth();
    }
  }
  if (!down_ && jobs > 0) work_arrived_.trigger();
  return true;
}

std::size_t EdgeServerFrontend::fence_session(std::uint64_t session,
                                              std::uint64_t epoch) {
  LP_CHECK(session < sessions_.size());
  Session& s = sessions_[session];
  if (epoch <= s.fence) return 0;  // raising-only, idempotent
  s.fence = epoch;

  // Queued jobs from the superseded placement die typed: the client
  // retries at the session's new home. Jobs already stamped with the new
  // epoch (an accepted import racing the fence) survive and re-enter the
  // queue past the capacity bound — they were admitted once already.
  std::size_t fenced = 0;
  for (QueuedJob& job : queue_.take_session(session)) {
    if (job.epoch >= epoch) {
      queue_.push_migrated(job);
      continue;
    }
    ++fenced;
    ++failed_jobs_;
    ++fenced_jobs_;
    if (job.status != nullptr) *job.status = core::SuffixStatus::kFenced;
    if (auto* tr = trace())
      tr->async_end(track_, "queue-wait", job.seq, sim_->now());
    if (!job.done->triggered()) job.done->trigger();
  }
  // The in-flight dispatch, if it holds the session, is fenced at
  // completion (execute_batch re-checks job.epoch against the fence).
  // Volatile state resets: a zombie's windows describe a placement the
  // session has left.
  s.k = core::LoadFactorTracker(runtime_.k_window);
  s.cache.clear();
  s.cache.reset_stats();
  s.bandwidth = net::BandwidthEstimator(runtime_.bandwidth_window);
  s.predictor->reset();
  if (telemetry_ != nullptr) {
    if (fenced > 0) failed_counter_->add(std::int64_t(fenced));
    if (auto* tr = trace()) {
      tr->instant(track_, "fence-session", sim_->now(),
                  obs::TraceArgs()
                      .arg("session", session)
                      .arg("epoch", epoch)
                      .arg("fenced_jobs", fenced));
      observe_queue_depth();
    }
  }
  return fenced;
}

std::uint64_t EdgeServerFrontend::session_fence(std::uint64_t session) const {
  LP_CHECK(session < sessions_.size());
  return sessions_[session].fence;
}

void EdgeServerFrontend::set_telemetry(obs::Telemetry* telemetry,
                                       const std::string& track) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  auto& metrics = telemetry_->metrics();
  admitted_counter_ = &metrics.counter("serve.admitted");
  shed_counter_ = &metrics.counter("serve.shed");
  refused_counter_ = &metrics.counter("serve.refused");
  served_counter_ = &metrics.counter("serve.served");
  failed_counter_ = &metrics.counter("serve.failed_jobs");
  crash_counter_ = &metrics.counter("serve.crashes");
  migrated_in_counter_ = &metrics.counter("serve.migrated_in");
  migrated_out_counter_ = &metrics.counter("serve.migrated_out");
  batch_occupancy_ = &metrics.histogram("serve.batch_occupancy", 0.0, 32.0,
                                        32);
  queue_wait_ms_ = &metrics.histogram("serve.queue_wait_ms", 0.0, 500.0, 100);
  predict_mae_gauge_ = &metrics.gauge("predict.mae");
  predict_bias_gauge_ = &metrics.gauge("predict.bias");
  predict_scored_counter_ = &metrics.counter("predict.scored");
  if (auto* tr = telemetry_->trace()) track_ = tr->track(track);
}

void EdgeServerFrontend::observe_queue_depth() {
  if (auto* tr = trace())
    tr->counter(track_, "queue_depth", sim_->now(),
                static_cast<double>(queue_.size()));
}

core::SubmitStatus EdgeServerFrontend::submit(core::SuffixRequest request) {
  LP_CHECK(request.done != nullptr);
  LP_CHECK(request.session < sessions_.size());
  Session& session = sessions_[request.session];
  LP_CHECK_MSG(request.p < session.profile->n(),
               "nothing to execute on the server at p = n");
  ++submitted_;
  ++session.submitted;
  if (down_) {
    // Connection refused: a crashed server cannot even shed politely.
    ++refused_;
    if (telemetry_ != nullptr) {
      refused_counter_->add();
      if (auto* tr = trace())
        tr->instant(track_, "refuse", sim_->now(),
                    obs::TraceArgs().arg("session", request.session));
    }
    return core::SubmitStatus::kDown;
  }
  if (request.bandwidth_bps > 0.0)
    session.bandwidth.add_sample(request.bandwidth_bps);

  // Load shedding: a full queue always sheds; with admission control on,
  // so does a predicted queue delay beyond the budget. The server-side
  // prediction uses the session's own load signal, not the client's,
  // forecast to when the job will actually run (the current queue delay).
  const core::LoadSignal sig = load_signal(
      request.session, seconds(predicted_queue_delay_sec()));
  const double predicted =
      sig.k_forecast * session.profile->suffix_g(request.p);
  const bool over_budget =
      params_.admission_control &&
      predicted_queue_delay_sec() > params_.delay_budget_sec;
  // Deadline admission: shed when the request provably cannot make its own
  // deadline — predicted queue delay, predicted service, and the result
  // download at the client's reported bandwidth already overrun it. The
  // comparison stays in double so an enormous slack never overflows TimeNs.
  bool over_deadline = false;
  if (params_.deadline_admission && request.deadline != core::kNoDeadline) {
    double eta_sec = predicted_queue_delay_sec() + predicted;
    if (request.bandwidth_bps > 0.0)
      eta_sec += static_cast<double>(
                     session.profile->graph().output_desc().bytes() * 8) /
                 request.bandwidth_bps;
    over_deadline = static_cast<double>(request.deadline - sim_->now()) <
                    eta_sec * 1e9;
  }
  if (queue_.full() || over_budget || over_deadline) {
    ++shed_;
    ++session.shed;
    if (over_deadline) ++deadline_shed_admission_;
    if (telemetry_ != nullptr) {
      shed_counter_->add();
      if (auto* tr = trace()) {
        obs::TraceArgs args;
        args.arg("session", request.session)
            .arg("queue_full", queue_.full());
        // Only stamped when deadline admission is on, so legacy traces
        // stay byte-identical.
        if (params_.deadline_admission) args.arg("will_miss", over_deadline);
        args.arg("predicted_delay_sec", predicted_queue_delay_sec());
        tr->instant(track_, "shed", sim_->now(), args);
      }
    }
    return core::SubmitStatus::kRejected;
  }

  QueuedJob job;
  job.seq = next_seq_++;
  job.session = request.session;
  job.profile = session.profile;
  job.p = request.p;
  job.deadline = request.deadline;
  job.enqueued = sim_->now();
  job.predicted_sec = predicted;
  job.bandwidth_bps = request.bandwidth_bps;
  job.done = request.done;
  job.exec_seconds = request.exec_seconds;
  job.overhead_seconds = request.overhead_seconds;
  job.queue_wait_seconds = request.queue_wait_seconds;
  job.status = request.status;
  job.keepalive = request.keepalive;
  job.epoch = session.fence;
  LP_CHECK(queue_.push(job));
  ++admitted_;
  ++session.admitted;
  if (telemetry_ != nullptr) {
    admitted_counter_->add();
    if (auto* tr = trace()) {
      tr->async_begin(track_, "queue-wait", job.seq, sim_->now(),
                      obs::TraceArgs()
                          .arg("session", job.session)
                          .arg("p", job.p));
      observe_queue_depth();
    }
  }
  // The queue delay just changed; the delay forecaster only ever learns at
  // mutation points, so const readers never perturb it.
  delay_predictor_->observe(sim_->now(), predicted_queue_delay_sec());
  work_arrived_.trigger();
  return core::SubmitStatus::kAccepted;
}

sim::Task EdgeServerFrontend::service() {
  for (;;) {
    while (queue_.empty()) {
      work_arrived_.reset();
      co_await work_arrived_.wait();
    }
    // Batching window: give compatible jobs a chance to arrive before the
    // dispatch is formed (a latency-for-throughput trade).
    if (params_.max_batch > 1 && params_.batch_window > 0)
      co_await sim_->delay(params_.batch_window);
    // A crash during the window drains the queue out from under us.
    if (queue_.empty()) continue;

    // Will-miss shedding happens at the last moment before the dispatch is
    // formed: any job whose deadline passed while it queued (including
    // during the batching window above) is a guaranteed miss, so it is
    // failed typed instead of occupying a GPU slot.
    if (params_.shed_will_miss) {
      shed_expired_jobs();
      if (queue_.empty()) continue;
    }

    std::vector<QueuedJob> batch;
    batch.push_back(queue_.pop_next());
    if (params_.max_batch > 1)
      queue_.take_matching(batch.front().profile, batch.front().p,
                           params_.max_batch - 1, &batch,
                           params_.shed_will_miss ? sim_->now()
                                                  : kNeverExpired);
    co_await execute_batch(std::move(batch));
  }
}

sim::Task EdgeServerFrontend::execute_batch(std::vector<QueuedJob> batch) {
  const core::GraphCostProfile& profile = *batch.front().profile;
  const graph::Graph& g = profile.graph();
  const std::size_t n = profile.n();
  const std::size_t p = batch.front().p;
  const TimeNs dispatch_time = sim_->now();
  // Crash visibility: crash() fails this batch through inflight_ and bumps
  // epoch_; after every suspension we re-check the epoch and abandon the
  // dispatch — the jobs were already answered with kServerDown, and the
  // (wiped, possibly re-warming) session state must not be touched.
  const std::uint64_t epoch = epoch_;
  inflight_ = &batch;

  for (const QueuedJob& job : batch)
    if (job.queue_wait_seconds != nullptr)
      *job.queue_wait_seconds = to_seconds(dispatch_time - job.enqueued);

  if (telemetry_ != nullptr) {
    for (const QueuedJob& job : batch)
      queue_wait_ms_->record(to_millis(dispatch_time - job.enqueued));
    batch_occupancy_->record(static_cast<double>(batch.size()));
    if (auto* tr = trace()) {
      for (const QueuedJob& job : batch)
        tr->async_end(track_, "queue-wait", job.seq, dispatch_time);
      observe_queue_depth();
    }
  }

  in_flight_sec_ = 0.0;
  for (const QueuedJob& job : batch)
    in_flight_sec_ = std::max(in_flight_sec_, job.predicted_sec);
  delay_predictor_->observe(dispatch_time, predicted_queue_delay_sec());

  // Partition caches are per session; one runtime preparation covers the
  // whole batch (it shares (model, p)), and every member session that
  // missed stores the plan.
  double overhead = 0.0;
  bool miss = false;
  for (const QueuedJob& job : batch)
    if (sessions_[job.session].cache.find(p) == nullptr) miss = true;
  if (miss) {
    auto plan = partition::partition_at(g, p);
    const std::size_t nodes =
        plan.server_part ? plan.server_part->backbone().size() : 0;
    overhead = runtime_.server_partition_base_sec +
               runtime_.server_partition_per_node_sec *
                   static_cast<double>(nodes);
    const TimeNs prep_begin = sim_->now();
    co_await sim_->delay(seconds(overhead));
    if (epoch_ != epoch) co_return;
    if (auto* tr = trace())
      tr->span(track_, "partition-prepare", prep_begin, sim_->now(),
               obs::TraceArgs().arg("p", p).arg("nodes", nodes));
    for (const QueuedJob& job : batch) {
      Session& session = sessions_[job.session];
      if (session.cache.find(p) == nullptr)
        session.cache.insert(partition::partition_at(g, p));
    }
  }
  for (const QueuedJob& job : batch)
    if (job.overhead_seconds != nullptr) *job.overhead_seconds = overhead;

  // One GPU dispatch for the whole batch. An active straggle window
  // stretches every kernel (thermal throttling / a noisy neighbour on the
  // box, not GPU queue contention — so it is invisible to pending_kernels
  // and to the idle watcher, exactly the slow-server case timeouts exist
  // for).
  auto kernels =
      batch.size() > 1
          ? gpu_->batched_segment_kernels(g, p + 1, n, batch.size())
          : (runtime_.fused_server_kernels
                 ? gpu_->fused_segment_kernels(g, p + 1, n)
                 : gpu_->segment_kernels(g, p + 1, n));
  const double jf = gpu_->params().jitter_frac;
  const double straggle =
      faults_ != nullptr ? faults_->straggle_factor(sim_->now()) : 1.0;
  for (auto& k : kernels)
    k = std::max<DurationNs>(
        1, static_cast<DurationNs>(static_cast<double>(k) * straggle *
                                   jitter_scale(rng_, jf)));
  const bool gpu_contended = scheduler_->pending_kernels() > 4;
  const TimeNs begin = sim_->now();
  co_await scheduler_->run_batch(ctx_, std::move(kernels), batch.size());
  if (epoch_ != epoch) co_return;
  const double exec = to_seconds(sim_->now() - begin);
  const TimeNs finished = sim_->now();

  ++dispatches_;
  const double predicted = profile.suffix_g(p);
  std::size_t served_now = 0;
  for (const QueuedJob& job : batch) {
    if (job.exec_seconds != nullptr) *job.exec_seconds = exec;
    // Epoch fence: the session was fenced (rerouted or its migration
    // aborted) while this dispatch sat on the GPU — the completion comes
    // from a superseded placement and must not count as served or feed the
    // (reset) k window.
    if (job.epoch < sessions_[job.session].fence) {
      ++failed_jobs_;
      ++fenced_jobs_;
      if (job.status != nullptr) *job.status = core::SuffixStatus::kFenced;
      if (!job.done->triggered()) job.done->trigger();
      continue;
    }
    ++served_now;
    // The session's k tracks the full service time (queue wait included):
    // at the frontend, load manifests as queueing, and k is the signal
    // that carries it back into the client's partition decision.
    const double service = to_seconds(finished - job.enqueued);
    // Waiting longer than the batching window means the queue was the
    // bottleneck, not the coalescing delay.
    const bool contended =
        gpu_contended ||
        dispatch_time - job.enqueued > params_.batch_window;
    if (predicted > 0.0) {
      Session& owner = sessions_[job.session];
      owner.k.record(service, predicted, contended);
      // Every k mutation feeds the session predictor, so the last-value
      // forecast is exactly the published reactive k. The returned error
      // scores the forecast this job's admission would have read.
      note_forecast_error(owner.predictor->observe(finished, owner.k.k()));
    }
    // The client's deadline watcher may have resolved this attempt
    // already; its trigger wins and the late result is dropped.
    if (!job.done->triggered()) {
      if (job.status != nullptr) *job.status = core::SuffixStatus::kServed;
      job.done->trigger();
    }
  }
  served_ += served_now;
  if (batch.size() > 1) {
    ++batched_dispatches_;
    batched_jobs_ += served_now;
  }
  if (telemetry_ != nullptr) {
    served_counter_->add(std::int64_t(served_now));
    if (served_now < batch.size())
      failed_counter_->add(std::int64_t(batch.size() - served_now));
    if (auto* tr = trace())
      tr->span(track_, "suffix-exec", begin, finished,
               obs::TraceArgs()
                   .arg("batch", batch.size())
                   .arg("p", p)
                   .arg("exec_ms", exec * 1e3));
  }
  in_flight_sec_ = 0.0;
  inflight_ = nullptr;
  delay_predictor_->observe(finished, predicted_queue_delay_sec());
}

void EdgeServerFrontend::shed_expired_jobs() {
  const TimeNs now = sim_->now();
  const std::vector<QueuedJob> expired = queue_.take_expired(now);
  if (expired.empty()) return;
  for (const QueuedJob& job : expired) {
    ++failed_jobs_;
    ++deadline_shed_;
    if (job.status != nullptr)
      *job.status = core::SuffixStatus::kDeadlineShed;
    if (!job.done->triggered()) job.done->trigger();
  }
  // The backlog shrank without a dispatch; teach the delay forecaster.
  delay_predictor_->observe(now, predicted_queue_delay_sec());
  if (telemetry_ != nullptr) {
    failed_counter_->add(std::int64_t(expired.size()));
    if (auto* tr = trace()) {
      for (const QueuedJob& job : expired)
        tr->async_end(track_, "queue-wait", job.seq, now);
      tr->instant(track_, "deadline-shed", now,
                  obs::TraceArgs().arg("jobs", expired.size()));
      observe_queue_depth();
    }
  }
}

void EdgeServerFrontend::attach_fault_plan(const fault::FaultPlan* plan) {
  faults_ = plan;
  if (plan != nullptr && !plan->server_crashes().empty())
    sim_->spawn(crash_driver());
}

sim::Task EdgeServerFrontend::crash_driver() {
  // server_crashes() is ordered and non-overlapping (FaultPlan enforces
  // it), so a plain walk with absolute-time delays is exact.
  for (const fault::FaultWindow& w : faults_->server_crashes()) {
    if (w.begin > sim_->now()) co_await sim_->delay(w.begin - sim_->now());
    crash();
    if (w.end > sim_->now()) co_await sim_->delay(w.end - sim_->now());
    restart();
  }
}

void EdgeServerFrontend::crash() {
  if (down_) return;
  down_ = true;
  ++crashes_;
  ++epoch_;  // orphans any execute_batch parked on a suspension point

  // Fail-stop: every queued and in-flight job terminates with server-down
  // right now — a crash never turns into a client-side hang. Queued
  // casualties still have an open "queue-wait" async interval; close it
  // here so the trace never leaks unmatched begins (in-flight jobs closed
  // theirs at dispatch).
  const std::size_t queued_casualties = queue_.size();
  std::vector<QueuedJob> casualties = queue_.drain();
  if (inflight_ != nullptr) {
    for (const QueuedJob& job : *inflight_) casualties.push_back(job);
    inflight_ = nullptr;
  }
  for (const QueuedJob& job : casualties) {
    ++failed_jobs_;
    if (job.status != nullptr) *job.status = core::SuffixStatus::kServerDown;
    if (!job.done->triggered()) job.done->trigger();
  }
  if (telemetry_ != nullptr) {
    crash_counter_->add();
    failed_counter_->add(std::int64_t(casualties.size()));
    if (auto* tr = trace()) {
      for (std::size_t i = 0; i < queued_casualties; ++i)
        tr->async_end(track_, "queue-wait", casualties[i].seq, sim_->now());
      tr->instant(track_, "crash", sim_->now(),
                  obs::TraceArgs().arg("failed_jobs", casualties.size()));
      observe_queue_depth();
    }
  }

  // Volatile state dies with the process: partition caches (entries AND
  // hit/miss statistics — a re-warmed cache must not blend pre-crash
  // traffic into its hit_rate), k windows, bandwidth windows, and the
  // in-flight estimate. Sessions survive (they are the registration, not
  // the state) and re-warm through the ordinary profiler handshake after
  // restart().
  for (Session& session : sessions_) {
    session.k = core::LoadFactorTracker(runtime_.k_window);
    session.cache.clear();
    session.cache.reset_stats();
    session.bandwidth = net::BandwidthEstimator(runtime_.bandwidth_window);
    session.predictor->reset();
  }
  delay_predictor_->reset();
  in_flight_sec_ = 0.0;
}

void EdgeServerFrontend::restart() {
  if (!down_) return;
  down_ = false;
  if (auto* tr = trace()) tr->instant(track_, "restart", sim_->now());
  // Nudge the dispatcher in case anything races in right at restart.
  work_arrived_.trigger();
}

void EdgeServerFrontend::start_gpu_watcher(DurationNs period) {
  watcher_busy_mark_ = scheduler_->busy_ns();
  watcher_time_mark_ = sim_->now();
  sim_->spawn(gpu_watcher(period));
}

sim::Task EdgeServerFrontend::gpu_watcher(DurationNs period) {
  LP_CHECK(period > 0);
  for (;;) {
    co_await sim_->delay(period);
    const DurationNs busy = scheduler_->busy_ns();
    const double util = static_cast<double>(busy - watcher_busy_mark_) /
                        static_cast<double>(sim_->now() - watcher_time_mark_);
    watcher_busy_mark_ = busy;
    watcher_time_mark_ = sim_->now();
    if (util < runtime_.gpu_util_threshold)
      for (Session& session : sessions_) {
        session.k.reset_idle();
        // The idle reset is a k mutation like any other: the predictor
        // must see the published series step down, or a later forecast
        // would extrapolate from pre-reset values.
        session.predictor->observe(sim_->now(), session.k.k());
      }
  }
}

}  // namespace lp::serve
