#include "serve/queue.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace lp::serve {

std::string queue_policy_name(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo:
      return "FIFO";
    case QueuePolicy::kEdf:
      return "EDF";
    case QueuePolicy::kSpjf:
      return "SPJF";
    case QueuePolicy::kLeastSlack:
      return "least-slack";
  }
  return "?";
}

namespace {

// A non-finite prediction breaks the strict weak ordering of before()
// (NaN compares false both ways, so "before" stops being asymmetric) and
// permanently poisons the backlog sum the admission controller reads; a
// negative one credits the backlog. Neither value ever enters the queue.
void sanitize_prediction(QueuedJob* job) {
  if (!std::isfinite(job->predicted_sec) || job->predicted_sec < 0.0)
    job->predicted_sec = 0.0;
}

bool expired_before(const QueuedJob& job, TimeNs cutoff) {
  return job.deadline != core::kNoDeadline && job.deadline <= cutoff;
}

}  // namespace

RequestQueue::RequestQueue(QueuePolicy policy, std::size_t capacity)
    : policy_(policy), capacity_(capacity) {
  LP_CHECK(capacity > 0);
}

bool RequestQueue::push(QueuedJob job) {
  if (full()) return false;
  sanitize_prediction(&job);
  backlog_sec_ += job.predicted_sec;
  jobs_.push_back(job);
  return true;
}

void RequestQueue::push_migrated(QueuedJob job) {
  job.migrated = true;
  sanitize_prediction(&job);
  backlog_sec_ += job.predicted_sec;
  jobs_.push_back(job);
}

std::vector<QueuedJob> RequestQueue::take_session(std::uint64_t session) {
  std::vector<QueuedJob> out;
  for (std::size_t i = 0; i < jobs_.size();) {
    if (jobs_[i].session == session) {
      out.push_back(jobs_[i]);
      jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (!out.empty()) backlog_sec_ = recompute_backlog();
  return out;
}

std::size_t RequestQueue::migrated_in_queue() const {
  std::size_t count = 0;
  for (const QueuedJob& job : jobs_)
    if (job.migrated) ++count;
  return count;
}

bool RequestQueue::before(const QueuedJob& a, const QueuedJob& b) const {
  switch (policy_) {
    case QueuePolicy::kFifo:
      break;  // seq tie-break below is the whole order
    case QueuePolicy::kEdf:
      // kNoDeadline is TimeNs max, so deadline-free jobs sort last with no
      // special case.
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      break;
    case QueuePolicy::kSpjf:
      if (a.predicted_sec != b.predicted_sec)
        return a.predicted_sec < b.predicted_sec;
      break;
    case QueuePolicy::kLeastSlack: {
      // Slack = deadline − now − predicted. `now` cancels between any two
      // jobs compared at the same instant, so deadline − predicted orders
      // identically without a clock. Deadline-free jobs (infinite slack)
      // sort last. predicted_sec is finite and non-negative (sanitized at
      // push), so the keys are totally ordered.
      const bool has_a = a.deadline != core::kNoDeadline;
      const bool has_b = b.deadline != core::kNoDeadline;
      if (has_a != has_b) return has_a;
      if (has_a) {
        const double key_a =
            static_cast<double>(a.deadline) - a.predicted_sec * 1e9;
        const double key_b =
            static_cast<double>(b.deadline) - b.predicted_sec * 1e9;
        if (key_a != key_b) return key_a < key_b;
      }
      break;
    }
  }
  return a.seq < b.seq;
}

// Exact backlog accounting: push extends the left-to-right sum (the same
// operation a full recompute would end with), and removals recompute it
// from the survivors instead of subtracting — floating-point subtraction
// drifts when jobs leave in a different order than they arrived (EDF/SPJF),
// and the old max(0, ...) clamp silently hid the sign errors.
double RequestQueue::recompute_backlog() const {
  double total = 0.0;
  for (const QueuedJob& job : jobs_) total += job.predicted_sec;
  return total;
}

QueuedJob RequestQueue::pop_next() {
  LP_CHECK(!jobs_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < jobs_.size(); ++i)
    if (before(jobs_[i], jobs_[best])) best = i;
  QueuedJob job = jobs_[best];
  jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(best));
  backlog_sec_ = recompute_backlog();
  return job;
}

void RequestQueue::take_matching(const core::GraphCostProfile* profile,
                                 std::size_t p, std::size_t limit,
                                 std::vector<QueuedJob>* out,
                                 TimeNs expired_cutoff) {
  LP_CHECK(out != nullptr);
  // Repeatedly extract the policy-best matching job, so the batch fills in
  // dispatch order (under FIFO this degenerates to arrival order, the old
  // behavior). Already-expired jobs are skipped: batching one would smuggle
  // a guaranteed miss past the will-miss shedder.
  std::size_t taken = 0;
  while (taken < limit) {
    std::size_t best = jobs_.size();
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (jobs_[i].profile != profile || jobs_[i].p != p) continue;
      if (expired_before(jobs_[i], expired_cutoff)) continue;
      if (best == jobs_.size() || before(jobs_[i], jobs_[best])) best = i;
    }
    if (best == jobs_.size()) break;
    out->push_back(jobs_[best]);
    jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(best));
    ++taken;
  }
  if (taken > 0) backlog_sec_ = recompute_backlog();
}

std::vector<QueuedJob> RequestQueue::take_expired(TimeNs now) {
  std::vector<QueuedJob> out;
  for (std::size_t i = 0; i < jobs_.size();) {
    if (expired_before(jobs_[i], now)) {
      out.push_back(jobs_[i]);
      jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (!out.empty()) backlog_sec_ = recompute_backlog();
  return out;
}

std::vector<QueuedJob> RequestQueue::drain() {
  std::vector<QueuedJob> out = std::move(jobs_);
  jobs_.clear();
  backlog_sec_ = 0.0;
  return out;
}

}  // namespace lp::serve
