#include "serve/queue.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace lp::serve {

std::string queue_policy_name(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo:
      return "FIFO";
    case QueuePolicy::kEdf:
      return "EDF";
    case QueuePolicy::kSpjf:
      return "SPJF";
  }
  return "?";
}

RequestQueue::RequestQueue(QueuePolicy policy, std::size_t capacity)
    : policy_(policy), capacity_(capacity) {
  LP_CHECK(capacity > 0);
}

bool RequestQueue::push(QueuedJob job) {
  if (full()) return false;
  backlog_sec_ += job.predicted_sec;
  jobs_.push_back(job);
  return true;
}

void RequestQueue::push_migrated(QueuedJob job) {
  job.migrated = true;
  backlog_sec_ += job.predicted_sec;
  jobs_.push_back(job);
}

std::vector<QueuedJob> RequestQueue::take_session(std::uint64_t session) {
  std::vector<QueuedJob> out;
  for (std::size_t i = 0; i < jobs_.size();) {
    if (jobs_[i].session == session) {
      out.push_back(jobs_[i]);
      jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (!out.empty()) backlog_sec_ = recompute_backlog();
  return out;
}

std::size_t RequestQueue::migrated_in_queue() const {
  std::size_t count = 0;
  for (const QueuedJob& job : jobs_)
    if (job.migrated) ++count;
  return count;
}

bool RequestQueue::before(const QueuedJob& a, const QueuedJob& b) const {
  switch (policy_) {
    case QueuePolicy::kFifo:
      break;  // seq tie-break below is the whole order
    case QueuePolicy::kEdf: {
      constexpr TimeNs kNone = std::numeric_limits<TimeNs>::max();
      const TimeNs da = a.deadline == 0 ? kNone : a.deadline;
      const TimeNs db = b.deadline == 0 ? kNone : b.deadline;
      if (da != db) return da < db;
      break;
    }
    case QueuePolicy::kSpjf:
      if (a.predicted_sec != b.predicted_sec)
        return a.predicted_sec < b.predicted_sec;
      break;
  }
  return a.seq < b.seq;
}

// Exact backlog accounting: push extends the left-to-right sum (the same
// operation a full recompute would end with), and removals recompute it
// from the survivors instead of subtracting — floating-point subtraction
// drifts when jobs leave in a different order than they arrived (EDF/SPJF),
// and the old max(0, ...) clamp silently hid the sign errors.
double RequestQueue::recompute_backlog() const {
  double total = 0.0;
  for (const QueuedJob& job : jobs_) total += job.predicted_sec;
  return total;
}

QueuedJob RequestQueue::pop_next() {
  LP_CHECK(!jobs_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < jobs_.size(); ++i)
    if (before(jobs_[i], jobs_[best])) best = i;
  QueuedJob job = jobs_[best];
  jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(best));
  backlog_sec_ = recompute_backlog();
  return job;
}

void RequestQueue::take_matching(const core::GraphCostProfile* profile,
                                 std::size_t p, std::size_t limit,
                                 std::vector<QueuedJob>* out) {
  LP_CHECK(out != nullptr);
  std::size_t taken = 0;
  for (std::size_t i = 0; i < jobs_.size() && taken < limit;) {
    if (jobs_[i].profile == profile && jobs_[i].p == p) {
      out->push_back(jobs_[i]);
      jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
      ++taken;
    } else {
      ++i;
    }
  }
  if (taken > 0) backlog_sec_ = recompute_backlog();
}

std::vector<QueuedJob> RequestQueue::drain() {
  std::vector<QueuedJob> out = std::move(jobs_);
  jobs_.clear();
  backlog_sec_ = 0.0;
  return out;
}

}  // namespace lp::serve
