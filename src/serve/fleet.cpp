#include "serve/fleet.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/stats.h"
#include "common/table.h"

namespace lp::serve {

namespace {

struct ArrivalParams {
  DurationNs gap = 0;
  bool poisson = false;
  // Markov-modulated burst state (burst_gap == 0 disables it and draws no
  // extra randomness — legacy traces stay bit-identical).
  DurationNs burst_gap = 0;
  double burst_enter_prob = 0.0;
  double burst_exit_prob = 0.0;
};

sim::Task client_stream(sim::Simulator& sim, core::OffloadClient& client,
                        ArrivalParams arrivals, Rng rng,
                        std::vector<core::InferenceRecord>& out) {
  bool bursting = false;
  for (;;) {
    core::InferenceRecord rec;
    co_await client.infer(&rec);
    out.push_back(rec);
    DurationNs gap = arrivals.gap;
    if (arrivals.burst_gap > 0) {
      bursting = bursting ? !rng.bernoulli(arrivals.burst_exit_prob)
                          : rng.bernoulli(arrivals.burst_enter_prob);
      if (bursting) gap = arrivals.burst_gap;
    }
    if (arrivals.poisson && gap > 0)
      gap = std::max<DurationNs>(
          1, static_cast<DurationNs>(
                 rng.exponential(static_cast<double>(gap))));
    if (gap > 0) co_await sim.delay(gap);
  }
}

sim::Task audit_driver(
    sim::Simulator& sim, const EdgeServerFrontend& fe,
    const std::function<void(const EdgeServerFrontend&, TimeNs)>& on_audit,
    DurationNs period) {
  for (;;) {
    co_await sim.delay(period);
    on_audit(fe, sim.now());
  }
}

}  // namespace

std::vector<const core::InferenceRecord*> steady_records(
    const std::vector<ClientTrace>& clients, DurationNs warmup, int tenant) {
  std::vector<const core::InferenceRecord*> out;
  for (const ClientTrace& trace : clients) {
    if (tenant >= 0 && trace.tenant != static_cast<std::size_t>(tenant))
      continue;
    for (const core::InferenceRecord& rec : trace.records)
      if (rec.start >= warmup) out.push_back(&rec);
  }
  return out;
}

std::vector<const core::InferenceRecord*> FleetResult::steady(
    int tenant) const {
  return steady_records(clients, warmup, tenant);
}

double FleetResult::requests_per_sec() const {
  const auto rs = steady();
  const double window = to_seconds(duration - warmup);
  if (window <= 0.0) return 0.0;
  return static_cast<double>(rs.size()) / window;
}

TenantSummary summarize_traces(const std::vector<ClientTrace>& clients,
                               const std::vector<std::string>& tenant_names,
                               const std::vector<double>& tenant_slo_sec,
                               DurationNs warmup, DurationNs duration,
                               int tenant) {
  TenantSummary s;
  s.name = tenant < 0 ? "fleet"
                      : tenant_names[static_cast<std::size_t>(tenant)];

  std::vector<double> all_ms, admitted_ms;
  std::map<std::size_t, int> p_counts;
  double k_total = 0.0, wait_total = 0.0;
  std::size_t slo_misses = 0, recovered_slo_misses = 0;
  for (const ClientTrace& trace : clients) {
    if (tenant >= 0 && trace.tenant != static_cast<std::size_t>(tenant))
      continue;
    const double slo = tenant_slo_sec[trace.tenant];
    for (const core::InferenceRecord& rec : trace.records) {
      if (rec.start < warmup) continue;
      // The shared taxonomy tally replaces the per-outcome switch the
      // summary used to hand-roll.
      s.outcomes.add(rec.outcome, rec.last_failure, rec.retries, rec.faults,
                     rec.breaker_forced_local);
      ++p_counts[rec.p];
      k_total += rec.k_used;
      if (rec.outcome == core::InferenceOutcome::kFailed) {
        // A dropped request has no completion latency; it still counts
        // against requests and (unconditionally) against the SLO.
        if (slo > 0.0) ++slo_misses;
        continue;
      }
      all_ms.push_back(rec.total_sec * 1e3);
      if (rec.outcome == core::InferenceOutcome::kAdmitted) {
        admitted_ms.push_back(rec.total_sec * 1e3);
        wait_total += rec.queue_wait_sec;
      }
      if (slo > 0.0 && rec.total_sec > slo) {
        ++slo_misses;
        if (rec.outcome == core::InferenceOutcome::kRecoveredLocal)
          ++recovered_slo_misses;
      }
    }
  }
  if (s.requests() == 0) return s;
  if (!all_ms.empty()) {
    s.mean_ms = mean_of(all_ms);
    s.p90_ms = percentile(all_ms, 90);
  }
  if (!admitted_ms.empty()) {
    s.admitted_mean_ms = mean_of(admitted_ms);
    s.admitted_p90_ms = percentile(admitted_ms, 90);
    s.mean_queue_wait_ms =
        wait_total / static_cast<double>(s.admitted()) * 1e3;
  }
  if (s.recovered() > 0)
    s.recovered_slo_miss_rate = static_cast<double>(recovered_slo_misses) /
                                static_cast<double>(s.recovered());
  s.mean_k = k_total / static_cast<double>(s.requests());
  int best = -1;
  for (const auto& [p, count] : p_counts)
    if (count > best) {
      best = count;
      s.modal_p = p;
    }
  s.shed_rate =
      static_cast<double>(s.degraded()) / static_cast<double>(s.requests());
  s.slo_miss_rate =
      static_cast<double>(slo_misses) / static_cast<double>(s.requests());
  const double window = to_seconds(duration - warmup);
  if (window > 0.0)
    s.requests_per_sec = static_cast<double>(s.requests()) / window;
  return s;
}

TenantSummary FleetResult::summarize(int tenant) const {
  return summarize_traces(clients, tenant_names, tenant_slo_sec, warmup,
                          duration, tenant);
}

std::vector<std::string> TenantSummary::table_row(int latency_digits) const {
  return {name,
          std::to_string(requests()),
          Table::num(mean_ms, latency_digits),
          Table::num(p90_ms, latency_digits),
          Table::num(admitted_p90_ms, latency_digits),
          Table::num(shed_rate * 100.0, 1) + "%",
          Table::num(mean_queue_wait_ms, latency_digits),
          std::to_string(modal_p),
          Table::num(mean_k, 1)};
}

void TenantSummary::publish(obs::MetricsRegistry& registry,
                            const std::string& prefix) const {
  outcomes.publish(registry, prefix);
  registry.gauge(prefix + ".mean_ms").set(mean_ms);
  registry.gauge(prefix + ".p90_ms").set(p90_ms);
  registry.gauge(prefix + ".admitted_p90_ms").set(admitted_p90_ms);
  registry.gauge(prefix + ".mean_queue_wait_ms").set(mean_queue_wait_ms);
  registry.gauge(prefix + ".mean_k").set(mean_k);
  registry.gauge(prefix + ".modal_p").set(static_cast<double>(modal_p));
  registry.gauge(prefix + ".shed_rate").set(shed_rate);
  registry.gauge(prefix + ".slo_miss_rate").set(slo_miss_rate);
  registry.gauge(prefix + ".requests_per_sec").set(requests_per_sec);
}

FleetResult run_fleet(const FleetConfig& config,
                      const core::PredictorBundle& predictors) {
  LP_CHECK(!config.tenants.empty());
  LP_CHECK(config.duration > 0);

  sim::Simulator sim;
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  hw::GpuScheduler scheduler(sim);
  EdgeServerFrontend frontend(sim, scheduler, gpu, config.frontend,
                              config.runtime, config.seed ^ 0xf00d);
  if (config.telemetry != nullptr) frontend.set_telemetry(config.telemetry);
  frontend.start_gpu_watcher(config.watcher_period);
  const bool faulty = !config.faults.empty();
  if (faulty) frontend.attach_fault_plan(&config.faults);

  struct TenantState {
    graph::Graph model;
    std::unique_ptr<core::GraphCostProfile> profile;
  };
  std::vector<std::unique_ptr<TenantState>> tenants;
  std::vector<std::unique_ptr<net::Link>> links;
  std::vector<std::unique_ptr<core::OffloadClient>> clients;

  FleetResult result;
  result.warmup = config.warmup;
  result.duration = config.duration;
  std::size_t total_clients = 0;
  for (const TenantSpec& spec : config.tenants) {
    LP_CHECK(spec.clients > 0);
    total_clients += static_cast<std::size_t>(spec.clients);
  }
  // Reserve up front: the spawned streams hold references into the traces.
  result.clients.reserve(total_clients);

  std::uint64_t index = 0;
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    const TenantSpec& spec = config.tenants[t];
    result.tenant_names.push_back(spec.model);
    result.tenant_slo_sec.push_back(spec.slo_sec);
    auto state = std::unique_ptr<TenantState>(
        new TenantState{models::make_model(spec.model), nullptr});
    state->profile =
        std::make_unique<core::GraphCostProfile>(state->model, predictors);
    const core::GraphCostProfile& profile = *state->profile;
    tenants.push_back(std::move(state));

    core::RuntimeParams runtime = config.runtime;
    runtime.slo_sec = spec.slo_sec;
    for (int c = 0; c < spec.clients; ++c) {
      ++index;
      const std::uint64_t seed =
          config.seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
      // Link faults splice into every tenant trace: a blackout window
      // hits the whole radio environment, not one client.
      links.push_back(std::make_unique<net::Link>(
          sim,
          faulty ? net::apply_link_faults(spec.upload, config.faults)
                 : spec.upload,
          faulty ? net::apply_link_faults(spec.download, config.faults)
                 : spec.download,
          spec.rtt, seed ^ 0x71));
      if (faulty) links.back()->attach_faults(&config.faults);
      const std::uint64_t session = frontend.open_session(profile);
      clients.push_back(std::make_unique<core::OffloadClient>(
          sim, cpu, profile, *links.back(), frontend, spec.policy, runtime,
          seed ^ 0xc1, session));
      if (config.telemetry != nullptr) {
        // Client and link share one track so transfer spans nest under
        // the client's request spans.
        std::string track = "t";
        track += std::to_string(t);
        track += '/';
        track += spec.model;
        track += '#';
        track += std::to_string(c);
        links.back()->set_telemetry(config.telemetry, track);
        clients.back()->set_telemetry(config.telemetry, track);
      }
      clients.back()->start_runtime_profiler(config.profiler_period);
      result.clients.push_back(ClientTrace{t, {}});
      sim.spawn(client_stream(
          sim, *clients.back(),
          ArrivalParams{spec.request_gap, spec.poisson_arrivals,
                        spec.burst_gap, spec.burst_enter_prob,
                        spec.burst_exit_prob},
          Rng(seed ^ 0xa1), result.clients.back().records));
    }
  }

  if (config.on_audit) {
    LP_CHECK(config.audit_period > 0);
    sim.spawn(audit_driver(sim, frontend, config.on_audit,
                           config.audit_period));
  }

  sim.run_until(config.duration);
  if (config.on_audit) config.on_audit(frontend, sim.now());

  result.frontend = frontend.load_snapshot();

  // Per-tenant steady-state summaries land in the registry so one snapshot
  // export carries the whole experiment.
  if (config.telemetry != nullptr) {
    auto& metrics = config.telemetry->metrics();
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
      std::string prefix = "fleet.t";
      prefix += std::to_string(t);
      prefix += '.';
      prefix += result.tenant_names[t];
      result.summarize(static_cast<int>(t)).publish(metrics, prefix);
    }
  }
  return result;
}

}  // namespace lp::serve
