// DNN partitioner (Section IV, Fig. 5).
//
// Given a partition point p in the backbone order, extracts the device
// segment {L0..Lp} and the server segment {Lp+1..Ln} as standalone graphs:
//   * predecessors outside a segment become Parameters named after the
//     producing node, so boundary tensors can be bound by name;
//   * segment outputs consumed by the other segment (or the graph output)
//     feed a MakeTuple (when more than one) linked to a Return node.
// Executing the device segment, shipping the boundary tensors, and running
// the server segment reproduces the whole graph's output exactly (tested
// against the reference interpreter).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace lp::partition {

struct PartitionPlan {
  std::size_t p = 0;

  /// {L0..Lp}; absent when p == 0 (full offloading: nothing runs locally).
  std::optional<graph::Graph> device_part;

  /// {Lp+1..Ln}; absent when p == n (local inference).
  std::optional<graph::Graph> server_part;

  /// Names of the tensors crossing the cut, in the order the device
  /// segment returns them. For p == 0 this is the graph input; for p == n
  /// it is empty (nothing is shipped; the result is already local).
  std::vector<std::string> boundary;

  /// Total bytes of the boundary tensors (== s_p for p < n).
  std::int64_t boundary_bytes = 0;
};

/// Extracts backbone positions [begin, end] of `g` as a standalone graph.
/// `tail_consumers_external`: treat the graph output as consumed outside
/// the segment (true for device segments so the cut tensors are returned).
graph::Graph extract_segment(const graph::Graph& g, std::size_t begin,
                             std::size_t end, const std::string& name);

/// Builds the partition plan for cut point p (0 <= p <= n).
PartitionPlan partition_at(const graph::Graph& g, std::size_t p);

}  // namespace lp::partition
