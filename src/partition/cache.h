// Partition cache (Section III-A).
//
// Keyed by the partition point p, it stores the partitioned computation
// graphs and auxiliary structures so repeated requests with the same p skip
// re-partitioning and runtime preparation — amortizing the overhead to ~1%
// of inference time over ~100 requests (bench/cache_overhead).
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>

#include "partition/partitioner.h"

namespace lp::partition {

class PartitionCache {
 public:
  /// LRU capacity in entries (each entry holds a full partition plan).
  explicit PartitionCache(std::size_t capacity = 16);

  /// Returns the cached plan for p, refreshing its recency; nullptr on miss.
  const PartitionPlan* find(std::size_t p);

  /// Inserts (or replaces) the plan for plan.p, evicting the least recently
  /// used entry if over capacity.
  void insert(PartitionPlan plan);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  double hit_rate() const;

  void clear();

 private:
  std::size_t capacity_;
  std::list<std::size_t> lru_;  // front = most recent
  struct Entry {
    PartitionPlan plan;
    std::list<std::size_t>::iterator lru_it;
  };
  std::unordered_map<std::size_t, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace lp::partition
