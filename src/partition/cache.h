// Partition cache (Section III-A).
//
// Keyed by the partition point p, it stores the partitioned computation
// graphs and auxiliary structures so repeated requests with the same p skip
// re-partitioning and runtime preparation — amortizing the overhead to ~1%
// of inference time over ~100 requests (bench/cache_overhead).
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "partition/partitioner.h"

namespace lp::partition {

class PartitionCache {
 public:
  /// LRU capacity in entries (each entry holds a full partition plan).
  explicit PartitionCache(std::size_t capacity = 16);

  /// Returns the cached plan for p, refreshing its recency; nullptr on miss.
  const PartitionPlan* find(std::size_t p);

  /// Side-effect-free lookup: no recency refresh, no hit/miss accounting.
  /// For invariant audits and tests that must observe without perturbing.
  const PartitionPlan* peek(std::size_t p) const;

  /// Inserts (or replaces) the plan for plan.p, evicting the least recently
  /// used entry if over capacity.
  void insert(PartitionPlan plan);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  double hit_rate() const;

  /// Keys in recency order (most recent first); for audits and tests.
  std::vector<std::size_t> lru_keys() const;

  /// Full cache contents for session migration: the plans in recency order
  /// (most recent first) plus the statistics. import_contents() into a
  /// cache of the same capacity reproduces the source bit-identically
  /// (lru_keys(), hit/miss/eviction counters, every stored plan).
  struct Contents {
    std::vector<PartitionPlan> plans;  ///< most recent first
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  Contents export_contents() const;
  void import_contents(Contents contents);

  /// Zeroes hits/misses/evictions without touching the entries. Called on
  /// session wipe so a re-warmed cache's hit_rate() never blends pre-crash
  /// traffic into the fresh epoch.
  void reset_stats();

  /// Drops every entry AND the statistics: a cleared cache is
  /// indistinguishable from a newly constructed one.
  void clear();

 private:
  std::size_t capacity_;
  std::list<std::size_t> lru_;  // front = most recent
  struct Entry {
    PartitionPlan plan;
    std::list<std::size_t>::iterator lru_it;
  };
  std::unordered_map<std::size_t, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace lp::partition
