#include "partition/partitioner.h"

#include <unordered_map>

#include "common/check.h"
#include "graph/cut.h"

namespace lp::partition {

using graph::Graph;
using graph::Node;
using graph::NodeId;
using graph::NodeKind;
using graph::OpType;

namespace {

std::vector<std::int64_t> positions_of(const Graph& g) {
  std::vector<std::int64_t> pos(g.node_count(), -1);
  for (std::size_t i = 0; i < g.backbone().size(); ++i)
    pos[static_cast<std::size_t>(g.backbone()[i])] =
        static_cast<std::int64_t>(i);
  return pos;
}

/// Backbone nodes in [begin, end] whose output is consumed after `end`, or
/// which are the graph output — the segment's boundary, in backbone order.
std::vector<NodeId> boundary_nodes(const Graph& g, std::size_t begin,
                                   std::size_t end) {
  const auto pos = positions_of(g);
  std::vector<NodeId> out;
  for (std::size_t i = begin; i <= end; ++i) {
    const NodeId id = g.backbone()[i];
    bool external = id == g.output_id();
    for (NodeId c : g.consumers()[static_cast<std::size_t>(id)]) {
      if (pos[static_cast<std::size_t>(c)] > static_cast<std::int64_t>(end))
        external = true;
    }
    if (external) out.push_back(id);
  }
  return out;
}

}  // namespace

Graph extract_segment(const Graph& g, std::size_t begin, std::size_t end,
                      const std::string& name) {
  LP_CHECK(begin <= end && end < g.backbone().size());
  const auto pos = positions_of(g);
  Graph seg(name);
  std::unordered_map<NodeId, NodeId> id_map;

  auto map_input = [&](NodeId in) -> NodeId {
    auto it = id_map.find(in);
    if (it != id_map.end()) return it->second;
    const Node& src = g.node(in);
    if (src.is_param()) {
      // Weight/bias Parameter: clone with the same name so both halves
      // derive identical deterministic values.
      Node clone;
      clone.kind = NodeKind::kParameter;
      clone.name = src.name;
      clone.output = src.output;
      const NodeId nid = seg.add_node(std::move(clone));
      id_map.emplace(in, nid);
      return nid;
    }
    // CNode produced before the segment: becomes a boundary Parameter
    // named after the producer (Fig. 5).
    LP_CHECK_MSG(pos[static_cast<std::size_t>(in)] <
                     static_cast<std::int64_t>(begin),
                 "segment input from the future: " + src.name);
    Node boundary;
    boundary.kind = NodeKind::kParameter;
    boundary.name = src.name;
    boundary.output = src.output;
    boundary.boundary = true;
    const NodeId nid = seg.add_node(std::move(boundary));
    id_map.emplace(in, nid);
    return nid;
  };

  for (std::size_t i = begin; i <= end; ++i) {
    const Node& src = g.node(g.backbone()[i]);
    Node clone;
    clone.kind = NodeKind::kCNode;
    clone.op = src.op;
    clone.name = src.name;
    clone.output = src.output;
    clone.attrs = src.attrs;
    for (NodeId in : src.inputs) clone.inputs.push_back(map_input(in));
    const NodeId nid = seg.add_node(std::move(clone));
    id_map.emplace(src.id, nid);
    if (src.op == OpType::kInput) seg.set_input(nid);
  }

  // Segment outputs -> (MakeTuple) -> Return.
  const auto boundary = boundary_nodes(g, begin, end);
  LP_CHECK_MSG(!boundary.empty(), "segment produces nothing");
  NodeId result;
  std::int64_t result_bytes = 0;
  if (boundary.size() > 1) {
    Node tuple;
    tuple.kind = NodeKind::kCNode;
    tuple.op = OpType::kMakeTuple;
    tuple.name = name + ".tuple";
    for (NodeId b : boundary) {
      tuple.inputs.push_back(id_map.at(b));
      result_bytes += g.node(b).output.bytes();
    }
    // A tuple's "tensor" is the concatenation of its elements for sizing
    // purposes; shape is a flat element count.
    tuple.output =
        TensorDesc{Shape{std::max<std::int64_t>(1, result_bytes / 4)},
                   DType::kFloat32};
    result = seg.add_node(std::move(tuple));
  } else {
    result = id_map.at(boundary.front());
  }
  Node ret;
  ret.kind = NodeKind::kCNode;
  ret.op = OpType::kReturn;
  ret.name = name + ".return";
  ret.inputs.push_back(result);
  ret.output = seg.node(result).output;
  const NodeId ret_id = seg.add_node(std::move(ret));
  seg.set_output(ret_id);
  seg.validate();
  return seg;
}

PartitionPlan partition_at(const Graph& g, std::size_t p) {
  const std::size_t n = g.n();
  LP_CHECK_MSG(p <= n, "partition point out of range");
  PartitionPlan plan;
  plan.p = p;

  if (p > 0)
    plan.device_part = extract_segment(g, 0, p, g.name() + ".device");
  if (p < n)
    plan.server_part = extract_segment(g, p + 1, n, g.name() + ".server");

  if (p < n) {
    for (NodeId id : boundary_nodes(g, 0, p)) {
      plan.boundary.push_back(g.node(id).name);
      plan.boundary_bytes += g.node(id).output.bytes();
    }
  }
  return plan;
}

}  // namespace lp::partition
