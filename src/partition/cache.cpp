#include "partition/cache.h"

#include "common/check.h"

namespace lp::partition {

PartitionCache::PartitionCache(std::size_t capacity) : capacity_(capacity) {
  LP_CHECK(capacity > 0);
}

const PartitionPlan* PartitionCache::peek(std::size_t p) const {
  auto it = entries_.find(p);
  return it == entries_.end() ? nullptr : &it->second.plan;
}

const PartitionPlan* PartitionCache::find(std::size_t p) {
  auto it = entries_.find(p);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.erase(it->second.lru_it);
  lru_.push_front(p);
  it->second.lru_it = lru_.begin();
  return &it->second.plan;
}

void PartitionCache::insert(PartitionPlan plan) {
  const std::size_t p = plan.p;
  auto it = entries_.find(p);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    lru_.erase(it->second.lru_it);
    lru_.push_front(p);
    it->second.lru_it = lru_.begin();
    return;
  }
  if (entries_.size() >= capacity_) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(p);
  entries_.emplace(p, Entry{std::move(plan), lru_.begin()});
}

double PartitionCache::hit_rate() const {
  const auto total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

std::vector<std::size_t> PartitionCache::lru_keys() const {
  return std::vector<std::size_t>(lru_.begin(), lru_.end());
}

PartitionCache::Contents PartitionCache::export_contents() const {
  Contents contents;
  contents.plans.reserve(entries_.size());
  for (std::size_t p : lru_)  // front = most recent
    contents.plans.push_back(entries_.at(p).plan);
  contents.hits = hits_;
  contents.misses = misses_;
  contents.evictions = evictions_;
  return contents;
}

void PartitionCache::import_contents(Contents contents) {
  LP_CHECK_MSG(contents.plans.size() <= capacity_,
               "imported cache contents exceed capacity");
  clear();
  // Insert oldest first so the rebuilt recency order matches the export.
  for (auto it = contents.plans.rbegin(); it != contents.plans.rend(); ++it)
    insert(std::move(*it));
  hits_ = contents.hits;
  misses_ = contents.misses;
  evictions_ = contents.evictions;
}

void PartitionCache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

void PartitionCache::clear() {
  entries_.clear();
  lru_.clear();
  reset_stats();
}

}  // namespace lp::partition
