#include "partition/cache.h"

#include "common/check.h"

namespace lp::partition {

PartitionCache::PartitionCache(std::size_t capacity) : capacity_(capacity) {
  LP_CHECK(capacity > 0);
}

const PartitionPlan* PartitionCache::peek(std::size_t p) const {
  auto it = entries_.find(p);
  return it == entries_.end() ? nullptr : &it->second.plan;
}

const PartitionPlan* PartitionCache::find(std::size_t p) {
  auto it = entries_.find(p);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.erase(it->second.lru_it);
  lru_.push_front(p);
  it->second.lru_it = lru_.begin();
  return &it->second.plan;
}

void PartitionCache::insert(PartitionPlan plan) {
  const std::size_t p = plan.p;
  auto it = entries_.find(p);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    lru_.erase(it->second.lru_it);
    lru_.push_front(p);
    it->second.lru_it = lru_.begin();
    return;
  }
  if (entries_.size() >= capacity_) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(p);
  entries_.emplace(p, Entry{std::move(plan), lru_.begin()});
}

double PartitionCache::hit_rate() const {
  const auto total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

std::vector<std::size_t> PartitionCache::lru_keys() const {
  return std::vector<std::size_t>(lru_.begin(), lru_.end());
}

void PartitionCache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

void PartitionCache::clear() {
  entries_.clear();
  lru_.clear();
  reset_stats();
}

}  // namespace lp::partition
