#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace lp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LP_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  LP_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row,
                      std::ostringstream& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_row(headers_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace lp
