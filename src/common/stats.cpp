#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lp {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  LP_CHECK(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  LP_CHECK(count_ > 0);
  return max_;
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  LP_CHECK(capacity > 0);
}

void SlidingWindow::add(double x) {
  values_.push_back(x);
  sum_ += x;
  if (values_.size() > capacity_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

void SlidingWindow::clear() {
  values_.clear();
  sum_ = 0.0;
}

SlidingWindow::Snapshot SlidingWindow::snapshot() const {
  return Snapshot{std::vector<double>(values_.begin(), values_.end()), sum_};
}

void SlidingWindow::restore(const Snapshot& s) {
  LP_CHECK_MSG(s.values.size() <= capacity_,
               "snapshot does not fit the window capacity");
  values_.assign(s.values.begin(), s.values.end());
  sum_ = s.sum;
}

double SlidingWindow::mean() const {
  LP_CHECK(!values_.empty());
  return sum_ / static_cast<double>(values_.size());
}

double SlidingWindow::latest() const {
  LP_CHECK(!values_.empty());
  return values_.back();
}

double percentile(std::vector<double> values, double q) {
  LP_CHECK_MSG(!values.empty(), "percentile of an empty sample");
  LP_CHECK_MSG(!std::isnan(q), "percentile quantile is NaN");
  q = std::clamp(q, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  LP_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace lp
