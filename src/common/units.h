// Unit-carrying helpers for time, data size and bandwidth.
//
// Simulated time is an integral nanosecond count (lp::TimeNs); helpers convert
// to/from seconds and milliseconds. Bandwidths are bits per second.
#pragma once

#include <cstdint>

namespace lp {

/// Simulated time in nanoseconds since simulation start.
using TimeNs = std::int64_t;

/// Duration in nanoseconds.
using DurationNs = std::int64_t;

constexpr DurationNs kNsPerUs = 1'000;
constexpr DurationNs kNsPerMs = 1'000'000;
constexpr DurationNs kNsPerSec = 1'000'000'000;

constexpr DurationNs microseconds(double us) {
  return static_cast<DurationNs>(us * static_cast<double>(kNsPerUs));
}
constexpr DurationNs milliseconds(double ms) {
  return static_cast<DurationNs>(ms * static_cast<double>(kNsPerMs));
}
constexpr DurationNs seconds(double s) {
  return static_cast<DurationNs>(s * static_cast<double>(kNsPerSec));
}

constexpr double to_seconds(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kNsPerSec);
}
constexpr double to_millis(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kNsPerMs);
}
constexpr double to_micros(DurationNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kNsPerUs);
}

/// Bandwidth in bits per second.
using BitsPerSec = double;

constexpr BitsPerSec mbps(double m) { return m * 1e6; }

/// Transfer duration for `bytes` at `bw` bits/s (no propagation delay).
constexpr DurationNs transfer_time(std::int64_t bytes, BitsPerSec bw) {
  return static_cast<DurationNs>(static_cast<double>(bytes) * 8.0 /
                                 bw * static_cast<double>(kNsPerSec));
}

}  // namespace lp
