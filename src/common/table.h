// Plain-text table rendering for bench output.
//
// Benches print the same rows/series the paper's tables and figures report;
// this formats them with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace lp {

/// Column-aligned plain-text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header underline.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

  /// Formats a double with the given precision (fixed notation).
  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lp
