// Contract checking macros.
//
// LP_CHECK enforces preconditions and invariants that indicate programmer
// error; violations throw lp::ContractError so tests can assert on them and
// long-running simulations fail loudly instead of corrupting state.
#pragma once

#include <stdexcept>
#include <string>

namespace lp {

/// Thrown when a LP_CHECK contract is violated.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_failure(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  std::string what = std::string("contract violated: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) what += ": " + msg;
  throw ContractError(what);
}

}  // namespace lp

#define LP_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::lp::contract_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define LP_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) ::lp::contract_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

// LP_DCHECK: contract check for hot paths (per-element tensor indexing).
// Active in Debug builds; compiled out when NDEBUG is defined (Release /
// RelWithDebInfo), so optimized kernels pay nothing for it.
#ifdef NDEBUG
#define LP_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define LP_DCHECK(expr) LP_CHECK(expr)
#endif
