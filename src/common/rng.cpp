#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace lp {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  LP_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LP_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = Rng::max() - Rng::max() % range;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  LP_CHECK(mean > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng((*this)() ^ 0xD1B54A32D192ED03ull); }

}  // namespace lp
