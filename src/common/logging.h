// Minimal leveled logger writing to stderr.
//
// Severity is filtered by a process-global level; default Warn keeps tests
// and benches quiet. Not thread-safe across interleaved messages, which is
// fine: the simulator is single-threaded.
#pragma once

#include <sstream>
#include <string>

namespace lp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum severity that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { detail::log_emit(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace lp

#define LP_LOG(level)                                 \
  if (static_cast<int>(::lp::LogLevel::level) <       \
      static_cast<int>(::lp::log_level())) {          \
  } else                                              \
    ::lp::LogMessage(::lp::LogLevel::level)

#define LP_DEBUG LP_LOG(kDebug)
#define LP_INFO LP_LOG(kInfo)
#define LP_WARN LP_LOG(kWarn)
#define LP_ERROR LP_LOG(kError)
