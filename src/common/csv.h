// Minimal CSV writer for exporting experiment time series.
//
// Benches print summary tables to stdout; when LP_CSV_DIR is set in the
// environment they additionally dump the full per-inference series as CSV
// for external plotting (the paper's figures are time series).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace lp {

class CsvWriter {
 public:
  /// Opens <dir>/<name>.csv and writes the header row. Throws
  /// ContractError if the file cannot be created.
  CsvWriter(const std::string& dir, const std::string& name,
            std::vector<std::string> header);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends a row; must match the header width.
  void add_row(const std::vector<std::string>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t width_;
  void* file_;  // FILE*, kept out of the header
};

/// LP_CSV_DIR from the environment, if set and non-empty.
std::optional<std::string> csv_dir_from_env();

}  // namespace lp
