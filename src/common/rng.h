// Deterministic pseudo-random number generation.
//
// Wraps a 64-bit SplitMix/xoshiro-style generator so every experiment is
// reproducible from a single seed, and child generators can be forked for
// independent processes without correlation.
#pragma once

#include <cstdint>

namespace lp {

/// Deterministic RNG (xoshiro256** core, SplitMix64 seeding).
///
/// Satisfies UniformRandomBitGenerator so it also works with <random>
/// distributions where needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64 random bits.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Forks an independent child generator (stream split).
  Rng fork();

 private:
  std::uint64_t state_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace lp
