// Streaming and batch statistics used by profilers and benches.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace lp {

/// Online mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< Sample variance; 0 with fewer than 2 points.
  double stddev() const;
  double min() const;  ///< Requires count() > 0.
  double max() const;  ///< Requires count() > 0.
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-capacity sliding window of recent samples with mean queries.
///
/// Used by the bandwidth estimator and the influential-factor tracker, both
/// of which average "records in the most recent monitoring period".
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);
  void clear();
  std::size_t size() const { return values_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return values_.empty(); }
  double mean() const;  ///< Requires !empty().
  double latest() const;  ///< Requires !empty().

  /// Verbatim copy of the window for session migration. The running sum is
  /// captured too (not recomputed from the values): evictions subtract from
  /// it incrementally, so replaying only the surviving values could differ
  /// in the last bit — restore() must reproduce mean() exactly.
  struct Snapshot {
    std::vector<double> values;  ///< oldest first
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  /// Restores a snapshot taken from a window of the same capacity; the
  /// restored window is bit-identical (values, sum, hence mean).
  void restore(const Snapshot& s);

 private:
  std::size_t capacity_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

/// Percentile of a sample set. q is clamped to [0, 100] (NaN is a contract
/// violation). Requires non-empty input; does not modify the argument.
///
/// Convention (the repo-wide one — obs::Histogram::percentile matches it):
/// linear interpolation between closest ranks, rank = q/100 * (n - 1) on
/// the sorted sample (Hyndman–Fan type 7, numpy's default). So p50 of
/// {1, 2, 3, 4} is 2.5, not 2 or 3 — no nearest-rank rounding anywhere.
double percentile(std::vector<double> values, double q);

/// Arithmetic mean of a non-empty vector.
double mean_of(const std::vector<double>& values);

}  // namespace lp
