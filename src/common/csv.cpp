#include "common/csv.h"

#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace lp {

CsvWriter::CsvWriter(const std::string& dir, const std::string& name,
                     std::vector<std::string> header)
    : path_(dir + "/" + name + ".csv"), width_(header.size()) {
  LP_CHECK(!header.empty());
  std::FILE* f = std::fopen(path_.c_str(), "w");
  LP_CHECK_MSG(f != nullptr, "cannot create " + path_);
  file_ = f;
  add_row(header);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  LP_CHECK_MSG(cells.size() == width_, "CSV row width mismatch");
  auto* f = static_cast<std::FILE*>(file_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    LP_CHECK_MSG(cells[i].find_first_of(",\n\"") == std::string::npos,
                 "CSV cells must not contain separators: " + cells[i]);
    std::fputs(cells[i].c_str(), f);
    std::fputc(i + 1 < cells.size() ? ',' : '\n', f);
  }
}

std::optional<std::string> csv_dir_from_env() {
  const char* dir = std::getenv("LP_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return std::nullopt;
  return std::string(dir);
}

}  // namespace lp
