#include "graph/shape_infer.h"

#include "common/check.h"

namespace lp::graph {

namespace {
std::int64_t out_extent(std::int64_t in, std::int64_t kernel,
                        std::int64_t stride, std::int64_t pad,
                        bool ceil_mode) {
  const std::int64_t padded = in + 2 * pad;
  LP_CHECK_MSG(padded >= kernel, "kernel larger than padded input");
  const std::int64_t span = padded - kernel;
  std::int64_t out = span / stride + 1;
  if (ceil_mode && span % stride != 0) {
    // Ceil rounding adds a final window; it must start inside the
    // (left-)padded input, which holds whenever pad < stride extra.
    ++out;
  }
  return out;
}
}  // namespace

Shape conv_output_shape(const Shape& in, const ConvAttrs& attrs,
                        bool depthwise) {
  LP_CHECK_MSG(in.rank() == 4, "conv input must be NCHW");
  LP_CHECK(attrs.kernel_h > 0 && attrs.kernel_w > 0);
  LP_CHECK(attrs.stride_h > 0 && attrs.stride_w > 0);
  const std::int64_t out_c = depthwise ? in.c() : attrs.out_channels;
  LP_CHECK(out_c > 0);
  return Shape{in.n(), out_c,
               out_extent(in.h(), attrs.kernel_h, attrs.stride_h, attrs.pad_h,
                          false),
               out_extent(in.w(), attrs.kernel_w, attrs.stride_w, attrs.pad_w,
                          false)};
}

Shape pool_output_shape(const Shape& in, const PoolAttrs& attrs) {
  LP_CHECK_MSG(in.rank() == 4, "pool input must be NCHW");
  LP_CHECK(attrs.kernel_h > 0 && attrs.kernel_w > 0);
  LP_CHECK(attrs.stride_h > 0 && attrs.stride_w > 0);
  return Shape{in.n(), in.c(),
               out_extent(in.h(), attrs.kernel_h, attrs.stride_h, attrs.pad_h,
                          attrs.ceil_mode),
               out_extent(in.w(), attrs.kernel_w, attrs.stride_w, attrs.pad_w,
                          attrs.ceil_mode)};
}

Shape matmul_output_shape(const Shape& in, const MatMulAttrs& attrs) {
  LP_CHECK_MSG(in.rank() == 2, "matmul input must be rank-2 (flatten first)");
  LP_CHECK(attrs.out_features > 0);
  return Shape{in.dim(0), attrs.out_features};
}

Shape concat_output_shape(const std::vector<Shape>& ins, std::int64_t axis) {
  LP_CHECK(!ins.empty());
  const auto rank = ins.front().rank();
  LP_CHECK(axis >= 0 && static_cast<std::size_t>(axis) < rank);
  std::int64_t axis_total = 0;
  for (const auto& s : ins) {
    LP_CHECK_MSG(s.rank() == rank, "concat rank mismatch");
    for (std::size_t d = 0; d < rank; ++d) {
      if (static_cast<std::int64_t>(d) == axis) continue;
      LP_CHECK_MSG(s.dim(d) == ins.front().dim(d), "concat shape mismatch");
    }
    axis_total += s.dim(static_cast<std::size_t>(axis));
  }
  std::vector<std::int64_t> dims = ins.front().dims();
  dims[static_cast<std::size_t>(axis)] = axis_total;
  return Shape(std::move(dims));
}

Shape flatten_output_shape(const Shape& in) {
  LP_CHECK(in.rank() >= 2);
  std::int64_t rest = 1;
  for (std::size_t d = 1; d < in.rank(); ++d) rest *= in.dim(d);
  return Shape{in.dim(0), rest};
}

}  // namespace lp::graph
