#include "graph/serialize.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace lp::graph {

namespace {

const char* dtype_token(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return "f32";
    case DType::kFloat16:
      return "f16";
    case DType::kInt8:
      return "i8";
  }
  return "?";
}

DType dtype_from_token(const std::string& token) {
  if (token == "f32") return DType::kFloat32;
  if (token == "f16") return DType::kFloat16;
  if (token == "i8") return DType::kInt8;
  LP_CHECK_MSG(false, "unknown dtype token: " + token);
  return DType::kFloat32;
}

void emit_desc(std::ostream& out, const TensorDesc& desc) {
  out << ' ' << dtype_token(desc.dtype) << ' ' << desc.shape.rank();
  for (auto d : desc.shape.dims()) out << ' ' << d;
}

TensorDesc read_desc(std::istream& in) {
  std::string dtype;
  std::size_t rank = 0;
  LP_CHECK_MSG(static_cast<bool>(in >> dtype >> rank), "truncated desc");
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims)
    LP_CHECK_MSG(static_cast<bool>(in >> d), "truncated shape");
  return TensorDesc{Shape(std::move(dims)), dtype_from_token(dtype)};
}

void emit_attrs(std::ostream& out, const Node& node) {
  if (const auto* conv = std::get_if<ConvAttrs>(&node.attrs)) {
    out << ' ' << conv->out_channels << ' ' << conv->kernel_h << ' '
        << conv->kernel_w << ' ' << conv->stride_h << ' ' << conv->stride_w
        << ' ' << conv->pad_h << ' ' << conv->pad_w;
  } else if (const auto* pool = std::get_if<PoolAttrs>(&node.attrs)) {
    out << ' ' << pool->kernel_h << ' ' << pool->kernel_w << ' '
        << pool->stride_h << ' ' << pool->stride_w << ' ' << pool->pad_h
        << ' ' << pool->pad_w << ' ' << (pool->ceil_mode ? 1 : 0);
  } else if (const auto* mm = std::get_if<MatMulAttrs>(&node.attrs)) {
    out << ' ' << mm->out_features;
  } else if (const auto* cat = std::get_if<ConcatAttrs>(&node.attrs)) {
    out << ' ' << cat->axis;
  }
}

Attrs read_attrs(std::istream& in, OpType op) {
  switch (op) {
    case OpType::kConv:
    case OpType::kDWConv: {
      ConvAttrs a;
      LP_CHECK_MSG(static_cast<bool>(in >> a.out_channels >> a.kernel_h >>
                                     a.kernel_w >> a.stride_h >>
                                     a.stride_w >> a.pad_h >> a.pad_w),
                   "truncated conv attrs");
      return a;
    }
    case OpType::kMaxPool:
    case OpType::kAvgPool: {
      PoolAttrs a;
      int ceil_flag = 0;
      LP_CHECK_MSG(static_cast<bool>(in >> a.kernel_h >> a.kernel_w >>
                                     a.stride_h >> a.stride_w >> a.pad_h >>
                                     a.pad_w >> ceil_flag),
                   "truncated pool attrs");
      a.ceil_mode = ceil_flag != 0;
      return a;
    }
    case OpType::kMatMul: {
      MatMulAttrs a;
      LP_CHECK_MSG(static_cast<bool>(in >> a.out_features),
                   "truncated matmul attrs");
      return a;
    }
    case OpType::kConcat: {
      ConcatAttrs a;
      LP_CHECK_MSG(static_cast<bool>(in >> a.axis),
                   "truncated concat attrs");
      return a;
    }
    default:
      return {};
  }
}

}  // namespace

std::string serialize(const Graph& g) {
  std::ostringstream out;
  LP_CHECK_MSG(g.name().find_first_of(" \t\n") == std::string::npos,
               "graph name must not contain whitespace");
  out << "graph " << g.name() << '\n';
  for (const auto& node : g.nodes()) {
    LP_CHECK_MSG(node.name.find_first_of(" \t\n") == std::string::npos,
                 "node name must not contain whitespace: " + node.name);
    if (node.is_param()) {
      out << "param " << node.name;
      emit_desc(out, node.output);
      out << ' ' << (node.boundary ? 1 : 0) << '\n';
      continue;
    }
    out << "cnode " << op_name(node.op) << ' ' << node.name;
    emit_desc(out, node.output);
    out << ' ' << node.inputs.size();
    for (NodeId in : node.inputs) out << ' ' << in;
    emit_attrs(out, node);
    out << '\n';
  }
  if (g.input_id() != kInvalidNode) out << "input " << g.input_id() << '\n';
  out << "output " << g.output_id() << '\n';
  return out.str();
}

Graph deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  LP_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "empty model file");
  std::istringstream header(line);
  std::string tag, name;
  LP_CHECK_MSG(static_cast<bool>(header >> tag >> name) && tag == "graph",
               "model file must start with 'graph <name>'");
  Graph g(name);
  bool have_output = false;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    LP_CHECK(static_cast<bool>(fields >> tag));
    if (tag == "param") {
      Node node;
      node.kind = NodeKind::kParameter;
      LP_CHECK_MSG(static_cast<bool>(fields >> node.name),
                   "param without name");
      node.output = read_desc(fields);
      int boundary = 0;
      LP_CHECK_MSG(static_cast<bool>(fields >> boundary),
                   "param without boundary flag");
      node.boundary = boundary != 0;
      g.add_node(std::move(node));
    } else if (tag == "cnode") {
      Node node;
      node.kind = NodeKind::kCNode;
      std::string op;
      LP_CHECK_MSG(static_cast<bool>(fields >> op >> node.name),
                   "cnode without op/name");
      node.op = op_from_name(op);
      node.output = read_desc(fields);
      std::size_t arity = 0;
      LP_CHECK_MSG(static_cast<bool>(fields >> arity), "cnode without arity");
      node.inputs.resize(arity);
      for (auto& id : node.inputs)
        LP_CHECK_MSG(static_cast<bool>(fields >> id), "truncated inputs");
      node.attrs = read_attrs(fields, node.op);
      const NodeId id = g.add_node(std::move(node));
      if (g.node(id).op == OpType::kInput) g.set_input(id);
    } else if (tag == "input") {
      NodeId id = kInvalidNode;
      LP_CHECK(static_cast<bool>(fields >> id));
      LP_CHECK_MSG(g.input_id() == id, "input marker mismatch");
    } else if (tag == "output") {
      NodeId id = kInvalidNode;
      LP_CHECK(static_cast<bool>(fields >> id));
      g.set_output(id);
      have_output = true;
    } else {
      LP_CHECK_MSG(false, "unknown record: " + tag);
    }
  }
  LP_CHECK_MSG(have_output, "model file missing output marker");
  g.validate();
  return g;
}

void save_graph(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  LP_CHECK_MSG(out.good(), "cannot open " + path + " for writing");
  out << serialize(g);
}

Graph load_graph(const std::string& path) {
  std::ifstream in(path);
  LP_CHECK_MSG(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str());
}

}  // namespace lp::graph
