// Computation-graph IR (MindIR-like).
//
// A Graph holds two node populations, mirroring MindSpore's MindIR:
//   * CNodes   — computation nodes; their DAG is the paper's "backbone DAG"
//   * Parameters — weight/bias tensors attached to CNodes
// The partition point p of Algorithm 1 indexes the topological order of the
// backbone DAG, with the Input node playing the role of the virtual L0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/attrs.h"
#include "tensor/shape.h"

namespace lp::graph {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

enum class NodeKind { kCNode, kParameter };

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kCNode;
  OpType op = OpType::kInput;  // meaningful for CNodes only
  std::string name;
  std::vector<NodeId> inputs;  // producer ids (CNodes and Parameters)
  TensorDesc output;           // inferred output tensor
  Attrs attrs;
  /// Parameters only: true when this Parameter stands in for a tensor
  /// produced by the other half of a partition (Fig. 5), as opposed to a
  /// weight/bias.
  bool boundary = false;

  bool is_cnode() const { return kind == NodeKind::kCNode; }
  bool is_param() const { return kind == NodeKind::kParameter; }
};

class Graph {
 public:
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  const Node& node(NodeId id) const;
  Node& node(NodeId id);
  std::size_t node_count() const { return nodes_.size(); }
  const std::vector<Node>& nodes() const { return nodes_; }

  NodeId input_id() const { return input_; }
  NodeId output_id() const { return output_; }
  const TensorDesc& input_desc() const { return node(input_).output; }
  const TensorDesc& output_desc() const { return node(output_).output; }

  /// CNode ids only (excludes Parameters), in insertion order; insertion
  /// order is required to be topological (validate() checks).
  ///
  /// backbone()[0] is the Input node = L0, so the partition point p of
  /// Algorithm 1 is an index into this vector and n = backbone().size()-1.
  const std::vector<NodeId>& backbone() const { return backbone_; }

  /// Number of real computation nodes n (excludes the virtual L0).
  std::size_t n() const { return backbone_.size() - 1; }

  /// Parameter node ids.
  const std::vector<NodeId>& parameters() const { return params_; }

  /// CNode consumers of each node's output (indexed by NodeId).
  const std::vector<std::vector<NodeId>>& consumers() const {
    return consumers_;
  }

  /// Checks structural invariants: single input, reachable single output,
  /// topologically-ordered insertion, inputs defined before use, parameters
  /// never consume, CNode arity matches the op. Throws ContractError.
  void validate() const;

  /// Total parameter bytes (model size).
  std::int64_t parameter_bytes() const;

  /// Total FLOPs-bearing work proxy: sum of output elements (sanity metric).
  std::int64_t total_output_elements() const;

  // -- construction (used by GraphBuilder and the partitioner) --
  NodeId add_node(Node node);
  void set_input(NodeId id);
  void set_output(NodeId id);

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> backbone_;
  std::vector<NodeId> params_;
  std::vector<std::vector<NodeId>> consumers_;
  NodeId input_ = kInvalidNode;
  NodeId output_ = kInvalidNode;
};

/// Fluent builder producing validated graphs; expands framework-level layers
/// into the computation nodes the paper counts (Conv layer -> Conv + BiasAdd,
/// FC layer -> MatMul + BiasAdd).
class GraphBuilder {
 public:
  explicit GraphBuilder(std::string name, DType dtype = DType::kFloat32);

  /// Declares the single graph input; must be called exactly once, first.
  NodeId input(Shape shape, std::string name = "input");

  /// Conv layer: Conv node (+ BiasAdd node when with_bias). Returns the id
  /// of the last node added.
  NodeId conv2d(NodeId x, std::int64_t out_channels, std::int64_t kernel,
                std::int64_t stride, std::int64_t pad, bool with_bias = true,
                std::string name = "");

  /// Conv layer with a rectangular kernel (e.g. Inception's 1x7 / 7x1).
  NodeId conv2d_rect(NodeId x, std::int64_t out_channels, std::int64_t kh,
                     std::int64_t kw, std::int64_t stride, std::int64_t pad_h,
                     std::int64_t pad_w, bool with_bias = true,
                     std::string name = "");

  /// Depth-wise conv layer (channel multiplier 1): DWConv (+ BiasAdd).
  NodeId dwconv2d(NodeId x, std::int64_t kernel, std::int64_t stride,
                  std::int64_t pad, bool with_bias = true,
                  std::string name = "");

  /// Fully-connected layer: MatMul (+ BiasAdd). Input must be rank-2.
  NodeId fc(NodeId x, std::int64_t out_features, bool with_bias = true,
            std::string name = "");

  NodeId maxpool(NodeId x, std::int64_t kernel, std::int64_t stride,
                 std::int64_t pad = 0, bool ceil_mode = false,
                 std::string name = "");
  NodeId avgpool(NodeId x, std::int64_t kernel, std::int64_t stride,
                 std::int64_t pad = 0, std::string name = "");
  /// Average pool over the full spatial extent -> N x C x 1 x 1.
  NodeId global_avgpool(NodeId x, std::string name = "");

  NodeId relu(NodeId x, std::string name = "");
  NodeId sigmoid(NodeId x, std::string name = "");
  NodeId tanh(NodeId x, std::string name = "");
  NodeId softmax(NodeId x, std::string name = "");
  NodeId batchnorm(NodeId x, std::string name = "");
  NodeId add(NodeId a, NodeId b, std::string name = "");
  NodeId concat(const std::vector<NodeId>& xs, std::string name = "");
  NodeId flatten(NodeId x, std::string name = "");

  /// Finalizes: sets the output node, validates, and returns the graph.
  Graph build(NodeId output);

  const TensorDesc& desc(NodeId id) const { return graph_.node(id).output; }

 private:
  NodeId add_parameter(Shape shape, std::string name);
  NodeId add_cnode(OpType op, std::vector<NodeId> inputs, TensorDesc out,
                   Attrs attrs, std::string name);
  NodeId bias_add(NodeId x, std::int64_t channels, std::string name);
  std::string auto_name(OpType op, const std::string& given);

  Graph graph_;
  DType dtype_;
  bool have_input_ = false;
  int counter_ = 0;
};

}  // namespace lp::graph
