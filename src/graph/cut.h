// Transmission sizes s_p of every topological-order cut (Section III-D).
//
// Cutting the backbone order {L0..Ln} after Lp splits the graph into a
// device prefix S and a server suffix T; the bytes crossing the cut are the
// outputs of nodes in S that some node in T consumes. s_0 is the input
// tensor size and s_n the output tensor size, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace lp::graph {

/// s_p for p = 0..n (n = graph.n()). O(V + E).
std::vector<std::int64_t> cut_sizes(const Graph& g);

/// Bytes crossing one specific cut, computed directly (O(V+E)); used to
/// cross-check cut_sizes in tests and by the brute-force DAG enumerator.
std::int64_t cut_size_at(const Graph& g, std::size_t p);

/// True if the cut after position p severs more than one tensor, i.e. the
/// cut lies inside a multi-branch block (Residual / Inception / fire).
bool cut_inside_block(const Graph& g, std::size_t p);

}  // namespace lp::graph
