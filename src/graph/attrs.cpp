#include "graph/attrs.h"

#include "common/check.h"

namespace lp::graph {

OpType op_from_name(const std::string& name) {
  static const OpType all[] = {
      OpType::kInput,    OpType::kConv,      OpType::kDWConv,
      OpType::kMatMul,   OpType::kMaxPool,   OpType::kAvgPool,
      OpType::kBiasAdd,  OpType::kAdd,       OpType::kBatchNorm,
      OpType::kRelu,     OpType::kSigmoid,   OpType::kTanh,
      OpType::kSoftmax,  OpType::kConcat,    OpType::kFlatten,
      OpType::kMakeTuple, OpType::kReturn};
  for (OpType op : all)
    if (op_name(op) == name) return op;
  LP_CHECK_MSG(false, "unknown operator name: " + name);
  return OpType::kInput;
}

std::string op_name(OpType op) {
  switch (op) {
    case OpType::kInput:
      return "Input";
    case OpType::kConv:
      return "Conv";
    case OpType::kDWConv:
      return "DWConv";
    case OpType::kMatMul:
      return "MatMul";
    case OpType::kMaxPool:
      return "MaxPool";
    case OpType::kAvgPool:
      return "AvgPool";
    case OpType::kBiasAdd:
      return "BiasAdd";
    case OpType::kAdd:
      return "Add";
    case OpType::kBatchNorm:
      return "BatchNorm";
    case OpType::kRelu:
      return "ReLU";
    case OpType::kSigmoid:
      return "Sigmoid";
    case OpType::kTanh:
      return "Tanh";
    case OpType::kSoftmax:
      return "Softmax";
    case OpType::kConcat:
      return "Concat";
    case OpType::kFlatten:
      return "Flatten";
    case OpType::kMakeTuple:
      return "MakeTuple";
    case OpType::kReturn:
      return "Return";
  }
  return "?";
}

bool is_elementwise(OpType op) {
  switch (op) {
    case OpType::kBiasAdd:
    case OpType::kAdd:
    case OpType::kBatchNorm:
    case OpType::kRelu:
    case OpType::kSigmoid:
    case OpType::kTanh:
    case OpType::kSoftmax:
      return true;
    default:
      return false;
  }
}

bool is_activation(OpType op) {
  switch (op) {
    case OpType::kRelu:
    case OpType::kSigmoid:
    case OpType::kTanh:
    case OpType::kSoftmax:
      return true;
    default:
      return false;
  }
}

}  // namespace lp::graph
