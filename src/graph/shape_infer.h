// Output-shape inference for each operator kind.
#pragma once

#include "graph/attrs.h"
#include "tensor/shape.h"

#include <vector>

namespace lp::graph {

/// Conv/DWConv output shape for an NCHW input.
Shape conv_output_shape(const Shape& in, const ConvAttrs& attrs,
                        bool depthwise);

/// Pooling output shape for an NCHW input (floor or ceil rounding).
Shape pool_output_shape(const Shape& in, const PoolAttrs& attrs);

/// MatMul output shape for a rank-2 input.
Shape matmul_output_shape(const Shape& in, const MatMulAttrs& attrs);

/// Concat along `axis`; all other axes must agree.
Shape concat_output_shape(const std::vector<Shape>& ins, std::int64_t axis);

/// Flatten to rank-2: N x (product of the rest).
Shape flatten_output_shape(const Shape& in);

}  // namespace lp::graph
