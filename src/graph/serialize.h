// Text serialization of computation graphs (a MindIR-file stand-in).
//
// The paper's system loads "the DNN model file" on both the user-end
// device and the edge server; this line-oriented format plays that role:
// dependency-free, diffable, and stable across the two sides.
//
// Format (whitespace-separated; one node per line, ids implicit by order):
//   graph <name>
//   param <name> <dtype> <rank> <dims...> <boundary:0|1>
//   cnode <op> <name> <dtype> <rank> <dims...> <num_inputs> <input ids...>
//         [attr fields...]
//   input <node id>
//   output <node id>
// Node names must not contain whitespace (the builders never produce any).
#pragma once

#include <string>

#include "graph/graph.h"

namespace lp::graph {

/// Serializes a validated graph.
std::string serialize(const Graph& g);

/// Parses serialize() output; validates the result. Throws ContractError
/// on malformed input.
Graph deserialize(const std::string& text);

/// File round-trip helpers.
void save_graph(const Graph& g, const std::string& path);
Graph load_graph(const std::string& path);

}  // namespace lp::graph
