#include "graph/graph.h"

#include <unordered_set>

#include "common/check.h"
#include "graph/shape_infer.h"

namespace lp::graph {

const Node& Graph::node(NodeId id) const {
  LP_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

Node& Graph::node(NodeId id) {
  LP_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

NodeId Graph::add_node(Node node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  node.id = id;
  for (NodeId in : node.inputs) {
    LP_CHECK_MSG(in >= 0 && in < id, "inputs must be defined before use");
  }
  consumers_.emplace_back();
  if (node.kind == NodeKind::kCNode) {
    backbone_.push_back(id);
  } else {
    LP_CHECK_MSG(node.inputs.empty(), "parameters cannot consume nodes");
    params_.push_back(id);
  }
  for (NodeId in : node.inputs)
    consumers_[static_cast<std::size_t>(in)].push_back(id);
  nodes_.push_back(std::move(node));
  return id;
}

void Graph::set_input(NodeId id) {
  LP_CHECK(node(id).op == OpType::kInput);
  LP_CHECK_MSG(input_ == kInvalidNode, "graph already has an input");
  input_ = id;
}

void Graph::set_output(NodeId id) {
  LP_CHECK(node(id).is_cnode());
  output_ = id;
}

void Graph::validate() const {
  // Segment graphs produced by the partitioner may have no Input node:
  // their boundary tensors arrive as Parameters (Fig. 5).
  LP_CHECK_MSG(output_ != kInvalidNode, "graph has no output");
  if (input_ != kInvalidNode) {
    LP_CHECK_MSG(!backbone_.empty() && backbone_.front() == input_,
                 "input must be the first CNode (L0)");
  }
  for (const auto& n : nodes_) {
    if (!n.is_cnode()) continue;
    if (n.op == OpType::kInput) {
      LP_CHECK_MSG(n.id == input_, "only one Input node allowed");
      LP_CHECK(n.inputs.empty());
      continue;
    }
    LP_CHECK_MSG(!n.inputs.empty(), "computation node without inputs");
    // Arity checks for binary / n-ary CNodes. Data inputs are CNodes plus
    // boundary Parameters (partition-segment stand-ins); weight Parameters
    // are excluded.
    std::size_t cnode_inputs = 0;
    for (NodeId in : n.inputs) {
      const Node& src = node(in);
      if (src.is_cnode() || src.boundary) ++cnode_inputs;
    }
    switch (n.op) {
      case OpType::kAdd:
        LP_CHECK_MSG(cnode_inputs == 2, "Add requires two tensor inputs");
        break;
      case OpType::kConcat:
      case OpType::kMakeTuple:
        LP_CHECK_MSG(cnode_inputs >= 1, "Concat/MakeTuple need inputs");
        break;
      default:
        LP_CHECK_MSG(cnode_inputs == 1,
                     op_name(n.op) + " requires one tensor input");
        break;
    }
  }
  // Every non-output CNode must be consumed (no dead computation).
  for (NodeId id : backbone_) {
    if (id == output_) continue;
    LP_CHECK_MSG(!consumers_[static_cast<std::size_t>(id)].empty(),
                 "dead computation node: " + node(id).name);
  }
}

std::int64_t Graph::parameter_bytes() const {
  std::int64_t total = 0;
  for (NodeId id : params_) total += node(id).output.bytes();
  return total;
}

std::int64_t Graph::total_output_elements() const {
  std::int64_t total = 0;
  for (NodeId id : backbone_) total += node(id).output.shape.elements();
  return total;
}

GraphBuilder::GraphBuilder(std::string name, DType dtype)
    : graph_(std::move(name)), dtype_(dtype) {}

std::string GraphBuilder::auto_name(OpType op, const std::string& given) {
  if (!given.empty()) return given;
  return op_name(op) + "_" + std::to_string(counter_++);
}

NodeId GraphBuilder::add_parameter(Shape shape, std::string name) {
  Node n;
  n.kind = NodeKind::kParameter;
  n.name = std::move(name);
  n.output = TensorDesc{std::move(shape), dtype_};
  return graph_.add_node(std::move(n));
}

NodeId GraphBuilder::add_cnode(OpType op, std::vector<NodeId> inputs,
                               TensorDesc out, Attrs attrs, std::string name) {
  Node n;
  n.kind = NodeKind::kCNode;
  n.op = op;
  n.name = auto_name(op, name);
  n.inputs = std::move(inputs);
  n.output = std::move(out);
  n.attrs = std::move(attrs);
  return graph_.add_node(std::move(n));
}

NodeId GraphBuilder::input(Shape shape, std::string name) {
  LP_CHECK_MSG(!have_input_, "input() may only be called once");
  have_input_ = true;
  const NodeId id = add_cnode(OpType::kInput, {},
                              TensorDesc{std::move(shape), dtype_}, {},
                              std::move(name));
  graph_.set_input(id);
  return id;
}

NodeId GraphBuilder::bias_add(NodeId x, std::int64_t channels,
                              std::string name) {
  const NodeId bias = add_parameter(Shape{channels}, name + ".bias");
  return add_cnode(OpType::kBiasAdd, {x, bias}, desc(x), {},
                   name + ".biasadd");
}

NodeId GraphBuilder::conv2d(NodeId x, std::int64_t out_channels,
                            std::int64_t kernel, std::int64_t stride,
                            std::int64_t pad, bool with_bias,
                            std::string name) {
  name = auto_name(OpType::kConv, name);
  // Copy: adding Parameters below reallocates the node vector.
  const Shape in = desc(x).shape;
  ConvAttrs attrs{out_channels, kernel, kernel, stride, stride, pad, pad};
  const NodeId weight = add_parameter(
      Shape{out_channels, in.c(), kernel, kernel}, name + ".weight");
  const Shape out = conv_output_shape(in, attrs, /*depthwise=*/false);
  NodeId y = add_cnode(OpType::kConv, {x, weight}, TensorDesc{out, dtype_},
                       attrs, name);
  if (with_bias) y = bias_add(y, out_channels, name);
  return y;
}

NodeId GraphBuilder::conv2d_rect(NodeId x, std::int64_t out_channels,
                                 std::int64_t kh, std::int64_t kw,
                                 std::int64_t stride, std::int64_t pad_h,
                                 std::int64_t pad_w, bool with_bias,
                                 std::string name) {
  name = auto_name(OpType::kConv, name);
  // Copy: adding Parameters below reallocates the node vector.
  const Shape in = desc(x).shape;
  ConvAttrs attrs{out_channels, kh, kw, stride, stride, pad_h, pad_w};
  const NodeId weight =
      add_parameter(Shape{out_channels, in.c(), kh, kw}, name + ".weight");
  const Shape out = conv_output_shape(in, attrs, /*depthwise=*/false);
  NodeId y = add_cnode(OpType::kConv, {x, weight}, TensorDesc{out, dtype_},
                       attrs, name);
  if (with_bias) y = bias_add(y, out_channels, name);
  return y;
}

NodeId GraphBuilder::dwconv2d(NodeId x, std::int64_t kernel,
                              std::int64_t stride, std::int64_t pad,
                              bool with_bias, std::string name) {
  name = auto_name(OpType::kDWConv, name);
  // Copy: adding Parameters below reallocates the node vector.
  const Shape in = desc(x).shape;
  ConvAttrs attrs{in.c(), kernel, kernel, stride, stride, pad, pad};
  const NodeId weight =
      add_parameter(Shape{in.c(), 1, kernel, kernel}, name + ".weight");
  const Shape out = conv_output_shape(in, attrs, /*depthwise=*/true);
  NodeId y = add_cnode(OpType::kDWConv, {x, weight}, TensorDesc{out, dtype_},
                       attrs, name);
  if (with_bias) y = bias_add(y, in.c(), name);
  return y;
}

NodeId GraphBuilder::fc(NodeId x, std::int64_t out_features, bool with_bias,
                        std::string name) {
  name = auto_name(OpType::kMatMul, name);
  // Copy: adding Parameters below reallocates the node vector.
  const Shape in = desc(x).shape;
  MatMulAttrs attrs{out_features};
  const NodeId weight =
      add_parameter(Shape{in.dim(1), out_features}, name + ".weight");
  const Shape out = matmul_output_shape(in, attrs);
  NodeId y = add_cnode(OpType::kMatMul, {x, weight}, TensorDesc{out, dtype_},
                       attrs, name);
  if (with_bias) y = bias_add(y, out_features, name);
  return y;
}

NodeId GraphBuilder::maxpool(NodeId x, std::int64_t kernel,
                             std::int64_t stride, std::int64_t pad,
                             bool ceil_mode, std::string name) {
  PoolAttrs attrs{kernel, kernel, stride, stride, pad, pad, ceil_mode};
  const Shape out = pool_output_shape(desc(x).shape, attrs);
  return add_cnode(OpType::kMaxPool, {x}, TensorDesc{out, dtype_}, attrs,
                   std::move(name));
}

NodeId GraphBuilder::avgpool(NodeId x, std::int64_t kernel,
                             std::int64_t stride, std::int64_t pad,
                             std::string name) {
  PoolAttrs attrs{kernel, kernel, stride, stride, pad, pad, false};
  const Shape out = pool_output_shape(desc(x).shape, attrs);
  return add_cnode(OpType::kAvgPool, {x}, TensorDesc{out, dtype_}, attrs,
                   std::move(name));
}

NodeId GraphBuilder::global_avgpool(NodeId x, std::string name) {
  // Copy: adding Parameters below reallocates the node vector.
  const Shape in = desc(x).shape;
  return avgpool(x, in.h(), in.h(), 0, std::move(name));
}

NodeId GraphBuilder::relu(NodeId x, std::string name) {
  return add_cnode(OpType::kRelu, {x}, desc(x), {}, std::move(name));
}
NodeId GraphBuilder::sigmoid(NodeId x, std::string name) {
  return add_cnode(OpType::kSigmoid, {x}, desc(x), {}, std::move(name));
}
NodeId GraphBuilder::tanh(NodeId x, std::string name) {
  return add_cnode(OpType::kTanh, {x}, desc(x), {}, std::move(name));
}
NodeId GraphBuilder::softmax(NodeId x, std::string name) {
  return add_cnode(OpType::kSoftmax, {x}, desc(x), {}, std::move(name));
}

NodeId GraphBuilder::batchnorm(NodeId x, std::string name) {
  name = auto_name(OpType::kBatchNorm, name);
  // Copy: adding Parameters below reallocates the node vector.
  const Shape in = desc(x).shape;
  LP_CHECK_MSG(in.rank() == 4, "batchnorm input must be NCHW");
  std::vector<NodeId> inputs{x};
  for (const char* suffix : {".gamma", ".beta", ".mean", ".var"})
    inputs.push_back(add_parameter(Shape{in.c()}, name + suffix));
  return add_cnode(OpType::kBatchNorm, std::move(inputs), desc(x), {}, name);
}

NodeId GraphBuilder::add(NodeId a, NodeId b, std::string name) {
  LP_CHECK_MSG(desc(a).shape == desc(b).shape, "add operand shape mismatch");
  return add_cnode(OpType::kAdd, {a, b}, desc(a), {}, std::move(name));
}

NodeId GraphBuilder::concat(const std::vector<NodeId>& xs, std::string name) {
  LP_CHECK(!xs.empty());
  std::vector<Shape> shapes;
  shapes.reserve(xs.size());
  for (NodeId x : xs) shapes.push_back(desc(x).shape);
  ConcatAttrs attrs{1};
  const Shape out = concat_output_shape(shapes, attrs.axis);
  return add_cnode(OpType::kConcat, xs, TensorDesc{out, dtype_}, attrs,
                   std::move(name));
}

NodeId GraphBuilder::flatten(NodeId x, std::string name) {
  const Shape out = flatten_output_shape(desc(x).shape);
  return add_cnode(OpType::kFlatten, {x}, TensorDesc{out, dtype_}, {},
                   std::move(name));
}

Graph GraphBuilder::build(NodeId output) {
  graph_.set_output(output);
  graph_.validate();
  return std::move(graph_);
}

}  // namespace lp::graph
