// Fused-layer detection (extension; Section VI).
//
// Inference frameworks fuse element-wise epilogues (BiasAdd, BatchNorm,
// activations) into the producing Conv/DWConv/MatMul kernel. The paper
// notes (via NN-Meter) that summing single-layer predictions over such
// fused stacks inflates the estimate, and that its LR methodology extends
// to fused layers once a detector exists — this is that detector. The
// fusion-aware execution path and prediction ablation live in hw::GpuModel
// and bench/ablation_fusion.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace lp::graph {

/// One fused kernel: consecutive backbone positions executed together.
/// nodes.front() is the anchor (the compute-heavy op); the rest are its
/// absorbed epilogue in backbone order.
struct FusionGroup {
  std::vector<NodeId> nodes;

  NodeId anchor() const { return nodes.front(); }
  std::size_t size() const { return nodes.size(); }
};

/// True if `op` can anchor a fusion group.
bool is_fusion_anchor(OpType op);

/// True if `op` can be absorbed into a preceding anchor's epilogue.
bool is_fusable_epilogue(OpType op);

/// Greedy fusion over backbone positions [begin, end] (inclusive; pass
/// 1..n for the whole graph — position 0 is the virtual input):
/// an anchor absorbs following nodes while (a) the next node is a fusable
/// epilogue, (b) it consumes exactly the previous node's output, and
/// (c) the previous node has no other consumers (its tensor never
/// materializes). Every position lands in exactly one group; non-anchor
/// nodes that cannot fuse form singleton groups.
std::vector<FusionGroup> fuse_segment(const Graph& g, std::size_t begin,
                                      std::size_t end);

/// fuse_segment over the whole backbone.
std::vector<FusionGroup> fuse_groups(const Graph& g);

/// Fusion groups covering *every* backbone position of `g`, in execution
/// order — the optimized interpreter's schedule. Unlike fuse_groups this
/// also covers position 0 (the Input node in whole graphs, or a real
/// computation node in partition-segment graphs, whose boundary tensors
/// arrive as Parameters) and any structural MakeTuple/Return tail; such
/// nodes always form singleton groups.
std::vector<FusionGroup> fuse_for_execution(const Graph& g);

}  // namespace lp::graph
