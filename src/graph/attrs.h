// Operator kinds and per-operator attributes of the computation-graph IR.
//
// The operator set covers the 8 node categories LoADPart models (Table I)
// plus the structural nodes MindIR uses when partitioning (MakeTuple,
// Return) and shape plumbing (Flatten, Concat).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace lp::graph {

enum class OpType {
  kInput,    // graph input placeholder; the paper's virtual node L0
  kConv,     // 2-D convolution (weights in a Parameter)
  kDWConv,   // depth-wise 2-D convolution
  kMatMul,   // fully-connected matrix multiply
  kMaxPool,
  kAvgPool,
  kBiasAdd,
  kAdd,        // element-wise add (residual connections)
  kBatchNorm,  // inference-mode batch normalization
  kRelu,
  kSigmoid,
  kTanh,
  kSoftmax,
  kConcat,   // channel concatenation (Inception / SqueezeNet fire)
  kFlatten,  // NCHW -> N x (CHW)
  kMakeTuple,  // bundles multiple boundary tensors of a partition segment
  kReturn,     // segment output marker
};

std::string op_name(OpType op);

/// Inverse of op_name; throws ContractError for unknown strings.
OpType op_from_name(const std::string& name);

/// True for the element-wise family the paper models with FLOPs-only
/// features (BiasAdd / Add / BatchNorm / activations).
bool is_elementwise(OpType op);

/// True for activation nodes (ReLU / sigmoid / tanh / softmax).
bool is_activation(OpType op);

/// Attributes of convolution nodes (Conv and DWConv).
struct ConvAttrs {
  std::int64_t out_channels = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;  // symmetric padding
  std::int64_t pad_w = 0;
};

/// Attributes of pooling nodes.
struct PoolAttrs {
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  bool ceil_mode = false;  // AlexNet/SqueezeNet pools use ceil rounding
};

/// Attributes of fully-connected (MatMul) nodes.
struct MatMulAttrs {
  std::int64_t out_features = 0;
};

/// Attributes of concatenation nodes.
struct ConcatAttrs {
  std::int64_t axis = 1;  // channel axis in NCHW
};

using Attrs =
    std::variant<std::monostate, ConvAttrs, PoolAttrs, MatMulAttrs,
                 ConcatAttrs>;

}  // namespace lp::graph
