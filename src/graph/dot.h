// Graphviz DOT export for inspecting computation graphs and partitions.
#pragma once

#include <string>

#include "graph/graph.h"

namespace lp::graph {

/// Renders the graph as Graphviz DOT. When `backbone_only`, Parameter nodes
/// are omitted. Nodes at backbone positions <= `highlight_cut` are filled,
/// visualizing a partition point (pass a negative value for none).
std::string to_dot(const Graph& g, bool backbone_only = true,
                   std::int64_t highlight_cut = -1);

}  // namespace lp::graph
