#include "graph/fusion.h"

#include "common/check.h"

namespace lp::graph {

bool is_fusion_anchor(OpType op) {
  switch (op) {
    case OpType::kConv:
    case OpType::kDWConv:
    case OpType::kMatMul:
    case OpType::kAdd:
      return true;
    default:
      return false;
  }
}

bool is_fusable_epilogue(OpType op) {
  switch (op) {
    case OpType::kBiasAdd:
    case OpType::kBatchNorm:
    case OpType::kRelu:
    case OpType::kSigmoid:
    case OpType::kTanh:
      return true;
    default:
      return false;
  }
}

namespace {

/// Greedy fusion over backbone positions [begin, end]; begin may be 0
/// (partition-segment graphs have a real computation node there).
std::vector<FusionGroup> fuse_range(const Graph& g, std::size_t begin,
                                    std::size_t end) {
  const auto& order = g.backbone();
  LP_CHECK(begin <= end && end < order.size());

  /// Does `node` consume exactly `prev` among CNodes (weights ignored)?
  auto consumes_only = [&](NodeId node, NodeId prev) {
    int data_inputs = 0;
    bool from_prev = false;
    for (NodeId in : g.node(node).inputs) {
      const auto& src = g.node(in);
      if (!src.is_cnode() && !src.boundary) continue;
      ++data_inputs;
      if (in == prev) from_prev = true;
    }
    return data_inputs == 1 && from_prev;
  };

  std::vector<FusionGroup> groups;
  std::size_t i = begin;
  while (i <= end) {
    FusionGroup group;
    group.nodes.push_back(order[i]);
    if (is_fusion_anchor(g.node(order[i]).op)) {
      std::size_t j = i;
      while (j + 1 <= end) {
        const NodeId prev = order[j];
        const NodeId next = order[j + 1];
        if (!is_fusable_epilogue(g.node(next).op)) break;
        if (!consumes_only(next, prev)) break;
        // The intermediate tensor must not escape the fused kernel.
        if (g.consumers()[static_cast<std::size_t>(prev)].size() != 1)
          break;
        group.nodes.push_back(next);
        ++j;
      }
      i = j + 1;
    } else {
      ++i;
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace

std::vector<FusionGroup> fuse_segment(const Graph& g, std::size_t begin,
                                      std::size_t end) {
  LP_CHECK(begin >= 1);
  return fuse_range(g, begin, end);
}

std::vector<FusionGroup> fuse_groups(const Graph& g) {
  return fuse_segment(g, 1, g.n());
}

std::vector<FusionGroup> fuse_for_execution(const Graph& g) {
  return fuse_range(g, 0, g.backbone().size() - 1);
}

}  // namespace lp::graph
