#include "graph/dot.h"

#include <sstream>

namespace lp::graph {

std::string to_dot(const Graph& g, bool backbone_only,
                   std::int64_t highlight_cut) {
  std::vector<std::int64_t> pos(g.node_count(), -1);
  for (std::size_t i = 0; i < g.backbone().size(); ++i)
    pos[static_cast<std::size_t>(g.backbone()[i])] =
        static_cast<std::int64_t>(i);

  std::ostringstream out;
  out << "digraph \"" << g.name() << "\" {\n  rankdir=TB;\n";
  for (const auto& n : g.nodes()) {
    if (backbone_only && n.is_param()) continue;
    out << "  n" << n.id << " [label=\"" << n.name << "\\n"
        << n.output.shape.to_string() << "\"";
    if (n.is_param()) out << ", shape=ellipse, style=dashed";
    else out << ", shape=box";
    const auto p = pos[static_cast<std::size_t>(n.id)];
    if (p >= 0 && p <= highlight_cut) out << ", style=filled";
    out << "];\n";
  }
  for (const auto& n : g.nodes()) {
    if (backbone_only && n.is_param()) continue;
    for (NodeId in : n.inputs) {
      if (backbone_only && g.node(in).is_param()) continue;
      out << "  n" << in << " -> n" << n.id << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace lp::graph
