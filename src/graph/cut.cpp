#include "graph/cut.h"

#include <algorithm>

#include "common/check.h"

namespace lp::graph {

namespace {
/// Position of every CNode in the backbone order; -1 for Parameters.
std::vector<std::int64_t> backbone_positions(const Graph& g) {
  std::vector<std::int64_t> pos(g.node_count(), -1);
  const auto& order = g.backbone();
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<std::int64_t>(i);
  return pos;
}
}  // namespace

std::vector<std::int64_t> cut_sizes(const Graph& g) {
  const auto& order = g.backbone();
  const std::size_t n = g.n();
  const auto pos = backbone_positions(g);

  // A tensor produced at position u and last consumed at position v crosses
  // every cut p with u <= p < v. Accumulate with a difference array.
  std::vector<std::int64_t> diff(n + 2, 0);
  for (NodeId id : order) {
    const Node& node = g.node(id);
    std::int64_t last_consumer = -1;
    for (NodeId c : g.consumers()[static_cast<std::size_t>(id)]) {
      last_consumer =
          std::max(last_consumer, pos[static_cast<std::size_t>(c)]);
    }
    if (last_consumer < 0) continue;  // output node; handled below
    const auto u = pos[static_cast<std::size_t>(id)];
    LP_CHECK(u >= 0 && last_consumer > u);
    diff[static_cast<std::size_t>(u)] += node.output.bytes();
    diff[static_cast<std::size_t>(last_consumer)] -= node.output.bytes();
  }

  std::vector<std::int64_t> s(n + 1, 0);
  std::int64_t acc = 0;
  for (std::size_t p = 0; p <= n; ++p) {
    acc += diff[p];
    s[p] = acc;
  }
  // By convention (paper Section III-D) s_n is the output tensor size.
  s[n] = g.output_desc().bytes();
  return s;
}

std::int64_t cut_size_at(const Graph& g, std::size_t p) {
  const auto& order = g.backbone();
  const std::size_t n = g.n();
  LP_CHECK(p <= n);
  if (p == n) return g.output_desc().bytes();
  const auto pos = backbone_positions(g);
  std::int64_t total = 0;
  for (std::size_t i = 0; i <= p; ++i) {
    const NodeId id = order[i];
    bool crosses = false;
    for (NodeId c : g.consumers()[static_cast<std::size_t>(id)]) {
      if (pos[static_cast<std::size_t>(c)] >
          static_cast<std::int64_t>(p)) {
        crosses = true;
        break;
      }
    }
    if (crosses) total += g.node(id).output.bytes();
  }
  return total;
}

bool cut_inside_block(const Graph& g, std::size_t p) {
  const auto& order = g.backbone();
  const std::size_t n = g.n();
  LP_CHECK(p <= n);
  if (p == n) return false;
  const auto pos = backbone_positions(g);
  int crossing_tensors = 0;
  for (std::size_t i = 0; i <= p; ++i) {
    const NodeId id = order[i];
    for (NodeId c : g.consumers()[static_cast<std::size_t>(id)]) {
      if (pos[static_cast<std::size_t>(c)] >
          static_cast<std::int64_t>(p)) {
        ++crossing_tensors;
        break;
      }
    }
  }
  return crossing_tensors > 1;
}

}  // namespace lp::graph
