#include "cluster/control_link.h"

#include <utility>

namespace lp::cluster {

bool ControlLink::send(const serve::LoadSnapshot& snapshot, Deliver deliver) {
  ++sent_;
  if (faults_ != nullptr) {
    const TimeNs now = sim_->now();
    if (faults_->link_down(now)) {
      ++dropped_;
      return false;
    }
    const double loss = faults_->loss_prob(now);
    if (loss > 0.0 && rng_.uniform() < loss) {
      ++dropped_;
      return false;
    }
  }
  ++delivered_;
  if (delay_ == 0) {
    deliver(snapshot);
    return true;
  }
  sim_->call_after(delay_, [deliver = std::move(deliver), snapshot] {
    deliver(snapshot);
  });
  return true;
}

}  // namespace lp::cluster
