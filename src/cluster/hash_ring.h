// Consistent-hash ring for session placement across edge servers.
//
// Classic Karger ring with virtual nodes: each server contributes `vnodes`
// points on a 64-bit ring (splitmix64 of server id and replica index); a
// key maps to the first vnode clockwise from its own hash. Placement is
// therefore deterministic across runs and independent of join order, and
// adding or removing one server only remaps the keys that fall into that
// server's arcs — in expectation servers_removed/servers of the key space,
// not everything (the property cluster_test pins down).
//
// place_if() walks clockwise past vnodes whose server fails a liveness
// predicate, which is how the router keeps hashing deterministically while
// a crashed server is down: keys owned by the dead server spill to the
// next alive arc and return home on restart.
#pragma once

#include <cstdint>
#include <vector>

namespace lp::cluster {

/// SplitMix64 — the repo-standard seeding hash (common/rng.h uses the same
/// constants); good avalanche behaviour for ring points.
std::uint64_t splitmix64(std::uint64_t x);

class HashRing {
 public:
  /// `vnodes` points per server (more = smoother arcs, slower joins).
  explicit HashRing(std::size_t vnodes = 64);

  /// Adds `server`'s vnodes to the ring. Adding twice is an error.
  void add_server(std::size_t server);

  /// Removes `server`'s vnodes. Removing an absent server is an error.
  void remove_server(std::size_t server);

  bool contains(std::size_t server) const;
  std::size_t servers() const { return servers_; }
  std::size_t vnodes() const { return vnodes_; }
  bool empty() const { return points_.empty(); }

  /// The server owning `key`: first vnode clockwise from hash(key).
  /// Requires a non-empty ring.
  std::size_t place(std::uint64_t key) const;

  /// Like place(), but walks past vnodes of servers rejected by `alive`
  /// (crash routing). Requires at least one vnode whose server satisfies
  /// the predicate.
  template <typename AlivePred>
  std::size_t place_if(std::uint64_t key, AlivePred alive) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t server;
  };

  /// Index of the first point clockwise from `hash` (wrapping).
  std::size_t successor(std::uint64_t hash) const;

  std::size_t vnodes_;
  std::size_t servers_ = 0;
  std::vector<Point> points_;  ///< sorted by hash (ties: by server)
};

template <typename AlivePred>
std::size_t HashRing::place_if(std::uint64_t key, AlivePred alive) const {
  const std::size_t start = successor(splitmix64(key));
  for (std::size_t step = 0; step < points_.size(); ++step) {
    const Point& point = points_[(start + step) % points_.size()];
    if (alive(point.server)) return point.server;
  }
  // No alive server on the ring: the caller must not ask.
  return place(key);
}

}  // namespace lp::cluster
