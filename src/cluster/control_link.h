// Lossy control-plane channel for heartbeats.
//
// PR 6's router read every server's LoadSnapshot as an omniscient oracle.
// ControlLink turns that read into a modeled message: each heartbeat round
// the router *sends* the snapshot over a per-server channel that can drop
// it (FaultPlan packet-loss windows and link blackouts) or delay it by a
// fixed control-plane latency. The router therefore works from whatever
// snapshots actually arrived — stale, missing, or out of date — which is
// exactly the information model the failure detector is built for.
//
// ## Determinism contract
//
// With no FaultPlan attached and zero delay, send() delivers inline and
// draws NO random numbers — a chaos-free run is bit-identical to the
// oracle transport. The rng is consulted only when a plan is attached and
// the instantaneous loss probability is positive.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/units.h"
#include "fault/fault_plan.h"
#include "serve/frontend.h"
#include "sim/simulator.h"

namespace lp::cluster {

class ControlLink {
 public:
  ControlLink(sim::Simulator& sim, DurationNs delay, std::uint64_t seed)
      : sim_(&sim), delay_(delay), rng_(seed) {}

  /// Wires loss/blackout injection (plan must outlive the link; null
  /// detaches).
  void attach_faults(const fault::FaultPlan* plan) { faults_ = plan; }

  using Deliver = std::function<void(const serve::LoadSnapshot&)>;

  /// Sends one heartbeat. Returns false when the message was dropped by a
  /// blackout or sampled loss; otherwise `deliver` runs inline (delay 0)
  /// or after the control-plane delay.
  bool send(const serve::LoadSnapshot& snapshot, Deliver deliver);

  std::uint64_t sent() const { return sent_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t delivered() const { return delivered_; }

 private:
  sim::Simulator* sim_;
  DurationNs delay_;
  const fault::FaultPlan* faults_ = nullptr;
  Rng rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace lp::cluster
