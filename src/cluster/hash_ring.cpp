#include "cluster/hash_ring.h"

#include <algorithm>

#include "common/check.h"

namespace lp::cluster {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

namespace {
std::uint64_t vnode_hash(std::size_t server, std::size_t replica) {
  // Mix the server id and replica index through two rounds so the arcs of
  // one server scatter instead of clustering.
  return splitmix64(splitmix64(static_cast<std::uint64_t>(server) + 1) ^
                    (0xD6E8FEB86659FD93ull *
                     (static_cast<std::uint64_t>(replica) + 1)));
}
}  // namespace

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes) {
  LP_CHECK(vnodes > 0);
}

void HashRing::add_server(std::size_t server) {
  LP_CHECK_MSG(!contains(server), "server already on the ring");
  for (std::size_t r = 0; r < vnodes_; ++r)
    points_.push_back(Point{vnode_hash(server, r), server});
  std::sort(points_.begin(), points_.end(), [](const Point& a,
                                               const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.server < b.server;  // ties deterministic (astronomically rare)
  });
  ++servers_;
}

void HashRing::remove_server(std::size_t server) {
  LP_CHECK_MSG(contains(server), "server not on the ring");
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [server](const Point& p) {
                                 return p.server == server;
                               }),
                points_.end());
  --servers_;
}

bool HashRing::contains(std::size_t server) const {
  return std::any_of(points_.begin(), points_.end(),
                     [server](const Point& p) { return p.server == server; });
}

std::size_t HashRing::successor(std::uint64_t hash) const {
  LP_CHECK_MSG(!points_.empty(), "placement on an empty ring");
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const Point& p, std::uint64_t h) { return p.hash < h; });
  if (it == points_.end()) return 0;  // wrap to the smallest hash
  return static_cast<std::size_t>(it - points_.begin());
}

std::size_t HashRing::place(std::uint64_t key) const {
  return points_[successor(splitmix64(key))].server;
}

}  // namespace lp::cluster
