// ClusterRouter: the control plane of a multi-server edge cluster.
//
// One router fronts N serve::EdgeServerFrontend instances on the same sim
// clock. It is control-plane only — clients hold a direct binding to their
// current server and submit to it without a per-request hop; the router
// owns *where that binding points*:
//
//   * placement — a new session lands on a server chosen by the configured
//     policy: a consistent-hash ring over the cluster session id
//     (deterministic, join-order independent, minimal movement), or
//     least-loaded by predicted queue delay (heartbeat-driven);
//   * heartbeats — every heartbeat_period the router *sends itself* one
//     serve::LoadSnapshot per server over a per-server ControlLink that can
//     drop or delay it (fault::FaultPlan loss/blackout windows). The router
//     keeps the last snapshot that actually arrived per server and drives
//     every decision off that stored — possibly stale — view;
//   * failure detection — a FailureDetector turns the heartbeat arrival
//     stream into kAlive / kSuspect / kDead per server (oracle, missed
//     deadline, or phi-accrual). Suspects keep their sessions but take no
//     new placements or migrations; only kDead triggers reroute;
//   * crash reroute — sessions homed on a server declared dead are
//     re-placed on a usable server and their clients redirected. The
//     binding's fencing epoch bumps so any zombie completions or state the
//     presumed-dead server later produces are rejected, not double-served;
//   * live migration — when rebalancing is on and the predicted-delay skew
//     between the hottest and coldest usable servers exceeds the
//     threshold, the router exports the busiest session off the hot
//     server, ships it over a modeled (and optionally lossy) interconnect,
//     imports it on the cold server, and redirects the client. Every
//     migration is a ledger entry (id, epoch, source, target, jobs) with a
//     transfer timeout and bounded retry; an attempt that cannot land
//     aborts and re-imports the payload at the source, so a lost transfer
//     never strands queued jobs. Late copies of a superseded transfer
//     bounce off the target's fencing epoch (or the ledger). The
//     non-blocking export/import shape follows the Ceph MDS balancer's
//     subtree export protocol;
//   * degradation — when the detector can see less than a majority of the
//     fleet, the router stops rerouting and rebalancing (acting on a
//     mostly-dark picture is how split-brain thrash starts) and fires the
//     on_degrade hook, which the fleet wires to the clients' local-only
//     fallback.
//
// Everything is deterministic: decisions read stored snapshots, iteration
// is over index-ordered vectors, transfer delays are pure functions of the
// modeled payload, and control-plane randomness (loss sampling, retry
// jitter) comes from a dedicated seeded stream that is never drawn when no
// fault plan is armed — a chaos-free run is bit-identical to the oracle
// control plane.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/control_link.h"
#include "cluster/failure_detector.h"
#include "cluster/hash_ring.h"
#include "fault/retry.h"
#include "obs/telemetry.h"
#include "serve/frontend.h"

namespace lp::cluster {

enum class Placement {
  kConsistentHash,  ///< static: ring over the cluster session id
  kLeastLoaded,     ///< dynamic: min predicted queue delay at open time
};

std::string placement_name(Placement placement);

struct RouterParams {
  Placement placement = Placement::kLeastLoaded;

  /// Heartbeat cadence: how often load snapshots are pulled and reroute /
  /// rebalance decisions run.
  DurationNs heartbeat_period = milliseconds(500);

  /// Live rebalancing: migrate sessions when load skew exceeds the
  /// threshold. Off = placement only (the static baselines).
  bool rebalance = false;

  /// Trigger: hottest-minus-coldest predicted queue delay (seconds) that
  /// arms a migration round.
  double skew_threshold_sec = 0.2;

  /// Migrations started per heartbeat round (1 = one careful move, then
  /// observe the effect on the next heartbeat).
  std::size_t max_migrations_per_round = 1;

  /// A session that just moved is pinned for this long (anti-thrash).
  DurationNs min_dwell = seconds(2);

  /// Modeled cluster interconnect for the migration payload.
  BitsPerSec migration_bandwidth = mbps(400);
  DurationNs migration_rtt = milliseconds(1);

  /// Virtual nodes per server on the consistent-hash ring.
  std::size_t vnodes = 64;

  /// Failure detection. The default (kOracle) trusts each delivered
  /// snapshot's alive flag verbatim — exact on a lossless control plane.
  DetectorParams detector;

  /// One-way latency of the heartbeat channel (0 = delivered inline at
  /// the send instant).
  DurationNs control_delay = 0;

  /// Migration reliability. A timeout of 0 trusts the interconnect: a
  /// transfer is never declared lost (attaching an interconnect fault plan
  /// therefore requires a timeout). With a timeout, an attempt that has
  /// not landed in time is retried up to migration_max_retries times with
  /// migration_backoff between attempts; a spent budget aborts the
  /// migration.
  DurationNs migration_timeout = 0;
  int migration_max_retries = 0;
  fault::BackoffPolicy migration_backoff;

  /// On abort, re-import the exported payload at the source so its queued
  /// jobs settle there (exactly-once). false = naive baseline: the payload
  /// is gone and its jobs are stranded — the chaos bench's measurable-loss
  /// arm.
  bool return_to_source = true;

  /// Seeds the router's control-plane randomness (per-link heartbeat-loss
  /// sampling, migration-loss sampling, retry jitter). Never drawn when no
  /// fault plan is attached.
  std::uint64_t control_seed = 0xc0117201;
};

/// Where a cluster session currently lives. The local session id equals
/// the cluster session id on every server (the router opens the session on
/// all of them in lock-step), so an export/import pair never renumbers.
struct SessionBinding {
  std::size_t server = 0;
  bool migrating = false;   ///< an export/import is in flight
  TimeNs last_move = 0;     ///< when it last migrated (dwell pinning)
  /// Fencing epoch: bumped on every reroute, migration start, migration
  /// abort, and mid-flight cancellation. Servers reject session state and
  /// completions stamped with an older epoch (see
  /// serve::EdgeServerFrontend::fence_session); the migrate coroutine also
  /// reads a concurrent bump as a cancellation token.
  std::uint64_t epoch = 0;
};

/// One migration in the exactly-once ledger. kInFlight entries' jobs sum
/// to in_transit_jobs() at every instant (audited); a terminal entry is
/// either committed at the target or aborted back to the source — the
/// naive baseline (return_to_source = false) instead drops the payload
/// (kDropped) and strands its jobs.
struct MigrationRecord {
  std::uint64_t id = 0;
  std::uint64_t session = 0;
  std::uint64_t epoch = 0;  ///< fencing epoch stamped on the transfer
  std::size_t source = 0;
  std::size_t target = 0;
  std::size_t jobs = 0;
  enum class State : std::uint8_t { kInFlight, kCommitted, kAborted, kDropped };
  State state = State::kInFlight;
  int attempts = 0;
};

class ClusterRouter {
 public:
  /// The frontends must outlive the router. At least one server.
  ClusterRouter(sim::Simulator& sim,
                std::vector<serve::EdgeServerFrontend*> servers,
                RouterParams params);

  /// Places a new session per the policy and registers it on *every*
  /// server (so migration targets always have the registration; the local
  /// id equals the returned cluster id on each). The profile must outlive
  /// the router.
  std::uint64_t open_session(const core::GraphCostProfile& profile);

  /// The client-redirect hook: called as redirect(session, new_server)
  /// after a migration lands or a crash reroute re-homes the session; the
  /// callback rebinds the owning OffloadClient. Unset = clients keep
  /// submitting to the old server (stragglers still conserve).
  void set_redirect(
      std::function<void(std::uint64_t, std::size_t)> redirect) {
    redirect_ = std::move(redirect);
  }

  /// Degradation hook: fired with true when the detector loses sight of a
  /// majority of the fleet (the router then freezes reroute/rebalance) and
  /// with false when quorum returns. The fleet wires this to
  /// core::OffloadClient::force_local.
  void set_on_degrade(std::function<void(bool)> on_degrade) {
    on_degrade_ = std::move(on_degrade);
  }

  /// Arms loss/delay/blackout on one server's heartbeat channel (plan must
  /// outlive the router; null detaches).
  void attach_heartbeat_faults(std::size_t server,
                               const fault::FaultPlan* plan);

  /// Arms loss/blackout on the migration interconnect. Requires a
  /// migration_timeout (a lost transfer must be discoverable).
  void attach_interconnect_faults(const fault::FaultPlan* plan);

  /// Spawns the heartbeat loop (call once, after sessions are wired).
  void start();

  /// Starts a live migration of `session` to `target` (a coroutine the
  /// heartbeat loop and tests spawn through the simulator). No-op when the
  /// session is already there or already moving.
  sim::Task migrate(std::uint64_t session, std::size_t target);

  std::size_t servers() const { return servers_.size(); }
  serve::EdgeServerFrontend& server(std::size_t i) { return *servers_[i]; }
  const serve::EdgeServerFrontend& server(std::size_t i) const {
    return *servers_[i];
  }
  std::size_t sessions() const { return bindings_.size(); }
  const SessionBinding& binding(std::uint64_t session) const;
  const RouterParams& params() const { return params_; }
  const HashRing& ring() const { return ring_; }

  /// The last snapshot that *arrived* per server (default-constructed
  /// before the first delivery; empty before the first heartbeat round).
  /// Decisions and the cluster audit read these — under heartbeat loss
  /// they are stale, which is the point.
  const std::vector<serve::LoadSnapshot>& last_heartbeat() const {
    return last_heartbeat_;
  }

  const FailureDetector& detector() const { return detector_; }
  const ControlLink& control_link(std::size_t server) const;

  /// The migration ledger, append-only in start order.
  const std::vector<MigrationRecord>& ledger() const { return ledger_; }

  std::uint64_t heartbeats() const { return heartbeats_; }
  std::uint64_t migrations() const { return migrations_; }
  std::uint64_t migrated_jobs() const { return migrated_jobs_; }
  std::uint64_t reroutes() const { return reroutes_; }
  /// Migrations that ended kAborted or kDropped (lost / timed out past the
  /// retry budget / cancelled because the target died mid-flight).
  std::uint64_t migrations_aborted() const { return migrations_aborted_; }
  /// Re-sends of a migration payload after a transfer timeout.
  std::uint64_t migration_retries() const { return migration_retries_; }
  /// Late transfer copies rejected (by the target's fence or the ledger).
  std::uint64_t late_imports_rejected() const {
    return late_imports_rejected_;
  }
  /// Late copies the target absorbed because nothing fenced them — only
  /// possible in the naive baseline; a double execution each.
  std::uint64_t zombie_imports() const { return zombie_imports_; }
  /// Jobs abandoned by dropped transfers (naive baseline only; always 0
  /// with return_to_source).
  std::uint64_t stranded_jobs() const { return stranded_jobs_; }
  /// Reroutes of sessions whose server was in fact alive (ground-truth
  /// instrumentation of false suspicion; the run stays correct, the
  /// reroute was merely unnecessary).
  std::uint64_t false_reroutes() const { return false_reroutes_; }
  /// Transitions into / out of the degraded (quorum-lost) state.
  std::uint64_t degrade_transitions() const { return degrade_transitions_; }
  bool degraded() const { return degraded_; }

  /// Queued jobs currently riding a migration transfer between servers —
  /// exported (counted migrated-out) but not yet imported. The cluster
  /// conservation audit balances them explicitly.
  std::size_t in_transit_jobs() const { return in_transit_jobs_; }

  /// Attaches telemetry: cluster.* counters (heartbeats, migrations,
  /// migrated_jobs, reroutes), per-server predicted-delay and queue-depth
  /// gauges refreshed each heartbeat, and migrate/reroute instants on a
  /// "cluster" trace track. Purely observational.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  sim::Task heartbeat_loop();
  void collect_heartbeat();
  void on_heartbeat(std::size_t server, const serve::LoadSnapshot& snapshot);
  void update_membership();
  void reroute_dead_sessions();
  void maybe_rebalance();
  sim::Task late_delivery(std::uint64_t id, std::uint64_t session,
                          std::size_t target, serve::SessionExport ex,
                          DurationNs wire);
  MigrationRecord* find_migration(std::uint64_t id);
  const MigrationRecord* active_migration(std::uint64_t session) const;
  /// Least-loaded usable server (ties: fewer homed sessions, lower index).
  std::size_t least_loaded_server(
      const std::vector<serve::LoadSnapshot>& loads) const;
  std::size_t usable_count() const;
  void redirect(std::uint64_t session, std::size_t server);

  sim::Simulator* sim_;
  std::vector<serve::EdgeServerFrontend*> servers_;
  RouterParams params_;
  HashRing ring_;
  std::vector<SessionBinding> bindings_;  ///< by cluster session id
  std::vector<std::size_t> homed_;        ///< sessions homed per server
  std::vector<serve::LoadSnapshot> last_heartbeat_;
  std::vector<ControlLink> links_;  ///< per-server heartbeat channel
  FailureDetector detector_;
  const fault::FaultPlan* interconnect_faults_ = nullptr;
  Rng rng_;  ///< migration loss sampling + retry jitter only
  std::function<void(std::uint64_t, std::size_t)> redirect_;
  std::function<void(bool)> on_degrade_;
  bool started_ = false;
  bool degraded_ = false;

  std::vector<MigrationRecord> ledger_;
  std::uint64_t next_migration_id_ = 0;

  std::uint64_t heartbeats_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t migrated_jobs_ = 0;
  std::uint64_t reroutes_ = 0;
  std::uint64_t migrations_aborted_ = 0;
  std::uint64_t migration_retries_ = 0;
  std::uint64_t late_imports_rejected_ = 0;
  std::uint64_t zombie_imports_ = 0;
  std::uint64_t stranded_jobs_ = 0;
  std::uint64_t false_reroutes_ = 0;
  std::uint64_t degrade_transitions_ = 0;
  std::size_t in_transit_jobs_ = 0;

  obs::Telemetry* telemetry_ = nullptr;
  obs::TrackId track_ = 0;
  obs::Counter* heartbeat_counter_ = nullptr;
  obs::Counter* migration_counter_ = nullptr;
  obs::Counter* migrated_jobs_counter_ = nullptr;
  obs::Counter* reroute_counter_ = nullptr;
};

}  // namespace lp::cluster
