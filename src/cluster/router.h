// ClusterRouter: the control plane of a multi-server edge cluster.
//
// One router fronts N serve::EdgeServerFrontend instances on the same sim
// clock. It is control-plane only — clients hold a direct binding to their
// current server and submit to it without a per-request hop; the router
// owns *where that binding points*:
//
//   * placement — a new session lands on a server chosen by the configured
//     policy: a consistent-hash ring over the cluster session id
//     (deterministic, join-order independent, minimal movement), or
//     least-loaded by predicted queue delay (heartbeat-driven);
//   * heartbeats — every heartbeat_period the router pulls one coherent
//     serve::LoadSnapshot per server (queue depth, predicted backlog,
//     in-flight, conservation counters), the same payload check::audit
//     verifies, and drives every decision off that stored view;
//   * crash reroute — sessions homed on a server that misses its
//     heartbeat (fail-stop crash) are re-placed on an alive server and
//     their clients redirected; the crash wiped the session state, so the
//     new home starts cold, exactly like a restart on the old one;
//   * live migration — when rebalancing is on and the predicted-delay skew
//     between the hottest and coldest alive servers exceeds the threshold,
//     the router exports the busiest session off the hot server (state
//     snapshot + every queued job, non-blocking: the in-flight dispatch
//     finishes where it is), holds the payload for a modeled interconnect
//     transfer, imports it on the cold server, and redirects the client.
//     No request is dropped or duplicated: jobs in transit are counted and
//     the cluster-wide conservation audit (check/invariants.h) balances
//     admitted against served + failed + queued + in-flight + in-transit
//     at every heartbeat. The non-blocking export/import shape follows the
//     Ceph MDS balancer's subtree export protocol.
//
// Everything is deterministic: decisions read stored snapshots, iteration
// is over index-ordered vectors, and the transfer delay is a pure function
// of the modeled payload size. Two same-seed runs are byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "obs/telemetry.h"
#include "serve/frontend.h"

namespace lp::cluster {

enum class Placement {
  kConsistentHash,  ///< static: ring over the cluster session id
  kLeastLoaded,     ///< dynamic: min predicted queue delay at open time
};

std::string placement_name(Placement placement);

struct RouterParams {
  Placement placement = Placement::kLeastLoaded;

  /// Heartbeat cadence: how often load snapshots are pulled and reroute /
  /// rebalance decisions run.
  DurationNs heartbeat_period = milliseconds(500);

  /// Live rebalancing: migrate sessions when load skew exceeds the
  /// threshold. Off = placement only (the static baselines).
  bool rebalance = false;

  /// Trigger: hottest-minus-coldest predicted queue delay (seconds) that
  /// arms a migration round.
  double skew_threshold_sec = 0.2;

  /// Migrations started per heartbeat round (1 = one careful move, then
  /// observe the effect on the next heartbeat).
  std::size_t max_migrations_per_round = 1;

  /// A session that just moved is pinned for this long (anti-thrash).
  DurationNs min_dwell = seconds(2);

  /// Modeled cluster interconnect for the migration payload.
  BitsPerSec migration_bandwidth = mbps(400);
  DurationNs migration_rtt = milliseconds(1);

  /// Virtual nodes per server on the consistent-hash ring.
  std::size_t vnodes = 64;
};

/// Where a cluster session currently lives. The local session id equals
/// the cluster session id on every server (the router opens the session on
/// all of them in lock-step), so an export/import pair never renumbers.
struct SessionBinding {
  std::size_t server = 0;
  bool migrating = false;   ///< an export/import is in flight
  TimeNs last_move = 0;     ///< when it last migrated (dwell pinning)
};

class ClusterRouter {
 public:
  /// The frontends must outlive the router. At least one server.
  ClusterRouter(sim::Simulator& sim,
                std::vector<serve::EdgeServerFrontend*> servers,
                RouterParams params);

  /// Places a new session per the policy and registers it on *every*
  /// server (so migration targets always have the registration; the local
  /// id equals the returned cluster id on each). The profile must outlive
  /// the router.
  std::uint64_t open_session(const core::GraphCostProfile& profile);

  /// The client-redirect hook: called as redirect(session, new_server)
  /// after a migration lands or a crash reroute re-homes the session; the
  /// callback rebinds the owning OffloadClient. Unset = clients keep
  /// submitting to the old server (stragglers still conserve).
  void set_redirect(
      std::function<void(std::uint64_t, std::size_t)> redirect) {
    redirect_ = std::move(redirect);
  }

  /// Spawns the heartbeat loop (call once, after sessions are wired).
  void start();

  /// Starts a live migration of `session` to `target` (a coroutine the
  /// heartbeat loop and tests spawn through the simulator). No-op when the
  /// session is already there or already moving.
  sim::Task migrate(std::uint64_t session, std::size_t target);

  std::size_t servers() const { return servers_.size(); }
  serve::EdgeServerFrontend& server(std::size_t i) { return *servers_[i]; }
  const serve::EdgeServerFrontend& server(std::size_t i) const {
    return *servers_[i];
  }
  std::size_t sessions() const { return bindings_.size(); }
  const SessionBinding& binding(std::uint64_t session) const;
  const RouterParams& params() const { return params_; }
  const HashRing& ring() const { return ring_; }

  /// The snapshots from the most recent heartbeat (empty before the
  /// first); decisions and the cluster audit read these.
  const std::vector<serve::LoadSnapshot>& last_heartbeat() const {
    return last_heartbeat_;
  }

  std::uint64_t heartbeats() const { return heartbeats_; }
  std::uint64_t migrations() const { return migrations_; }
  std::uint64_t migrated_jobs() const { return migrated_jobs_; }
  std::uint64_t reroutes() const { return reroutes_; }

  /// Queued jobs currently riding a migration transfer between servers —
  /// exported (counted migrated-out) but not yet imported. The cluster
  /// conservation audit balances them explicitly.
  std::size_t in_transit_jobs() const { return in_transit_jobs_; }

  /// Attaches telemetry: cluster.* counters (heartbeats, migrations,
  /// migrated_jobs, reroutes), per-server predicted-delay and queue-depth
  /// gauges refreshed each heartbeat, and migrate/reroute instants on a
  /// "cluster" trace track. Purely observational.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  sim::Task heartbeat_loop();
  void collect_heartbeat();
  void reroute_dead_sessions();
  void maybe_rebalance();
  /// Least-loaded alive server (ties: fewer homed sessions, lower index).
  std::size_t least_loaded_server(
      const std::vector<serve::LoadSnapshot>& loads) const;
  std::size_t alive_count(
      const std::vector<serve::LoadSnapshot>& loads) const;
  void redirect(std::uint64_t session, std::size_t server);

  sim::Simulator* sim_;
  std::vector<serve::EdgeServerFrontend*> servers_;
  RouterParams params_;
  HashRing ring_;
  std::vector<SessionBinding> bindings_;  ///< by cluster session id
  std::vector<std::size_t> homed_;        ///< sessions homed per server
  std::vector<serve::LoadSnapshot> last_heartbeat_;
  std::function<void(std::uint64_t, std::size_t)> redirect_;
  bool started_ = false;

  std::uint64_t heartbeats_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t migrated_jobs_ = 0;
  std::uint64_t reroutes_ = 0;
  std::size_t in_transit_jobs_ = 0;

  obs::Telemetry* telemetry_ = nullptr;
  obs::TrackId track_ = 0;
  obs::Counter* heartbeat_counter_ = nullptr;
  obs::Counter* migration_counter_ = nullptr;
  obs::Counter* migrated_jobs_counter_ = nullptr;
  obs::Counter* reroute_counter_ = nullptr;
};

}  // namespace lp::cluster
