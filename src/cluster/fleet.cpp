#include "cluster/fleet.h"

#include <cmath>
#include <memory>
#include <string>

#include "common/check.h"
#include "models/zoo.h"

namespace lp::cluster {

namespace {

struct ArrivalParams {
  DurationNs gap = 0;
  bool poisson = false;
};

sim::Task client_stream(sim::Simulator& sim, core::OffloadClient& client,
                        ArrivalParams arrivals, Rng rng,
                        std::vector<core::InferenceRecord>& out) {
  for (;;) {
    core::InferenceRecord rec;
    co_await client.infer(&rec);
    out.push_back(rec);
    DurationNs gap = arrivals.gap;
    if (arrivals.poisson && gap > 0)
      gap = std::max<DurationNs>(
          1, static_cast<DurationNs>(
                 rng.exponential(static_cast<double>(gap))));
    if (gap > 0) co_await sim.delay(gap);
  }
}

sim::Task audit_driver(
    sim::Simulator& sim, const ClusterRouter& router,
    const std::function<void(const ClusterRouter&, TimeNs)>& on_audit,
    DurationNs period) {
  for (;;) {
    co_await sim.delay(period);
    on_audit(router, sim.now());
  }
}

}  // namespace

ClusterResult run_cluster(const ClusterConfig& config,
                          const core::PredictorBundle& predictors) {
  LP_CHECK(config.servers >= 1);
  LP_CHECK(!config.tenants.empty());
  LP_CHECK(config.duration > 0);
  LP_CHECK(config.zipf_alpha >= 0.0);

  sim::Simulator sim;
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;

  // One GPU + scheduler + frontend per server.
  std::vector<std::unique_ptr<hw::GpuScheduler>> schedulers;
  std::vector<std::unique_ptr<serve::EdgeServerFrontend>> frontends;
  std::vector<serve::EdgeServerFrontend*> frontend_ptrs;
  for (std::size_t i = 0; i < config.servers; ++i) {
    schedulers.push_back(std::make_unique<hw::GpuScheduler>(sim));
    frontends.push_back(std::make_unique<serve::EdgeServerFrontend>(
        sim, *schedulers.back(), gpu, config.frontend, config.runtime,
        config.seed ^ (0xf00d + 0x9e3779b97f4a7c15ull * (i + 1))));
    if (config.telemetry != nullptr)
      frontends.back()->set_telemetry(config.telemetry,
                                      "server" + std::to_string(i));
    frontends.back()->start_gpu_watcher(config.watcher_period);
    if (i < config.server_faults.size() && !config.server_faults[i].empty())
      frontends.back()->attach_fault_plan(&config.server_faults[i]);
    frontend_ptrs.push_back(frontends.back().get());
  }

  ClusterRouter router(sim, frontend_ptrs, config.router);
  if (config.telemetry != nullptr) router.set_telemetry(config.telemetry);
  for (std::size_t i = 0;
       i < config.heartbeat_faults.size() && i < config.servers; ++i)
    if (!config.heartbeat_faults[i].empty())
      router.attach_heartbeat_faults(i, &config.heartbeat_faults[i]);
  if (!config.interconnect_faults.empty())
    router.attach_interconnect_faults(&config.interconnect_faults);

  struct TenantState {
    graph::Graph model;
    std::unique_ptr<core::GraphCostProfile> profile;
  };
  std::vector<std::unique_ptr<TenantState>> tenants;
  std::vector<std::unique_ptr<net::Link>> links;
  std::vector<std::unique_ptr<core::OffloadClient>> clients;

  ClusterResult result;
  result.warmup = config.warmup;
  result.duration = config.duration;
  std::size_t total_clients = 0;
  for (const serve::TenantSpec& spec : config.tenants) {
    LP_CHECK(spec.clients > 0);
    total_clients += static_cast<std::size_t>(spec.clients);
  }
  result.clients.reserve(total_clients);
  clients.reserve(total_clients);

  std::uint64_t index = 0;
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    const serve::TenantSpec& spec = config.tenants[t];
    result.tenant_names.push_back(spec.model);
    result.tenant_slo_sec.push_back(spec.slo_sec);
    auto state = std::unique_ptr<TenantState>(
        new TenantState{models::make_model(spec.model), nullptr});
    state->profile =
        std::make_unique<core::GraphCostProfile>(state->model, predictors);
    const core::GraphCostProfile& profile = *state->profile;
    tenants.push_back(std::move(state));

    core::RuntimeParams runtime = config.runtime;
    runtime.slo_sec = spec.slo_sec;
    for (int c = 0; c < spec.clients; ++c) {
      ++index;
      const std::uint64_t seed =
          config.seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
      links.push_back(std::make_unique<net::Link>(
          sim, spec.upload, spec.download, spec.rtt, seed ^ 0x71));

      // The router places the session; the client binds directly to its
      // home server (the router is control plane only — no data-path hop).
      const std::uint64_t session = router.open_session(profile);
      const std::size_t home = router.binding(session).server;
      clients.push_back(std::make_unique<core::OffloadClient>(
          sim, cpu, profile, *links.back(), router.server(home), spec.policy,
          runtime, seed ^ 0xc1, session));
      if (config.telemetry != nullptr) {
        std::string track = "t";
        track += std::to_string(t);
        track += '/';
        track += spec.model;
        track += '#';
        track += std::to_string(c);
        links.back()->set_telemetry(config.telemetry, track);
        clients.back()->set_telemetry(config.telemetry, track);
      }
      clients.back()->start_runtime_profiler(config.profiler_period);
      result.clients.push_back(serve::ClientTrace{t, {}});

      // Zipf-skewed think times: client c's gap scales by (c + 1)^alpha,
      // so the head of the population is hot and the tail cold.
      DurationNs gap = spec.request_gap;
      if (config.zipf_alpha > 0.0 && gap > 0)
        gap = std::max<DurationNs>(
            1, static_cast<DurationNs>(
                   static_cast<double>(gap) *
                   std::pow(static_cast<double>(c + 1), config.zipf_alpha)));
      sim.spawn(client_stream(sim, *clients.back(),
                              ArrivalParams{gap, spec.poisson_arrivals},
                              Rng(seed ^ 0xa1),
                              result.clients.back().records));
    }
  }

  // Redirect hook: cluster session ids are assigned in client-creation
  // order, so the session id indexes `clients` directly.
  router.set_redirect([&clients, &router](std::uint64_t session,
                                          std::size_t server) {
    clients[session]->rebind(router.server(server), session);
  });
  if (config.degrade_to_local)
    router.set_on_degrade([&clients](bool degraded) {
      for (auto& client : clients) client->force_local(degraded);
    });
  router.start();

  if (config.on_audit) {
    LP_CHECK(config.audit_period > 0);
    sim.spawn(
        audit_driver(sim, router, config.on_audit, config.audit_period));
  }

  sim.run_until(config.duration);
  if (config.on_audit) config.on_audit(router, sim.now());

  result.servers.reserve(config.servers);
  for (std::size_t i = 0; i < config.servers; ++i)
    result.servers.push_back(router.server(i).load_snapshot());
  result.heartbeats = router.heartbeats();
  result.migrations = router.migrations();
  result.migrated_jobs = router.migrated_jobs();
  result.reroutes = router.reroutes();
  result.aborted_migrations = router.migrations_aborted();
  result.migration_retries = router.migration_retries();
  result.late_imports_rejected = router.late_imports_rejected();
  result.zombie_imports = router.zombie_imports();
  result.stranded_jobs = router.stranded_jobs();
  result.false_reroutes = router.false_reroutes();
  result.degrade_transitions = router.degrade_transitions();
  for (const serve::LoadSnapshot& s : result.servers)
    result.fenced_jobs += s.fenced_jobs;
  result.death_events = router.detector().death_events();

  if (config.telemetry != nullptr) {
    auto& metrics = config.telemetry->metrics();
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
      std::string prefix = "cluster.t";
      prefix += std::to_string(t);
      prefix += '.';
      prefix += result.tenant_names[t];
      result.summarize(static_cast<int>(t)).publish(metrics, prefix);
    }
  }
  return result;
}

}  // namespace lp::cluster
