#include "cluster/router.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace lp::cluster {

std::string placement_name(Placement placement) {
  switch (placement) {
    case Placement::kConsistentHash:
      return "consistent-hash";
    case Placement::kLeastLoaded:
      return "least-loaded";
  }
  return "?";
}

ClusterRouter::ClusterRouter(sim::Simulator& sim,
                             std::vector<serve::EdgeServerFrontend*> servers,
                             RouterParams params)
    : sim_(&sim),
      servers_(std::move(servers)),
      params_(params),
      ring_(params.vnodes),
      homed_(servers_.size(), 0) {
  LP_CHECK(!servers_.empty());
  for (serve::EdgeServerFrontend* server : servers_)
    LP_CHECK(server != nullptr);
  for (std::size_t i = 0; i < servers_.size(); ++i) ring_.add_server(i);
}

std::uint64_t ClusterRouter::open_session(
    const core::GraphCostProfile& profile) {
  const std::uint64_t session = bindings_.size();
  // Register on every server in lock-step so the local id equals the
  // cluster id everywhere — a migration imports into a session that
  // already exists, and the id never needs translating.
  for (serve::EdgeServerFrontend* server : servers_) {
    const std::uint64_t local = server->open_session(profile);
    LP_CHECK(local == session);
  }

  std::size_t home = 0;
  switch (params_.placement) {
    case Placement::kConsistentHash:
      home = ring_.place(session);
      break;
    case Placement::kLeastLoaded: {
      // Live snapshots: placement happens at setup time, before the first
      // heartbeat. Every server carries the same registrations, so the
      // tie-break is the count of sessions *homed* here, which makes the
      // cold start round-robin.
      std::vector<serve::LoadSnapshot> loads;
      loads.reserve(servers_.size());
      for (const serve::EdgeServerFrontend* server : servers_)
        loads.push_back(server->load_snapshot());
      home = least_loaded_server(loads);
      break;
    }
  }
  bindings_.push_back(SessionBinding{home, false, 0});
  ++homed_[home];
  return session;
}

const SessionBinding& ClusterRouter::binding(std::uint64_t session) const {
  LP_CHECK(session < bindings_.size());
  return bindings_[session];
}

void ClusterRouter::start() {
  LP_CHECK_MSG(!started_, "router already started");
  started_ = true;
  sim_->spawn(heartbeat_loop());
}

sim::Task ClusterRouter::heartbeat_loop() {
  for (;;) {
    co_await sim_->delay(params_.heartbeat_period);
    collect_heartbeat();
    reroute_dead_sessions();
    if (params_.rebalance) maybe_rebalance();
  }
}

void ClusterRouter::collect_heartbeat() {
  last_heartbeat_.clear();
  last_heartbeat_.reserve(servers_.size());
  for (const serve::EdgeServerFrontend* server : servers_)
    last_heartbeat_.push_back(server->load_snapshot());
  ++heartbeats_;
  if (telemetry_ != nullptr) {
    heartbeat_counter_->add(1);
    auto& metrics = telemetry_->metrics();
    for (std::size_t i = 0; i < last_heartbeat_.size(); ++i) {
      const serve::LoadSnapshot& s = last_heartbeat_[i];
      const std::string prefix = "cluster.s" + std::to_string(i);
      metrics.gauge(prefix + ".predicted_delay_sec")
          .set(s.predicted_delay_sec);
      metrics.gauge(prefix + ".queue_depth")
          .set(static_cast<double>(s.queue_depth));
      if (auto* tr = telemetry_->trace())
        tr->counter(track_, "s" + std::to_string(i) + ".queue_depth",
                    sim_->now(), static_cast<double>(s.queue_depth));
    }
  }
}

std::size_t ClusterRouter::alive_count(
    const std::vector<serve::LoadSnapshot>& loads) const {
  std::size_t alive = 0;
  for (const serve::LoadSnapshot& s : loads)
    if (s.alive) ++alive;
  return alive;
}

std::size_t ClusterRouter::least_loaded_server(
    const std::vector<serve::LoadSnapshot>& loads) const {
  std::size_t best = loads.size();
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (!loads[i].alive) continue;
    if (best == loads.size()) {
      best = i;
      continue;
    }
    const double di = loads[i].predicted_delay_sec;
    const double db = loads[best].predicted_delay_sec;
    if (di != db) {
      if (di < db) best = i;
      continue;
    }
    if (homed_[i] < homed_[best]) best = i;  // ties: fewer homes, lower i
  }
  LP_CHECK_MSG(best < loads.size(), "no alive server to place on");
  return best;
}

void ClusterRouter::redirect(std::uint64_t session, std::size_t server) {
  if (redirect_) redirect_(session, server);
}

void ClusterRouter::reroute_dead_sessions() {
  if (alive_count(last_heartbeat_) == 0) return;  // total outage: wait
  const auto alive = [this](std::size_t s) {
    return last_heartbeat_[s].alive;
  };
  for (std::uint64_t session = 0; session < bindings_.size(); ++session) {
    SessionBinding& b = bindings_[session];
    if (b.migrating || last_heartbeat_[b.server].alive) continue;
    // The crash wiped the session state, so there is nothing to carry:
    // re-home per the placement policy and redirect the client. The new
    // server starts the session cold, exactly as a restart would.
    std::size_t target = 0;
    switch (params_.placement) {
      case Placement::kConsistentHash:
        target = ring_.place_if(session, alive);
        break;
      case Placement::kLeastLoaded:
        target = least_loaded_server(last_heartbeat_);
        break;
    }
    --homed_[b.server];
    b.server = target;
    b.last_move = sim_->now();
    ++homed_[target];
    ++reroutes_;
    if (telemetry_ != nullptr) {
      reroute_counter_->add(1);
      if (auto* tr = telemetry_->trace())
        tr->instant(track_, "reroute", sim_->now(),
                    obs::TraceArgs()
                        .arg("session", session)
                        .arg("server", target));
    }
    redirect(session, target);
  }
}

void ClusterRouter::maybe_rebalance() {
  if (alive_count(last_heartbeat_) < 2) return;
  std::size_t started = 0;
  while (started < params_.max_migrations_per_round) {
    // Hot and cold by predicted queue delay, alive servers only. Reading
    // the stored heartbeat keeps every decision a pure function of the
    // snapshot (determinism), at the price of acting on slightly stale
    // load — the same trade the Ceph MDS balancer makes.
    std::size_t hot = last_heartbeat_.size();
    std::size_t cold = last_heartbeat_.size();
    for (std::size_t i = 0; i < last_heartbeat_.size(); ++i) {
      if (!last_heartbeat_[i].alive) continue;
      if (hot == last_heartbeat_.size() ||
          last_heartbeat_[i].predicted_delay_sec >
              last_heartbeat_[hot].predicted_delay_sec)
        hot = i;
      if (cold == last_heartbeat_.size() ||
          last_heartbeat_[i].predicted_delay_sec <
              last_heartbeat_[cold].predicted_delay_sec)
        cold = i;
    }
    if (hot == cold) return;
    const double skew = last_heartbeat_[hot].predicted_delay_sec -
                        last_heartbeat_[cold].predicted_delay_sec;
    if (skew <= params_.skew_threshold_sec) return;

    // Victim: the session contributing the most queued work on the hot
    // server (ties: more submissions, then the lower id — deterministic).
    std::vector<std::size_t> queued(bindings_.size(), 0);
    for (const serve::QueuedJob& job : servers_[hot]->queue().jobs())
      ++queued[job.session];
    std::uint64_t victim = bindings_.size();
    for (std::uint64_t s = 0; s < bindings_.size(); ++s) {
      const SessionBinding& b = bindings_[s];
      if (b.server != hot || b.migrating) continue;
      if (sim_->now() - b.last_move < params_.min_dwell && b.last_move > 0)
        continue;
      if (queued[s] == 0) continue;  // nothing to move, nothing to gain
      if (victim == bindings_.size()) {
        victim = s;
        continue;
      }
      if (queued[s] != queued[victim]) {
        if (queued[s] > queued[victim]) victim = s;
        continue;
      }
      if (servers_[hot]->session_stats(s).submitted >
          servers_[hot]->session_stats(victim).submitted)
        victim = s;
    }
    if (victim == bindings_.size()) return;
    sim_->spawn(migrate(victim, cold));
    ++started;
    // A further round against the same (stale) snapshot picks the same
    // hot/cold pair but skips the now-migrating victim, so a larger
    // max_migrations_per_round moves the next-busiest sessions.
  }
}

sim::Task ClusterRouter::migrate(std::uint64_t session, std::size_t target) {
  LP_CHECK(session < bindings_.size());
  LP_CHECK(target < servers_.size());
  SessionBinding& b = bindings_[session];
  if (b.migrating || b.server == target) co_return;
  b.migrating = true;
  const std::size_t source = b.server;

  // Non-blocking export: state snapshot plus every queued job; the
  // in-flight dispatch (if any) finishes on the source. Stragglers the
  // client submits before its redirect land on the source and are served
  // there against the reset (cold) session state.
  serve::SessionExport ex = servers_[source]->export_session(session);
  const std::size_t jobs = ex.jobs.size();
  in_transit_jobs_ += jobs;
  ++migrations_;
  migrated_jobs_ += jobs;
  if (telemetry_ != nullptr) {
    migration_counter_->add(1);
    migrated_jobs_counter_->add(static_cast<std::int64_t>(jobs));
    if (auto* tr = telemetry_->trace())
      tr->instant(track_, "migrate-begin", sim_->now(),
                  obs::TraceArgs()
                      .arg("session", session)
                      .arg("from", source)
                      .arg("to", target)
                      .arg("jobs", jobs)
                      .arg("bytes", ex.bytes));
  }

  // Modeled interconnect transfer of the payload.
  co_await sim_->delay(params_.migration_rtt +
                       transfer_time(ex.bytes, params_.migration_bandwidth));

  // Hand-off is atomic at this suspension point: jobs leave the in-transit
  // ledger in the same instant they enter the target's counters, so the
  // cluster conservation audit balances at every observable time.
  in_transit_jobs_ -= jobs;
  servers_[target]->import_session(session, std::move(ex));
  --homed_[source];
  b.server = target;
  b.last_move = sim_->now();
  b.migrating = false;
  ++homed_[target];
  if (telemetry_ != nullptr) {
    if (auto* tr = telemetry_->trace())
      tr->instant(track_, "migrate-end", sim_->now(),
                  obs::TraceArgs()
                      .arg("session", session)
                      .arg("to", target)
                      .arg("jobs", jobs));
  }
  redirect(session, target);
}

void ClusterRouter::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  auto& metrics = telemetry_->metrics();
  heartbeat_counter_ = &metrics.counter("cluster.heartbeats");
  migration_counter_ = &metrics.counter("cluster.migrations");
  migrated_jobs_counter_ = &metrics.counter("cluster.migrated_jobs");
  reroute_counter_ = &metrics.counter("cluster.reroutes");
  if (auto* tr = telemetry_->trace()) track_ = tr->track("cluster");
}

}  // namespace lp::cluster
