#include "cluster/router.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace lp::cluster {

std::string placement_name(Placement placement) {
  switch (placement) {
    case Placement::kConsistentHash:
      return "consistent-hash";
    case Placement::kLeastLoaded:
      return "least-loaded";
  }
  return "?";
}

ClusterRouter::ClusterRouter(sim::Simulator& sim,
                             std::vector<serve::EdgeServerFrontend*> servers,
                             RouterParams params)
    : sim_(&sim),
      servers_(std::move(servers)),
      params_(params),
      ring_(params.vnodes),
      homed_(servers_.size(), 0),
      detector_(servers_.size(), params.detector, params.heartbeat_period),
      rng_(params.control_seed) {
  LP_CHECK(!servers_.empty());
  for (serve::EdgeServerFrontend* server : servers_)
    LP_CHECK(server != nullptr);
  for (std::size_t i = 0; i < servers_.size(); ++i) ring_.add_server(i);
  links_.reserve(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i)
    links_.emplace_back(sim, params_.control_delay,
                        params_.control_seed ^
                            (0x9e3779b97f4a7c15ull *
                             (static_cast<std::uint64_t>(i) + 1)));
}

void ClusterRouter::attach_heartbeat_faults(std::size_t server,
                                            const fault::FaultPlan* plan) {
  LP_CHECK(server < links_.size());
  links_[server].attach_faults(plan);
}

void ClusterRouter::attach_interconnect_faults(const fault::FaultPlan* plan) {
  LP_CHECK_MSG(plan == nullptr || params_.migration_timeout > 0,
               "a lossy interconnect requires a migration timeout");
  interconnect_faults_ = plan;
}

const ControlLink& ClusterRouter::control_link(std::size_t server) const {
  LP_CHECK(server < links_.size());
  return links_[server];
}

std::uint64_t ClusterRouter::open_session(
    const core::GraphCostProfile& profile) {
  const std::uint64_t session = bindings_.size();
  // Register on every server in lock-step so the local id equals the
  // cluster id everywhere — a migration imports into a session that
  // already exists, and the id never needs translating.
  for (serve::EdgeServerFrontend* server : servers_) {
    const std::uint64_t local = server->open_session(profile);
    LP_CHECK(local == session);
  }

  std::size_t home = 0;
  switch (params_.placement) {
    case Placement::kConsistentHash:
      home = ring_.place(session);
      break;
    case Placement::kLeastLoaded: {
      // Live snapshots: placement happens at setup time, before the first
      // heartbeat. Every server carries the same registrations, so the
      // tie-break is the count of sessions *homed* here, which makes the
      // cold start round-robin.
      std::vector<serve::LoadSnapshot> loads;
      loads.reserve(servers_.size());
      for (const serve::EdgeServerFrontend* server : servers_)
        loads.push_back(server->load_snapshot(params_.heartbeat_period));
      home = least_loaded_server(loads);
      break;
    }
  }
  bindings_.push_back(SessionBinding{home, false, 0, 0});
  ++homed_[home];
  return session;
}

const SessionBinding& ClusterRouter::binding(std::uint64_t session) const {
  LP_CHECK(session < bindings_.size());
  return bindings_[session];
}

void ClusterRouter::start() {
  LP_CHECK_MSG(!started_, "router already started");
  started_ = true;
  detector_.arm(sim_->now());
  sim_->spawn(heartbeat_loop());
}

sim::Task ClusterRouter::heartbeat_loop() {
  for (;;) {
    co_await sim_->delay(params_.heartbeat_period);
    collect_heartbeat();
    update_membership();
    // Quorum lost: the picture is mostly dark, and rerouting or migrating
    // against it is how split-brain thrash starts. Freeze; the clients are
    // on local fallback via on_degrade.
    if (degraded_) continue;
    reroute_dead_sessions();
    if (params_.rebalance) maybe_rebalance();
  }
}

void ClusterRouter::collect_heartbeat() {
  if (last_heartbeat_.size() != servers_.size())
    last_heartbeat_.resize(servers_.size());
  // Heartbeats forecast one refresh period ahead: the snapshot steers
  // decisions until the next heartbeat lands.
  for (std::size_t i = 0; i < servers_.size(); ++i)
    links_[i].send(servers_[i]->load_snapshot(params_.heartbeat_period),
                   [this, i](const serve::LoadSnapshot& snapshot) {
                     on_heartbeat(i, snapshot);
                   });
  ++heartbeats_;
  detector_.tick(sim_->now());
  if (telemetry_ != nullptr) {
    heartbeat_counter_->add(1);
    auto& metrics = telemetry_->metrics();
    for (std::size_t i = 0; i < last_heartbeat_.size(); ++i) {
      const serve::LoadSnapshot& s = last_heartbeat_[i];
      const std::string prefix = "cluster.s" + std::to_string(i);
      metrics.gauge(prefix + ".predicted_delay_sec")
          .set(s.predicted_delay_sec);
      metrics.gauge(prefix + ".forecast_delay_sec").set(s.signal.backlog_sec);
      metrics.gauge(prefix + ".queue_depth")
          .set(static_cast<double>(s.queue_depth));
      if (auto* tr = telemetry_->trace())
        tr->counter(track_, "s" + std::to_string(i) + ".queue_depth",
                    sim_->now(), static_cast<double>(s.queue_depth));
    }
  }
}

void ClusterRouter::on_heartbeat(std::size_t server,
                                 const serve::LoadSnapshot& snapshot) {
  const bool was_dead = detector_.health(server) == Health::kDead;
  last_heartbeat_[server] = snapshot;
  detector_.heartbeat(server, sim_->now(), snapshot.alive);
  if (params_.detector.mode != DetectorParams::Mode::kOracle && was_dead &&
      snapshot.alive) {
    // A presumed-dead server is back — so it may never have crashed at
    // all. Every session that was rerouted away while it was dark is
    // fenced at its current binding epoch: queued zombies die typed, late
    // completions and stale state bounce, and conservation holds even
    // under false suspicion.
    for (std::uint64_t s = 0; s < bindings_.size(); ++s) {
      if (bindings_[s].server == server || bindings_[s].epoch == 0) continue;
      servers_[server]->fence_session(s, bindings_[s].epoch);
    }
  }
}

void ClusterRouter::update_membership() {
  std::size_t visible = 0;
  for (std::size_t i = 0; i < servers_.size(); ++i)
    if (!detector_.dead(i)) ++visible;
  const bool degraded = visible * 2 < servers_.size();
  if (degraded == degraded_) return;
  degraded_ = degraded;
  ++degrade_transitions_;
  if (telemetry_ != nullptr) {
    if (auto* tr = telemetry_->trace())
      tr->instant(track_, degraded ? "degrade" : "recover", sim_->now(),
                  obs::TraceArgs().arg("visible", visible));
  }
  if (on_degrade_) on_degrade_(degraded);
}

std::size_t ClusterRouter::usable_count() const {
  std::size_t usable = 0;
  for (std::size_t i = 0; i < servers_.size(); ++i)
    if (detector_.usable(i)) ++usable;
  return usable;
}

std::size_t ClusterRouter::least_loaded_server(
    const std::vector<serve::LoadSnapshot>& loads) const {
  std::size_t best = loads.size();
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (!loads[i].alive || !detector_.usable(i)) continue;
    if (best == loads.size()) {
      best = i;
      continue;
    }
    // Forecast delay, not the instantaneous one: placement pays off over
    // the coming heartbeat period. The last-value default makes this the
    // reactive reading, bit for bit.
    const double di = loads[i].signal.backlog_sec;
    const double db = loads[best].signal.backlog_sec;
    if (di != db) {
      if (di < db) best = i;
      continue;
    }
    if (homed_[i] < homed_[best]) best = i;  // ties: fewer homes, lower i
  }
  LP_CHECK_MSG(best < loads.size(), "no alive server to place on");
  return best;
}

void ClusterRouter::redirect(std::uint64_t session, std::size_t server) {
  if (redirect_) redirect_(session, server);
}

MigrationRecord* ClusterRouter::find_migration(std::uint64_t id) {
  for (auto it = ledger_.rbegin(); it != ledger_.rend(); ++it)
    if (it->id == id) return &*it;
  return nullptr;
}

const MigrationRecord* ClusterRouter::active_migration(
    std::uint64_t session) const {
  for (auto it = ledger_.rbegin(); it != ledger_.rend(); ++it)
    if (it->session == session &&
        it->state == MigrationRecord::State::kInFlight)
      return &*it;
  return nullptr;
}

void ClusterRouter::reroute_dead_sessions() {
  if (usable_count() == 0) return;  // nowhere to go: wait for daylight
  const auto target_ok = [this](std::size_t s) {
    return detector_.usable(s);
  };
  for (std::uint64_t session = 0; session < bindings_.size(); ++session) {
    SessionBinding& b = bindings_[session];
    if (b.migrating) {
      // A migration whose *target* died mid-transfer must not wait out the
      // full timeout ladder against a corpse: bump the fencing epoch,
      // which the migrate coroutine reads as a cancellation token at its
      // next suspension and aborts back to the source.
      const MigrationRecord* m = active_migration(session);
      if (m != nullptr && detector_.dead(m->target) && b.epoch == m->epoch)
        ++b.epoch;
      continue;
    }
    if (!detector_.dead(b.server)) continue;
    // Ground-truth instrumentation only: a falsely-suspected home makes
    // this reroute unnecessary, never incorrect (fencing keeps it safe).
    if (servers_[b.server]->alive()) ++false_reroutes_;
    // The crash wiped the session state, so there is nothing to carry:
    // re-home per the placement policy and redirect the client. The new
    // server starts the session cold, exactly as a restart would. The
    // epoch bump fences whatever the abandoned placement still holds.
    ++b.epoch;
    std::size_t target = 0;
    switch (params_.placement) {
      case Placement::kConsistentHash:
        target = ring_.place_if(session, target_ok);
        break;
      case Placement::kLeastLoaded:
        target = least_loaded_server(last_heartbeat_);
        break;
    }
    --homed_[b.server];
    b.server = target;
    b.last_move = sim_->now();
    ++homed_[target];
    ++reroutes_;
    if (telemetry_ != nullptr) {
      reroute_counter_->add(1);
      if (auto* tr = telemetry_->trace())
        tr->instant(track_, "reroute", sim_->now(),
                    obs::TraceArgs()
                        .arg("session", session)
                        .arg("server", target));
    }
    redirect(session, target);
  }
}

void ClusterRouter::maybe_rebalance() {
  if (usable_count() < 2) return;
  std::size_t started = 0;
  while (started < params_.max_migrations_per_round) {
    // Hot and cold by predicted queue delay, usable servers only. Reading
    // the stored heartbeat keeps every decision a pure function of the
    // snapshot (determinism), at the price of acting on slightly stale
    // load — the same trade the Ceph MDS balancer makes.
    std::size_t hot = last_heartbeat_.size();
    std::size_t cold = last_heartbeat_.size();
    for (std::size_t i = 0; i < last_heartbeat_.size(); ++i) {
      if (!last_heartbeat_[i].alive || !detector_.usable(i)) continue;
      if (hot == last_heartbeat_.size() ||
          last_heartbeat_[i].signal.backlog_sec >
              last_heartbeat_[hot].signal.backlog_sec)
        hot = i;
      if (cold == last_heartbeat_.size() ||
          last_heartbeat_[i].signal.backlog_sec <
              last_heartbeat_[cold].signal.backlog_sec)
        cold = i;
    }
    if (hot == cold) return;
    const double skew = last_heartbeat_[hot].signal.backlog_sec -
                        last_heartbeat_[cold].signal.backlog_sec;
    if (skew <= params_.skew_threshold_sec) return;

    // Victim: the session contributing the most queued work on the hot
    // server (ties: more submissions, then the lower id — deterministic).
    std::vector<std::size_t> queued(bindings_.size(), 0);
    for (const serve::QueuedJob& job : servers_[hot]->queue().jobs())
      ++queued[job.session];
    std::uint64_t victim = bindings_.size();
    for (std::uint64_t s = 0; s < bindings_.size(); ++s) {
      const SessionBinding& b = bindings_[s];
      if (b.server != hot || b.migrating) continue;
      if (sim_->now() - b.last_move < params_.min_dwell && b.last_move > 0)
        continue;
      if (queued[s] == 0) continue;  // nothing to move, nothing to gain
      if (victim == bindings_.size()) {
        victim = s;
        continue;
      }
      if (queued[s] != queued[victim]) {
        if (queued[s] > queued[victim]) victim = s;
        continue;
      }
      if (servers_[hot]->session_stats(s).submitted >
          servers_[hot]->session_stats(victim).submitted)
        victim = s;
    }
    if (victim == bindings_.size()) return;
    sim_->spawn(migrate(victim, cold));
    ++started;
    // A further round against the same (stale) snapshot picks the same
    // hot/cold pair but skips the now-migrating victim, so a larger
    // max_migrations_per_round moves the next-busiest sessions.
  }
}

sim::Task ClusterRouter::migrate(std::uint64_t session, std::size_t target) {
  LP_CHECK(session < bindings_.size());
  LP_CHECK(target < servers_.size());
  SessionBinding& b = bindings_[session];
  if (b.migrating || b.server == target) co_return;
  b.migrating = true;
  const std::size_t source = b.server;
  // The transfer's fencing epoch. A concurrent bump (the reroute loop saw
  // the target die) doubles as the cancellation token.
  const std::uint64_t epoch = ++b.epoch;

  // Non-blocking export: state snapshot plus every queued job; the
  // in-flight dispatch (if any) finishes on the source. Stragglers the
  // client submits before its redirect land on the source and are served
  // there against the reset (cold) session state.
  serve::SessionExport ex = servers_[source]->export_session(session);
  ex.epoch = epoch;
  const std::size_t jobs = ex.jobs.size();
  in_transit_jobs_ += jobs;
  ++migrations_;
  migrated_jobs_ += jobs;
  const std::uint64_t id = next_migration_id_++;
  ledger_.push_back(MigrationRecord{id, session, epoch, source, target, jobs,
                                    MigrationRecord::State::kInFlight, 0});
  if (telemetry_ != nullptr) {
    migration_counter_->add(1);
    migrated_jobs_counter_->add(static_cast<std::int64_t>(jobs));
    if (auto* tr = telemetry_->trace())
      tr->instant(track_, "migrate-begin", sim_->now(),
                  obs::TraceArgs()
                      .arg("session", session)
                      .arg("from", source)
                      .arg("to", target)
                      .arg("jobs", jobs)
                      .arg("bytes", ex.bytes));
  }

  bool arrived = false;
  for (int attempt = 0;; ++attempt) {
    find_migration(id)->attempts = attempt + 1;
    // Sample the interconnect at the send instant: a blackout or sampled
    // loss silently eats the payload, and the router only learns at the
    // transfer timeout (attach_interconnect_faults requires one).
    bool lost = false;
    if (interconnect_faults_ != nullptr) {
      if (interconnect_faults_->link_down(sim_->now())) {
        lost = true;
      } else {
        const double p = interconnect_faults_->loss_prob(sim_->now());
        if (p > 0.0 && rng_.uniform() < p) lost = true;
      }
    }
    const DurationNs wire =
        params_.migration_rtt +
        transfer_time(ex.bytes, params_.migration_bandwidth);
    const bool late =
        params_.migration_timeout > 0 && wire > params_.migration_timeout;
    if (!lost && !late) {
      // Modeled interconnect transfer of the payload.
      co_await sim_->delay(wire);
      if (b.epoch != epoch) break;  // cancelled mid-flight
      arrived = true;
      break;
    }
    if (!late) {
      // Lost outright: nothing will arrive.
    } else if (!lost) {
      // Merely slow: the payload still lands on the wire's schedule, long
      // after this attempt is written off — as a zombie the target (or
      // the ledger) must reject.
      sim_->spawn(late_delivery(id, session, target, ex, wire));
    }
    co_await sim_->delay(params_.migration_timeout);
    if (b.epoch != epoch) break;
    if (attempt >= params_.migration_max_retries) break;
    ++migration_retries_;
    co_await sim_->delay(params_.migration_backoff.delay(attempt + 1, rng_));
    if (b.epoch != epoch) break;
  }

  if (arrived) {
    // Hand-off is atomic at this suspension point: jobs leave the
    // in-transit ledger in the same instant they enter the target's
    // counters, so the cluster conservation audit balances at every
    // observable time.
    if (servers_[target]->import_session(session, std::move(ex))) {
      in_transit_jobs_ -= jobs;
      find_migration(id)->state = MigrationRecord::State::kCommitted;
      --homed_[source];
      b.server = target;
      b.last_move = sim_->now();
      b.migrating = false;
      ++homed_[target];
      if (telemetry_ != nullptr) {
        if (auto* tr = telemetry_->trace())
          tr->instant(track_, "migrate-end", sim_->now(),
                      obs::TraceArgs()
                          .arg("session", session)
                          .arg("to", target)
                          .arg("jobs", jobs));
      }
      redirect(session, target);
      co_return;
    }
    // The target fenced the payload (a newer epoch superseded it while it
    // was in flight): fall through to the abort path. import_session
    // touched nothing, so this coroutine still owns the jobs — except the
    // move left `ex` unspecified, so it must not be re-imported from here.
    // That cannot happen: a fence newer than `epoch` implies b.epoch moved
    // past `epoch` too, and the cancellation checks above would have
    // broken out before reaching the import. Assert it.
    LP_CHECK_MSG(false, "import rejected an epoch the router never fenced");
  }

  ++migrations_aborted_;
  MigrationRecord* m = find_migration(id);
  if (params_.return_to_source) {
    m->state = MigrationRecord::State::kAborted;
    // Fence the target at a fresh epoch so any late copy of this transfer
    // bounces on arrival, then settle the jobs back at the source. A dead
    // source fails them typed (kServerDown) — the clients' retry/fallback
    // path owns them either way; nothing strands.
    const std::uint64_t fence = b.epoch == epoch ? ++b.epoch : b.epoch;
    servers_[target]->fence_session(session, fence);
    ex.epoch = fence;
    in_transit_jobs_ -= jobs;
    servers_[source]->import_session(session, std::move(ex));
    b.migrating = false;
    if (telemetry_ != nullptr) {
      if (auto* tr = telemetry_->trace())
        tr->instant(track_, "migrate-abort", sim_->now(),
                    obs::TraceArgs()
                        .arg("session", session)
                        .arg("back_to", source)
                        .arg("jobs", jobs));
    }
  } else {
    // Naive baseline: the payload is simply gone. Its jobs are stranded —
    // admitted but never settled — which is exactly the loss the chaos
    // bench measures the fencing path against.
    m->state = MigrationRecord::State::kDropped;
    in_transit_jobs_ -= jobs;
    stranded_jobs_ += jobs;
    b.migrating = false;
  }
}

sim::Task ClusterRouter::late_delivery(std::uint64_t id,
                                       std::uint64_t session,
                                       std::size_t target,
                                       serve::SessionExport ex,
                                       DurationNs wire) {
  // The slow copy is still on the wire: it lands at the full transfer
  // time, long after the router wrote the attempt off.
  co_await sim_->delay(wire);
  const MigrationRecord* m = find_migration(id);
  const std::size_t jobs = ex.jobs.size();
  if (m->state == MigrationRecord::State::kAborted ||
      m->state == MigrationRecord::State::kDropped) {
    // Robust mode fenced the target when it aborted, so the zombie bounces
    // off the epoch check. The naive baseline fences nothing — the target
    // absorbs a duplicate of jobs the clients already recovered, the
    // double execution the bench reports.
    if (servers_[target]->import_session(session, std::move(ex))) {
      zombie_imports_ += jobs;
      if (telemetry_ != nullptr) {
        if (auto* tr = telemetry_->trace())
          tr->instant(track_, "zombie-import", sim_->now(),
                      obs::TraceArgs()
                          .arg("session", session)
                          .arg("jobs", jobs));
      }
    } else {
      ++late_imports_rejected_;
    }
    co_return;
  }
  // A retry of the same migration is still in flight — or already
  // committed — under the same epoch; the frontend fence cannot tell the
  // copies apart, so the ledger dedups at the router.
  ++late_imports_rejected_;
}

void ClusterRouter::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  auto& metrics = telemetry_->metrics();
  heartbeat_counter_ = &metrics.counter("cluster.heartbeats");
  migration_counter_ = &metrics.counter("cluster.migrations");
  migrated_jobs_counter_ = &metrics.counter("cluster.migrated_jobs");
  reroute_counter_ = &metrics.counter("cluster.reroutes");
  if (auto* tr = telemetry_->trace()) track_ = tr->track("cluster");
}

}  // namespace lp::cluster
