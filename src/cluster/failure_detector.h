// Suspicion-based failure detection for the cluster control plane.
//
// The router cannot read ground truth: heartbeats arrive over a lossy,
// delayed ControlLink, so "I have not heard from server 3" is ambiguous
// between a crash, a partition, and plain bad luck. The detector turns the
// heartbeat arrival stream into an explicit health state per server,
//
//     kAlive  ->  kSuspect  ->  kDead
//
// with recovery back to kAlive on any delivered heartbeat that reports the
// server up. A kSuspect server is excluded from *new* placement and from
// migration targets but keeps its sessions; only kDead triggers reroute.
// Three modes:
//   * kOracle   — trust the last delivered snapshot's alive flag verbatim
//     (the PR-6 behavior; exact when the transport is lossless, and the
//     chaos bench's naive baseline when it is not);
//   * kDeadline — a server that misses `suspect_misses` consecutive
//     heartbeat deadlines is suspected, `dead_misses` is declared dead;
//   * kPhi      — phi-accrual (Hayashibara et al.): phi(t) =
//     0.4343 * (t - last_seen) / mean_interarrival against the observed
//     inter-arrival window, with suspect/dead thresholds. Adapts to the
//     channel: a chronically lossy link stretches the mean, so the same
//     gap accrues suspicion more slowly than on a clean link.
// Transitions into kDead are recorded with their timestamps so the chaos
// bench can measure time-to-detect against the scripted crash schedule.
// Deterministic: pure function of the delivered heartbeat stream.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"

namespace lp::cluster {

enum class Health : std::uint8_t { kAlive, kSuspect, kDead };

std::string health_name(Health health);

struct DetectorParams {
  enum class Mode : std::uint8_t { kOracle, kDeadline, kPhi };
  Mode mode = Mode::kOracle;

  /// kDeadline: consecutive missed heartbeat periods before suspicion /
  /// declared death (dead_misses >= suspect_misses).
  int suspect_misses = 2;
  int dead_misses = 4;

  /// kPhi: suspicion thresholds. phi = 1 is a gap of ~2.3x the mean
  /// inter-arrival, phi = 2 is ~4.6x.
  double suspect_phi = 1.0;
  double dead_phi = 2.0;

  /// kPhi: sliding window of observed heartbeat inter-arrivals.
  std::size_t interarrival_window = 8;
};

std::string detector_mode_name(DetectorParams::Mode mode);

class FailureDetector {
 public:
  FailureDetector(std::size_t servers, DetectorParams params,
                  DurationNs heartbeat_period);

  /// Baselines every server's last-seen clock (call when the heartbeat
  /// loop starts, so a server whose first heartbeats are lost accrues
  /// suspicion from the start of the run, not from time 0).
  void arm(TimeNs now);

  /// A heartbeat from `server` was *delivered* at `now` carrying the
  /// server's own alive flag (false = the server reports itself crashed,
  /// which is authoritative in every mode).
  void heartbeat(std::size_t server, TimeNs now, bool reported_alive);

  /// Re-evaluates every server's suspicion at `now` (the router calls this
  /// once per heartbeat round, after the sends).
  void tick(TimeNs now);

  Health health(std::size_t server) const;
  /// kAlive: eligible as a placement / migration / reroute target.
  bool usable(std::size_t server) const {
    return health(server) == Health::kAlive;
  }
  bool dead(std::size_t server) const {
    return health(server) == Health::kDead;
  }

  TimeNs last_seen(std::size_t server) const;

  /// Current phi-accrual suspicion level (kPhi mode; 0 when just heard).
  double phi(std::size_t server, TimeNs now) const;

  std::size_t servers() const { return views_.size(); }
  const DetectorParams& params() const { return params_; }

  /// Transitions into kSuspect / kDead since construction.
  std::uint64_t suspicions() const { return suspicions_; }
  std::uint64_t deaths() const { return deaths_; }

  /// Every transition into kDead as (server, time) — the chaos bench
  /// subtracts the scripted crash instants to report time-to-detect.
  const std::vector<std::pair<std::size_t, TimeNs>>& death_events() const {
    return death_events_;
  }

 private:
  struct ServerView {
    Health health = Health::kAlive;
    TimeNs last_seen = 0;
    bool reported_dead = false;  ///< last delivered snapshot said !alive
    std::vector<double> intervals_sec;  ///< ring buffer (kPhi)
    std::size_t next_interval = 0;
  };

  void transition(std::size_t server, Health to, TimeNs now);
  double mean_interval_sec(const ServerView& view) const;

  DetectorParams params_;
  DurationNs period_;
  std::vector<ServerView> views_;
  std::uint64_t suspicions_ = 0;
  std::uint64_t deaths_ = 0;
  std::vector<std::pair<std::size_t, TimeNs>> death_events_;
};

}  // namespace lp::cluster
