#include "cluster/failure_detector.h"

#include "common/check.h"

namespace lp::cluster {

std::string health_name(Health health) {
  switch (health) {
    case Health::kAlive:
      return "alive";
    case Health::kSuspect:
      return "suspect";
    case Health::kDead:
      return "dead";
  }
  return "unknown";
}

std::string detector_mode_name(DetectorParams::Mode mode) {
  switch (mode) {
    case DetectorParams::Mode::kOracle:
      return "oracle";
    case DetectorParams::Mode::kDeadline:
      return "deadline";
    case DetectorParams::Mode::kPhi:
      return "phi";
  }
  return "unknown";
}

FailureDetector::FailureDetector(std::size_t servers, DetectorParams params,
                                 DurationNs heartbeat_period)
    : params_(params), period_(heartbeat_period), views_(servers) {
  LP_CHECK(servers > 0);
  LP_CHECK(period_ > 0);
  LP_CHECK(params_.suspect_misses >= 1);
  LP_CHECK(params_.dead_misses >= params_.suspect_misses);
  LP_CHECK(params_.suspect_phi > 0.0);
  LP_CHECK(params_.dead_phi >= params_.suspect_phi);
  LP_CHECK(params_.interarrival_window >= 1);
  for (ServerView& view : views_) {
    // Seed the phi window with the nominal period so the very first gap is
    // judged against a sane baseline rather than dividing by zero.
    view.intervals_sec.assign(1, to_seconds(period_));
  }
}

void FailureDetector::arm(TimeNs now) {
  for (ServerView& view : views_) view.last_seen = now;
}

void FailureDetector::heartbeat(std::size_t server, TimeNs now,
                                bool reported_alive) {
  LP_CHECK(server < views_.size());
  ServerView& view = views_[server];
  if (!reported_alive) {
    // The server itself says it is down: authoritative in every mode.
    view.reported_dead = true;
    view.last_seen = now;
    if (view.health != Health::kDead) transition(server, Health::kDead, now);
    return;
  }
  view.reported_dead = false;
  if (params_.mode == DetectorParams::Mode::kPhi && now > view.last_seen) {
    const double interval = to_seconds(now - view.last_seen);
    if (view.intervals_sec.size() < params_.interarrival_window) {
      view.intervals_sec.push_back(interval);
    } else {
      view.intervals_sec[view.next_interval] = interval;
      view.next_interval =
          (view.next_interval + 1) % params_.interarrival_window;
    }
  }
  view.last_seen = now;
  if (view.health != Health::kAlive) transition(server, Health::kAlive, now);
}

void FailureDetector::tick(TimeNs now) {
  if (params_.mode == DetectorParams::Mode::kOracle) return;
  for (std::size_t i = 0; i < views_.size(); ++i) {
    ServerView& view = views_[i];
    if (view.reported_dead) continue;  // pinned dead until it reports back
    Health verdict = Health::kAlive;
    if (params_.mode == DetectorParams::Mode::kDeadline) {
      const std::int64_t misses = (now - view.last_seen) / period_;
      if (misses >= params_.dead_misses) {
        verdict = Health::kDead;
      } else if (misses >= params_.suspect_misses) {
        verdict = Health::kSuspect;
      }
    } else {
      const double level = phi(i, now);
      if (level >= params_.dead_phi) {
        verdict = Health::kDead;
      } else if (level >= params_.suspect_phi) {
        verdict = Health::kSuspect;
      }
    }
    if (verdict != view.health) transition(i, verdict, now);
  }
}

Health FailureDetector::health(std::size_t server) const {
  LP_CHECK(server < views_.size());
  return views_[server].health;
}

TimeNs FailureDetector::last_seen(std::size_t server) const {
  LP_CHECK(server < views_.size());
  return views_[server].last_seen;
}

double FailureDetector::phi(std::size_t server, TimeNs now) const {
  LP_CHECK(server < views_.size());
  const ServerView& view = views_[server];
  if (now <= view.last_seen) return 0.0;
  const double gap = to_seconds(now - view.last_seen);
  const double mean = mean_interval_sec(view);
  // phi-accrual under an exponential arrival model: phi(t) =
  // -log10(P(gap > t)) = t / (mean * ln 10).
  return 0.4342944819032518 * gap / mean;
}

void FailureDetector::transition(std::size_t server, Health to, TimeNs now) {
  views_[server].health = to;
  if (to == Health::kSuspect) ++suspicions_;
  if (to == Health::kDead) {
    ++deaths_;
    death_events_.emplace_back(server, now);
  }
}

double FailureDetector::mean_interval_sec(const ServerView& view) const {
  double sum = 0.0;
  for (double interval : view.intervals_sec) sum += interval;
  return sum / static_cast<double>(view.intervals_sec.size());
}

}  // namespace lp::cluster
