// run_cluster(): the multi-server testbed — N edge servers, one
// ClusterRouter, and a (optionally Zipf-skewed) tenant population.
//
// The single-server run_fleet() wiring, scaled out: every server gets its
// own GPU scheduler and EdgeServerFrontend; each client opens a cluster
// session through the router (which places it per the configured policy)
// and binds directly to its home server; the router's heartbeat loop then
// reroutes sessions off crashed servers and, when rebalancing is enabled,
// live-migrates hot sessions toward cold servers. Client traces reuse the
// serve layer's ClientTrace/TenantSummary accounting verbatim, so fleet
// and cluster results summarize identically.
//
// Zipf skew: within a tenant, client i's think time is scaled by
// (i + 1)^zipf_alpha — client 0 is the hottest, the tail is cold. This is
// the canonical skewed multi-tenant population that makes static
// consistent-hash placement collide hot sessions on one server while
// least-loaded + migration spreads them (bench/cluster_scaling measures
// exactly that gap).
//
// Deterministic given config.seed; two same-seed runs (with or without
// telemetry) are byte-identical.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "cluster/router.h"
#include "serve/fleet.h"

namespace lp::cluster {

struct ClusterConfig {
  std::size_t servers = 2;
  std::vector<serve::TenantSpec> tenants;
  serve::FrontendParams frontend;
  core::RuntimeParams runtime;
  RouterParams router;

  /// Skew exponent for per-client request gaps (0 = homogeneous).
  double zipf_alpha = 0.0;

  /// Per-server fault schedules (server crashes / straggle windows),
  /// indexed by server; shorter than `servers` leaves the rest fault-free.
  std::vector<fault::FaultPlan> server_faults;

  /// Per-server heartbeat-channel fault schedules (loss probability /
  /// blackout windows on the control plane), indexed by server; empty
  /// plans are not armed. The router then sees stale snapshots and gaps
  /// instead of ground truth.
  std::vector<fault::FaultPlan> heartbeat_faults;

  /// Fault schedule for the migration interconnect (payload loss). A
  /// non-empty plan requires router.migration_timeout > 0.
  fault::FaultPlan interconnect_faults;

  /// Wire the router's quorum-loss signal to every client's force_local:
  /// while the detector sees less than a majority of the fleet, clients
  /// pin p = n (pure local execution) instead of submitting into a
  /// control plane that can no longer reroute them.
  bool degrade_to_local = false;

  DurationNs duration = seconds(90);
  DurationNs warmup = seconds(30);
  DurationNs profiler_period = seconds(5);
  DurationNs watcher_period = seconds(10);
  std::uint64_t seed = 1;

  /// Telemetry for the whole testbed: per-server trace tracks ("server0",
  /// "server1", ...), the router's "cluster" track, per-tenant summary
  /// metrics. Null = off, byte-identical to an uninstrumented run.
  obs::Telemetry* telemetry = nullptr;

  /// Invariant hook (check::ClusterAuditor arms it): runs against the live
  /// router every audit_period of sim time and once after the run.
  std::function<void(const ClusterRouter&, TimeNs)> on_audit;
  DurationNs audit_period = seconds(1);
};

struct ClusterResult {
  std::vector<serve::ClientTrace> clients;
  std::vector<std::string> tenant_names;
  std::vector<double> tenant_slo_sec;
  DurationNs warmup = 0;
  DurationNs duration = 0;

  /// Final per-server load/conservation snapshots.
  std::vector<serve::LoadSnapshot> servers;

  // Router counters at the end of the run.
  std::uint64_t heartbeats = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migrated_jobs = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t aborted_migrations = 0;
  std::uint64_t migration_retries = 0;
  std::uint64_t late_imports_rejected = 0;
  std::uint64_t zombie_imports = 0;
  std::uint64_t stranded_jobs = 0;
  std::uint64_t false_reroutes = 0;
  std::uint64_t degrade_transitions = 0;

  /// Sum of the servers' fenced-job counters (zombie completions and
  /// queued jobs dropped by an epoch fence — a subset of failed jobs).
  std::uint64_t fenced_jobs = 0;

  /// (server, sim time) per kDead declaration — time-to-detect against a
  /// known crash schedule.
  std::vector<std::pair<std::size_t, TimeNs>> death_events;

  std::vector<const core::InferenceRecord*> steady(int tenant = -1) const {
    return serve::steady_records(clients, warmup, tenant);
  }
  serve::TenantSummary summarize(int tenant = -1) const {
    return serve::summarize_traces(clients, tenant_names, tenant_slo_sec,
                                   warmup, duration, tenant);
  }
};

/// Runs the cluster; deterministic given config.seed.
ClusterResult run_cluster(const ClusterConfig& config,
                          const core::PredictorBundle& predictors);

}  // namespace lp::cluster
