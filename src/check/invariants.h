// Invariant layer (cross-cutting oracle checks).
//
// Cheap LP_CHECK-style assertions over the live state machines of the
// decision and serving planes, compiled in by default and exercised through
// the check::audit() overload set. Each audit recomputes a quantity the
// subject maintains incrementally (queue backlog, LRU bookkeeping,
// request-conservation sums) and throws lp::ContractError on divergence —
// the differential harness (check/differential.h) and the fuzz driver
// (tools/check_fuzz) arm these after every operation; tests assert they
// hold across whole fleet runs.
#pragma once

#include "common/units.h"
#include "core/load_factor.h"
#include "net/estimator.h"
#include "partition/cache.h"
#include "serve/frontend.h"
#include "serve/queue.h"

namespace lp::check {

/// RequestQueue: the incrementally maintained backlog equals (exactly, not
/// approximately) the left-to-right sum of the queued predictions; the
/// queue respects its bound; predictions are non-negative and finite;
/// arrival sequence numbers are unique.
void audit(const serve::RequestQueue& queue);

/// PartitionCache: the LRU list and the entry map describe the same key
/// set; occupancy respects capacity; every stored plan is filed under its
/// own p; eviction/hit/miss counters are mutually consistent with the
/// occupancy (inserted - evicted == size when inserts are counted by the
/// caller — here we check the weaker invariants that need no history).
void audit(const partition::PartitionCache& cache);

/// LoadFactorTracker: published k and idle baseline respect constraint 1c
/// (>= 1); the sliding window never exceeds its capacity.
void audit(const core::LoadFactorTracker& tracker);

/// BandwidthEstimator: the estimate is positive and finite.
void audit(const net::BandwidthEstimator& estimator);

/// EdgeServerFrontend: request conservation —
///     submitted == admitted + shed + refused
///     admitted  == served + failed_jobs + queued + in-flight
/// plus the queue audit, and per-session k / cache / bandwidth audits.
/// A crashed frontend must hold no queued or in-flight work.
void audit(const serve::EdgeServerFrontend& frontend);

/// Sim-clock monotonicity: successive observations of a simulator's now()
/// must never decrease. Feed it from a periodic audit callback.
class ClockMonitor {
 public:
  void observe(TimeNs now);
  TimeNs last() const { return last_; }
  std::uint64_t observations() const { return observations_; }

 private:
  TimeNs last_ = 0;
  std::uint64_t observations_ = 0;
};

/// Ready-made serve::FleetConfig::on_audit callback: every frontend
/// invariant plus clock monotonicity, counting how often it fired so tests
/// can prove the audits actually ran.
class FleetAuditor {
 public:
  void operator()(const serve::EdgeServerFrontend& frontend, TimeNs now);
  std::uint64_t audits() const { return audits_; }

 private:
  ClockMonitor clock_;
  std::uint64_t audits_ = 0;
};

}  // namespace lp::check
