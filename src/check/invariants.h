// Invariant layer (cross-cutting oracle checks).
//
// Cheap LP_CHECK-style assertions over the live state machines of the
// decision and serving planes, compiled in by default and exercised through
// the check::audit() overload set. Each audit recomputes a quantity the
// subject maintains incrementally (queue backlog, LRU bookkeeping,
// request-conservation sums) and throws lp::ContractError on divergence —
// the differential harness (check/differential.h) and the fuzz driver
// (tools/check_fuzz) arm these after every operation; tests assert they
// hold across whole fleet runs.
#pragma once

#include "cluster/router.h"
#include "common/units.h"
#include "core/load_factor.h"
#include "net/estimator.h"
#include "partition/cache.h"
#include "predict/load_predictor.h"
#include "serve/frontend.h"
#include "serve/queue.h"

namespace lp::check {

/// RequestQueue: the incrementally maintained backlog equals (exactly, not
/// approximately) the left-to-right sum of the queued predictions; the
/// queue respects its bound up to the migrated-in allowance (jobs that
/// arrived via push_migrated bypass the capacity check); predictions are
/// non-negative and finite; arrival sequence numbers are unique.
void audit(const serve::RequestQueue& queue);

/// PartitionCache: the LRU list and the entry map describe the same key
/// set; occupancy respects capacity; every stored plan is filed under its
/// own p; eviction/hit/miss counters are mutually consistent with the
/// occupancy (inserted - evicted == size when inserts are counted by the
/// caller — here we check the weaker invariants that need no history).
void audit(const partition::PartitionCache& cache);

/// LoadFactorTracker: published k and idle baseline respect constraint 1c
/// (>= 1); the sliding window never exceeds its capacity.
void audit(const core::LoadFactorTracker& tracker);

/// BandwidthEstimator: the estimate is positive and finite.
void audit(const net::BandwidthEstimator& estimator);

/// EdgeServerFrontend: request conservation over its LoadSnapshot —
///     submitted == admitted + shed + refused
///     admitted + migrated_in
///               == served + failed_jobs + queued + in-flight + migrated_out
/// plus the queue audit, and per-session k / cache / bandwidth audits.
/// A crashed frontend must hold no queued or in-flight work.
void audit(const serve::EdgeServerFrontend& frontend);

/// ClusterRouter: every per-server frontend audit, plus cluster-wide
/// request conservation — across all servers, every admitted job is
/// served, failed, queued, in flight on a GPU, riding a migration
/// transfer, or (naive baseline only) stranded by a dropped transfer:
///     sum(admitted) == sum(served + failed + queued + in-flight)
///                      + in_transit + stranded - zombie_imports
/// (a zombie import re-materializes stranded jobs at the target, so they
/// stop being missing and start being double-counted — the subtraction
/// keeps the books honest in the naive arm; with fencing both terms are
/// zero and this is plain conservation, which therefore holds even under
/// false suspicion and lossy heartbeats). The migration counters balance
/// the same way:
///     sum(migrated_out) - sum(migrated_in)
///         == in_transit + stranded - zombie_imports
/// and the ledger itself is audited: kInFlight entries' jobs sum to
/// in_transit_jobs(); a migrating binding has exactly one kInFlight entry
/// (stamped at or below the binding's epoch) and a settled binding none;
/// no server's session fence ever runs ahead of the binding's epoch.
void audit(const cluster::ClusterRouter& router);

/// Migration round-trip equivalence: the two session-state snapshots must
/// be bit-identical (same window values *and* incrementally-maintained
/// sums, same cache plans/recency/statistics, same record counts, same
/// predictor state) — the export→import→export property cluster_test pins
/// on live frontends.
void audit_equal(const serve::SessionState& a, const serve::SessionState& b);

/// Predictor-state bit-identity: every fixed field and every packed model
/// vector must match exactly (a predictor restored from the state must
/// forecast the same bits).
void audit_equal(const predict::PredictorState& a,
                 const predict::PredictorState& b);

/// Sim-clock monotonicity: successive observations of a simulator's now()
/// must never decrease. Feed it from a periodic audit callback.
class ClockMonitor {
 public:
  void observe(TimeNs now);
  TimeNs last() const { return last_; }
  std::uint64_t observations() const { return observations_; }

 private:
  TimeNs last_ = 0;
  std::uint64_t observations_ = 0;
};

/// Ready-made serve::FleetConfig::on_audit callback: every frontend
/// invariant plus clock monotonicity, counting how often it fired so tests
/// can prove the audits actually ran.
class FleetAuditor {
 public:
  void operator()(const serve::EdgeServerFrontend& frontend, TimeNs now);
  std::uint64_t audits() const { return audits_; }

 private:
  ClockMonitor clock_;
  std::uint64_t audits_ = 0;
};

/// Ready-made cluster::ClusterConfig::on_audit callback: the cluster-wide
/// conservation audit plus clock monotonicity, counting its firings.
class ClusterAuditor {
 public:
  void operator()(const cluster::ClusterRouter& router, TimeNs now);
  std::uint64_t audits() const { return audits_; }

 private:
  ClockMonitor clock_;
  std::uint64_t audits_ = 0;
};

}  // namespace lp::check
