// Deterministic random-input generators for the differential harness.
//
// Everything is reproducible from a single seed and carries a size level:
// level 0 is full-size, higher levels shrink the instance (fewer blocks,
// fewer ops, shorter fleet runs) while keeping the seed-derived structure —
// the fuzz driver re-runs a failing case at increasing levels to report the
// smallest instance that still fails.
#pragma once

#include <cstdint>

#include "cluster/fleet.h"
#include "core/predictor.h"
#include "fault/fault_plan.h"
#include "graph/graph.h"
#include "serve/fleet.h"

namespace lp::check {

/// Mixes a run seed and a case index into an independent case seed
/// (SplitMix64 finalizer, so neighbouring indices are uncorrelated).
std::uint64_t case_seed(std::uint64_t seed, std::uint64_t index);

struct GraphGenOptions {
  int min_blocks = 2;
  int max_blocks = 6;
  std::int64_t spatial = 8;  ///< starting H = W
  std::int64_t channels = 4;
  /// Pure single-path chains (no residual/concat forks): on these every
  /// monotone cut is a topological-prefix cut, so DADS and Algorithm 1
  /// must agree exactly.
  bool chain_only = false;

  /// Returns options shrunk to the given level (level 0 = *this).
  GraphGenOptions shrunk(int level) const;
};

/// Random well-formed DAG mixing chains, residual forks (Add) and concat
/// branches; chain_only restricts to single-path graphs. Deterministic
/// given the seed. (tests/support/random_graph.h forwards here so the
/// property tests and the fuzzer draw from the same distribution.)
graph::Graph random_graph(std::uint64_t seed, GraphGenOptions options = {});

/// FLOPs-proportional linear predictors: every node kind predicts
/// sec_per_flop * FLOPs on each side. Exact, fast and deterministic — the
/// differential harness cares about the algebra of the decision, not about
/// trained-model fidelity.
core::PredictorBundle synthetic_bundle(double user_sec_per_flop = 3e-10,
                                       double edge_sec_per_flop = 5e-13);

/// Randomized fault schedule within [0, horizon): possibly a crash window,
/// a link blackout or degrade, a straggle window — or nothing (the
/// no-failure universe stays in the distribution on purpose).
fault::FaultPlan random_fault_plan(std::uint64_t seed, DurationNs horizon);

/// Randomized small fleet: 1-2 tenants, 1-3 clients each, random queue
/// policy / admission control / batching / SLOs / arrival processes /
/// fault plan / timeouts. on_audit is left unset; the caller arms it.
serve::FleetConfig random_fleet_config(std::uint64_t seed, int level = 0);

/// Randomized control-plane fault schedule within [0, horizon):
/// heartbeat-loss windows (moderate to brutal probabilities) and possibly
/// a full blackout window — or nothing. Drops only; a control plan never
/// crashes servers or straggles the data path.
fault::FaultPlan random_control_plan(std::uint64_t seed, DurationNs horizon);

/// Randomized small cluster under chaos: 2-4 servers, a skewed tenant
/// population, a non-oracle failure detector (deadline or phi), lossy
/// per-server heartbeat channels, a lossy migration interconnect with the
/// full timeout/retry/abort-to-source machinery armed, random crash
/// windows, and degrade-to-local wiring. Always a *robust* configuration
/// (fencing + return_to_source + timeouts) so the cluster conservation
/// audit is exact — the point of the family is that no chaos schedule can
/// break it. on_audit is left unset; the caller arms it.
cluster::ClusterConfig random_cluster_config(std::uint64_t seed,
                                             int level = 0);

}  // namespace lp::check
