#include "check/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "check/generators.h"
#include "check/invariants.h"
#include "check/model.h"
#include "cluster/fleet.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/algorithm.h"
#include "core/dads.h"
#include "predict/load_predictor.h"
#include "serve/fleet.h"
#include "serve/queue.h"

namespace lp::check {

namespace {

/// Near-equality for latencies computed by differently-ordered summations.
bool near(double a, double b) {
  return std::abs(a - b) <= 1e-9 + 1e-9 * std::max(std::abs(a), std::abs(b));
}

std::string hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

const char* case_kind_name(CaseKind kind) {
  switch (kind) {
    case CaseKind::kDecision:
      return "decision";
    case CaseKind::kCache:
      return "cache";
    case CaseKind::kQueue:
      return "queue";
    case CaseKind::kFleet:
      return "fleet";
    case CaseKind::kCluster:
      return "cluster";
    case CaseKind::kPredict:
      return "predict";
  }
  return "?";
}

void decision_case(std::uint64_t seed, int level) {
  Rng rng(seed ^ 0xDEC1510Aull);
  GraphGenOptions opts;
  opts.chain_only = rng.bernoulli(0.3);
  opts = opts.shrunk(level);
  const graph::Graph g = random_graph(rng(), opts);

  // Random but sane predictor scales: the device is orders of magnitude
  // slower than the edge GPU, like the trained bundles.
  const core::PredictorBundle bundle =
      synthetic_bundle(rng.uniform(1e-10, 1e-9), rng.uniform(1e-13, 1e-11));
  const core::GraphCostProfile profile(g, bundle);
  const std::size_t n = profile.n();

  const int trials = level >= 2 ? 2 : 4;
  for (int t = 0; t < trials; ++t) {
    const double k = rng.bernoulli(0.2) ? 1.0 : rng.uniform(1.0, 16.0);
    const double bw = mbps(rng.uniform(0.25, 256.0));

    const core::Decision fast = core::decide(profile, k, bw);
    const core::Decision brute = core::decide_brute_force(profile, k, bw);
    LP_CHECK_MSG(near(fast.predicted_latency, brute.predicted_latency),
                 "decide latency " + std::to_string(fast.predicted_latency) +
                     " != brute-force " +
                     std::to_string(brute.predicted_latency));
    // p must match; the only tolerated divergence is an exact near-tie
    // (both points equally optimal up to summation rounding).
    if (fast.p != brute.p)
      LP_CHECK_MSG(near(profile.predicted_latency(fast.p, k, bw),
                        profile.predicted_latency(brute.p, k, bw)),
                   "decide picked p=" + std::to_string(fast.p) +
                       ", brute force p=" + std::to_string(brute.p) +
                       " and they are not tied");

    // The pseudocode-verbatim form over raw arrays (g pre-scaled by k).
    std::vector<double> f(n + 1), gk(n + 1);
    std::vector<std::int64_t> s(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      f[i] = profile.f(i);
      gk[i] = k * profile.g_base(i);
      s[i] = profile.s(i);
    }
    const core::Decision verbatim = core::partition_decision(f, gk, s, bw,
                                                             /*download=*/0.0);
    LP_CHECK_MSG(near(verbatim.predicted_latency, fast.predicted_latency),
                 "partition_decision latency diverges from decide");
    if (verbatim.p != fast.p)
      LP_CHECK_MSG(near(profile.predicted_latency(verbatim.p, k, bw),
                        profile.predicted_latency(fast.p, k, bw)),
                   "partition_decision picked p=" +
                       std::to_string(verbatim.p) + ", decide p=" +
                       std::to_string(fast.p) + " and they are not tied");

    // DADS searches a superset of cuts: never worse, and on single-path
    // chains every monotone cut is a prefix cut, so exactly equal.
    const core::DadsResult cut = core::dads_min_cut(profile, k, bw);
    LP_CHECK_MSG(cut.latency_sec <= fast.predicted_latency + 1e-9,
                 "min cut worse than the topological search");
    if (opts.chain_only)
      LP_CHECK_MSG(near(cut.latency_sec, fast.predicted_latency),
                   "min cut beat Algorithm 1 on a single-path chain");
  }
}

void cache_case(std::uint64_t seed, int level) {
  Rng rng(seed ^ 0xCAC4Eull);
  const std::size_t capacity =
      static_cast<std::size_t>(rng.uniform_int(1, 6));
  partition::PartitionCache cache(capacity);
  ReferenceLru ref(capacity);

  // Keys drawn from a universe slightly bigger than the capacity so both
  // hits and evictions happen often.
  const std::size_t universe =
      capacity + static_cast<std::size_t>(rng.uniform_int(1, 4));
  const int ops = level >= 2 ? 12 : (level == 1 ? 30 : 80);
  for (int i = 0; i < ops; ++i) {
    const std::size_t p = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(universe)));
    switch (rng.uniform_int(0, 9)) {
      case 7:
      case 8: {
        partition::PartitionPlan plan;
        plan.p = p;
        cache.insert(std::move(plan));
        ref.insert(p);
        break;
      }
      case 9: {
        if (rng.bernoulli(0.5)) {
          cache.clear();
          ref.clear();
        } else {
          cache.reset_stats();
          ref.reset_stats();
        }
        break;
      }
      default: {  // lookup, the common op
        const partition::PartitionPlan* got = cache.find(p);
        const bool expected = ref.find(p);
        LP_CHECK_MSG((got != nullptr) == expected,
                     "hit/miss diverges from the reference LRU");
        if (got != nullptr) LP_CHECK(got->p == p);
        break;
      }
    }
    audit(cache);
    LP_CHECK_MSG(cache.lru_keys() == ref.keys(),
                 "recency order diverges from the reference LRU");
    LP_CHECK_MSG(cache.hits() == ref.hits && cache.misses() == ref.misses &&
                     cache.evictions() == ref.evictions,
                 "hit/miss/eviction counters diverge from the reference");
  }
}

namespace {

/// Replicates RequestQueue's dispatch order for the reference scan.
bool ref_before(serve::QueuePolicy policy, const serve::QueuedJob& a,
                const serve::QueuedJob& b) {
  switch (policy) {
    case serve::QueuePolicy::kFifo:
      break;
    case serve::QueuePolicy::kEdf:
      // core::kNoDeadline is TimeNs max, so deadline-free jobs sort last.
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      break;
    case serve::QueuePolicy::kSpjf:
      if (a.predicted_sec != b.predicted_sec)
        return a.predicted_sec < b.predicted_sec;
      break;
    case serve::QueuePolicy::kLeastSlack: {
      const bool has_a = a.deadline != core::kNoDeadline;
      const bool has_b = b.deadline != core::kNoDeadline;
      if (has_a != has_b) return has_a;
      if (has_a) {
        const double key_a =
            static_cast<double>(a.deadline) - a.predicted_sec * 1e9;
        const double key_b =
            static_cast<double>(b.deadline) - b.predicted_sec * 1e9;
        if (key_a != key_b) return key_a < key_b;
      }
      break;
    }
  }
  return a.seq < b.seq;
}

/// Replicates the push-boundary prediction clamp for the mirror model.
double ref_sanitized(double predicted_sec) {
  if (!std::isfinite(predicted_sec) || predicted_sec < 0.0) return 0.0;
  return predicted_sec;
}

/// Two distinct (graph, profile) fixtures so take_matching has real model
/// identities to discriminate on. Built once; deterministic.
struct QueueFixtures {
  core::PredictorBundle bundle = synthetic_bundle();
  graph::Graph g0 = random_graph(11, GraphGenOptions{1, 2, 4, 2, false});
  graph::Graph g1 = random_graph(12, GraphGenOptions{1, 2, 4, 2, false});
  core::GraphCostProfile p0{g0, bundle};
  core::GraphCostProfile p1{g1, bundle};
};

const QueueFixtures& queue_fixtures() {
  static const QueueFixtures fixtures;
  return fixtures;
}

}  // namespace

void queue_case(std::uint64_t seed, int level) {
  Rng rng(seed ^ 0x0E0E0ull);
  const auto policy = static_cast<serve::QueuePolicy>(rng.uniform_int(0, 3));
  const std::size_t capacity =
      static_cast<std::size_t>(rng.uniform_int(1, 8));
  serve::RequestQueue queue(policy, capacity);
  std::vector<serve::QueuedJob> mirror;  // arrival order, like jobs_
  const QueueFixtures& fx = queue_fixtures();
  std::uint64_t next_seq = 0;

  auto mirror_erase_seq = [&](std::uint64_t seq) {
    for (std::size_t i = 0; i < mirror.size(); ++i)
      if (mirror[i].seq == seq) {
        mirror.erase(mirror.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    LP_CHECK_MSG(false, "queue returned a job the mirror never admitted");
  };
  auto random_job = [&](int i) {
    serve::QueuedJob job;
    job.seq = next_seq++;
    job.session = static_cast<std::uint64_t>(rng.uniform_int(0, 3));
    job.profile = rng.bernoulli(0.5) ? &fx.p0 : &fx.p1;
    job.p = static_cast<std::size_t>(rng.uniform_int(0, 2));
    // Half the jobs carry a deadline; occasionally the legitimate absolute
    // deadline 0 (a request stamped at sim time 0), which the old
    // 0-means-none sentinel conflated with "no deadline".
    if (rng.bernoulli(0.5))
      job.deadline = rng.bernoulli(0.1)
                         ? 0
                         : milliseconds(rng.uniform_int(1, 500));
    job.enqueued = milliseconds(i);
    // Adversarial magnitudes: exact powers of two spanning ~28 decades
    // (plus occasional zeros) — the inputs that made the old clamped
    // subtraction scheme drift — and, at the push boundary, hostile
    // non-finite / negative predictions that must be clamped to zero
    // before they can break the SPJF/least-slack ordering.
    if (rng.bernoulli(0.15)) {
      const double hostile[] = {std::numeric_limits<double>::quiet_NaN(),
                                std::numeric_limits<double>::infinity(),
                                -std::numeric_limits<double>::infinity(),
                                -1.5};
      job.predicted_sec =
          hostile[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    } else {
      job.predicted_sec =
          rng.bernoulli(0.1)
              ? 0.0
              : std::ldexp(rng.uniform(1.0, 2.0),
                           static_cast<int>(rng.uniform_int(-40, 53)));
    }
    return job;
  };
  // Policy-order reference for take_matching: repeatedly pick the
  // ref_before-best matching, non-expired job, exactly as the batch fills.
  auto expected_matching = [&](const core::GraphCostProfile* profile,
                               std::size_t p, std::size_t limit,
                               TimeNs cutoff) {
    std::vector<serve::QueuedJob> pool = mirror;
    std::vector<std::uint64_t> expected;
    while (expected.size() < limit) {
      std::size_t best = pool.size();
      for (std::size_t j = 0; j < pool.size(); ++j) {
        if (pool[j].profile != profile || pool[j].p != p) continue;
        if (pool[j].deadline != core::kNoDeadline &&
            pool[j].deadline <= cutoff)
          continue;
        if (best == pool.size() || ref_before(policy, pool[j], pool[best]))
          best = j;
      }
      if (best == pool.size()) break;
      expected.push_back(pool[best].seq);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
    }
    return expected;
  };

  const int ops = level >= 2 ? 15 : (level == 1 ? 40 : 100);
  for (int i = 0; i < ops; ++i) {
    switch (rng.uniform_int(0, 9)) {
      case 4: {  // push_migrated (bypasses the capacity bound)
        serve::QueuedJob job = random_job(i);
        queue.push_migrated(job);
        job.predicted_sec = ref_sanitized(job.predicted_sec);
        job.migrated = true;
        mirror.push_back(job);
        break;
      }
      case 5: {  // take_session / take_expired (both arrival-order sweeps)
        if (rng.bernoulli(0.5)) {
          const auto session =
              static_cast<std::uint64_t>(rng.uniform_int(0, 3));
          const std::vector<serve::QueuedJob> taken =
              queue.take_session(session);
          std::vector<std::uint64_t> expected;
          for (const serve::QueuedJob& job : mirror)
            if (job.session == session) expected.push_back(job.seq);
          LP_CHECK_MSG(taken.size() == expected.size(),
                       "take_session count diverges from the reference");
          for (std::size_t j = 0; j < taken.size(); ++j) {
            LP_CHECK_MSG(taken[j].seq == expected[j],
                         "take_session must sweep in arrival order");
            mirror_erase_seq(taken[j].seq);
          }
        } else {
          const TimeNs now = milliseconds(rng.uniform_int(0, 500));
          const std::vector<serve::QueuedJob> expired =
              queue.take_expired(now);
          std::vector<std::uint64_t> expected;
          for (const serve::QueuedJob& job : mirror)
            if (job.deadline != core::kNoDeadline && job.deadline <= now)
              expected.push_back(job.seq);
          LP_CHECK_MSG(expired.size() == expected.size(),
                       "take_expired count diverges from the reference");
          for (std::size_t j = 0; j < expired.size(); ++j) {
            LP_CHECK_MSG(expired[j].seq == expected[j],
                         "take_expired must sweep in arrival order");
            mirror_erase_seq(expired[j].seq);
          }
        }
        break;
      }
      case 6:
      case 7: {  // pop_next
        if (queue.empty()) break;
        const serve::QueuedJob popped = queue.pop_next();
        std::size_t best = 0;
        for (std::size_t j = 1; j < mirror.size(); ++j)
          if (ref_before(policy, mirror[j], mirror[best])) best = j;
        LP_CHECK_MSG(popped.seq == mirror[best].seq,
                     "pop_next order diverges from the reference scan");
        mirror_erase_seq(popped.seq);
        break;
      }
      case 8: {  // take_matching (policy order, optional expiry cutoff)
        const core::GraphCostProfile* profile =
            rng.bernoulli(0.5) ? &fx.p0 : &fx.p1;
        const std::size_t p =
            static_cast<std::size_t>(rng.uniform_int(0, 2));
        const std::size_t limit =
            static_cast<std::size_t>(rng.uniform_int(1, 4));
        const TimeNs cutoff = rng.bernoulli(0.3)
                                  ? milliseconds(rng.uniform_int(0, 500))
                                  : serve::kNeverExpired;
        std::vector<serve::QueuedJob> out;
        queue.take_matching(profile, p, limit, &out, cutoff);
        const std::vector<std::uint64_t> expected =
            expected_matching(profile, p, limit, cutoff);
        LP_CHECK_MSG(out.size() == expected.size(),
                     "take_matching count diverges from the reference");
        for (std::size_t j = 0; j < out.size(); ++j) {
          LP_CHECK_MSG(out[j].seq == expected[j],
                       "take_matching order diverges from the reference");
          mirror_erase_seq(out[j].seq);
        }
        break;
      }
      case 9: {  // drain (rare)
        const std::vector<serve::QueuedJob> drained = queue.drain();
        LP_CHECK(drained.size() == mirror.size());
        for (std::size_t j = 0; j < drained.size(); ++j)
          LP_CHECK_MSG(drained[j].seq == mirror[j].seq,
                       "drain must preserve arrival order");
        mirror.clear();
        break;
      }
      default: {  // push, the common op
        serve::QueuedJob job = random_job(i);
        const bool pushed = queue.push(job);
        LP_CHECK_MSG(pushed == (mirror.size() < capacity),
                     "push accepted/rejected against the capacity bound");
        if (pushed) {
          job.predicted_sec = ref_sanitized(job.predicted_sec);
          mirror.push_back(job);
        }
        break;
      }
    }
    audit(queue);
    LP_CHECK(queue.size() == mirror.size());
    std::size_t migrated = 0;
    for (const serve::QueuedJob& job : mirror)
      if (job.migrated) ++migrated;
    LP_CHECK_MSG(queue.migrated_in_queue() == migrated,
                 "migrated-in-queue count diverges from the reference");
    double backlog = 0.0;
    for (const serve::QueuedJob& job : mirror) backlog += job.predicted_sec;
    LP_CHECK_MSG(queue.predicted_backlog_sec() == backlog,
                 "backlog diverges from the reference left-to-right sum");
  }
}

void fleet_case(std::uint64_t seed, int level) {
  serve::FleetConfig config = random_fleet_config(seed, level);
  FleetAuditor auditor;
  config.on_audit = [&auditor](const serve::EdgeServerFrontend& frontend,
                               TimeNs now) { auditor(frontend, now); };
  config.audit_period = milliseconds(100);

  static const core::PredictorBundle bundle = synthetic_bundle();
  const serve::FleetResult result = serve::run_fleet(config, bundle);

  LP_CHECK_MSG(auditor.audits() > 0, "fleet audit hook never fired");
  LP_CHECK_MSG(result.frontend.submitted ==
                   result.frontend.admitted + result.frontend.shed + result.frontend.refused,
               "end-of-run conservation: submitted != admitted+shed+refused");
  LP_CHECK(result.frontend.served + result.frontend.failed_jobs <= result.frontend.admitted);
  LP_CHECK(result.frontend.batched_jobs <= result.frontend.served);
}

void cluster_case(std::uint64_t seed, int level) {
  cluster::ClusterConfig config = random_cluster_config(seed, level);
  ClusterAuditor auditor;
  config.on_audit = [&auditor](const cluster::ClusterRouter& router,
                               TimeNs now) { auditor(router, now); };
  // Audit at the heartbeat cadence: every control-plane decision round is
  // immediately followed by a conservation + ledger check.
  config.audit_period = config.router.heartbeat_period;

  static const core::PredictorBundle bundle = synthetic_bundle();
  const cluster::ClusterResult result = cluster::run_cluster(config, bundle);

  LP_CHECK_MSG(auditor.audits() > 0, "cluster audit hook never fired");
  // Robust configuration: fencing + return_to_source means no chaos
  // schedule may strand an admitted job or let a zombie copy through.
  LP_CHECK_MSG(result.stranded_jobs == 0,
               "robust cluster stranded jobs under chaos");
  LP_CHECK_MSG(result.zombie_imports == 0,
               "robust cluster absorbed a zombie transfer copy");
}

void predict_case(std::uint64_t seed, int level) {
  const int steps = level >= 2 ? 8 : (level == 1 ? 24 : 64);
  predict::PredictorParams params;
  // Shrink the LLSP window with the trace so small cases still roll it.
  if (level >= 1) params.llsp_window = 4;

  for (const std::string& kind : predict::registered_predictors()) {
    params.kind = kind;
    auto predictor = predict::make_predictor(params);
    auto clone = predict::make_predictor(params);
    bool cloned = false;

    // Every predictor sees the same regime-switching walk (re-seeded per
    // kind): load-like values, occasionally jumping regimes, occasionally
    // resetting — the shapes the k series actually produces.
    Rng walk(seed ^ 0x9ED1C7ull);
    double value = walk.uniform(1.0, 8.0);
    double drift = 0.0;
    TimeNs now = 0;

    for (int i = 0; i < steps; ++i) {
      now += milliseconds(walk.uniform_int(1, 250));
      if (walk.bernoulli(0.15)) drift = walk.uniform(-0.5, 0.5);
      if (walk.bernoulli(0.05)) value = walk.uniform(1.0, 8.0);
      value = std::clamp(value + drift + 0.2 * walk.normal(), 1.0, 1e4);

      const double err = predictor->observe(now, value);
      if (i == 0)
        LP_CHECK_MSG(std::isnan(err), "first observation must be unscored");
      else
        LP_CHECK_MSG(std::isfinite(err),
                     "forecast error must be finite after the first sample");
      if (cloned) clone->observe(now, value);

      const DurationNs horizons[] = {0, milliseconds(50), seconds(1),
                                     seconds(30)};
      for (DurationNs h : horizons) {
        const double f = predictor->forecast(h);
        LP_CHECK_MSG(std::isfinite(f), "forecast must be finite");
        LP_CHECK_MSG(std::abs(f) <= params.max_abs_forecast,
                     "forecast escaped the clamp");
        // Reactive equivalence: the default predictor forecasts exactly
        // its last observation at every horizon — this is the invariant
        // the stack-wide bit-identity of legacy runs rests on.
        if (kind == "last-value")
          LP_CHECK_MSG(f == value,
                       "last-value forecast diverged from the observation");
        if (cloned)
          LP_CHECK_MSG(f == clone->forecast(h),
                       "restored clone forecasts different bits");
      }
      LP_CHECK(predictor->confidence() >= 0.0 &&
               predictor->confidence() <= 1.0);
      if (predictor->scored() > 0)
        LP_CHECK(std::isfinite(predictor->mae()) &&
                 std::isfinite(predictor->bias()));

      if (i == steps / 2) {
        // Mid-stream migration: the exported state restores bit-identically
        // and the clone tracks the original exactly from here on.
        const predict::PredictorState state = predictor->export_state();
        clone->import_state(state);
        audit_equal(state, clone->export_state());
        LP_CHECK(predict::state_wire_bytes(state) >= 0);
        cloned = true;
      }
    }
  }
}

void run_case(CaseKind kind, std::uint64_t seed, int level) {
  switch (kind) {
    case CaseKind::kDecision:
      decision_case(seed, level);
      return;
    case CaseKind::kCache:
      cache_case(seed, level);
      return;
    case CaseKind::kQueue:
      queue_case(seed, level);
      return;
    case CaseKind::kFleet:
      fleet_case(seed, level);
      return;
    case CaseKind::kCluster:
      cluster_case(seed, level);
      return;
    case CaseKind::kPredict:
      predict_case(seed, level);
      return;
  }
  LP_CHECK_MSG(false, "unknown case kind");
}

std::uint64_t run_diff(CaseKind kind, std::uint64_t seed,
                       std::uint64_t cases, int level) {
  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::uint64_t cs = case_seed(seed, i);
    try {
      run_case(kind, cs, level);
    } catch (const ContractError& e) {
      throw ContractError(std::string(case_kind_name(kind)) + " case " +
                          std::to_string(i) + " (case seed " + hex(cs) +
                          "): " + e.what());
    }
  }
  return cases;
}

}  // namespace lp::check
