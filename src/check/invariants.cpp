#include "check/invariants.h"

#include <cmath>
#include <string>
#include <unordered_set>

#include "common/check.h"

namespace lp::check {

void audit(const serve::RequestQueue& queue) {
  LP_CHECK(queue.size() <= queue.capacity());

  double recomputed = 0.0;
  std::unordered_set<std::uint64_t> seqs;
  for (const serve::QueuedJob& job : queue.jobs()) {
    LP_CHECK_MSG(std::isfinite(job.predicted_sec) && job.predicted_sec >= 0.0,
                 "queued prediction must be finite and non-negative");
    LP_CHECK_MSG(seqs.insert(job.seq).second,
                 "duplicate arrival sequence in queue");
    recomputed += job.predicted_sec;
  }
  // Exact equality, not a tolerance: the queue maintains the backlog as
  // the same left-to-right sum this loop just recomputed, so any drift is
  // an accounting bug (the clamped-subtraction scheme this replaced could
  // drift by the full magnitude of a job).
  LP_CHECK_MSG(queue.predicted_backlog_sec() == recomputed,
               "incremental backlog diverged from recomputed sum: " +
                   std::to_string(queue.predicted_backlog_sec()) + " vs " +
                   std::to_string(recomputed));
}

void audit(const partition::PartitionCache& cache) {
  LP_CHECK(cache.capacity() > 0);
  LP_CHECK(cache.size() <= cache.capacity());
  const auto keys = cache.lru_keys();
  LP_CHECK_MSG(keys.size() == cache.size(),
               "LRU list and entry map disagree on occupancy");
  std::unordered_set<std::size_t> seen;
  for (std::size_t p : keys) {
    LP_CHECK_MSG(seen.insert(p).second, "duplicate key in LRU list");
    const partition::PartitionPlan* plan = cache.peek(p);
    LP_CHECK_MSG(plan != nullptr, "LRU key missing from entry map");
    LP_CHECK_MSG(plan->p == p, "plan filed under the wrong partition point");
  }
}

void audit(const core::LoadFactorTracker& tracker) {
  LP_CHECK_MSG(tracker.k() >= 1.0, "constraint 1c: k must be >= 1");
  LP_CHECK_MSG(tracker.idle_baseline() >= 1.0,
               "idle baseline must be >= 1");
  LP_CHECK(std::isfinite(tracker.k()));
  LP_CHECK(tracker.window_capacity() >= 1);
  LP_CHECK_MSG(tracker.window_size() <= tracker.window_capacity(),
               "sliding window exceeded its capacity");
}

void audit(const net::BandwidthEstimator& estimator) {
  LP_CHECK_MSG(estimator.estimate() > 0.0 &&
                   std::isfinite(estimator.estimate()),
               "bandwidth estimate must be positive and finite");
}

void audit(const serve::EdgeServerFrontend& frontend) {
  // Conservation across the admission boundary: every submission was
  // admitted, shed, or refused-while-down.
  LP_CHECK_MSG(frontend.submitted() ==
                   frontend.admitted() + frontend.shed() + frontend.refused(),
               "submitted != admitted + shed + refused");

  // Conservation across the service: every admitted job has been served,
  // failed by a crash, or is still queued / on the GPU. Audits run at sim
  // suspension points, where the dispatch path's counter updates are
  // atomic, so this holds at every observable instant.
  LP_CHECK_MSG(frontend.admitted() ==
                   frontend.served() + frontend.failed_jobs() +
                       frontend.queue_depth() + frontend.inflight_jobs(),
               "admitted != served + failed + queued + in-flight");

  LP_CHECK(frontend.queue_depth() == frontend.queue().size());
  LP_CHECK(frontend.batched_jobs() <= frontend.served());
  LP_CHECK(frontend.batched_dispatches() <= frontend.dispatches());

  // Fail-stop contract: a crashed server holds no work.
  if (!frontend.alive()) {
    LP_CHECK_MSG(frontend.queue_depth() == 0 &&
                     frontend.inflight_jobs() == 0,
                 "crashed frontend still holds work");
  }

  audit(frontend.queue());
  for (std::uint64_t s = 0; s < frontend.sessions(); ++s) {
    LP_CHECK(frontend.session_k(s) >= 1.0);
    audit(frontend.session_tracker(s));
    audit(frontend.session_cache(s));
    LP_CHECK(frontend.session_bandwidth_bps(s) > 0.0);
  }
}

void ClockMonitor::observe(TimeNs now) {
  if (observations_ > 0)
    LP_CHECK_MSG(now >= last_, "simulated clock moved backwards: " +
                                   std::to_string(last_) + " -> " +
                                   std::to_string(now));
  last_ = now;
  ++observations_;
}

void FleetAuditor::operator()(const serve::EdgeServerFrontend& frontend,
                              TimeNs now) {
  clock_.observe(now);
  audit(frontend);
  ++audits_;
}

}  // namespace lp::check
