#include "check/invariants.h"

#include <cmath>
#include <string>
#include <unordered_set>

#include "common/check.h"

namespace lp::check {

void audit(const serve::RequestQueue& queue) {
  // Migrated jobs bypass the bound (they were admitted once on their origin
  // server and must not be dropped), so the queue may exceed capacity by
  // exactly the migrated jobs still parked in it.
  LP_CHECK_MSG(queue.size() - queue.migrated_in_queue() <= queue.capacity(),
               "queue exceeds capacity beyond its migrated-in allowance");

  double recomputed = 0.0;
  std::unordered_set<std::uint64_t> seqs;
  for (const serve::QueuedJob& job : queue.jobs()) {
    LP_CHECK_MSG(std::isfinite(job.predicted_sec) && job.predicted_sec >= 0.0,
                 "queued prediction must be finite and non-negative");
    LP_CHECK_MSG(seqs.insert(job.seq).second,
                 "duplicate arrival sequence in queue");
    recomputed += job.predicted_sec;
  }
  // Exact equality, not a tolerance: the queue maintains the backlog as
  // the same left-to-right sum this loop just recomputed, so any drift is
  // an accounting bug (the clamped-subtraction scheme this replaced could
  // drift by the full magnitude of a job).
  LP_CHECK_MSG(queue.predicted_backlog_sec() == recomputed,
               "incremental backlog diverged from recomputed sum: " +
                   std::to_string(queue.predicted_backlog_sec()) + " vs " +
                   std::to_string(recomputed));
}

void audit(const partition::PartitionCache& cache) {
  LP_CHECK(cache.capacity() > 0);
  LP_CHECK(cache.size() <= cache.capacity());
  const auto keys = cache.lru_keys();
  LP_CHECK_MSG(keys.size() == cache.size(),
               "LRU list and entry map disagree on occupancy");
  std::unordered_set<std::size_t> seen;
  for (std::size_t p : keys) {
    LP_CHECK_MSG(seen.insert(p).second, "duplicate key in LRU list");
    const partition::PartitionPlan* plan = cache.peek(p);
    LP_CHECK_MSG(plan != nullptr, "LRU key missing from entry map");
    LP_CHECK_MSG(plan->p == p, "plan filed under the wrong partition point");
  }
}

void audit(const core::LoadFactorTracker& tracker) {
  LP_CHECK_MSG(tracker.k() >= 1.0, "constraint 1c: k must be >= 1");
  LP_CHECK_MSG(tracker.idle_baseline() >= 1.0,
               "idle baseline must be >= 1");
  LP_CHECK(std::isfinite(tracker.k()));
  LP_CHECK(tracker.window_capacity() >= 1);
  LP_CHECK_MSG(tracker.window_size() <= tracker.window_capacity(),
               "sliding window exceeded its capacity");
}

void audit(const net::BandwidthEstimator& estimator) {
  LP_CHECK_MSG(estimator.estimate() > 0.0 &&
                   std::isfinite(estimator.estimate()),
               "bandwidth estimate must be positive and finite");
}

void audit(const serve::EdgeServerFrontend& frontend) {
  // One coherent snapshot: the audit reads the same view a cluster
  // heartbeat carries, so the invariant checked here is exactly the one
  // the router's placement decisions rely on.
  const serve::LoadSnapshot s = frontend.load_snapshot();

  // Conservation across the admission boundary: every submission was
  // admitted, shed, or refused-while-down.
  LP_CHECK_MSG(s.submitted == s.admitted + s.shed + s.refused,
               "submitted != admitted + shed + refused");

  // Conservation across the service, migration included: every job this
  // server took responsibility for (admitted here or imported via session
  // migration) has been served, failed, handed to another server, or is
  // still queued / on the GPU. Audits run at sim suspension points, where
  // the dispatch path's counter updates are atomic, so this holds at every
  // observable instant.
  LP_CHECK_MSG(s.admitted + s.migrated_in ==
                   s.served + s.failed_jobs + s.queue_depth +
                       s.inflight_jobs + s.migrated_out,
               "admitted + migrated_in != "
               "served + failed + queued + in-flight + migrated_out");

  LP_CHECK(s.queue_depth == frontend.queue().size());
  LP_CHECK(s.inflight_jobs == frontend.inflight_jobs());
  LP_CHECK(s.batched_jobs <= s.served);
  LP_CHECK(s.batched_dispatches <= s.dispatches);
  LP_CHECK(s.alive == frontend.alive());

  // Deadline-shed taxonomy: will-miss sheds and epoch fencings are disjoint
  // subsets of the failed jobs (the remainder are crash casualties), and
  // deadline-admission sheds are a subset of all sheds.
  LP_CHECK_MSG(s.deadline_shed + s.fenced_jobs <= s.failed_jobs,
               "deadline sheds + fenced jobs exceed failed jobs");
  LP_CHECK_MSG(s.deadline_shed_admission <= s.shed,
               "deadline-admission sheds exceed total sheds");

  // Fail-stop contract: a crashed server holds no work.
  if (!s.alive) {
    LP_CHECK_MSG(s.queue_depth == 0 && s.inflight_jobs == 0,
                 "crashed frontend still holds work");
  }

  // The frontend-level signal is a well-formed forecast of the same queue.
  LP_CHECK(std::isfinite(s.signal.k_forecast) && s.signal.k_forecast >= 1.0);
  LP_CHECK(std::isfinite(s.signal.backlog_sec) && s.signal.backlog_sec >= 0.0);
  LP_CHECK(s.signal.confidence >= 0.0 && s.signal.confidence <= 1.0);
  LP_CHECK(s.signal.age_ns >= 0);

  audit(frontend.queue());
  for (std::uint64_t s = 0; s < frontend.sessions(); ++s) {
    LP_CHECK(frontend.session_k(s) >= 1.0);
    audit(frontend.session_tracker(s));
    audit(frontend.session_cache(s));
    LP_CHECK(frontend.session_bandwidth_bps(s) > 0.0);
    // The session's signal honours the same contracts as the raw tracker:
    // constraint 1c on the forecast, a finite error score, and k_now
    // agreeing bitwise with the published k.
    const core::LoadSignal sig = frontend.load_signal(s, 0);
    LP_CHECK_MSG(sig.k_now == frontend.session_tracker(s).k(),
                 "signal k_now diverged from the published k");
    LP_CHECK(std::isfinite(sig.k_forecast) && sig.k_forecast >= 1.0);
    LP_CHECK(std::isfinite(sig.backlog_sec) && sig.backlog_sec >= 0.0);
    LP_CHECK(sig.confidence >= 0.0 && sig.confidence <= 1.0);
    const predict::LoadPredictor& predictor = frontend.session_predictor(s);
    if (predictor.scored() > 0)
      LP_CHECK(std::isfinite(predictor.mae()) &&
               std::isfinite(predictor.bias()));
  }
}

void audit(const cluster::ClusterRouter& router) {
  std::uint64_t admitted = 0, settled = 0;
  std::uint64_t migrated_out = 0, migrated_in = 0;
  for (std::size_t i = 0; i < router.servers(); ++i) {
    const serve::EdgeServerFrontend& frontend = router.server(i);
    audit(frontend);
    const serve::LoadSnapshot s = frontend.load_snapshot();
    admitted += s.admitted;
    settled += s.served + s.failed_jobs + s.queue_depth + s.inflight_jobs;
    migrated_out += s.migrated_out;
    migrated_in += s.migrated_in;
    LP_CHECK_MSG(s.fenced_jobs <= s.failed_jobs,
                 "fenced jobs are a subset of failed jobs");
  }
  // Cluster-wide conservation: the per-server migration terms cancel
  // except for jobs riding a transfer between servers, jobs a dropped
  // transfer stranded (naive baseline), and stranded jobs a late zombie
  // copy re-materialized at its target (subtracted: they are stranded no
  // longer, and are back inside a server's queue/served/failed terms).
  // With fencing armed, stranded and zombie imports are both zero and
  // this is plain conservation — it must hold even when lossy heartbeats
  // make the detector falsely suspect a healthy server.
  const std::uint64_t slack =
      router.stranded_jobs() - router.zombie_imports();
  LP_CHECK_MSG(router.zombie_imports() <= router.stranded_jobs(),
               "zombie imports cannot exceed the jobs ever stranded");
  LP_CHECK_MSG(admitted == settled + router.in_transit_jobs() + slack,
               "cluster conservation: sum(admitted) != "
               "sum(served + failed + queued + in-flight) + in-transit + "
               "stranded - zombies");
  LP_CHECK_MSG(migrated_out - migrated_in ==
                   router.in_transit_jobs() + slack,
               "migration counters out of balance with the in-transit and "
               "stranded counts");

  // The exactly-once ledger: open entries carry precisely the in-transit
  // jobs, and each maps to a binding that is marked migrating.
  std::size_t open_jobs = 0;
  std::vector<std::size_t> open_per_session(router.sessions(), 0);
  for (const cluster::MigrationRecord& m : router.ledger()) {
    if (m.state != cluster::MigrationRecord::State::kInFlight) continue;
    open_jobs += m.jobs;
    LP_CHECK(m.session < router.sessions());
    ++open_per_session[m.session];
    LP_CHECK_MSG(m.epoch <= router.binding(m.session).epoch,
                 "ledger entry epoch ahead of its binding's epoch");
  }
  LP_CHECK_MSG(open_jobs == router.in_transit_jobs(),
               "open ledger entries do not sum to the in-transit count");
  for (std::uint64_t s = 0; s < router.sessions(); ++s) {
    const cluster::SessionBinding& b = router.binding(s);
    LP_CHECK_MSG(open_per_session[s] == (b.migrating ? 1u : 0u),
                 "migrating bindings and open ledger entries disagree");
    // Fences are cut from binding epochs, so no server may ever hold a
    // fence the control plane has not issued — the "no session active on
    // two servers in the same epoch" guarantee rests on this.
    for (std::size_t i = 0; i < router.servers(); ++i)
      LP_CHECK_MSG(router.server(i).session_fence(s) <= b.epoch,
                   "server fence ahead of the binding epoch");
  }
}

namespace {

void audit_equal(const SlidingWindow::Snapshot& a,
                 const SlidingWindow::Snapshot& b, const char* what) {
  LP_CHECK_MSG(a.values.size() == b.values.size(),
               std::string(what) + ": window sizes differ");
  for (std::size_t i = 0; i < a.values.size(); ++i)
    LP_CHECK_MSG(a.values[i] == b.values[i],
                 std::string(what) + ": window values differ");
  // Bit-identity includes the incrementally maintained sum: a restore that
  // replayed add() would recompute it and drift from the FP-subtraction
  // history the source window carried.
  LP_CHECK_MSG(a.sum == b.sum, std::string(what) + ": window sums differ");
}

void audit_equal_vec(const std::vector<double>& a,
                     const std::vector<double>& b, const char* what) {
  LP_CHECK_MSG(a.size() == b.size(),
               std::string(what) + ": vector sizes differ");
  for (std::size_t i = 0; i < a.size(); ++i)
    LP_CHECK_MSG(a[i] == b[i], std::string(what) + ": vector values differ");
}

}  // namespace

void audit_equal(const predict::PredictorState& a,
                 const predict::PredictorState& b) {
  LP_CHECK_MSG(a.last_observed == b.last_observed &&
                   a.last_value == b.last_value && a.gap_sec == b.gap_sec &&
                   a.samples == b.samples,
               "predictor observation state differs");
  LP_CHECK_MSG(a.abs_err_sum == b.abs_err_sum && a.err_sum == b.err_sum &&
                   a.scored == b.scored,
               "predictor error statistics differ");
  audit_equal_vec(a.scalars, b.scalars, "predictor scalars");
  audit_equal_vec(a.window, b.window, "predictor window");
  audit_equal_vec(a.window_times_sec, b.window_times_sec,
                  "predictor window times");
}

void audit_equal(const serve::SessionState& a, const serve::SessionState& b) {
  audit_equal(a.k.ratios, b.k.ratios, "k ratios");
  audit_equal(a.k.idle_ratios, b.k.idle_ratios, "k idle ratios");
  LP_CHECK_MSG(a.k.records == b.k.records, "k record counts differ");
  audit_equal(a.bandwidth.window, b.bandwidth.window, "bandwidth");
  audit_equal(a.predictor, b.predictor);

  LP_CHECK_MSG(a.cache.plans.size() == b.cache.plans.size(),
               "cache occupancy differs");
  for (std::size_t i = 0; i < a.cache.plans.size(); ++i) {
    const partition::PartitionPlan& pa = a.cache.plans[i];
    const partition::PartitionPlan& pb = b.cache.plans[i];
    LP_CHECK_MSG(pa.p == pb.p, "cache recency order differs");
    LP_CHECK_MSG(pa.boundary == pb.boundary, "plan boundaries differ");
    LP_CHECK_MSG(pa.boundary_bytes == pb.boundary_bytes,
                 "plan boundary sizes differ");
    LP_CHECK_MSG(pa.device_part.has_value() == pb.device_part.has_value() &&
                     pa.server_part.has_value() == pb.server_part.has_value(),
                 "plan segment presence differs");
  }
  LP_CHECK_MSG(a.cache.hits == b.cache.hits &&
                   a.cache.misses == b.cache.misses &&
                   a.cache.evictions == b.cache.evictions,
               "cache statistics differ");
}

void ClockMonitor::observe(TimeNs now) {
  if (observations_ > 0)
    LP_CHECK_MSG(now >= last_, "simulated clock moved backwards: " +
                                   std::to_string(last_) + " -> " +
                                   std::to_string(now));
  last_ = now;
  ++observations_;
}

void FleetAuditor::operator()(const serve::EdgeServerFrontend& frontend,
                              TimeNs now) {
  clock_.observe(now);
  audit(frontend);
  ++audits_;
}

void ClusterAuditor::operator()(const cluster::ClusterRouter& router,
                                TimeNs now) {
  clock_.observe(now);
  audit(router);
  ++audits_;
}

}  // namespace lp::check
