#include "check/generators.h"

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "flops/features.h"
#include "ml/linreg.h"
#include "net/bandwidth_trace.h"

namespace lp::check {

std::uint64_t case_seed(std::uint64_t seed, std::uint64_t index) {
  // SplitMix64 finalizer over seed ^ golden-ratio-striped index.
  std::uint64_t z = seed ^ (0x9E3779B97F4A7C15ull * (index + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

GraphGenOptions GraphGenOptions::shrunk(int level) const {
  GraphGenOptions o = *this;
  if (level >= 1) o.max_blocks = std::min(o.max_blocks, 3);
  if (level >= 2) {
    o.max_blocks = std::min(o.max_blocks, 2);
    o.spatial = std::min<std::int64_t>(o.spatial, 4);
  }
  if (level >= 3) {
    o.min_blocks = 1;
    o.max_blocks = 1;
    o.channels = std::min<std::int64_t>(o.channels, 2);
  }
  o.min_blocks = std::min(o.min_blocks, o.max_blocks);
  return o;
}

graph::Graph random_graph(std::uint64_t seed, GraphGenOptions options) {
  Rng rng(seed);
  graph::GraphBuilder b("random_" + std::to_string(seed));
  auto x = b.input({1, options.channels, options.spatial, options.spatial});

  auto activation = [&](graph::NodeId id) {
    switch (rng.uniform_int(0, 3)) {
      case 0:
        return b.relu(id);
      case 1:
        return b.sigmoid(id);
      case 2:
        return b.tanh(id);
      default:
        return id;  // no activation
    }
  };

  const int blocks = static_cast<int>(
      rng.uniform_int(options.min_blocks, options.max_blocks));
  for (int i = 0; i < blocks; ++i) {
    const auto c = b.desc(x).shape.c();
    const std::int64_t kind =
        options.chain_only ? (rng.bernoulli(0.7) ? 0 : 3)
                           : rng.uniform_int(0, 3);
    switch (kind) {
      case 0: {  // plain conv chain
        x = b.conv2d(x, c, 3, 1, 1, rng.bernoulli(0.5));
        x = activation(x);
        break;
      }
      case 1: {  // residual fork
        auto y = b.conv2d(x, c, 3, 1, 1, false);
        y = b.batchnorm(y);
        y = activation(y);
        x = b.add(y, x);
        break;
      }
      case 2: {  // concat fork (doubles channels)
        auto l = b.conv2d(x, c, 1, 1, 0, true);
        auto r = b.conv2d(x, c, 3, 1, 1, true);
        x = b.concat({activation(l), activation(r)});
        break;
      }
      default: {  // pool (only while the map is big enough)
        if (b.desc(x).shape.h() >= 4) {
          x = rng.bernoulli(0.5) ? b.maxpool(x, 2, 2) : b.avgpool(x, 2, 2);
        } else {
          x = b.relu(x);
        }
        break;
      }
    }
  }
  if (rng.bernoulli(0.5)) {
    x = b.flatten(x);
    x = b.fc(x, 1 + static_cast<std::int64_t>(rng.uniform_int(1, 8)));
  }
  return b.build(x);
}

core::PredictorBundle synthetic_bundle(double user_sec_per_flop,
                                       double edge_sec_per_flop) {
  profile::NodePredictor user(flops::Device::kUser);
  profile::NodePredictor edge(flops::Device::kEdge);
  for (auto kind : flops::all_model_kinds()) {
    std::vector<double> cu(
        flops::feature_names(kind, flops::Device::kUser).size(), 0.0);
    cu[0] = user_sec_per_flop;
    user.set_model(kind, ml::LinearModel(cu));
    std::vector<double> ce(
        flops::feature_names(kind, flops::Device::kEdge).size(), 0.0);
    ce[0] = edge_sec_per_flop;
    edge.set_model(kind, ml::LinearModel(ce));
  }
  return core::PredictorBundle{std::move(user), std::move(edge)};
}

fault::FaultPlan random_fault_plan(std::uint64_t seed, DurationNs horizon) {
  Rng rng(seed);
  fault::FaultPlan plan;
  if (rng.bernoulli(0.4)) return plan;  // the no-failure universe

  auto window = [&](double max_frac) {
    const TimeNs begin = static_cast<TimeNs>(
        rng.uniform(0.1, 0.6) * static_cast<double>(horizon));
    const TimeNs end =
        begin + std::max<DurationNs>(
                    milliseconds(20),
                    static_cast<DurationNs>(rng.uniform(0.05, max_frac) *
                                            static_cast<double>(horizon)));
    return fault::FaultWindow{begin, std::min(end, horizon)};
  };

  if (rng.bernoulli(0.5)) {
    const auto w = window(0.25);
    plan.server_crash(w.begin, w.end);
  }
  if (rng.bernoulli(0.4)) {
    const auto w = window(0.2);
    if (rng.bernoulli(0.5)) {
      plan.link_blackout(w.begin, w.end);
    } else {
      plan.link_degrade(w.begin, w.end, mbps(rng.uniform(0.25, 2.0)));
    }
  }
  if (rng.bernoulli(0.3)) {
    const auto w = window(0.3);
    plan.straggle(w.begin, w.end, rng.uniform(1.5, 6.0));
  }
  if (rng.bernoulli(0.25)) {
    const auto w = window(0.3);
    plan.packet_loss(w.begin, w.end, rng.uniform(0.05, 0.4));
  }
  return plan;
}

serve::FleetConfig random_fleet_config(std::uint64_t seed, int level) {
  Rng rng(seed);
  serve::FleetConfig config;
  config.seed = seed;

  const double base_sec = level >= 2 ? 1.5 : (level == 1 ? 2.5 : 4.0);
  config.duration = seconds(rng.uniform(base_sec, base_sec * 1.5));
  config.warmup = config.duration / 4;
  config.profiler_period = milliseconds(rng.uniform_int(200, 800));
  config.watcher_period = milliseconds(rng.uniform_int(500, 2000));

  const serve::QueuePolicy policies[] = {
      serve::QueuePolicy::kFifo, serve::QueuePolicy::kEdf,
      serve::QueuePolicy::kSpjf, serve::QueuePolicy::kLeastSlack};
  config.frontend.policy =
      policies[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  config.frontend.queue_capacity =
      static_cast<std::size_t>(rng.uniform_int(2, 32));
  config.frontend.admission_control = rng.bernoulli(0.5);
  config.frontend.delay_budget_sec = rng.uniform(0.02, 0.3);
  // Deadline-centric arms: admission against the request's own deadline
  // and dispatch-time will-miss shedding (both only bite for tenants that
  // draw an SLO below).
  config.frontend.deadline_admission = rng.bernoulli(0.3);
  config.frontend.shed_will_miss = rng.bernoulli(0.3);
  config.frontend.max_batch = static_cast<std::size_t>(rng.uniform_int(1, 4));
  if (config.frontend.max_batch > 1 && rng.bernoulli(0.5))
    config.frontend.batch_window = milliseconds(rng.uniform_int(1, 10));

  // Small caches and windows on purpose: evictions and window wrap-around
  // are where the bookkeeping bugs live.
  config.runtime.cache_capacity =
      static_cast<std::size_t>(rng.uniform_int(1, 8));
  config.runtime.k_window = static_cast<std::size_t>(rng.uniform_int(2, 16));
  config.runtime.bandwidth_window =
      static_cast<std::size_t>(rng.uniform_int(2, 8));
  if (rng.bernoulli(0.5)) {
    config.runtime.fault.rpc_timeout_sec = rng.uniform(0.05, 0.4);
    config.runtime.fault.max_retries = static_cast<int>(rng.uniform_int(0, 2));
    config.runtime.fault.local_fallback = rng.bernoulli(0.7);
    if (rng.bernoulli(0.3)) config.runtime.fault.breaker_failures = 3;
  }

  const int tenants = level >= 2 ? 1 : static_cast<int>(rng.uniform_int(1, 2));
  for (int t = 0; t < tenants; ++t) {
    serve::TenantSpec spec;
    spec.model = rng.bernoulli(0.5) ? "alexnet" : "squeezenet";
    spec.clients = level >= 1 ? 1 : static_cast<int>(rng.uniform_int(1, 3));
    spec.policy = rng.bernoulli(0.75) ? core::Policy::kLoadPart
                                      : core::Policy::kNeurosurgeon;
    const double up = rng.uniform(2.0, 32.0);
    if (rng.bernoulli(0.3)) {
      // Bursty WiFi: Gilbert-Elliott dwell schedule, sometimes with hard
      // blackout bursts (bad bandwidth 0).
      const double bad = rng.bernoulli(0.3) ? 0.0 : mbps(up / 8.0);
      spec.upload = net::BandwidthTrace::gilbert_elliott(
          config.duration, mbps(up), bad, milliseconds(400),
          milliseconds(80), rng());
    } else {
      spec.upload = net::BandwidthTrace::constant(mbps(up));
    }
    spec.download = net::BandwidthTrace::constant(mbps(up));
    spec.rtt = milliseconds(rng.uniform_int(1, 8));
    spec.request_gap = milliseconds(rng.uniform_int(2, 40));
    spec.poisson_arrivals = rng.bernoulli(0.5);
    if (rng.bernoulli(0.4)) spec.slo_sec = rng.uniform(0.05, 0.5);
    config.tenants.push_back(spec);
  }

  config.faults = random_fault_plan(case_seed(seed, 0xfau), config.duration);
  return config;
}

fault::FaultPlan random_control_plan(std::uint64_t seed, DurationNs horizon) {
  Rng rng(seed);
  fault::FaultPlan plan;
  if (rng.bernoulli(0.25)) return plan;  // a quiet control plane

  const int windows = static_cast<int>(rng.uniform_int(1, 3));
  for (int w = 0; w < windows; ++w) {
    const TimeNs begin = static_cast<TimeNs>(
        rng.uniform(0.0, 0.7) * static_cast<double>(horizon));
    const TimeNs end =
        begin + std::max<DurationNs>(
                    milliseconds(50),
                    static_cast<DurationNs>(rng.uniform(0.05, 0.4) *
                                            static_cast<double>(horizon)));
    plan.packet_loss(begin, std::min(end, horizon),
                     rng.uniform(0.1, 0.8));
  }
  if (rng.bernoulli(0.3)) {
    // A hard blackout: every heartbeat in the window vanishes, which is
    // what drives the detector through kSuspect into kDead — and, when
    // the window covers a majority of channels, into quorum degradation.
    const TimeNs begin = static_cast<TimeNs>(
        rng.uniform(0.2, 0.6) * static_cast<double>(horizon));
    plan.link_blackout(
        begin, std::min<TimeNs>(
                   begin + static_cast<DurationNs>(
                               rng.uniform(0.1, 0.3) *
                               static_cast<double>(horizon)),
                   horizon));
  }
  return plan;
}

cluster::ClusterConfig random_cluster_config(std::uint64_t seed, int level) {
  Rng rng(seed);
  cluster::ClusterConfig config;
  config.seed = seed;
  config.servers =
      level >= 2 ? 2 : static_cast<std::size_t>(rng.uniform_int(2, 4));

  const double base_sec = level >= 2 ? 2.0 : (level == 1 ? 3.0 : 5.0);
  config.duration = seconds(rng.uniform(base_sec, base_sec * 1.5));
  config.warmup = config.duration / 4;
  config.profiler_period = milliseconds(500);
  config.watcher_period = seconds(1);
  config.zipf_alpha = rng.bernoulli(0.5) ? rng.uniform(0.5, 1.5) : 0.0;

  // Clients must survive reroutes and degradation on their own: timeouts,
  // retries and local fallback always armed (the robust client posture).
  config.runtime.fault.rpc_timeout_sec = rng.uniform(0.2, 0.5);
  config.runtime.fault.max_retries = 2;
  config.runtime.fault.local_fallback = true;

  config.frontend.queue_capacity =
      static_cast<std::size_t>(rng.uniform_int(8, 32));
  const serve::QueuePolicy cluster_policies[] = {
      serve::QueuePolicy::kFifo, serve::QueuePolicy::kEdf,
      serve::QueuePolicy::kSpjf, serve::QueuePolicy::kLeastSlack};
  config.frontend.policy =
      cluster_policies[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  config.frontend.deadline_admission = rng.bernoulli(0.25);
  config.frontend.shed_will_miss = rng.bernoulli(0.25);

  cluster::RouterParams& router = config.router;
  router.placement = rng.bernoulli(0.5)
                         ? cluster::Placement::kLeastLoaded
                         : cluster::Placement::kConsistentHash;
  router.heartbeat_period = milliseconds(rng.uniform_int(100, 400));
  router.rebalance = rng.bernoulli(0.6);
  router.skew_threshold_sec = rng.uniform(0.05, 0.3);
  router.min_dwell = milliseconds(rng.uniform_int(200, 1000));

  // Non-oracle detection: the family's whole point is deciding off a
  // lossy heartbeat stream.
  router.detector.mode = rng.bernoulli(0.5)
                             ? cluster::DetectorParams::Mode::kDeadline
                             : cluster::DetectorParams::Mode::kPhi;
  router.detector.suspect_misses = 2;
  router.detector.dead_misses =
      static_cast<int>(rng.uniform_int(3, 6));
  router.detector.suspect_phi = rng.uniform(0.8, 1.5);
  router.detector.dead_phi =
      router.detector.suspect_phi + rng.uniform(0.5, 1.5);

  // Robust migration machinery, always on: lost transfers are discovered
  // by timeout, retried, and finally aborted back to the source.
  router.migration_timeout = milliseconds(rng.uniform_int(50, 200));
  router.migration_max_retries = static_cast<int>(rng.uniform_int(1, 2));
  router.migration_backoff.base_sec = 0.02;
  router.migration_backoff.max_sec = 0.2;
  router.return_to_source = true;
  router.control_seed = case_seed(seed, 0xc011);

  serve::TenantSpec spec;
  spec.model = rng.bernoulli(0.5) ? "alexnet" : "squeezenet";
  spec.clients =
      level >= 1 ? 2 : static_cast<int>(rng.uniform_int(2, 4));
  spec.upload = net::BandwidthTrace::constant(mbps(rng.uniform(8.0, 32.0)));
  spec.download = spec.upload;
  spec.rtt = milliseconds(rng.uniform_int(1, 5));
  spec.request_gap = milliseconds(rng.uniform_int(5, 30));
  spec.poisson_arrivals = rng.bernoulli(0.5);
  // An SLO arms the deadline machinery (EDF/least-slack keys, deadline
  // admission, will-miss shedding) for this tenant's requests.
  if (rng.bernoulli(0.4)) spec.slo_sec = rng.uniform(0.1, 0.5);
  config.tenants.push_back(spec);

  // Chaos: lossy heartbeat channels per server, a lossy interconnect, and
  // possibly real crash windows for the detector to actually catch.
  for (std::size_t i = 0; i < config.servers; ++i)
    config.heartbeat_faults.push_back(
        random_control_plan(case_seed(seed, 0x4b00 + i), config.duration));
  config.interconnect_faults =
      random_control_plan(case_seed(seed, 0x1c00), config.duration);
  if (rng.bernoulli(0.6)) {
    fault::FaultPlan crash;
    const TimeNs begin = static_cast<TimeNs>(
        rng.uniform(0.2, 0.5) * static_cast<double>(config.duration));
    const TimeNs end =
        begin + static_cast<DurationNs>(
                    rng.uniform(0.1, 0.3) *
                    static_cast<double>(config.duration));
    crash.server_crash(begin, std::min<TimeNs>(end, config.duration));
    config.server_faults.push_back(std::move(crash));
  }
  config.degrade_to_local = true;
  return config;
}

}  // namespace lp::check
