// Differential-testing harness for the decision and serving planes.
//
// Five case families, each reproducible from a single case seed and a
// shrink level (level 0 = full-size, higher = smaller instance):
//   * decision — random graph / predictors / k / bandwidth through
//     core::decide vs decide_brute_force vs the verbatim pseudocode vs the
//     DADS min cut (equality on single-path chains, <= on DAGs);
//   * cache    — random op sequences through partition::PartitionCache vs
//     the obviously-correct ReferenceLru, counters and recency compared
//     after every op;
//   * queue    — random push/pop/take/drain sequences with adversarial
//     prediction magnitudes through serve::RequestQueue vs a linear-scan
//     reference of the same policy order, backlog audited exactly;
//   * fleet    — a randomized fleet (tenants, policies, faults, timeouts)
//     simulated with the invariant auditor armed on every audit period;
//   * cluster  — a randomized multi-server cluster under control-plane
//     chaos (lossy heartbeats, non-oracle failure detection, a lossy
//     migration interconnect with timeout/retry/abort, crash windows),
//     with the cluster conservation + ledger auditor armed every
//     heartbeat period — no chaos schedule may lose an admitted job;
//   * predict  — random regime-switching load traces through every
//     registered load predictor: forecasts stay finite and bounded at all
//     horizons, error statistics stay finite, export→import round-trips
//     bit-identically mid-stream (the clone forecasts the same bits ever
//     after), and the last-value default always forecasts exactly its
//     last observation (the reactive-equivalence invariant).
// A case throws lp::ContractError on divergence; run_diff() adds the case
// index/seed context so any failure is replayable via tools/check_fuzz.
#pragma once

#include <cstdint>
#include <string>

namespace lp::check {

enum class CaseKind { kDecision, kCache, kQueue, kFleet, kCluster, kPredict };

const char* case_kind_name(CaseKind kind);

/// Runs one case of the given family. Deterministic given (seed, level);
/// throws lp::ContractError on any divergence or invariant violation.
void run_case(CaseKind kind, std::uint64_t seed, int level = 0);

// The individual families (run_case dispatches to these).
void decision_case(std::uint64_t seed, int level = 0);
void cache_case(std::uint64_t seed, int level = 0);
void queue_case(std::uint64_t seed, int level = 0);
void fleet_case(std::uint64_t seed, int level = 0);
void cluster_case(std::uint64_t seed, int level = 0);
void predict_case(std::uint64_t seed, int level = 0);

/// Runs `cases` cases of one family, deriving case seeds with
/// case_seed(seed, i). On failure rethrows lp::ContractError prefixed with
/// the family, index and case seed (hex) so the exact case can be replayed
/// with tools/check_fuzz --kind <family> --replay <case-seed>.
/// Returns the number of cases run.
std::uint64_t run_diff(CaseKind kind, std::uint64_t seed,
                       std::uint64_t cases, int level = 0);

}  // namespace lp::check
