// Reference models for differential testing.
//
// Deliberately naive re-implementations of state machines the production
// code keeps clever (intrusive LRU lists, incremental sums): the reference
// does the obviously-correct O(n) thing, and the differential harness
// asserts the production structure agrees after every operation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lp::check {

/// Obviously-correct mirror of partition::PartitionCache: a recency vector
/// (front = most recent) of keys plus hit/miss/eviction tallies, with the
/// same semantics — find refreshes recency, insert-over-existing refreshes,
/// a full insert evicts the back, clear() forgets entries and stats,
/// reset_stats() forgets only stats.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t capacity) : capacity_(capacity) {}

  /// True on hit (and refreshes recency, like PartitionCache::find).
  bool find(std::size_t p) {
    auto it = std::find(keys_.begin(), keys_.end(), p);
    if (it == keys_.end()) {
      ++misses;
      return false;
    }
    ++hits;
    keys_.erase(it);
    keys_.insert(keys_.begin(), p);
    return true;
  }

  void insert(std::size_t p) {
    auto it = std::find(keys_.begin(), keys_.end(), p);
    if (it != keys_.end()) {
      keys_.erase(it);
    } else if (keys_.size() >= capacity_) {
      keys_.pop_back();
      ++evictions;
    }
    keys_.insert(keys_.begin(), p);
  }

  void reset_stats() { hits = misses = evictions = 0; }

  void clear() {
    keys_.clear();
    reset_stats();
  }

  /// Keys most-recent-first — directly comparable to
  /// PartitionCache::lru_keys().
  const std::vector<std::size_t>& keys() const { return keys_; }
  std::size_t size() const { return keys_.size(); }

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

 private:
  std::size_t capacity_;
  std::vector<std::size_t> keys_;
};

}  // namespace lp::check
