// Scriptable fault-injection plan for the simulated edge deployment.
//
// A FaultPlan is pure data: a set of time windows describing what goes
// wrong and when. The runtime wires it into the components that fail —
//   * link faults (blackouts / bandwidth degrades) are spliced into the
//     link's BandwidthTrace (net::apply_link_faults); a zero-bandwidth
//     window is a hard blackout, see net/link.h for the stall contract;
//   * packet-loss windows are sampled per transfer by net::Link;
//   * server crash windows drive serve::EdgeServerFrontend::crash()/
//     restart() through its crash driver process;
//   * straggle windows multiply the server's kernel times (slow replica).
// Windows may be added in any order and may overlap; for link faults the
// last-added window wins where they do. Everything is deterministic: the
// only randomness (Gilbert-Elliott schedules, loss sampling) comes from
// explicit seeds held by the consumers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace lp::fault {

/// Half-open time window [begin, end) in simulated time.
struct FaultWindow {
  TimeNs begin = 0;
  TimeNs end = 0;

  bool contains(TimeNs t) const { return t >= begin && t < end; }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // -- builders (chainable) --

  /// Hard link outage: bandwidth 0 in [begin, end).
  FaultPlan& link_blackout(TimeNs begin, TimeNs end);

  /// Link degrade: bandwidth overridden to `bandwidth` in [begin, end).
  FaultPlan& link_degrade(TimeNs begin, TimeNs end, BitsPerSec bandwidth);

  /// Per-transfer drop probability `prob` in [begin, end).
  FaultPlan& packet_loss(TimeNs begin, TimeNs end, double prob);

  /// Fail-stop server crash at `crash`, restart at `restart`. Volatile
  /// server state (partition caches, k windows, queue) is lost.
  FaultPlan& server_crash(TimeNs crash, TimeNs restart);

  /// Straggler injection: server kernel times scale by `factor` (>= 1) in
  /// [begin, end).
  FaultPlan& straggle(TimeNs begin, TimeNs end, double factor);

  /// Gilbert-Elliott burst schedule as degrade windows: alternating
  /// good/bad dwell times drawn exponentially (starting good), with the
  /// bad state overriding the base trace to `bad_bandwidth` (0 = hard
  /// blackout bursts). Deterministic given the seed.
  static FaultPlan gilbert_elliott_link(DurationNs total,
                                        BitsPerSec bad_bandwidth,
                                        DurationNs mean_good_dwell,
                                        DurationNs mean_bad_dwell,
                                        std::uint64_t seed);

  // -- queries --

  bool empty() const {
    return link_faults_.empty() && loss_windows_.empty() &&
           server_crashes_.empty() && straggles_.empty();
  }

  /// True when a link fault window with bandwidth 0 covers t.
  bool link_down(TimeNs t) const;

  /// Drop probability at t (0 outside every loss window; last-added wins).
  double loss_prob(TimeNs t) const;

  /// True when a crash window covers t.
  bool server_down(TimeNs t) const;

  /// Kernel-time multiplier at t (1 outside every straggle window).
  double straggle_factor(TimeNs t) const;

  struct LinkFault {
    FaultWindow window;
    BitsPerSec bandwidth = 0.0;
  };

  /// Link fault windows in the order added (later entries win overlaps).
  const std::vector<LinkFault>& link_faults() const { return link_faults_; }

  /// Crash windows in the order added.
  const std::vector<FaultWindow>& server_crashes() const {
    return server_crashes_;
  }

 private:
  struct LossWindow {
    FaultWindow window;
    double prob = 0.0;
  };
  struct StraggleWindow {
    FaultWindow window;
    double factor = 1.0;
  };

  std::vector<LinkFault> link_faults_;
  std::vector<LossWindow> loss_windows_;
  std::vector<FaultWindow> server_crashes_;
  std::vector<StraggleWindow> straggles_;
};

}  // namespace lp::fault
