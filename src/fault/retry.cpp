#include "fault/retry.h"

#include <algorithm>

#include "common/check.h"

namespace lp::fault {

DurationNs BackoffPolicy::delay(int attempt, Rng& rng) const {
  LP_CHECK(attempt >= 1);
  LP_CHECK(base_sec >= 0.0 && mult >= 1.0 && max_sec >= base_sec);
  LP_CHECK(jitter_frac >= 0.0 && jitter_frac < 1.0);
  double raw = base_sec;
  for (int i = 1; i < attempt && raw < max_sec; ++i) raw *= mult;
  raw = std::min(raw, max_sec);
  const double u = rng.uniform() * 2.0 - 1.0;  // [-1, 1)
  return std::max<DurationNs>(0, seconds(raw * (1.0 + jitter_frac * u)));
}

CircuitBreaker::CircuitBreaker(int failure_threshold, DurationNs cooldown)
    : threshold_(failure_threshold), cooldown_(cooldown) {
  LP_CHECK(cooldown >= 0);
}

CircuitBreaker::State CircuitBreaker::state(TimeNs now) const {
  const TimeNs t = observed(now);
  if (!open_) return State::kClosed;
  return t >= opened_at_ + cooldown_ ? State::kHalfOpen : State::kOpen;
}

bool CircuitBreaker::allow(TimeNs now) {
  if (!enabled()) return true;
  switch (state(now)) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  open_ = false;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure(TimeNs now) {
  ++consecutive_failures_;
  if (!enabled()) return;
  if (open_) {
    // The half-open probe failed (or a straggling attempt resolved after
    // the breaker opened): restart the cooldown.
    opened_at_ = observed(now);
    probe_in_flight_ = false;
  } else if (consecutive_failures_ >= threshold_) {
    open_ = true;
    opened_at_ = observed(now);
    probe_in_flight_ = false;
  }
}

}  // namespace lp::fault
