// Client-side failure-recovery primitives: retry backoff and a circuit
// breaker.
//
// Both are deterministic. BackoffPolicy draws its jitter from the caller's
// Rng (the same seeded stream that drives everything else in a run), so a
// rerun at the same seed retries at the same instants. The CircuitBreaker
// is the standard closed -> open -> half-open machine: after `threshold`
// consecutive failures it opens and refuses attempts for a cooldown, then
// lets exactly one probe through (half-open); the probe's outcome either
// closes it or re-opens it for another cooldown.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"

namespace lp::fault {

/// Exponential backoff with a multiplicative cap and symmetric jitter.
/// delay(attempt) = min(base * mult^(attempt-1), max) * (1 + jitter_frac*u)
/// with u uniform in [-1, 1) drawn from the caller's Rng.
struct BackoffPolicy {
  double base_sec = 0.05;
  double mult = 2.0;
  double max_sec = 2.0;
  double jitter_frac = 0.1;

  /// Delay before retry number `attempt` (>= 1). Never negative.
  DurationNs delay(int attempt, Rng& rng) const;
};

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  /// `failure_threshold` consecutive failures open the breaker;
  /// <= 0 disables it (allow() is always true). `cooldown` is how long it
  /// stays open before admitting the half-open probe.
  CircuitBreaker(int failure_threshold, DurationNs cooldown);

  /// True when an attempt may proceed. In the half-open state this admits
  /// exactly one probe; further calls return false until the probe's
  /// outcome is recorded.
  ///
  /// Time is clamped internally to the maximum ever observed: sim tasks
  /// can resume out of order and hand in a stale `now`, and without the
  /// clamp state(now) and allow(now) could disagree across such calls
  /// (half-open for one caller, open again for an earlier-stamped one).
  /// The breaker's clock never runs backwards.
  bool allow(TimeNs now);

  /// The attempt succeeded: close the breaker and clear the failure run.
  void record_success();

  /// The attempt failed: extend the failure run; opens the breaker at the
  /// threshold, and re-opens it (restarting the cooldown) when the
  /// half-open probe fails.
  void record_failure(TimeNs now);

  State state(TimeNs now) const;
  int consecutive_failures() const { return consecutive_failures_; }
  bool enabled() const { return threshold_ > 0; }

 private:
  /// Monotonic view of the caller's clock (mutable: state() is logically
  /// const but still advances the high-water mark).
  TimeNs observed(TimeNs now) const {
    if (now > horizon_) horizon_ = now;
    return horizon_;
  }

  int threshold_;
  DurationNs cooldown_;
  int consecutive_failures_ = 0;
  bool open_ = false;
  bool probe_in_flight_ = false;
  TimeNs opened_at_ = 0;
  mutable TimeNs horizon_ = 0;
};

}  // namespace lp::fault
