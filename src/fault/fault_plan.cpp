#include "fault/fault_plan.h"

#include "common/check.h"
#include "common/rng.h"

namespace lp::fault {

namespace {
void check_window(TimeNs begin, TimeNs end) {
  LP_CHECK(begin >= 0);
  LP_CHECK_MSG(end > begin, "empty fault window");
}
}  // namespace

FaultPlan& FaultPlan::link_blackout(TimeNs begin, TimeNs end) {
  return link_degrade(begin, end, 0.0);
}

FaultPlan& FaultPlan::link_degrade(TimeNs begin, TimeNs end,
                                   BitsPerSec bandwidth) {
  check_window(begin, end);
  LP_CHECK(bandwidth >= 0.0);
  link_faults_.push_back({{begin, end}, bandwidth});
  return *this;
}

FaultPlan& FaultPlan::packet_loss(TimeNs begin, TimeNs end, double prob) {
  check_window(begin, end);
  LP_CHECK(prob >= 0.0 && prob <= 1.0);
  loss_windows_.push_back({{begin, end}, prob});
  return *this;
}

FaultPlan& FaultPlan::server_crash(TimeNs crash, TimeNs restart) {
  check_window(crash, restart);
  if (!server_crashes_.empty())
    LP_CHECK_MSG(crash >= server_crashes_.back().end,
                 "crash windows must be added in order and not overlap");
  server_crashes_.push_back({crash, restart});
  return *this;
}

FaultPlan& FaultPlan::straggle(TimeNs begin, TimeNs end, double factor) {
  check_window(begin, end);
  LP_CHECK(factor >= 1.0);
  straggles_.push_back({{begin, end}, factor});
  return *this;
}

FaultPlan FaultPlan::gilbert_elliott_link(DurationNs total,
                                          BitsPerSec bad_bandwidth,
                                          DurationNs mean_good_dwell,
                                          DurationNs mean_bad_dwell,
                                          std::uint64_t seed) {
  LP_CHECK(total > 0 && bad_bandwidth >= 0.0);
  LP_CHECK(mean_good_dwell > 0 && mean_bad_dwell > 0);
  Rng rng(seed);
  FaultPlan plan;
  TimeNs t = 0;
  for (;;) {
    t += static_cast<DurationNs>(
        rng.exponential(static_cast<double>(mean_good_dwell)));
    if (t >= total) break;
    const TimeNs bad_end =
        t + std::max<DurationNs>(
                1, static_cast<DurationNs>(rng.exponential(
                       static_cast<double>(mean_bad_dwell))));
    plan.link_degrade(t, bad_end, bad_bandwidth);
    t = bad_end;
    if (t >= total) break;
  }
  return plan;
}

bool FaultPlan::link_down(TimeNs t) const {
  bool down = false;
  for (const LinkFault& f : link_faults_)
    if (f.window.contains(t)) down = f.bandwidth <= 0.0;
  return down;
}

double FaultPlan::loss_prob(TimeNs t) const {
  double prob = 0.0;
  for (const LossWindow& w : loss_windows_)
    if (w.window.contains(t)) prob = w.prob;
  return prob;
}

bool FaultPlan::server_down(TimeNs t) const {
  for (const FaultWindow& w : server_crashes_)
    if (w.contains(t)) return true;
  return false;
}

double FaultPlan::straggle_factor(TimeNs t) const {
  double factor = 1.0;
  for (const StraggleWindow& w : straggles_)
    if (w.window.contains(t)) factor = w.factor;
  return factor;
}

}  // namespace lp::fault
