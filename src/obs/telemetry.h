// Telemetry: the one handle a layer holds to report anything.
//
// Every instrumented layer (exec::Interpreter, net::Link, core::OffloadClient,
// serve::EdgeServerFrontend / run_fleet) takes an optional `obs::Telemetry*`.
// A null pointer — the default everywhere — means fully off: the layers
// skip instrumentation entirely, so legacy runs are bit-identical to
// pre-telemetry builds.
//
// A Telemetry object always carries a MetricsRegistry (aggregates are
// cheap), and carries a TraceRecorder only when constructed with
// `tracing = true`. Layers gate per-event recording on `trace()`, which is
// null when tracing is off:
//
//   if (auto* tr = telemetry_->trace())
//     tr->span(track_, "transfer", begin, now, ...);
//
// Both sinks record only simulation-deterministic values, so enabling them
// never perturbs a run and two same-seed runs export byte-identical files.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lp::obs {

class Telemetry {
 public:
  explicit Telemetry(bool tracing = false) : tracing_(tracing) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The trace recorder, or null when tracing is disabled.
  TraceRecorder* trace() { return tracing_ ? &trace_ : nullptr; }
  const TraceRecorder* trace() const { return tracing_ ? &trace_ : nullptr; }

  bool tracing() const { return tracing_; }

 private:
  bool tracing_;
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

}  // namespace lp::obs
