// Report: one writer for everything a bench or example publishes.
//
// Each bench used to carry its own CSV dumper and hand-rolled fprintf JSON;
// Report replaces both. A report has a name, a flat set of named scalars
// (headline numbers, config echoes, pass/fail claims) and any number of
// tabular sections (fixed columns, typed rows — a latency series, a
// per-mode comparison). One object serializes to:
//   * JSON  — write_json(path): scalars plus sections as arrays of
//     row-objects, for machine consumption (CI checks, notebooks);
//   * CSV   — write_csv_dir(dir): one <report>_<section>.csv per section
//     (plus <report>_scalars.csv), for gnuplot-style plotting;
//   * maybe_write_csv_env(): the CSV form, gated on LP_CSV_DIR like the
//     old bench/csv_dump.h plumbing it replaces.
//
// All formatting happens at insertion time with fixed printf formats, so
// output is byte-deterministic for identical inputs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace lp::obs {

/// One typed cell. Converts implicitly from the numeric/string types the
/// benches use; renders itself as a JSON fragment and a CSV field.
class Value {
 public:
  Value(double v);                 // NOLINT(google-explicit-constructor)
  Value(std::int64_t v);           // NOLINT(google-explicit-constructor)
  Value(int v) : Value(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(std::size_t v) : Value(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(bool v);                   // NOLINT(google-explicit-constructor)
  Value(const char* v);            // NOLINT(google-explicit-constructor)
  Value(const std::string& v);     // NOLINT(google-explicit-constructor)

  const std::string& json() const { return json_; }
  const std::string& csv() const { return csv_; }

 private:
  std::string json_;
  std::string csv_;
};

class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}
  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  const std::string& name() const { return name_; }

  /// Sets a top-level scalar (last write wins; first-set order is kept).
  void set(const std::string& key, Value v);

  /// A named table with a fixed column set.
  class Section {
   public:
    /// Appends a row; width must match the column count.
    void add_row(std::vector<Value> cells);

    const std::string& name() const { return name_; }
    std::size_t num_rows() const { return rows_.size(); }

   private:
    friend class Report;
    Section(std::string name, std::vector<std::string> columns)
        : name_(std::move(name)), columns_(std::move(columns)) {}
    std::string name_;
    std::vector<std::string> columns_;
    std::vector<std::vector<Value>> rows_;
  };

  /// Create-or-get a section. Re-requesting an existing name returns the
  /// existing section (the column list is ignored then).
  Section& section(const std::string& name, std::vector<std::string> columns);

  std::string to_json() const;
  bool write_json(const std::string& path) const;

  /// Writes <dir>/<name>_scalars.csv (when scalars exist) and one
  /// <dir>/<name>_<section>.csv per section. Returns the paths written,
  /// empty on any I/O failure.
  std::vector<std::string> write_csv_dir(const std::string& dir) const;

  /// write_csv_dir(LP_CSV_DIR) when that env var is set; prints each path
  /// written. Returns false when the env var is unset.
  bool maybe_write_csv_env() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, Value>> scalars_;
  // deque: section() hands out references that must survive later growth.
  std::deque<Section> sections_;
};

}  // namespace lp::obs
