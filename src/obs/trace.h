// Trace recorder: hierarchical spans on the simulated clock, exported in
// Chrome trace-event JSON (load the file at chrome://tracing or
// https://ui.perfetto.dev).
//
// A TraceRecorder owns a set of named *tracks* (one per actor: a client, a
// link, the frontend) and a flat event log. Layers record complete spans
// ("X" events: request, prefix-exec, transfer, batch, suffix-exec), instant
// markers ("i": retries, crashes, admission verdicts), counter series ("C":
// queue depth, arena bytes) and async begin/end pairs ("b"/"e": queue wait,
// which starts in submit() and ends in a different process). Nesting is by
// time containment on a track, exactly as chrome://tracing renders it.
//
// Timestamps are simulated nanoseconds (lp::TimeNs) — never wall-clock —
// and the exporter formats them as exact integer arithmetic, so two runs of
// the same seed serialize byte-identical files. Recording appends to a
// vector and does not read clocks or draw randomness, so enabling tracing
// cannot perturb a simulation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"

namespace lp::obs {

/// Key/value annotations attached to a span or instant ("args" in the
/// Chrome trace format). Values are stored pre-encoded as JSON fragments.
class TraceArgs {
 public:
  TraceArgs& arg(const std::string& key, const std::string& value);
  TraceArgs& arg(const std::string& key, const char* value);
  TraceArgs& arg(const std::string& key, std::int64_t value);
  TraceArgs& arg(const std::string& key, int value) {
    return arg(key, static_cast<std::int64_t>(value));
  }
  TraceArgs& arg(const std::string& key, std::size_t value) {
    return arg(key, static_cast<std::int64_t>(value));
  }
  TraceArgs& arg(const std::string& key, double value);
  TraceArgs& arg(const std::string& key, bool value);

  bool empty() const { return kv_.empty(); }

 private:
  friend class TraceRecorder;
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Handle for one horizontal lane in the trace viewer.
using TrackId = std::uint32_t;

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Create-or-get a track by display name.
  TrackId track(const std::string& name);

  /// Complete span [begin, end] on a track; end >= begin.
  void span(TrackId track, const std::string& name, TimeNs begin, TimeNs end,
            TraceArgs args = {});
  /// Instant marker at one timestamp.
  void instant(TrackId track, const std::string& name, TimeNs at,
               TraceArgs args = {});
  /// One sample of a counter series (rendered as a filled graph).
  void counter(TrackId track, const std::string& name, TimeNs at,
               double value);
  /// Async pair: an interval that starts and ends in different scopes
  /// (e.g. queue wait, keyed by the job's sequence number). Every begin
  /// must be matched by an end with the same (name, id).
  void async_begin(TrackId track, const std::string& name, std::uint64_t id,
                   TimeNs at, TraceArgs args = {});
  void async_end(TrackId track, const std::string& name, std::uint64_t id,
                 TimeNs at);

  std::size_t num_events() const { return events_.size(); }
  std::size_t num_tracks() const { return track_names_.size(); }

  /// Serializes the whole trace as Chrome trace-event JSON. Output is a
  /// pure function of the recorded events: byte-identical across runs
  /// that recorded the same events.
  std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X', 'i', 'C', 'b', 'e'
    TrackId track;
    std::string name;
    TimeNs ts;
    DurationNs dur;    // 'X' only
    std::uint64_t id;  // 'b'/'e' only
    std::string args_json;
  };

  std::vector<std::string> track_names_;
  std::vector<Event> events_;
};

}  // namespace lp::obs
