#include "obs/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace lp::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Value::Value(double v) {
  LP_CHECK_MSG(!std::isnan(v), "report value is NaN");
  json_ = csv_ = fmt_double(v);
}

Value::Value(std::int64_t v) { json_ = csv_ = std::to_string(v); }

Value::Value(bool v) { json_ = csv_ = v ? "true" : "false"; }

Value::Value(const char* v) : Value(std::string(v)) {}

Value::Value(const std::string& v) : csv_(csv_escape(v)) {
  json_ = '"';
  json_ += json_escape(v);
  json_ += '"';
}

void Report::set(const std::string& key, Value v) {
  for (auto& [k, existing] : scalars_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  scalars_.emplace_back(key, std::move(v));
}

void Report::Section::add_row(std::vector<Value> cells) {
  LP_CHECK_MSG(cells.size() == columns_.size(),
               "row width does not match columns in section " + name_);
  rows_.push_back(std::move(cells));
}

Report::Section& Report::section(const std::string& name,
                                 std::vector<std::string> columns) {
  for (Section& s : sections_)
    if (s.name_ == name) return s;
  sections_.push_back(Section(name, std::move(columns)));
  return sections_.back();
}

std::string Report::to_json() const {
  std::string out = "{\n  \"name\": \"" + json_escape(name_) + "\"";
  if (!scalars_.empty()) {
    out += ",\n  \"scalars\": {";
    bool first = true;
    for (const auto& [k, v] : scalars_) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      out += json_escape(k);
      out += "\": ";
      out += v.json();
    }
    out += "\n  }";
  }
  if (!sections_.empty()) {
    out += ",\n  \"sections\": {";
    bool first_section = true;
    for (const Section& s : sections_) {
      out += first_section ? "\n" : ",\n";
      first_section = false;
      out += "    \"";
      out += json_escape(s.name_);
      out += "\": [";
      bool first_row = true;
      for (const auto& row : s.rows_) {
        out += first_row ? "\n" : ",\n";
        first_row = false;
        out += "      {";
        for (std::size_t i = 0; i < row.size(); ++i) {
          if (i > 0) out += ", ";
          out += '"';
          out += json_escape(s.columns_[i]);
          out += "\": ";
          out += row[i].json();
        }
        out += "}";
      }
      out += s.rows_.empty() ? "]" : "\n    ]";
    }
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

bool Report::write_json(const std::string& path) const {
  return write_file(path, to_json());
}

std::vector<std::string> Report::write_csv_dir(const std::string& dir) const {
  std::vector<std::string> written;
  if (!scalars_.empty()) {
    std::string body = "key,value\n";
    for (const auto& [k, v] : scalars_)
      body += csv_escape(k) + "," + v.csv() + "\n";
    const std::string path = dir + "/" + name_ + "_scalars.csv";
    if (!write_file(path, body)) return {};
    written.push_back(path);
  }
  for (const Section& s : sections_) {
    std::string body;
    for (std::size_t i = 0; i < s.columns_.size(); ++i) {
      if (i > 0) body += ",";
      body += csv_escape(s.columns_[i]);
    }
    body += "\n";
    for (const auto& row : s.rows_) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i > 0) body += ",";
        body += row[i].csv();
      }
      body += "\n";
    }
    const std::string path = dir + "/" + name_ + "_" + s.name_ + ".csv";
    if (!write_file(path, body)) return {};
    written.push_back(path);
  }
  return written;
}

bool Report::maybe_write_csv_env() const {
  const char* dir = std::getenv("LP_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return false;
  for (const std::string& path : write_csv_dir(dir))
    std::printf("[report written to %s]\n", path.c_str());
  return true;
}

}  // namespace lp::obs
