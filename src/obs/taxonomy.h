// The one request-outcome taxonomy every layer reports through.
//
// Before this header existed, three parallel vocabularies described what
// happened to a request: InferenceRecord's outcome/failure fields, the
// FleetDriver's hand-maintained tenant counters, and each fault bench's
// private tallies. They drifted (and double-counted) independently. Now
// the enums live here, next to the MetricsRegistry they publish into, and
// OutcomeCounts is the single accumulator all of them share:
//   * core::InferenceOutcome / core::FailureKind are aliases of Outcome /
//     FailureKind below;
//   * serve::TenantSummary wraps an OutcomeCounts instead of a dozen
//     counter fields;
//   * benches fold records with OutcomeCounts::add and read the typed
//     accessors instead of re-implementing the switch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lp::obs {

class MetricsRegistry;

/// What happened to one inference request at the serving layer.
enum class Outcome : std::uint8_t {
  kLocalDecision,  ///< the policy chose p = n; nothing left the device
  kAdmitted,       ///< the suffix was admitted and served by the edge
  kDegradedLocal,  ///< shed by the server; the suffix re-ran on the device
  kRecoveredLocal, ///< offload path faulted; the suffix re-ran on the
                   ///< device from the boundary tensor (failover)
  kFailed,         ///< faulted with local_fallback off: the request is lost
};
inline constexpr std::size_t kOutcomeCount = 5;

/// The last fault a request observed on its offload path (kShed is the
/// admission-control "server busy" reply; the rest are failures).
enum class FailureKind : std::uint8_t {
  kNone,
  kTimeout,       ///< the per-attempt RPC deadline expired
  kLinkDrop,      ///< injected packet loss killed a transfer
  kServerDown,    ///< the server crashed mid-request or refused as down
  kShed,          ///< admission control shed the request
  kDeadlineShed,  ///< the dispatcher dropped the queued job because its
                  ///< deadline had already passed (a guaranteed SLO miss)
};
inline constexpr std::size_t kFailureKindCount = 6;

const char* outcome_name(Outcome outcome);
const char* failure_name(FailureKind kind);

/// Typed tally of request outcomes and fault taxonomy — the accumulator
/// behind TenantSummary and the fault benches. add() is O(1); publish()
/// mirrors the counts into a MetricsRegistry under `prefix.`.
class OutcomeCounts {
 public:
  /// Folds one finished request: its outcome, its last failure, and its
  /// retry/fault/breaker accounting.
  void add(Outcome outcome, FailureKind last_failure = FailureKind::kNone,
           int retries = 0, int faults = 0, bool breaker_forced_local = false);

  std::size_t count(Outcome outcome) const {
    return by_outcome_[static_cast<std::size_t>(outcome)];
  }
  std::size_t count(FailureKind kind) const {
    return by_failure_[static_cast<std::size_t>(kind)];
  }

  /// Every request folded in, whatever its outcome.
  std::size_t requests() const { return requests_; }
  std::size_t local() const { return count(Outcome::kLocalDecision); }
  std::size_t admitted() const { return count(Outcome::kAdmitted); }
  std::size_t degraded() const { return count(Outcome::kDegradedLocal); }
  std::size_t recovered() const { return count(Outcome::kRecoveredLocal); }
  std::size_t failed() const { return count(Outcome::kFailed); }
  std::size_t timeouts() const { return count(FailureKind::kTimeout); }
  std::size_t link_drops() const { return count(FailureKind::kLinkDrop); }
  std::size_t server_downs() const { return count(FailureKind::kServerDown); }
  std::size_t deadline_sheds() const {
    return count(FailureKind::kDeadlineShed);
  }
  std::size_t retries() const { return retries_; }
  std::size_t faults() const { return faults_; }
  std::size_t breaker_forced_local() const { return breaker_forced_local_; }

  /// Mirrors every non-zero-meaning count into `registry` as counters
  /// named "<prefix>.outcome.<name>", "<prefix>.failure.<name>",
  /// "<prefix>.retries", "<prefix>.faults", "<prefix>.breaker_local".
  void publish(MetricsRegistry& registry, const std::string& prefix) const;

 private:
  std::size_t by_outcome_[kOutcomeCount] = {};
  std::size_t by_failure_[kFailureKindCount] = {};
  std::size_t requests_ = 0;
  std::size_t retries_ = 0;
  std::size_t faults_ = 0;
  std::size_t breaker_forced_local_ = 0;
};

}  // namespace lp::obs
