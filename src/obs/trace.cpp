#include "obs/trace.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace lp::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Chrome traces use microsecond timestamps; we keep full nanosecond
// precision by formatting ns as a fixed-point µs decimal with integer
// arithmetic only — no floats, so serialization is trivially
// byte-deterministic.
std::string fmt_us(std::int64_t ns) {
  LP_CHECK_MSG(ns >= 0, "negative trace timestamp");
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / kNsPerUs,
                ns % kNsPerUs);
  return buf;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

TraceArgs& TraceArgs::arg(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  quoted += json_escape(value);
  quoted += '"';
  kv_.emplace_back(key, std::move(quoted));
  return *this;
}

TraceArgs& TraceArgs::arg(const std::string& key, const char* value) {
  return arg(key, std::string(value));
}

TraceArgs& TraceArgs::arg(const std::string& key, std::int64_t value) {
  kv_.emplace_back(key, std::to_string(value));
  return *this;
}

TraceArgs& TraceArgs::arg(const std::string& key, double value) {
  LP_CHECK_MSG(!std::isnan(value), "trace arg is NaN: " + key);
  kv_.emplace_back(key, fmt_double(value));
  return *this;
}

TraceArgs& TraceArgs::arg(const std::string& key, bool value) {
  kv_.emplace_back(key, value ? "true" : "false");
  return *this;
}

TrackId TraceRecorder::track(const std::string& name) {
  for (std::size_t i = 0; i < track_names_.size(); ++i)
    if (track_names_[i] == name) return static_cast<TrackId>(i);
  track_names_.push_back(name);
  return static_cast<TrackId>(track_names_.size() - 1);
}

namespace {

std::string kv_to_json(
    const std::vector<std::pair<std::string, std::string>>& kv) {
  std::string json;
  for (const auto& [k, v] : kv) {
    if (!json.empty()) json += ", ";
    json += '"';
    json += json_escape(k);
    json += "\": ";
    json += v;
  }
  return json;
}

}  // namespace

void TraceRecorder::span(TrackId track, const std::string& name, TimeNs begin,
                         TimeNs end, TraceArgs args) {
  LP_CHECK(track < track_names_.size());
  LP_CHECK_MSG(end >= begin, "span ends before it begins: " + name);
  events_.push_back(
      Event{'X', track, name, begin, end - begin, 0, kv_to_json(args.kv_)});
}

void TraceRecorder::instant(TrackId track, const std::string& name, TimeNs at,
                            TraceArgs args) {
  LP_CHECK(track < track_names_.size());
  events_.push_back(Event{'i', track, name, at, 0, 0, kv_to_json(args.kv_)});
}

void TraceRecorder::counter(TrackId track, const std::string& name, TimeNs at,
                            double value) {
  LP_CHECK(track < track_names_.size());
  LP_CHECK_MSG(!std::isnan(value), "counter sample is NaN: " + name);
  Event e{'C', track, name, at, 0, 0, {}};
  e.args_json = '"';
  e.args_json += json_escape(name);
  e.args_json += "\": ";
  e.args_json += fmt_double(value);
  events_.push_back(std::move(e));
}

void TraceRecorder::async_begin(TrackId track, const std::string& name,
                                std::uint64_t id, TimeNs at, TraceArgs args) {
  LP_CHECK(track < track_names_.size());
  events_.push_back(Event{'b', track, name, at, 0, id, kv_to_json(args.kv_)});
}

void TraceRecorder::async_end(TrackId track, const std::string& name,
                              std::uint64_t id, TimeNs at) {
  LP_CHECK(track < track_names_.size());
  events_.push_back(Event{'e', track, name, at, 0, id, {}});
}

std::string TraceRecorder::to_chrome_json() const {
  // All events share pid 1; each track is a "thread" named via a metadata
  // event so chrome://tracing labels the lanes.
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  for (std::size_t i = 0; i < track_names_.size(); ++i) {
    emit("{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(i + 1) +
         ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
         json_escape(track_names_[i]) + "\"}}");
  }
  for (const Event& e : events_) {
    std::string line = "{\"ph\": \"";
    line += e.phase;
    line += "\", \"pid\": 1, \"tid\": " + std::to_string(e.track + 1) +
            ", \"ts\": " + fmt_us(e.ts) + ", \"name\": \"" +
            json_escape(e.name) + "\"";
    if (e.phase == 'X') line += ", \"dur\": " + fmt_us(e.dur);
    if (e.phase == 'i') line += ", \"s\": \"t\"";
    if (e.phase == 'b' || e.phase == 'e')
      line += ", \"cat\": \"async\", \"id\": " + std::to_string(e.id);
    if (!e.args_json.empty()) line += ", \"args\": {" + e.args_json + "}";
    line += "}";
    emit(line);
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_chrome_json();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace lp::obs
