// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// One MetricsRegistry collects every aggregate the system reports — request
// outcomes, transfer bytes, queue depths, latency distributions — behind a
// single API instead of the ad-hoc counter structs each layer used to
// maintain. Handles returned by counter()/gauge()/histogram() are stable
// for the registry's lifetime, so hot paths look up a metric once (at
// attach time) and record through the handle in O(1): counters and gauges
// are a single add/store, histograms index a uniform-width bucket directly.
//
// Recording never allocates, reads clocks, or draws randomness, so
// instrumented simulation runs stay bit-identical to uninstrumented ones.
// Snapshots export as JSON or CSV in name order, byte-identical across two
// runs of the same seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lp::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-write-wins level with a high-water mark.
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (!seen_ || v > max_) max_ = v;
    seen_ = true;
  }
  double value() const { return value_; }
  double max() const { return seen_ ? max_ : 0.0; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  bool seen_ = false;
};

/// Fixed uniform-bucket histogram over [lo, hi): `buckets` equal-width
/// bins plus an underflow (x < lo) and an overflow (x >= hi) bin.
/// record() is O(1) — the bucket index is arithmetic, not a search.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void record(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / double(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Interior buckets only (underflow/overflow via the accessors below).
  std::size_t buckets() const { return bins_.size(); }
  std::size_t bucket_count(std::size_t i) const { return bins_[i]; }
  /// Lower edge of interior bucket i; bucket i spans [edge(i), edge(i+1)).
  double edge(std::size_t i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  /// Percentile estimate from the bucket counts, linearly interpolated
  /// within the containing bucket — the same linear-interpolation
  /// convention as lp::percentile (see common/stats.h). q in [0, 100];
  /// requires count() > 0. Underflow clamps to lo, overflow to max().
  double percentile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> bins_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Create-or-get registry of named metrics. Handles stay valid for the
/// registry's lifetime; names are exported in sorted order.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get. A histogram's shape is fixed by its first creation;
  /// re-requesting an existing name returns the existing instance (the
  /// shape arguments are ignored then). Requesting an existing name as a
  /// different metric kind is a contract error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t buckets);

  /// Lookup without creation; null when absent (or a different kind).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const;

  /// Snapshot as a JSON object keyed by metric name, in name order.
  std::string to_json() const;
  /// Snapshot as CSV rows: name,kind,field,value — one row per field.
  std::string to_csv() const;
  bool write_json(const std::string& path) const;
  bool write_csv(const std::string& path) const;

 private:
  // std::map iterates in name order (deterministic export) and never
  // invalidates element addresses (stable handles).
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace lp::obs
