#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace lp::obs {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  LP_CHECK_MSG(buckets > 0, "histogram needs at least one bucket");
  LP_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  LP_CHECK_MSG(!std::isnan(lo) && !std::isnan(hi), "histogram edge is NaN");
  bins_.assign(buckets, 0);
}

void Histogram::record(double x) {
  LP_CHECK_MSG(!std::isnan(x), "histogram sample is NaN");
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    // Guard the edge where (x - lo) / width rounds up to the bucket count
    // (x just below hi with an inexact width).
    if (i >= bins_.size()) i = bins_.size() - 1;
    ++bins_[i];
  }
}

double Histogram::edge(std::size_t i) const {
  LP_CHECK(i <= bins_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::percentile(double q) const {
  LP_CHECK_MSG(count_ > 0, "percentile of an empty histogram");
  LP_CHECK_MSG(!std::isnan(q), "percentile quantile is NaN");
  q = std::min(100.0, std::max(0.0, q));
  // Target rank under the same linear convention as lp::percentile:
  // rank = q/100 * (n - 1), interpolated between order statistics. With
  // only bucket counts we place a bucket's mass uniformly across it.
  const double rank = q / 100.0 * static_cast<double>(count_ - 1);
  double below = static_cast<double>(underflow_);
  if (rank < below) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double in_bucket = static_cast<double>(bins_[i]);
    if (in_bucket > 0.0 && rank < below + in_bucket) {
      const double frac = (rank - below) / in_bucket;
      return edge(i) + frac * width_;
    }
    below += in_bucket;
  }
  return max();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  LP_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "metric registered as a different kind: " + name);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  LP_CHECK_MSG(counters_.find(name) == counters_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "metric registered as a different kind: " + name);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t buckets) {
  LP_CHECK_MSG(counters_.find(name) == counters_.end() &&
                   gauges_.find(name) == gauges_.end(),
               "metric registered as a different kind: " + name);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, Histogram(lo, hi, buckets)).first;
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n";
  bool first = true;
  auto emit = [&](const std::string& name, const std::string& body) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + name + "\": " + body;
  };
  // Kinds interleave in one global name order via a three-way merge over
  // the already-sorted maps.
  auto c = counters_.begin();
  auto g = gauges_.begin();
  auto h = histograms_.begin();
  while (c != counters_.end() || g != gauges_.end() ||
         h != histograms_.end()) {
    const std::string* cn = c != counters_.end() ? &c->first : nullptr;
    const std::string* gn = g != gauges_.end() ? &g->first : nullptr;
    const std::string* hn = h != histograms_.end() ? &h->first : nullptr;
    auto lesser = [](const std::string* a, const std::string* b) {
      return b == nullptr || (a != nullptr && *a < *b);
    };
    if (cn != nullptr && lesser(cn, gn) && lesser(cn, hn)) {
      emit(*cn, "{\"kind\": \"counter\", \"value\": " +
                    std::to_string(c->second.value()) + "}");
      ++c;
    } else if (gn != nullptr && lesser(gn, hn)) {
      emit(*gn, "{\"kind\": \"gauge\", \"value\": " +
                    fmt_double(g->second.value()) +
                    ", \"max\": " + fmt_double(g->second.max()) + "}");
      ++g;
    } else {
      const Histogram& hist = h->second;
      std::string body = "{\"kind\": \"histogram\", \"count\": " +
                         std::to_string(hist.count()) +
                         ", \"sum\": " + fmt_double(hist.sum()) +
                         ", \"min\": " + fmt_double(hist.min()) +
                         ", \"max\": " + fmt_double(hist.max()) +
                         ", \"lo\": " + fmt_double(hist.lo()) +
                         ", \"hi\": " + fmt_double(hist.hi()) +
                         ", \"underflow\": " +
                         std::to_string(hist.underflow()) +
                         ", \"overflow\": " + std::to_string(hist.overflow()) +
                         ", \"buckets\": [";
      for (std::size_t i = 0; i < hist.buckets(); ++i) {
        if (i > 0) body += ", ";
        body += std::to_string(hist.bucket_count(i));
      }
      body += "]}";
      emit(h->first, body);
      ++h;
    }
  }
  out += "\n}\n";
  return out;
}

std::string MetricsRegistry::to_csv() const {
  std::string out = "name,kind,field,value\n";
  for (const auto& [name, counter] : counters_)
    out += name + ",counter,value," + std::to_string(counter.value()) + "\n";
  for (const auto& [name, gauge] : gauges_) {
    out += name + ",gauge,value," + fmt_double(gauge.value()) + "\n";
    out += name + ",gauge,max," + fmt_double(gauge.max()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out += name + ",histogram,count," + std::to_string(hist.count()) + "\n";
    out += name + ",histogram,sum," + fmt_double(hist.sum()) + "\n";
    out += name + ",histogram,min," + fmt_double(hist.min()) + "\n";
    out += name + ",histogram,max," + fmt_double(hist.max()) + "\n";
    out += name + ",histogram,underflow," +
           std::to_string(hist.underflow()) + "\n";
    out +=
        name + ",histogram,overflow," + std::to_string(hist.overflow()) + "\n";
    for (std::size_t i = 0; i < hist.buckets(); ++i)
      out += name + ",histogram,bucket" + std::to_string(i) + "," +
             std::to_string(hist.bucket_count(i)) + "\n";
  }
  return out;
}

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

bool MetricsRegistry::write_json(const std::string& path) const {
  return write_file(path, to_json());
}

bool MetricsRegistry::write_csv(const std::string& path) const {
  return write_file(path, to_csv());
}

}  // namespace lp::obs
