#include "obs/taxonomy.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace lp::obs {

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kLocalDecision:
      return "local";
    case Outcome::kAdmitted:
      return "admitted";
    case Outcome::kDegradedLocal:
      return "degraded_local";
    case Outcome::kRecoveredLocal:
      return "recovered_local";
    case Outcome::kFailed:
      return "failed";
  }
  LP_CHECK_MSG(false, "unknown outcome");
  return "?";
}

const char* failure_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:
      return "none";
    case FailureKind::kTimeout:
      return "timeout";
    case FailureKind::kLinkDrop:
      return "link_drop";
    case FailureKind::kServerDown:
      return "server_down";
    case FailureKind::kShed:
      return "shed";
    case FailureKind::kDeadlineShed:
      return "deadline_shed";
  }
  LP_CHECK_MSG(false, "unknown failure kind");
  return "?";
}

void OutcomeCounts::add(Outcome outcome, FailureKind last_failure, int retries,
                        int faults, bool breaker_forced_local) {
  ++requests_;
  ++by_outcome_[static_cast<std::size_t>(outcome)];
  ++by_failure_[static_cast<std::size_t>(last_failure)];
  retries_ += static_cast<std::size_t>(retries);
  faults_ += static_cast<std::size_t>(faults);
  if (breaker_forced_local) ++breaker_forced_local_;
}

void OutcomeCounts::publish(MetricsRegistry& registry,
                            const std::string& prefix) const {
  registry.counter(prefix + ".requests").add(std::int64_t(requests_));
  for (std::size_t i = 0; i < kOutcomeCount; ++i) {
    const auto outcome = static_cast<Outcome>(i);
    registry.counter(prefix + ".outcome." + outcome_name(outcome))
        .add(std::int64_t(count(outcome)));
  }
  for (std::size_t i = 1; i < kFailureKindCount; ++i) {
    const auto kind = static_cast<FailureKind>(i);
    registry.counter(prefix + ".failure." + failure_name(kind))
        .add(std::int64_t(count(kind)));
  }
  registry.counter(prefix + ".retries").add(std::int64_t(retries_));
  registry.counter(prefix + ".faults").add(std::int64_t(faults_));
  registry.counter(prefix + ".breaker_local")
      .add(std::int64_t(breaker_forced_local_));
}

}  // namespace lp::obs
