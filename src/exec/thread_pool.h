// Minimal fork-join worker pool for the optimized execution path.
//
// parallel_for splits [begin, end) into a fixed set of contiguous chunks
// whose boundaries depend only on the range, the grain, and the pool size —
// never on scheduling. Kernels assign every output element to exactly one
// chunk and use a fixed per-element operation order, so results are
// bit-identical for any interleaving of chunk execution (and, for the
// kernels in exec/kernels.h, for any thread count).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lp::exec {

class ThreadPool {
 public:
  /// `num_threads` counts the calling thread, so the pool spawns
  /// `num_threads - 1` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  using RangeFn = std::function<void(std::int64_t, std::int64_t)>;

  /// Runs fn over disjoint sub-ranges that exactly cover [begin, end),
  /// on the calling thread plus the pool workers; blocks until every chunk
  /// has retired. `grain` is the smallest worthwhile chunk: ranges shorter
  /// than two grains (or a pool of one) run inline on the caller. Not
  /// reentrant; fn must not throw.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const RangeFn& fn);

 private:
  void worker_loop();
  /// Claims and runs chunks of the current job until none remain; shared by
  /// the calling thread and the workers.
  void run_chunks(const RangeFn& fn);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // Current job. All fields are published under mu_ before workers wake;
  // next_ is the only field touched concurrently afterwards. parallel_for
  // waits until every worker acknowledged the job, so no field is rewritten
  // while a worker could still read it.
  const RangeFn* fn_ = nullptr;
  std::int64_t begin_ = 0;
  std::int64_t end_ = 0;
  std::int64_t chunk_ = 0;
  std::int64_t num_chunks_ = 0;
  std::atomic<std::int64_t> next_{0};
  std::uint64_t generation_ = 0;
  std::size_t acked_ = 0;
  bool stop_ = false;
};

}  // namespace lp::exec
