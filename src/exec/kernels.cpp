#include "exec/kernels.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace lp::exec {

namespace {

// GEMM micro-kernel: an MR x NR tile of output elements, each accumulated
// in its own double chain over the full K extent in ascending k order —
// exactly the reference's per-element order, but with MR*NR independent
// chains in flight for instruction-level parallelism.
template <int MR, int NR>
void micro_kernel(const float* const* wr, const float* const* cl,
                  std::int64_t k_extent, double* acc) {
  double a[MR * NR] = {};
  for (std::int64_t k = 0; k < k_extent; ++k) {
    double bv[NR];
    for (int j = 0; j < NR; ++j) bv[j] = static_cast<double>(cl[j][k]);
    for (int i = 0; i < MR; ++i) {
      const double av = static_cast<double>(wr[i][k]);
      for (int j = 0; j < NR; ++j) a[i * NR + j] += av * bv[j];
    }
  }
  for (int i = 0; i < MR * NR; ++i) acc[i] = a[i];
}

using MicroFn = void (*)(const float* const*, const float* const*,
                         std::int64_t, double*);

/// micro_kernel instantiation for a (possibly partial) mr x nr tile.
MicroFn micro_for(int mr, int nr) {
  static constexpr MicroFn kTable[4][4] = {
      {micro_kernel<1, 1>, micro_kernel<1, 2>, micro_kernel<1, 3>,
       micro_kernel<1, 4>},
      {micro_kernel<2, 1>, micro_kernel<2, 2>, micro_kernel<2, 3>,
       micro_kernel<2, 4>},
      {micro_kernel<3, 1>, micro_kernel<3, 2>, micro_kernel<3, 3>,
       micro_kernel<3, 4>},
      {micro_kernel<4, 1>, micro_kernel<4, 2>, micro_kernel<4, 3>,
       micro_kernel<4, 4>},
  };
  return kTable[mr - 1][nr - 1];
}

constexpr std::int64_t kPixelBlock = 64;  // im2col panel width (pixels)

/// Packs the im2col patches of output pixels [px0, px1) of image n into
/// `panel`, one contiguous K-column per pixel, k ordered (ic, kh, kw) to
/// match the reference accumulation order. Out-of-bounds taps become 0.0f.
void pack_panel(const float* x, std::int64_t ic_extent, std::int64_t ih,
                std::int64_t iw, const graph::ConvAttrs& a, std::int64_t ow,
                std::int64_t px0, std::int64_t px1, float* panel) {
  const std::int64_t k_extent = ic_extent * a.kernel_h * a.kernel_w;
  for (std::int64_t px = px0; px < px1; ++px) {
    float* dst = panel + (px - px0) * k_extent;
    const std::int64_t oh = px / ow;
    const std::int64_t h0 = oh * a.stride_h - a.pad_h;
    const std::int64_t w0 = (px % ow) * a.stride_w - a.pad_w;
    for (std::int64_t ic = 0; ic < ic_extent; ++ic) {
      const float* plane = x + ic * ih * iw;
      for (std::int64_t kh = 0; kh < a.kernel_h; ++kh) {
        const std::int64_t y = h0 + kh;
        if (y < 0 || y >= ih) {
          std::memset(dst, 0, static_cast<std::size_t>(a.kernel_w) *
                                  sizeof(float));
          dst += a.kernel_w;
          continue;
        }
        const float* row = plane + y * iw;
        for (std::int64_t kw = 0; kw < a.kernel_w; ++kw) {
          const std::int64_t xw = w0 + kw;
          *dst++ = (xw < 0 || xw >= iw) ? 0.0f : row[xw];
        }
      }
    }
  }
}

Tensor conv2d_im2col(const Tensor& x, const Tensor& w,
                     const graph::ConvAttrs& a, const Shape& out_shape,
                     const Epilogue& ep, ThreadPool& pool) {
  Tensor out(out_shape);
  const std::int64_t batch = out_shape.n(), oc_extent = out_shape.c();
  const std::int64_t oh = out_shape.h(), ow = out_shape.w();
  const std::int64_t ic_extent = x.shape().c();
  const std::int64_t ih = x.shape().h(), iw = x.shape().w();
  const std::int64_t k_extent = ic_extent * a.kernel_h * a.kernel_w;
  const std::int64_t pixels = oh * ow;
  const std::int64_t blocks_per_image =
      (pixels + kPixelBlock - 1) / kPixelBlock;

  pool.parallel_for(
      0, batch * blocks_per_image, 1,
      [&](std::int64_t lo, std::int64_t hi) {
        std::vector<float> panel(
            static_cast<std::size_t>(kPixelBlock * k_extent));
        for (std::int64_t blk = lo; blk < hi; ++blk) {
          const std::int64_t n = blk / blocks_per_image;
          const std::int64_t px0 = (blk % blocks_per_image) * kPixelBlock;
          const std::int64_t px1 = std::min(px0 + kPixelBlock, pixels);
          const float* xn = x.data() + n * ic_extent * ih * iw;
          pack_panel(xn, ic_extent, ih, iw, a, ow, px0, px1, panel.data());

          float* yn = out.data() + n * oc_extent * pixels;
          for (std::int64_t oc0 = 0; oc0 < oc_extent; oc0 += 4) {
            const int mr = static_cast<int>(std::min<std::int64_t>(
                4, oc_extent - oc0));
            const float* wr[4];
            for (int i = 0; i < mr; ++i)
              wr[i] = w.data() + (oc0 + i) * k_extent;
            for (std::int64_t p0 = px0; p0 < px1; p0 += 4) {
              const int nr =
                  static_cast<int>(std::min<std::int64_t>(4, px1 - p0));
              const float* cl[4];
              for (int j = 0; j < nr; ++j)
                cl[j] = panel.data() + (p0 - px0 + j) * k_extent;
              double acc[16];
              micro_for(mr, nr)(wr, cl, k_extent, acc);
              for (int i = 0; i < mr; ++i)
                for (int j = 0; j < nr; ++j)
                  yn[(oc0 + i) * pixels + p0 + j] = ep.apply(
                      static_cast<float>(acc[i * nr + j]), oc0 + i);
            }
          }
        }
      });
  return out;
}

Tensor conv2d_depthwise(const Tensor& x, const Tensor& w,
                        const graph::ConvAttrs& a, const Shape& out_shape,
                        const Epilogue& ep, ThreadPool& pool) {
  Tensor out(out_shape);
  const std::int64_t batch = out_shape.n(), channels = out_shape.c();
  const std::int64_t oh = out_shape.h(), ow = out_shape.w();
  const std::int64_t ih = x.shape().h(), iw = x.shape().w();

  pool.parallel_for(
      0, batch * channels, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t row = lo; row < hi; ++row) {
          const std::int64_t c = row % channels;
          const float* xc = x.data() + row * ih * iw;
          const float* wc = w.data() + c * a.kernel_h * a.kernel_w;
          float* yc = out.data() + row * oh * ow;
          for (std::int64_t y = 0; y < oh; ++y)
            for (std::int64_t z = 0; z < ow; ++z) {
              double acc = 0.0;
              for (std::int64_t kh = 0; kh < a.kernel_h; ++kh) {
                const std::int64_t sy = y * a.stride_h - a.pad_h + kh;
                if (sy < 0 || sy >= ih) continue;
                for (std::int64_t kw = 0; kw < a.kernel_w; ++kw) {
                  const std::int64_t sx = z * a.stride_w - a.pad_w + kw;
                  if (sx < 0 || sx >= iw) continue;
                  acc += static_cast<double>(xc[sy * iw + sx]) *
                         static_cast<double>(wc[kh * a.kernel_w + kw]);
                }
              }
              yc[y * ow + z] = ep.apply(static_cast<float>(acc), c);
            }
        }
      });
  return out;
}

}  // namespace

Tensor conv2d_fast(const Tensor& x, const Tensor& w, const graph::ConvAttrs& a,
                   const Shape& out_shape, bool depthwise, const Epilogue& ep,
                   ThreadPool& pool) {
  return depthwise ? conv2d_depthwise(x, w, a, out_shape, ep, pool)
                   : conv2d_im2col(x, w, a, out_shape, ep, pool);
}

Tensor matmul_fast(const Tensor& x, const Tensor& w, const Shape& out_shape,
                   const Epilogue& ep, ThreadPool& pool) {
  Tensor out(out_shape);
  const std::int64_t rows = x.shape().dim(0);
  const std::int64_t inner = x.shape().dim(1);
  const std::int64_t cols = out_shape.dim(1);
  constexpr std::int64_t kColBlock = 8;
  const std::int64_t blocks = (cols + kColBlock - 1) / kColBlock;

  pool.parallel_for(0, rows * blocks, 1, [&](std::int64_t lo,
                                             std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t r = t / blocks;
      const std::int64_t c0 = (t % blocks) * kColBlock;
      const int nc =
          static_cast<int>(std::min<std::int64_t>(kColBlock, cols - c0));
      const float* xr = x.data() + r * inner;
      const float* wc = w.data() + c0;
      double acc[kColBlock] = {};
      if (nc == kColBlock) {
        for (std::int64_t k = 0; k < inner; ++k) {
          const double xv = static_cast<double>(xr[k]);
          const float* wrow = wc + k * cols;
          for (int j = 0; j < kColBlock; ++j)
            acc[j] += xv * static_cast<double>(wrow[j]);
        }
      } else {
        for (std::int64_t k = 0; k < inner; ++k) {
          const double xv = static_cast<double>(xr[k]);
          const float* wrow = wc + k * cols;
          for (int j = 0; j < nc; ++j)
            acc[j] += xv * static_cast<double>(wrow[j]);
        }
      }
      for (int j = 0; j < nc; ++j)
        out.data()[r * cols + c0 + j] =
            ep.apply(static_cast<float>(acc[j]), c0 + j);
    }
  });
  return out;
}

Tensor pool2d_fast(const Tensor& x, const graph::PoolAttrs& a,
                   const Shape& out_shape, bool is_max, ThreadPool& pool) {
  Tensor out(out_shape);
  const std::int64_t planes = out_shape.n() * out_shape.c();
  const std::int64_t oh = out_shape.h(), ow = out_shape.w();
  const std::int64_t ih = x.shape().h(), iw = x.shape().w();

  pool.parallel_for(0, planes, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const float* xc = x.data() + row * ih * iw;
      float* yc = out.data() + row * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y)
        for (std::int64_t z = 0; z < ow; ++z) {
          double acc =
              is_max ? -std::numeric_limits<double>::infinity() : 0.0;
          int valid = 0;
          for (std::int64_t kh = 0; kh < a.kernel_h; ++kh) {
            const std::int64_t sy = y * a.stride_h - a.pad_h + kh;
            if (sy < 0 || sy >= ih) continue;
            for (std::int64_t kw = 0; kw < a.kernel_w; ++kw) {
              const std::int64_t sx = z * a.stride_w - a.pad_w + kw;
              if (sx < 0 || sx >= iw) continue;
              const double v = static_cast<double>(xc[sy * iw + sx]);
              if (is_max)
                acc = std::max(acc, v);
              else
                acc += v;
              ++valid;
            }
          }
          LP_DCHECK(valid > 0);
          yc[y * ow + z] =
              static_cast<float>(is_max ? acc : acc / valid);
        }
    }
  });
  return out;
}

void add_inplace(Tensor& a, const Tensor& b, ThreadPool& pool) {
  LP_CHECK(a.elements() == b.elements());
  float* pa = a.data();
  const float* pb = b.data();
  pool.parallel_for(0, a.elements(), 4096,
                    [&](std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i) pa[i] += pb[i];
                    });
}

void epilogue_inplace(Tensor& t, const Epilogue& ep, ThreadPool& pool) {
  if (ep.empty()) return;
  float* d = t.data();
  if (!ep.per_channel()) {
    pool.parallel_for(0, t.elements(), 4096,
                      [&](std::int64_t lo, std::int64_t hi) {
                        for (std::int64_t i = lo; i < hi; ++i)
                          d[i] = ep.apply(d[i], 0);
                      });
    return;
  }
  if (t.shape().rank() == 4) {
    const std::int64_t channels = t.shape().c();
    const std::int64_t inner = t.shape().h() * t.shape().w();
    pool.parallel_for(0, t.shape().n() * channels, 1,
                      [&](std::int64_t lo, std::int64_t hi) {
                        for (std::int64_t row = lo; row < hi; ++row) {
                          const std::int64_t c = row % channels;
                          float* p = d + row * inner;
                          for (std::int64_t i = 0; i < inner; ++i)
                            p[i] = ep.apply(p[i], c);
                        }
                      });
  } else {
    LP_CHECK(t.shape().rank() == 2);
    const std::int64_t cols = t.shape().dim(1);
    pool.parallel_for(0, t.shape().dim(0), 1,
                      [&](std::int64_t lo, std::int64_t hi) {
                        for (std::int64_t r = lo; r < hi; ++r) {
                          float* p = d + r * cols;
                          for (std::int64_t c = 0; c < cols; ++c)
                            p[c] = ep.apply(p[c], c);
                        }
                      });
  }
}

void softmax_inplace(Tensor& t) {
  const auto last = static_cast<std::int64_t>(t.shape().rank()) - 1;
  const auto width = t.shape().dim(static_cast<std::size_t>(last));
  const auto rows = t.elements() / width;
  float* d = t.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float* p = d + r * width;
    float maxv = -1e30f;
    for (std::int64_t c = 0; c < width; ++c) maxv = std::max(maxv, p[c]);
    double sum = 0.0;
    for (std::int64_t c = 0; c < width; ++c) {
      const float e = std::exp(p[c] - maxv);
      p[c] = e;
      sum += e;
    }
    for (std::int64_t c = 0; c < width; ++c)
      p[c] = static_cast<float>(p[c] / sum);
  }
}

Tensor concat_fast(const std::vector<const Tensor*>& xs,
                   const Shape& out_shape) {
  Tensor out(out_shape);
  const std::int64_t batch = out_shape.n();
  const std::int64_t plane = out_shape.h() * out_shape.w();
  const std::int64_t out_c = out_shape.c();
  std::int64_t c_off = 0;
  for (const Tensor* x : xs) {
    const std::int64_t span = x->shape().c() * plane;
    for (std::int64_t n = 0; n < batch; ++n)
      std::memcpy(out.data() + (n * out_c + c_off) * plane,
                  x->data() + n * span,
                  static_cast<std::size_t>(span) * sizeof(float));
    c_off += x->shape().c();
  }
  return out;
}

}  // namespace lp::exec
