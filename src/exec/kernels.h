// Optimized execution kernels: im2col + register-tiled GEMM convolution,
// blocked matmul, parallel pooling/elementwise, and a fused elementwise
// epilogue driven by graph::fusion groups.
//
// Determinism contract: every kernel reproduces the reference interpreter's
// per-output-element operation order exactly — double-precision
// accumulation in ascending (ic, kh, kw) / k order, identical float
// expressions for the epilogue ops — so optimized output is bit-identical
// to the reference. Parallelism and blocking only re-partition the output
// index space; no single element's accumulation chain is ever split or
// reordered. Padding contributes exact 0.0f entries to the im2col panel,
// which leave a running double accumulator bit-unchanged (weights must be
// finite, which graph parameters are).
#pragma once

#include <cmath>
#include <vector>

#include "exec/tensor.h"
#include "exec/thread_pool.h"
#include "graph/attrs.h"

namespace lp::exec {

/// One fused elementwise op applied to a kernel's output elements.
struct EpilogueStep {
  graph::OpType op = graph::OpType::kRelu;
  const float* bias = nullptr;   // kBiasAdd
  const float* gamma = nullptr;  // kBatchNorm
  const float* beta = nullptr;   // kBatchNorm
  const float* mean = nullptr;   // kBatchNorm
  /// kBatchNorm: sqrt(max(var, 0) + eps) per channel, precomputed once so
  /// the per-element expression matches the reference exactly.
  std::vector<float> denom;
};

/// A fusion group's epilogue, applied to each output element in group
/// order. `c` is the channel (NCHW) or column (rank-2) index.
struct Epilogue {
  std::vector<EpilogueStep> steps;

  bool empty() const { return steps.empty(); }

  /// True if any step indexes per-channel parameters.
  bool per_channel() const {
    for (const auto& s : steps)
      if (s.op == graph::OpType::kBiasAdd ||
          s.op == graph::OpType::kBatchNorm)
        return true;
    return false;
  }

  float apply(float v, std::int64_t c) const {
    for (const auto& s : steps) {
      switch (s.op) {
        case graph::OpType::kBiasAdd:
          v += s.bias[c];
          break;
        case graph::OpType::kBatchNorm: {
          const float d = s.denom[static_cast<std::size_t>(c)];
          v = s.gamma[c] * (v - s.mean[c]) / d + s.beta[c];
          break;
        }
        case graph::OpType::kRelu:
          v = std::max(0.0f, v);
          break;
        case graph::OpType::kSigmoid:
          v = 1.0f / (1.0f + std::exp(-v));
          break;
        case graph::OpType::kTanh:
          v = std::tanh(v);
          break;
        default:
          break;  // unreachable; epilogue ops are validated on construction
      }
    }
    return v;
  }
};

/// Convolution (im2col + cache-blocked GEMM; direct loops for depthwise)
/// with the epilogue fused into the output store.
Tensor conv2d_fast(const Tensor& x, const Tensor& w, const graph::ConvAttrs& a,
                   const Shape& out_shape, bool depthwise, const Epilogue& ep,
                   ThreadPool& pool);

/// Fully-connected matmul, register-blocked over output columns, epilogue
/// fused into the store.
Tensor matmul_fast(const Tensor& x, const Tensor& w, const Shape& out_shape,
                   const Epilogue& ep, ThreadPool& pool);

/// Max/avg pooling, parallel over (n, c) planes.
Tensor pool2d_fast(const Tensor& x, const graph::PoolAttrs& a,
                   const Shape& out_shape, bool is_max, ThreadPool& pool);

/// a += b, element-wise and in place.
void add_inplace(Tensor& a, const Tensor& b, ThreadPool& pool);

/// Applies an epilogue to every element of `t` in place (standalone
/// BiasAdd/BatchNorm/activation nodes and Add-anchored fusion groups).
void epilogue_inplace(Tensor& t, const Epilogue& ep, ThreadPool& pool);

/// Softmax over the last axis, in place.
void softmax_inplace(Tensor& t);

/// Channel (axis-1) concatenation of NCHW tensors.
Tensor concat_fast(const std::vector<const Tensor*>& xs,
                   const Shape& out_shape);

}  // namespace lp::exec
