#include "exec/thread_pool.h"

#include <algorithm>

namespace lp::exec {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0)
    num_threads =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_chunks(const RangeFn& fn) {
  std::int64_t i;
  while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < num_chunks_) {
    const std::int64_t b = begin_ + i * chunk_;
    fn(b, std::min(b + chunk_, end_));
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              std::int64_t grain, const RangeFn& fn) {
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t total = end - begin;
  if (total <= 0) return;
  if (workers_.empty() || total < 2 * grain) {
    fn(begin, end);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fixed chunk geometry, ~4 chunks per thread for load balance but never
    // below the grain: deterministic in everything except which thread runs
    // which chunk.
    const std::int64_t target = static_cast<std::int64_t>(num_threads()) * 4;
    chunk_ = std::max(grain, (total + target - 1) / target);
    num_chunks_ = (total + chunk_ - 1) / chunk_;
    begin_ = begin;
    end_ = end;
    fn_ = &fn;
    acked_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  cv_work_.notify_all();
  run_chunks(fn);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return acked_ == workers_.size(); });
  fn_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const RangeFn* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
    }
    run_chunks(*fn);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++acked_;
    }
    cv_done_.notify_one();
  }
}

}  // namespace lp::exec
