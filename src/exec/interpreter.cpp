#include "exec/interpreter.h"

#include <cmath>

#include "common/check.h"

namespace lp::exec {

namespace {

using graph::Node;
using graph::OpType;

Tensor conv2d(const Tensor& x, const Tensor& w, const graph::ConvAttrs& a,
              const Shape& out_shape, bool depthwise) {
  Tensor y(out_shape);
  const auto out_c = out_shape.c();
  for (std::int64_t n = 0; n < out_shape.n(); ++n)
    for (std::int64_t oc = 0; oc < out_c; ++oc)
      for (std::int64_t oh = 0; oh < out_shape.h(); ++oh)
        for (std::int64_t ow = 0; ow < out_shape.w(); ++ow) {
          double acc = 0.0;
          const std::int64_t ic_begin = depthwise ? oc : 0;
          const std::int64_t ic_end = depthwise ? oc + 1 : x.shape().c();
          for (std::int64_t ic = ic_begin; ic < ic_end; ++ic)
            for (std::int64_t kh = 0; kh < a.kernel_h; ++kh)
              for (std::int64_t kw = 0; kw < a.kernel_w; ++kw) {
                const std::int64_t ih = oh * a.stride_h - a.pad_h + kh;
                const std::int64_t iw = ow * a.stride_w - a.pad_w + kw;
                if (ih < 0 || ih >= x.shape().h() || iw < 0 ||
                    iw >= x.shape().w())
                  continue;
                const float wv =
                    depthwise
                        ? w.at4(oc, 0, kh, kw)
                        : w.at4(oc, ic, kh, kw);
                acc += static_cast<double>(x.at4(n, ic, ih, iw)) *
                       static_cast<double>(wv);
              }
          y.at4(n, oc, oh, ow) = static_cast<float>(acc);
        }
  return y;
}

Tensor pool2d(const Tensor& x, const graph::PoolAttrs& a,
              const Shape& out_shape, bool is_max) {
  Tensor y(out_shape);
  for (std::int64_t n = 0; n < out_shape.n(); ++n)
    for (std::int64_t c = 0; c < out_shape.c(); ++c)
      for (std::int64_t oh = 0; oh < out_shape.h(); ++oh)
        for (std::int64_t ow = 0; ow < out_shape.w(); ++ow) {
          double acc = is_max ? -1e30 : 0.0;
          int valid = 0;
          for (std::int64_t kh = 0; kh < a.kernel_h; ++kh)
            for (std::int64_t kw = 0; kw < a.kernel_w; ++kw) {
              const std::int64_t ih = oh * a.stride_h - a.pad_h + kh;
              const std::int64_t iw = ow * a.stride_w - a.pad_w + kw;
              if (ih < 0 || ih >= x.shape().h() || iw < 0 ||
                  iw >= x.shape().w())
                continue;
              const double v = x.at4(n, c, ih, iw);
              if (is_max)
                acc = std::max(acc, v);
              else
                acc += v;
              ++valid;
            }
          LP_CHECK_MSG(valid > 0, "pool window entirely in padding");
          y.at4(n, c, oh, ow) =
              static_cast<float>(is_max ? acc : acc / valid);
        }
  return y;
}

Tensor matmul(const Tensor& x, const Tensor& w, const Shape& out_shape) {
  Tensor y(out_shape);
  const auto rows = x.shape().dim(0);
  const auto inner = x.shape().dim(1);
  const auto cols = out_shape.dim(1);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < inner; ++k)
        acc += static_cast<double>(x.at2(r, k)) *
               static_cast<double>(w.at2(k, c));
      y.at2(r, c) = static_cast<float>(acc);
    }
  return y;
}

Tensor bias_add(const Tensor& x, const Tensor& bias) {
  Tensor y = x;
  if (x.shape().rank() == 4) {
    for (std::int64_t n = 0; n < x.shape().n(); ++n)
      for (std::int64_t c = 0; c < x.shape().c(); ++c)
        for (std::int64_t h = 0; h < x.shape().h(); ++h)
          for (std::int64_t w = 0; w < x.shape().w(); ++w)
            y.at4(n, c, h, w) += bias.at(c);
  } else {
    LP_CHECK(x.shape().rank() == 2);
    for (std::int64_t r = 0; r < x.shape().dim(0); ++r)
      for (std::int64_t c = 0; c < x.shape().dim(1); ++c)
        y.at2(r, c) += bias.at(c);
  }
  return y;
}

Tensor batchnorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 const Tensor& mean, const Tensor& var) {
  constexpr float kEps = 1e-5f;
  Tensor y = x;
  for (std::int64_t n = 0; n < x.shape().n(); ++n)
    for (std::int64_t c = 0; c < x.shape().c(); ++c) {
      // Deterministic pseudo-random "variance" values can be negative;
      // clamp so normalization stays finite (value equality across the two
      // partition halves is what matters, not statistical realism).
      const float denom = std::sqrt(std::max(var.at(c), 0.0f) + kEps);
      for (std::int64_t h = 0; h < x.shape().h(); ++h)
        for (std::int64_t w = 0; w < x.shape().w(); ++w)
          y.at4(n, c, h, w) =
              gamma.at(c) * (x.at4(n, c, h, w) - mean.at(c)) / denom +
              beta.at(c);
    }
  return y;
}

Tensor elementwise(const Tensor& x, OpType op) {
  Tensor y = x;
  switch (op) {
    case OpType::kRelu:
      for (std::int64_t i = 0; i < y.elements(); ++i)
        y.at(i) = std::max(0.0f, y.at(i));
      break;
    case OpType::kSigmoid:
      for (std::int64_t i = 0; i < y.elements(); ++i)
        y.at(i) = 1.0f / (1.0f + std::exp(-y.at(i)));
      break;
    case OpType::kTanh:
      for (std::int64_t i = 0; i < y.elements(); ++i)
        y.at(i) = std::tanh(y.at(i));
      break;
    default:
      LP_CHECK_MSG(false, "not an elementwise unary op");
  }
  return y;
}

Tensor softmax(const Tensor& x) {
  // Softmax over the last axis.
  Tensor y = x;
  const auto last = static_cast<std::int64_t>(x.shape().rank()) - 1;
  const auto width = x.shape().dim(static_cast<std::size_t>(last));
  const auto rows = x.elements() / width;
  for (std::int64_t r = 0; r < rows; ++r) {
    float maxv = -1e30f;
    for (std::int64_t c = 0; c < width; ++c)
      maxv = std::max(maxv, x.at(r * width + c));
    double sum = 0.0;
    for (std::int64_t c = 0; c < width; ++c) {
      const float e = std::exp(x.at(r * width + c) - maxv);
      y.at(r * width + c) = e;
      sum += e;
    }
    for (std::int64_t c = 0; c < width; ++c)
      y.at(r * width + c) = static_cast<float>(y.at(r * width + c) / sum);
  }
  return y;
}

Tensor concat(const std::vector<const Tensor*>& xs, const Shape& out_shape) {
  // Channel (axis-1) concatenation of NCHW tensors.
  Tensor y(out_shape);
  std::int64_t c_off = 0;
  for (const Tensor* x : xs) {
    for (std::int64_t n = 0; n < x->shape().n(); ++n)
      for (std::int64_t c = 0; c < x->shape().c(); ++c)
        for (std::int64_t h = 0; h < x->shape().h(); ++h)
          for (std::int64_t w = 0; w < x->shape().w(); ++w)
            y.at4(n, c_off + c, h, w) = x->at4(n, c, h, w);
    c_off += x->shape().c();
  }
  return y;
}

}  // namespace

std::vector<std::string> Interpreter::output_names() const {
  const auto& g = *graph_;
  const Node& out = g.node(g.output_id());
  const Node* tuple_src = &out;
  if (out.op == OpType::kReturn)
    tuple_src = &g.node(out.inputs.front());
  if (tuple_src->op == OpType::kMakeTuple) {
    std::vector<std::string> names;
    for (graph::NodeId in : tuple_src->inputs)
      names.push_back(g.node(in).name);
    return names;
  }
  return {tuple_src->name};
}

std::vector<Tensor> Interpreter::run(const TensorMap& bindings) const {
  const auto& g = *graph_;
  // Values indexed by node id; MakeTuple holds no tensor of its own.
  std::vector<Tensor> values(g.node_count());

  auto value_of = [&](graph::NodeId id) -> const Tensor& {
    return values[static_cast<std::size_t>(id)];
  };

  for (const Node& node : g.nodes()) {
    if (node.is_param()) {
      auto it = bindings.find(node.name);
      values[static_cast<std::size_t>(node.id)] =
          it != bindings.end() ? it->second
                               : deterministic_param(node.name,
                                                     node.output.shape);
      LP_CHECK_MSG(value_of(node.id).shape() == node.output.shape,
                   "bound tensor shape mismatch for " + node.name);
      continue;
    }
    switch (node.op) {
      case OpType::kInput: {
        auto it = bindings.find(node.name);
        LP_CHECK_MSG(it != bindings.end(),
                     "missing input binding: " + node.name);
        LP_CHECK_MSG(it->second.shape() == node.output.shape,
                     "input shape mismatch");
        values[static_cast<std::size_t>(node.id)] = it->second;
        break;
      }
      case OpType::kConv:
      case OpType::kDWConv: {
        const auto& a = std::get<graph::ConvAttrs>(node.attrs);
        values[static_cast<std::size_t>(node.id)] =
            conv2d(value_of(node.inputs[0]), value_of(node.inputs[1]), a,
                   node.output.shape, node.op == OpType::kDWConv);
        break;
      }
      case OpType::kMatMul:
        values[static_cast<std::size_t>(node.id)] =
            matmul(value_of(node.inputs[0]), value_of(node.inputs[1]),
                   node.output.shape);
        break;
      case OpType::kMaxPool:
      case OpType::kAvgPool: {
        const auto& a = std::get<graph::PoolAttrs>(node.attrs);
        values[static_cast<std::size_t>(node.id)] =
            pool2d(value_of(node.inputs[0]), a, node.output.shape,
                   node.op == OpType::kMaxPool);
        break;
      }
      case OpType::kBiasAdd:
        values[static_cast<std::size_t>(node.id)] =
            bias_add(value_of(node.inputs[0]), value_of(node.inputs[1]));
        break;
      case OpType::kAdd: {
        Tensor y = value_of(node.inputs[0]);
        const Tensor& b = value_of(node.inputs[1]);
        for (std::int64_t i = 0; i < y.elements(); ++i) y.at(i) += b.at(i);
        values[static_cast<std::size_t>(node.id)] = std::move(y);
        break;
      }
      case OpType::kBatchNorm:
        values[static_cast<std::size_t>(node.id)] = batchnorm(
            value_of(node.inputs[0]), value_of(node.inputs[1]),
            value_of(node.inputs[2]), value_of(node.inputs[3]),
            value_of(node.inputs[4]));
        break;
      case OpType::kRelu:
      case OpType::kSigmoid:
      case OpType::kTanh:
        values[static_cast<std::size_t>(node.id)] =
            elementwise(value_of(node.inputs[0]), node.op);
        break;
      case OpType::kSoftmax:
        values[static_cast<std::size_t>(node.id)] =
            softmax(value_of(node.inputs[0]));
        break;
      case OpType::kConcat: {
        std::vector<const Tensor*> xs;
        for (graph::NodeId in : node.inputs) xs.push_back(&value_of(in));
        values[static_cast<std::size_t>(node.id)] =
            concat(xs, node.output.shape);
        break;
      }
      case OpType::kFlatten: {
        const Tensor& x = value_of(node.inputs[0]);
        values[static_cast<std::size_t>(node.id)] =
            Tensor(node.output.shape,
                   std::vector<float>(x.data(), x.data() + x.elements()));
        break;
      }
      case OpType::kMakeTuple:
      case OpType::kReturn:
        // Structural; handled when collecting outputs.
        break;
    }
  }

  // Collect outputs.
  const Node& out = g.node(g.output_id());
  const Node* tuple_src = &out;
  if (out.op == OpType::kReturn) tuple_src = &g.node(out.inputs.front());
  std::vector<Tensor> results;
  if (tuple_src->op == OpType::kMakeTuple) {
    for (graph::NodeId in : tuple_src->inputs)
      results.push_back(value_of(in));
  } else {
    results.push_back(value_of(tuple_src->id));
  }
  return results;
}

}  // namespace lp::exec
