#include "exec/interpreter.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "exec/kernels.h"
#include "exec/thread_pool.h"

namespace lp::exec {

namespace {

using graph::Node;
using graph::OpType;

// ---------------------------------------------------------------------------
// Reference kernels: deliberately naive per-element loops. These define the
// numerics every optimized kernel must reproduce bit-for-bit.
// ---------------------------------------------------------------------------

Tensor conv2d(const Tensor& x, const Tensor& w, const graph::ConvAttrs& a,
              const Shape& out_shape, bool depthwise) {
  Tensor y(out_shape);
  const auto out_c = out_shape.c();
  for (std::int64_t n = 0; n < out_shape.n(); ++n)
    for (std::int64_t oc = 0; oc < out_c; ++oc)
      for (std::int64_t oh = 0; oh < out_shape.h(); ++oh)
        for (std::int64_t ow = 0; ow < out_shape.w(); ++ow) {
          double acc = 0.0;
          const std::int64_t ic_begin = depthwise ? oc : 0;
          const std::int64_t ic_end = depthwise ? oc + 1 : x.shape().c();
          for (std::int64_t ic = ic_begin; ic < ic_end; ++ic)
            for (std::int64_t kh = 0; kh < a.kernel_h; ++kh)
              for (std::int64_t kw = 0; kw < a.kernel_w; ++kw) {
                const std::int64_t ih = oh * a.stride_h - a.pad_h + kh;
                const std::int64_t iw = ow * a.stride_w - a.pad_w + kw;
                if (ih < 0 || ih >= x.shape().h() || iw < 0 ||
                    iw >= x.shape().w())
                  continue;
                const float wv =
                    depthwise
                        ? w.at4(oc, 0, kh, kw)
                        : w.at4(oc, ic, kh, kw);
                acc += static_cast<double>(x.at4(n, ic, ih, iw)) *
                       static_cast<double>(wv);
              }
          y.at4(n, oc, oh, ow) = static_cast<float>(acc);
        }
  return y;
}

Tensor pool2d(const Tensor& x, const graph::PoolAttrs& a,
              const Shape& out_shape, bool is_max) {
  Tensor y(out_shape);
  for (std::int64_t n = 0; n < out_shape.n(); ++n)
    for (std::int64_t c = 0; c < out_shape.c(); ++c)
      for (std::int64_t oh = 0; oh < out_shape.h(); ++oh)
        for (std::int64_t ow = 0; ow < out_shape.w(); ++ow) {
          // -inf is the true max identity: windows of arbitrarily negative
          // activations still reduce correctly.
          double acc =
              is_max ? -std::numeric_limits<double>::infinity() : 0.0;
          int valid = 0;
          for (std::int64_t kh = 0; kh < a.kernel_h; ++kh)
            for (std::int64_t kw = 0; kw < a.kernel_w; ++kw) {
              const std::int64_t ih = oh * a.stride_h - a.pad_h + kh;
              const std::int64_t iw = ow * a.stride_w - a.pad_w + kw;
              if (ih < 0 || ih >= x.shape().h() || iw < 0 ||
                  iw >= x.shape().w())
                continue;
              const double v = x.at4(n, c, ih, iw);
              if (is_max)
                acc = std::max(acc, v);
              else
                acc += v;
              ++valid;
            }
          LP_CHECK_MSG(valid > 0, "pool window entirely in padding");
          y.at4(n, c, oh, ow) =
              static_cast<float>(is_max ? acc : acc / valid);
        }
  return y;
}

Tensor matmul(const Tensor& x, const Tensor& w, const Shape& out_shape) {
  Tensor y(out_shape);
  const auto rows = x.shape().dim(0);
  const auto inner = x.shape().dim(1);
  const auto cols = out_shape.dim(1);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < inner; ++k)
        acc += static_cast<double>(x.at2(r, k)) *
               static_cast<double>(w.at2(k, c));
      y.at2(r, c) = static_cast<float>(acc);
    }
  return y;
}

Tensor bias_add(const Tensor& x, const Tensor& bias) {
  Tensor y = x;
  if (x.shape().rank() == 4) {
    for (std::int64_t n = 0; n < x.shape().n(); ++n)
      for (std::int64_t c = 0; c < x.shape().c(); ++c)
        for (std::int64_t h = 0; h < x.shape().h(); ++h)
          for (std::int64_t w = 0; w < x.shape().w(); ++w)
            y.at4(n, c, h, w) += bias.at(c);
  } else {
    LP_CHECK(x.shape().rank() == 2);
    for (std::int64_t r = 0; r < x.shape().dim(0); ++r)
      for (std::int64_t c = 0; c < x.shape().dim(1); ++c)
        y.at2(r, c) += bias.at(c);
  }
  return y;
}

constexpr float kBatchNormEps = 1e-5f;

Tensor batchnorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 const Tensor& mean, const Tensor& var) {
  Tensor y = x;
  for (std::int64_t n = 0; n < x.shape().n(); ++n)
    for (std::int64_t c = 0; c < x.shape().c(); ++c) {
      // Deterministic pseudo-random "variance" values can be negative;
      // clamp so normalization stays finite (value equality across the two
      // partition halves is what matters, not statistical realism).
      const float denom =
          std::sqrt(std::max(var.at(c), 0.0f) + kBatchNormEps);
      for (std::int64_t h = 0; h < x.shape().h(); ++h)
        for (std::int64_t w = 0; w < x.shape().w(); ++w)
          y.at4(n, c, h, w) =
              gamma.at(c) * (x.at4(n, c, h, w) - mean.at(c)) / denom +
              beta.at(c);
    }
  return y;
}

Tensor elementwise(const Tensor& x, OpType op) {
  Tensor y = x;
  switch (op) {
    case OpType::kRelu:
      for (std::int64_t i = 0; i < y.elements(); ++i)
        y.at(i) = std::max(0.0f, y.at(i));
      break;
    case OpType::kSigmoid:
      for (std::int64_t i = 0; i < y.elements(); ++i)
        y.at(i) = 1.0f / (1.0f + std::exp(-y.at(i)));
      break;
    case OpType::kTanh:
      for (std::int64_t i = 0; i < y.elements(); ++i)
        y.at(i) = std::tanh(y.at(i));
      break;
    default:
      LP_CHECK_MSG(false, "not an elementwise unary op");
  }
  return y;
}

Tensor softmax(const Tensor& x) {
  // Softmax over the last axis.
  Tensor y = x;
  const auto last = static_cast<std::int64_t>(x.shape().rank()) - 1;
  const auto width = x.shape().dim(static_cast<std::size_t>(last));
  const auto rows = x.elements() / width;
  for (std::int64_t r = 0; r < rows; ++r) {
    float maxv = -1e30f;
    for (std::int64_t c = 0; c < width; ++c)
      maxv = std::max(maxv, x.at(r * width + c));
    double sum = 0.0;
    for (std::int64_t c = 0; c < width; ++c) {
      const float e = std::exp(x.at(r * width + c) - maxv);
      y.at(r * width + c) = e;
      sum += e;
    }
    for (std::int64_t c = 0; c < width; ++c)
      y.at(r * width + c) = static_cast<float>(y.at(r * width + c) / sum);
  }
  return y;
}

Tensor concat(const std::vector<const Tensor*>& xs, const Shape& out_shape) {
  // Channel (axis-1) concatenation of NCHW tensors.
  Tensor y(out_shape);
  std::int64_t c_off = 0;
  for (const Tensor* x : xs) {
    for (std::int64_t n = 0; n < x->shape().n(); ++n)
      for (std::int64_t c = 0; c < x->shape().c(); ++c)
        for (std::int64_t h = 0; h < x->shape().h(); ++h)
          for (std::int64_t w = 0; w < x->shape().w(); ++w)
            y.at4(0 + n, c_off + c, h, w) = x->at4(n, c, h, w);
    c_off += x->shape().c();
  }
  return y;
}

}  // namespace

Interpreter::Interpreter(const graph::Graph& g, Options options)
    : graph_(&g), options_(options) {
  if (options_.mode == ExecMode::kOptimized) {
    groups_ = graph::fuse_for_execution(g);
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Interpreter::~Interpreter() = default;

std::vector<std::string> Interpreter::output_names() const {
  const auto& g = *graph_;
  const Node& out = g.node(g.output_id());
  const Node* tuple_src = &out;
  if (out.op == OpType::kReturn)
    tuple_src = &g.node(out.inputs.front());
  if (tuple_src->op == OpType::kMakeTuple) {
    std::vector<std::string> names;
    for (graph::NodeId in : tuple_src->inputs)
      names.push_back(g.node(in).name);
    return names;
  }
  return {tuple_src->name};
}

std::vector<Tensor> Interpreter::run(const TensorMap& bindings,
                                     RunStats* stats) const {
  const auto& g = *graph_;
  const bool optimized = options_.mode == ExecMode::kOptimized;

  // Values indexed by node id; MakeTuple holds no tensor of its own.
  std::vector<Tensor> values(g.node_count());

  // Liveness: remaining reads per node. Each consumer's retirement is one
  // read; collecting a graph output at the end is one more.
  std::vector<std::int32_t> uses(g.node_count(), 0);
  for (std::size_t id = 0; id < g.node_count(); ++id)
    uses[id] = static_cast<std::int32_t>(g.consumers()[id].size());

  const Node* out_node = &g.node(g.output_id());
  if (out_node->op == OpType::kReturn)
    out_node = &g.node(out_node->inputs.front());
  std::vector<graph::NodeId> out_ids;
  if (out_node->op == OpType::kMakeTuple)
    out_ids = out_node->inputs;
  else
    out_ids = {out_node->id};
  for (graph::NodeId id : out_ids) ++uses[static_cast<std::size_t>(id)];

  std::int64_t cur = 0, peak = 0, released = 0, moved = 0, fused = 0;

  auto at = [&](graph::NodeId id) -> Tensor& {
    return values[static_cast<std::size_t>(id)];
  };

  auto track = [&](const Tensor& t) {
    cur += t.bytes();
    peak = std::max(peak, cur);
  };

  // Returns node id's tensor, materializing Parameters on first use (from
  // `bindings` when bound, deterministically from the name otherwise).
  auto ensure = [&](graph::NodeId id) -> const Tensor& {
    Tensor& v = at(id);
    if (!v.empty()) return v;
    const Node& node = g.node(id);
    LP_CHECK_MSG(node.is_param(),
                 "use of an unmaterialized tensor: " + node.name);
    auto it = bindings.find(node.name);
    Tensor t = it != bindings.end()
                   ? it->second
                   : deterministic_param(node.name, node.output.shape);
    LP_CHECK_MSG(t.shape() == node.output.shape,
                 "bound tensor shape mismatch for " + node.name);
    v = std::move(t);
    track(v);
    return v;
  };

  // Retires one read of `id`; releases the buffer after the last one.
  auto dec = [&](graph::NodeId id) {
    auto& u = uses[static_cast<std::size_t>(id)];
    LP_CHECK(u > 0);
    if (--u == 0) {
      Tensor& v = at(id);
      cur -= v.bytes();
      released += v.bytes();
      v = Tensor();
    }
  };

  // Moves the tensor out when this is its final read (in-place ops reuse
  // the buffer); copies otherwise.
  auto take_or_copy = [&](graph::NodeId id) -> Tensor {
    const Tensor& v = ensure(id);
    if (uses[static_cast<std::size_t>(id)] == 1) {
      ++moved;
      cur -= v.bytes();
      return std::move(at(id));
    }
    return v;
  };

  auto store = [&](graph::NodeId id, Tensor t) {
    track(t);
    at(id) = std::move(t);
  };

  auto bind_input = [&](const Node& node) {
    auto it = bindings.find(node.name);
    LP_CHECK_MSG(it != bindings.end(),
                 "missing input binding: " + node.name);
    LP_CHECK_MSG(it->second.shape() == node.output.shape,
                 "input shape mismatch");
    store(node.id, it->second);
  };

  // One fused-epilogue step from a BiasAdd/BatchNorm/activation node.
  auto make_step = [&](const Node& node) {
    EpilogueStep step;
    step.op = node.op;
    switch (node.op) {
      case OpType::kBiasAdd:
        step.bias = ensure(node.inputs[1]).data();
        break;
      case OpType::kBatchNorm: {
        step.gamma = ensure(node.inputs[1]).data();
        step.beta = ensure(node.inputs[2]).data();
        step.mean = ensure(node.inputs[3]).data();
        const Tensor& var = ensure(node.inputs[4]);
        step.denom.resize(static_cast<std::size_t>(var.elements()));
        for (std::int64_t c = 0; c < var.elements(); ++c)
          step.denom[static_cast<std::size_t>(c)] =
              std::sqrt(std::max(var.at(c), 0.0f) + kBatchNormEps);
        break;
      }
      case OpType::kRelu:
      case OpType::kSigmoid:
      case OpType::kTanh:
        break;
      default:
        LP_CHECK_MSG(false, "not a fusable epilogue op: " + node.name);
    }
    return step;
  };

  // Executes one node (or one fused group ending at `out_id`) with the
  // optimized kernels.
  auto exec_optimized = [&](const graph::FusionGroup& group) {
    const Node& node = g.node(group.anchor());
    const graph::NodeId out_id = group.nodes.back();
    Epilogue ep;
    for (std::size_t i = 1; i < group.size(); ++i)
      ep.steps.push_back(make_step(g.node(group.nodes[i])));
    if (group.size() > 1) ++fused;

    switch (node.op) {
      case OpType::kInput:
        bind_input(node);
        break;
      case OpType::kConv:
      case OpType::kDWConv: {
        const auto& a = std::get<graph::ConvAttrs>(node.attrs);
        store(out_id, conv2d_fast(ensure(node.inputs[0]),
                                  ensure(node.inputs[1]), a,
                                  node.output.shape,
                                  node.op == OpType::kDWConv, ep, *pool_));
        break;
      }
      case OpType::kMatMul:
        store(out_id, matmul_fast(ensure(node.inputs[0]),
                                  ensure(node.inputs[1]),
                                  node.output.shape, ep, *pool_));
        break;
      case OpType::kMaxPool:
      case OpType::kAvgPool: {
        const auto& a = std::get<graph::PoolAttrs>(node.attrs);
        store(out_id, pool2d_fast(ensure(node.inputs[0]), a,
                                  node.output.shape,
                                  node.op == OpType::kMaxPool, *pool_));
        break;
      }
      case OpType::kAdd: {
        Tensor y = take_or_copy(node.inputs[0]);
        add_inplace(y, ensure(node.inputs[1]), *pool_);
        epilogue_inplace(y, ep, *pool_);
        store(out_id, std::move(y));
        break;
      }
      case OpType::kBiasAdd:
      case OpType::kBatchNorm:
      case OpType::kRelu:
      case OpType::kSigmoid:
      case OpType::kTanh: {
        // Standalone elementwise node: a one-step epilogue applied in
        // place on the (possibly moved-through) input.
        Epilogue solo;
        solo.steps.push_back(make_step(node));
        Tensor y = take_or_copy(node.inputs[0]);
        epilogue_inplace(y, solo, *pool_);
        store(out_id, std::move(y));
        break;
      }
      case OpType::kSoftmax: {
        Tensor y = take_or_copy(node.inputs[0]);
        softmax_inplace(y);
        store(out_id, std::move(y));
        break;
      }
      case OpType::kConcat: {
        std::vector<const Tensor*> xs;
        for (graph::NodeId in : node.inputs) xs.push_back(&ensure(in));
        store(out_id, concat_fast(xs, node.output.shape));
        break;
      }
      case OpType::kFlatten: {
        Tensor y = take_or_copy(node.inputs[0]);
        store(out_id, Tensor::reshaped(std::move(y), node.output.shape));
        break;
      }
      case OpType::kMakeTuple:
      case OpType::kReturn:
        break;  // structural; handled when collecting outputs
    }
  };

  // Executes one node with the reference kernels (always unfused).
  auto exec_reference = [&](const Node& node) {
    switch (node.op) {
      case OpType::kInput:
        bind_input(node);
        break;
      case OpType::kConv:
      case OpType::kDWConv: {
        const auto& a = std::get<graph::ConvAttrs>(node.attrs);
        store(node.id, conv2d(ensure(node.inputs[0]),
                              ensure(node.inputs[1]), a, node.output.shape,
                              node.op == OpType::kDWConv));
        break;
      }
      case OpType::kMatMul:
        store(node.id, matmul(ensure(node.inputs[0]),
                              ensure(node.inputs[1]), node.output.shape));
        break;
      case OpType::kMaxPool:
      case OpType::kAvgPool: {
        const auto& a = std::get<graph::PoolAttrs>(node.attrs);
        store(node.id, pool2d(ensure(node.inputs[0]), a, node.output.shape,
                              node.op == OpType::kMaxPool));
        break;
      }
      case OpType::kBiasAdd:
        store(node.id, bias_add(ensure(node.inputs[0]),
                                ensure(node.inputs[1])));
        break;
      case OpType::kAdd: {
        Tensor y = ensure(node.inputs[0]);
        const Tensor& b = ensure(node.inputs[1]);
        for (std::int64_t i = 0; i < y.elements(); ++i) y.at(i) += b.at(i);
        store(node.id, std::move(y));
        break;
      }
      case OpType::kBatchNorm:
        store(node.id, batchnorm(ensure(node.inputs[0]),
                                 ensure(node.inputs[1]),
                                 ensure(node.inputs[2]),
                                 ensure(node.inputs[3]),
                                 ensure(node.inputs[4])));
        break;
      case OpType::kRelu:
      case OpType::kSigmoid:
      case OpType::kTanh:
        store(node.id, elementwise(ensure(node.inputs[0]), node.op));
        break;
      case OpType::kSoftmax:
        store(node.id, softmax(ensure(node.inputs[0])));
        break;
      case OpType::kConcat: {
        std::vector<const Tensor*> xs;
        for (graph::NodeId in : node.inputs) xs.push_back(&ensure(in));
        store(node.id, concat(xs, node.output.shape));
        break;
      }
      case OpType::kFlatten: {
        const Tensor& x = ensure(node.inputs[0]);
        store(node.id,
              Tensor(node.output.shape,
                     std::vector<float>(x.data(), x.data() + x.elements())));
        break;
      }
      case OpType::kMakeTuple:
      case OpType::kReturn:
        break;  // structural; handled when collecting outputs
    }
  };

  // Exec tracing lives on a synthetic step clock (one tick per kernel
  // launch): the interpreter does real float math outside the simulated
  // clock, so its spans form their own deterministic clock domain.
  obs::TraceRecorder* tr =
      options_.telemetry != nullptr ? options_.telemetry->trace() : nullptr;
  obs::TrackId exec_track = tr != nullptr ? tr->track("exec") : 0;
  constexpr DurationNs kStepNs = 1000;  // one tick renders as 1 µs
  const TimeNs run_begin = exec_clock_;
  auto step_span = [&](const Node& node, std::size_t group_size) {
    if (tr == nullptr) return;
    const TimeNs begin = exec_clock_;
    exec_clock_ += kStepNs;
    obs::TraceArgs args;
    args.arg("node", node.name);
    if (group_size > 1) args.arg("fused", group_size);
    tr->span(exec_track, graph::op_name(node.op), begin, exec_clock_,
             std::move(args));
    tr->counter(exec_track, "resident_bytes", exec_clock_,
                static_cast<double>(cur));
  };

  if (optimized) {
    for (const auto& group : groups_) {
      exec_optimized(group);
      for (graph::NodeId nid : group.nodes)
        for (graph::NodeId in : g.node(nid).inputs) dec(in);
      step_span(g.node(group.anchor()), group.size());
    }
  } else {
    for (graph::NodeId nid : g.backbone()) {
      const Node& node = g.node(nid);
      exec_reference(node);
      for (graph::NodeId in : node.inputs) dec(in);
      step_span(node, 1);
    }
  }

  if (tr != nullptr) {
    tr->span(exec_track, "run", run_begin, exec_clock_,
             obs::TraceArgs()
                 .arg("peak_resident_bytes", peak)
                 .arg("fused_groups", fused)
                 .arg("moved_tensors", moved));
  }
  if (options_.telemetry != nullptr) {
    auto& metrics = options_.telemetry->metrics();
    metrics.counter("exec.runs").add();
    metrics.gauge("exec.peak_resident_bytes")
        .set(static_cast<double>(peak));
    metrics.gauge("exec.final_resident_bytes")
        .set(static_cast<double>(cur));
    metrics.gauge("exec.released_bytes").set(static_cast<double>(released));
    metrics.gauge("exec.moved_tensors").set(static_cast<double>(moved));
    metrics.gauge("exec.fused_groups").set(static_cast<double>(fused));
  }

  if (stats) {
    stats->peak_resident_bytes = peak;
    stats->final_resident_bytes = cur;
    stats->released_bytes = released;
    stats->moved_tensors = moved;
    stats->fused_groups = fused;
  }

  // Collect outputs, moving each tensor out at its last occurrence.
  std::vector<Tensor> results;
  results.reserve(out_ids.size());
  for (std::size_t i = 0; i < out_ids.size(); ++i) {
    bool last = true;
    for (std::size_t j = i + 1; j < out_ids.size(); ++j)
      if (out_ids[j] == out_ids[i]) last = false;
    if (last)
      results.push_back(std::move(at(out_ids[i])));
    else
      results.push_back(at(out_ids[i]));
  }
  return results;
}

}  // namespace lp::exec
