#include "exec/tensor.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace lp::exec {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.elements()), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  LP_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.elements());
}

float& Tensor::at(std::int64_t i) {
  LP_CHECK(i >= 0 && i < elements());
  return data_[static_cast<std::size_t>(i)];
}
float Tensor::at(std::int64_t i) const {
  LP_CHECK(i >= 0 && i < elements());
  return data_[static_cast<std::size_t>(i)];
}

float& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h,
                   std::int64_t w) {
  return data_[static_cast<std::size_t>(
      ((n * shape_.c() + c) * shape_.h() + h) * shape_.w() + w)];
}
float Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) const {
  return data_[static_cast<std::size_t>(
      ((n * shape_.c() + c) * shape_.h() + h) * shape_.w() + w)];
}

float& Tensor::at2(std::int64_t r, std::int64_t c) {
  return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
}
float Tensor::at2(std::int64_t r, std::int64_t c) const {
  return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
}

double Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  LP_CHECK_MSG(a.shape() == b.shape(), "shape mismatch in comparison");
  double worst = 0.0;
  for (std::int64_t i = 0; i < a.elements(); ++i)
    worst = std::max(worst, std::abs(static_cast<double>(a.at(i)) -
                                     static_cast<double>(b.at(i))));
  return worst;
}

Tensor random_tensor(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.elements(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

Tensor deterministic_param(const std::string& name, const Shape& shape) {
  // FNV-1a over the name gives a stable seed across both partition halves.
  std::uint64_t h = 1469598103934665603ull;
  for (char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  Rng rng(h);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.elements(); ++i)
    t.at(i) = static_cast<float>(rng.normal(0.0, 0.05));
  return t;
}

}  // namespace lp::exec
