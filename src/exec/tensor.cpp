#include "exec/tensor.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace lp::exec {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.elements()), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  LP_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.elements());
}

Tensor Tensor::reshaped(Tensor&& t, Shape shape) {
  LP_CHECK_MSG(shape.elements() == t.elements(),
               "reshape must preserve the element count");
  Tensor out;
  out.shape_ = std::move(shape);
  out.data_ = std::move(t.data_);
  t.shape_ = Shape{};
  return out;
}

double Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  LP_CHECK_MSG(a.shape() == b.shape(), "shape mismatch in comparison");
  double worst = 0.0;
  for (std::int64_t i = 0; i < a.elements(); ++i)
    worst = std::max(worst, std::abs(static_cast<double>(a.at(i)) -
                                     static_cast<double>(b.at(i))));
  return worst;
}

Tensor random_tensor(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.elements(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

Tensor deterministic_param(const std::string& name, const Shape& shape) {
  // FNV-1a over the name gives a stable seed across both partition halves.
  std::uint64_t h = 1469598103934665603ull;
  for (char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  Rng rng(h);
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.elements(); ++i)
    t.at(i) = static_cast<float>(rng.normal(0.0, 0.05));
  return t;
}

}  // namespace lp::exec
