// Dense float32 tensors for the reference interpreter.
//
// This is deliberately simple, correctness-first storage: the interpreter
// exists to prove that a partitioned graph computes exactly what the whole
// graph computes, not to be fast.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace lp::exec {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::int64_t elements() const { return shape_.elements(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(std::int64_t i);
  float at(std::int64_t i) const;

  /// NCHW element access; requires rank 4 and in-range indices.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at4(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) const;

  /// Rank-2 element access.
  float& at2(std::int64_t r, std::int64_t c);
  float at2(std::int64_t r, std::int64_t c) const;

  /// Largest absolute element-wise difference; shapes must match.
  static double max_abs_diff(const Tensor& a, const Tensor& b);

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Uniform [-1, 1) tensor from a seed.
Tensor random_tensor(const Shape& shape, std::uint64_t seed);

/// Deterministic pseudo-random parameter derived from the parameter's name,
/// so both halves of a partitioned graph see identical weights without any
/// shared state. Values are scaled down (~N(0, 0.05)) to keep deep-network
/// activations finite.
Tensor deterministic_param(const std::string& name, const Shape& shape);

}  // namespace lp::exec
