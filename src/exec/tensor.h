// Dense float32 tensors for the graph interpreter.
//
// Element accessors are inline and, in Release builds, check-free: bounds
// and rank contracts are LP_DCHECKs, active only in Debug builds, so hot
// kernel loops pay nothing for them while indexing bugs still trap during
// development.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "tensor/shape.h"

namespace lp::exec {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::int64_t elements() const { return shape_.elements(); }

  /// True for a default-constructed (or moved-from / released) tensor that
  /// holds no buffer.
  bool empty() const { return data_.empty(); }

  /// Buffer size in bytes (0 when empty).
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(float));
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(std::int64_t i) {
    LP_DCHECK(i >= 0 && i < elements());
    return data_[static_cast<std::size_t>(i)];
  }
  float at(std::int64_t i) const {
    LP_DCHECK(i >= 0 && i < elements());
    return data_[static_cast<std::size_t>(i)];
  }

  /// NCHW element access; requires rank 4 and in-range indices.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    LP_DCHECK(shape_.rank() == 4);
    LP_DCHECK(n >= 0 && n < shape_.n() && c >= 0 && c < shape_.c() &&
              h >= 0 && h < shape_.h() && w >= 0 && w < shape_.w());
    return data_[static_cast<std::size_t>(
        ((n * shape_.c() + c) * shape_.h() + h) * shape_.w() + w)];
  }
  float at4(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) const {
    LP_DCHECK(shape_.rank() == 4);
    LP_DCHECK(n >= 0 && n < shape_.n() && c >= 0 && c < shape_.c() &&
              h >= 0 && h < shape_.h() && w >= 0 && w < shape_.w());
    return data_[static_cast<std::size_t>(
        ((n * shape_.c() + c) * shape_.h() + h) * shape_.w() + w)];
  }

  /// Rank-2 element access.
  float& at2(std::int64_t r, std::int64_t c) {
    LP_DCHECK(shape_.rank() == 2);
    LP_DCHECK(r >= 0 && r < shape_.dim(0) && c >= 0 && c < shape_.dim(1));
    return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
  }
  float at2(std::int64_t r, std::int64_t c) const {
    LP_DCHECK(shape_.rank() == 2);
    LP_DCHECK(r >= 0 && r < shape_.dim(0) && c >= 0 && c < shape_.dim(1));
    return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
  }

  /// Steals `t`'s buffer into a tensor of `shape` without copying; element
  /// counts must match. Used to pass tensors through Flatten for free.
  static Tensor reshaped(Tensor&& t, Shape shape);

  /// Largest absolute element-wise difference; shapes must match.
  static double max_abs_diff(const Tensor& a, const Tensor& b);

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Uniform [-1, 1) tensor from a seed.
Tensor random_tensor(const Shape& shape, std::uint64_t seed);

/// Deterministic pseudo-random parameter derived from the parameter's name,
/// so both halves of a partitioned graph see identical weights without any
/// shared state. Values are scaled down (~N(0, 0.05)) to keep deep-network
/// activations finite.
Tensor deterministic_param(const std::string& name, const Shape& shape);

}  // namespace lp::exec
