// Reference interpreter: executes a computation graph with real float math.
//
// Role in the system: the DL-framework runtime that actually runs each
// partition. Tests use it to verify that executing the device segment, then
// feeding the boundary tensors into the server segment, reproduces the
// whole-graph output exactly (the partitioner's core contract, Fig. 5).
#pragma once

#include <unordered_map>

#include "exec/tensor.h"
#include "graph/graph.h"

namespace lp::exec {

/// Named tensors passed into (and returned from) a graph execution.
using TensorMap = std::unordered_map<std::string, Tensor>;

class Interpreter {
 public:
  /// The graph must stay alive for the interpreter's lifetime.
  explicit Interpreter(const graph::Graph& g) : graph_(&g) {}

  /// Runs the graph. `bindings` provides the Input node's tensor (by node
  /// name) and overrides for any Parameter (by parameter name) — this is how
  /// partition-boundary tensors enter a server segment. Unbound Parameters
  /// take deterministic_param(name) values.
  ///
  /// Returns one tensor per graph output: the output node's tensor, or, when
  /// the output is a Return over a MakeTuple, each tuple element in order.
  std::vector<Tensor> run(const TensorMap& bindings) const;

  /// Names of the boundary tensors run() returns, in order (the MakeTuple
  /// operands' names, or the single output node's name).
  std::vector<std::string> output_names() const;

 private:
  const graph::Graph* graph_;
};

}  // namespace lp::exec
