// Graph interpreter: executes a computation graph with real float math.
//
// Role in the system: the DL-framework runtime that actually runs each
// partition. Tests use it to verify that executing the device segment, then
// feeding the boundary tensors into the server segment, reproduces the
// whole-graph output exactly (the partitioner's core contract, Fig. 5).
//
// Two kernel families share one execution driver:
//   * kReference — naive per-element loops, the bit-exact oracle;
//   * kOptimized — im2col/GEMM convolution, blocked matmul, fused
//     elementwise epilogues (driven by graph::fusion groups) and a thread
//     pool. Optimized output is bit-identical to the reference because
//     every output element keeps the reference's accumulation order (see
//     exec/kernels.h).
// The driver runs a liveness pass either way: each tensor is released once
// its last consumer retires, and (in optimized mode) tensors move rather
// than copy through elementwise/Flatten ops.
#pragma once

#include <memory>
#include <unordered_map>

#include "exec/tensor.h"
#include "graph/fusion.h"
#include "graph/graph.h"
#include "obs/telemetry.h"

namespace lp::exec {

class ThreadPool;

/// Named tensors passed into (and returned from) a graph execution.
using TensorMap = std::unordered_map<std::string, Tensor>;

/// Which kernel family run() uses.
enum class ExecMode {
  kReference,  ///< naive per-element loops; the bit-exact oracle
  kOptimized,  ///< parallel cache-blocked kernels; bit-identical output
};

struct Options {
  ExecMode mode = ExecMode::kOptimized;
  /// Total compute threads, the calling thread included: 1 = serial,
  /// 0 = std::thread::hardware_concurrency(). Thread count never changes
  /// results.
  int num_threads = 1;
  /// Telemetry sink (null = off). run() then records one span per node
  /// (or per fused group) on an "exec" track plus a resident-bytes counter
  /// series, and mirrors RunStats into exec.* gauges. The interpreter does
  /// real work off the simulated clock, so exec spans live on a synthetic
  /// step clock (one fixed tick per kernel launch, monotonic across run()
  /// calls) — a separate clock domain from the simulation tracks.
  /// Recording never changes results. Must outlive the Interpreter.
  obs::Telemetry* telemetry = nullptr;
};

/// Memory/fusion counters for a single run() call.
struct RunStats {
  std::int64_t peak_resident_bytes = 0;   ///< max live tensor bytes
  std::int64_t final_resident_bytes = 0;  ///< live at return (the outputs)
  std::int64_t released_bytes = 0;        ///< freed early by liveness
  std::int64_t moved_tensors = 0;         ///< buffers passed through, no copy
  std::int64_t fused_groups = 0;          ///< multi-node kernel launches
};

class Interpreter {
 public:
  /// The graph must stay alive for the interpreter's lifetime.
  explicit Interpreter(const graph::Graph& g) : Interpreter(g, Options{}) {}
  Interpreter(const graph::Graph& g, Options options);
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Runs the graph. `bindings` provides the Input node's tensor (by node
  /// name) and overrides for any Parameter (by parameter name) — this is how
  /// partition-boundary tensors enter a server segment. Unbound Parameters
  /// take deterministic_param(name) values.
  ///
  /// Returns one tensor per graph output: the output node's tensor, or, when
  /// the output is a Return over a MakeTuple, each tuple element in order.
  /// `stats`, when non-null, receives this run's memory/fusion counters.
  /// Not thread-safe: concurrent run() calls need separate Interpreters.
  std::vector<Tensor> run(const TensorMap& bindings,
                          RunStats* stats = nullptr) const;

  /// Names of the boundary tensors run() returns, in order (the MakeTuple
  /// operands' names, or the single output node's name).
  std::vector<std::string> output_names() const;

  const Options& options() const { return options_; }

 private:
  const graph::Graph* graph_;
  Options options_;
  std::vector<graph::FusionGroup> groups_;  // optimized-mode schedule
  std::unique_ptr<ThreadPool> pool_;        // optimized mode only
  /// Synthetic exec-trace clock (see Options::telemetry); advances one
  /// tick per kernel launch, monotonic across run() calls.
  mutable TimeNs exec_clock_ = 0;
};

}  // namespace lp::exec
