#include <gtest/gtest.h>

#include "common/check.h"
#include "graph/cut.h"
#include "graph/dot.h"
#include "graph/graph.h"
#include "graph/shape_infer.h"

namespace lp::graph {
namespace {

TEST(Shape, ElementsAndAccessors) {
  Shape s{1, 3, 224, 224};
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.elements(), 1 * 3 * 224 * 224);
  EXPECT_EQ(s.n(), 1);
  EXPECT_EQ(s.c(), 3);
  EXPECT_EQ(s.h(), 224);
  EXPECT_EQ(s.w(), 224);
  EXPECT_EQ(s.to_string(), "1x3x224x224");
}

TEST(Shape, RejectsNonPositiveAxes) {
  EXPECT_THROW(Shape({1, 0, 3}), ContractError);
  EXPECT_THROW(Shape({-1}), ContractError);
}

TEST(TensorDesc, BytesUseDtype) {
  TensorDesc d{Shape{2, 3}, DType::kFloat32};
  EXPECT_EQ(d.bytes(), 24);
  d.dtype = DType::kFloat16;
  EXPECT_EQ(d.bytes(), 12);
  d.dtype = DType::kInt8;
  EXPECT_EQ(d.bytes(), 6);
}

TEST(ShapeInfer, ConvStandardCases) {
  // AlexNet conv1: 224 -> 55 with k=11, s=4, p=2.
  ConvAttrs a{64, 11, 11, 4, 4, 2, 2};
  const auto out = conv_output_shape(Shape{1, 3, 224, 224}, a, false);
  EXPECT_EQ(out, (Shape{1, 64, 55, 55}));
}

TEST(ShapeInfer, DepthwiseKeepsChannels) {
  ConvAttrs a{0, 3, 3, 1, 1, 1, 1};
  const auto out = conv_output_shape(Shape{1, 32, 28, 28}, a, true);
  EXPECT_EQ(out, (Shape{1, 32, 28, 28}));
}

TEST(ShapeInfer, PoolCeilModeAddsWindow) {
  // SqueezeNet pool: 111 -> 55 with k=3, s=2, ceil.
  PoolAttrs floor_attrs{3, 3, 2, 2, 0, 0, false};
  PoolAttrs ceil_attrs{3, 3, 2, 2, 0, 0, true};
  EXPECT_EQ(pool_output_shape(Shape{1, 96, 111, 111}, floor_attrs).h(), 55);
  EXPECT_EQ(pool_output_shape(Shape{1, 96, 110, 110}, ceil_attrs).h(), 55);
  EXPECT_EQ(pool_output_shape(Shape{1, 96, 110, 110}, floor_attrs).h(), 54);
}

TEST(ShapeInfer, KernelLargerThanInputThrows) {
  PoolAttrs a{7, 7, 1, 1, 0, 0, false};
  EXPECT_THROW(pool_output_shape(Shape{1, 8, 3, 3}, a), ContractError);
}

TEST(ShapeInfer, ConcatSumsAxisChecksRest) {
  const auto out = concat_output_shape(
      {Shape{1, 64, 55, 55}, Shape{1, 64, 55, 55}}, 1);
  EXPECT_EQ(out, (Shape{1, 128, 55, 55}));
  EXPECT_THROW(
      concat_output_shape({Shape{1, 64, 55, 55}, Shape{1, 64, 54, 55}}, 1),
      ContractError);
}

TEST(ShapeInfer, Flatten) {
  EXPECT_EQ(flatten_output_shape(Shape{1, 256, 6, 6}), (Shape{1, 9216}));
}

TEST(GraphBuilder, ChainStructureAndExpansion) {
  GraphBuilder b("tiny");
  auto x = b.input({1, 3, 8, 8});
  x = b.conv2d(x, 4, 3, 1, 1, true, "c1");  // Conv + BiasAdd
  x = b.relu(x);
  x = b.flatten(x);
  x = b.fc(x, 10, true, "fc");  // MatMul + BiasAdd
  Graph g = b.build(x);

  // Backbone: Input, Conv, BiasAdd, ReLU, Flatten, MatMul, BiasAdd = 7.
  EXPECT_EQ(g.backbone().size(), 7u);
  EXPECT_EQ(g.n(), 6u);
  EXPECT_EQ(g.node(g.backbone()[0]).op, OpType::kInput);
  EXPECT_EQ(g.node(g.backbone()[1]).op, OpType::kConv);
  EXPECT_EQ(g.node(g.backbone()[2]).op, OpType::kBiasAdd);
  // Parameters: conv weight+bias, fc weight+bias.
  EXPECT_EQ(g.parameters().size(), 4u);
  EXPECT_EQ(g.output_desc().shape, (Shape{1, 10}));
}

TEST(GraphBuilder, ParameterBytesCounted) {
  GraphBuilder b("pb");
  auto x = b.input({1, 3, 8, 8});
  x = b.conv2d(x, 4, 3, 1, 1, true, "c1");
  Graph g = b.build(x);
  // weight 4*3*3*3 = 108 elems, bias 4 -> 112 * 4 bytes.
  EXPECT_EQ(g.parameter_bytes(), 112 * 4);
}

TEST(GraphBuilder, SecondInputRejected) {
  GraphBuilder b("two-inputs");
  b.input({1, 3, 8, 8});
  EXPECT_THROW(b.input({1, 3, 8, 8}), ContractError);
}

TEST(GraphBuilder, AddRequiresMatchingShapes) {
  GraphBuilder b("mismatch");
  auto x = b.input({1, 4, 8, 8});
  auto y1 = b.conv2d(x, 4, 3, 1, 1);
  auto y2 = b.conv2d(x, 8, 3, 1, 1);
  EXPECT_THROW(b.add(y1, y2), ContractError);
}

TEST(Graph, ValidateRejectsDeadNodes) {
  GraphBuilder b("dead");
  auto x = b.input({1, 3, 8, 8});
  auto used = b.relu(x);
  b.sigmoid(x);  // dead branch, never consumed
  EXPECT_THROW(b.build(used), ContractError);
}

Graph diamond() {
  // Input -> Conv a -> {branch1: ReLU, branch2: Sigmoid} -> Add -> ReLU.
  GraphBuilder b("diamond");
  auto x = b.input({1, 2, 4, 4});
  auto a = b.conv2d(x, 2, 3, 1, 1, false, "a");
  auto r = b.relu(a, "r");
  auto s = b.sigmoid(a, "s");
  auto sum = b.add(r, s, "sum");
  return b.build(b.relu(sum, "out"));
}

TEST(CutSizes, ChainMatchesNodeOutputs) {
  GraphBuilder b("chain");
  auto x = b.input({1, 2, 4, 4});       // 32 elems = 128 B
  auto c = b.conv2d(x, 4, 3, 1, 1, false, "c");  // 64 elems = 256 B
  auto r = b.relu(c);
  Graph g = b.build(r);
  const auto s = graph::cut_sizes(g);
  ASSERT_EQ(s.size(), g.n() + 1);
  EXPECT_EQ(s[0], 128);  // input tensor
  EXPECT_EQ(s[1], 256);  // conv output
  EXPECT_EQ(s[2], 256);  // s_n = output size by convention
}

TEST(CutSizes, DiamondCountsBothBranches) {
  Graph g = diamond();
  const auto s = cut_sizes(g);
  // Positions: 0 Input, 1 Conv, 2 ReLU(r), 3 Sigmoid(s), 4 Add, 5 ReLU out.
  const std::int64_t t = 1 * 2 * 4 * 4 * 4;  // 128 bytes per tensor
  EXPECT_EQ(s[0], t);
  EXPECT_EQ(s[1], t);          // conv output feeds both branches (1 tensor)
  EXPECT_EQ(s[2], 2 * t);      // inside the block: r output + conv output
  EXPECT_EQ(s[3], 2 * t);      // r + s outputs
  EXPECT_EQ(s[4], t);
  EXPECT_EQ(s[5], t);
  // Consistency with the direct per-cut computation.
  for (std::size_t p = 0; p <= g.n(); ++p)
    EXPECT_EQ(s[p], cut_size_at(g, p)) << "p=" << p;
}

TEST(CutSizes, BlockInteriorDetection) {
  Graph g = diamond();
  EXPECT_FALSE(cut_inside_block(g, 0));
  EXPECT_FALSE(cut_inside_block(g, 1));
  EXPECT_TRUE(cut_inside_block(g, 2));
  EXPECT_TRUE(cut_inside_block(g, 3));
  EXPECT_FALSE(cut_inside_block(g, 4));
  EXPECT_FALSE(cut_inside_block(g, 5));
}

TEST(GraphBuilder, RectangularConvShapes) {
  GraphBuilder b("rect");
  auto x = b.input({1, 8, 17, 17});
  // Inception-style 1x7 with pad (0,3): spatial extent preserved.
  auto y = b.conv2d_rect(x, 16, 1, 7, 1, 0, 3, false, "c17");
  EXPECT_EQ(b.desc(y).shape, (Shape{1, 16, 17, 17}));
  // Then 7x1 with pad (3,0).
  auto z = b.conv2d_rect(y, 16, 7, 1, 1, 3, 0, false, "c71");
  EXPECT_EQ(b.desc(z).shape, (Shape{1, 16, 17, 17}));
  Graph g = b.build(z);
  const auto& attrs =
      std::get<ConvAttrs>(g.node(g.backbone()[1]).attrs);
  EXPECT_EQ(attrs.kernel_h, 1);
  EXPECT_EQ(attrs.kernel_w, 7);
}

TEST(GraphBuilder, GlobalAvgPoolCoversSpatialExtent) {
  GraphBuilder b("gap");
  auto x = b.input({1, 32, 13, 13});
  auto y = b.global_avgpool(x);
  EXPECT_EQ(b.desc(y).shape, (Shape{1, 32, 1, 1}));
}

TEST(GraphBuilder, BatchNormAddsFourParameters) {
  GraphBuilder b("bn");
  auto x = b.input({1, 8, 4, 4});
  auto y = b.batchnorm(x, "norm");
  Graph g = b.build(b.relu(y));
  EXPECT_EQ(g.parameters().size(), 4u);
  for (graph::NodeId id : g.parameters())
    EXPECT_EQ(g.node(id).output.shape, (Shape{8}));
}

TEST(Graph, ConsumersTrackFanOut) {
  Graph g = diamond();
  // The conv (position 1) feeds both branches.
  const auto conv = g.backbone()[1];
  EXPECT_EQ(g.consumers()[static_cast<std::size_t>(conv)].size(), 2u);
  // The output node has no consumers.
  EXPECT_TRUE(g.consumers()[static_cast<std::size_t>(g.output_id())]
                  .empty());
}

TEST(Dot, ExportMentionsNodesAndEdges) {
  Graph g = diamond();
  const auto dot = to_dot(g, true, 1);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("sum"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("filled"), std::string::npos);
}

}  // namespace
}  // namespace lp::graph
