#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "serve/fleet.h"
#include "serve/frontend.h"
#include "serve/queue.h"

namespace lp::serve {
namespace {

const core::PredictorBundle& bundle() {
  static const core::PredictorBundle b = core::train_default_predictors(1234);
  return b;
}

// ------------------------------------------------------------- queue --

QueuedJob make_job(std::uint64_t seq, TimeNs deadline, double predicted) {
  QueuedJob job;
  job.seq = seq;
  job.deadline = deadline;
  job.predicted_sec = predicted;
  return job;
}

TEST(RequestQueue, FifoPopsInArrivalOrder) {
  RequestQueue q(QueuePolicy::kFifo, 8);
  q.push(make_job(0, seconds(9), 0.5));
  q.push(make_job(1, seconds(1), 0.1));
  q.push(make_job(2, seconds(5), 0.9));
  EXPECT_EQ(q.pop_next().seq, 0u);
  EXPECT_EQ(q.pop_next().seq, 1u);
  EXPECT_EQ(q.pop_next().seq, 2u);
}

TEST(RequestQueue, EdfPopsEarliestDeadlineFirst) {
  RequestQueue q(QueuePolicy::kEdf, 8);
  q.push(make_job(0, seconds(9), 0.5));
  q.push(make_job(1, seconds(1), 0.1));
  q.push(make_job(2, seconds(5), 0.9));
  q.push(make_job(3, core::kNoDeadline, 0.1));  // no deadline: last
  EXPECT_EQ(q.pop_next().seq, 1u);
  EXPECT_EQ(q.pop_next().seq, 2u);
  EXPECT_EQ(q.pop_next().seq, 0u);
  EXPECT_EQ(q.pop_next().seq, 3u);
}

TEST(RequestQueue, SpjfPopsShortestPredictedFirst) {
  RequestQueue q(QueuePolicy::kSpjf, 8);
  q.push(make_job(0, core::kNoDeadline, 0.5));
  q.push(make_job(1, core::kNoDeadline, 0.1));
  q.push(make_job(2, core::kNoDeadline, 0.1));  // tie with seq 1: arrival order
  EXPECT_EQ(q.pop_next().seq, 1u);
  EXPECT_EQ(q.pop_next().seq, 2u);
  EXPECT_EQ(q.pop_next().seq, 0u);
}

TEST(RequestQueue, BoundedPushFailsWhenFullAndTracksBacklog) {
  RequestQueue q(QueuePolicy::kFifo, 2);
  EXPECT_TRUE(q.push(make_job(0, core::kNoDeadline, 0.25)));
  EXPECT_TRUE(q.push(make_job(1, core::kNoDeadline, 0.5)));
  EXPECT_DOUBLE_EQ(q.predicted_backlog_sec(), 0.75);
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(make_job(2, core::kNoDeadline, 1.0)));
  EXPECT_EQ(q.size(), 2u);
  q.pop_next();
  EXPECT_DOUBLE_EQ(q.predicted_backlog_sec(), 0.5);
}

TEST(RequestQueue, TakeMatchingOnlyMergesIdenticalModelAndCut) {
  const auto alexnet = models::make_model("alexnet");
  const auto squeezenet = models::make_model("squeezenet");
  const core::GraphCostProfile pa(alexnet, bundle());
  const core::GraphCostProfile pb(squeezenet, bundle());

  RequestQueue q(QueuePolicy::kFifo, 8);
  auto with_profile = [](QueuedJob job, const core::GraphCostProfile* prof,
                         std::size_t p) {
    job.profile = prof;
    job.p = p;
    return job;
  };
  q.push(with_profile(make_job(0, core::kNoDeadline, 0.1), &pa, 5));
  // 1, 4: batch-mates; 2: same model, other p; 3: other model, same p.
  q.push(with_profile(make_job(1, core::kNoDeadline, 0.1), &pa, 5));
  q.push(with_profile(make_job(2, core::kNoDeadline, 0.1), &pa, 7));
  q.push(with_profile(make_job(3, core::kNoDeadline, 0.1), &pb, 5));
  q.push(with_profile(make_job(4, core::kNoDeadline, 0.1), &pa, 5));

  std::vector<QueuedJob> batch;
  batch.push_back(q.pop_next());
  q.take_matching(&pa, 5, 8, &batch);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].seq, 0u);
  EXPECT_EQ(batch[1].seq, 1u);
  EXPECT_EQ(batch[2].seq, 4u);
  EXPECT_EQ(q.size(), 2u);  // the (pa, 7) and (pb, 5) jobs stay queued
}

TEST(RequestQueue, EdfTreatsAbsoluteDeadlineZeroAsReal) {
  // Regression: the old 0-means-none sentinel conflated a request stamped
  // deadline 0 at sim time 0 with "no deadline" and served it last.
  RequestQueue q(QueuePolicy::kEdf, 8);
  q.push(make_job(0, core::kNoDeadline, 0.1));
  q.push(make_job(1, 0, 0.1));           // legit deadline: sim time 0
  q.push(make_job(2, seconds(1), 0.1));
  EXPECT_EQ(q.pop_next().seq, 1u);
  EXPECT_EQ(q.pop_next().seq, 2u);
  EXPECT_EQ(q.pop_next().seq, 0u);
}

TEST(RequestQueue, LeastSlackOrdersByDeadlineMinusPrediction) {
  RequestQueue q(QueuePolicy::kLeastSlack, 8);
  // seq 0: slack key 9 - 0.5 = 8.5 s; seq 1: 1 - 0.1 = 0.9 s;
  // seq 2: 1.2 - 0.9 = 0.3 s (a later deadline but the least slack);
  // seq 3: no deadline, infinite slack, last.
  q.push(make_job(0, seconds(9), 0.5));
  q.push(make_job(1, seconds(1), 0.1));
  q.push(make_job(2, milliseconds(1200), 0.9));
  q.push(make_job(3, core::kNoDeadline, 0.01));
  EXPECT_EQ(q.pop_next().seq, 2u);
  EXPECT_EQ(q.pop_next().seq, 1u);
  EXPECT_EQ(q.pop_next().seq, 0u);
  EXPECT_EQ(q.pop_next().seq, 3u);
}

TEST(RequestQueue, NonFinitePredictionsAreClampedAtPush) {
  // Regression: a NaN prediction used to enter the queue, breaking the
  // SPJF strict weak ordering and poisoning the backlog sum forever.
  RequestQueue q(QueuePolicy::kSpjf, 8);
  EXPECT_TRUE(
      q.push(make_job(0, core::kNoDeadline,
                      std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(q.push(make_job(
      1, core::kNoDeadline, std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(q.push(make_job(2, core::kNoDeadline, -3.0)));
  EXPECT_TRUE(q.push(make_job(3, core::kNoDeadline, 0.25)));
  for (const QueuedJob& job : q.jobs())
    EXPECT_TRUE(std::isfinite(job.predicted_sec) && job.predicted_sec >= 0.0);
  EXPECT_DOUBLE_EQ(q.predicted_backlog_sec(), 0.25);
  // Clamped jobs key as 0 (shortest): arrival order among themselves.
  EXPECT_EQ(q.pop_next().seq, 0u);
  EXPECT_EQ(q.pop_next().seq, 1u);
  EXPECT_EQ(q.pop_next().seq, 2u);
  EXPECT_EQ(q.pop_next().seq, 3u);
}

TEST(RequestQueue, TakeMatchingFillsBatchesInPolicyOrder) {
  // Regression: batches used to fill in arrival order regardless of the
  // queue policy, letting a late-deadline co-partition job ride ahead of an
  // earlier-deadline one.
  const auto alexnet = models::make_model("alexnet");
  const core::GraphCostProfile pa(alexnet, bundle());
  RequestQueue q(QueuePolicy::kEdf, 8);
  auto with_profile = [&](QueuedJob job, std::size_t p) {
    job.profile = &pa;
    job.p = p;
    return job;
  };
  q.push(with_profile(make_job(0, seconds(5), 0.1), 5));
  q.push(with_profile(make_job(1, seconds(9), 0.1), 5));
  q.push(with_profile(make_job(2, seconds(1), 0.1), 5));
  q.push(with_profile(make_job(3, seconds(2), 0.1), 5));

  std::vector<QueuedJob> batch;
  batch.push_back(q.pop_next());  // seq 2: earliest deadline
  q.take_matching(&pa, 5, 2, &batch);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].seq, 2u);
  EXPECT_EQ(batch[1].seq, 3u);  // deadline 2 s beats 5 s and 9 s
  EXPECT_EQ(batch[2].seq, 0u);
  EXPECT_EQ(q.jobs().front().seq, 1u);
}

TEST(RequestQueue, TakeMatchingNeverBatchesExpiredJobs) {
  const auto alexnet = models::make_model("alexnet");
  const core::GraphCostProfile pa(alexnet, bundle());
  RequestQueue q(QueuePolicy::kEdf, 8);
  auto with_profile = [&](QueuedJob job, std::size_t p) {
    job.profile = &pa;
    job.p = p;
    return job;
  };
  q.push(with_profile(make_job(0, seconds(5), 0.1), 5));
  q.push(with_profile(make_job(1, seconds(1), 0.1), 5));  // expired at 2 s
  q.push(with_profile(make_job(2, core::kNoDeadline, 0.1), 5));

  std::vector<QueuedJob> batch;
  batch.push_back(q.pop_next());  // seq 1 pops (this test isolates batching)
  q.take_matching(&pa, 5, 8, &batch, /*expired_cutoff=*/seconds(2));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[1].seq, 0u);
  EXPECT_EQ(batch[2].seq, 2u);  // deadline-free jobs are never "expired"
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, TakeExpiredSweepsPassedDeadlinesInArrivalOrder) {
  RequestQueue q(QueuePolicy::kFifo, 8);
  q.push(make_job(0, seconds(3), 0.1));
  q.push(make_job(1, seconds(1), 0.1));
  q.push(make_job(2, core::kNoDeadline, 0.1));
  q.push(make_job(3, seconds(2), 0.1));
  const auto expired = q.take_expired(seconds(2));
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].seq, 1u);
  EXPECT_EQ(expired[1].seq, 3u);  // deadline == now counts: 0 slack left
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.predicted_backlog_sec(), 0.2);
}

// ---------------------------------------------------------- frontend --

struct FrontendHarness {
  sim::Simulator sim;
  hw::GpuModel gpu;
  hw::GpuScheduler scheduler;
  graph::Graph model;
  core::GraphCostProfile profile;
  EdgeServerFrontend frontend;

  explicit FrontendHarness(FrontendParams params,
                           core::RuntimeParams runtime = {})
      : scheduler(sim),
        model(models::make_model("alexnet")),
        profile(model, bundle()),
        frontend(sim, scheduler, gpu, params, runtime, 99) {}
};

struct PendingRequest {
  sim::Event done;
  double exec = 0.0;
  double overhead = 0.0;
  double queue_wait = 0.0;
  core::SubmitStatus status = core::SubmitStatus::kRejected;
  core::SuffixStatus suffix_status = core::SuffixStatus::kServed;

  explicit PendingRequest(sim::Simulator& sim) : done(sim) {}

  core::SuffixRequest request(std::uint64_t session, std::size_t p,
                              TimeNs deadline = core::kNoDeadline) {
    core::SuffixRequest r;
    r.p = p;
    r.done = &done;
    r.exec_seconds = &exec;
    r.overhead_seconds = &overhead;
    r.queue_wait_seconds = &queue_wait;
    r.status = &suffix_status;
    r.session = session;
    r.deadline = deadline;
    return r;
  }
};

TEST(EdgeServerFrontend, BatchesOnlyIdenticalCuts) {
  FrontendParams params;
  params.max_batch = 4;
  FrontendHarness h(params);
  const auto a = h.frontend.open_session(h.profile);
  const auto b = h.frontend.open_session(h.profile);

  // Three compatible jobs and one at a different cut, submitted before the
  // service loop runs: the compatible ones coalesce into one dispatch.
  PendingRequest r1(h.sim), r2(h.sim), r3(h.sim), r4(h.sim);
  r1.status = h.frontend.submit(r1.request(a, 5));
  r2.status = h.frontend.submit(r2.request(b, 5));
  r3.status = h.frontend.submit(r3.request(a, 5));
  r4.status = h.frontend.submit(r4.request(b, 7));
  h.sim.run_until(seconds(30));

  EXPECT_EQ(r1.status, core::SubmitStatus::kAccepted);
  EXPECT_TRUE(r1.done.triggered());
  EXPECT_TRUE(r4.done.triggered());
  EXPECT_EQ(h.frontend.served(), 4u);
  EXPECT_EQ(h.frontend.dispatches(), 2u);
  EXPECT_EQ(h.frontend.batched_dispatches(), 1u);
  EXPECT_EQ(h.frontend.batched_jobs(), 3u);
  EXPECT_EQ(h.scheduler.coalesced_jobs(), 3u);
  // Batch-mates finish together and report the same contended time.
  EXPECT_DOUBLE_EQ(r1.exec, r2.exec);
  EXPECT_DOUBLE_EQ(r1.exec, r3.exec);
}

TEST(EdgeServerFrontend, ShedsWhenQueueFullOrOverBudget) {
  FrontendParams params;
  params.queue_capacity = 2;
  FrontendHarness h(params);
  const auto s = h.frontend.open_session(h.profile);

  PendingRequest r1(h.sim), r2(h.sim), r3(h.sim);
  EXPECT_EQ(h.frontend.submit(r1.request(s, 5)),
            core::SubmitStatus::kAccepted);
  EXPECT_EQ(h.frontend.submit(r2.request(s, 5)),
            core::SubmitStatus::kAccepted);
  // Queue holds 2: the third arrival before any dispatch is shed.
  EXPECT_EQ(h.frontend.submit(r3.request(s, 5)),
            core::SubmitStatus::kRejected);
  EXPECT_EQ(h.frontend.shed(), 1u);

  // Admission control with a zero budget sheds even with queue space.
  FrontendParams strict;
  strict.admission_control = true;
  strict.delay_budget_sec = 0.0;
  FrontendHarness h2(strict);
  const auto s2 = h2.frontend.open_session(h2.profile);
  PendingRequest q1(h2.sim), q2(h2.sim);
  EXPECT_EQ(h2.frontend.submit(q1.request(s2, 5)),
            core::SubmitStatus::kAccepted);  // empty queue: delay 0 <= 0
  EXPECT_EQ(h2.frontend.submit(q2.request(s2, 5)),
            core::SubmitStatus::kRejected);  // backlog now > 0
}

TEST(EdgeServerFrontend, WillMissSheddingFailsExpiredJobsTyped) {
  FrontendParams params;
  params.shed_will_miss = true;
  FrontendHarness h(params);
  const auto s = h.frontend.open_session(h.profile);

  // r1 (no deadline) occupies the GPU; r2's 1 ms deadline passes while it
  // queues behind the dispatch, so the dispatcher sheds it typed instead of
  // running a guaranteed miss.
  PendingRequest r1(h.sim), r2(h.sim);
  ASSERT_EQ(h.frontend.submit(r1.request(s, 5)),
            core::SubmitStatus::kAccepted);
  ASSERT_EQ(h.frontend.submit(r2.request(s, 5, milliseconds(1))),
            core::SubmitStatus::kAccepted);
  h.sim.run_until(seconds(30));

  EXPECT_TRUE(r1.done.triggered());
  EXPECT_EQ(r1.suffix_status, core::SuffixStatus::kServed);
  EXPECT_TRUE(r2.done.triggered());
  EXPECT_EQ(r2.suffix_status, core::SuffixStatus::kDeadlineShed);
  EXPECT_EQ(h.frontend.served(), 1u);
  EXPECT_EQ(h.frontend.deadline_shed(), 1u);
  EXPECT_EQ(h.frontend.failed_jobs(), 1u);
  EXPECT_EQ(h.frontend.queue_depth(), 0u);
}

TEST(EdgeServerFrontend, WillMissSheddingOffLetsExpiredJobsRun) {
  // Same timeline with the flag off: the expired job still runs (legacy
  // behavior) and is served late.
  FrontendHarness h(FrontendParams{});
  const auto s = h.frontend.open_session(h.profile);
  PendingRequest r1(h.sim), r2(h.sim);
  ASSERT_EQ(h.frontend.submit(r1.request(s, 5)),
            core::SubmitStatus::kAccepted);
  ASSERT_EQ(h.frontend.submit(r2.request(s, 5, milliseconds(1))),
            core::SubmitStatus::kAccepted);
  h.sim.run_until(seconds(30));
  EXPECT_EQ(r2.suffix_status, core::SuffixStatus::kServed);
  EXPECT_EQ(h.frontend.served(), 2u);
  EXPECT_EQ(h.frontend.deadline_shed(), 0u);
}

TEST(EdgeServerFrontend, DeadlineAdmissionShedsHopelessSubmissions) {
  FrontendParams params;
  params.deadline_admission = true;
  FrontendHarness h(params);
  const auto s = h.frontend.open_session(h.profile);

  // An empty queue admits a feasible deadline...
  PendingRequest r1(h.sim);
  EXPECT_EQ(h.frontend.submit(r1.request(s, 5, seconds(30))),
            core::SubmitStatus::kAccepted);
  // ...but a request whose own deadline cannot cover even the predicted
  // service is shed at submit, typed as a deadline-admission shed.
  PendingRequest r2(h.sim);
  EXPECT_EQ(h.frontend.submit(r2.request(s, 5, 1)),
            core::SubmitStatus::kRejected);
  EXPECT_EQ(h.frontend.shed(), 1u);
  EXPECT_EQ(h.frontend.deadline_shed_admission(), 1u);
  // Deadline-free requests are never tested against the deadline check.
  PendingRequest r3(h.sim);
  EXPECT_EQ(h.frontend.submit(r3.request(s, 5)),
            core::SubmitStatus::kAccepted);
}

TEST(EdgeServerFrontend, SessionsTrackKIndependently) {
  FrontendParams params;
  FrontendHarness h(params);
  const auto busy = h.frontend.open_session(h.profile);
  const auto idle = h.frontend.open_session(h.profile);

  // The busy session floods the frontend so its later requests queue
  // behind its earlier ones; the idle session never submits.
  std::vector<std::unique_ptr<PendingRequest>> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(std::make_unique<PendingRequest>(h.sim));
    ASSERT_EQ(h.frontend.submit(requests.back()->request(busy, 5)),
              core::SubmitStatus::kAccepted);
  }
  h.sim.run_until(seconds(60));

  EXPECT_GT(h.frontend.session_k(busy), 1.5);
  EXPECT_DOUBLE_EQ(h.frontend.session_k(idle), 1.0);
  // And the per-session partition caches are isolated too.
  EXPECT_EQ(h.frontend.session_cache(busy).size(), 1u);
  EXPECT_EQ(h.frontend.session_cache(idle).size(), 0u);
}

TEST(EdgeServerFrontend, RejectsMalformedRequests) {
  FrontendHarness h(FrontendParams{});
  const auto s = h.frontend.open_session(h.profile);
  PendingRequest r(h.sim);
  EXPECT_THROW(h.frontend.submit(r.request(s, h.profile.n())),
               ContractError);
  EXPECT_THROW(h.frontend.submit(r.request(s + 1, 5)), ContractError);
  core::SuffixRequest no_done;
  no_done.p = 5;
  no_done.session = s;
  EXPECT_THROW(h.frontend.submit(no_done), ContractError);
}

// ---------------------------------------------------- crash / restart --

TEST(EdgeServerFrontend, CrashFailsInFlightAndQueuedWithServerDown) {
  FrontendHarness h(FrontendParams{});
  const auto s = h.frontend.open_session(h.profile);

  // r1 dispatches immediately (and is mid-preparation when the crash
  // lands); r2 is still queued behind it.
  PendingRequest r1(h.sim), r2(h.sim);
  ASSERT_EQ(h.frontend.submit(r1.request(s, 5)),
            core::SubmitStatus::kAccepted);
  ASSERT_EQ(h.frontend.submit(r2.request(s, 5)),
            core::SubmitStatus::kAccepted);
  h.sim.call_after(milliseconds(1), [&] { h.frontend.crash(); });
  h.sim.run_until(seconds(30));

  // Both terminate with a typed server-down result — never a hang.
  EXPECT_TRUE(r1.done.triggered());
  EXPECT_TRUE(r2.done.triggered());
  EXPECT_EQ(r1.suffix_status, core::SuffixStatus::kServerDown);
  EXPECT_EQ(r2.suffix_status, core::SuffixStatus::kServerDown);
  EXPECT_EQ(h.frontend.failed_jobs(), 2u);
  EXPECT_EQ(h.frontend.served(), 0u);  // the abandoned batch never counts
  EXPECT_EQ(h.frontend.queue_depth(), 0u);
  EXPECT_FALSE(h.frontend.alive());
  EXPECT_EQ(h.frontend.crashes(), 1u);
}

TEST(EdgeServerFrontend, CrashedServerRefusesSubmissionsUntilRestart) {
  FrontendHarness h(FrontendParams{});
  const auto s = h.frontend.open_session(h.profile);
  h.frontend.crash();
  PendingRequest r(h.sim);
  EXPECT_EQ(h.frontend.submit(r.request(s, 5)), core::SubmitStatus::kDown);
  EXPECT_EQ(h.frontend.refused(), 1u);
  EXPECT_FALSE(r.done.triggered());  // nothing was enqueued

  h.frontend.restart();
  EXPECT_TRUE(h.frontend.alive());
  PendingRequest r2(h.sim);
  EXPECT_EQ(h.frontend.submit(r2.request(s, 5)),
            core::SubmitStatus::kAccepted);
  h.sim.run_until(seconds(30));
  EXPECT_TRUE(r2.done.triggered());
  EXPECT_EQ(r2.suffix_status, core::SuffixStatus::kServed);
  EXPECT_EQ(h.frontend.served(), 1u);
}

TEST(EdgeServerFrontend, CrashWipesPartitionCacheAndKWindow) {
  FrontendParams params;
  FrontendHarness h(params);
  const auto s = h.frontend.open_session(h.profile);

  // Warm the session: queueing drives k above idle and the partition
  // cache holds the plan for p = 5.
  std::vector<std::unique_ptr<PendingRequest>> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(std::make_unique<PendingRequest>(h.sim));
    ASSERT_EQ(h.frontend.submit(requests.back()->request(s, 5)),
              core::SubmitStatus::kAccepted);
  }
  h.sim.run_until(seconds(60));
  ASSERT_GT(h.frontend.session_k(s), 1.5);
  ASSERT_EQ(h.frontend.session_cache(s).size(), 1u);

  // The crash wipes both: cold cache, idle k, empty queue.
  h.frontend.crash();
  EXPECT_EQ(h.frontend.session_cache(s).size(), 0u);
  EXPECT_DOUBLE_EQ(h.frontend.session_k(s), 1.0);
  EXPECT_EQ(h.frontend.queue_depth(), 0u);

  // After restart the first request re-pays the partition overhead.
  h.frontend.restart();
  PendingRequest cold(h.sim);
  ASSERT_EQ(h.frontend.submit(cold.request(s, 5)),
            core::SubmitStatus::kAccepted);
  h.sim.run_until(seconds(120));
  EXPECT_TRUE(cold.done.triggered());
  EXPECT_GT(cold.overhead, 0.0);
  EXPECT_EQ(h.frontend.session_cache(s).size(), 1u);
}

// ------------------------------------------------------------- fleet --

FleetConfig overload_fleet(std::uint64_t seed) {
  FleetConfig config;
  config.duration = seconds(20);
  config.warmup = seconds(5);
  config.seed = seed;
  TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = 12;
  spec.policy = core::Policy::kNeurosurgeon;
  // Fast links so queueing (not transfer time) dominates the latency.
  spec.upload = net::BandwidthTrace::constant(mbps(100));
  spec.download = net::BandwidthTrace::constant(mbps(100));
  spec.request_gap = milliseconds(5);
  spec.slo_sec = 0.25;
  config.tenants.push_back(spec);
  config.frontend.policy = QueuePolicy::kEdf;
  config.frontend.admission_control = true;
  config.frontend.delay_budget_sec = 0.05;
  config.frontend.queue_capacity = 16;
  return config;
}

TEST(FleetDriver, OverloadShedsAndClientsDegradeToLocal) {
  const auto result = run_fleet(overload_fleet(3), bundle());
  EXPECT_GT(result.frontend.shed, 0u);
  const auto summary = result.summarize();
  EXPECT_GT(summary.requests(), 0u);
  EXPECT_GT(summary.degraded(), 0u);
  EXPECT_GT(summary.admitted(), 0u);
  // Every record carries a consistent outcome: degraded requests ran the
  // suffix on the device and never observed server time.
  for (const auto* rec : result.steady())
    if (rec->outcome == core::InferenceOutcome::kDegradedLocal) {
      EXPECT_DOUBLE_EQ(rec->server_sec, 0.0);
      EXPECT_GT(rec->device_sec, 0.0);
    }
}

TEST(FleetDriver, AdmissionControlBoundsAdmittedTail) {
  // Same offered load; only the frontend differs. The admitted p90 under
  // EDF+admission must beat FIFO-no-admission.
  FleetConfig open = overload_fleet(5);
  open.frontend.policy = QueuePolicy::kFifo;
  open.frontend.admission_control = false;
  open.frontend.queue_capacity = 256;
  FleetConfig guarded = overload_fleet(5);

  const auto open_summary = run_fleet(open, bundle()).summarize();
  const auto guarded_summary = run_fleet(guarded, bundle()).summarize();
  ASSERT_GT(open_summary.admitted(), 0u);
  ASSERT_GT(guarded_summary.admitted(), 0u);
  EXPECT_LT(guarded_summary.admitted_p90_ms, open_summary.admitted_p90_ms);
}

TEST(FleetDriver, DeterministicGivenSeed) {
  const auto a = run_fleet(overload_fleet(11), bundle());
  const auto b = run_fleet(overload_fleet(11), bundle());
  ASSERT_EQ(a.clients.size(), b.clients.size());
  ASSERT_GT(a.steady().size(), 0u);
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    const auto& ra = a.clients[i].records;
    const auto& rb = b.clients[i].records;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j].start, rb[j].start);
      EXPECT_EQ(ra[j].p, rb[j].p);
      EXPECT_DOUBLE_EQ(ra[j].total_sec, rb[j].total_sec);
      EXPECT_DOUBLE_EQ(ra[j].queue_wait_sec, rb[j].queue_wait_sec);
      EXPECT_EQ(ra[j].outcome, rb[j].outcome);
    }
  }
  EXPECT_EQ(a.frontend.shed, b.frontend.shed);
  EXPECT_EQ(a.frontend.dispatches, b.frontend.dispatches);
}

TEST(FleetDriver, BatchingRaisesServedThroughput) {
  // Full offload (p = 0): the GPU runs the whole dispatch-dominated graph,
  // so it is the bottleneck and coalescing identical suffixes pays.
  FleetConfig config;
  config.duration = seconds(15);
  config.warmup = seconds(3);
  config.seed = 9;
  config.runtime.fixed_p = 0;
  TenantSpec spec;
  spec.model = "resnet18";
  spec.clients = 16;
  spec.policy = core::Policy::kFixedPoint;
  spec.upload = net::BandwidthTrace::constant(mbps(100));
  spec.download = net::BandwidthTrace::constant(mbps(100));
  spec.request_gap = milliseconds(2);
  config.tenants.push_back(spec);

  FleetConfig batched = config;
  batched.frontend.max_batch = 8;
  batched.frontend.batch_window = milliseconds(2);

  const auto plain = run_fleet(config, bundle());
  const auto coalesced = run_fleet(batched, bundle());
  EXPECT_EQ(plain.frontend.batched_dispatches, 0u);
  EXPECT_GT(coalesced.frontend.batched_jobs, 0u);
  EXPECT_GT(coalesced.summarize().admitted(), plain.summarize().admitted());
}

TEST(FleetDriver, DegradeBacksOffLoadPartClientsTowardLocal) {
  // A frontend that sheds everything: LoADPart clients must stop
  // offloading (k backoff drives the cut to p = n), while the records of
  // the rejected attempts are marked degraded.
  FleetConfig config;
  config.duration = seconds(20);
  config.warmup = seconds(0);
  config.seed = 13;
  config.frontend.admission_control = true;
  config.frontend.delay_budget_sec = -1.0;  // always over budget
  // The profiler resets k from the (idle-looking) server session; keep it
  // out of the way so the reject backoff can compound to full retreat.
  config.profiler_period = seconds(60);
  TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = 2;
  spec.policy = core::Policy::kLoadPart;
  spec.upload = net::BandwidthTrace::constant(mbps(100));
  spec.download = net::BandwidthTrace::constant(mbps(100));
  spec.request_gap = milliseconds(5);
  config.tenants.push_back(spec);

  const auto result = run_fleet(config, bundle());
  const auto summary = result.summarize();
  EXPECT_EQ(summary.admitted(), 0u);
  EXPECT_GT(summary.degraded(), 0u);
  // By the end of the run the fleet has retreated to local inference.
  std::size_t n = 0;
  for (const auto& trace : result.clients) {
    ASSERT_FALSE(trace.records.empty());
    n = std::max(n, trace.records.back().p);
  }
  const auto model = models::make_model("alexnet");
  EXPECT_EQ(n, model.n());
}

FleetConfig crashy_fleet(std::uint64_t seed, bool local_fallback) {
  FleetConfig config;
  config.duration = seconds(20);
  config.warmup = seconds(2);
  config.seed = seed;
  config.faults.server_crash(seconds(6), seconds(10));
  config.runtime.fault.rpc_timeout_sec = 0.5;
  config.runtime.fault.max_retries = 1;
  config.runtime.fault.local_fallback = local_fallback;
  config.runtime.fault.breaker_failures = 3;
  config.runtime.fault.breaker_cooldown_sec = 1.0;
  TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = 3;
  spec.policy = core::Policy::kLoadPart;
  spec.upload = net::BandwidthTrace::constant(mbps(16));
  spec.download = net::BandwidthTrace::constant(mbps(16));
  spec.request_gap = milliseconds(10);
  config.tenants.push_back(spec);
  return config;
}

TEST(FleetDriver, ServerCrashRecoversLocallyWithoutLosingRequests) {
  const auto result = run_fleet(crashy_fleet(21, true), bundle());
  const auto summary = result.summarize();
  EXPECT_EQ(result.frontend.crashes, 1u);
  EXPECT_GT(result.frontend.refused, 0u);  // submissions hit the crashed server
  ASSERT_GT(summary.requests(), 0u);
  // With local fallback nothing is lost: every request that met a fault
  // terminated with a typed recovery, and the breaker pinned followers to
  // local while the server was gone.
  EXPECT_EQ(summary.failed(), 0u);
  EXPECT_GT(summary.recovered(), 0u);
  EXPECT_GT(summary.server_downs(), 0u);
  EXPECT_GT(summary.breaker_forced_local(), 0u);
  // Service resumes after restart: requests are admitted again late in
  // the run (the re-warm handshake works against wiped sessions).
  bool admitted_after_restart = false;
  for (const auto* rec : result.steady())
    if (rec->start > seconds(12) &&
        rec->outcome == core::InferenceOutcome::kAdmitted)
      admitted_after_restart = true;
  EXPECT_TRUE(admitted_after_restart);
}

TEST(FleetDriver, FailStopLosesRequestsAcrossTheCrash) {
  const auto result = run_fleet(crashy_fleet(21, false), bundle());
  const auto summary = result.summarize();
  EXPECT_GT(summary.failed(), 0u);
  EXPECT_EQ(summary.recovered(), 0u);
  // Lost requests still terminated (typed, no hang): they carry the
  // server-down taxonomy rather than a latency.
  for (const auto* rec : result.steady())
    if (rec->outcome == core::InferenceOutcome::kFailed)
      EXPECT_NE(rec->last_failure, core::FailureKind::kNone);
}

TEST(FleetDriver, FaultRunsAreDeterministic) {
  const auto a = run_fleet(crashy_fleet(33, true), bundle());
  const auto b = run_fleet(crashy_fleet(33, true), bundle());
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    const auto& ra = a.clients[i].records;
    const auto& rb = b.clients[i].records;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j].start, rb[j].start);
      EXPECT_DOUBLE_EQ(ra[j].total_sec, rb[j].total_sec);
      EXPECT_EQ(ra[j].outcome, rb[j].outcome);
      EXPECT_EQ(ra[j].last_failure, rb[j].last_failure);
      EXPECT_EQ(ra[j].retries, rb[j].retries);
    }
  }
  EXPECT_EQ(a.frontend.refused, b.frontend.refused);
  EXPECT_EQ(a.frontend.failed_jobs, b.frontend.failed_jobs);
}

TEST(FleetDriver, LeastSlackWithSheddingConservesAndShedsTyped) {
  // The overloaded EDF fleet rerun under least-slack + will-miss shedding:
  // sheds surface typed, every record still terminates, and the frontend's
  // conservation equations hold with the new counters.
  FleetConfig config = overload_fleet(7);
  config.frontend.policy = QueuePolicy::kLeastSlack;
  config.frontend.shed_will_miss = true;
  // No admission at all, a deep queue and a deadline tighter than the
  // closed-loop backlog: queued jobs keep expiring, so the will-miss
  // shedder fires throughout the run (deadline admission would prevent
  // exactly that; it gets its own assertion below).
  config.frontend.admission_control = false;
  config.frontend.queue_capacity = 64;
  for (auto& tenant : config.tenants) tenant.slo_sec = 0.05;

  const auto result = run_fleet(config, bundle());
  const auto& f = result.frontend;
  EXPECT_EQ(f.submitted, f.admitted + f.shed + f.refused);
  EXPECT_EQ(f.admitted + f.migrated_in, f.served + f.failed_jobs +
                                            f.queue_depth + f.inflight_jobs +
                                            f.migrated_out);
  EXPECT_LE(f.deadline_shed + f.fenced_jobs, f.failed_jobs);
  EXPECT_EQ(f.deadline_shed_admission, 0u);  // admission checks were off

  const auto summary = result.summarize();
  ASSERT_GT(summary.requests(), 0u);
  EXPECT_EQ(summary.failed(), 0u);  // sheds degrade locally, never lose work
  // Dispatcher sheds reach the client taxonomy as kDeadlineShed records
  // (the summary only folds steady-state records, so it is a lower bound
  // on the whole-run frontend counter).
  EXPECT_GT(f.deadline_shed, 0u);
  EXPECT_GT(summary.deadline_sheds(), 0u);
  EXPECT_LE(summary.deadline_sheds(), f.deadline_shed);
  for (const auto* rec : result.steady())
    if (rec->last_failure == core::FailureKind::kDeadlineShed) {
      EXPECT_EQ(rec->outcome, core::InferenceOutcome::kDegradedLocal);
      EXPECT_DOUBLE_EQ(rec->server_sec, 0.0);
    }

  // Same fleet with deadline admission on top: hopeless submissions are now
  // refused at the door, counted separately from dispatcher sheds and
  // bounded by the overall shed tally.
  config.frontend.deadline_admission = true;
  const auto gated = run_fleet(config, bundle());
  EXPECT_GT(gated.frontend.deadline_shed_admission, 0u);
  EXPECT_LE(gated.frontend.deadline_shed_admission, gated.frontend.shed);
  EXPECT_EQ(gated.frontend.submitted,
            gated.frontend.admitted + gated.frontend.shed +
                gated.frontend.refused);
}

TEST(FleetDriver, DeadlineShedFleetRunsAreDeterministic) {
  FleetConfig config = overload_fleet(17);
  config.frontend.policy = QueuePolicy::kLeastSlack;
  config.frontend.shed_will_miss = true;
  const auto a = run_fleet(config, bundle());
  const auto b = run_fleet(config, bundle());
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    const auto& ra = a.clients[i].records;
    const auto& rb = b.clients[i].records;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j].start, rb[j].start);
      EXPECT_DOUBLE_EQ(ra[j].total_sec, rb[j].total_sec);
      EXPECT_EQ(ra[j].outcome, rb[j].outcome);
      EXPECT_EQ(ra[j].last_failure, rb[j].last_failure);
    }
  }
  EXPECT_EQ(a.frontend.deadline_shed, b.frontend.deadline_shed);
  EXPECT_EQ(a.frontend.deadline_shed_admission,
            b.frontend.deadline_shed_admission);
}

TEST(FleetDriver, LegacyConfigsAreUnaffectedByTheFaultLayer) {
  // An empty FaultPlan plus default FaultToleranceParams must reproduce
  // the pre-fault-layer universe exactly: same records, same counters.
  const auto a = run_fleet(overload_fleet(11), bundle());
  FleetConfig with_defaults = overload_fleet(11);
  with_defaults.runtime.fault = {};  // explicit defaults
  const auto b = run_fleet(with_defaults, bundle());
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t i = 0; i < a.clients.size(); ++i)
    ASSERT_EQ(a.clients[i].records.size(), b.clients[i].records.size());
  EXPECT_EQ(a.frontend.shed, b.frontend.shed);
  EXPECT_EQ(a.frontend.submitted, b.frontend.submitted);
  const auto sa = a.summarize(), sb = b.summarize();
  EXPECT_DOUBLE_EQ(sa.mean_ms, sb.mean_ms);
  EXPECT_EQ(sa.failed(), 0u);
  EXPECT_EQ(sa.recovered(), 0u);
}

}  // namespace
}  // namespace lp::serve
