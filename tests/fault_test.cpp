#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "fault/fault_plan.h"
#include "fault/retry.h"
#include "net/bandwidth_trace.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace lp::fault {
namespace {

// ------------------------------------------------------------- backoff --

TEST(Backoff, ExponentialWithinJitterBounds) {
  BackoffPolicy policy;  // base 50 ms, x2, cap 2 s, jitter 10%
  Rng rng(7);
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const double raw = std::min(
        policy.base_sec * std::pow(policy.mult, attempt - 1), policy.max_sec);
    const double got = to_seconds(policy.delay(attempt, rng));
    EXPECT_GE(got, raw * (1.0 - policy.jitter_frac)) << attempt;
    EXPECT_LE(got, raw * (1.0 + policy.jitter_frac)) << attempt;
  }
}

TEST(Backoff, CapsAtMax) {
  BackoffPolicy policy;
  policy.jitter_frac = 0.0;
  Rng rng(7);
  // 50 -> 100 -> 200 -> 400 -> 800 -> 1600 -> 2000 (cap) -> 2000 ...
  EXPECT_EQ(policy.delay(1, rng), milliseconds(50));
  EXPECT_EQ(policy.delay(2, rng), milliseconds(100));
  EXPECT_EQ(policy.delay(6, rng), milliseconds(1600));
  EXPECT_EQ(policy.delay(7, rng), seconds(2));
  EXPECT_EQ(policy.delay(50, rng), seconds(2));
}

TEST(Backoff, JitterIsDeterministicUnderFixedSeed) {
  BackoffPolicy policy;
  Rng a(123), b(123), c(124);
  std::vector<DurationNs> sa, sb, sc;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    sa.push_back(policy.delay(attempt, a));
    sb.push_back(policy.delay(attempt, b));
    sc.push_back(policy.delay(attempt, c));
  }
  EXPECT_EQ(sa, sb);  // same seed, same retry instants
  EXPECT_NE(sa, sc);  // different seed, different jitter
}

TEST(Backoff, NeverNegativeAndValidatesJitter) {
  BackoffPolicy policy;
  policy.base_sec = 1e-9;
  policy.jitter_frac = 0.99;  // jitter can reach -99%
  Rng rng(5);
  for (int attempt = 1; attempt <= 20; ++attempt)
    EXPECT_GE(policy.delay(attempt, rng), 0);
  policy.jitter_frac = 1.0;  // out of contract: full-cancel jitter
  EXPECT_THROW(policy.delay(1, rng), ContractError);
}

// ------------------------------------------------------- circuit breaker --

TEST(CircuitBreaker, DisabledAlwaysAllows) {
  CircuitBreaker breaker(0, seconds(5));
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 10; ++i) breaker.record_failure(seconds(i));
  EXPECT_TRUE(breaker.allow(seconds(100)));
  EXPECT_EQ(breaker.state(seconds(100)), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, OpensAtThresholdAndCoolsDown) {
  CircuitBreaker breaker(3, seconds(5));
  EXPECT_TRUE(breaker.enabled());
  breaker.record_failure(seconds(1));
  breaker.record_failure(seconds(2));
  EXPECT_EQ(breaker.state(seconds(2)), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(seconds(2)));
  breaker.record_failure(seconds(3));  // third consecutive: open
  EXPECT_EQ(breaker.state(seconds(3)), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(seconds(3)));
  EXPECT_FALSE(breaker.allow(seconds(7)));  // still cooling down
  EXPECT_EQ(breaker.consecutive_failures(), 3);
}

TEST(CircuitBreaker, SuccessClearsTheRun) {
  CircuitBreaker breaker(3, seconds(5));
  breaker.record_failure(seconds(1));
  breaker.record_failure(seconds(2));
  breaker.record_success();
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  breaker.record_failure(seconds(3));
  breaker.record_failure(seconds(4));
  // Still closed: the success broke the run of failures.
  EXPECT_EQ(breaker.state(seconds(4)), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker breaker(2, seconds(5));
  breaker.record_failure(seconds(1));
  breaker.record_failure(seconds(2));  // open at t=2, cooldown to t=7
  EXPECT_EQ(breaker.state(seconds(7)), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(seconds(7)));    // the probe
  EXPECT_FALSE(breaker.allow(seconds(7)));   // nothing else
  EXPECT_FALSE(breaker.allow(seconds(8)));   // until the probe resolves
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  CircuitBreaker breaker(2, seconds(5));
  breaker.record_failure(seconds(1));
  breaker.record_failure(seconds(2));
  EXPECT_TRUE(breaker.allow(seconds(7)));
  breaker.record_success();
  EXPECT_EQ(breaker.state(seconds(7)), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(seconds(7)));
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreaker, NonMonotonicNowIsClampedToTheHighWaterMark) {
  // Sim tasks can resume out of order and hand the breaker a stale `now`.
  // The breaker's clock must never run backwards: once a call has observed
  // t=16 (half-open), an earlier-stamped call must not see kOpen again —
  // state(now) and allow(now) stay consistent across the reordering.
  CircuitBreaker breaker(2, seconds(5));
  breaker.record_failure(seconds(9));
  breaker.record_failure(seconds(10));  // open at t=10, cooldown to t=15
  EXPECT_EQ(breaker.state(seconds(16)), CircuitBreaker::State::kHalfOpen);
  // A straggler stamped t=12 arrives after the t=16 observation.
  EXPECT_EQ(breaker.state(seconds(12)), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(seconds(12)));   // the probe, not a refusal
  EXPECT_FALSE(breaker.allow(seconds(12)));  // probe outstanding
  // A stale-stamped probe failure re-opens *from the high-water mark*,
  // not from the stale instant: cooldown runs t=16..21, not t=12..17.
  breaker.record_failure(seconds(12));
  EXPECT_EQ(breaker.state(seconds(18)), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.state(seconds(21)), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreaker, ProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker(2, seconds(5));
  breaker.record_failure(seconds(1));
  breaker.record_failure(seconds(2));
  EXPECT_TRUE(breaker.allow(seconds(7)));
  breaker.record_failure(seconds(8));  // probe failed: re-open at t=8
  EXPECT_EQ(breaker.state(seconds(9)), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(seconds(12)));  // cooldown runs from t=8
  EXPECT_EQ(breaker.state(seconds(13)), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(seconds(13)));
}

// ------------------------------------------------------------ fault plan --

TEST(FaultPlan, WindowsAndQueries) {
  FaultPlan plan;
  plan.link_blackout(seconds(10), seconds(20))
      .link_degrade(seconds(30), seconds(40), mbps(1))
      .packet_loss(seconds(50), seconds(60), 0.25)
      .server_crash(seconds(70), seconds(80))
      .straggle(seconds(90), seconds(100), 4.0);
  EXPECT_FALSE(plan.empty());

  EXPECT_FALSE(plan.link_down(seconds(9)));
  EXPECT_TRUE(plan.link_down(seconds(10)));   // [begin, end)
  EXPECT_TRUE(plan.link_down(seconds(19)));
  EXPECT_FALSE(plan.link_down(seconds(20)));
  EXPECT_FALSE(plan.link_down(seconds(35)));  // degraded, not down

  EXPECT_DOUBLE_EQ(plan.loss_prob(seconds(49)), 0.0);
  EXPECT_DOUBLE_EQ(plan.loss_prob(seconds(55)), 0.25);
  EXPECT_DOUBLE_EQ(plan.loss_prob(seconds(60)), 0.0);

  EXPECT_FALSE(plan.server_down(seconds(69)));
  EXPECT_TRUE(plan.server_down(seconds(75)));
  EXPECT_FALSE(plan.server_down(seconds(80)));

  EXPECT_DOUBLE_EQ(plan.straggle_factor(seconds(89)), 1.0);
  EXPECT_DOUBLE_EQ(plan.straggle_factor(seconds(95)), 4.0);

  EXPECT_TRUE(FaultPlan().empty());
}

TEST(FaultPlan, LastAddedLossWindowWins) {
  FaultPlan plan;
  plan.packet_loss(seconds(0), seconds(100), 0.1)
      .packet_loss(seconds(40), seconds(60), 0.5);
  EXPECT_DOUBLE_EQ(plan.loss_prob(seconds(10)), 0.1);
  EXPECT_DOUBLE_EQ(plan.loss_prob(seconds(50)), 0.5);
  EXPECT_DOUBLE_EQ(plan.loss_prob(seconds(70)), 0.1);
}

TEST(FaultPlan, RejectsBadWindows) {
  FaultPlan plan;
  EXPECT_THROW(plan.link_blackout(seconds(5), seconds(5)), ContractError);
  EXPECT_THROW(plan.link_blackout(-seconds(1), seconds(5)), ContractError);
  EXPECT_THROW(plan.packet_loss(0, seconds(1), 1.5), ContractError);
  plan.server_crash(seconds(10), seconds(20));
  // Crash windows must be ordered and non-overlapping.
  EXPECT_THROW(plan.server_crash(seconds(15), seconds(30)), ContractError);
  EXPECT_THROW(plan.server_crash(seconds(5), seconds(9)), ContractError);
}

TEST(FaultPlan, GilbertElliottScheduleIsDeterministic) {
  const auto a = FaultPlan::gilbert_elliott_link(
      seconds(300), mbps(0.5), seconds(25), seconds(8), 99);
  const auto b = FaultPlan::gilbert_elliott_link(
      seconds(300), mbps(0.5), seconds(25), seconds(8), 99);
  ASSERT_EQ(a.link_faults().size(), b.link_faults().size());
  ASSERT_GE(a.link_faults().size(), 2u);
  for (std::size_t i = 0; i < a.link_faults().size(); ++i) {
    EXPECT_EQ(a.link_faults()[i].window.begin,
              b.link_faults()[i].window.begin);
    EXPECT_EQ(a.link_faults()[i].window.end, b.link_faults()[i].window.end);
    EXPECT_DOUBLE_EQ(a.link_faults()[i].bandwidth, mbps(0.5));
  }
}

// ------------------------------------------------- link fault application --

TEST(FaultPlan, SplicesIntoBandwidthTrace) {
  const auto base = net::BandwidthTrace::constant(mbps(16));
  FaultPlan plan;
  plan.link_blackout(seconds(10), seconds(20))
      .link_degrade(seconds(30), seconds(40), mbps(2));
  const auto spliced = net::apply_link_faults(base, plan);
  EXPECT_DOUBLE_EQ(spliced.bandwidth_at(seconds(5)), mbps(16));
  EXPECT_DOUBLE_EQ(spliced.bandwidth_at(seconds(15)), 0.0);
  EXPECT_DOUBLE_EQ(spliced.bandwidth_at(seconds(25)), mbps(16));
  EXPECT_DOUBLE_EQ(spliced.bandwidth_at(seconds(35)), mbps(2));
  EXPECT_DOUBLE_EQ(spliced.bandwidth_at(seconds(45)), mbps(16));
  // The blackout is a stall, not a divide-by-zero.
  EXPECT_EQ(spliced.next_positive_at(seconds(15)), seconds(20));
}

sim::Task do_upload(net::Link& link, std::int64_t bytes, TimeNs deadline,
                    net::TransferOutcome& out) {
  co_await link.upload(bytes, nullptr, deadline, &out);
}

TEST(Link, BlackoutTimesOutExactlyAtDeadline) {
  sim::Simulator sim;
  const auto base = net::BandwidthTrace::constant(mbps(16));
  FaultPlan plan;
  plan.link_blackout(0, seconds(100));
  net::Link link(sim, net::apply_link_faults(base, plan),
                 net::apply_link_faults(base, plan));
  net::TransferOutcome out;
  sim.spawn(do_upload(link, 1 << 20, seconds(2), out));
  sim.run();
  EXPECT_EQ(out.status, net::TransferStatus::kTimedOut);
  EXPECT_EQ(sim.now(), seconds(2));  // gave up exactly at the deadline
}

TEST(Link, TransferStallsThroughBlackoutAndCompletes) {
  sim::Simulator sim;
  const auto base = net::BandwidthTrace::constant(mbps(16));
  FaultPlan plan;
  plan.link_blackout(0, seconds(10));
  net::Link link(sim, net::apply_link_faults(base, plan),
                 net::apply_link_faults(base, plan));
  net::TransferOutcome out;
  sim.spawn(do_upload(link, 1 << 20, seconds(60), out));
  sim.run();
  EXPECT_EQ(out.status, net::TransferStatus::kOk);
  // Stalled until t=10, then sent at the recovered bandwidth.
  EXPECT_GT(sim.now(), seconds(10));
  EXPECT_LT(sim.now(), seconds(12));
}

TEST(Link, InjectedLossIsDeterministicAndReportsKLost) {
  const auto base = net::BandwidthTrace::constant(mbps(16));
  FaultPlan plan;
  plan.packet_loss(0, seconds(1000), 1.0);  // always drop
  sim::Simulator sim;
  net::Link link(sim, base, base);
  link.attach_faults(&plan);
  net::TransferOutcome out;
  sim.spawn(do_upload(link, 1 << 20, seconds(60), out));
  sim.run();
  EXPECT_EQ(out.status, net::TransferStatus::kLost);
  // The lost attempt burned a partial send, never more than the full one.
  EXPECT_GT(out.elapsed, 0);
  EXPECT_LT(to_seconds(out.elapsed), 1.0);
}

}  // namespace
}  // namespace lp::fault
