#include <gtest/gtest.h>

#include <limits>

#include "common/check.h"
#include "flops/flops.h"
#include "graph/cut.h"
#include "models/zoo.h"

namespace lp::models {
namespace {

using graph::OpType;

TEST(Zoo, AllModelsBuildAndValidate) {
  for (const auto& name : zoo_names()) {
    SCOPED_TRACE(name);
    const auto g = make_model(name);
    EXPECT_EQ(g.name(), name);
    EXPECT_GT(g.n(), 10u);
    g.validate();  // throws on violation
  }
}

TEST(Zoo, UnknownNameThrows) {
  EXPECT_THROW(make_model("lenet"), ContractError);
}

TEST(Zoo, EvaluationSetIsThePapersSix) {
  const auto names = evaluation_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "alexnet");
  EXPECT_EQ(names[2], "vgg16");
}

TEST(AlexNet, BackboneIndicesMatchPaper) {
  const auto g = alexnet();
  // n = 27 so that p = 27 is local inference (Figure 6).
  EXPECT_EQ(g.n(), 27u);
  // p = 4 is MaxPool-1, p = 8 is MaxPool-2 (the Fig. 1 optimum),
  // p = 19 is Flatten.
  EXPECT_EQ(g.node(g.backbone()[4]).op, OpType::kMaxPool);
  EXPECT_EQ(g.node(g.backbone()[8]).op, OpType::kMaxPool);
  EXPECT_EQ(g.node(g.backbone()[8]).name, "maxpool2");
  EXPECT_EQ(g.node(g.backbone()[19]).op, OpType::kFlatten);
  EXPECT_EQ(g.input_desc().shape, (Shape{1, 3, 224, 224}));
  EXPECT_EQ(g.output_desc().shape, (Shape{1, 1000}));
}

TEST(AlexNet, CutAfterMaxPool2SmallerThanInput) {
  // The motivation of Figure 1: the MaxPool-2 output (192x13x13) is much
  // smaller than the 3x224x224 input.
  const auto g = alexnet();
  const auto s = graph::cut_sizes(g);
  EXPECT_EQ(s[0], 3 * 224 * 224 * 4);
  EXPECT_EQ(s[8], 192 * 13 * 13 * 4);
  EXPECT_LT(s[8], s[0] / 4);
}

TEST(AlexNet, ParameterCountMatchesReference) {
  const auto g = alexnet();
  // Classic AlexNet (torchvision) has ~61.1M parameters.
  EXPECT_NEAR(static_cast<double>(g.parameter_bytes()) / 4.0, 61.1e6,
              0.5e6);
}

TEST(Vgg16, StructureAndCost) {
  const auto g = vgg16();
  // 13 conv layers (x3 nodes) + 5 pools + flatten + 3 FC (2 ReLU) = 53.
  EXPECT_EQ(g.n(), 53u);
  // ~138M parameters.
  EXPECT_NEAR(static_cast<double>(g.parameter_bytes()) / 4.0, 138.4e6,
              1e6);
  // ~15.5 GMAC of Table-I FLOPs.
  EXPECT_NEAR(static_cast<double>(flops::graph_flops(g)) / 1e9, 15.5, 0.5);
}

TEST(ResNet18, ShapeAndParams) {
  const auto g = resnet18();
  EXPECT_EQ(g.output_desc().shape, (Shape{1, 1000}));
  EXPECT_NEAR(static_cast<double>(g.parameter_bytes()) / 4.0, 11.7e6,
              0.3e6);
  EXPECT_NEAR(static_cast<double>(flops::graph_flops(g)) / 1e9, 1.8, 0.2);
}

TEST(ResNet50, ShapeAndParams) {
  const auto g = resnet50();
  EXPECT_NEAR(static_cast<double>(g.parameter_bytes()) / 4.0, 25.6e6,
              0.5e6);
  EXPECT_NEAR(static_cast<double>(flops::graph_flops(g)) / 1e9, 4.1, 0.3);
}

TEST(ResNet101And152, DeeperVariantsGrow) {
  const auto g101 = resnet101();
  const auto g152 = resnet152();
  EXPECT_GT(g152.n(), g101.n());
  EXPECT_GT(g101.n(), resnet50().n());
  EXPECT_NEAR(static_cast<double>(g101.parameter_bytes()) / 4.0, 44.5e6,
              1e6);
  EXPECT_NEAR(static_cast<double>(g152.parameter_bytes()) / 4.0, 60.2e6,
              1.5e6);
}

TEST(SqueezeNet, FireModulesAndTinyParams) {
  const auto g = squeezenet();
  EXPECT_EQ(g.input_desc().shape, (Shape{1, 3, 227, 227}));
  // ~1.25M parameters — the point of SqueezeNet.
  EXPECT_NEAR(static_cast<double>(g.parameter_bytes()) / 4.0, 1.25e6,
              0.1e6);
  // Fire concats exist.
  int concats = 0;
  for (graph::NodeId id : g.backbone())
    if (g.node(id).op == OpType::kConcat) ++concats;
  EXPECT_EQ(concats, 8);
  // Backbone length is in the high-90s range of the paper's p axis.
  EXPECT_GE(g.n(), 85u);
  EXPECT_LE(g.n(), 100u);
}

TEST(Xception, DepthwiseNodesPresent) {
  const auto g = xception();
  EXPECT_EQ(g.input_desc().shape, (Shape{1, 3, 299, 299}));
  int dw = 0;
  for (graph::NodeId id : g.backbone())
    if (g.node(id).op == OpType::kDWConv) ++dw;
  // 2 per entry/exit block sep-conv + 3 per middle block x 8 + 2 exit.
  EXPECT_EQ(dw, 34);
  EXPECT_NEAR(static_cast<double>(g.parameter_bytes()) / 4.0, 22.9e6,
              1.5e6);
}

TEST(InceptionV3, StructureMatchesReference) {
  const auto g = inception_v3();
  EXPECT_EQ(g.input_desc().shape, (Shape{1, 3, 299, 299}));
  // 1.02 MB input, as quoted in Section III-D.
  EXPECT_NEAR(static_cast<double>(g.input_desc().bytes()) / 1e6, 1.07,
              0.02);
  EXPECT_NEAR(static_cast<double>(g.parameter_bytes()) / 4.0, 23.8e6,
              1.5e6);
}

TEST(InceptionV3, InteriorCutsNeverBeatBoundaries) {
  // Section III-D: cutting inside an Inception block severs several branch
  // tensors, so interior cuts always move more bytes than the best
  // block-boundary cut — the observation that lets Algorithm 1 search only
  // the topological order. (The paper quotes 1.25 MB as the cheapest cut
  // inside the *last* block vs a 1.02 MB input; our graph's 8x8 blocks are
  // a little leaner, but the ordering that matters to the algorithm holds.)
  const auto g = inception_v3();
  const auto s = graph::cut_sizes(g);
  std::int64_t best_boundary = std::numeric_limits<std::int64_t>::max();
  std::int64_t best_interior = std::numeric_limits<std::int64_t>::max();
  for (std::size_t p = 0; p < g.n(); ++p) {
    auto& slot =
        graph::cut_inside_block(g, p) ? best_interior : best_boundary;
    slot = std::min(slot, s[p]);
  }
  ASSERT_NE(best_interior, std::numeric_limits<std::int64_t>::max());
  EXPECT_LT(best_boundary, best_interior);
  // Interior cuts in the 17x17 and 35x35 stages exceed the input size, as
  // the paper argues for the earlier blocks.
  const auto input_bytes = g.input_desc().bytes();
  std::int64_t min_early_interior = std::numeric_limits<std::int64_t>::max();
  for (std::size_t p = 0; p < g.n(); ++p) {
    if (!graph::cut_inside_block(g, p)) continue;
    const auto& node = g.node(g.backbone()[p]);
    if (node.output.shape.rank() == 4 && node.output.shape.h() >= 35)
      min_early_interior = std::min(min_early_interior, s[p]);
  }
  EXPECT_GT(min_early_interior, input_bytes);
}

TEST(MobileNetV2, StructureMatchesReference) {
  const auto g = mobilenet_v2();
  EXPECT_EQ(g.input_desc().shape, (Shape{1, 3, 224, 224}));
  // ~3.5M parameters, ~0.3 GMAC — the efficiency point of the family.
  EXPECT_NEAR(static_cast<double>(g.parameter_bytes()) / 4.0, 3.5e6,
              0.2e6);
  EXPECT_NEAR(static_cast<double>(flops::graph_flops(g)) / 1e9, 0.32,
              0.05);
  // 17 inverted residual blocks -> 17 depthwise nodes.
  int dw = 0, adds = 0;
  for (graph::NodeId id : g.backbone()) {
    if (g.node(id).op == OpType::kDWConv) ++dw;
    if (g.node(id).op == OpType::kAdd) ++adds;
  }
  EXPECT_EQ(dw, 17);
  EXPECT_EQ(adds, 10);  // stride-1 same-width blocks only
}

TEST(Zoo, BatchSizeScalesActivationsNotParameters) {
  const auto b1 = alexnet(1000, 1);
  const auto b4 = alexnet(1000, 4);
  EXPECT_EQ(b4.input_desc().shape, (Shape{4, 3, 224, 224}));
  EXPECT_EQ(b4.output_desc().shape, (Shape{4, 1000}));
  EXPECT_EQ(b4.n(), b1.n());
  // Weights are batch-independent; activations (and therefore cut sizes
  // and FLOPs) scale linearly.
  EXPECT_EQ(b4.parameter_bytes(), b1.parameter_bytes());
  EXPECT_EQ(flops::graph_flops(b4), 4 * flops::graph_flops(b1));
  const auto s1 = graph::cut_sizes(b1);
  const auto s4 = graph::cut_sizes(b4);
  for (std::size_t p = 0; p <= b1.n(); ++p)
    EXPECT_EQ(s4[p], 4 * s1[p]) << p;
}

TEST(Zoo, BatchedModelsValidateAcrossTheZoo) {
  for (auto builder : {resnet18, squeezenet, xception, inception_v3}) {
    const auto g = builder(1000, 2);
    g.validate();
    EXPECT_EQ(g.input_desc().shape.n(), 2);
  }
}

TEST(Zoo, ResNetInteriorCutsNeverBeatBlockBoundaries) {
  // The Section III-D observation that justifies the O(n) search.
  for (const char* name : {"resnet18", "resnet50", "squeezenet"}) {
    SCOPED_TRACE(name);
    const auto g = make_model(name);
    const auto s = graph::cut_sizes(g);
    // Best boundary cut (excluding p = n) vs best interior cut.
    std::int64_t best_boundary = std::numeric_limits<std::int64_t>::max();
    std::int64_t best_interior = std::numeric_limits<std::int64_t>::max();
    for (std::size_t p = 0; p < g.n(); ++p) {
      auto& slot =
          graph::cut_inside_block(g, p) ? best_interior : best_boundary;
      slot = std::min(slot, s[p]);
    }
    EXPECT_LT(best_boundary, best_interior);
  }
}

}  // namespace
}  // namespace lp::models
