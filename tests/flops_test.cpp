#include <gtest/gtest.h>

#include "flops/features.h"
#include "flops/flops.h"
#include "models/zoo.h"

namespace lp::flops {
namespace {

using graph::OpType;

NodeConfig conv_cfg() {
  NodeConfig cfg;
  cfg.op = OpType::kConv;
  cfg.in = Shape{1, 3, 224, 224};
  cfg.out = Shape{1, 64, 55, 55};
  cfg.kernel_h = cfg.kernel_w = 11;
  cfg.pad_h = cfg.pad_w = 2;
  return cfg;
}

TEST(TableI, ConvFlops) {
  // N * C_in * H_out * W_out * K_H * K_W * C_out.
  EXPECT_EQ(flops_of(conv_cfg()),
            1LL * 3 * 55 * 55 * 11 * 11 * 64);
}

TEST(TableI, DWConvFlops) {
  NodeConfig cfg;
  cfg.op = OpType::kDWConv;
  cfg.in = Shape{1, 32, 28, 28};
  cfg.out = Shape{1, 32, 28, 28};
  cfg.kernel_h = cfg.kernel_w = 3;
  // N * C_in * H_out * W_out * K_H * K_W (no C_out factor).
  EXPECT_EQ(flops_of(cfg), 1LL * 32 * 28 * 28 * 3 * 3);
}

TEST(TableI, MatMulFlops) {
  NodeConfig cfg;
  cfg.op = OpType::kMatMul;
  cfg.in = Shape{1, 9216};
  cfg.out = Shape{1, 4096};
  EXPECT_EQ(flops_of(cfg), 1LL * 9216 * 4096);
}

TEST(TableI, PoolingFlops) {
  NodeConfig cfg;
  cfg.op = OpType::kMaxPool;
  cfg.in = Shape{1, 64, 55, 55};
  cfg.out = Shape{1, 64, 27, 27};
  cfg.kernel_h = cfg.kernel_w = 3;
  // N * C_out * H_out * W_out * K_H * K_W.
  EXPECT_EQ(flops_of(cfg), 1LL * 64 * 27 * 27 * 3 * 3);
}

TEST(TableI, ElementwiseFamilyIsInputSize) {
  for (OpType op : {OpType::kBiasAdd, OpType::kAdd, OpType::kBatchNorm,
                    OpType::kRelu, OpType::kSigmoid, OpType::kTanh,
                    OpType::kSoftmax}) {
    NodeConfig cfg;
    cfg.op = op;
    cfg.in = Shape{1, 64, 55, 55};
    cfg.out = cfg.in;
    EXPECT_EQ(flops_of(cfg), 1LL * 64 * 55 * 55) << op_name(op);
  }
}

TEST(TableI, StructuralNodesAreFree) {
  NodeConfig cfg;
  cfg.op = OpType::kConcat;
  cfg.in = Shape{1, 64, 55, 55};
  cfg.out = Shape{1, 128, 55, 55};
  EXPECT_EQ(flops_of(cfg), 0);
  cfg.op = OpType::kFlatten;
  EXPECT_EQ(flops_of(cfg), 0);
}

TEST(ModelKind, MappingCoversEveryOp) {
  EXPECT_EQ(model_kind(OpType::kConv), ModelKind::kConv);
  EXPECT_EQ(model_kind(OpType::kDWConv), ModelKind::kDWConv);
  EXPECT_EQ(model_kind(OpType::kMaxPool), ModelKind::kMaxPool);
  EXPECT_EQ(model_kind(OpType::kAvgPool), ModelKind::kAvgPool);
  EXPECT_EQ(model_kind(OpType::kInput), ModelKind::kNone);
  EXPECT_EQ(model_kind(OpType::kMakeTuple), ModelKind::kNone);
  EXPECT_EQ(all_model_kinds().size(),
            static_cast<std::size_t>(kNumModelKinds));
}

TEST(TableII, ConvFeatures) {
  const auto cfg = conv_cfg();
  const double sf = 3.0 * 11 * 11;  // C_in * K_H * K_W
  for (Device d : {Device::kUser, Device::kEdge}) {
    const auto f = features_of(cfg, d);
    ASSERT_EQ(f.size(), 4u);
    EXPECT_DOUBLE_EQ(f[0], static_cast<double>(flops_of(cfg)));
    EXPECT_DOUBLE_EQ(f[1], sf);
    EXPECT_DOUBLE_EQ(f[2], 224.0 * sf);   // H_in * s_f
    EXPECT_DOUBLE_EQ(f[3], 64.0 * sf);    // C_out * s_f
  }
}

TEST(TableII, DWConvFeaturesDifferByDevice) {
  NodeConfig cfg;
  cfg.op = OpType::kDWConv;
  cfg.in = Shape{1, 32, 28, 28};
  cfg.out = Shape{1, 32, 28, 28};
  cfg.kernel_h = cfg.kernel_w = 3;
  cfg.pad_h = cfg.pad_w = 1;
  const auto edge = features_of(cfg, Device::kEdge);
  const auto user = features_of(cfg, Device::kUser);
  ASSERT_EQ(edge.size(), 3u);  // FLOPs, s_f, padded_size
  ASSERT_EQ(user.size(), 2u);  // FLOPs, N*C_out*s_f
  EXPECT_DOUBLE_EQ(edge[2], 1.0 * 32 * 30 * 30);
  EXPECT_DOUBLE_EQ(user[1], 1.0 * 32 * (32 * 3 * 3));
}

TEST(TableII, MatMulAndPoolingFeatureWidths) {
  NodeConfig mm;
  mm.op = OpType::kMatMul;
  mm.in = Shape{1, 9216};
  mm.out = Shape{1, 4096};
  EXPECT_EQ(features_of(mm, Device::kEdge).size(), 4u);

  NodeConfig pool;
  pool.op = OpType::kAvgPool;
  pool.in = Shape{1, 64, 55, 55};
  pool.out = Shape{1, 64, 27, 27};
  pool.kernel_h = pool.kernel_w = 3;
  const auto f = features_of(pool, Device::kUser);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[1], 1.0 * 64 * 55 * 55);
  EXPECT_DOUBLE_EQ(f[2], 1.0 * 64 * 27 * 27);
  EXPECT_DOUBLE_EQ(f[3], 27.0 * 27.0);
}

TEST(TableII, ElementwiseFeatureIsFlopsOnly) {
  NodeConfig cfg;
  cfg.op = OpType::kRelu;
  cfg.in = Shape{1, 64, 55, 55};
  cfg.out = cfg.in;
  const auto f = features_of(cfg, Device::kUser);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f[0], static_cast<double>(flops_of(cfg)));
}

TEST(TableII, FeatureNamesMatchWidths) {
  for (ModelKind kind : all_model_kinds()) {
    for (Device d : {Device::kUser, Device::kEdge}) {
      NodeConfig cfg;
      // Use a real config for each kind via the zoo where convenient; the
      // widths only depend on (kind, device).
      const auto names = feature_names(kind, d);
      EXPECT_FALSE(names.empty());
    }
  }
}

TEST(CandidateFeatures, SupersetOfSelected) {
  const auto cfg = conv_cfg();
  const auto cand = candidate_features_of(cfg);
  const auto names = candidate_feature_names(ModelKind::kConv);
  EXPECT_EQ(cand.size(), names.size());
  EXPECT_GT(cand.size(),
            features_of(cfg, Device::kEdge).size());
}

TEST(GraphFlops, AlexNetTotalMatchesReference) {
  // AlexNet Table-I FLOPs (MAC convention): ~0.71 G conv + ~0.06 G FC.
  const auto g = models::alexnet();
  EXPECT_NEAR(static_cast<double>(graph_flops(g)) / 1e9, 0.77, 0.08);
}

TEST(ConfigOf, ExtractsConvAttrsFromGraph) {
  const auto g = models::alexnet();
  const auto cfg = config_of(g, g.backbone()[1]);  // conv1
  EXPECT_EQ(cfg.op, OpType::kConv);
  EXPECT_EQ(cfg.kernel_h, 11);
  EXPECT_EQ(cfg.in, (Shape{1, 3, 224, 224}));
  EXPECT_EQ(cfg.out, (Shape{1, 64, 55, 55}));
}

}  // namespace
}  // namespace lp::flops
