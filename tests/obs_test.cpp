#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "exec/interpreter.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/taxonomy.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "serve/fleet.h"

namespace lp::obs {
namespace {

// --------------------------------------------------------- histogram --

TEST(Histogram, BucketEdgesAreHalfOpen) {
  Histogram h(0.0, 10.0, 10);  // 10 bins of width 1 over [0, 10)
  h.record(0.0);               // [0, 1)
  h.record(0.999);             // [0, 1)
  h.record(1.0);               // [1, 2): lower edge is inclusive
  h.record(9.999);             // [9, 10)
  h.record(10.0);              // hi is exclusive: overflow
  h.record(-0.001);            // underflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.edge(9), 9.0);
}

TEST(Histogram, EdgeRoundingNeverSkipsPastTheLastBin) {
  // A value just below hi whose float bucket index rounds to buckets()
  // must land in the last interior bin, not out of range.
  Histogram h(0.0, 0.3, 3);  // width 0.1 is not exactly representable
  h.record(0.3 - 1e-16);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, TracksSumMeanMinMax) {
  Histogram h(0.0, 100.0, 10);
  for (const double x : {5.0, 15.0, 25.0}) h.record(x);
  EXPECT_DOUBLE_EQ(h.sum(), 45.0);
  EXPECT_DOUBLE_EQ(h.mean(), 15.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
}

TEST(Histogram, PercentileMatchesLinearInterpolationConvention) {
  // With one sample per unit-width bucket the histogram reconstruction
  // is exact, so percentile() must agree with lp::percentile (type 7)
  // on the bucket lower edges.
  Histogram h(0.0, 4.0, 4);
  std::vector<double> samples = {0.0, 1.0, 2.0, 3.0};
  for (const double x : samples) h.record(x);
  // rank = q/100 * (n-1): p50 of {0,1,2,3} is 1.5.
  EXPECT_NEAR(h.percentile(50.0), lp::percentile(samples, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  // The top percentile clamps to the observed maximum, as documented.
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 3.0);
}

TEST(Histogram, RejectsInvalidShape) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), lp::ContractError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), lp::ContractError);
}

// ---------------------------------------------------------- registry --

TEST(MetricsRegistry, HandlesAreStableAndCreateOrGet) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  reg.counter("y.count").add(7);  // force map growth
  reg.gauge("x.level").set(3.5);
  Counter& a2 = reg.counter("x.count");
  EXPECT_EQ(&a, &a2);
  a.add(2);
  EXPECT_EQ(reg.counter("x.count").value(), 2);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, KindCollisionIsAContractError) {
  MetricsRegistry reg;
  reg.counter("dual");
  EXPECT_THROW(reg.gauge("dual"), lp::ContractError);
  EXPECT_THROW(reg.histogram("dual", 0.0, 1.0, 4), lp::ContractError);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  reg.counter("present").add(1);
  ASSERT_NE(reg.find_counter("present"), nullptr);
  EXPECT_EQ(reg.find_gauge("present"), nullptr);  // wrong kind
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, ExportIsSortedAndDeterministic) {
  MetricsRegistry reg;
  reg.counter("zz").add(1);
  reg.gauge("aa").set(2.0);
  reg.histogram("mm", 0.0, 10.0, 2).record(3.0);
  const std::string j1 = reg.to_json();
  const std::string j2 = reg.to_json();
  EXPECT_EQ(j1, j2);
  EXPECT_LT(j1.find("\"aa\""), j1.find("\"mm\""));
  EXPECT_LT(j1.find("\"mm\""), j1.find("\"zz\""));
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("zz,counter,value,1"), std::string::npos);
}

// ---------------------------------------------------------- taxonomy --

TEST(OutcomeCounts, TalliesByOutcomeAndFailureKind) {
  OutcomeCounts c;
  c.add(Outcome::kAdmitted);
  c.add(Outcome::kAdmitted, FailureKind::kNone, /*retries=*/2, /*faults=*/1);
  c.add(Outcome::kDegradedLocal);
  c.add(Outcome::kRecoveredLocal, FailureKind::kTimeout, 1, 1,
        /*breaker_forced_local=*/true);
  c.add(Outcome::kFailed, FailureKind::kServerDown);
  EXPECT_EQ(c.requests(), 5u);
  EXPECT_EQ(c.admitted(), 2u);
  EXPECT_EQ(c.degraded(), 1u);
  EXPECT_EQ(c.recovered(), 1u);
  EXPECT_EQ(c.failed(), 1u);
  EXPECT_EQ(c.retries(), 3u);
  EXPECT_EQ(c.faults(), 2u);
  EXPECT_EQ(c.timeouts(), 1u);
  EXPECT_EQ(c.server_downs(), 1u);
  EXPECT_EQ(c.link_drops(), 0u);
  EXPECT_EQ(c.breaker_forced_local(), 1u);
}

TEST(OutcomeCounts, PublishMirrorsEveryBucketIntoTheRegistry) {
  OutcomeCounts c;
  c.add(Outcome::kRecoveredLocal, FailureKind::kLinkDrop, 1, 1);
  MetricsRegistry reg;
  c.publish(reg, "t");
  EXPECT_EQ(reg.find_counter("t.requests")->value(), 1);
  EXPECT_EQ(reg.find_counter("t.outcome.recovered_local")->value(), 1);
  EXPECT_EQ(reg.find_counter("t.outcome.failed")->value(), 0);
  EXPECT_EQ(reg.find_counter("t.failure.link_drop")->value(), 1);
  EXPECT_EQ(reg.find_counter("t.retries")->value(), 1);
}

// ------------------------------------------------- chrome-trace JSON --

// Minimal recursive-descent JSON well-formedness checker — enough to
// reject unbalanced structure, bad literals and broken string escapes.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    return value() && (skip_ws(), pos_ == s_.size());
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false;
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (++pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0)
              return false;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(JsonChecker("{\"a\": [1, -2.5e3, \"x\\n\"], \"b\": null}")
                  .valid());
  EXPECT_FALSE(JsonChecker("{\"a\": [1,}").valid());
  EXPECT_FALSE(JsonChecker("{\"a\" 1}").valid());
  EXPECT_FALSE(JsonChecker("{\"bad\\q\": 1}").valid());
}

TraceArgs args_pk() { return TraceArgs().arg("p", 7).arg("ok", true); }

TEST(TraceRecorder, SpansNestAndSerializeDeterministically) {
  // Record the same hierarchy twice; the exports must match byte for
  // byte and preserve recording order (parent span around child spans).
  const auto record = [](TraceRecorder& tr) {
    const TrackId client = tr.track("client #0");
    const TrackId fe = tr.track("frontend");
    tr.instant(client, "partition-decision", 100, args_pk());
    tr.span(client, "prefix-exec", 100, 400, TraceArgs().arg("p", 7));
    tr.async_begin(fe, "queue-wait", 1, 450);
    tr.counter(fe, "queue_depth", 450, 1.0);
    tr.async_end(fe, "queue-wait", 1, 900);
    tr.span(fe, "suffix-exec", 900, 1500,
            TraceArgs().arg("batch", 2).arg("exec_ms", 0.6));
    tr.span(client, "request", 100, 1600,
            TraceArgs().arg("outcome", "admitted"));
  };
  TraceRecorder a, b;
  record(a);
  record(b);
  EXPECT_EQ(a.num_events(), 7u);
  EXPECT_EQ(a.num_tracks(), 2u);
  const std::string json = a.to_chrome_json();
  EXPECT_EQ(json, b.to_chrome_json());
  EXPECT_TRUE(JsonChecker(json).valid());
  // The root "request" span contains "prefix-exec" by time containment
  // on the same track, and recording order is preserved in the file.
  EXPECT_LT(json.find("prefix-exec"), json.find("request"));
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
}

TEST(TraceRecorder, FormatsTimestampsAsFixedPointMicroseconds) {
  TraceRecorder tr;
  const TrackId t = tr.track("t");
  tr.span(t, "s", 1234567, 2234567);  // 1234.567 us, dur 1000.000 us
  const std::string json = tr.to_chrome_json();
  EXPECT_NE(json.find("\"ts\": 1234.567"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1000.000"), std::string::npos);
}

TEST(TraceRecorder, EscapesNamesIntoValidJson) {
  TraceRecorder tr;
  const TrackId t = tr.track("we\"ird\\track\n");
  tr.instant(t, "ev\tent", 5, TraceArgs().arg("k\"ey", "va\\lue"));
  EXPECT_TRUE(JsonChecker(tr.to_chrome_json()).valid());
}

TEST(TraceRecorder, RejectsNegativeDurationSpans) {
  TraceRecorder tr;
  const TrackId t = tr.track("t");
  EXPECT_THROW(tr.span(t, "s", 10, 9), lp::ContractError);
}

// ------------------------------------------------------------ report --

TEST(Report, SerializesScalarsAndSections) {
  Report r("demo");
  r.set("mode", "smoke");
  r.set("requests", std::size_t{42});
  r.set("ok", true);
  auto& sec = r.section("modes", {"name", "p99_ms"});
  sec.add_row({"fail-stop", 12.5});
  sec.add_row({"retry", 8.25});
  const std::string json = r.to_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"requests\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"retry\""), std::string::npos);
  // Re-requesting a section returns the same table.
  EXPECT_EQ(&r.section("modes", {}), &sec);
  EXPECT_EQ(sec.num_rows(), 2u);
}

TEST(Report, RowWidthMustMatchColumns) {
  Report r("demo");
  auto& sec = r.section("s", {"a", "b"});
  EXPECT_THROW(sec.add_row({1}), lp::ContractError);
}

// -------------------------------------------- end-to-end determinism --

const core::PredictorBundle& bundle() {
  static const core::PredictorBundle b = core::train_default_predictors(1234);
  return b;
}

serve::FleetConfig tiny_fleet(std::uint64_t seed) {
  serve::FleetConfig config;
  config.duration = seconds(8);
  config.warmup = seconds(2);
  config.seed = seed;
  config.frontend.policy = serve::QueuePolicy::kEdf;
  config.frontend.admission_control = true;
  config.frontend.max_batch = 4;
  config.frontend.batch_window = milliseconds(2);
  serve::TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = 3;
  spec.policy = core::Policy::kLoadPart;
  spec.request_gap = milliseconds(10);
  spec.slo_sec = 0.25;
  config.tenants.push_back(spec);
  return config;
}

std::vector<core::InferenceRecord> flatten(const serve::FleetResult& r) {
  std::vector<core::InferenceRecord> out;
  for (const auto& trace : r.clients)
    out.insert(out.end(), trace.records.begin(), trace.records.end());
  return out;
}

void expect_identical_records(const std::vector<core::InferenceRecord>& a,
                              const std::vector<core::InferenceRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].p, b[i].p);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].retries, b[i].retries);
    EXPECT_DOUBLE_EQ(a[i].total_sec, b[i].total_sec);
    EXPECT_DOUBLE_EQ(a[i].k_used, b[i].k_used);
  }
}

TEST(Telemetry, DisabledModeIsBitIdenticalToInstrumentedRun) {
  // The whole point of the null-sink design: attaching telemetry (or not)
  // must never perturb the simulation.
  const auto plain = serve::run_fleet(tiny_fleet(5), bundle());

  Telemetry telemetry(/*tracing=*/true);
  serve::FleetConfig traced_config = tiny_fleet(5);
  traced_config.telemetry = &telemetry;
  const auto traced = serve::run_fleet(traced_config, bundle());

  expect_identical_records(flatten(plain), flatten(traced));
  EXPECT_GT(telemetry.trace()->num_events(), 0u);
  EXPECT_GT(telemetry.metrics().size(), 0u);
}

TEST(Telemetry, SameSeedRunsEmitByteIdenticalTraces) {
  std::string json[2];
  for (int i = 0; i < 2; ++i) {
    Telemetry telemetry(/*tracing=*/true);
    serve::FleetConfig config = tiny_fleet(9);
    config.telemetry = &telemetry;
    (void)serve::run_fleet(config, bundle());
    json[i] = telemetry.trace()->to_chrome_json();
    EXPECT_TRUE(JsonChecker(json[i]).valid());
  }
  EXPECT_EQ(json[0], json[1]);
}

TEST(Telemetry, InterpreterRecordsExecSpansWithoutChangingResults) {
  graph::GraphBuilder b("tiny");
  auto x = b.input({1, 1, 4, 4});
  auto y = b.conv2d(x, 2, 3, 1, 1, /*with_bias=*/true, "c");
  y = b.relu(y);
  const graph::Graph g = b.build(y);
  exec::Tensor input(Shape{1, 1, 4, 4});
  for (int i = 0; i < 16; ++i) input.at(i) = static_cast<float>(i);

  const auto plain = exec::Interpreter(g).run({{"input", input}});

  Telemetry telemetry(/*tracing=*/true);
  exec::Options options;
  options.telemetry = &telemetry;
  exec::RunStats stats;
  const auto traced =
      exec::Interpreter(g, options).run({{"input", input}}, &stats);

  ASSERT_EQ(plain.size(), traced.size());
  EXPECT_DOUBLE_EQ(exec::Tensor::max_abs_diff(plain[0], traced[0]), 0.0);
  EXPECT_GT(telemetry.trace()->num_events(), 0u);
  const Gauge* peak =
      telemetry.metrics().find_gauge("exec.peak_resident_bytes");
  ASSERT_NE(peak, nullptr);
  EXPECT_DOUBLE_EQ(peak->value(),
                   static_cast<double>(stats.peak_resident_bytes));
  EXPECT_TRUE(JsonChecker(telemetry.trace()->to_chrome_json()).valid());
}

TEST(Telemetry, FleetRunPopulatesTheSharedTaxonomy) {
  Telemetry telemetry(/*tracing=*/false);  // metrics-only mode
  serve::FleetConfig config = tiny_fleet(5);
  config.telemetry = &telemetry;
  const auto result = serve::run_fleet(config, bundle());
  EXPECT_EQ(telemetry.trace(), nullptr);

  const auto& reg = telemetry.metrics();
  const Counter* requests = reg.find_counter("fleet.t0.alexnet.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(requests->value()),
            result.summarize(0).requests());
  // The client-side tally and the serve-side mirror use the same taxonomy.
  EXPECT_NE(reg.find_counter("core.outcome.admitted"), nullptr);
  EXPECT_NE(reg.find_counter("serve.admitted"), nullptr);
  EXPECT_TRUE(JsonChecker(reg.to_json()).valid());
}

}  // namespace
}  // namespace lp::obs
