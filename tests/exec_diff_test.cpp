// Differential tests: the optimized execution engine must be bit-identical
// to the reference interpreter — max_abs_diff == 0.0, not "close" — on
// every evaluation model, whole-graph and across partition cuts. This is
// the determinism contract of exec/kernels.h, checked end to end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/interpreter.h"
#include "graph/graph.h"
#include "models/zoo.h"
#include "partition/partitioner.h"

namespace lp::exec {
namespace {

/// Whole-graph run in `mode` with deterministic weights and input.
std::vector<Tensor> run_whole(const graph::Graph& g, ExecMode mode,
                              int threads) {
  const auto input = random_tensor(g.input_desc().shape, 2026);
  Interpreter interp(g, {mode, threads});
  return interp.run({{g.node(g.input_id()).name, input}});
}

void expect_bit_identical(const graph::Graph& g) {
  const auto ref = run_whole(g, ExecMode::kReference, 1);
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto opt = run_whole(g, ExecMode::kOptimized, threads);
    ASSERT_EQ(opt.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(Tensor::max_abs_diff(opt[i], ref[i]), 0.0);
  }
}

TEST(ExecDiff, AlexNetBitIdentical) {
  expect_bit_identical(models::make_model("alexnet"));
}

TEST(ExecDiff, Vgg16BitIdentical) {
  expect_bit_identical(models::make_model("vgg16"));
}

TEST(ExecDiff, ResNet18BitIdentical) {
  expect_bit_identical(models::make_model("resnet18"));
}

TEST(ExecDiff, ResNet50BitIdentical) {
  expect_bit_identical(models::make_model("resnet50"));
}

TEST(ExecDiff, SqueezeNetBitIdentical) {
  expect_bit_identical(models::make_model("squeezenet"));
}

TEST(ExecDiff, XceptionBitIdentical) {
  expect_bit_identical(models::make_model("xception"));
}

TEST(ExecDiff, AlexNetEveryCutBitIdentical) {
  // Optimized device half + optimized server half must reproduce the
  // *reference* whole-graph output exactly, at every backbone cut: fusion
  // never reaches across a partition boundary, and im2col padding
  // contributes exact zeros, so the halves stay on the reference's
  // accumulation order too.
  const auto g = models::make_model("alexnet");
  const auto input = random_tensor(g.input_desc().shape, 2026);
  const auto whole =
      Interpreter(g, {ExecMode::kReference, 1})
          .run({{g.node(g.input_id()).name, input}});
  ASSERT_EQ(whole.size(), 1u);

  const Options opt{ExecMode::kOptimized, 2};
  for (std::size_t p = 0; p <= g.n(); ++p) {
    SCOPED_TRACE("p=" + std::to_string(p));
    const auto plan = partition::partition_at(g, p);

    std::vector<Tensor> out;
    if (!plan.server_part.has_value()) {
      out = Interpreter(*plan.device_part, opt)
                .run({{g.node(g.input_id()).name, input}});
    } else {
      TensorMap boundary;
      if (plan.device_part.has_value()) {
        Interpreter device(*plan.device_part, opt);
        auto produced =
            device.run({{g.node(g.input_id()).name, input}});
        const auto names = device.output_names();
        ASSERT_EQ(produced.size(), names.size());
        for (std::size_t i = 0; i < names.size(); ++i)
          boundary.emplace(names[i], std::move(produced[i]));
      } else {
        boundary.emplace(g.node(g.input_id()).name, input);
      }
      out = Interpreter(*plan.server_part, opt).run(boundary);
    }

    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(Tensor::max_abs_diff(out[0], whole[0]), 0.0);
  }
}

}  // namespace
}  // namespace lp::exec
