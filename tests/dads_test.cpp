#include "common/check.h"
#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "core/dads.h"
#include "models/zoo.h"

namespace lp::core {
namespace {

const PredictorBundle& bundle() {
  static const PredictorBundle b = train_default_predictors(1234);
  return b;
}

TEST(Dads, NeverWorseThanAlgorithm1) {
  // The min cut searches a superset of Algorithm 1's cut space.
  for (const char* name : {"alexnet", "squeezenet", "resnet18", "vgg16"}) {
    SCOPED_TRACE(name);
    const auto g = models::make_model(name);
    const GraphCostProfile profile(g, bundle());
    for (double bw : {1.0, 8.0, 64.0}) {
      for (double k : {1.0, 8.0}) {
        const auto linear = decide(profile, k, mbps(bw));
        const auto cut = dads_min_cut(profile, k, mbps(bw));
        EXPECT_LE(cut.latency_sec, linear.predicted_latency + 1e-6)
            << "bw=" << bw << " k=" << k;
      }
    }
  }
}

TEST(Dads, MatchesAlgorithm1OnTheEvaluationModels) {
  // The paper's Section III-D claim: block-interior cuts never win on
  // these architectures, so the O(n) topological search loses nothing.
  for (const auto& name : models::evaluation_names()) {
    SCOPED_TRACE(name);
    const auto g = models::make_model(name);
    const GraphCostProfile profile(g, bundle());
    for (double bw : {2.0, 8.0, 32.0}) {
      const auto linear = decide(profile, 1.0, mbps(bw));
      const auto cut = dads_min_cut(profile, 1.0, mbps(bw));
      EXPECT_NEAR(cut.latency_sec, linear.predicted_latency,
                  linear.predicted_latency * 0.01 + 1e-9)
          << "bw=" << bw;
    }
  }
}

TEST(Dads, PlacementConsistentWithObjective) {
  const auto g = models::alexnet();
  const GraphCostProfile profile(g, bundle());
  const auto cut = dads_min_cut(profile, 1.0, mbps(8));
  // Recompute the objective from the placement and compare.
  double value = 0.0;
  for (std::size_t i = 1; i <= profile.n(); ++i)
    value += cut.on_server[i] ? profile.g_base(i) : profile.f(i);
  const auto& order = g.backbone();
  std::vector<std::int64_t> pos(g.node_count(), -1);
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<std::int64_t>(i);
  for (std::size_t i = 0; i <= profile.n(); ++i) {
    if (cut.on_server[i]) continue;
    bool crosses = false;
    for (graph::NodeId c :
         g.consumers()[static_cast<std::size_t>(order[i])]) {
      if (cut.on_server[static_cast<std::size_t>(
              pos[static_cast<std::size_t>(c)])])
        crosses = true;
    }
    if (crosses)
      value += static_cast<double>(g.node(order[i]).output.bytes()) * 8.0 /
               mbps(8);
  }
  EXPECT_NEAR(value, cut.latency_sec, value * 1e-6 + 1e-9);
}

TEST(Dads, MonotonePlacementNoBackflow) {
  const auto g = models::resnet50();
  const GraphCostProfile profile(g, bundle());
  const auto cut = dads_min_cut(profile, 1.0, mbps(8));
  const auto& order = g.backbone();
  std::vector<std::int64_t> pos(g.node_count(), -1);
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<std::int64_t>(i);
  for (std::size_t i = 0; i <= profile.n(); ++i) {
    if (!cut.on_server[i]) continue;
    // Every consumer of a server node must also be on the server.
    for (graph::NodeId c :
         g.consumers()[static_cast<std::size_t>(order[i])]) {
      EXPECT_TRUE(cut.on_server[static_cast<std::size_t>(
          pos[static_cast<std::size_t>(c)])]);
    }
  }
  // L0 is pinned to the device.
  EXPECT_FALSE(cut.on_server[0]);
}

TEST(Dads, HugeKDrivesEverythingLocal) {
  const auto g = models::squeezenet();
  const GraphCostProfile profile(g, bundle());
  const auto cut = dads_min_cut(profile, 1e9, mbps(64));
  EXPECT_EQ(cut.device_nodes, profile.n());
  EXPECT_EQ(cut.server_nodes, 0u);
  // Objective equals the device-side sum.
  EXPECT_NEAR(cut.latency_sec, profile.prefix_f(profile.n()),
              profile.prefix_f(profile.n()) * 1e-6);
}

TEST(Dads, ExtremesMatchFullAndLocal) {
  const auto g = models::alexnet();
  const GraphCostProfile profile(g, bundle());
  // Huge bandwidth, idle server: everything (but L0) on the server.
  const auto offload = dads_min_cut(profile, 1.0, mbps(1e6));
  EXPECT_EQ(offload.server_nodes, profile.n());
  // Tiny bandwidth: everything local.
  const auto local = dads_min_cut(profile, 1.0, 1.0);
  EXPECT_EQ(local.device_nodes, profile.n());
  EXPECT_EQ(local.cut_tensors, 0u);
}

}  // namespace
}  // namespace lp::core
