#include "common/check.h"
#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.h"
#include "core/system.h"
#include "models/zoo.h"

namespace lp::core {
namespace {

const PredictorBundle& bundle() {
  static const PredictorBundle b = train_default_predictors(1234);
  return b;
}

TEST(Experiment, ProducesRecordsAndIsDeterministic) {
  const auto model = models::alexnet();
  ExperimentConfig config;
  config.duration = seconds(10);
  config.seed = 3;
  const auto a = run_experiment(model, bundle(), config);
  const auto b = run_experiment(model, bundle(), config);
  ASSERT_FALSE(a.records.empty());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].total_sec, b.records[i].total_sec);
    EXPECT_EQ(a.records[i].p, b.records[i].p);
  }
}

TEST(Experiment, SeedChangesJitterNotDecision) {
  const auto model = models::alexnet();
  ExperimentConfig config;
  config.duration = seconds(10);
  config.seed = 3;
  auto a = run_experiment(model, bundle(), config);
  config.seed = 4;
  auto b = run_experiment(model, bundle(), config);
  EXPECT_EQ(a.modal_p(), b.modal_p());
}

TEST(Experiment, LoadPartBeatsOrMatchesStaticPoliciesIdle) {
  const auto model = models::alexnet();
  ExperimentConfig config;
  config.duration = seconds(15);
  auto make = [&](Policy policy) {
    ExperimentConfig c = config;
    c.policy = policy;
    return run_experiment(model, bundle(), c).mean_latency_sec();
  };
  const double lp = make(Policy::kLoadPart);
  const double local = make(Policy::kLocalOnly);
  const double full = make(Policy::kFullOffload);
  // Figure 1: partial offloading beats both extremes for AlexNet at 8 Mbps.
  EXPECT_LT(lp, local);
  EXPECT_LT(lp, full);
  // And by roughly the paper's margins (4x vs full, ~30% vs local).
  EXPECT_GT(full / lp, 2.0);
  EXPECT_GT(local / lp, 1.15);
}

TEST(Experiment, VGG16AlwaysFullOffloadEvenAt1Mbps) {
  // Section V-B: the device is so slow for VGG16 that every bandwidth in
  // the sweep keeps the whole network on the server.
  const auto model = models::vgg16();
  for (double bw : {1.0, 8.0, 64.0}) {
    ExperimentConfig config;
    config.upload = net::BandwidthTrace::constant(mbps(bw));
    config.duration = seconds(40);
    config.warmup = seconds(8);
    const auto result = run_experiment(model, bundle(), config);
    EXPECT_EQ(result.modal_p(), 0u) << bw << " Mbps";
  }
}

TEST(Experiment, ResNet18LocalAt8Mbps) {
  // Section V-B/V-C: ResNet18 stays local at 8 Mbps.
  const auto model = models::resnet18();
  ExperimentConfig config;
  config.duration = seconds(30);
  config.warmup = seconds(5);
  const auto result = run_experiment(model, bundle(), config);
  EXPECT_EQ(result.modal_p(), model.n());
}

TEST(Experiment, HeavyLoadInflatesFullOffloadLatency) {
  // Figure 2's effect, end to end: a 100%(h) server slows full offloading
  // well beyond idle, and fluctuation (max/mean) grows.
  const auto model = models::alexnet();
  ExperimentConfig config;
  config.policy = Policy::kFullOffload;
  config.duration = seconds(25);
  config.warmup = seconds(5);
  const auto idle = run_experiment(model, bundle(), config);
  config.load_schedule = {{0, hw::LoadLevel::k100h}};
  const auto heavy = run_experiment(model, bundle(), config);
  EXPECT_GT(heavy.mean_latency_sec(), idle.mean_latency_sec() * 1.05);
  // Fluctuation: the server-side (queueing) component spreads out far more
  // than jitter alone explains.
  auto server_spread = [](const ExperimentResult& r) {
    double lo = 1e18, hi = 0.0;
    for (const auto* rec : r.steady()) {
      lo = std::min(lo, rec->server_sec);
      hi = std::max(hi, rec->server_sec);
    }
    return hi - lo;
  };
  EXPECT_GT(server_spread(heavy), 4.0 * server_spread(idle));
}

TEST(Experiment, ModerateLoadBarelyHurts) {
  // Below 50% utilization the mean barely moves (Figure 2).
  const auto model = models::alexnet();
  ExperimentConfig config;
  config.policy = Policy::kFullOffload;
  config.duration = seconds(25);
  config.warmup = seconds(5);
  const auto idle = run_experiment(model, bundle(), config);
  config.load_schedule = {{0, hw::LoadLevel::k30}};
  const auto light = run_experiment(model, bundle(), config);
  EXPECT_LT(light.mean_latency_sec(), idle.mean_latency_sec() * 1.15);
}

TEST(Experiment, BandwidthSweepMovesPartitionPoint) {
  // Figure 6 for AlexNet: high bandwidth -> early p; starvation -> local.
  const auto model = models::alexnet();
  auto modal_at = [&](double bw) {
    ExperimentConfig config;
    config.upload = net::BandwidthTrace::constant(mbps(bw));
    config.duration = seconds(30);
    config.warmup = seconds(8);
    return run_experiment(model, bundle(), config).modal_p();
  };
  const auto p64 = modal_at(64.0);
  const auto p8 = modal_at(8.0);
  const auto p1 = modal_at(1.0);
  EXPECT_LE(p64, p8);
  EXPECT_LE(p8, p1);
  EXPECT_EQ(p1, model.n());   // 1 Mbps: local (p=27 in the paper)
  EXPECT_LT(p64, model.n());  // 64 Mbps: offloads
}

TEST(Experiment, FusedServerKernelsLowerFullOffloadLatency) {
  const auto model = models::resnet50();
  ExperimentConfig config;
  config.policy = Policy::kFullOffload;
  config.duration = seconds(15);
  config.warmup = seconds(3);
  const auto plain = run_experiment(model, bundle(), config);
  config.runtime.fused_server_kernels = true;
  const auto fused = run_experiment(model, bundle(), config);
  EXPECT_LT(fused.mean_latency_sec(), plain.mean_latency_sec());
}

TEST(ExperimentResult, SteadyFallsBackWhenWarmupSwallowsEverything) {
  const auto model = models::alexnet();
  ExperimentConfig config;
  config.duration = seconds(5);
  config.warmup = seconds(60);  // longer than the run
  const auto result = run_experiment(model, bundle(), config);
  EXPECT_FALSE(result.steady().empty());
  EXPECT_GT(result.mean_latency_sec(), 0.0);
}

TEST(Experiment, LoadScheduleSwitchesDuringRun) {
  // The schedule driver applies phases at their timestamps; the recorded
  // latency series shows the idle -> loaded step.
  const auto model = models::alexnet();
  ExperimentConfig config;
  config.policy = Policy::kFullOffload;
  config.load_schedule = {{0, hw::LoadLevel::k0},
                          {seconds(12), hw::LoadLevel::k100h}};
  config.duration = seconds(24);
  config.warmup = 0;
  const auto result = run_experiment(model, bundle(), config);
  double early = 0.0, late = 0.0;
  int early_n = 0, late_n = 0;
  for (const auto& rec : result.records) {
    if (rec.start < seconds(10)) {
      early += rec.server_sec;
      ++early_n;
    } else if (rec.start > seconds(15)) {
      late += rec.server_sec;
      ++late_n;
    }
  }
  ASSERT_GT(early_n, 0);
  ASSERT_GT(late_n, 0);
  EXPECT_GT(late / late_n, 2.0 * early / early_n);
}

TEST(ExperimentResult, SummaryHelpers) {
  const auto model = models::alexnet();
  ExperimentConfig config;
  config.duration = seconds(10);
  const auto result = run_experiment(model, bundle(), config);
  EXPECT_GT(result.mean_latency_sec(), 0.0);
  EXPECT_GE(result.max_latency_sec(), result.mean_latency_sec());
  EXPECT_GE(result.percentile_latency_sec(90),
            result.percentile_latency_sec(10));
}

TEST(Baselines, BreakdownRowsConsistent) {
  const auto model = models::alexnet();
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  const auto rows = latency_breakdown(model, cpu, gpu, mbps(8), mbps(8));
  ASSERT_EQ(rows.size(), model.n() + 1);
  // p = n row is pure device time == local latency.
  EXPECT_NEAR(rows.back().total_sec, local_latency_sec(model, cpu), 1e-9);
  EXPECT_EQ(rows.back().upload_sec, 0.0);
  // p = 0 row equals the full-offload closed form.
  EXPECT_NEAR(rows.front().total_sec,
              full_offload_latency_sec(model, gpu, mbps(8), mbps(8)), 1e-9);
  // Device time is non-decreasing in p.
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i].device_sec, rows[i - 1].device_sec);
}

TEST(Baselines, Figure1ShapeForAlexNet) {
  // The Fig. 1 narrative: best cut is right after MaxPool-2 (p=8), ~4x
  // better than full offloading and tangibly better than local.
  const auto model = models::alexnet();
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  const auto rows = latency_breakdown(model, cpu, gpu, mbps(8), mbps(8));
  std::size_t best = 0;
  for (std::size_t p = 0; p < rows.size(); ++p)
    if (rows[p].total_sec < rows[best].total_sec) best = p;
  EXPECT_TRUE(best == 4 || best == 8) << "best=" << best;
  // The paper reports "up to 4x" vs full offloading; with our calibrated
  // device the transmission floor caps it around 2-2.5x (EXPERIMENTS.md).
  EXPECT_GT(rows.front().total_sec / rows[best].total_sec, 2.0);
  EXPECT_GT(rows.back().total_sec / rows[best].total_sec, 1.2);
}

}  // namespace
}  // namespace lp::core
