#include "predict/load_predictor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "common/check.h"
#include "common/rng.h"

namespace lp::predict {
namespace {

PredictorParams params_of(const std::string& kind) {
  PredictorParams params;
  params.kind = kind;
  return params;
}

TEST(PredictorRegistry, ListsTheFiveBuiltinsSorted) {
  const std::vector<std::string> expected = {"decay-diff", "ewma",
                                             "holt", "last-value", "llsp"};
  EXPECT_EQ(registered_predictors(), expected);
}

TEST(PredictorRegistry, UnknownKindThrows) {
  EXPECT_THROW(make_predictor(params_of("oracle")), ContractError);
}

TEST(PredictorRegistry, DefaultKindIsLastValue) {
  const auto predictor = make_predictor(PredictorParams{});
  EXPECT_STREQ(predictor->name(), "last-value");
}

TEST(LastValue, ForecastsItsLastObservationAtEveryHorizon) {
  const auto p = make_predictor(params_of("last-value"));
  EXPECT_EQ(p->forecast(seconds(1)), 0.0);  // nothing observed yet
  p->observe(milliseconds(10), 3.25);
  p->observe(milliseconds(20), 1.75);
  for (DurationNs h : {DurationNs{0}, milliseconds(50), seconds(30)})
    EXPECT_EQ(p->forecast(h), 1.75);  // exact, not approximate
}

TEST(LastValue, PacksNoVectorsSoMigrationAddsZeroBytes) {
  const auto p = make_predictor(params_of("last-value"));
  p->observe(milliseconds(1), 2.0);
  p->observe(milliseconds(2), 4.0);
  EXPECT_EQ(state_wire_bytes(p->export_state()), 0);
}

TEST(Ewma, SmoothsBetweenLevelAndObservation) {
  const auto p = make_predictor(params_of("ewma"));
  p->observe(seconds(1), 1.0);
  p->observe(seconds(2), 3.0);
  // alpha 0.3: level = 0.3 * 3 + 0.7 * 1 = 1.6, flat at every horizon.
  EXPECT_DOUBLE_EQ(p->forecast(0), 1.6);
  EXPECT_DOUBLE_EQ(p->forecast(seconds(10)), 1.6);
}

TEST(DecayDiff, ExtrapolatesTheSmoothedDifference) {
  const auto p = make_predictor(params_of("decay-diff"));
  TimeNs now = 0;
  double v = 1.0;
  for (int i = 0; i < 20; ++i) {
    now += seconds(1);
    v += 0.5;
    p->observe(now, v);
  }
  // A steady ramp: the forecast moves in the ramp's direction, one
  // smoothed step (~0.5) per observation gap (1s).
  EXPECT_GT(p->forecast(seconds(1)), p->last_value());
  EXPECT_NEAR(p->forecast(seconds(1)), p->last_value() + 0.5, 0.05);
}

TEST(Holt, TracksALinearTrend) {
  const auto p = make_predictor(params_of("holt"));
  TimeNs now = 0;
  double v = 2.0;
  for (int i = 0; i < 60; ++i) {
    now += seconds(1);
    v += 1.0;
    p->observe(now, v);
  }
  // Converged level ~= the last value, trend ~= +1 per 1s step.
  EXPECT_NEAR(p->forecast(seconds(3)), v + 3.0, 0.2);
}

TEST(Holt, TrendExtrapolationIsCapped) {
  PredictorParams params = params_of("holt");
  params.max_trend_steps = 4.0;
  const auto p = make_predictor(params);
  TimeNs now = 0;
  double v = 2.0;
  for (int i = 0; i < 60; ++i) {
    now += seconds(1);
    v += 1.0;
    p->observe(now, v);
  }
  // A 100s horizon is 100 gaps, but extrapolation stops at 4 steps.
  EXPECT_NEAR(p->forecast(seconds(100)), v + 4.0, 0.2);
}

TEST(Llsp, IsExactOnALinearSeries) {
  const auto p = make_predictor(params_of("llsp"));
  TimeNs now = 0;
  for (int i = 0; i < 12; ++i) {
    now += milliseconds(100);
    p->observe(now, 1.0 + 0.25 * static_cast<double>(i));
  }
  // Least squares through exactly-linear points reproduces the line:
  // slope 0.25 per 100ms = 2.5/s, read 1s past the newest sample.
  const double expected = 1.0 + 0.25 * 11.0 + 2.5;
  EXPECT_NEAR(p->forecast(seconds(1)), expected, 1e-9);
}

TEST(Llsp, FallsBackToLastValueWithoutTimeSpread) {
  const auto p = make_predictor(params_of("llsp"));
  p->observe(seconds(1), 5.0);
  EXPECT_EQ(p->forecast(seconds(9)), 5.0);  // one point: no line to fit
}

TEST(Forecast, ClampsRunawayExtrapolation) {
  PredictorParams params = params_of("llsp");
  params.max_abs_forecast = 10.0;
  const auto p = make_predictor(params);
  p->observe(milliseconds(1), 1.0);
  p->observe(milliseconds(2), 100.0);  // slope 99,000/s
  EXPECT_EQ(p->forecast(seconds(60)), 10.0);
}

TEST(ErrorStats, ScoreTheStandingForecastBeforeAbsorbing) {
  const auto p = make_predictor(params_of("last-value"));
  EXPECT_TRUE(std::isnan(p->observe(seconds(1), 1.0)));  // nothing standing
  const double err = p->observe(seconds(2), 3.0);
  // The standing last-value forecast was 1.0; the series read 3.0.
  EXPECT_DOUBLE_EQ(err, -2.0);
  EXPECT_EQ(p->scored(), 1u);
  EXPECT_DOUBLE_EQ(p->mae(), 2.0);
  EXPECT_DOUBLE_EQ(p->bias(), -2.0);
}

TEST(Confidence, StaysInUnitIntervalAndRampsWithSamples) {
  const auto p = make_predictor(params_of("ewma"));
  EXPECT_EQ(p->confidence(), 0.0);
  Rng rng(7);
  TimeNs now = 0;
  double previous = 0.0;
  for (int i = 0; i < 32; ++i) {
    now += milliseconds(50);
    p->observe(now, rng.uniform(1.0, 2.0));
    const double c = p->confidence();
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    if (i == 3) previous = c;
  }
  // More samples of a bounded series never collapse the trust to zero.
  EXPECT_GT(p->confidence(), 0.0);
  EXPECT_GT(previous, 0.0);
}

TEST(ObserveContract, RejectsNonFiniteAndTimeTravel) {
  const auto p = make_predictor(params_of("holt"));
  EXPECT_THROW(p->observe(seconds(1), std::nan("")), ContractError);
  p->observe(seconds(2), 1.0);
  EXPECT_THROW(p->observe(seconds(1), 2.0), ContractError);
}

TEST(StateRoundTrip, IsBitIdenticalAndForecastsTheSameBits) {
  for (const std::string& kind : registered_predictors()) {
    const auto original = make_predictor(params_of(kind));
    Rng rng(0xBEEF);
    TimeNs now = 0;
    for (int i = 0; i < 40; ++i) {
      now += milliseconds(rng.uniform_int(1, 400));
      original->observe(now, rng.uniform(1.0, 16.0));
    }
    const PredictorState state = original->export_state();
    const auto restored = make_predictor(params_of(kind));
    restored->import_state(state);
    check::audit_equal(state, restored->export_state());
    for (int i = 0; i < 10; ++i) {
      now += milliseconds(rng.uniform_int(1, 400));
      const double v = rng.uniform(1.0, 16.0);
      EXPECT_EQ(original->observe(now, v), restored->observe(now, v))
          << kind;
      EXPECT_EQ(original->forecast(seconds(2)), restored->forecast(seconds(2)))
          << kind;
    }
  }
}

TEST(StateRoundTrip, KindMismatchThrows) {
  const auto holt = make_predictor(params_of("holt"));
  holt->observe(seconds(1), 2.0);
  const auto ewma = make_predictor(params_of("ewma"));
  EXPECT_THROW(ewma->import_state(holt->export_state()), ContractError);
}

TEST(Reset, ReturnsToTheJustConstructedState) {
  for (const std::string& kind : registered_predictors()) {
    const auto p = make_predictor(params_of(kind));
    const PredictorState fresh = p->export_state();
    p->observe(seconds(1), 4.0);
    p->observe(seconds(2), 8.0);
    p->reset();
    check::audit_equal(fresh, p->export_state());
    EXPECT_EQ(p->forecast(seconds(1)), 0.0) << kind;
  }
}

TEST(CustomRegistration, PluginResolvesByName) {
  class Pessimist final : public LoadPredictor {
   public:
    using LoadPredictor::LoadPredictor;
    const char* name() const override { return "pessimist"; }

   private:
    void update(TimeNs, double) override {}
    double project(double) const override { return last_value() * 2.0; }
    void reset_model() override {}
    void pack(PredictorState*) const override {}
    void unpack(const PredictorState&) override {}
  };
  register_predictor("pessimist", [](const PredictorParams& params) {
    return std::unique_ptr<LoadPredictor>(new Pessimist(params));
  });
  const auto p = make_predictor(params_of("pessimist"));
  p->observe(seconds(1), 3.0);
  EXPECT_DOUBLE_EQ(p->forecast(0), 6.0);
  const auto names = registered_predictors();
  EXPECT_NE(std::find(names.begin(), names.end(), "pessimist"), names.end());
}

}  // namespace
}  // namespace lp::predict
