#include "common/check.h"
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/predictor.h"
#include "graph/fusion.h"
#include "hw/gpu_model.h"
#include "models/zoo.h"
#include "support/random_graph.h"

namespace lp::graph {
namespace {

TEST(Fusion, AnchorAndEpilogueClassification) {
  EXPECT_TRUE(is_fusion_anchor(OpType::kConv));
  EXPECT_TRUE(is_fusion_anchor(OpType::kMatMul));
  EXPECT_TRUE(is_fusion_anchor(OpType::kAdd));
  EXPECT_FALSE(is_fusion_anchor(OpType::kRelu));
  EXPECT_FALSE(is_fusion_anchor(OpType::kMaxPool));
  EXPECT_TRUE(is_fusable_epilogue(OpType::kBiasAdd));
  EXPECT_TRUE(is_fusable_epilogue(OpType::kBatchNorm));
  EXPECT_TRUE(is_fusable_epilogue(OpType::kRelu));
  EXPECT_FALSE(is_fusable_epilogue(OpType::kConv));
  EXPECT_FALSE(is_fusable_epilogue(OpType::kConcat));
}

TEST(Fusion, AlexNetGroupsAreTheFrameworkFusions) {
  // AlexNet: every conv/fc fuses its BiasAdd (+ReLU); pools and flatten
  // stay alone. 5x(Conv+Bias+ReLU) + 3 pools + flatten + 2x(FC+Bias+ReLU)
  // + 1x(FC+Bias) = 5 + 3 + 1 + 2 + 1 = 12 groups for 27 nodes.
  const auto g = models::alexnet();
  const auto groups = fuse_groups(g);
  EXPECT_EQ(groups.size(), 12u);
  // First group is conv1 + biasadd + relu.
  EXPECT_EQ(groups.front().size(), 3u);
  EXPECT_EQ(g.node(groups.front().anchor()).name, "conv1");
  // Groups partition the backbone exactly (every position once).
  std::unordered_set<NodeId> seen;
  std::size_t total = 0;
  for (const auto& group : groups) {
    for (NodeId id : group.nodes) {
      EXPECT_TRUE(seen.insert(id).second);
      ++total;
    }
  }
  EXPECT_EQ(total, g.n());
}

TEST(Fusion, ResNetConvBnReluFuse) {
  const auto g = models::resnet18();
  const auto groups = fuse_groups(g);
  // Far fewer kernels than nodes: conv+bn(+relu) stacks collapse.
  EXPECT_LT(groups.size(), g.n() * 6 / 10);
  // The stem conv+bn+relu is one group.
  EXPECT_EQ(g.node(groups.front().anchor()).name, "stem.conv");
  EXPECT_EQ(groups.front().size(), 3u);
}

TEST(Fusion, TensorsWithMultipleConsumersDoNotFuseAway) {
  // In a residual block the conv input feeds both the body and the skip;
  // a tensor consumed twice must stay materialized (group boundary).
  GraphBuilder b("fork");
  auto x = b.input({1, 4, 8, 8});
  auto c = b.conv2d(x, 4, 3, 1, 1, false, "c");   // consumed by r and add
  auto r = b.relu(c, "r");
  auto sum = b.add(r, c, "sum");
  const auto g = b.build(b.relu(sum, "out"));
  const auto groups = fuse_groups(g);
  // conv cannot absorb relu (conv output also feeds add): groups are
  // {conv}, {relu}, {add, out-relu}.
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].size(), 1u);
  EXPECT_EQ(groups[1].size(), 1u);
  EXPECT_EQ(groups[2].size(), 2u);
}

TEST(Fusion, SegmentFusionRespectsCutBoundaries) {
  // Cutting inside a fusable stack splits it: each side fuses only its own
  // nodes.
  const auto g = models::alexnet();
  // p = 1 cuts between conv1 and its biasadd.
  const auto prefix = fuse_segment(g, 1, 1);
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix.front().size(), 1u);
  const auto suffix = fuse_segment(g, 2, g.n());
  // biasadd+relu at the suffix head cannot fuse backwards into conv1 and
  // biasadd is no anchor: they form singleton groups.
  EXPECT_EQ(suffix.front().size(), 1u);
}

TEST(Fusion, RandomGraphsPartitionExactly) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto g = test::random_graph(seed);
    const auto groups = fuse_groups(g);
    std::size_t total = 0;
    for (const auto& group : groups) {
      ASSERT_FALSE(group.nodes.empty());
      total += group.size();
      // Only the anchor may be a non-epilogue op.
      for (std::size_t i = 1; i < group.nodes.size(); ++i)
        EXPECT_TRUE(is_fusable_epilogue(g.node(group.nodes[i]).op));
    }
    EXPECT_EQ(total, g.n()) << "seed=" << seed;
  }
}

TEST(Fusion, FusedExecutionIsFasterButNotAbsurdly) {
  const hw::GpuModel gpu;
  for (const char* name : {"alexnet", "resnet50", "vgg16", "xception"}) {
    SCOPED_TRACE(name);
    const auto g = models::make_model(name);
    const auto unfused =
        gpu.segment_time(g, 0, g.backbone().size() - 1);
    const auto fused =
        gpu.fused_segment_time(g, 0, g.backbone().size() - 1);
    EXPECT_LT(fused, unfused);
    EXPECT_GT(fused, unfused / 5);  // savings bounded by dispatch share
  }
}

TEST(Fusion, FusedPredictionNeverExceedsNaiveSum) {
  // Structural property: anchor-only prediction sums a subset of the
  // layer-by-layer terms (all coefficients are non-negative).
  const auto bundle = core::train_default_predictors(1234);
  for (const auto& name : models::zoo_names()) {
    SCOPED_TRACE(name);
    const auto g = models::make_model(name);
    double naive = 0.0;
    for (std::size_t i = 1; i <= g.n(); ++i)
      naive +=
          bundle.edge.predict_seconds(flops::config_of(g, g.backbone()[i]));
    EXPECT_LE(core::fused_edge_prediction(g, bundle.edge, 1, g.n()),
              naive + 1e-12);
  }
}

TEST(Fusion, FusedPredictionCloserWhereEpiloguesDominate) {
  // On a framework that fuses, summing every layer overpredicts the
  // epilogue work. The effect is cleanest on the element-wise-heavy
  // models (VGG16's BiasAdd+ReLU stacks, Xception's BatchNorm chains);
  // elsewhere conv-kernel prediction error dominates either way
  // (bench/ablation_fusion shows the full picture).
  const auto bundle = core::train_default_predictors(1234);
  const hw::GpuModel gpu;
  for (const char* name : {"vgg16", "xception"}) {
    SCOPED_TRACE(name);
    const auto g = models::make_model(name);
    const std::size_t n = g.n();
    const auto groups = graph::fuse_groups(g);
    const double truth =
        to_seconds(gpu.fused_segment_time(g, 0, n)) -
        gpu.params().framework_dispatch_sec *
            static_cast<double>(groups.size());
    double naive = 0.0;
    for (std::size_t i = 1; i <= n; ++i)
      naive +=
          bundle.edge.predict_seconds(flops::config_of(g, g.backbone()[i]));
    const double fused = core::fused_edge_prediction(g, bundle.edge, 1, n);
    EXPECT_LT(std::abs(fused - truth), std::abs(naive - truth));
  }
  // And the pure fusion effect, bias-free: ground-truth kernel sums.
  for (const auto& name : models::zoo_names()) {
    SCOPED_TRACE(name);
    const auto g = models::make_model(name);
    EXPECT_GT(gpu.segment_time(g, 0, g.backbone().size() - 1),
              gpu.fused_segment_time(g, 0, g.backbone().size() - 1));
  }
}

}  // namespace
}  // namespace lp::graph
