#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "ml/gbt.h"
#include "ml/linreg.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/nnls.h"

namespace lp::ml {
namespace {

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const Matrix at = a.transpose();
  EXPECT_EQ(at.rows(), 2u);
  EXPECT_EQ(at.cols(), 3u);
  const Matrix ata = at.multiply(a);
  EXPECT_DOUBLE_EQ(ata.at(0, 0), 35.0);
  EXPECT_DOUBLE_EQ(ata.at(0, 1), 44.0);
  EXPECT_DOUBLE_EQ(ata.at(1, 1), 56.0);
  const auto v = a.multiply(std::vector<double>{1.0, -1.0});
  EXPECT_EQ(v, (std::vector<double>{-1.0, -1.0, -1.0}));
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), ContractError);
}

TEST(CholeskySolve, SolvesSpdSystem) {
  Matrix a = Matrix::from_rows({{4, 1}, {1, 3}});
  const auto x = cholesky_solve(a, {1, 2});
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-9);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-9);
}

TEST(LeastSquares, RecoversExactCoefficients) {
  // y = 2 x0 + 3 x1 over a well-conditioned design.
  Rng rng(4);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double x0 = rng.uniform(0, 10), x1 = rng.uniform(0, 10);
    rows.push_back({x0, x1});
    y.push_back(2 * x0 + 3 * x1);
  }
  const auto x = least_squares(Matrix::from_rows(rows), y);
  EXPECT_NEAR(x[0], 2.0, 1e-6);
  EXPECT_NEAR(x[1], 3.0, 1e-6);
}

TEST(Nnls, MatchesUnconstrainedWhenSolutionPositive) {
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double x0 = rng.uniform(0, 1), x1 = rng.uniform(0, 1);
    rows.push_back({x0, x1});
    y.push_back(1.5 * x0 + 0.5 * x1 + 0.01 * rng.normal());
  }
  const auto r = nnls(Matrix::from_rows(rows), y);
  EXPECT_NEAR(r.x[0], 1.5, 0.05);
  EXPECT_NEAR(r.x[1], 0.5, 0.05);
}

TEST(Nnls, ClampsNegativeComponentToZero) {
  // y = 2 x0 - 1 x1: the unconstrained optimum has a negative coefficient,
  // NNLS must return x1 = 0.
  Rng rng(8);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.uniform(0, 1), x1 = rng.uniform(0, 1);
    rows.push_back({x0, x1});
    y.push_back(2.0 * x0 - 1.0 * x1);
  }
  const auto r = nnls(Matrix::from_rows(rows), y);
  EXPECT_EQ(r.x[1], 0.0);
  EXPECT_GT(r.x[0], 0.5);
}

TEST(Nnls, AllNonNegativeOnRandomProblems) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 40, n = 5;
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    for (int i = 0; i < m; ++i) {
      std::vector<double> row;
      for (int j = 0; j < n; ++j) row.push_back(rng.uniform(-1, 1));
      rows.push_back(std::move(row));
      y.push_back(rng.uniform(-2, 2));
    }
    const auto r = nnls(Matrix::from_rows(rows), y);
    for (double c : r.x) EXPECT_GE(c, 0.0);
    EXPECT_GE(r.residual, 0.0);
  }
}

TEST(Nnls, SatisfiesKktConditionsOnRandomProblems) {
  // Optimality of min ||Ax-b|| s.t. x >= 0: with gradient w = A^T(b - Ax),
  // active coordinates (x_i > 0) have w_i ~= 0 and inactive ones have
  // w_i <= 0 (no descent direction into the feasible region).
  Rng rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 60, n = 6;
    std::vector<std::vector<double>> rows;
    std::vector<double> b;
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<double> row;
      for (std::size_t j = 0; j < n; ++j) row.push_back(rng.uniform(-1, 1));
      rows.push_back(std::move(row));
      b.push_back(rng.uniform(-2, 2));
    }
    const Matrix a = Matrix::from_rows(rows);
    const auto r = nnls(a, b);

    // Gradient of the residual at the solution.
    std::vector<double> resid = b;
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) resid[i] -= a.at(i, j) * r.x[j];
    for (std::size_t j = 0; j < n; ++j) {
      double w = 0.0;
      for (std::size_t i = 0; i < m; ++i) w += a.at(i, j) * resid[i];
      if (r.x[j] > 1e-10) {
        EXPECT_NEAR(w, 0.0, 1e-6) << "active coordinate " << j;
      } else {
        EXPECT_LE(w, 1e-6) << "inactive coordinate " << j;
      }
    }
  }
}

TEST(Nnls, HandlesWildlyScaledColumns) {
  // Feature magnitudes like FLOPs (~1e9) next to small counts (~1e1).
  Rng rng(31);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double f = rng.uniform(1e6, 1e9), c = rng.uniform(1, 100);
    rows.push_back({f, c});
    y.push_back(2e-9 * f + 1e-3 * c);
  }
  const auto r = nnls(Matrix::from_rows(rows), y);
  EXPECT_NEAR(r.x[0], 2e-9, 2e-10);
  EXPECT_NEAR(r.x[1], 1e-3, 1e-4);
}

TEST(LinearModel, NoInterceptZeroInZeroOut) {
  const LinearModel m({1.0, 2.0});
  EXPECT_DOUBLE_EQ(m.predict({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.predict({1.0, 1.0}), 3.0);
}

TEST(LinearModel, RejectsNegativeCoefficients) {
  EXPECT_THROW(LinearModel({1.0, -0.5}), ContractError);
}

TEST(LinearModel, FitPredictRoundTrip) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(0, 5), b = rng.uniform(0, 5);
    x.push_back({a, b});
    y.push_back(0.7 * a + 0.1 * b);
  }
  const auto m = LinearModel::fit(x, y);
  EXPECT_NEAR(m.predict({2.0, 2.0}), 1.6, 0.05);
  EXPECT_EQ(m.predict_all(x).size(), x.size());
}

TEST(Metrics, RmseAndMape) {
  const std::vector<double> truth{1.0, 2.0, 4.0};
  const std::vector<double> pred{1.0, 3.0, 3.0};
  EXPECT_NEAR(rmse(truth, pred), std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_NEAR(mape(truth, pred), (0.0 + 0.5 + 0.25) / 3.0, 1e-12);
}

TEST(Metrics, MapeSkipsZeroTruth) {
  EXPECT_NEAR(mape({0.0, 2.0}, {5.0, 3.0}), 0.5, 1e-12);
  EXPECT_THROW(mape({0.0}, {1.0}), ContractError);
}

TEST(Gbt, LearnsNonlinearFunction) {
  Rng rng(17);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 600; ++i) {
    const double a = rng.uniform(0, 1), b = rng.uniform(0, 1);
    x.push_back({a, b});
    y.push_back(a > 0.5 ? 10.0 + b : b);  // step + slope
  }
  GbtParams params;
  params.num_trees = 80;
  const auto model = Gbt::fit(x, y, params);
  EXPECT_NEAR(model.predict({0.9, 0.5}), 10.5, 1.0);
  EXPECT_NEAR(model.predict({0.1, 0.5}), 0.5, 1.0);
}

TEST(Gbt, ImportanceRanksInformativeFeatureFirst) {
  Rng rng(19);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double sig = rng.uniform(0, 1);
    const double noise = rng.uniform(0, 1);
    x.push_back({noise, sig});
    y.push_back(5.0 * sig);
  }
  const auto model = Gbt::fit(x, y);
  const auto& imp = model.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[1], imp[0]);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(Gbt, DeterministicGivenSeed) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(0, 1);
    x.push_back({a});
    y.push_back(a * a);
  }
  const auto m1 = Gbt::fit(x, y);
  const auto m2 = Gbt::fit(x, y);
  EXPECT_DOUBLE_EQ(m1.predict({0.3}), m2.predict({0.3}));
}

}  // namespace
}  // namespace lp::ml
