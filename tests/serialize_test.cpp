#include "common/check.h"
#include <gtest/gtest.h>

#include <cstdio>

#include "exec/interpreter.h"
#include "graph/cut.h"
#include "graph/serialize.h"
#include "models/zoo.h"
#include "partition/partitioner.h"
#include "support/random_graph.h"

namespace lp::graph {
namespace {

void expect_equivalent(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.backbone().size(), b.backbone().size());
  ASSERT_EQ(a.parameters().size(), b.parameters().size());
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.input_id(), b.input_id());
  EXPECT_EQ(a.output_id(), b.output_id());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    const auto& na = a.node(static_cast<NodeId>(i));
    const auto& nb = b.node(static_cast<NodeId>(i));
    EXPECT_EQ(na.kind, nb.kind) << i;
    EXPECT_EQ(na.op, nb.op) << i;
    EXPECT_EQ(na.name, nb.name) << i;
    EXPECT_EQ(na.inputs, nb.inputs) << i;
    EXPECT_EQ(na.output, nb.output) << i;
    EXPECT_EQ(na.boundary, nb.boundary) << i;
  }
  EXPECT_EQ(cut_sizes(a), cut_sizes(b));
}

TEST(Serialize, RoundTripsEveryZooModel) {
  for (const auto& name : models::zoo_names()) {
    SCOPED_TRACE(name);
    const auto g = models::make_model(name);
    const auto restored = deserialize(serialize(g));
    expect_equivalent(g, restored);
  }
}

TEST(Serialize, RoundTripsRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE(seed);
    const auto g = test::random_graph(seed);
    expect_equivalent(g, deserialize(serialize(g)));
  }
}

TEST(Serialize, RoundTripsPartitionSegments) {
  // Segment graphs carry boundary Parameters and MakeTuple/Return nodes —
  // the format must preserve them (this is how the server side would load
  // a shipped partition).
  const auto g = models::squeezenet();
  const auto plan = partition::partition_at(g, g.n() / 2);
  ASSERT_TRUE(plan.server_part.has_value());
  const auto restored = deserialize(serialize(*plan.server_part));
  expect_equivalent(*plan.server_part, restored);
}

TEST(Serialize, RestoredGraphExecutesIdentically) {
  const auto g = test::random_graph(5);
  const auto restored = deserialize(serialize(g));
  const auto input = exec::random_tensor(g.input_desc().shape, 7);
  const auto& input_name = g.node(g.input_id()).name;
  const auto a = exec::Interpreter(g).run({{input_name, input}});
  const auto b = exec::Interpreter(restored).run({{input_name, input}});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(exec::Tensor::max_abs_diff(a[i], b[i]), 0.0);
}

TEST(Serialize, FileRoundTrip) {
  const auto g = models::alexnet();
  const std::string path = ::testing::TempDir() + "/alexnet.lpg";
  save_graph(g, path);
  expect_equivalent(g, load_graph(path));
  std::remove(path.c_str());
}

TEST(Serialize, MalformedInputsThrow) {
  EXPECT_THROW(deserialize(""), ContractError);
  EXPECT_THROW(deserialize("not-a-graph x\n"), ContractError);
  EXPECT_THROW(deserialize("graph g\nbogus record\n"), ContractError);
  // Missing output marker.
  EXPECT_THROW(deserialize("graph g\ncnode Input in f32 2 1 3 0\n"),
               ContractError);
  // Truncated shape.
  EXPECT_THROW(deserialize("graph g\ncnode Input in f32 4 1 3\noutput 0\n"),
               ContractError);
  // Unknown operator.
  EXPECT_THROW(
      deserialize("graph g\ncnode Warp in f32 2 1 3 0\noutput 0\n"),
      ContractError);
}

TEST(Serialize, RejectsWhitespaceInNames) {
  GraphBuilder b("bad name");
  auto x = b.input({1, 2});
  const auto g = b.build(b.relu(x));
  EXPECT_THROW(serialize(g), ContractError);
}

TEST(Serialize, OpNameRoundTrip) {
  for (OpType op :
       {OpType::kInput, OpType::kConv, OpType::kDWConv, OpType::kMatMul,
        OpType::kMaxPool, OpType::kAvgPool, OpType::kBiasAdd, OpType::kAdd,
        OpType::kBatchNorm, OpType::kRelu, OpType::kSigmoid, OpType::kTanh,
        OpType::kSoftmax, OpType::kConcat, OpType::kFlatten,
        OpType::kMakeTuple, OpType::kReturn}) {
    EXPECT_EQ(op_from_name(op_name(op)), op);
  }
  EXPECT_THROW(op_from_name("NotAnOp"), ContractError);
}

}  // namespace
}  // namespace lp::graph
