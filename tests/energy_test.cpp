#include "common/check.h"
#include <gtest/gtest.h>

#include "core/energy.h"
#include "models/zoo.h"

namespace lp::core {
namespace {

TEST(EnergyModel, ComponentArithmetic) {
  hw::EnergyParams params;
  params.compute_watts = 4.0;
  params.idle_watts = 2.0;
  params.radio_watts = 1.0;
  params.tx_joules_per_byte = 1e-6;
  params.rx_joules_per_byte = 5e-7;
  const hw::EnergyModel energy(params);
  EXPECT_DOUBLE_EQ(energy.compute_joules(2.0), 8.0);
  EXPECT_DOUBLE_EQ(energy.wait_joules(3.0), 6.0);
  EXPECT_DOUBLE_EQ(energy.tx_joules(1'000'000, 1.0), 1.0 + 1.0);
  EXPECT_DOUBLE_EQ(energy.rx_joules(1'000'000, 2.0), 2.0 + 0.5);
}

TEST(Energy, RecordAccountingSumsComponents) {
  const hw::EnergyModel energy;
  InferenceRecord rec;
  rec.device_sec = 0.1;
  rec.upload_sec = 0.2;
  rec.upload_bytes = 100'000;
  rec.server_sec = 0.05;
  rec.download_sec = 0.01;
  rec.download_bytes = 4'000;
  const double expected =
      energy.compute_joules(0.1) + energy.tx_joules(100'000, 0.2) +
      energy.rx_joules(4'000, 0.01) + energy.wait_joules(0.05);
  EXPECT_DOUBLE_EQ(device_energy_joules(rec, energy), expected);
}

TEST(Energy, LocalInferenceEnergyIsPureCompute) {
  const hw::EnergyModel energy;
  InferenceRecord rec;
  rec.device_sec = 0.3;
  EXPECT_DOUBLE_EQ(device_energy_joules(rec, energy),
                   energy.compute_joules(0.3));
}

TEST(Energy, BreakdownCoversAllCutsAndLocalRowHasNoRadio) {
  const auto g = models::alexnet();
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  const hw::EnergyModel energy;
  const auto rows = energy_breakdown(g, cpu, gpu, energy, mbps(8), mbps(8));
  ASSERT_EQ(rows.size(), g.n() + 1);
  // Local row: device compute only.
  EXPECT_NEAR(rows.back().joules,
              energy.compute_joules(to_seconds(cpu.graph_time(g))), 1e-9);
  for (const auto& row : rows) EXPECT_GT(row.joules, 0.0);
}

TEST(Energy, OptimumOffloadsAtLeastAsMuchAsLatencyOptimum) {
  // Waiting draws less power than computing, so the energy-optimal cut is
  // never later (more device-heavy) than the latency-optimal one here.
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  const hw::EnergyModel energy;
  for (const char* name : {"alexnet", "squeezenet", "resnet18"}) {
    SCOPED_TRACE(name);
    const auto g = models::make_model(name);
    for (double bw : {2.0, 8.0, 32.0}) {
      const auto latency_rows =
          latency_breakdown(g, cpu, gpu, mbps(bw), mbps(bw));
      std::size_t latency_p = 0;
      for (std::size_t i = 1; i < latency_rows.size(); ++i)
        if (latency_rows[i].total_sec < latency_rows[latency_p].total_sec)
          latency_p = i;
      const auto ep =
          energy_optimal_p(g, cpu, gpu, energy, mbps(bw), mbps(bw));
      EXPECT_LE(ep, latency_p) << "bw=" << bw;
    }
  }
}

TEST(Energy, MeanOverRecordsRejectsEmpty) {
  const hw::EnergyModel energy;
  EXPECT_THROW(mean_energy_joules({}, energy), ContractError);
}

TEST(Energy, RuntimeRecordsCarryTransferBytes) {
  // End-to-end: a full-offload inference reports the input upload bytes.
  const auto bundle = train_default_predictors(1234);
  const auto model = models::alexnet();
  sim::Simulator sim;
  hw::CpuModel cpu;
  hw::GpuModel gpu;
  hw::GpuScheduler scheduler(sim);
  net::Link link(sim, net::BandwidthTrace::constant(mbps(8)),
                 net::BandwidthTrace::constant(mbps(8)), milliseconds(2), 3);
  const GraphCostProfile profile(model, bundle);
  RuntimeParams params;
  OffloadServer server(sim, scheduler, gpu, profile, params, 5);
  OffloadClient client(sim, cpu, profile, link, server,
                       Policy::kFullOffload, params, 6);
  InferenceRecord rec;
  auto run = [](OffloadClient& c, InferenceRecord& out) -> sim::Task {
    co_await c.infer(&out);
  };
  sim.spawn(run(client, rec));
  sim.run_until(seconds(10));
  EXPECT_EQ(rec.upload_bytes,
            model.input_desc().bytes() + params.header_bytes);
  EXPECT_EQ(rec.download_bytes, model.output_desc().bytes());
  EXPECT_GT(device_energy_joules(rec, hw::EnergyModel()), 0.0);
}

}  // namespace
}  // namespace lp::core
