#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/simulator.h"

namespace lp::sim {
namespace {

TEST(Simulator, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, CallAfterFiresInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.call_after(milliseconds(2), [&] { order.push_back(2); });
  sim.call_after(milliseconds(1), [&] { order.push_back(1); });
  sim.call_after(milliseconds(3), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(3));
}

TEST(Simulator, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.call_after(milliseconds(1), [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

Task delayer(Simulator& sim, std::vector<TimeNs>& ticks, int count,
             DurationNs step) {
  for (int i = 0; i < count; ++i) {
    co_await sim.delay(step);
    ticks.push_back(sim.now());
  }
}

TEST(Simulator, CoroutineDelayAdvancesVirtualTime) {
  Simulator sim;
  std::vector<TimeNs> ticks;
  sim.spawn(delayer(sim, ticks, 3, seconds(1)));
  sim.run();
  EXPECT_EQ(ticks,
            (std::vector<TimeNs>{seconds(1), seconds(2), seconds(3)}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<TimeNs> ticks;
  sim.spawn(delayer(sim, ticks, 10, seconds(1)));
  sim.run_until(seconds(4) + 1);
  EXPECT_EQ(ticks.size(), 4u);
  EXPECT_EQ(sim.now(), seconds(4) + 1);
  sim.run_until(seconds(10));
  EXPECT_EQ(ticks.size(), 10u);
}

TEST(Simulator, RejectsNegativeDelay) {
  Simulator sim;
  EXPECT_THROW(sim.call_after(-1, [] {}), ContractError);
}

Task parent_of(Simulator& sim, std::vector<int>& log);
Task child_of(Simulator& sim, std::vector<int>& log) {
  log.push_back(1);
  co_await sim.delay(milliseconds(5));
  log.push_back(2);
}
Task parent_of(Simulator& sim, std::vector<int>& log) {
  log.push_back(0);
  co_await child_of(sim, log);
  log.push_back(3);
}

TEST(Task, AwaitRunsChildToCompletionBeforeParentResumes) {
  Simulator sim;
  std::vector<int> log;
  sim.spawn(parent_of(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(5));
}

Task thrower(Simulator& sim) {
  co_await sim.delay(1);
  throw std::runtime_error("child failed");
}
Task catcher(Simulator& sim, bool& caught) {
  try {
    co_await thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, ChildExceptionPropagatesToAwaitingParent) {
  Simulator sim;
  bool caught = false;
  sim.spawn(catcher(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Task waiter(Simulator& sim, Event& ev, std::vector<TimeNs>& woke) {
  co_await ev.wait();
  woke.push_back(sim.now());
}

TEST(Event, BroadcastsToAllWaitersAtTriggerTime) {
  Simulator sim;
  Event ev(sim);
  std::vector<TimeNs> woke;
  sim.spawn(waiter(sim, ev, woke));
  sim.spawn(waiter(sim, ev, woke));
  sim.call_after(seconds(2), [&] { ev.trigger(); });
  sim.run();
  ASSERT_EQ(woke.size(), 2u);
  EXPECT_EQ(woke[0], seconds(2));
  EXPECT_EQ(woke[1], seconds(2));
}

TEST(Event, WaitAfterTriggerCompletesImmediately) {
  Simulator sim;
  Event ev(sim);
  ev.trigger();
  std::vector<TimeNs> woke;
  sim.spawn(waiter(sim, ev, woke));
  sim.run();
  ASSERT_EQ(woke.size(), 1u);
  EXPECT_EQ(woke[0], 0);
}

Task producer(Simulator& sim, Channel<int>& ch, int count) {
  for (int i = 0; i < count; ++i) {
    co_await sim.delay(milliseconds(1));
    ch.send(i);
  }
}
Task consumer(Simulator& sim, Channel<int>& ch, int count,
              std::vector<int>& got) {
  (void)sim;
  for (int i = 0; i < count; ++i) {
    const int v = co_await ch.receive();
    got.push_back(v);
  }
}

TEST(Channel, DeliversInFifoOrderAcrossProcesses) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn(consumer(sim, ch, 5, got));
  sim.spawn(producer(sim, ch, 5));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, BufferedSendsReceivedLater) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.send(7);
  ch.send(8);
  EXPECT_EQ(ch.size(), 2u);
  std::vector<int> got;
  sim.spawn(consumer(sim, ch, 2, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{7, 8}));
}

TEST(Event, ResetMakesItReusable) {
  Simulator sim;
  Event ev(sim);
  std::vector<TimeNs> woke;
  ev.trigger();
  EXPECT_TRUE(ev.triggered());
  ev.reset();
  EXPECT_FALSE(ev.triggered());
  sim.spawn(waiter(sim, ev, woke));
  sim.call_after(seconds(1), [&] { ev.trigger(); });
  sim.run();
  ASSERT_EQ(woke.size(), 1u);
  EXPECT_EQ(woke[0], seconds(1));
}

TEST(Simulator, CallbackCanScheduleMoreWork) {
  Simulator sim;
  std::vector<TimeNs> fired;
  sim.call_after(seconds(1), [&] {
    fired.push_back(sim.now());
    sim.call_after(seconds(2), [&] { fired.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<TimeNs>{seconds(1), seconds(3)}));
}

Task deep_chain(Simulator& sim, int depth, int& reached) {
  if (depth == 0) {
    reached = 0;
    co_return;
  }
  co_await sim.delay(1);
  co_await deep_chain(sim, depth - 1, reached);
  reached = std::max(reached, depth);
}

TEST(Task, NestedAwaitChains) {
  Simulator sim;
  int reached = -1;
  sim.spawn(deep_chain(sim, 50, reached));
  sim.run();
  EXPECT_EQ(reached, 50);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, ManyConcurrentProcessesInterleaveCorrectly) {
  Simulator sim;
  std::vector<TimeNs> ticks;
  for (int i = 0; i < 100; ++i)
    sim.spawn(delayer(sim, ticks, 10, milliseconds(i + 1)));
  sim.run();
  EXPECT_EQ(ticks.size(), 1000u);
  // Time stamps must be non-decreasing in execution order.
  for (std::size_t i = 1; i < ticks.size(); ++i)
    EXPECT_GE(ticks[i], ticks[i - 1]);
  EXPECT_EQ(sim.now(), milliseconds(1000));
}

Task resource_user(Simulator& sim, Resource& res, DurationNs hold,
                   std::vector<std::pair<TimeNs, TimeNs>>& spans) {
  co_await res.acquire();
  const TimeNs begin = sim.now();
  co_await sim.delay(hold);
  spans.emplace_back(begin, sim.now());
  res.release();
}

TEST(Resource, SerializesWithCapacityOne) {
  Simulator sim;
  Resource res(sim, 1);
  std::vector<std::pair<TimeNs, TimeNs>> spans;
  for (int i = 0; i < 4; ++i)
    sim.spawn(resource_user(sim, res, milliseconds(10), spans));
  sim.run();
  ASSERT_EQ(spans.size(), 4u);
  // Non-overlapping, back to back, FIFO.
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_GE(spans[i].first, spans[i - 1].second);
  EXPECT_EQ(sim.now(), milliseconds(40));
}

TEST(Resource, CapacityTwoRunsPairsConcurrently) {
  Simulator sim;
  Resource res(sim, 2);
  std::vector<std::pair<TimeNs, TimeNs>> spans;
  for (int i = 0; i < 4; ++i)
    sim.spawn(resource_user(sim, res, milliseconds(10), spans));
  sim.run();
  EXPECT_EQ(sim.now(), milliseconds(20));
  EXPECT_EQ(res.available(), 2u);
  EXPECT_EQ(res.waiters(), 0u);
}

TEST(Resource, ReleaseWithoutAcquireIsAContractViolation) {
  Simulator sim;
  Resource res(sim, 1);
  EXPECT_THROW(res.release(), ContractError);
}

TEST(Simulator, ExecutedEventsCount) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.call_after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 10u);
}

TEST(Simulator, TeardownWithSuspendedProcessesDoesNotCrash) {
  std::vector<TimeNs> ticks;
  {
    Simulator sim;
    sim.spawn(delayer(sim, ticks, 1000, seconds(1)));
    sim.run_until(seconds(3));
    // Simulator destroyed with the process still suspended mid-loop.
  }
  EXPECT_EQ(ticks.size(), 3u);
}

}  // namespace
}  // namespace lp::sim
