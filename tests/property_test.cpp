// Property tests over randomly generated DAGs: the structural and
// algorithmic invariants must hold for *any* well-formed computation
// graph, not just the zoo.
#include "common/check.h"
#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "core/dads.h"
#include "exec/interpreter.h"
#include "graph/cut.h"
#include "partition/partitioner.h"
#include "support/random_graph.h"

namespace lp {
namespace {

class RandomGraphProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  graph::Graph g_ = test::random_graph(GetParam());
};

TEST_P(RandomGraphProperty, ValidatesAndHasConsistentCutSizes) {
  g_.validate();
  const auto s = graph::cut_sizes(g_);
  ASSERT_EQ(s.size(), g_.n() + 1);
  EXPECT_EQ(s[0], g_.input_desc().bytes());
  EXPECT_EQ(s[g_.n()], g_.output_desc().bytes());
  for (std::size_t p = 0; p <= g_.n(); ++p) {
    EXPECT_EQ(s[p], graph::cut_size_at(g_, p)) << "p=" << p;
    EXPECT_GT(s[p], 0) << "p=" << p;
  }
}

TEST_P(RandomGraphProperty, EveryPartitionExecutesEquivalently) {
  const auto input = exec::random_tensor(g_.input_desc().shape, GetParam());
  const auto& input_name = g_.node(g_.input_id()).name;
  const auto whole = exec::Interpreter(g_).run({{input_name, input}});

  for (std::size_t p = 0; p <= g_.n(); ++p) {
    SCOPED_TRACE("p=" + std::to_string(p));
    const auto plan = partition::partition_at(g_, p);
    std::vector<exec::Tensor> out;
    if (!plan.server_part) {
      out = exec::Interpreter(*plan.device_part).run({{input_name, input}});
    } else {
      exec::TensorMap bind;
      if (plan.device_part) {
        exec::Interpreter device(*plan.device_part);
        const auto produced = device.run({{input_name, input}});
        const auto names = device.output_names();
        ASSERT_EQ(names, plan.boundary);
        for (std::size_t i = 0; i < names.size(); ++i)
          bind.emplace(names[i], produced[i]);
      } else {
        bind.emplace(input_name, input);
      }
      out = exec::Interpreter(*plan.server_part).run(bind);
    }
    ASSERT_EQ(out.size(), whole.size());
    for (std::size_t i = 0; i < whole.size(); ++i)
      EXPECT_LE(exec::Tensor::max_abs_diff(out[i], whole[i]), 1e-5);
  }
}

TEST_P(RandomGraphProperty, PartitionBoundaryMatchesCutSizes) {
  const auto s = graph::cut_sizes(g_);
  for (std::size_t p = 0; p < g_.n(); ++p) {
    const auto plan = partition::partition_at(g_, p);
    EXPECT_EQ(plan.boundary_bytes, s[p]) << "p=" << p;
  }
}

TEST_P(RandomGraphProperty, AlgorithmOneMatchesBruteForceOnRandomCosts) {
  // Synthesize random (but valid) cost vectors over this DAG's positions
  // rather than trained predictors — the algorithm must be exact for any
  // non-negative costs.
  Rng rng(GetParam() ^ 0xabcdef);
  const auto s = graph::cut_sizes(g_);
  const std::size_t n = g_.n();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> f(n + 1, 0.0), g(n + 1, 0.0);
    for (std::size_t i = 1; i <= n; ++i) {
      f[i] = rng.uniform(0.0, 0.02);
      g[i] = rng.uniform(0.0, 0.002);
    }
    const double bw = mbps(rng.uniform(0.5, 64.0));
    const auto fast = core::partition_decision(f, g, s, bw, 0.0);

    double best = std::numeric_limits<double>::infinity();
    std::size_t best_p = 0;
    for (std::size_t p = 0; p <= n; ++p) {
      double t = 0.0;
      for (std::size_t i = 0; i <= p; ++i) t += f[i];
      if (p < n) {
        t += static_cast<double>(s[p]) * 8.0 / bw;
        for (std::size_t i = p + 1; i <= n; ++i) t += g[i];
      }
      if (t <= best) {
        best = t;
        best_p = p;
      }
    }
    EXPECT_EQ(fast.p, best_p);
    EXPECT_NEAR(fast.predicted_latency, best, 1e-12);
  }
}

TEST_P(RandomGraphProperty, MinCutNeverWorseThanTopologicalSearch) {
  // Build a cost profile directly over the graph using simple synthetic
  // predictors (FLOPs-proportional), then compare the general min cut to
  // Algorithm 1: the min cut searches a superset of cuts.
  profile::NodePredictor user(flops::Device::kUser);
  profile::NodePredictor edge(flops::Device::kEdge);
  for (auto kind : flops::all_model_kinds()) {
    const std::size_t width =
        flops::feature_names(kind, flops::Device::kUser).size();
    std::vector<double> cu(width, 0.0), ce(width, 0.0);
    cu[0] = 3e-10;  // seconds per FLOP on the device
    user.set_model(kind, ml::LinearModel(cu));
    const std::size_t ewidth =
        flops::feature_names(kind, flops::Device::kEdge).size();
    std::vector<double> cee(ewidth, 0.0);
    cee[0] = 5e-13;
    edge.set_model(kind, ml::LinearModel(cee));
  }
  const core::PredictorBundle bundle{std::move(user), std::move(edge)};
  const core::GraphCostProfile profile(g_, bundle);
  for (double bw : {0.5, 8.0, 64.0}) {
    const auto linear = core::decide(profile, 1.0, mbps(bw));
    const auto cut = core::dads_min_cut(profile, 1.0, mbps(bw));
    EXPECT_LE(cut.latency_sec, linear.predicted_latency + 1e-9)
        << "bw=" << bw;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(RandomGraphChain, MinCutEqualsTopologicalSearchOnChains) {
  // On pure chains every monotone cut IS a topological-prefix cut, so the
  // two partitioners must agree exactly.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    graph::GraphBuilder b("chain_" + std::to_string(seed));
    Rng rng(seed);
    auto x = b.input({1, 4, 8, 8});
    for (int i = 0; i < 6; ++i) {
      x = b.conv2d(x, 4, 3, 1, 1, rng.bernoulli(0.5));
      if (rng.bernoulli(0.5)) x = b.relu(x);
    }
    const auto g = b.build(x);

    profile::NodePredictor user(flops::Device::kUser);
    profile::NodePredictor edge(flops::Device::kEdge);
    for (auto kind : flops::all_model_kinds()) {
      std::vector<double> cu(
          flops::feature_names(kind, flops::Device::kUser).size(), 0.0);
      cu[0] = 3e-10;
      user.set_model(kind, ml::LinearModel(cu));
      std::vector<double> ce(
          flops::feature_names(kind, flops::Device::kEdge).size(), 0.0);
      ce[0] = 5e-13;
      edge.set_model(kind, ml::LinearModel(ce));
    }
    const core::PredictorBundle bundle{std::move(user), std::move(edge)};
    const core::GraphCostProfile profile(g, bundle);
    for (double bw : {1.0, 16.0}) {
      const auto linear = core::decide(profile, 1.0, mbps(bw));
      const auto cut = core::dads_min_cut(profile, 1.0, mbps(bw));
      EXPECT_NEAR(cut.latency_sec, linear.predicted_latency, 1e-9)
          << "seed=" << seed << " bw=" << bw;
    }
  }
}

}  // namespace
}  // namespace lp
