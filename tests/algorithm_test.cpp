#include "common/check.h"
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "check/generators.h"
#include "common/rng.h"
#include "core/algorithm.h"
#include "core/baselines.h"
#include "models/zoo.h"

namespace lp::core {
namespace {

const PredictorBundle& bundle() {
  static const PredictorBundle b = train_default_predictors(1234);
  return b;
}

TEST(Algorithm1, VerbatimFormTrivialChain) {
  // Three nodes after L0; device 10 ms each, server 1 ms each; tensors
  // shrink along the chain. At high bandwidth: offload early.
  const std::vector<double> f{0.0, 0.010, 0.010, 0.010};
  const std::vector<double> g{0.0, 0.001, 0.001, 0.001};
  const std::vector<std::int64_t> s{1000, 500, 250, 100};
  const auto high = partition_decision(f, g, s, mbps(100), 0.0);
  EXPECT_EQ(high.p, 0u);
  // At pathologically low bandwidth: local wins.
  const auto low = partition_decision(f, g, s, 10.0, 0.0);
  EXPECT_EQ(low.p, 3u);
}

TEST(Algorithm1, TieBreaksTowardLargerP) {
  // f = g = 0 and equal-size cuts: every p (including local) ties; the
  // pseudocode's `<=` keeps the last, which is local inference.
  const std::vector<double> f{0.0, 0.0, 0.0};
  const std::vector<double> g{0.0, 0.0, 0.0};
  const std::vector<std::int64_t> s{0, 0, 0};
  EXPECT_EQ(partition_decision(f, g, s, mbps(8), 0.0).p, 2u);
}

TEST(Algorithm1, InteriorTieKeepsLatestMinimizer) {
  // t_0 = g1 + g2 = 1, t_1 = f1 + g2 = 1, t_2 = f1 + f2 = 2: p = 0 and
  // p = 1 tie and local is worse; the `<=` keeps the later minimizer p = 1.
  const std::vector<double> f{0.0, 1.0, 1.0};
  const std::vector<double> g{0.0, 1.0, 0.0};
  const std::vector<std::int64_t> s{0, 0, 0};
  EXPECT_EQ(partition_decision(f, g, s, mbps(8), 0.0).p, 1u);
}

TEST(Algorithm1, AllImplementationsBreakTiesIdentically) {
  // Exact full-spectrum tie: FLOPs-proportional predictors with
  // power-of-two coefficients make f(L_i) == k * g_base(L_i) exactly at
  // k = 2 (every term is an integer FLOP count scaled by a power of two,
  // so sums are exact), and infinite bandwidth zeroes the transfer term.
  // Every t_p is then bit-identical, and all three implementations must
  // resolve the n+1-way tie the same way: the `<=` keeps p = n (local).
  const auto g = models::make_model("alexnet");
  const core::PredictorBundle synthetic = lp::check::synthetic_bundle(
      std::ldexp(1.0, -30), std::ldexp(1.0, -31));
  const GraphCostProfile profile(g, synthetic);
  const double k = 2.0;
  const double bw = std::numeric_limits<double>::infinity();

  const auto fast = decide(profile, k, bw);
  const auto slow = decide_brute_force(profile, k, bw);
  std::vector<double> fv(profile.n() + 1), gk(profile.n() + 1);
  std::vector<std::int64_t> sv(profile.n() + 1);
  for (std::size_t i = 0; i <= profile.n(); ++i) {
    fv[i] = profile.f(i);
    gk[i] = k * profile.g_base(i);
    sv[i] = profile.s(i);
  }
  const auto verbatim = partition_decision(fv, gk, sv, bw, 0.0);

  EXPECT_EQ(fast.p, g.n());
  EXPECT_EQ(slow.p, g.n());
  EXPECT_EQ(verbatim.p, g.n());
  EXPECT_EQ(fast.predicted_latency, slow.predicted_latency);
  EXPECT_EQ(fast.predicted_latency, verbatim.predicted_latency);
}

TEST(Algorithm1, DownloadTermIncludedWhenRequested) {
  const std::vector<double> f{0.0, 1.0};
  const std::vector<double> g{0.0, 0.0};
  // Offloading uploads 1 KB instantly but must download a 1 MB result; at
  // 8 Mbps that costs 1 s, equal to local compute -> tie -> local.
  const std::vector<std::int64_t> s{1000, 1'000'000};
  EXPECT_EQ(partition_decision(f, g, s, mbps(1000), mbps(8)).p, 1u);
  // Without the download term, full offloading wins.
  EXPECT_EQ(partition_decision(f, g, s, mbps(1000), 0.0).p, 0u);
}

TEST(Algorithm1, RejectsMismatchedInputs) {
  const std::vector<double> f{0.0, 1.0};
  const std::vector<double> g{0.0};
  const std::vector<std::int64_t> s{10, 10};
  EXPECT_THROW(partition_decision(f, g, s, mbps(8), 0.0), ContractError);
}

class DecideVsBruteForce
    : public ::testing::TestWithParam<std::tuple<const char*, double, double>> {
};

TEST_P(DecideVsBruteForce, IncrementalFormMatchesOracle) {
  const auto [name, k, bw_mbps] = GetParam();
  const auto g = models::make_model(name);
  const GraphCostProfile profile(g, bundle());
  const auto fast = decide(profile, k, mbps(bw_mbps));
  const auto slow = decide_brute_force(profile, k, mbps(bw_mbps));
  EXPECT_EQ(fast.p, slow.p);
  EXPECT_NEAR(fast.predicted_latency, slow.predicted_latency, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsBandwidthsLoads, DecideVsBruteForce,
    ::testing::Combine(
        ::testing::Values("alexnet", "squeezenet", "resnet18", "vgg16",
                          "xception"),
        ::testing::Values(1.0, 3.0, 20.0),
        ::testing::Values(1.0, 8.0, 64.0)));

TEST(Decide, RandomCostVectorsMatchVerbatimForm) {
  // Property sweep: on random synthetic chains the O(n) incremental form,
  // the verbatim pseudocode and the O(n^2) oracle agree.
  Rng rng(77);
  const auto g = models::alexnet();
  const GraphCostProfile profile(g, bundle());
  for (int trial = 0; trial < 50; ++trial) {
    const double k = rng.uniform(1.0, 40.0);
    const double bw = mbps(rng.uniform(0.5, 100.0));
    const auto a = decide(profile, k, bw);
    const auto b = decide_brute_force(profile, k, bw);

    std::vector<double> f(profile.n() + 1), gk(profile.n() + 1);
    std::vector<std::int64_t> s(profile.n() + 1);
    for (std::size_t i = 0; i <= profile.n(); ++i) {
      f[i] = profile.f(i);
      gk[i] = k * profile.g_base(i);
      s[i] = profile.s(i);
    }
    const auto c = partition_decision(f, gk, s, bw, 0.0);
    EXPECT_EQ(a.p, b.p);
    EXPECT_EQ(a.p, c.p);
    EXPECT_NEAR(a.predicted_latency, c.predicted_latency, 1e-9);
  }
}

TEST(Decide, BandwidthMonotonicity) {
  // As bandwidth falls, the chosen p never moves toward the input: with a
  // slower link you never offload *more*.
  const auto g = models::alexnet();
  const GraphCostProfile profile(g, bundle());
  std::size_t prev_p = 0;
  for (double m : {64.0, 32.0, 16.0, 8.0, 4.0, 2.0, 1.0, 0.5}) {
    const auto d = decide(profile, 1.0, mbps(m));
    EXPECT_GE(d.p, prev_p) << m << " Mbps";
    prev_p = d.p;
  }
}

TEST(Decide, LoadMonotonicity) {
  // As k rises, the partition point never moves toward the server.
  const auto g = models::squeezenet();
  const GraphCostProfile profile(g, bundle());
  std::size_t prev_p = 0;
  for (double k : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    const auto d = decide(profile, k, mbps(8));
    EXPECT_GE(d.p, prev_p) << "k=" << k;
    prev_p = d.p;
  }
}

TEST(Decide, ExtremeBandwidthLimits) {
  const auto g = models::alexnet();
  const GraphCostProfile profile(g, bundle());
  // Near-infinite bandwidth with an idle server: full offloading.
  EXPECT_EQ(decide(profile, 1.0, mbps(1e6)).p, 0u);
  // Near-zero bandwidth: local inference.
  EXPECT_EQ(decide(profile, 1.0, 1.0).p, g.n());
}

TEST(Decide, HugeKForcesLocal) {
  const auto g = models::alexnet();
  const GraphCostProfile profile(g, bundle());
  EXPECT_EQ(decide(profile, 1e9, mbps(64)).p, g.n());
}

TEST(Decide, RejectsInvalidArguments) {
  const auto g = models::alexnet();
  const GraphCostProfile profile(g, bundle());
  EXPECT_THROW(decide(profile, 0.5, mbps(8)), ContractError);  // k < 1
  EXPECT_THROW(decide(profile, 1.0, 0.0), ContractError);
}

TEST(GraphCostProfile, PrefixSuffixConsistency) {
  const auto g = models::resnet18();
  const GraphCostProfile profile(g, bundle());
  double acc = 0.0;
  for (std::size_t p = 0; p <= profile.n(); ++p) {
    acc += profile.f(p);
    EXPECT_NEAR(profile.prefix_f(p), acc, 1e-12);
  }
  EXPECT_NEAR(profile.suffix_g(profile.n()), 0.0, 1e-15);
  double suf = 0.0;
  for (std::size_t p = profile.n(); p-- > 0;) {
    suf += profile.g_base(p + 1);
    EXPECT_NEAR(profile.suffix_g(p), suf, 1e-12);
  }
  // The virtual L0 costs nothing.
  EXPECT_EQ(profile.f(0), 0.0);
  EXPECT_EQ(profile.g_base(0), 0.0);
}

TEST(GraphCostProfile, PredictedLatencyEndpoints) {
  const auto g = models::alexnet();
  const GraphCostProfile profile(g, bundle());
  // p = n: pure device sum, no transmission.
  EXPECT_NEAR(profile.predicted_latency(g.n(), 5.0, mbps(8)),
              profile.prefix_f(g.n()), 1e-12);
  // p = 0: upload of the input + k-scaled server sum.
  const double expected =
      static_cast<double>(profile.s(0)) * 8.0 / mbps(8) +
      2.0 * profile.suffix_g(0);
  EXPECT_NEAR(profile.predicted_latency(0, 2.0, mbps(8)), expected, 1e-12);
}

TEST(PredictedVsGroundTruth, IdleServerBreakdownAgreesRoughly) {
  // The trained predictors should track the simulator's ground truth well
  // enough that predicted and actual best-p coincide or nearly so.
  const auto g = models::alexnet();
  const GraphCostProfile profile(g, bundle());
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  const auto rows = latency_breakdown(g, cpu, gpu, mbps(8), mbps(8));
  const auto decision = decide(profile, 1.0, mbps(8));
  double best_truth = 1e18;
  std::size_t best_p = 0;
  for (const auto& row : rows) {
    // Ignore download as the decision does.
    const double t = row.total_sec - row.download_sec;
    if (t < best_truth) {
      best_truth = t;
      best_p = row.p;
    }
  }
  const double chosen_truth = rows[decision.p].total_sec -
                              rows[decision.p].download_sec;
  EXPECT_LT(chosen_truth, best_truth * 1.25)
      << "decision p=" << decision.p << " truth-best p=" << best_p;
}

}  // namespace
}  // namespace lp::core
