#include "common/check.h"
#include <gtest/gtest.h>

#include "core/load_factor.h"
#include "core/offload_runtime.h"
#include "hw/load_generator.h"

#include "models/zoo.h"

namespace lp::core {
namespace {

const PredictorBundle& bundle() {
  static const PredictorBundle b = train_default_predictors(1234);
  return b;
}

TEST(LoadFactorTracker, StartsAtOneAndClamps) {
  LoadFactorTracker k(4);
  EXPECT_DOUBLE_EQ(k.k(), 1.0);
  k.record(0.5, 1.0);  // measured faster than predicted
  EXPECT_DOUBLE_EQ(k.k(), 1.0);  // clamped to >= 1 (constraint 1c)
  k.record(6.0, 1.0);
  EXPECT_GT(k.k(), 1.0);
}

TEST(LoadFactorTracker, AveragesRecentWindow) {
  LoadFactorTracker k(2);
  k.record(10.0, 1.0);
  k.record(2.0, 1.0);
  EXPECT_DOUBLE_EQ(k.k(), 6.0);
  k.record(2.0, 1.0);  // evicts the 10x record
  EXPECT_DOUBLE_EQ(k.k(), 2.0);
}

TEST(LoadFactorTracker, ResetIdleForgetsContendedHistory) {
  LoadFactorTracker k(4);
  k.record(50.0, 1.0, /*contended=*/true);
  EXPECT_GT(k.k(), 10.0);
  // No idle measurement exists yet: the baseline is 1 (cold start).
  EXPECT_DOUBLE_EQ(k.idle_baseline(), 1.0);
  k.reset_idle();
  EXPECT_DOUBLE_EQ(k.k(), 1.0);
}

TEST(LoadFactorTracker, IdleBaselineAbsorbsModelBias) {
  // Uncontended executions calibrate the baseline: the watcher reset
  // returns k to the prediction-bias floor, not to literal 1.
  LoadFactorTracker k(4);
  k.record(9.0, 1.0, /*contended=*/false);
  k.record(11.0, 1.0, /*contended=*/false);
  k.record(80.0, 1.0, /*contended=*/true);  // load spike
  EXPECT_GT(k.k(), 20.0);
  EXPECT_DOUBLE_EQ(k.idle_baseline(), 10.0);
  k.reset_idle();
  EXPECT_DOUBLE_EQ(k.k(), 10.0);
}

TEST(LoadFactorTracker, ColdStartUnderLoadRecovers) {
  // Only contended measurements so far; reset hands back k = 1, which
  // makes the device probe the server once and recalibrate.
  LoadFactorTracker k(8);
  for (int i = 0; i < 8; ++i) k.record(60.0, 1.0, /*contended=*/true);
  k.reset_idle();
  EXPECT_DOUBLE_EQ(k.k(), 1.0);
  k.record(9.5, 1.0, /*contended=*/false);
  EXPECT_DOUBLE_EQ(k.idle_baseline(), 9.5);
}

TEST(LoadFactorTracker, RejectsNonPositivePrediction) {
  LoadFactorTracker k(4);
  EXPECT_THROW(k.record(1.0, 0.0), ContractError);
}

TEST(LoadFactorTracker, DropsNonPositiveMeasurements) {
  LoadFactorTracker k(4);
  k.record(2.0, 1.0);
  const double before = k.k();
  k.record(0.0, 1.0);  // carries no load information; must not drag k down
  EXPECT_DOUBLE_EQ(k.k(), before);
  EXPECT_EQ(k.window_size(), 1u);
  EXPECT_EQ(k.records(), 1u);
}

struct Harness {
  sim::Simulator sim;
  hw::CpuModel cpu;
  hw::GpuModel gpu;
  hw::GpuScheduler scheduler{sim};
  hw::LoadGenerator load{sim, scheduler, gpu, 91};
  net::Link link{sim, net::BandwidthTrace::constant(mbps(8)),
                 net::BandwidthTrace::constant(mbps(8)), milliseconds(2),
                 19};
  graph::Graph model;
  GraphCostProfile profile;
  OffloadServer server;
  OffloadClient client;

  explicit Harness(const std::string& name,
                   Policy policy = Policy::kLoadPart,
                   RuntimeParams params = {})
      : model(models::make_model(name)),
        profile(model, bundle()),
        server(sim, scheduler, gpu, profile, params, 5),
        client(sim, cpu, profile, link, server, policy, params, 6) {}
};

sim::Task run_inferences(OffloadClient& client, int count,
                         std::vector<InferenceRecord>& out) {
  for (int i = 0; i < count; ++i) {
    InferenceRecord rec;
    co_await client.infer(&rec);
    out.push_back(rec);
  }
}

TEST(OffloadRuntime, AlexNetIdleServerPicksMidCutAt8Mbps) {
  Harness h("alexnet");
  std::vector<InferenceRecord> records;
  h.sim.spawn(run_inferences(h.client, 5, records));
  h.sim.run_until(seconds(30));
  ASSERT_EQ(records.size(), 5u);
  // Figure 1 / Figure 6: at 8 Mbps and no load, AlexNet partitions in the
  // pool region (p = 4 or 8), not local, not full offload.
  const auto p = records.back().p;
  EXPECT_GT(p, 0u);
  EXPECT_LT(p, h.model.n());
  EXPECT_TRUE(p == 4 || p == 8) << "p=" << p;
}

TEST(OffloadRuntime, RecordBreakdownSumsToTotal) {
  Harness h("alexnet");
  std::vector<InferenceRecord> records;
  h.sim.spawn(run_inferences(h.client, 3, records));
  h.sim.run_until(seconds(30));
  for (const auto& r : records) {
    const double parts = r.device_sec + r.upload_sec + r.server_sec +
                         r.download_sec + r.overhead_sec +
                         r.weight_upload_sec;
    EXPECT_NEAR(r.total_sec, parts, 1e-6);
  }
}

TEST(OffloadRuntime, CacheAmortizesPartitionOverhead) {
  Harness h("squeezenet");
  std::vector<InferenceRecord> records;
  h.sim.spawn(run_inferences(h.client, 10, records));
  h.sim.run_until(seconds(60));
  ASSERT_GE(records.size(), 10u);
  EXPECT_GT(records.front().overhead_sec, 0.0);
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_DOUBLE_EQ(records[i].overhead_sec, 0.0) << i;
  EXPECT_GT(h.client.cache().hits(), 0u);
}

TEST(OffloadRuntime, LocalPolicyNeverTouchesNetworkOrGpu) {
  Harness h("alexnet", Policy::kLocalOnly);
  std::vector<InferenceRecord> records;
  h.sim.spawn(run_inferences(h.client, 3, records));
  h.sim.run_until(seconds(30));
  for (const auto& r : records) {
    EXPECT_EQ(r.p, h.model.n());
    EXPECT_EQ(r.upload_sec, 0.0);
    EXPECT_EQ(r.server_sec, 0.0);
  }
  EXPECT_EQ(h.scheduler.completed_jobs(), 0u);
}

TEST(OffloadRuntime, FullOffloadUploadsWholeInput) {
  Harness h("alexnet", Policy::kFullOffload);
  std::vector<InferenceRecord> records;
  h.sim.spawn(run_inferences(h.client, 2, records));
  h.sim.run_until(seconds(30));
  for (const auto& r : records) {
    EXPECT_EQ(r.p, 0u);
    EXPECT_EQ(r.device_sec, 0.0);
    // 588 KB at 8 Mbps is ~0.6 s.
    EXPECT_NEAR(r.upload_sec, 0.6, 0.15);
  }
}

TEST(OffloadRuntime, ServerKRisesUnderLoadAndProfilerDeliversIt) {
  Harness h("alexnet", Policy::kFullOffload);
  h.load.set_level(hw::LoadLevel::k100h);
  h.load.start();
  h.client.start_runtime_profiler(seconds(1));
  std::vector<InferenceRecord> records;
  h.sim.spawn(run_inferences(h.client, 40, records));
  h.sim.run_until(seconds(60));
  EXPECT_GT(h.server.current_k(), 2.0);
  EXPECT_GT(h.client.cached_k(), 2.0);  // fetched by the profiler
}

TEST(OffloadRuntime, GpuWatcherResetsKWhenLoadVanishes) {
  Harness h("alexnet", Policy::kFullOffload);
  h.server.start_gpu_watcher(seconds(10));
  h.load.start();  // starts at 0%: calibrates the idle baseline
  std::vector<InferenceRecord> warm;
  h.sim.spawn(run_inferences(h.client, 60, warm));
  h.sim.run_until(seconds(20));
  const double idle_k = h.server.current_k();
  h.load.set_level(hw::LoadLevel::k100h);
  h.sim.run_until(seconds(50));
  const double loaded_k = h.server.current_k();
  ASSERT_GT(loaded_k, idle_k * 1.5);
  // Load disappears; no more foreground inferences update k, but the
  // watcher notices utilization < 90% and resets it toward the idle
  // baseline (Section IV).
  h.load.set_level(hw::LoadLevel::k0);
  h.sim.run_for(seconds(25));
  EXPECT_LT(h.server.current_k(), loaded_k * 0.6);
  EXPECT_LE(h.server.current_k(),
            h.server.load_tracker().idle_baseline() + 1e-9);
}

TEST(OffloadRuntime, EstimatorTracksBandwidthCollapse) {
  // Failure injection: the link drops from 8 Mbps to 0.5 Mbps mid-run; the
  // probing profiler must converge to the new bandwidth.
  sim::Simulator sim;
  hw::CpuModel cpu;
  hw::GpuModel gpu;
  hw::GpuScheduler scheduler(sim);
  net::Link link(sim,
                 net::BandwidthTrace({{0, mbps(8)},
                                      {seconds(30), mbps(0.5)}}),
                 net::BandwidthTrace::constant(mbps(8)), milliseconds(2),
                 19);
  const auto model = models::alexnet();
  const GraphCostProfile profile(model, bundle());
  RuntimeParams params;
  OffloadServer server(sim, scheduler, gpu, profile, params, 5);
  OffloadClient client(sim, cpu, profile, link, server, Policy::kLoadPart,
                       params, 6);
  client.start_runtime_profiler(seconds(2));
  sim.run_until(seconds(70));
  EXPECT_NEAR(client.estimator().estimate(), mbps(0.5), mbps(0.15));
  // With a collapsed link, the decision moves to local inference.
  EXPECT_EQ(client.current_decision().p, model.n());
}

TEST(OffloadRuntime, NeurosurgeonIgnoresK) {
  RuntimeParams params;
  Harness lp_h("alexnet", Policy::kLoadPart, params);
  Harness ns_h("alexnet", Policy::kNeurosurgeon, params);
  // Force a high cached k via a loaded server.
  for (auto* h : {&lp_h, &ns_h}) {
    h->load.set_level(hw::LoadLevel::k100h);
    h->load.start();
    h->client.start_runtime_profiler(seconds(1));
    std::vector<InferenceRecord> recs;
    h->sim.spawn(run_inferences(h->client, 30, recs));
    h->sim.run_until(seconds(60));
  }
  // Same conditions: LoADPart's decision moved at least as far toward the
  // device as Neurosurgeon's (which still assumes an idle server).
  EXPECT_GE(lp_h.client.current_decision().p,
            ns_h.client.current_decision().p);
  EXPECT_GT(lp_h.client.cached_k(), 1.5);
}

TEST(OffloadRuntime, ColdStartShipsWeightsOnceApiece) {
  RuntimeParams params;
  params.weights_preloaded = false;
  Harness h("squeezenet", Policy::kFullOffload, params);
  std::vector<InferenceRecord> records;
  h.sim.spawn(run_inferences(h.client, 4, records));
  h.sim.run_until(seconds(60));
  ASSERT_GE(records.size(), 4u);
  // First request pays the full parameter upload (~5 MB at 8 Mbps ~ 5 s);
  // later requests at the same p ship nothing.
  EXPECT_GT(records.front().weight_upload_sec, 2.0);
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_DOUBLE_EQ(records[i].weight_upload_sec, 0.0) << i;
  // Total shipped weight bytes equal the model's parameter bytes.
  EXPECT_GE(records.front().upload_bytes, h.model.parameter_bytes());
}

TEST(OffloadRuntime, PreloadedWeightsNeverShip) {
  Harness h("squeezenet", Policy::kFullOffload);
  std::vector<InferenceRecord> records;
  h.sim.spawn(run_inferences(h.client, 3, records));
  h.sim.run_until(seconds(30));
  for (const auto& r : records)
    EXPECT_DOUBLE_EQ(r.weight_upload_sec, 0.0);
}

TEST(OffloadRuntime, FusedServerKernelsReduceServerTime) {
  RuntimeParams fused;
  fused.fused_server_kernels = true;
  Harness plain("resnet50", Policy::kFullOffload);
  Harness with_fusion("resnet50", Policy::kFullOffload, fused);
  std::vector<InferenceRecord> a, b;
  plain.sim.spawn(run_inferences(plain.client, 3, a));
  with_fusion.sim.spawn(run_inferences(with_fusion.client, 3, b));
  plain.sim.run_until(seconds(30));
  with_fusion.sim.run_until(seconds(30));
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_LT(b.back().server_sec, a.back().server_sec * 0.75);
}

TEST(OffloadRuntime, ConcurrentInferCallsSerializeOnTheDevice) {
  // Two overlapping infer() calls on one client must not interleave their
  // device execution: the second runs after the first completes.
  Harness h("alexnet", Policy::kLocalOnly);
  InferenceRecord a, b;
  auto one = [](OffloadClient& c, InferenceRecord& out) -> sim::Task {
    co_await c.infer(&out);
  };
  h.sim.spawn(one(h.client, a));
  h.sim.spawn(one(h.client, b));
  h.sim.run_until(seconds(30));
  ASSERT_GT(a.total_sec, 0.0);
  ASSERT_GT(b.total_sec, 0.0);
  // Second inference started no earlier than the first one finished.
  EXPECT_GE(b.start, a.start + seconds(a.total_sec));
}

TEST(OffloadRuntime, FixedPointPolicyHoldsItsCut) {
  RuntimeParams params;
  params.fixed_p = 19;
  Harness h("alexnet", Policy::kFixedPoint, params);
  std::vector<InferenceRecord> records;
  h.sim.spawn(run_inferences(h.client, 4, records));
  h.sim.run_until(seconds(30));
  ASSERT_EQ(records.size(), 4u);
  for (const auto& r : records) EXPECT_EQ(r.p, 19u);
}

TEST(OffloadRuntime, FixedPointClampsToLocal) {
  RuntimeParams params;
  params.fixed_p = 9999;
  Harness h("alexnet", Policy::kFixedPoint, params);
  EXPECT_EQ(h.client.current_decision().p, h.model.n());
}

TEST(OffloadRuntime, StaleKWithoutProfilerBehavesLikeNeurosurgeon) {
  // Failure injection: the runtime profiler never runs (k reports lost).
  // The client's cached k stays at 1 and its decisions match the
  // load-oblivious baseline even under 100%(h).
  Harness lp_h("alexnet", Policy::kLoadPart);
  Harness ns_h("alexnet", Policy::kNeurosurgeon);
  for (auto* h : {&lp_h, &ns_h}) {
    h->load.set_level(hw::LoadLevel::k100h);
    h->load.start();
    // Note: no start_runtime_profiler().
    std::vector<InferenceRecord> recs;
    h->sim.spawn(run_inferences(h->client, 20, recs));
    h->sim.run_until(seconds(30));
  }
  EXPECT_DOUBLE_EQ(lp_h.client.cached_k(), 1.0);
  EXPECT_EQ(lp_h.client.current_decision().p,
            ns_h.client.current_decision().p);
}

TEST(OffloadRuntime, CacheCapacityOneThrashesUnderAlternatingDecisions) {
  RuntimeParams tiny;
  tiny.cache_capacity = 1;
  Harness h("alexnet", Policy::kLoadPart, tiny);
  // Alternate the decision by hand via bandwidth flips (estimator window
  // is fed passively by the inference uploads).
  std::vector<InferenceRecord> records;
  h.sim.spawn(run_inferences(h.client, 6, records));
  h.sim.run_until(seconds(30));
  // All inferences at one p: only the first misses even with capacity 1.
  int misses = 0;
  for (const auto& r : records)
    if (r.overhead_sec > 0.0) ++misses;
  EXPECT_EQ(misses, 1);
  // Now force a different p and come back: the original entry was evicted,
  // so it must be re-partitioned (the thrash ablation measures the cost).
  EXPECT_EQ(h.client.cache().size(), 1u);
}

TEST(OffloadServer, RejectsMalformedRequests) {
  Harness h("alexnet");
  sim::Event done(h.sim);
  // p = n means local inference: nothing to ask the server for.
  EXPECT_THROW(h.server.submit(SuffixRequest{h.model.n(), &done, nullptr,
                                             nullptr}),
               ContractError);
  EXPECT_THROW(h.server.submit(SuffixRequest{0, nullptr, nullptr, nullptr}),
               ContractError);
}

TEST(OffloadServer, ServiceProcessesQueuedRequestsInOrder) {
  // Two requests submitted back-to-back: the service runs them in FIFO
  // order on its single stream (the second waits for the first).
  Harness h("alexnet");
  sim::Event first_done(h.sim), second_done(h.sim);
  double exec1 = 0.0, exec2 = 0.0;
  TimeNs t1 = 0, t2 = 0;
  auto waiter = [](sim::Simulator& s, sim::Event& ev,
                   TimeNs& t) -> sim::Task {
    co_await ev.wait();
    t = s.now();
  };
  h.server.submit(SuffixRequest{0, &first_done, &exec1, nullptr});
  h.server.submit(SuffixRequest{8, &second_done, &exec2, nullptr});
  h.sim.spawn(waiter(h.sim, first_done, t1));
  h.sim.spawn(waiter(h.sim, second_done, t2));
  h.sim.run_until(seconds(10));
  EXPECT_GT(t1, 0);
  EXPECT_GT(t2, t1);  // FIFO: the p=8 request finished after the p=0 one
  EXPECT_GT(exec1, exec2);  // and the longer suffix took longer
}

}  // namespace
}  // namespace lp::core
