#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "exec/interpreter.h"
#include "exec/thread_pool.h"
#include "graph/graph.h"

namespace lp::exec {
namespace {

using graph::GraphBuilder;

TEST(Tensor, AccessorsAndDiff) {
  Tensor a(Shape{1, 2, 2, 2});
  a.at4(0, 1, 1, 1) = 3.0f;
  EXPECT_FLOAT_EQ(a.at(7), 3.0f);
  Tensor b(Shape{1, 2, 2, 2});
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(a, b), 3.0);
}

TEST(Tensor, DeterministicParamStableAcrossCalls) {
  const auto a = deterministic_param("conv1.weight", Shape{4, 3, 3, 3});
  const auto b = deterministic_param("conv1.weight", Shape{4, 3, 3, 3});
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(a, b), 0.0);
  const auto c = deterministic_param("conv2.weight", Shape{4, 3, 3, 3});
  EXPECT_GT(Tensor::max_abs_diff(a, c), 0.0);
}

TEST(Interpreter, ConvIdentityKernel) {
  GraphBuilder b("conv-id");
  auto x = b.input({1, 1, 3, 3});
  auto y = b.conv2d(x, 1, 1, 1, 0, /*with_bias=*/false, "c");
  graph::Graph g = b.build(y);

  Tensor input(Shape{1, 1, 3, 3});
  for (int i = 0; i < 9; ++i) input.at(i) = static_cast<float>(i);
  Tensor weight(Shape{1, 1, 1, 1});
  weight.at(0) = 2.0f;

  Interpreter interp(g);
  const auto out =
      interp.run({{"input", input}, {"c.weight", weight}});
  ASSERT_EQ(out.size(), 1u);
  for (int i = 0; i < 9; ++i)
    EXPECT_FLOAT_EQ(out[0].at(i), 2.0f * static_cast<float>(i));
}

TEST(Interpreter, ConvPaddingAndStride) {
  // 3x3 input, 3x3 all-ones kernel, pad 1, stride 2 -> 2x2 output of
  // corner-window sums.
  GraphBuilder b("conv-pad");
  auto x = b.input({1, 1, 3, 3});
  auto y = b.conv2d(x, 1, 3, 2, 1, false, "c");
  graph::Graph g = b.build(y);

  Tensor input(Shape{1, 1, 3, 3});
  for (int i = 0; i < 9; ++i) input.at(i) = 1.0f;
  Tensor weight(Shape{1, 1, 3, 3});
  for (int i = 0; i < 9; ++i) weight.at(i) = 1.0f;

  const auto out = Interpreter(g).run({{"input", input},
                                       {"c.weight", weight}});
  ASSERT_EQ(out[0].shape(), (Shape{1, 1, 2, 2}));
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out[0].at(i), 4.0f);
}

TEST(Interpreter, MaxAndAvgPool) {
  GraphBuilder b("pool");
  auto x = b.input({1, 1, 2, 2});
  auto mx = b.maxpool(x, 2, 2, 0, false, "mx");
  graph::Graph g = b.build(mx);
  Tensor input(Shape{1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  const auto out = Interpreter(g).run({{"input", input}});
  EXPECT_FLOAT_EQ(out[0].at(0), 4.0f);

  GraphBuilder b2("pool-avg");
  auto x2 = b2.input({1, 1, 2, 2});
  auto av = b2.avgpool(x2, 2, 2, 0, "av");
  graph::Graph g2 = b2.build(av);
  const auto out2 = Interpreter(g2).run({{"input", input}});
  EXPECT_FLOAT_EQ(out2[0].at(0), 2.5f);
}

TEST(Interpreter, MatMulBias) {
  GraphBuilder b("fc");
  auto x = b.input({1, 2});
  auto y = b.fc(x, 2, true, "fc");
  graph::Graph g = b.build(y);
  Tensor input(Shape{1, 2}, {1.0f, 2.0f});
  Tensor weight(Shape{2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor bias(Shape{2}, {10.0f, 20.0f});
  const auto out = Interpreter(g).run(
      {{"input", input}, {"fc.weight", weight}, {"fc.bias", bias}});
  EXPECT_FLOAT_EQ(out[0].at2(0, 0), 1 * 1 + 2 * 3 + 10);
  EXPECT_FLOAT_EQ(out[0].at2(0, 1), 1 * 2 + 2 * 4 + 20);
}

TEST(Interpreter, ActivationsAndSoftmax) {
  GraphBuilder b("acts");
  auto x = b.input({1, 4});
  auto y = b.softmax(b.tanh(b.relu(x)));
  graph::Graph g = b.build(y);
  Tensor input(Shape{1, 4}, {-1.0f, 0.0f, 1.0f, 2.0f});
  const auto out = Interpreter(g).run({{"input", input}});
  double sum = 0.0;
  for (int i = 0; i < 4; ++i) sum += out[0].at(i);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // ReLU zeroed the negatives, so the first two logits are equal.
  EXPECT_FLOAT_EQ(out[0].at(0), out[0].at(1));
  EXPECT_GT(out[0].at(3), out[0].at(2));
}

TEST(Interpreter, AddAndConcat) {
  GraphBuilder b("addcat");
  auto x = b.input({1, 1, 2, 2});
  auto r = b.relu(x, "r");
  auto s = b.sigmoid(x, "s");
  auto cat = b.concat({r, s}, "cat");
  graph::Graph g = b.build(cat);
  Tensor input(Shape{1, 1, 2, 2}, {0.0f, 1.0f, -1.0f, 2.0f});
  const auto out = Interpreter(g).run({{"input", input}});
  ASSERT_EQ(out[0].shape(), (Shape{1, 2, 2, 2}));
  EXPECT_FLOAT_EQ(out[0].at4(0, 0, 0, 1), 1.0f);                   // relu
  EXPECT_NEAR(out[0].at4(0, 1, 0, 1), 1.0 / (1.0 + std::exp(-1.0)), 1e-6);
}

TEST(Interpreter, BatchNormNormalizes) {
  GraphBuilder b("bn");
  auto x = b.input({1, 2, 1, 1});
  auto y = b.batchnorm(x, "bn");
  graph::Graph g = b.build(y);
  Tensor input(Shape{1, 2, 1, 1}, {4.0f, 8.0f});
  Tensor gamma(Shape{2}, {1.0f, 2.0f});
  Tensor beta(Shape{2}, {0.0f, 1.0f});
  Tensor mean(Shape{2}, {2.0f, 6.0f});
  Tensor var(Shape{2}, {4.0f, 1.0f});
  const auto out = Interpreter(g).run({{"input", input},
                                       {"bn.gamma", gamma},
                                       {"bn.beta", beta},
                                       {"bn.mean", mean},
                                       {"bn.var", var}});
  EXPECT_NEAR(out[0].at(0), (4.0 - 2.0) / 2.0, 1e-4);
  EXPECT_NEAR(out[0].at(1), 2.0 * (8.0 - 6.0) / 1.0 + 1.0, 1e-3);
}

TEST(Interpreter, DepthwiseConvPerChannelFilters) {
  // 2 channels, 1x1 depthwise kernels [2, 3]: channel c is scaled by its
  // own filter only.
  GraphBuilder b("dw");
  auto x = b.input({1, 2, 2, 2});
  auto y = b.dwconv2d(x, 1, 1, 0, false, "dw");
  graph::Graph g = b.build(y);
  Tensor input(Shape{1, 2, 2, 2},
               {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f, 8.0f});
  Tensor weight(Shape{2, 1, 1, 1}, {2.0f, 3.0f});
  const auto out =
      Interpreter(g).run({{"input", input}, {"dw.weight", weight}});
  EXPECT_FLOAT_EQ(out[0].at4(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out[0].at4(0, 0, 1, 1), 8.0f);
  EXPECT_FLOAT_EQ(out[0].at4(0, 1, 0, 0), 15.0f);
  EXPECT_FLOAT_EQ(out[0].at4(0, 1, 1, 1), 24.0f);
}

TEST(Interpreter, RectangularConvKernel) {
  // 1x3 all-ones kernel with pad (0,1): horizontal neighborhood sums.
  GraphBuilder b("rect");
  auto x = b.input({1, 1, 2, 3});
  auto y = b.conv2d_rect(x, 1, 1, 3, 1, 0, 1, false, "c");
  graph::Graph g = b.build(y);
  Tensor input(Shape{1, 1, 2, 3}, {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f});
  Tensor weight(Shape{1, 1, 1, 3}, {1.0f, 1.0f, 1.0f});
  const auto out =
      Interpreter(g).run({{"input", input}, {"c.weight", weight}});
  ASSERT_EQ(out[0].shape(), (Shape{1, 1, 2, 3}));
  EXPECT_FLOAT_EQ(out[0].at4(0, 0, 0, 0), 3.0f);   // 0+1+2
  EXPECT_FLOAT_EQ(out[0].at4(0, 0, 0, 1), 6.0f);   // 1+2+3
  EXPECT_FLOAT_EQ(out[0].at4(0, 0, 1, 2), 11.0f);  // 5+6+0
}

TEST(Interpreter, CeilModePoolClipsWindowToInput) {
  // 3x3 input, 2x2 max pool stride 2 with ceil: output 2x2, the last
  // windows clipped at the border.
  GraphBuilder b("ceil");
  auto x = b.input({1, 1, 3, 3});
  auto y = b.maxpool(x, 2, 2, 0, /*ceil_mode=*/true, "p");
  graph::Graph g = b.build(y);
  Tensor input(Shape{1, 1, 3, 3});
  for (int i = 0; i < 9; ++i) input.at(i) = static_cast<float>(i);
  const auto out = Interpreter(g).run({{"input", input}});
  ASSERT_EQ(out[0].shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out[0].at4(0, 0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out[0].at4(0, 0, 0, 1), 5.0f);
  EXPECT_FLOAT_EQ(out[0].at4(0, 0, 1, 1), 8.0f);
}

TEST(Interpreter, GlobalAvgPoolIsTheMean) {
  GraphBuilder b("gap");
  auto x = b.input({1, 2, 3, 3});
  auto y = b.global_avgpool(x, "gap");
  graph::Graph g = b.build(y);
  Tensor input(Shape{1, 2, 3, 3});
  for (int i = 0; i < 18; ++i) input.at(i) = static_cast<float>(i);
  const auto out = Interpreter(g).run({{"input", input}});
  ASSERT_EQ(out[0].shape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(out[0].at(0), 4.0f);   // mean of 0..8
  EXPECT_FLOAT_EQ(out[0].at(1), 13.0f);  // mean of 9..17
}

TEST(Interpreter, BatchGreaterThanOne) {
  GraphBuilder b("batch");
  auto x = b.input({2, 1, 2, 2});
  auto y = b.relu(b.maxpool(x, 2, 2, 0, false, "p"));
  graph::Graph g = b.build(y);
  Tensor input(Shape{2, 1, 2, 2},
               {-1.0f, 2.0f, 3.0f, 4.0f, -5.0f, -6.0f, -7.0f, -8.0f});
  const auto out = Interpreter(g).run({{"input", input}});
  ASSERT_EQ(out[0].shape(), (Shape{2, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0].at(0), 4.0f);
  EXPECT_FLOAT_EQ(out[0].at(1), 0.0f);  // max is negative, relu clamps
}

/// Runs `g` in reference mode and in optimized mode (1 and 4 threads) and
/// asserts the outputs are bit-identical.
void expect_modes_identical(const graph::Graph& g, const TensorMap& bind) {
  const auto ref =
      Interpreter(g, {ExecMode::kReference, 1}).run(bind);
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto opt =
        Interpreter(g, {ExecMode::kOptimized, threads}).run(bind);
    ASSERT_EQ(opt.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(Tensor::max_abs_diff(opt[i], ref[i]), 0.0);
  }
}

TEST(Interpreter, MaxPoolVeryNegativeWindow) {
  // Every window value is far below -1e30; a finite "identity" would leak
  // into the output, the true -inf identity cannot.
  GraphBuilder b("negpool");
  auto x = b.input({1, 1, 2, 2});
  graph::Graph g = b.build(b.maxpool(x, 2, 2, 0, false, "p"));
  Tensor input(Shape{1, 1, 2, 2}, {-1e32f, -2e32f, -3e32f, -4e32f});
  for (auto mode : {ExecMode::kReference, ExecMode::kOptimized}) {
    const auto out = Interpreter(g, {mode, 1}).run({{"input", input}});
    EXPECT_FLOAT_EQ(out[0].at(0), -1e32f);
  }
}

TEST(Interpreter, DepthwiseStride2PaddedMatchesReference) {
  GraphBuilder b("dw-s2");
  auto x = b.input({1, 3, 5, 5});
  graph::Graph g = b.build(b.dwconv2d(x, 3, 2, 1, true, "dw"));
  expect_modes_identical(
      g, {{"input", random_tensor(Shape{1, 3, 5, 5}, 42)}});
}

TEST(Interpreter, ConcatThreeInputs) {
  GraphBuilder b("cat3");
  auto x = b.input({1, 2, 3, 3});
  auto r = b.relu(x, "r");
  auto s = b.sigmoid(x, "s");
  auto t = b.tanh(x, "t");
  graph::Graph g = b.build(b.concat({r, s, t}, "cat"));
  const auto input = random_tensor(Shape{1, 2, 3, 3}, 7);
  const auto out =
      Interpreter(g, {ExecMode::kOptimized, 1}).run({{"input", input}});
  ASSERT_EQ(out[0].shape(), (Shape{1, 6, 3, 3}));
  // Channel blocks land in argument order.
  EXPECT_FLOAT_EQ(out[0].at4(0, 0, 1, 1),
                  std::max(0.0f, input.at4(0, 0, 1, 1)));
  EXPECT_FLOAT_EQ(out[0].at4(0, 4, 2, 2), std::tanh(input.at4(0, 0, 2, 2)));
  expect_modes_identical(g, {{"input", input}});
}

TEST(Interpreter, FusedResidualDagMatchesReference) {
  // Conv+BN+ReLU stacks, a residual Add with epilogue, Flatten and FC:
  // exercises every fused-kernel path the optimized engine has.
  GraphBuilder b("resdag");
  auto x = b.input({1, 3, 8, 8});
  auto c1 = b.relu(b.batchnorm(b.conv2d(x, 8, 3, 1, 1, false, "c1"), "bn1"));
  auto c2 = b.batchnorm(b.conv2d(c1, 8, 3, 1, 1, false, "c2"), "bn2");
  auto sum = b.relu(b.add(c2, c1, "sum"));
  auto head = b.fc(b.flatten(b.maxpool(sum, 2, 2), "flat"), 10, true, "fc");
  graph::Graph g = b.build(b.softmax(head));
  expect_modes_identical(
      g, {{"input", random_tensor(Shape{1, 3, 8, 8}, 11)}});
}

TEST(Interpreter, RunStatsReportLivenessSavings) {
  GraphBuilder b("stats");
  auto x = b.input({1, 4, 16, 16});
  auto c1 = b.relu(b.conv2d(x, 8, 3, 1, 1, true, "c1"));
  auto c2 = b.relu(b.conv2d(c1, 8, 3, 1, 1, true, "c2"));
  graph::Graph g = b.build(b.flatten(b.maxpool(c2, 2, 2), "flat"));
  const auto input = random_tensor(Shape{1, 4, 16, 16}, 3);

  RunStats stats;
  const auto out =
      Interpreter(g, {ExecMode::kOptimized, 1}).run({{"input", input}}, &stats);
  EXPECT_GT(stats.fused_groups, 0);
  EXPECT_GT(stats.moved_tensors, 0);  // Flatten moves, never copies
  EXPECT_GT(stats.released_bytes, 0);
  EXPECT_GE(stats.peak_resident_bytes, stats.final_resident_bytes);
  // Only the output survives to the end.
  EXPECT_EQ(stats.final_resident_bytes, out[0].bytes());
  // Liveness keeps the peak below "everything resident at once".
  std::int64_t all_bytes = 0;
  for (const auto& node : g.nodes())
    all_bytes += node.output.shape.elements() * 4;
  EXPECT_LT(stats.peak_resident_bytes, all_bytes);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i)
      hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SmallRangeRunsInlineAndSerialIsUsable) {
  // total < 2*grain executes on the caller; a 1-thread pool always does.
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(10, 20, 100, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 145);  // 10+11+...+19
  }
}

TEST(Interpreter, MissingInputBindingThrows) {
  GraphBuilder b("missing");
  auto x = b.input({1, 2});
  graph::Graph g = b.build(b.relu(x));
  EXPECT_THROW(Interpreter(g).run({}), ContractError);
}

TEST(Interpreter, ShapeMismatchThrows) {
  GraphBuilder b("badshape");
  auto x = b.input({1, 2});
  graph::Graph g = b.build(b.relu(x));
  Tensor wrong(Shape{1, 3});
  EXPECT_THROW(Interpreter(g).run({{"input", wrong}}), ContractError);
}

}  // namespace
}  // namespace lp::exec
