#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "check/invariants.h"
#include "cluster/fleet.h"
#include "cluster/hash_ring.h"
#include "cluster/router.h"
#include "common/check.h"
#include "core/offload_runtime.h"
#include "predict/load_predictor.h"

namespace lp::cluster {
namespace {

const core::PredictorBundle& bundle() {
  static const core::PredictorBundle b = core::train_default_predictors(1234);
  return b;
}

// --------------------------------------------------------- hash ring --

TEST(HashRing, PlacementIsDeterministicAcrossInstances) {
  HashRing a(64), b(64);
  for (std::size_t s = 0; s < 4; ++s) {
    a.add_server(s);
    b.add_server(s);
  }
  for (std::uint64_t key = 0; key < 500; ++key)
    EXPECT_EQ(a.place(key), b.place(key));
}

TEST(HashRing, PlacementIsIndependentOfJoinOrder) {
  HashRing forward(64), backward(64);
  for (std::size_t s = 0; s < 4; ++s) forward.add_server(s);
  for (std::size_t s = 4; s-- > 0;) backward.add_server(s);
  for (std::uint64_t key = 0; key < 500; ++key)
    EXPECT_EQ(forward.place(key), backward.place(key));
}

TEST(HashRing, JoinRemapsABoundedFractionOfKeys) {
  constexpr std::uint64_t kKeys = 2000;
  HashRing ring(64);
  for (std::size_t s = 0; s < 4; ++s) ring.add_server(s);
  std::vector<std::size_t> before(kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key)
    before[key] = ring.place(key);

  ring.add_server(4);
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::size_t now = ring.place(key);
    if (now != before[key]) {
      // A join only pulls keys toward the new server: nothing reshuffles
      // between the old ones.
      EXPECT_EQ(now, 4u);
      ++moved;
    }
  }
  // Expected movement is 1/5 of the key space; allow 2x for vnode
  // variance, and require the join moved *something*.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kKeys * 2 / 5);
}

TEST(HashRing, LeaveRemapsOnlyTheDepartedKeys) {
  constexpr std::uint64_t kKeys = 2000;
  HashRing ring(64);
  for (std::size_t s = 0; s < 4; ++s) ring.add_server(s);
  std::vector<std::size_t> before(kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key)
    before[key] = ring.place(key);

  ring.remove_server(2);
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::size_t now = ring.place(key);
    EXPECT_NE(now, 2u);
    if (before[key] != 2u) {
      // Keys not owned by the departed server stay put.
      EXPECT_EQ(now, before[key]);
    } else {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kKeys * 2 / 4);
}

TEST(HashRing, PlaceIfWalksPastDeadServers) {
  HashRing ring(64);
  for (std::size_t s = 0; s < 3; ++s) ring.add_server(s);
  for (std::uint64_t key = 0; key < 200; ++key) {
    const std::size_t home = ring.place(key);
    const std::size_t fallback =
        ring.place_if(key, [home](std::size_t s) { return s != home; });
    EXPECT_NE(fallback, home);
    // With every server alive, place_if agrees with place.
    EXPECT_EQ(ring.place_if(key, [](std::size_t) { return true; }), home);
  }
}

// ------------------------------------------------- migration harness --

struct PendingRequest {
  sim::Event done;
  double exec = 0.0;
  double overhead = 0.0;
  double queue_wait = 0.0;
  core::SuffixStatus suffix_status = core::SuffixStatus::kServed;

  explicit PendingRequest(sim::Simulator& sim) : done(sim) {}

  core::SuffixRequest request(std::uint64_t session, std::size_t p) {
    core::SuffixRequest r;
    r.p = p;
    r.done = &done;
    r.exec_seconds = &exec;
    r.overhead_seconds = &overhead;
    r.queue_wait_seconds = &queue_wait;
    r.status = &suffix_status;
    r.session = session;
    r.predicted_sec = 0.01;
    return r;
  }
};

/// Two frontends on one sim clock plus a router over them.
struct ClusterHarness {
  sim::Simulator sim;
  hw::GpuModel gpu;
  hw::GpuScheduler sched_a, sched_b;
  graph::Graph model;
  core::GraphCostProfile profile;
  serve::EdgeServerFrontend a, b;
  ClusterRouter router;

  explicit ClusterHarness(RouterParams params = {},
                          core::RuntimeParams runtime = {})
      : sched_a(sim),
        sched_b(sim),
        model(models::make_model("alexnet")),
        profile(model, bundle()),
        a(sim, sched_a, gpu, serve::FrontendParams{}, runtime, 99),
        b(sim, sched_b, gpu, serve::FrontendParams{}, runtime, 100),
        router(sim, {&a, &b}, params) {}
};

TEST(SessionMigration, RoundTripStateIsBitIdentical) {
  ClusterHarness h;
  const std::uint64_t s = h.router.open_session(h.profile);

  // Warm the session on A: several served requests populate the k window,
  // the partition cache, and (via record bookkeeping) the counters.
  std::vector<std::unique_ptr<PendingRequest>> reqs;
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(std::make_unique<PendingRequest>(h.sim));
    ASSERT_EQ(h.a.submit(reqs.back()->request(s, 5)),
              core::SubmitStatus::kAccepted);
  }
  h.sim.run_until(seconds(30));
  ASSERT_EQ(h.a.served(), 6u);
  ASSERT_GT(h.a.session_tracker(s).window_size(), 0u);
  ASSERT_GT(h.a.session_cache(s).size(), 0u);

  serve::SessionExport ex = h.a.export_session(s);
  EXPECT_TRUE(ex.jobs.empty());  // everything already served
  EXPECT_GT(ex.bytes, 0);
  const serve::SessionState original = ex.state;

  // The source session reset to fresh.
  EXPECT_EQ(h.a.session_tracker(s).window_size(), 0u);
  EXPECT_EQ(h.a.session_cache(s).size(), 0u);
  EXPECT_DOUBLE_EQ(h.a.session_k(s), 1.0);

  h.b.import_session(s, std::move(ex));

  // Export again from B: bit-identical to what left A, incrementally
  // maintained sums included.
  serve::SessionExport back = h.b.export_session(s);
  check::audit_equal(original, back.state);
}

TEST(SessionMigration, PredictorStateRoundTripsBitIdentical) {
  // A stateful forecaster (holt carries level + trend) must survive a live
  // migration exactly: the destination forecasts the same bits the source
  // would have.
  core::RuntimeParams runtime;
  runtime.predictor.kind = "holt";
  ClusterHarness h({}, runtime);
  const std::uint64_t s = h.router.open_session(h.profile);

  std::vector<std::unique_ptr<PendingRequest>> reqs;
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(std::make_unique<PendingRequest>(h.sim));
    ASSERT_EQ(h.a.submit(reqs.back()->request(s, 5)),
              core::SubmitStatus::kAccepted);
  }
  h.sim.run_until(seconds(30));
  ASSERT_GT(h.a.session_predictor(s).samples(), 0u);
  const double forecast_before = h.a.session_predictor(s).forecast(seconds(1));

  serve::SessionExport ex = h.a.export_session(s);
  const serve::SessionState original = ex.state;
  // Holt packs level + trend; the payload is charged to the wire.
  EXPECT_GT(predict::state_wire_bytes(original.predictor), 0);
  // The source predictor reset alongside the tracker it shadows.
  EXPECT_EQ(h.a.session_predictor(s).samples(), 0u);

  h.b.import_session(s, std::move(ex));
  check::audit_equal(original.predictor,
                     h.b.session_predictor(s).export_state());
  EXPECT_EQ(h.b.session_predictor(s).forecast(seconds(1)), forecast_before);

  serve::SessionExport back = h.b.export_session(s);
  check::audit_equal(original, back.state);
}

TEST(SessionMigration, MovesQueuedJobsWithoutLosingAny) {
  ClusterHarness h;
  const std::uint64_t s = h.router.open_session(h.profile);
  const std::uint64_t other = h.router.open_session(h.profile);

  // Fill A's queue: one job dispatches, the rest wait. A second session's
  // job interleaves to prove take_session only moves its own.
  std::vector<std::unique_ptr<PendingRequest>> reqs;
  for (int i = 0; i < 5; ++i) {
    reqs.push_back(std::make_unique<PendingRequest>(h.sim));
    ASSERT_EQ(h.a.submit(reqs.back()->request(s, 5)),
              core::SubmitStatus::kAccepted);
  }
  PendingRequest other_req(h.sim);
  ASSERT_EQ(h.a.submit(other_req.request(other, 5)),
            core::SubmitStatus::kAccepted);

  h.sim.spawn(h.router.migrate(s, 1));
  h.sim.run_until(seconds(60));

  // Every request completed as served — none dropped, none hung.
  for (const auto& r : reqs) {
    EXPECT_TRUE(r->done.triggered());
    EXPECT_EQ(r->suffix_status, core::SuffixStatus::kServed);
  }
  EXPECT_TRUE(other_req.done.triggered());

  // The binding moved, jobs were counted through the migration ledgers,
  // and the cluster conserves: nothing in transit after the run.
  EXPECT_EQ(h.router.binding(s).server, 1u);
  EXPECT_EQ(h.router.migrations(), 1u);
  EXPECT_GT(h.router.migrated_jobs(), 0u);
  EXPECT_EQ(h.router.in_transit_jobs(), 0u);
  EXPECT_EQ(h.a.migrated_out(), h.router.migrated_jobs());
  EXPECT_EQ(h.b.migrated_in(), h.router.migrated_jobs());
  EXPECT_GT(h.b.served(), 0u);
  EXPECT_EQ(h.a.served() + h.b.served(), 6u);
  check::audit(h.router);
}

TEST(SessionMigration, ImportIntoCrashedServerFailsJobsInsteadOfHanging) {
  ClusterHarness h;
  const std::uint64_t s = h.router.open_session(h.profile);

  std::vector<std::unique_ptr<PendingRequest>> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(std::make_unique<PendingRequest>(h.sim));
    ASSERT_EQ(h.a.submit(reqs.back()->request(s, 5)),
              core::SubmitStatus::kAccepted);
  }
  // The target dies while the payload is on the wire.
  h.sim.call_after(0, [&] { h.b.crash(); });
  h.sim.spawn(h.router.migrate(s, 1));
  h.sim.run_until(seconds(60));

  for (const auto& r : reqs) EXPECT_TRUE(r->done.triggered());
  // The in-flight job finished on A; the queued ones died typed, not hung.
  std::size_t failed = 0;
  for (const auto& r : reqs)
    if (r->suffix_status == core::SuffixStatus::kServerDown) ++failed;
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(h.router.in_transit_jobs(), 0u);
  check::audit(h.router);
}

TEST(SessionMigration, CrashTargetMidTransferRehomesAndSettles) {
  // Regression: the reroute loop used to skip every `migrating` session,
  // so a migration whose *target* crashed mid-transfer waited out the full
  // wire time and dumped its jobs into the corpse. The router must cancel
  // the transfer (epoch bump) and abort it back to the source instead.
  RouterParams params;
  params.heartbeat_period = milliseconds(100);
  params.migration_bandwidth = mbps(0.01);  // slow wire: ~1 s in transfer
  ClusterHarness h(params);
  const std::uint64_t s = h.router.open_session(h.profile);

  std::vector<std::unique_ptr<PendingRequest>> reqs;
  for (int i = 0; i < 5; ++i) {
    reqs.push_back(std::make_unique<PendingRequest>(h.sim));
    ASSERT_EQ(h.a.submit(reqs.back()->request(s, 5)),
              core::SubmitStatus::kAccepted);
  }
  h.router.start();
  h.sim.spawn(h.router.migrate(s, 1));
  // The target dies while the payload is on the wire; the next heartbeat
  // sees it and must cancel the in-flight transfer.
  h.sim.call_after(milliseconds(50), [&] { h.b.crash(); });
  h.sim.run_until(seconds(60));

  // Every job settled — served at the source, none stranded in transit,
  // none dumped into the crashed target.
  for (const auto& r : reqs) {
    EXPECT_TRUE(r->done.triggered());
    EXPECT_EQ(r->suffix_status, core::SuffixStatus::kServed);
  }
  EXPECT_EQ(h.router.binding(s).server, 0u);
  EXPECT_FALSE(h.router.binding(s).migrating);
  EXPECT_EQ(h.router.in_transit_jobs(), 0u);
  EXPECT_EQ(h.router.migrations_aborted(), 1u);
  EXPECT_EQ(h.b.served(), 0u);
  check::audit(h.router);
}

sim::Task oscillating_load(ClusterHarness& h, std::uint64_t session,
                           std::vector<std::unique_ptr<PendingRequest>>& reqs,
                           DurationNs period) {
  // Follow the binding: the burst always lands on the *current* home, so
  // whichever server holds the session is hot and the other cold — the
  // adversarial schedule that makes an undamped rebalancer ping-pong.
  for (;;) {
    const std::size_t home = h.router.binding(session).server;
    for (int i = 0; i < 3; ++i) {
      reqs.push_back(std::make_unique<PendingRequest>(h.sim));
      h.router.server(home).submit(reqs.back()->request(session, 5));
    }
    co_await h.sim.delay(period);
  }
}

TEST(Rebalancer, MinDwellBoundsMigrationsUnderOscillatingLoad) {
  RouterParams params;
  params.heartbeat_period = milliseconds(100);
  params.rebalance = true;
  params.skew_threshold_sec = 0.01;
  params.min_dwell = seconds(2);
  ClusterHarness h(params);
  const std::uint64_t s = h.router.open_session(h.profile);

  std::vector<std::unique_ptr<PendingRequest>> reqs;
  h.sim.spawn(oscillating_load(h, s, reqs, params.heartbeat_period));
  h.router.start();
  h.sim.run_until(seconds(10));  // 100 heartbeats

  // The skew flips back every time the session moves, so an undamped
  // rebalancer would migrate nearly every heartbeat (~100 moves). The
  // dwell pin bounds it to duration / min_dwell plus the first move.
  EXPECT_GE(h.router.migrations(), 2u);
  EXPECT_LE(h.router.migrations(), 6u);
  check::audit(h.router);
}

// ------------------------------------------------------- run_cluster --

ClusterConfig base_config(std::uint64_t seed) {
  ClusterConfig config;
  config.servers = 2;
  config.duration = seconds(20);
  config.warmup = seconds(5);
  config.seed = seed;
  config.router.heartbeat_period = milliseconds(250);
  serve::TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = 6;
  spec.policy = core::Policy::kNeurosurgeon;
  spec.upload = net::BandwidthTrace::constant(mbps(20));
  spec.download = net::BandwidthTrace::constant(mbps(20));
  spec.request_gap = milliseconds(3);
  config.tenants.push_back(spec);
  return config;
}

TEST(RunCluster, LeastLoadedColdStartRoundRobins) {
  ClusterConfig config = base_config(7);
  config.servers = 3;
  config.router.placement = Placement::kLeastLoaded;
  config.duration = seconds(2);
  config.warmup = seconds(0);
  const auto result = run_cluster(config, bundle());
  ASSERT_EQ(result.servers.size(), 3u);
  // 6 clients over 3 cold servers: every server admitted work (the cold
  // start spread 2-2-2 rather than piling onto server 0).
  for (const auto& s : result.servers) EXPECT_GT(s.admitted, 0u);
}

TEST(RunCluster, SameSeedRunsAreIdentical) {
  const ClusterConfig config = base_config(21);
  const auto a = run_cluster(config, bundle());
  const auto b = run_cluster(config, bundle());
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    const auto& ra = a.clients[i].records;
    const auto& rb = b.clients[i].records;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j].start, rb[j].start);
      EXPECT_EQ(ra[j].p, rb[j].p);
      EXPECT_DOUBLE_EQ(ra[j].total_sec, rb[j].total_sec);
      EXPECT_EQ(ra[j].outcome, rb[j].outcome);
    }
  }
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].admitted, b.servers[i].admitted);
    EXPECT_EQ(a.servers[i].served, b.servers[i].served);
    EXPECT_EQ(a.servers[i].migrated_in, b.servers[i].migrated_in);
    EXPECT_EQ(a.servers[i].migrated_out, b.servers[i].migrated_out);
  }
  EXPECT_EQ(a.heartbeats, b.heartbeats);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.migrated_jobs, b.migrated_jobs);
}

TEST(RunCluster, RebalancerMigratesUnderSkewAndConserves) {
  // Static hash placement lands the Zipf-hot clients unevenly; the
  // rebalancer must fire and the conservation audit must hold at every
  // beat (including mid-transfer).
  ClusterConfig config = base_config(3);
  config.router.placement = Placement::kConsistentHash;
  config.router.rebalance = true;
  config.router.skew_threshold_sec = 0.02;
  config.router.min_dwell = seconds(1);
  config.zipf_alpha = 1.2;
  config.tenants[0].clients = 8;
  config.tenants[0].request_gap = milliseconds(2);

  check::ClusterAuditor auditor;
  config.on_audit = std::ref(auditor);
  config.audit_period = milliseconds(200);

  const auto result = run_cluster(config, bundle());
  EXPECT_GT(auditor.audits(), 50u);
  EXPECT_GT(result.migrations, 0u);
  EXPECT_GT(result.migrated_jobs, 0u);

  // Zero loss across every move: no client request failed, and the
  // final snapshots still satisfy the cluster equation.
  EXPECT_EQ(result.summarize().failed(), 0u);
  std::uint64_t admitted = 0, settled = 0;
  for (const auto& s : result.servers) {
    admitted += s.admitted;
    settled += s.served + s.failed_jobs + s.queue_depth + s.inflight_jobs;
  }
  EXPECT_EQ(admitted, settled);
}

TEST(RunCluster, CrashRerouteKeepsSessionsServedElsewhere) {
  ClusterConfig config = base_config(13);
  config.router.placement = Placement::kLeastLoaded;
  config.duration = seconds(24);
  config.warmup = seconds(4);
  // Server 0 dies mid-run and comes back late; its sessions must fail
  // over to server 1 and keep completing requests (local_fallback rides
  // out the detection window without dropping anything).
  config.server_faults.resize(1);
  config.server_faults[0].server_crash(seconds(8), seconds(20));
  config.runtime.fault.rpc_timeout_sec = 0.5;
  config.runtime.fault.max_retries = 1;
  config.runtime.fault.local_fallback = true;

  check::ClusterAuditor auditor;
  config.on_audit = std::ref(auditor);

  const auto result = run_cluster(config, bundle());
  EXPECT_GT(auditor.audits(), 0u);
  EXPECT_GT(result.reroutes, 0u);
  const auto summary = result.summarize();
  EXPECT_EQ(summary.failed(), 0u);  // every request served or recovered
  // After the reroute, the surviving server carries new admissions.
  EXPECT_GT(result.servers[1].admitted, 0u);
}

}  // namespace
}  // namespace lp::cluster
