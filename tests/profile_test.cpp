#include <gtest/gtest.h>

#include <cstdio>

#include "common/check.h"
#include "models/zoo.h"
#include "profile/gbt_predictor.h"
#include "profile/model_store.h"
#include "profile/offline_profiler.h"
#include "profile/sampler.h"
#include "profile/trainer.h"

namespace lp::profile {
namespace {

using flops::Device;
using flops::ModelKind;

TEST(Sampler, ProducesWellFormedConfigs) {
  Rng rng(42);
  for (ModelKind kind : flops::all_model_kinds()) {
    SCOPED_TRACE(model_kind_name(kind));
    for (int i = 0; i < 50; ++i) {
      const auto cfg = sample_config(kind, rng);
      EXPECT_EQ(flops::model_kind(cfg.op), kind);
      EXPECT_GT(flops::flops_of(cfg), 0);
      // Features must be computable on both devices.
      EXPECT_FALSE(flops::features_of(cfg, Device::kUser).empty());
      EXPECT_FALSE(flops::features_of(cfg, Device::kEdge).empty());
    }
  }
}

TEST(Profiler, DeterministicGivenSeed) {
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  ProfilerParams params;
  params.samples_per_kind = 20;
  OfflineProfiler a(cpu, gpu, params), b(cpu, gpu, params);
  const auto sa = a.profile(ModelKind::kConv, Device::kUser);
  const auto sb = b.profile(ModelKind::kConv, Device::kUser);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_DOUBLE_EQ(sa[i].seconds, sb[i].seconds);
}

TEST(Profiler, MeasurementsNearGroundTruth) {
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  ProfilerParams params;
  params.samples_per_kind = 50;
  OfflineProfiler profiler(cpu, gpu, params);
  for (const auto& s : profiler.profile(ModelKind::kConv, Device::kUser)) {
    const double truth = to_seconds(cpu.node_time(s.cfg));
    EXPECT_NEAR(s.seconds, truth, truth * 0.2);
  }
}

TEST(Trainer, ReportsReasonableAccuracy) {
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  OfflineProfiler profiler(cpu, gpu, {});
  Trainer trainer;
  for (Device device : {Device::kUser, Device::kEdge}) {
    const auto samples = profiler.profile(ModelKind::kMatMul, device);
    const auto [model, report] = trainer.train(ModelKind::kMatMul, device,
                                               samples);
    EXPECT_TRUE(model.trained());
    // MatMul is nearly linear in its features: MAPE well under 50%.
    EXPECT_LT(report.mape, 0.5);
    EXPECT_GT(report.train_n, report.test_n);
  }
}

TEST(Trainer, PredictorCompleteAndPositive) {
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  ProfilerParams params;
  params.samples_per_kind = 120;
  OfflineProfiler profiler(cpu, gpu, params);
  Trainer trainer;
  std::vector<TrainReport> reports;
  const auto predictor =
      trainer.train_all(profiler, Device::kUser, &reports);
  EXPECT_TRUE(predictor.complete());
  EXPECT_EQ(reports.size(),
            static_cast<std::size_t>(flops::kNumModelKinds));
  Rng rng(5);
  for (ModelKind kind : flops::all_model_kinds()) {
    const auto cfg = sample_config(kind, rng);
    EXPECT_GE(predictor.predict_seconds(cfg), 0.0);
  }
}

TEST(Trainer, EdgePredictionsFasterThanUser) {
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  ProfilerParams params;
  params.samples_per_kind = 150;
  OfflineProfiler profiler(cpu, gpu, params);
  Trainer trainer;
  const auto user = trainer.train_all(profiler, Device::kUser);
  const auto edge = trainer.train_all(profiler, Device::kEdge);
  Rng rng(9);
  int user_slower = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    const auto cfg = sample_config(ModelKind::kConv, rng);
    ++total;
    if (user.predict_seconds(cfg) > edge.predict_seconds(cfg))
      ++user_slower;
  }
  EXPECT_GT(user_slower, total * 9 / 10);
}

TEST(GbtPredictor, TrainsAndPredictsAllKinds) {
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  ProfilerParams params;
  params.samples_per_kind = 150;
  OfflineProfiler profiler(cpu, gpu, params);
  std::vector<TrainReport> reports;
  const auto gbt = train_gbt_all(profiler, Device::kUser, &reports);
  EXPECT_EQ(reports.size(),
            static_cast<std::size_t>(flops::kNumModelKinds));
  Rng rng(5);
  for (ModelKind kind : flops::all_model_kinds()) {
    SCOPED_TRACE(model_kind_name(kind));
    ASSERT_NE(gbt.model(kind), nullptr);
    const auto cfg = sample_config(kind, rng);
    EXPECT_GT(gbt.predict_seconds(cfg), 0.0);
    // Reasonable accuracy on every kind (log-target fit).
    for (const auto& r : reports) {
      if (r.kind == kind) {
        EXPECT_LT(r.mape, 0.6);
      }
    }
  }
}

TEST(GbtPredictor, TracksGroundTruthOnZooConvs) {
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  OfflineProfiler profiler(cpu, gpu, {});
  const auto gbt = train_gbt_all(profiler, Device::kUser);
  const auto g = models::resnet18();
  double pred = 0.0, truth = 0.0;
  for (std::size_t i = 1; i <= g.n(); ++i) {
    const auto cfg = flops::config_of(g, g.backbone()[i]);
    pred += gbt.predict_seconds(cfg);
    truth += to_seconds(cpu.node_time(cfg));
  }
  EXPECT_NEAR(pred, truth, truth * 0.25);
}

TEST(ModelStore, SerializationRoundTrip) {
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  ProfilerParams params;
  params.samples_per_kind = 60;
  OfflineProfiler profiler(cpu, gpu, params);
  Trainer trainer;
  const auto predictor = trainer.train_all(profiler, Device::kEdge);

  const auto text = serialize_predictor(predictor);
  const auto loaded = deserialize_predictor(text, Device::kEdge);
  EXPECT_TRUE(loaded.complete());
  Rng rng(3);
  for (ModelKind kind : flops::all_model_kinds()) {
    const auto cfg = sample_config(kind, rng);
    EXPECT_DOUBLE_EQ(loaded.predict_seconds(cfg),
                     predictor.predict_seconds(cfg))
        << model_kind_name(kind);
  }
}

TEST(ModelStore, FileRoundTrip) {
  NodePredictor p(Device::kUser);
  p.set_model(ModelKind::kRelu, ml::LinearModel({1.5e-9}));
  const std::string path = ::testing::TempDir() + "/predictor.txt";
  save_predictor(p, path);
  const auto loaded = load_predictor(path, Device::kUser);
  ASSERT_NE(loaded.model(ModelKind::kRelu), nullptr);
  EXPECT_DOUBLE_EQ(loaded.model(ModelKind::kRelu)->coefficients()[0],
                   1.5e-9);
  std::remove(path.c_str());
}

TEST(ModelStore, MalformedInputThrows) {
  EXPECT_THROW(deserialize_predictor("99 1.0\n", Device::kUser),
               ContractError);
  EXPECT_THROW(deserialize_predictor("0\n", Device::kUser), ContractError);
}

TEST(ModelStore, MissingFileThrows) {
  EXPECT_THROW(load_predictor("/nonexistent/path.txt", Device::kUser),
               ContractError);
}

}  // namespace
}  // namespace lp::profile
