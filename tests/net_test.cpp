#include <gtest/gtest.h>

#include "net/bandwidth_trace.h"
#include "net/estimator.h"
#include "net/link.h"

namespace lp::net {
namespace {

TEST(BandwidthTrace, ConstantAndSteps) {
  const auto c = BandwidthTrace::constant(mbps(8));
  EXPECT_DOUBLE_EQ(c.bandwidth_at(0), mbps(8));
  EXPECT_DOUBLE_EQ(c.bandwidth_at(seconds(1000)), mbps(8));

  const BandwidthTrace t({{0, mbps(8)},
                          {seconds(10), mbps(4)},
                          {seconds(20), mbps(16)}});
  EXPECT_DOUBLE_EQ(t.bandwidth_at(seconds(5)), mbps(8));
  EXPECT_DOUBLE_EQ(t.bandwidth_at(seconds(10)), mbps(4));
  EXPECT_DOUBLE_EQ(t.bandwidth_at(seconds(15)), mbps(4));
  EXPECT_DOUBLE_EQ(t.bandwidth_at(seconds(25)), mbps(16));
}

TEST(BandwidthTrace, Fig6SweepShape) {
  const auto t = BandwidthTrace::fig6_sweep(seconds(30));
  ASSERT_EQ(t.steps().size(), 10u);
  EXPECT_DOUBLE_EQ(t.steps().front().bandwidth, mbps(8));
  EXPECT_DOUBLE_EQ(t.bandwidth_at(seconds(95)), mbps(1));   // the trough
  EXPECT_DOUBLE_EQ(t.steps().back().bandwidth, mbps(64));
}

TEST(BandwidthTrace, GilbertElliottAlternatesAndIsDeterministic) {
  const auto a = BandwidthTrace::gilbert_elliott(
      seconds(300), mbps(16), mbps(0.5), seconds(25), seconds(8), 7);
  const auto b = BandwidthTrace::gilbert_elliott(
      seconds(300), mbps(16), mbps(0.5), seconds(25), seconds(8), 7);
  ASSERT_EQ(a.steps().size(), b.steps().size());
  ASSERT_GE(a.steps().size(), 4u);  // several bursts in 300 s
  for (std::size_t i = 0; i < a.steps().size(); ++i) {
    EXPECT_EQ(a.steps()[i].at, b.steps()[i].at);
    EXPECT_DOUBLE_EQ(a.steps()[i].bandwidth, b.steps()[i].bandwidth);
    // Strictly alternating good/bad starting good.
    EXPECT_DOUBLE_EQ(a.steps()[i].bandwidth,
                     i % 2 == 0 ? mbps(16) : mbps(0.5));
  }
  // Different seeds give different burst boundaries.
  const auto c = BandwidthTrace::gilbert_elliott(
      seconds(300), mbps(16), mbps(0.5), seconds(25), seconds(8), 8);
  bool any_diff = c.steps().size() != a.steps().size();
  for (std::size_t i = 1; !any_diff && i < std::min(a.steps().size(),
                                                    c.steps().size());
       ++i)
    any_diff = a.steps()[i].at != c.steps()[i].at;
  EXPECT_TRUE(any_diff);
}

TEST(BandwidthTrace, GilbertElliottDwellMeansRoughlyRespected) {
  const auto t = BandwidthTrace::gilbert_elliott(
      seconds(100000), mbps(10), mbps(1), seconds(30), seconds(10), 3);
  double good_total = 0.0, bad_total = 0.0;
  for (std::size_t i = 0; i + 1 < t.steps().size(); ++i) {
    const double dwell =
        to_seconds(t.steps()[i + 1].at - t.steps()[i].at);
    (i % 2 == 0 ? good_total : bad_total) += dwell;
  }
  const double n = static_cast<double>(t.steps().size()) / 2.0;
  EXPECT_NEAR(good_total / n, 30.0, 3.0);
  EXPECT_NEAR(bad_total / n, 10.0, 1.5);
}

TEST(BandwidthTrace, RejectsBadInput) {
  EXPECT_THROW(BandwidthTrace({}), ContractError);
  EXPECT_THROW(BandwidthTrace({{0, -1.0}}), ContractError);
  EXPECT_THROW(BandwidthTrace({{seconds(5), mbps(1)}, {0, mbps(2)}}),
               ContractError);
}

// Zero bandwidth is legal: it is the blackout encoding (link.h failure
// contract), not a divide-by-zero hazard.
TEST(BandwidthTrace, ZeroBandwidthIsBlackoutNotError) {
  const BandwidthTrace t(
      {{0, mbps(8)}, {seconds(10), 0.0}, {seconds(20), mbps(4)}});
  EXPECT_DOUBLE_EQ(t.bandwidth_at(seconds(15)), 0.0);
  EXPECT_EQ(t.next_positive_at(seconds(5)), seconds(5));
  EXPECT_EQ(t.next_positive_at(seconds(15)), seconds(20));
  // A trace ending dark never recovers.
  const BandwidthTrace dead({{0, mbps(8)}, {seconds(10), 0.0}});
  EXPECT_EQ(dead.next_positive_at(seconds(15)), -1);
}

sim::Task do_upload(net::Link& link, std::int64_t bytes, DurationNs& out) {
  DurationNs measured = 0;
  co_await link.upload(bytes, &measured);
  out = measured;
}

TEST(Link, TransferTimeTracksBandwidth) {
  sim::Simulator sim;
  Link link(sim, BandwidthTrace::constant(mbps(8)),
            BandwidthTrace::constant(mbps(8)), milliseconds(2), 3);
  DurationNs measured = 0;
  sim.spawn(do_upload(link, 1'000'000, measured));  // 1 MB at 8 Mbps ~ 1 s
  sim.run();
  EXPECT_GT(to_seconds(measured), 0.8);
  EXPECT_LT(to_seconds(measured), 1.2);
}

TEST(Link, BandwidthChangeAffectsLaterTransfers) {
  sim::Simulator sim;
  const BandwidthTrace up({{0, mbps(8)}, {seconds(10), mbps(1)}});
  Link link(sim, up, BandwidthTrace::constant(mbps(8)), 0, 3);
  DurationNs early = 0, late = 0;
  sim.spawn(do_upload(link, 500'000, early));
  sim.call_after(seconds(12), [&] { sim.spawn(do_upload(link, 500'000, late)); });
  sim.run();
  EXPECT_GT(static_cast<double>(late) / static_cast<double>(early), 5.0);
}

TEST(Link, ZeroByteTransferCostsHalfRtt) {
  sim::Simulator sim;
  Link link(sim, BandwidthTrace::constant(mbps(8)),
            BandwidthTrace::constant(mbps(8)), milliseconds(4), 3);
  DurationNs measured = 0;
  sim.spawn(do_upload(link, 0, measured));
  sim.run();
  EXPECT_EQ(measured, milliseconds(2));
}

TEST(Estimator, SeededBeforeSamples) {
  BandwidthEstimator est(4, mbps(8));
  EXPECT_DOUBLE_EQ(est.estimate(), mbps(8));
  EXPECT_EQ(est.samples(), 0u);
}

TEST(Estimator, ConvergesToMeasuredBandwidth) {
  BandwidthEstimator est(4, mbps(8));
  // 1 Mbps transfers: 125000 bytes/s.
  for (int i = 0; i < 6; ++i) est.add_transfer(125'000, seconds(1));
  EXPECT_NEAR(est.estimate(), mbps(1), mbps(0.01));
}

TEST(Estimator, SlidingWindowForgetsOldRegime) {
  BandwidthEstimator est(4, mbps(8));
  for (int i = 0; i < 4; ++i) est.add_sample(mbps(1));
  for (int i = 0; i < 4; ++i) est.add_sample(mbps(64));
  EXPECT_NEAR(est.estimate(), mbps(64), mbps(0.5));
}

TEST(Estimator, ProbeSizeAdaptsAndClamps) {
  BandwidthEstimator est(4, mbps(8));
  const auto at8 = est.next_probe_bytes(milliseconds(25));
  EXPECT_NEAR(static_cast<double>(at8), 8e6 / 8 * 0.025, 2000);
  for (int i = 0; i < 4; ++i) est.add_sample(mbps(0.01));
  EXPECT_EQ(est.next_probe_bytes(), 1024);  // lower clamp
  for (int i = 0; i < 4; ++i) est.add_sample(mbps(10000));
  EXPECT_EQ(est.next_probe_bytes(), 256 * 1024);  // upper clamp
}

TEST(Estimator, RejectsNonPositive) {
  BandwidthEstimator est(4);
  EXPECT_THROW(est.add_sample(0.0), ContractError);
  EXPECT_THROW(est.add_transfer(0, seconds(1)), ContractError);
}

TEST(Estimator, ZeroDurationTransferDroppedNotFatal) {
  // The coarse simulated clock can round a tiny probe's transfer time down
  // to 0 ns; such a sample carries no bandwidth information (it would
  // divide to infinity), so it is dropped — not treated as a contract
  // violation that crashes the client mid-inference.
  BandwidthEstimator est(4, mbps(8));
  EXPECT_NO_THROW(est.add_transfer(1024, 0));
  EXPECT_DOUBLE_EQ(est.estimate(), mbps(8));  // still the seed estimate
  EXPECT_THROW(est.add_transfer(1024, -1), ContractError);
}

}  // namespace
}  // namespace lp::net
