#include <gtest/gtest.h>

#include <cmath>

#include "core/runtime_profiler.h"
#include "hw/cpu_model.h"
#include "hw/gpu_model.h"
#include "hw/gpu_scheduler.h"
#include "hw/load_generator.h"
#include "models/zoo.h"

namespace lp::hw {
namespace {

TEST(CpuModel, CalibrationTargetsFromThePaper) {
  const CpuModel cpu;
  // VGG16 local inference ~5.2 s on the Raspberry Pi (Section V-C).
  const double vgg = to_seconds(cpu.graph_time(models::vgg16()));
  EXPECT_GT(vgg, 4.0);
  EXPECT_LT(vgg, 6.5);
  // Xception local ~1.8 s in the paper; our graph carries somewhat more
  // pointwise-conv work, landing slightly above (see EXPERIMENTS.md).
  const double xcp = to_seconds(cpu.graph_time(models::xception()));
  EXPECT_GT(xcp, 1.2);
  EXPECT_LT(xcp, 2.8);
  // AlexNet local: a few hundred ms.
  const double alex = to_seconds(cpu.graph_time(models::alexnet()));
  EXPECT_GT(alex, 0.15);
  EXPECT_LT(alex, 0.8);
}

TEST(CpuModel, MonotoneInSegment) {
  const CpuModel cpu;
  const auto g = models::alexnet();
  double prev = 0.0;
  for (std::size_t p = 1; p <= g.n(); ++p) {
    const double t = to_seconds(cpu.segment_time(g, 0, p));
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(CpuModel, NodeTimePositiveForComputeNodes) {
  const CpuModel cpu;
  const auto g = models::resnet50();
  for (std::size_t i = 1; i < g.backbone().size(); ++i) {
    const auto cfg = flops::config_of(g, g.backbone()[i]);
    EXPECT_GT(cpu.node_time(cfg), 0) << g.node(g.backbone()[i]).name;
  }
}

TEST(GpuModel, ServerFarFasterThanDevice) {
  const CpuModel cpu;
  const GpuModel gpu;
  for (const char* name : {"alexnet", "vgg16", "resnet50"}) {
    const auto g = models::make_model(name);
    const double dev = to_seconds(cpu.graph_time(g));
    const double srv =
        to_seconds(gpu.segment_time(g, 0, g.backbone().size() - 1));
    EXPECT_GT(dev / srv, 10.0) << name;  // the Pi-vs-T4 gap
  }
}

TEST(GpuModel, ServerComputeNegligibleVsUpload8Mbps) {
  // Figure 1's premise: at 8 Mbps, uploading the AlexNet input costs far
  // more than the whole inference on an idle server.
  const GpuModel gpu;
  const auto g = models::alexnet();
  const double upload =
      static_cast<double>(g.input_desc().bytes()) * 8.0 / mbps(8);
  const double srv =
      to_seconds(gpu.segment_time(g, 0, g.backbone().size() - 1));
  EXPECT_GT(upload / srv, 20.0);
}

TEST(GpuModel, SingleKernelShorterThanTimeSlice) {
  // Section III-C relies on single layers finishing inside a 2 ms slice.
  const GpuModel gpu;
  const GpuSchedulerParams sched;
  const auto g = models::vgg16();
  for (std::size_t i = 1; i < g.backbone().size(); ++i) {
    const auto t = gpu.kernel_time(flops::config_of(g, g.backbone()[i]));
    EXPECT_LT(to_seconds(t), sched.time_slice_sec)
        << g.node(g.backbone()[i]).name;
  }
}

TEST(GpuScheduler, SingleJobRunsImmediately) {
  sim::Simulator sim;
  GpuSchedulerParams params;
  params.context_switch_sec = 0.0;
  GpuScheduler sched(sim, params);
  const auto ctx = sched.create_context("t");
  TimeNs done_at = 0;
  auto runner = [](sim::Simulator& s, GpuScheduler& g,
                   GpuScheduler::ContextId c,
                   TimeNs& out) -> sim::Task {
    std::vector<DurationNs> kernels{milliseconds(1), milliseconds(2)};
    co_await g.run_job(c, std::move(kernels));
    out = s.now();
  };
  sim.spawn(runner(sim, sched, ctx, done_at));
  sim.run();
  EXPECT_EQ(done_at, milliseconds(3));
  EXPECT_EQ(sched.busy_ns(), milliseconds(3));
  EXPECT_EQ(sched.completed_kernels(), 2u);
  EXPECT_EQ(sched.completed_jobs(), 1u);
}

TEST(GpuScheduler, RoundRobinInterleavesContexts) {
  sim::Simulator sim;
  GpuSchedulerParams params;
  params.context_switch_sec = 0.0;
  GpuScheduler sched(sim, params);
  const auto a = sched.create_context("a");
  const auto b = sched.create_context("b");

  TimeNs a_done = 0, b_done = 0;
  auto runner = [](GpuScheduler& g, GpuScheduler::ContextId c,
                   std::vector<DurationNs> ks, sim::Simulator& s,
                   TimeNs& out) -> sim::Task {
    co_await g.run_job(c, std::move(ks));
    out = s.now();
  };
  // Each job: 4 kernels x 1 ms = 4 ms; slice = 2 ms. With round robin both
  // finish around 7-8 ms instead of 4 then 8.
  std::vector<DurationNs> ks(4, milliseconds(1));
  sim.spawn(runner(sched, a, ks, sim, a_done));
  sim.spawn(runner(sched, b, ks, sim, b_done));
  sim.run();
  EXPECT_EQ(std::max(a_done, b_done), milliseconds(8));
  EXPECT_GE(std::min(a_done, b_done), milliseconds(6));
}

TEST(GpuScheduler, NonPreemptiveKernelOverrunsSlice) {
  sim::Simulator sim;
  GpuSchedulerParams params;
  params.context_switch_sec = 0.0;
  GpuScheduler sched(sim, params);
  const auto a = sched.create_context("a");
  const auto b = sched.create_context("b");

  TimeNs b_done = 0;
  auto runner = [](GpuScheduler& g, GpuScheduler::ContextId c,
                   std::vector<DurationNs> ks, sim::Simulator& s,
                   TimeNs& out) -> sim::Task {
    co_await g.run_job(c, std::move(ks));
    out = s.now();
  };
  TimeNs a_done = 0;
  // A single 10 ms kernel cannot be preempted by the 2 ms slice.
  sim.spawn(runner(sched, a, {milliseconds(10)}, sim, a_done));
  sim.spawn(runner(sched, b, {milliseconds(1)}, sim, b_done));
  sim.run();
  EXPECT_EQ(a_done, milliseconds(10));
  EXPECT_EQ(b_done, milliseconds(11));
}

TEST(GpuScheduler, BusyTimeConservation) {
  sim::Simulator sim;
  GpuScheduler sched(sim);
  const auto a = sched.create_context("a");
  auto runner = [](GpuScheduler& g, GpuScheduler::ContextId c,
                   std::vector<DurationNs> ks) -> sim::Task {
    co_await g.run_job(c, std::move(ks));
  };
  DurationNs total = 0;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::vector<DurationNs> ks;
    for (int j = 0; j < 5; ++j) {
      ks.push_back(microseconds(static_cast<double>(rng.uniform_int(10, 500))));
      total += ks.back();
    }
    sim.spawn(runner(sched, a, std::move(ks)));
  }
  sim.run();
  EXPECT_EQ(sched.busy_ns(), total);
  EXPECT_EQ(sched.pending_kernels(), 0u);
}

TEST(GpuScheduler, RotationWaitMatchesFairShareFormula) {
  // 7 always-busy background contexts and a foreground job of total
  // duration T: with 2 ms slices and fair round-robin, the foreground
  // finishes in about T + ceil(T / slice) * 7 * (slice + switch).
  sim::Simulator sim;
  const GpuSchedulerParams params;  // 2 ms slice, 20 us switch
  GpuScheduler sched(sim, params);

  auto hog = [](GpuScheduler& g, GpuScheduler::ContextId c) -> sim::Task {
    for (;;) {
      std::vector<DurationNs> ks(40, microseconds(500));  // 20 ms of work
      co_await g.run_job(c, std::move(ks));
    }
  };
  for (int i = 0; i < kBackgroundProcesses; ++i)
    sim.spawn(hog(sched, sched.create_context("bg" + std::to_string(i))));

  const auto fg = sched.create_context("fg");
  TimeNs started = 0, finished = 0;
  auto fg_job = [](sim::Simulator& s, GpuScheduler& g,
                   GpuScheduler::ContextId c, TimeNs& t0,
                   TimeNs& t1) -> sim::Task {
    co_await s.delay(milliseconds(50));  // let the hogs saturate
    t0 = s.now();
    std::vector<DurationNs> ks(20, microseconds(300));  // T = 6 ms
    co_await g.run_job(c, std::move(ks));
    t1 = s.now();
  };
  sim.spawn(fg_job(sim, sched, fg, started, finished));
  sim.run_until(seconds(2));

  const double T = 6e-3;
  const double rotation =
      kBackgroundProcesses * (params.time_slice_sec +
                              params.context_switch_sec);
  const double expected = T + std::ceil(T / params.time_slice_sec) *
                                  rotation;
  const double measured = to_seconds(finished - started);
  EXPECT_NEAR(measured, expected, expected * 0.25);
  // And the inflation factor is near 1 + #background, the structural cap.
  EXPECT_NEAR(measured / T, 1.0 + kBackgroundProcesses,
              0.35 * (1.0 + kBackgroundProcesses));
}

TEST(GpuScheduler, ContextSwitchCostAccrues) {
  sim::Simulator sim;
  GpuSchedulerParams params;
  params.context_switch_sec = 1e-3;  // exaggerated for visibility
  GpuScheduler sched(sim, params);
  const auto a = sched.create_context("a");
  const auto b = sched.create_context("b");
  TimeNs a_done = 0, b_done = 0;
  auto runner = [](GpuScheduler& g, GpuScheduler::ContextId c,
                   std::vector<DurationNs> ks, sim::Simulator& s,
                   TimeNs& out) -> sim::Task {
    co_await g.run_job(c, std::move(ks));
    out = s.now();
  };
  // 2x 4 ms jobs, 2 ms slices: switches a->b->a->b plus the initial one.
  std::vector<DurationNs> ks(2, milliseconds(2));
  sim.spawn(runner(sched, a, ks, sim, a_done));
  sim.spawn(runner(sched, b, ks, sim, b_done));
  sim.run();
  // 8 ms of work + 4 switches x 1 ms.
  EXPECT_EQ(std::max(a_done, b_done), milliseconds(12));
}

TEST(GpuScheduler, RejectsEmptyJobAndBadContext) {
  sim::Simulator sim;
  GpuScheduler sched(sim);
  const auto ctx = sched.create_context("x");
  EXPECT_THROW((void)sched.run_job(ctx, {}), ContractError);
  EXPECT_THROW((void)sched.run_job(ctx + 1, {1}), ContractError);
}

class LoadLevelTest : public ::testing::TestWithParam<LoadLevel> {};

TEST_P(LoadLevelTest, GeneratorHitsUtilizationTarget) {
  const LoadLevel level = GetParam();
  sim::Simulator sim;
  GpuScheduler sched(sim);
  const GpuModel gpu;
  LoadGenerator load(sim, sched, gpu, 77);
  load.set_level(level);
  load.start();
  core::UtilizationMonitor monitor(sim, sched, seconds(1));
  monitor.start();
  sim.run_until(seconds(20));

  const double target = target_utilization(level);
  const double measured = monitor.mean();
  if (level == LoadLevel::k0) {
    EXPECT_LT(measured, 0.02);
  } else if (target < 1.0) {
    EXPECT_NEAR(measured, target, 0.12);
  } else {
    EXPECT_GT(measured, 0.93);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, LoadLevelTest,
                         ::testing::ValuesIn(all_load_levels()),
                         [](const auto& info) {
                           switch (info.param) {
                             case LoadLevel::k0: return "util0";
                             case LoadLevel::k30: return "util30";
                             case LoadLevel::k50: return "util50";
                             case LoadLevel::k70: return "util70";
                             case LoadLevel::k90: return "util90";
                             case LoadLevel::k100l: return "util100l";
                             case LoadLevel::k100h: return "util100h";
                           }
                           return "unknown";
                         });

TEST(LoadGenerator, HeavyLoadQueuesDeeperThanLight) {
  // 100%(l) and 100%(h) both saturate, but (h) keeps far more kernels
  // outstanding — the distinction Section II draws.
  auto pending_at_end = [](LoadLevel level) {
    sim::Simulator sim;
    GpuScheduler sched(sim);
    const GpuModel gpu;
    LoadGenerator load(sim, sched, gpu, 7);
    load.set_level(level);
    load.start();
    sim.run_until(seconds(10));
    return sched.pending_kernels();
  };
  EXPECT_GT(pending_at_end(LoadLevel::k100h),
            4 * pending_at_end(LoadLevel::k100l));
}

}  // namespace
}  // namespace lp::hw
