#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/check.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace lp {
namespace {

TEST(Check, ThrowsContractErrorWithLocation) {
  try {
    LP_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) { LP_CHECK(2 + 2 == 4); }

TEST(Units, Conversions) {
  EXPECT_EQ(seconds(1.5), 1'500'000'000);
  EXPECT_EQ(milliseconds(2.0), 2'000'000);
  EXPECT_EQ(microseconds(3.0), 3'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(42.0)), 42.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(17.0)), 17.0);
}

TEST(Units, TransferTime) {
  // 1 MB at 8 Mbps = 1 second.
  EXPECT_EQ(transfer_time(1'000'000, mbps(8)), kNsPerSec);
  // 0 bytes transfer instantly.
  EXPECT_EQ(transfer_time(0, mbps(1)), 0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.2);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.fork();
  // Streams should not be trivially identical.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, EmptyBehaviour) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_THROW(s.min(), ContractError);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.latest(), 10.0);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow(0), ContractError);
}

TEST(Percentile, InterpolatesAndClamps) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

TEST(Percentile, ClampsOutOfRangeQuantiles) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);    // clamped to q = 0
  EXPECT_DOUBLE_EQ(percentile(v, 250), 4.0);    // clamped to q = 100
  EXPECT_DOUBLE_EQ(percentile({7.0}, 90), 7.0); // single sample
}

TEST(Percentile, RejectsEmptyAndNan) {
  EXPECT_THROW(percentile({}, 50), ContractError);
  EXPECT_THROW(percentile({1.0, 2.0}, std::nan("")), ContractError);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const auto text = t.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.5"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Logging, LevelFilteringAndRestore) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  LP_ERROR << "suppressed";  // must not crash and must be filtered
  set_log_level(LogLevel::kDebug);
  LP_DEBUG << "emitted at debug level " << 42;
  set_log_level(before);
  EXPECT_EQ(log_level(), before);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string dir = ::testing::TempDir();
  {
    CsvWriter csv(dir, "lp_csv_test", {"a", "b"});
    csv.add_row({"1", "2"});
    csv.add_row({"3.5", "x"});
  }
  std::ifstream in(dir + "/lp_csv_test.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,x");
  std::remove((dir + "/lp_csv_test.csv").c_str());
}

TEST(Csv, RejectsBadRowsAndPaths) {
  const std::string dir = ::testing::TempDir();
  CsvWriter csv(dir, "lp_csv_test2", {"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), ContractError);
  EXPECT_THROW(csv.add_row({"with,comma", "x"}), ContractError);
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz", "f", {"a"}),
               ContractError);
  std::remove((dir + "/lp_csv_test2.csv").c_str());
}

}  // namespace
}  // namespace lp
