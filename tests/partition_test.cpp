#include <gtest/gtest.h>

#include "common/check.h"
#include "exec/interpreter.h"
#include "graph/cut.h"
#include "models/zoo.h"
#include "partition/cache.h"
#include "partition/partitioner.h"

namespace lp::partition {
namespace {

using exec::Interpreter;
using exec::Tensor;
using exec::TensorMap;

/// Runs the device segment, ships its outputs by name, runs the server
/// segment, and compares against whole-graph execution.
void check_partition_equivalence(const graph::Graph& g, std::size_t p,
                                 std::uint64_t seed) {
  SCOPED_TRACE("p=" + std::to_string(p));
  const auto input = exec::random_tensor(g.input_desc().shape, seed);
  const auto whole = Interpreter(g).run(
      {{g.node(g.input_id()).name, input}});

  const auto plan = partition_at(g, p);
  EXPECT_EQ(plan.p, p);

  std::vector<Tensor> final_out;
  if (!plan.server_part.has_value()) {
    // Local inference.
    ASSERT_TRUE(plan.device_part.has_value());
    final_out = Interpreter(*plan.device_part)
                    .run({{g.node(g.input_id()).name, input}});
  } else {
    TensorMap boundary_bind;
    if (plan.device_part.has_value()) {
      Interpreter device(*plan.device_part);
      const auto produced =
          device.run({{g.node(g.input_id()).name, input}});
      const auto names = device.output_names();
      ASSERT_EQ(produced.size(), names.size());
      ASSERT_EQ(names, plan.boundary);
      std::int64_t shipped = 0;
      for (std::size_t i = 0; i < names.size(); ++i) {
        shipped += produced[i].elements() * 4;
        boundary_bind.emplace(names[i], produced[i]);
      }
      EXPECT_EQ(shipped, plan.boundary_bytes);
    } else {
      // p = 0: the raw input crosses the link.
      boundary_bind.emplace(g.node(g.input_id()).name, input);
      EXPECT_EQ(plan.boundary_bytes, g.input_desc().bytes());
    }
    final_out = Interpreter(*plan.server_part).run(boundary_bind);
  }

  ASSERT_EQ(final_out.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i)
    EXPECT_LE(Tensor::max_abs_diff(final_out[i], whole[i]), 1e-5);
}

graph::Graph tiny_dag() {
  graph::GraphBuilder b("tinydag");
  auto x = b.input({1, 2, 6, 6});
  auto c1 = b.conv2d(x, 4, 3, 1, 1, true, "c1");
  auto r1 = b.relu(c1, "r1");
  auto left = b.conv2d(r1, 4, 3, 1, 1, true, "left");
  auto right = b.conv2d(r1, 4, 3, 1, 1, true, "right");
  auto sum = b.add(b.relu(left, "lr"), b.relu(right, "rr"), "sum");
  auto pooled = b.maxpool(sum, 2, 2, 0, false, "pool");
  auto flat = b.flatten(pooled, "flat");
  return b.build(b.fc(flat, 5, true, "head"));
}

TEST(Partitioner, EveryCutOfTinyDagIsEquivalent) {
  const auto g = tiny_dag();
  for (std::size_t p = 0; p <= g.n(); ++p)
    check_partition_equivalence(g, p, 1000 + p);
}

TEST(Partitioner, AlexNetSelectedCuts) {
  const auto g = models::alexnet();
  for (std::size_t p : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                        std::size_t{19}, g.n() - 1, g.n()})
    check_partition_equivalence(g, p, 7);
}

TEST(Partitioner, SqueezeNetCutsIncludingBlockInterior) {
  const auto g = models::squeezenet();
  // One boundary cut, one block-interior cut (multiple boundary tensors),
  // full offload and local.
  std::size_t interior = 0;
  for (std::size_t p = 1; p < g.n(); ++p)
    if (graph::cut_inside_block(g, p)) {
      interior = p;
      break;
    }
  ASSERT_GT(interior, 0u);
  for (std::size_t p : {std::size_t{0}, interior, g.n()})
    check_partition_equivalence(g, p, 99);
}

TEST(Partitioner, InteriorCutShipsMultipleTensors) {
  const auto g = models::squeezenet();
  std::size_t interior = 0;
  for (std::size_t p = 1; p < g.n(); ++p)
    if (graph::cut_inside_block(g, p)) {
      interior = p;
      break;
    }
  const auto plan = partition_at(g, interior);
  EXPECT_GT(plan.boundary.size(), 1u);
  EXPECT_EQ(plan.boundary_bytes, graph::cut_size_at(g, interior));
}

TEST(Partitioner, BoundaryBytesMatchCutSizes) {
  const auto g = models::resnet18();
  const auto s = graph::cut_sizes(g);
  for (std::size_t p : {std::size_t{0}, std::size_t{5}, g.n() / 2}) {
    const auto plan = partition_at(g, p);
    EXPECT_EQ(plan.boundary_bytes, s[p]) << "p=" << p;
  }
}

TEST(Partitioner, OutOfRangeThrows) {
  const auto g = tiny_dag();
  EXPECT_THROW(partition_at(g, g.n() + 1), ContractError);
}

TEST(Partitioner, SegmentGraphsValidate) {
  const auto g = models::resnet18();
  const auto plan = partition_at(g, g.n() / 3);
  ASSERT_TRUE(plan.device_part.has_value());
  ASSERT_TRUE(plan.server_part.has_value());
  plan.device_part->validate();
  plan.server_part->validate();
  // The server segment has no Input node; boundaries are Parameters.
  EXPECT_EQ(plan.server_part->input_id(), graph::kInvalidNode);
}

TEST(Cache, HitMissEvictionAccounting) {
  const auto g = tiny_dag();
  PartitionCache cache(2);
  EXPECT_EQ(cache.find(1), nullptr);  // miss
  cache.insert(partition_at(g, 1));
  cache.insert(partition_at(g, 2));
  EXPECT_NE(cache.find(1), nullptr);  // hit, refreshes 1
  cache.insert(partition_at(g, 3));   // evicts 2 (LRU)
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NEAR(cache.hit_rate(), 0.5, 1e-12);
}

TEST(Cache, ReinsertReplacesInPlace) {
  const auto g = tiny_dag();
  PartitionCache cache(2);
  cache.insert(partition_at(g, 1));
  cache.insert(partition_at(g, 1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(Cache, RejectsZeroCapacity) {
  EXPECT_THROW(PartitionCache(0), ContractError);
}

TEST(Cache, ClearResetsEntriesKeepsStats) {
  const auto g = tiny_dag();
  PartitionCache cache(4);
  cache.insert(partition_at(g, 0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(0), nullptr);
}

}  // namespace
}  // namespace lp::partition
