// Random computation-graph generator for property tests.
//
// Thin forwarding shim: the generator itself moved to check/generators.h so
// the property tests and the differential/fuzz harness draw from the same
// distribution (same seed -> same graph in both).
#pragma once

#include "check/generators.h"
#include "graph/graph.h"

namespace lp::test {

using RandomGraphOptions = check::GraphGenOptions;

/// Builds a random DAG; the distribution covers chains, 2-way residual
/// blocks and 2-way concat blocks with conv/pool/activation/bn bodies.
inline graph::Graph random_graph(std::uint64_t seed,
                                 RandomGraphOptions options = {}) {
  return check::random_graph(seed, options);
}

}  // namespace lp::test
