// Random computation-graph generator for property tests.
//
// Produces small, well-formed DAGs mixing chains, residual forks (Add),
// and concat branches, with realistic-but-tiny shapes so the reference
// interpreter stays fast. Deterministic given the seed.
#pragma once

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace lp::test {

struct RandomGraphOptions {
  int min_blocks = 2;
  int max_blocks = 6;
  std::int64_t spatial = 8;  // starting H=W
  std::int64_t channels = 4;
};

/// Builds a random DAG; the distribution covers chains, 2-way residual
/// blocks and 2-way concat blocks with conv/pool/activation/bn bodies.
inline graph::Graph random_graph(std::uint64_t seed,
                                 RandomGraphOptions options = {}) {
  Rng rng(seed);
  graph::GraphBuilder b("random_" + std::to_string(seed));
  auto x = b.input({1, options.channels, options.spatial, options.spatial});

  auto activation = [&](graph::NodeId id) {
    switch (rng.uniform_int(0, 3)) {
      case 0:
        return b.relu(id);
      case 1:
        return b.sigmoid(id);
      case 2:
        return b.tanh(id);
      default:
        return id;  // no activation
    }
  };

  const int blocks = static_cast<int>(
      rng.uniform_int(options.min_blocks, options.max_blocks));
  for (int i = 0; i < blocks; ++i) {
    const auto c = b.desc(x).shape.c();
    switch (rng.uniform_int(0, 3)) {
      case 0: {  // plain conv chain
        x = b.conv2d(x, c, 3, 1, 1, rng.bernoulli(0.5));
        x = activation(x);
        break;
      }
      case 1: {  // residual fork
        auto y = b.conv2d(x, c, 3, 1, 1, false);
        y = b.batchnorm(y);
        y = activation(y);
        x = b.add(y, x);
        break;
      }
      case 2: {  // concat fork (doubles channels)
        auto l = b.conv2d(x, c, 1, 1, 0, true);
        auto r = b.conv2d(x, c, 3, 1, 1, true);
        x = b.concat({activation(l), activation(r)});
        break;
      }
      default: {  // pool (only while the map is big enough)
        if (b.desc(x).shape.h() >= 4) {
          x = rng.bernoulli(0.5) ? b.maxpool(x, 2, 2) : b.avgpool(x, 2, 2);
        } else {
          x = b.relu(x);
        }
        break;
      }
    }
  }
  if (rng.bernoulli(0.5)) {
    x = b.flatten(x);
    x = b.fc(x, 1 + static_cast<std::int64_t>(rng.uniform_int(1, 8)));
  }
  return b.build(x);
}

}  // namespace lp::test
