// Partition-tolerant control plane: failure detection, epoch fencing,
// exactly-once migration, and chaos-schedule survival.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/generators.h"
#include "check/invariants.h"
#include "cluster/control_link.h"
#include "cluster/failure_detector.h"
#include "cluster/fleet.h"
#include "common/check.h"
#include "models/zoo.h"

namespace lp::cluster {
namespace {

const core::PredictorBundle& bundle() {
  static const core::PredictorBundle b = core::train_default_predictors(1234);
  return b;
}

// ------------------------------------------------- failure detector --

TEST(FailureDetector, DeadlineModeWalksAliveSuspectDead) {
  DetectorParams params;
  params.mode = DetectorParams::Mode::kDeadline;
  params.suspect_misses = 2;
  params.dead_misses = 4;
  FailureDetector detector(2, params, milliseconds(100));
  detector.arm(0);

  // Server 1 heartbeats on schedule; server 0 goes silent from the start.
  detector.heartbeat(1, milliseconds(100), true);
  detector.tick(milliseconds(150));
  EXPECT_EQ(detector.health(0), Health::kAlive);  // one miss: benign
  detector.tick(milliseconds(250));
  EXPECT_EQ(detector.health(0), Health::kSuspect);
  EXPECT_FALSE(detector.usable(0));
  EXPECT_FALSE(detector.dead(0));
  detector.tick(milliseconds(450));
  EXPECT_EQ(detector.health(0), Health::kDead);
  EXPECT_EQ(detector.health(1), Health::kSuspect);  // silent since 100ms
  EXPECT_EQ(detector.deaths(), 1u);
  ASSERT_EQ(detector.death_events().size(), 1u);
  EXPECT_EQ(detector.death_events()[0].first, 0u);

  // A delivered heartbeat resurrects instantly — suspicion was only ever
  // about lost messages, not a verdict.
  detector.heartbeat(0, milliseconds(500), true);
  EXPECT_EQ(detector.health(0), Health::kAlive);
}

TEST(FailureDetector, PhiModeAccruesWithTheGap) {
  DetectorParams params;
  params.mode = DetectorParams::Mode::kPhi;
  params.suspect_phi = 1.0;
  params.dead_phi = 2.0;
  FailureDetector detector(1, params, milliseconds(100));
  detector.arm(0);
  for (int i = 1; i <= 5; ++i)
    detector.heartbeat(0, milliseconds(100 * i), true);

  // phi = 0.4343 * gap / mean_interarrival (mean = 0.1 s here): a 250 ms
  // silence accrues past 1, a 500 ms silence past 2.
  EXPECT_LT(detector.phi(0, milliseconds(600)), 1.0);
  detector.tick(milliseconds(600));
  EXPECT_EQ(detector.health(0), Health::kAlive);
  detector.tick(milliseconds(750));
  EXPECT_EQ(detector.health(0), Health::kSuspect);
  detector.tick(milliseconds(1000));
  EXPECT_EQ(detector.health(0), Health::kDead);
  detector.heartbeat(0, milliseconds(1100), true);
  EXPECT_EQ(detector.health(0), Health::kAlive);
}

TEST(FailureDetector, SelfReportedDeathIsAuthoritativeInEveryMode) {
  for (auto mode :
       {DetectorParams::Mode::kOracle, DetectorParams::Mode::kDeadline,
        DetectorParams::Mode::kPhi}) {
    DetectorParams params;
    params.mode = mode;
    FailureDetector detector(1, params, milliseconds(100));
    detector.arm(0);
    detector.heartbeat(0, milliseconds(100), false);
    EXPECT_EQ(detector.health(0), Health::kDead)
        << detector_mode_name(mode);
    detector.tick(milliseconds(200));
    EXPECT_EQ(detector.health(0), Health::kDead);  // ticks cannot revive
    detector.heartbeat(0, milliseconds(300), true);
    EXPECT_EQ(detector.health(0), Health::kAlive);
  }
}

// ------------------------------------------------------ control link --

TEST(ControlLink, NoPlanDeliversInlineWithoutRngDraws) {
  sim::Simulator sim;
  ControlLink link(sim, /*delay=*/0, /*seed=*/1);
  serve::LoadSnapshot got;
  bool delivered = false;
  serve::LoadSnapshot snap;
  snap.queue_depth = 7;
  link.send(snap, [&](const serve::LoadSnapshot& s) {
    got = s;
    delivered = true;
  });
  // Inline: delivered before the simulator even runs — the lossless
  // control plane is indistinguishable from a direct call.
  EXPECT_TRUE(delivered);
  EXPECT_EQ(got.queue_depth, 7u);
  EXPECT_EQ(link.sent(), 1u);
  EXPECT_EQ(link.delivered(), 1u);
  EXPECT_EQ(link.dropped(), 0u);
}

TEST(ControlLink, PlanWindowsDropAndBlackout) {
  sim::Simulator sim;
  fault::FaultPlan plan;
  plan.packet_loss(seconds(0), seconds(1), 1.0);
  plan.link_blackout(seconds(2), seconds(3));
  ControlLink link(sim, 0, 1);
  link.attach_faults(&plan);

  std::size_t delivered = 0;
  auto deliver = [&](const serve::LoadSnapshot&) { ++delivered; };
  serve::LoadSnapshot snap;
  EXPECT_FALSE(link.send(snap, deliver));  // loss prob 1 at t=0
  sim.call_after(seconds(1.5), [&] { EXPECT_TRUE(link.send(snap, deliver)); });
  sim.call_after(seconds(2.5), [&] { EXPECT_FALSE(link.send(snap, deliver)); });
  sim.run_until(seconds(4));
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(link.sent(), 3u);
  EXPECT_EQ(link.dropped(), 2u);
}

TEST(ControlLink, DelayDefersDelivery) {
  sim::Simulator sim;
  ControlLink link(sim, milliseconds(20), 1);
  bool delivered = false;
  link.send(serve::LoadSnapshot{},
            [&](const serve::LoadSnapshot&) { delivered = true; });
  EXPECT_FALSE(delivered);
  sim.run_until(milliseconds(30));
  EXPECT_TRUE(delivered);
}

// -------------------------------------------------- fencing harness --

struct PendingRequest {
  sim::Event done;
  double exec = 0.0;
  double overhead = 0.0;
  double queue_wait = 0.0;
  core::SuffixStatus suffix_status = core::SuffixStatus::kServed;

  explicit PendingRequest(sim::Simulator& sim) : done(sim) {}

  core::SuffixRequest request(std::uint64_t session, std::size_t p) {
    core::SuffixRequest r;
    r.p = p;
    r.done = &done;
    r.exec_seconds = &exec;
    r.overhead_seconds = &overhead;
    r.queue_wait_seconds = &queue_wait;
    r.status = &suffix_status;
    r.session = session;
    r.predicted_sec = 0.01;
    return r;
  }
};

/// Two frontends on one sim clock plus a router over them.
struct ChaosHarness {
  sim::Simulator sim;
  hw::GpuModel gpu;
  hw::GpuScheduler sched_a, sched_b;
  graph::Graph model;
  core::GraphCostProfile profile;
  serve::EdgeServerFrontend a, b;
  ClusterRouter router;

  explicit ChaosHarness(RouterParams params = {})
      : sched_a(sim),
        sched_b(sim),
        model(models::make_model("alexnet")),
        profile(model, bundle()),
        a(sim, sched_a, gpu, serve::FrontendParams{}, {}, 99),
        b(sim, sched_b, gpu, serve::FrontendParams{}, {}, 100),
        router(sim, {&a, &b}, params) {}

  std::vector<std::unique_ptr<PendingRequest>> submit(std::uint64_t session,
                                                      int count) {
    std::vector<std::unique_ptr<PendingRequest>> reqs;
    for (int i = 0; i < count; ++i) {
      reqs.push_back(std::make_unique<PendingRequest>(sim));
      LP_CHECK(a.submit(reqs.back()->request(session, 5)) ==
               core::SubmitStatus::kAccepted);
    }
    return reqs;
  }
};

TEST(EpochFencing, FenceDropsQueuedJobsAndZombieCompletionsTyped) {
  ChaosHarness h;
  const std::uint64_t s = h.router.open_session(h.profile);
  auto reqs = h.submit(s, 5);

  // Fence at t=0, after the dispatcher has taken the first job: the four
  // still queued die immediately, the one on the GPU becomes a zombie.
  std::size_t dropped = 0;
  h.sim.call_after(0, [&] { dropped = h.a.fence_session(s, 1); });
  h.sim.run_until(seconds(30));

  EXPECT_EQ(dropped, 4u);  // the queued jobs died immediately, typed
  EXPECT_EQ(h.a.session_fence(s), 1u);

  // The in-flight dispatch finished *after* the fence rose: its epoch is
  // stale, so its completion is rejected too — the zombie-completion path.
  for (const auto& r : reqs) {
    EXPECT_TRUE(r->done.triggered());
    EXPECT_EQ(r->suffix_status, core::SuffixStatus::kFenced);
  }
  EXPECT_EQ(h.a.served(), 0u);
  EXPECT_EQ(h.a.fenced_jobs(), 5u);
  EXPECT_EQ(h.a.failed_jobs(), 5u);
  check::audit(h.a);

  // Fences only rise; a stale fence call is a no-op.
  EXPECT_EQ(h.a.fence_session(s, 1), 0u);
  EXPECT_EQ(h.a.session_fence(s), 1u);
}

TEST(EpochFencing, StaleImportIsRejectedWithoutTouchingCounters) {
  ChaosHarness h;
  const std::uint64_t s = h.router.open_session(h.profile);
  auto reqs = h.submit(s, 3);

  serve::SessionExport ex = h.a.export_session(s);
  serve::SessionExport copy = ex;  // a rejected import consumes its payload
  ex.epoch = 1;
  h.b.fence_session(s, 2);
  EXPECT_FALSE(h.b.import_session(s, std::move(ex)));
  EXPECT_EQ(h.b.rejected_imports(), 1u);
  EXPECT_EQ(h.b.migrated_in(), 0u);
  EXPECT_EQ(h.b.queue().size(), 0u);

  // At the fence itself the same payload is current, not a zombie.
  copy.epoch = 2;
  const std::size_t jobs = copy.jobs.size();
  EXPECT_TRUE(h.b.import_session(s, std::move(copy)));
  EXPECT_EQ(h.b.migrated_in(), jobs);
  h.sim.run_until(seconds(30));
  for (const auto& r : reqs) EXPECT_TRUE(r->done.triggered());
}

// ------------------------------------------- exactly-once migration --

TEST(MigrationLedger, TimeoutRetriesThenCommits) {
  RouterParams params;
  params.migration_timeout = milliseconds(200);
  params.migration_max_retries = 2;
  params.migration_backoff.base_sec = 0.02;
  params.migration_backoff.max_sec = 0.1;
  ChaosHarness h(params);
  // The interconnect eats everything for 300 ms: attempts one and two are
  // lost and time out; the third sails through.
  fault::FaultPlan plan;
  plan.packet_loss(0, milliseconds(300), 1.0);
  h.router.attach_interconnect_faults(&plan);

  const std::uint64_t s = h.router.open_session(h.profile);
  auto reqs = h.submit(s, 5);
  h.sim.spawn(h.router.migrate(s, 1));
  h.sim.run_until(seconds(60));

  for (const auto& r : reqs) {
    EXPECT_TRUE(r->done.triggered());
    EXPECT_EQ(r->suffix_status, core::SuffixStatus::kServed);
  }
  EXPECT_EQ(h.router.binding(s).server, 1u);
  EXPECT_EQ(h.router.migration_retries(), 2u);
  EXPECT_EQ(h.router.migrations_aborted(), 0u);
  ASSERT_EQ(h.router.ledger().size(), 1u);
  EXPECT_EQ(h.router.ledger()[0].state, MigrationRecord::State::kCommitted);
  EXPECT_EQ(h.router.ledger()[0].attempts, 3);
  EXPECT_GT(h.b.served(), 0u);
  check::audit(h.router);
}

TEST(MigrationLedger, SpentRetryBudgetAbortsBackToTheSource) {
  RouterParams params;
  params.migration_timeout = milliseconds(100);
  params.migration_max_retries = 1;
  ChaosHarness h(params);
  fault::FaultPlan plan;
  plan.packet_loss(0, seconds(60), 1.0);  // the interconnect never works
  h.router.attach_interconnect_faults(&plan);

  const std::uint64_t s = h.router.open_session(h.profile);
  auto reqs = h.submit(s, 5);
  h.sim.spawn(h.router.migrate(s, 1));
  h.sim.run_until(seconds(60));

  // Nothing stranded: the payload came home and its jobs settled on the
  // source as if the migration had never been attempted.
  for (const auto& r : reqs) {
    EXPECT_TRUE(r->done.triggered());
    EXPECT_EQ(r->suffix_status, core::SuffixStatus::kServed);
  }
  EXPECT_EQ(h.router.binding(s).server, 0u);
  EXPECT_EQ(h.router.migrations_aborted(), 1u);
  EXPECT_EQ(h.router.stranded_jobs(), 0u);
  EXPECT_EQ(h.router.in_transit_jobs(), 0u);
  ASSERT_EQ(h.router.ledger().size(), 1u);
  EXPECT_EQ(h.router.ledger()[0].state, MigrationRecord::State::kAborted);
  EXPECT_EQ(h.b.served(), 0u);
  check::audit(h.router);
}

TEST(MigrationLedger, LateZombieCopyBouncesOffTheFence) {
  RouterParams params;
  params.migration_timeout = milliseconds(100);
  params.migration_max_retries = 0;
  params.migration_bandwidth = mbps(0.01);  // ~1 s wire, far past the timeout
  ChaosHarness h(params);

  const std::uint64_t s = h.router.open_session(h.profile);
  auto reqs = h.submit(s, 5);
  h.sim.spawn(h.router.migrate(s, 1));
  h.sim.run_until(seconds(60));

  // The transfer was written off and aborted home; when the slow copy
  // finally landed, the target's fence rejected it — exactly once, no
  // double execution.
  EXPECT_EQ(h.router.migrations_aborted(), 1u);
  EXPECT_EQ(h.router.late_imports_rejected(), 1u);
  EXPECT_EQ(h.router.zombie_imports(), 0u);
  EXPECT_EQ(h.b.rejected_imports(), 1u);
  EXPECT_EQ(h.b.served(), 0u);
  EXPECT_EQ(h.b.queue().size(), 0u);
  for (const auto& r : reqs) {
    EXPECT_TRUE(r->done.triggered());
    EXPECT_EQ(r->suffix_status, core::SuffixStatus::kServed);
  }
  check::audit(h.router);
}

TEST(MigrationLedger, NaiveDropStrandsAndAbsorbsTheZombie) {
  // The measurable-loss baseline: no return-to-source, no fencing of the
  // written-off transfer. The dropped payload strands its jobs, and the
  // late copy is absorbed as a zombie — the audit still balances because
  // it accounts for both pathologies explicitly.
  RouterParams params;
  params.migration_timeout = milliseconds(100);
  params.migration_max_retries = 0;
  params.migration_bandwidth = mbps(0.01);  // ~1 s wire, far past the timeout
  params.return_to_source = false;
  ChaosHarness h(params);

  const std::uint64_t s = h.router.open_session(h.profile);
  auto reqs = h.submit(s, 5);
  h.sim.spawn(h.router.migrate(s, 1));
  h.sim.run_until(seconds(60));

  EXPECT_EQ(h.router.migrations_aborted(), 1u);
  EXPECT_EQ(h.router.stranded_jobs(), 4u);
  EXPECT_EQ(h.router.zombie_imports(), 4u);
  ASSERT_EQ(h.router.ledger().size(), 1u);
  EXPECT_EQ(h.router.ledger()[0].state, MigrationRecord::State::kDropped);
  // The zombie re-materialized the jobs at the target, which served them —
  // late, after the client had written them off.
  EXPECT_EQ(h.b.migrated_in(), 4u);
  EXPECT_GT(h.b.served(), 0u);
  check::audit(h.router);
}

// --------------------------------------------------- quorum + chaos --

TEST(RunCluster, QuorumLossDegradesToLocalAndRecovers) {
  ClusterConfig config;
  config.servers = 2;
  config.duration = seconds(20);
  config.warmup = seconds(4);
  config.seed = 11;
  config.degrade_to_local = true;
  config.router.heartbeat_period = milliseconds(250);
  config.router.detector.mode = DetectorParams::Mode::kDeadline;
  config.runtime.fault.rpc_timeout_sec = 0.5;
  config.runtime.fault.max_retries = 1;
  config.runtime.fault.local_fallback = true;

  serve::TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = 4;
  spec.policy = core::Policy::kNeurosurgeon;
  spec.upload = net::BandwidthTrace::constant(mbps(20));
  spec.download = net::BandwidthTrace::constant(mbps(20));
  spec.request_gap = milliseconds(5);
  config.tenants.push_back(spec);

  // Both heartbeat channels go dark for 6 s: the detector loses the whole
  // fleet, quorum collapses, and the router must freeze and push clients
  // local until the blackout lifts.
  for (int i = 0; i < 2; ++i) {
    fault::FaultPlan plan;
    plan.link_blackout(seconds(8), seconds(14));
    config.heartbeat_faults.push_back(plan);
  }

  check::ClusterAuditor auditor;
  config.on_audit = std::ref(auditor);

  const auto result = run_cluster(config, bundle());
  EXPECT_GT(auditor.audits(), 0u);
  EXPECT_GE(result.degrade_transitions, 2u);  // in and back out
  EXPECT_EQ(result.summarize().failed(), 0u);
  EXPECT_EQ(result.stranded_jobs, 0u);
  // The servers never actually died: any kDead verdicts were false
  // suspicion, and any reroutes they triggered were unnecessary but safe.
  EXPECT_EQ(result.false_reroutes, result.reroutes);
}

TEST(RunCluster, ChaosRunsAreDeterministicAndAuditedEveryHeartbeat) {
  const std::uint64_t seed = 42;
  auto run = [&](std::uint64_t* audits) {
    ClusterConfig config = check::random_cluster_config(seed);
    check::ClusterAuditor auditor;
    config.on_audit = std::ref(auditor);
    config.audit_period = config.router.heartbeat_period;
    const auto result = run_cluster(config, bundle());
    *audits = auditor.audits();
    return result;
  };
  std::uint64_t audits_a = 0, audits_b = 0;
  const auto a = run(&audits_a);
  const auto b = run(&audits_b);

  EXPECT_GT(audits_a, 0u);
  EXPECT_EQ(audits_a, audits_b);
  EXPECT_EQ(a.stranded_jobs, 0u);  // robust config: chaos loses nothing
  EXPECT_EQ(a.zombie_imports, 0u);
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    const auto& ra = a.clients[i].records;
    const auto& rb = b.clients[i].records;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j].start, rb[j].start);
      EXPECT_EQ(ra[j].p, rb[j].p);
      EXPECT_DOUBLE_EQ(ra[j].total_sec, rb[j].total_sec);
      EXPECT_EQ(ra[j].outcome, rb[j].outcome);
    }
  }
  EXPECT_EQ(a.reroutes, b.reroutes);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.aborted_migrations, b.aborted_migrations);
  EXPECT_EQ(a.migration_retries, b.migration_retries);
  EXPECT_EQ(a.fenced_jobs, b.fenced_jobs);
  EXPECT_EQ(a.death_events, b.death_events);
}

}  // namespace
}  // namespace lp::cluster
