#include <gtest/gtest.h>

#include <cmath>

#include "check/differential.h"
#include "check/generators.h"
#include "check/invariants.h"
#include "check/model.h"
#include "common/check.h"
#include "core/load_factor.h"
#include "net/estimator.h"
#include "partition/cache.h"
#include "serve/fleet.h"
#include "serve/queue.h"

namespace lp::check {
namespace {

partition::PartitionPlan plan_for(std::size_t p) {
  partition::PartitionPlan plan;
  plan.p = p;
  return plan;
}

// ---------------------------------------------------------------- satellite
// regressions: each of these failed on the pre-fix code.

TEST(PartitionCacheRegression, ClearResetsStatistics) {
  partition::PartitionCache cache(2);
  cache.insert(plan_for(1));
  EXPECT_NE(cache.find(1), nullptr);  // hit
  EXPECT_EQ(cache.find(9), nullptr);  // miss
  cache.insert(plan_for(2));
  cache.insert(plan_for(3));  // evicts p=1 (capacity 2)
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);

  // A cleared cache must be indistinguishable from a freshly constructed
  // one: entries AND statistics. Pre-fix, clear() kept the counters, so a
  // re-warmed session's hit_rate() blended pre-wipe traffic.
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.hit_rate(), 0.0);
  audit(cache);
}

TEST(PartitionCacheRegression, ResetStatsKeepsEntries) {
  partition::PartitionCache cache(4);
  cache.insert(plan_for(1));
  cache.insert(plan_for(2));
  EXPECT_NE(cache.find(1), nullptr);
  cache.reset_stats();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), 2u);  // entries survive a stats reset
  EXPECT_NE(cache.peek(1), nullptr);
  audit(cache);
}

TEST(RequestQueueRegression, BacklogExactUnderCatastrophicCancellation) {
  // Pre-fix the backlog was kept by clamped floating-point subtraction:
  // pushing 1e16 then 1.0 rounds the incremental sum to 1e16, and popping
  // the 1e16 job reported max(0, 1e16 - 1e16) = 0 — the queued 1-second
  // job vanished from admission control's view. Recompute-on-removal
  // reports exactly 1.0.
  serve::RequestQueue queue(serve::QueuePolicy::kFifo, 4);
  serve::QueuedJob big;
  big.seq = 0;
  big.predicted_sec = 1e16;
  serve::QueuedJob small;
  small.seq = 1;
  small.predicted_sec = 1.0;
  ASSERT_TRUE(queue.push(big));
  ASSERT_TRUE(queue.push(small));
  EXPECT_EQ(queue.pop_next().seq, 0u);  // FIFO: the 1e16 job leaves
  EXPECT_EQ(queue.predicted_backlog_sec(), 1.0);
  audit(queue);
}

TEST(RequestQueueRegression, BacklogExactUnderOutOfOrderRemoval) {
  // SPJF removes jobs in a different order than they arrived — the case
  // where incremental subtraction accumulates rounding drift. The backlog
  // must stay exactly equal to the sum over the surviving jobs.
  serve::RequestQueue queue(serve::QueuePolicy::kSpjf, 8);
  const double preds[] = {0.3, 1e12, 1e-7, 0.1, 7e8, 2e-3};
  std::uint64_t seq = 0;
  for (double p : preds) {
    serve::QueuedJob job;
    job.seq = seq++;
    job.predicted_sec = p;
    ASSERT_TRUE(queue.push(job));
  }
  while (!queue.empty()) {
    queue.pop_next();
    double expected = 0.0;
    for (const serve::QueuedJob& job : queue.jobs())
      expected += job.predicted_sec;
    EXPECT_EQ(queue.predicted_backlog_sec(), expected);
    audit(queue);
  }
  EXPECT_EQ(queue.predicted_backlog_sec(), 0.0);
}

TEST(EstimatorRegression, ZeroDurationTransferDroppedNotFatal) {
  // The coarse simulated clock can round a tiny probe's transfer time to
  // 0 ns. Pre-fix that tripped LP_CHECK(duration > 0) and crashed the
  // client; now the sample is dropped (it carries no bandwidth
  // information) and the estimate is untouched.
  net::BandwidthEstimator est(4, mbps(8));
  EXPECT_NO_THROW(est.add_transfer(1024, 0));
  EXPECT_DOUBLE_EQ(est.estimate(), mbps(8));
  audit(est);
  // A negative duration is still a programming error.
  EXPECT_THROW(est.add_transfer(1024, -1), ContractError);
}

TEST(LoadFactorRegression, ResetIdleStartsNewMonitoringPeriod) {
  core::LoadFactorTracker tracker(4);
  tracker.record(0.002, 0.001, /*contended=*/true);
  tracker.record(0.0011, 0.001, /*contended=*/false);
  EXPECT_EQ(tracker.records(), 2u);
  // Pre-fix reset_idle() kept records_, so "records this monitoring
  // period" silently meant "records ever": the count never restarted with
  // the period it is documented to describe.
  tracker.reset_idle();
  EXPECT_EQ(tracker.records(), 0u);
  tracker.record(0.003, 0.001);
  EXPECT_EQ(tracker.records(), 1u);
  audit(tracker);
}

// ------------------------------------------------------------ invariant
// layer units.

TEST(ClockMonitor, ThrowsWhenTimeMovesBackwards) {
  ClockMonitor clock;
  clock.observe(milliseconds(10));
  clock.observe(milliseconds(10));  // equal is fine (same instant)
  clock.observe(milliseconds(25));
  EXPECT_EQ(clock.observations(), 3u);
  EXPECT_EQ(clock.last(), milliseconds(25));
  EXPECT_THROW(clock.observe(milliseconds(24)), ContractError);
}

TEST(Invariants, FreshStructuresPassAudit) {
  serve::RequestQueue queue(serve::QueuePolicy::kEdf, 8);
  partition::PartitionCache cache(4);
  core::LoadFactorTracker tracker(8);
  net::BandwidthEstimator est(4, mbps(8));
  EXPECT_NO_THROW(audit(queue));
  EXPECT_NO_THROW(audit(cache));
  EXPECT_NO_THROW(audit(tracker));
  EXPECT_NO_THROW(audit(est));
}

TEST(ReferenceLru, MirrorsDocumentedSemantics) {
  ReferenceLru ref(2);
  EXPECT_FALSE(ref.find(1));  // miss
  ref.insert(1);
  ref.insert(2);
  EXPECT_TRUE(ref.find(1));  // hit refreshes recency
  ref.insert(3);             // evicts 2 (LRU)
  EXPECT_EQ(ref.keys(), (std::vector<std::size_t>{3, 1}));
  EXPECT_EQ(ref.hits, 1u);
  EXPECT_EQ(ref.misses, 1u);
  EXPECT_EQ(ref.evictions, 1u);
}

// ---------------------------------------------------------- differential
// suites. Fixed seeds: a pass here is reproducible, and a failure prints
// the case seed for replay through tools/check_fuzz.

TEST(Differential, DecisionThousandCases) {
  // ISSUE acceptance bar: >= 1000 randomized graphs / predictors / k /
  // bandwidths where decide == decide_brute_force == partition_decision
  // (p and latency), DADS never better, and DADS exactly equal on chains.
  EXPECT_EQ(run_diff(CaseKind::kDecision, /*seed=*/42, 1000), 1000u);
}

TEST(Differential, CacheAgainstReferenceLru) {
  EXPECT_EQ(run_diff(CaseKind::kCache, /*seed=*/43, 300), 300u);
}

TEST(Differential, QueueAgainstReferenceScan) {
  EXPECT_EQ(run_diff(CaseKind::kQueue, /*seed=*/44, 300), 300u);
}

TEST(Differential, FleetRunsWithInvariantsArmed) {
  // Randomized fleets (tenants, policies, batching, crash / blackout /
  // straggle / loss schedules, timeouts) with the auditor firing every
  // 100 ms of simulated time: request conservation, queue backlog, LRU
  // and k-bound invariants must hold at every audit point.
  EXPECT_EQ(run_diff(CaseKind::kFleet, /*seed=*/45, 25), 25u);
}

TEST(Differential, CaseSeedDerivationIsStable) {
  // The replay contract rests on (seed, index) always naming the same
  // case, and neighbouring indices being decorrelated.
  EXPECT_EQ(case_seed(42, 7), case_seed(42, 7));
  EXPECT_NE(case_seed(42, 7), case_seed(42, 8));
  EXPECT_NE(case_seed(42, 7), case_seed(43, 7));
}

TEST(Generators, DeterministicGivenSeed) {
  const graph::Graph a = random_graph(99);
  const graph::Graph b = random_graph(99);
  EXPECT_EQ(a.n(), b.n());
  const serve::FleetConfig ca = random_fleet_config(5);
  const serve::FleetConfig cb = random_fleet_config(5);
  EXPECT_EQ(ca.duration, cb.duration);
  EXPECT_EQ(ca.tenants.size(), cb.tenants.size());
  ASSERT_FALSE(ca.tenants.empty());
  EXPECT_EQ(ca.tenants[0].model, cb.tenants[0].model);
}

TEST(Generators, ShrunkLevelsNeverGrow) {
  GraphGenOptions opts;
  for (int level = 0; level <= 3; ++level) {
    const GraphGenOptions s = opts.shrunk(level);
    EXPECT_LE(s.max_blocks, opts.max_blocks);
    EXPECT_LE(s.min_blocks, s.max_blocks);
    EXPECT_LE(s.spatial, opts.spatial);
    EXPECT_LE(s.channels, opts.channels);
  }
}

TEST(Generators, ChainOnlyGraphsAreSinglePath) {
  // chain_only graphs back the DADS-equality assertion: no CNode's output
  // may fan out to more than one consumer (no residual/concat forks).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GraphGenOptions opts;
    opts.chain_only = true;
    const graph::Graph g = random_graph(seed, opts);
    for (graph::NodeId id : g.backbone())
      EXPECT_LE(g.consumers()[static_cast<std::size_t>(id)].size(), 1u)
          << "seed " << seed;
  }
}

}  // namespace
}  // namespace lp::check
