// Tour of the substrate: build every zoo model, print its structure,
// cost profile, cut-size extremes and the partition decision across
// bandwidths — useful when adding a new model to the zoo.
#include <cstdio>

#include "common/table.h"
#include "core/algorithm.h"
#include "graph/cut.h"
#include "models/zoo.h"

int main() {
  using namespace lp;

  const auto bundle = core::train_default_predictors();
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;

  Table table({"model", "n", "GFLOPs", "params(M)", "input(KB)",
               "min cut(KB)", "local(ms)", "server(ms)", "p@2Mbps",
               "p@8Mbps", "p@64Mbps"});
  std::vector<graph::Graph> graphs;
  graphs.reserve(models::zoo_names().size());
  for (const auto& name : models::zoo_names()) {
    graphs.push_back(models::make_model(name));
    const auto& g = graphs.back();
    const core::GraphCostProfile profile(g, bundle);
    const auto s = graph::cut_sizes(g);
    std::int64_t min_cut = s[0];
    for (std::size_t p = 0; p < g.n(); ++p) min_cut = std::min(min_cut, s[p]);

    auto p_at = [&](double m) {
      return std::to_string(core::decide(profile, 1.0, mbps(m)).p);
    };
    table.add_row(
        {name, std::to_string(g.n()),
         Table::num(static_cast<double>(flops::graph_flops(g)) / 1e9, 2),
         Table::num(static_cast<double>(g.parameter_bytes()) / 4e6, 1),
         Table::num(static_cast<double>(g.input_desc().bytes()) / 1e3, 0),
         Table::num(static_cast<double>(min_cut) / 1e3, 0),
         Table::num(to_seconds(cpu.graph_time(g)) * 1e3, 0),
         Table::num(
             to_seconds(gpu.segment_time(g, 0, g.backbone().size() - 1)) *
                 1e3,
             1),
         p_at(2), p_at(8), p_at(64)});
  }
  table.print();
  std::printf(
      "\np is the Algorithm-1 cut at k=1: 0 = full offload, n = local.\n");
  return 0;
}
