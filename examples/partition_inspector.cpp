// Partition inspector: a small CLI to examine how a cut point splits a
// model — the Fig. 5 machinery made visible.
//
//   partition_inspector [model] [p]
//
// Prints the backbone around the cut, the boundary tensors, per-side cost
// estimates, and (with an output directory as a 3rd argument) writes the
// two segments as model files plus Graphviz DOT renderings.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/predictor.h"
#include "graph/cut.h"
#include "graph/dot.h"
#include "graph/fusion.h"
#include "graph/serialize.h"
#include "hw/cpu_model.h"
#include "hw/gpu_model.h"
#include "models/zoo.h"
#include "partition/partitioner.h"

int main(int argc, char** argv) {
  using namespace lp;

  const std::string model_name = argc > 1 ? argv[1] : "squeezenet";
  const auto model = models::make_model(model_name);
  const std::size_t n = model.n();
  const std::size_t p =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : n / 2;
  if (p > n) {
    std::fprintf(stderr, "p must be in [0, %zu]\n", n);
    return 1;
  }

  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  const auto s = graph::cut_sizes(model);

  std::printf("%s: n = %zu computation nodes, cut after L%zu\n\n",
              model_name.c_str(), n, p);

  // Backbone context around the cut.
  const std::size_t from = p >= 3 ? p - 3 : 0;
  const std::size_t to = std::min(n, p + 3);
  for (std::size_t i = from; i <= to; ++i) {
    const auto& node = model.node(model.backbone()[i]);
    std::printf("  L%-4zu %-12s %-28s %s\n", i,
                graph::op_name(node.op).c_str(), node.name.c_str(),
                node.output.shape.to_string().c_str());
    if (i == p)
      std::printf("  ---- cut: %.1f KB cross the link (%s block "
                  "boundary) ----\n",
                  static_cast<double>(s[p]) / 1e3,
                  graph::cut_inside_block(model, p) ? "inside a" : "at a");
  }

  const auto plan = partition::partition_at(model, p);
  std::printf("\nboundary tensors (%zu):\n", plan.boundary.size());
  for (const auto& name : plan.boundary) std::printf("  %s\n", name.c_str());

  const double device_ms =
      p > 0 ? to_seconds(cpu.segment_time(model, 0, p)) * 1e3 : 0.0;
  const double server_ms =
      p < n ? to_seconds(gpu.segment_time(model, p + 1, n)) * 1e3 : 0.0;
  const double server_fused_ms =
      p < n ? to_seconds(gpu.fused_segment_time(model, p + 1, n)) * 1e3
            : 0.0;
  std::printf(
      "\ncosts: device prefix %.1f ms; server suffix %.1f ms "
      "(%.1f ms with operator fusion); upload at 8 Mbps %.1f ms\n",
      device_ms, server_ms, server_fused_ms,
      static_cast<double>(s[p]) * 8.0 / mbps(8) * 1e3);

  if (argc > 3) {
    const std::string dir = argv[3];
    if (plan.device_part) {
      graph::save_graph(*plan.device_part, dir + "/device.lpg");
      std::FILE* f = std::fopen((dir + "/device.dot").c_str(), "w");
      if (f) {
        std::fputs(graph::to_dot(*plan.device_part).c_str(), f);
        std::fclose(f);
      }
    }
    if (plan.server_part) {
      graph::save_graph(*plan.server_part, dir + "/server.lpg");
      std::FILE* f = std::fopen((dir + "/server.dot").c_str(), "w");
      if (f) {
        std::fputs(graph::to_dot(*plan.server_part).c_str(), f);
        std::fclose(f);
      }
    }
    std::printf("wrote device/server .lpg and .dot files to %s\n",
                dir.c_str());
  } else {
    std::printf("\n(pass an output directory to dump the two segments as "
                "model files + DOT)\n");
  }
  return 0;
}
