// Scenario: a mobile AR client streams SqueezeNet inferences over a flaky
// WiFi link. The bandwidth swings between 16 Mbps and 1 Mbps; LoADPart's
// runtime profiler tracks it and re-partitions on the fly. Prints a
// timeline of (bandwidth estimate, partition point, latency).
#include <cstdio>

#include "core/system.h"
#include "models/zoo.h"

int main() {
  using namespace lp;

  const auto model = models::squeezenet();
  const auto bundle = core::train_default_predictors();

  core::ExperimentConfig config;
  config.upload = net::BandwidthTrace({{0, mbps(16)},
                                       {seconds(20), mbps(4)},
                                       {seconds(40), mbps(1)},
                                       {seconds(60), mbps(16)}});
  config.duration = seconds(80);
  config.warmup = 0;
  config.request_gap = milliseconds(200);
  config.profiler_period = seconds(2);
  config.seed = 2;

  std::printf(
      "Adaptive offloading of SqueezeNet over a flaky link "
      "(16 -> 4 -> 1 -> 16 Mbps)\n\n"
      "   t(s)  est(Mbps)      p  decision       latency(ms)\n");

  const auto result = core::run_experiment(model, bundle, config);
  TimeNs next_print = 0;
  for (const auto& r : result.records) {
    if (r.start < next_print) continue;
    next_print = r.start + seconds(4);
    const char* what = r.p == 0 ? "full offload"
                       : r.p == model.n() ? "local"
                                          : "partial";
    std::printf("%7.1f  %9.1f  %5zu  %-13s %10.1f\n",
                to_seconds(r.start), r.bandwidth_est_bps / 1e6, r.p, what,
                r.total_sec * 1e3);
  }

  std::printf(
      "\nExpected: partial offloading at 16 Mbps, shifting toward (or to) "
      "local inference as the link degrades, and back once it recovers.\n");
  return 0;
}
