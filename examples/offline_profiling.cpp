// The offline phase end to end (Fig. 4's three-step process): profile
// node kinds on both targets, design/inspect features, train the NNLS
// models, persist them, and use the reloaded predictors to price AlexNet
// layer by layer.
#include <cstdio>

#include "common/table.h"
#include "flops/features.h"
#include "models/zoo.h"
#include "profile/model_store.h"
#include "profile/offline_profiler.h"
#include "profile/trainer.h"

int main() {
  using namespace lp;
  using flops::Device;

  // Step 1: profile the execution time of typical node kinds.
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  profile::ProfilerParams params;
  params.samples_per_kind = 300;
  profile::OfflineProfiler profiler(cpu, gpu, params);

  // Step 2: the feature design is Table II; show one kind's features.
  std::printf("Conv features (both devices): ");
  for (const auto& f :
       flops::feature_names(flops::ModelKind::kConv, Device::kEdge))
    std::printf("%s  ", f.c_str());
  std::printf("\n\n");

  // Step 3: fit NNLS per kind per device, evaluating on held-out data.
  profile::Trainer trainer;
  std::vector<profile::TrainReport> reports;
  auto user = trainer.train_all(profiler, Device::kUser, &reports);
  auto edge = trainer.train_all(profiler, Device::kEdge, &reports);

  Table accuracy({"kind", "device", "test MAPE"});
  for (const auto& r : reports)
    accuracy.add_row({flops::model_kind_name(r.kind),
                      flops::device_name(r.device),
                      Table::num(r.mape * 100.0, 1) + "%"});
  accuracy.print();

  // The trained models are stored on both sides (Section III-A).
  profile::save_predictor(user, "m_user.txt");
  profile::save_predictor(edge, "m_edge.txt");
  const auto user2 = profile::load_predictor("m_user.txt", Device::kUser);
  const auto edge2 = profile::load_predictor("m_edge.txt", Device::kEdge);
  std::printf("\nsaved + reloaded m_user.txt / m_edge.txt\n\n");

  // Price AlexNet per layer with the reloaded models.
  const auto model = models::alexnet();
  Table costs({"L", "node", "user pred(ms)", "edge pred(us)"});
  for (std::size_t i = 1; i <= model.n(); ++i) {
    const auto cfg = flops::config_of(model, model.backbone()[i]);
    costs.add_row(
        {std::to_string(i), model.node(model.backbone()[i]).name,
         Table::num(user2.predict_seconds(cfg) * 1e3),
         Table::num(edge2.predict_seconds(cfg) * 1e6, 1)});
  }
  costs.print();
  std::remove("m_user.txt");
  std::remove("m_edge.txt");
  return 0;
}
