// Quickstart: load a model, train the predictors, ask LoADPart where to
// cut, partition the graph, and run both halves through the reference
// interpreter — the whole public API in ~60 lines.
#include <cstdio>

#include "core/algorithm.h"
#include "exec/interpreter.h"
#include "models/zoo.h"
#include "partition/partitioner.h"

int main() {
  using namespace lp;

  // 1. A DNN as a computation graph (MindIR-like: CNodes + Parameters).
  const graph::Graph model = models::alexnet();
  std::printf("model: %s, n = %zu computation nodes, %.1f MB of weights\n",
              model.name().c_str(), model.n(),
              static_cast<double>(model.parameter_bytes()) / 1e6);

  // 2. Offline phase: profile node kinds and train the NNLS predictors for
  //    both sides (M_user, M_edge).
  const core::PredictorBundle predictors = core::train_default_predictors();
  const core::GraphCostProfile profile(model, predictors);

  // 3. Online phase: Algorithm 1 with the current bandwidth and server
  //    load factor k.
  const double upload_bw = mbps(8);
  const double k = 1.0;  // idle server
  const core::Decision decision = core::decide(profile, k, upload_bw);
  std::printf(
      "decision at 8 Mbps, k=%.1f: cut after L%zu (%s), predicted "
      "end-to-end %.1f ms\n",
      k, decision.p,
      model.node(model.backbone()[decision.p]).name.c_str(),
      decision.predicted_latency * 1e3);

  // 4. Partition the graph at the decided point (Fig. 5 procedure).
  const auto plan = partition::partition_at(model, decision.p);
  std::printf("boundary: %zu tensor(s), %.1f KB cross the link\n",
              plan.boundary.size(),
              static_cast<double>(plan.boundary_bytes) / 1e3);

  // 5. Execute: device half locally, ship the boundary, server half
  //    remotely — and check it matches whole-graph execution.
  const auto input = exec::random_tensor(model.input_desc().shape, 42);
  const auto whole = exec::Interpreter(model).run({{"input", input}});

  exec::Interpreter device(*plan.device_part);
  const auto boundary = device.run({{"input", input}});
  exec::TensorMap shipped;
  for (std::size_t i = 0; i < boundary.size(); ++i)
    shipped.emplace(plan.boundary[i], boundary[i]);
  const auto result = exec::Interpreter(*plan.server_part).run(shipped);

  std::printf("partitioned == whole-graph output? max|diff| = %.2e\n",
              exec::Tensor::max_abs_diff(result[0], whole[0]));

  // 6. The same decision under a saturated server. The influential factor
  //    k folds together prediction bias and queueing (Section III-C); the
  //    runtime profiler reports ~10 on an idle server of this testbed and
  //    ~80 under 100%(h) background load. The cut retreats toward the
  //    device.
  for (double k_loaded : {10.0, 80.0}) {
    const auto loaded = core::decide(profile, k_loaded, upload_bw);
    std::printf("at k=%.0f the cut moves to L%zu (%s)\n", k_loaded,
                loaded.p,
                model.node(model.backbone()[loaded.p]).name.c_str());
  }
  return 0;
}
