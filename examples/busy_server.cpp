// Scenario: an edge server shared with other tenants. Background GPU load
// ramps to saturation and back while a client runs AlexNet through
// LoADPart; shows the influential factor k rising, the partition point
// retreating toward the device, and the GPU watcher restoring offloading
// after the load clears (the Figure 9 story on one model).
#include <cstdio>

#include "core/system.h"
#include "models/zoo.h"

int main() {
  using namespace lp;

  const auto model = models::alexnet();
  const auto bundle = core::train_default_predictors();

  core::ExperimentConfig config;
  config.load_schedule = {{0, hw::LoadLevel::k0},
                          {seconds(25), hw::LoadLevel::k100h},
                          {seconds(70), hw::LoadLevel::k0}};
  config.duration = seconds(110);
  config.warmup = 0;
  config.request_gap = milliseconds(100);
  config.profiler_period = seconds(2);
  config.watcher_period = seconds(5);
  config.seed = 9;

  std::printf(
      "AlexNet on a shared edge server (idle -> saturated at 25 s -> idle "
      "at 70 s), 8 Mbps uplink\n\n"
      "   t(s)      k      p  latency(ms)\n");

  const auto result = core::run_experiment(model, bundle, config);
  TimeNs next_print = 0;
  for (const auto& r : result.records) {
    if (r.start < next_print) continue;
    next_print = r.start + seconds(5);
    std::printf("%7.1f  %5.1f  %5zu  %10.1f\n", to_seconds(r.start),
                r.k_used, r.p, r.total_sec * 1e3);
  }

  std::printf(
      "\nExpected: k ~= 1 and an early cut while idle; k rises after 25 s "
      "and the cut moves toward the device; after 70 s the GPU watcher "
      "resets k and offloading resumes.\n");
  return 0;
}
