// Scenario: a small multi-tenant fleet against one edge frontend. Twelve
// AlexNet devices (Poisson arrivals, 250 ms SLO) share the GPU through an
// EDF queue with admission control and suffix batching; shed requests
// degrade to on-device inference and push the senders' k up. Prints the
// fleet summary and the frontend's counters — the shortest tour of the
// serving layer (src/serve/).
#include <cstdio>

#include "common/table.h"
#include "serve/fleet.h"

int main() {
  using namespace lp;

  const auto bundle = core::train_default_predictors();

  serve::FleetConfig config;
  config.duration = seconds(30);
  config.warmup = seconds(10);
  config.seed = 42;
  config.frontend.policy = serve::QueuePolicy::kEdf;
  config.frontend.admission_control = true;
  config.frontend.delay_budget_sec = 0.15;
  config.frontend.max_batch = 4;
  config.frontend.batch_window = milliseconds(2);

  serve::TenantSpec tenant;
  tenant.model = "alexnet";
  tenant.clients = 12;
  tenant.policy = core::Policy::kLoadPart;
  tenant.upload = net::BandwidthTrace::constant(mbps(100));
  tenant.download = net::BandwidthTrace::constant(mbps(100));
  tenant.request_gap = milliseconds(5);
  tenant.poisson_arrivals = true;
  tenant.slo_sec = 0.25;
  config.tenants.push_back(tenant);

  std::printf(
      "12 AlexNet devices -> one frontend (EDF + admission, batch <= 4)\n"
      "over a 30 s run, steady state after 10 s\n\n");

  const auto result = serve::run_fleet(config, bundle);
  const auto s = result.summarize();

  Table table({"tenant", "requests", "mean(ms)", "p90(ms)", "adm p90(ms)",
               "shed", "queue wait(ms)", "p (modal)", "k"});
  table.add_row(s.table_row());
  table.print();

  std::printf(
      "\nFrontend: %llu submitted, %llu admitted, %llu shed; %llu GPU "
      "dispatches (%llu batched covering %llu requests)\n",
      static_cast<unsigned long long>(result.submitted),
      static_cast<unsigned long long>(result.admitted),
      static_cast<unsigned long long>(result.shed),
      static_cast<unsigned long long>(result.dispatches),
      static_cast<unsigned long long>(result.batched_dispatches),
      static_cast<unsigned long long>(result.batched_jobs));
  std::printf(
      "Expected: some requests shed and finished on-device (k rises via "
      "the reject backoff), admitted requests hold the 250 ms SLO, and a "
      "visible share of dispatches are coalesced batches.\n");
  return 0;
}
